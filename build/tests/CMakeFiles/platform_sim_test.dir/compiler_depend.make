# Empty compiler generated dependencies file for platform_sim_test.
# This may be replaced when dependencies are built.
