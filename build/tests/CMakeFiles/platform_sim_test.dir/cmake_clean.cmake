file(REMOVE_RECURSE
  "CMakeFiles/platform_sim_test.dir/platform/platform_sim_test.cc.o"
  "CMakeFiles/platform_sim_test.dir/platform/platform_sim_test.cc.o.d"
  "platform_sim_test"
  "platform_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
