file(REMOVE_RECURSE
  "CMakeFiles/billing_model_test.dir/billing/model_test.cc.o"
  "CMakeFiles/billing_model_test.dir/billing/model_test.cc.o.d"
  "billing_model_test"
  "billing_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
