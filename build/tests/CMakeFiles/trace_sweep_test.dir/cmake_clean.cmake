file(REMOVE_RECURSE
  "CMakeFiles/trace_sweep_test.dir/trace/generator_sweep_test.cc.o"
  "CMakeFiles/trace_sweep_test.dir/trace/generator_sweep_test.cc.o.d"
  "trace_sweep_test"
  "trace_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
