file(REMOVE_RECURSE
  "CMakeFiles/overalloc_test.dir/sched/overalloc_test.cc.o"
  "CMakeFiles/overalloc_test.dir/sched/overalloc_test.cc.o.d"
  "overalloc_test"
  "overalloc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overalloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
