# Empty compiler generated dependencies file for overalloc_test.
# This may be replaced when dependencies are built.
