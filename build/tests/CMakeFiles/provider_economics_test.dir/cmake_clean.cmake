file(REMOVE_RECURSE
  "CMakeFiles/provider_economics_test.dir/core/provider_economics_test.cc.o"
  "CMakeFiles/provider_economics_test.dir/core/provider_economics_test.cc.o.d"
  "provider_economics_test"
  "provider_economics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provider_economics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
