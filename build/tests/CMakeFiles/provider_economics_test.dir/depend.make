# Empty dependencies file for provider_economics_test.
# This may be replaced when dependencies are built.
