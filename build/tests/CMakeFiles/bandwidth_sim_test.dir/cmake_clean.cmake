file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_sim_test.dir/sched/bandwidth_sim_test.cc.o"
  "CMakeFiles/bandwidth_sim_test.dir/sched/bandwidth_sim_test.cc.o.d"
  "bandwidth_sim_test"
  "bandwidth_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
