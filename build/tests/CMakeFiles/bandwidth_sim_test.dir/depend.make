# Empty dependencies file for bandwidth_sim_test.
# This may be replaced when dependencies are built.
