
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/profiler_test.cc" "tests/CMakeFiles/profiler_test.dir/sched/profiler_test.cc.o" "gcc" "tests/CMakeFiles/profiler_test.dir/sched/profiler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/faascost_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/faascost_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/faascost_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/faascost_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/billing/CMakeFiles/faascost_billing.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/faascost_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/faascost_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
