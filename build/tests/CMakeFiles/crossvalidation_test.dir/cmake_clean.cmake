file(REMOVE_RECURSE
  "CMakeFiles/crossvalidation_test.dir/sched/crossvalidation_test.cc.o"
  "CMakeFiles/crossvalidation_test.dir/sched/crossvalidation_test.cc.o.d"
  "crossvalidation_test"
  "crossvalidation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossvalidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
