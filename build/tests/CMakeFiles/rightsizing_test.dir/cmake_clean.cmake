file(REMOVE_RECURSE
  "CMakeFiles/rightsizing_test.dir/core/rightsizing_test.cc.o"
  "CMakeFiles/rightsizing_test.dir/core/rightsizing_test.cc.o.d"
  "rightsizing_test"
  "rightsizing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rightsizing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
