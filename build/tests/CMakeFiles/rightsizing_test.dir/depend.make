# Empty dependencies file for rightsizing_test.
# This may be replaced when dependencies are built.
