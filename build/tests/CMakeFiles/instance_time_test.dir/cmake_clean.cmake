file(REMOVE_RECURSE
  "CMakeFiles/instance_time_test.dir/billing/instance_time_test.cc.o"
  "CMakeFiles/instance_time_test.dir/billing/instance_time_test.cc.o.d"
  "instance_time_test"
  "instance_time_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
