# Empty dependencies file for instance_time_test.
# This may be replaced when dependencies are built.
