# Empty compiler generated dependencies file for prewarm_test.
# This may be replaced when dependencies are built.
