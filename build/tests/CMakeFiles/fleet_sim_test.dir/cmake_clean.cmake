file(REMOVE_RECURSE
  "CMakeFiles/fleet_sim_test.dir/cluster/fleet_sim_test.cc.o"
  "CMakeFiles/fleet_sim_test.dir/cluster/fleet_sim_test.cc.o.d"
  "fleet_sim_test"
  "fleet_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
