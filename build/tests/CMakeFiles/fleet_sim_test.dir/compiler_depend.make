# Empty compiler generated dependencies file for fleet_sim_test.
# This may be replaced when dependencies are built.
