# Empty compiler generated dependencies file for billing_property_test.
# This may be replaced when dependencies are built.
