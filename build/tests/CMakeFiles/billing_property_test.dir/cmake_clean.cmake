file(REMOVE_RECURSE
  "CMakeFiles/billing_property_test.dir/billing/property_test.cc.o"
  "CMakeFiles/billing_property_test.dir/billing/property_test.cc.o.d"
  "billing_property_test"
  "billing_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
