# Empty dependencies file for billing_catalog_test.
# This may be replaced when dependencies are built.
