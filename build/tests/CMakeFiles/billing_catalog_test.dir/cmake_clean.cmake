file(REMOVE_RECURSE
  "CMakeFiles/billing_catalog_test.dir/billing/catalog_test.cc.o"
  "CMakeFiles/billing_catalog_test.dir/billing/catalog_test.cc.o.d"
  "billing_catalog_test"
  "billing_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
