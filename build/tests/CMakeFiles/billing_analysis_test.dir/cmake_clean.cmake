file(REMOVE_RECURSE
  "CMakeFiles/billing_analysis_test.dir/billing/analysis_test.cc.o"
  "CMakeFiles/billing_analysis_test.dir/billing/analysis_test.cc.o.d"
  "billing_analysis_test"
  "billing_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
