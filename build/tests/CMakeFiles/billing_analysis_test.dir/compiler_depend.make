# Empty compiler generated dependencies file for billing_analysis_test.
# This may be replaced when dependencies are built.
