# Empty compiler generated dependencies file for platform_edge_test.
# This may be replaced when dependencies are built.
