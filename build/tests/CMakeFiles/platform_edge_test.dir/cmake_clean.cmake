file(REMOVE_RECURSE
  "CMakeFiles/platform_edge_test.dir/platform/platform_edge_test.cc.o"
  "CMakeFiles/platform_edge_test.dir/platform/platform_edge_test.cc.o.d"
  "platform_edge_test"
  "platform_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
