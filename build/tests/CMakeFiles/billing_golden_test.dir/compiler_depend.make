# Empty compiler generated dependencies file for billing_golden_test.
# This may be replaced when dependencies are built.
