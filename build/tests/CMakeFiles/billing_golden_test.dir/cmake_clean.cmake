file(REMOVE_RECURSE
  "CMakeFiles/billing_golden_test.dir/billing/golden_test.cc.o"
  "CMakeFiles/billing_golden_test.dir/billing/golden_test.cc.o.d"
  "billing_golden_test"
  "billing_golden_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
