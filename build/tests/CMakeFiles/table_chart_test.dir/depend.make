# Empty dependencies file for table_chart_test.
# This may be replaced when dependencies are built.
