file(REMOVE_RECURSE
  "CMakeFiles/table_chart_test.dir/common/table_chart_test.cc.o"
  "CMakeFiles/table_chart_test.dir/common/table_chart_test.cc.o.d"
  "table_chart_test"
  "table_chart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_chart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
