# Empty dependencies file for bandwidth_ext_test.
# This may be replaced when dependencies are built.
