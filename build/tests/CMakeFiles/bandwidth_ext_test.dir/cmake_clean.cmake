file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_ext_test.dir/sched/bandwidth_ext_test.cc.o"
  "CMakeFiles/bandwidth_ext_test.dir/sched/bandwidth_ext_test.cc.o.d"
  "bandwidth_ext_test"
  "bandwidth_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
