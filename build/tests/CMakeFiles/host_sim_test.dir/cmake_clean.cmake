file(REMOVE_RECURSE
  "CMakeFiles/host_sim_test.dir/sched/host_sim_test.cc.o"
  "CMakeFiles/host_sim_test.dir/sched/host_sim_test.cc.o.d"
  "host_sim_test"
  "host_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
