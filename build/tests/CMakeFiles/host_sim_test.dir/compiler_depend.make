# Empty compiler generated dependencies file for host_sim_test.
# This may be replaced when dependencies are built.
