file(REMOVE_RECURSE
  "CMakeFiles/rightsizing_advisor.dir/rightsizing_advisor.cpp.o"
  "CMakeFiles/rightsizing_advisor.dir/rightsizing_advisor.cpp.o.d"
  "rightsizing_advisor"
  "rightsizing_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rightsizing_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
