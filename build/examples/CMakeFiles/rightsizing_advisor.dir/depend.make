# Empty dependencies file for rightsizing_advisor.
# This may be replaced when dependencies are built.
