file(REMOVE_RECURSE
  "CMakeFiles/fleet_operator.dir/fleet_operator.cpp.o"
  "CMakeFiles/fleet_operator.dir/fleet_operator.cpp.o.d"
  "fleet_operator"
  "fleet_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
