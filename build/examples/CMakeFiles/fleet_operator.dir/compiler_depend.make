# Empty compiler generated dependencies file for fleet_operator.
# This may be replaced when dependencies are built.
