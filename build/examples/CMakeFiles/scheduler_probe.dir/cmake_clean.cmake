file(REMOVE_RECURSE
  "CMakeFiles/scheduler_probe.dir/scheduler_probe.cpp.o"
  "CMakeFiles/scheduler_probe.dir/scheduler_probe.cpp.o.d"
  "scheduler_probe"
  "scheduler_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
