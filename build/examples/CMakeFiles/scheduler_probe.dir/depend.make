# Empty dependencies file for scheduler_probe.
# This may be replaced when dependencies are built.
