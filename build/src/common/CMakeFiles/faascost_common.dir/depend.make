# Empty dependencies file for faascost_common.
# This may be replaced when dependencies are built.
