file(REMOVE_RECURSE
  "CMakeFiles/faascost_common.dir/chart.cc.o"
  "CMakeFiles/faascost_common.dir/chart.cc.o.d"
  "CMakeFiles/faascost_common.dir/histogram.cc.o"
  "CMakeFiles/faascost_common.dir/histogram.cc.o.d"
  "CMakeFiles/faascost_common.dir/rng.cc.o"
  "CMakeFiles/faascost_common.dir/rng.cc.o.d"
  "CMakeFiles/faascost_common.dir/stats.cc.o"
  "CMakeFiles/faascost_common.dir/stats.cc.o.d"
  "CMakeFiles/faascost_common.dir/table.cc.o"
  "CMakeFiles/faascost_common.dir/table.cc.o.d"
  "libfaascost_common.a"
  "libfaascost_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faascost_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
