file(REMOVE_RECURSE
  "libfaascost_common.a"
)
