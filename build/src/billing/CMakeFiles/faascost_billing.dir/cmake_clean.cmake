file(REMOVE_RECURSE
  "CMakeFiles/faascost_billing.dir/analysis.cc.o"
  "CMakeFiles/faascost_billing.dir/analysis.cc.o.d"
  "CMakeFiles/faascost_billing.dir/catalog.cc.o"
  "CMakeFiles/faascost_billing.dir/catalog.cc.o.d"
  "CMakeFiles/faascost_billing.dir/instance_time.cc.o"
  "CMakeFiles/faascost_billing.dir/instance_time.cc.o.d"
  "CMakeFiles/faascost_billing.dir/model.cc.o"
  "CMakeFiles/faascost_billing.dir/model.cc.o.d"
  "libfaascost_billing.a"
  "libfaascost_billing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faascost_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
