file(REMOVE_RECURSE
  "libfaascost_billing.a"
)
