
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/billing/analysis.cc" "src/billing/CMakeFiles/faascost_billing.dir/analysis.cc.o" "gcc" "src/billing/CMakeFiles/faascost_billing.dir/analysis.cc.o.d"
  "/root/repo/src/billing/catalog.cc" "src/billing/CMakeFiles/faascost_billing.dir/catalog.cc.o" "gcc" "src/billing/CMakeFiles/faascost_billing.dir/catalog.cc.o.d"
  "/root/repo/src/billing/instance_time.cc" "src/billing/CMakeFiles/faascost_billing.dir/instance_time.cc.o" "gcc" "src/billing/CMakeFiles/faascost_billing.dir/instance_time.cc.o.d"
  "/root/repo/src/billing/model.cc" "src/billing/CMakeFiles/faascost_billing.dir/model.cc.o" "gcc" "src/billing/CMakeFiles/faascost_billing.dir/model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/faascost_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/faascost_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
