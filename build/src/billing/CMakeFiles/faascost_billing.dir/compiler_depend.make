# Empty compiler generated dependencies file for faascost_billing.
# This may be replaced when dependencies are built.
