file(REMOVE_RECURSE
  "CMakeFiles/faascost_cluster.dir/fleet_sim.cc.o"
  "CMakeFiles/faascost_cluster.dir/fleet_sim.cc.o.d"
  "CMakeFiles/faascost_cluster.dir/placement.cc.o"
  "CMakeFiles/faascost_cluster.dir/placement.cc.o.d"
  "libfaascost_cluster.a"
  "libfaascost_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faascost_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
