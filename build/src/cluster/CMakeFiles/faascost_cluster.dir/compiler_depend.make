# Empty compiler generated dependencies file for faascost_cluster.
# This may be replaced when dependencies are built.
