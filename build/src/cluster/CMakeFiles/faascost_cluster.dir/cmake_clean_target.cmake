file(REMOVE_RECURSE
  "libfaascost_cluster.a"
)
