file(REMOVE_RECURSE
  "CMakeFiles/faascost_platform.dir/autoscaler.cc.o"
  "CMakeFiles/faascost_platform.dir/autoscaler.cc.o.d"
  "CMakeFiles/faascost_platform.dir/coldstart.cc.o"
  "CMakeFiles/faascost_platform.dir/coldstart.cc.o.d"
  "CMakeFiles/faascost_platform.dir/keepalive.cc.o"
  "CMakeFiles/faascost_platform.dir/keepalive.cc.o.d"
  "CMakeFiles/faascost_platform.dir/platform_sim.cc.o"
  "CMakeFiles/faascost_platform.dir/platform_sim.cc.o.d"
  "CMakeFiles/faascost_platform.dir/presets.cc.o"
  "CMakeFiles/faascost_platform.dir/presets.cc.o.d"
  "CMakeFiles/faascost_platform.dir/serving.cc.o"
  "CMakeFiles/faascost_platform.dir/serving.cc.o.d"
  "CMakeFiles/faascost_platform.dir/workload.cc.o"
  "CMakeFiles/faascost_platform.dir/workload.cc.o.d"
  "libfaascost_platform.a"
  "libfaascost_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faascost_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
