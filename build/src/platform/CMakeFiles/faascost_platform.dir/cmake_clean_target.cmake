file(REMOVE_RECURSE
  "libfaascost_platform.a"
)
