
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/autoscaler.cc" "src/platform/CMakeFiles/faascost_platform.dir/autoscaler.cc.o" "gcc" "src/platform/CMakeFiles/faascost_platform.dir/autoscaler.cc.o.d"
  "/root/repo/src/platform/coldstart.cc" "src/platform/CMakeFiles/faascost_platform.dir/coldstart.cc.o" "gcc" "src/platform/CMakeFiles/faascost_platform.dir/coldstart.cc.o.d"
  "/root/repo/src/platform/keepalive.cc" "src/platform/CMakeFiles/faascost_platform.dir/keepalive.cc.o" "gcc" "src/platform/CMakeFiles/faascost_platform.dir/keepalive.cc.o.d"
  "/root/repo/src/platform/platform_sim.cc" "src/platform/CMakeFiles/faascost_platform.dir/platform_sim.cc.o" "gcc" "src/platform/CMakeFiles/faascost_platform.dir/platform_sim.cc.o.d"
  "/root/repo/src/platform/presets.cc" "src/platform/CMakeFiles/faascost_platform.dir/presets.cc.o" "gcc" "src/platform/CMakeFiles/faascost_platform.dir/presets.cc.o.d"
  "/root/repo/src/platform/serving.cc" "src/platform/CMakeFiles/faascost_platform.dir/serving.cc.o" "gcc" "src/platform/CMakeFiles/faascost_platform.dir/serving.cc.o.d"
  "/root/repo/src/platform/workload.cc" "src/platform/CMakeFiles/faascost_platform.dir/workload.cc.o" "gcc" "src/platform/CMakeFiles/faascost_platform.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/faascost_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/faascost_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
