# Empty compiler generated dependencies file for faascost_platform.
# This may be replaced when dependencies are built.
