
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/bandwidth_sim.cc" "src/sched/CMakeFiles/faascost_sched.dir/bandwidth_sim.cc.o" "gcc" "src/sched/CMakeFiles/faascost_sched.dir/bandwidth_sim.cc.o.d"
  "/root/repo/src/sched/closed_form.cc" "src/sched/CMakeFiles/faascost_sched.dir/closed_form.cc.o" "gcc" "src/sched/CMakeFiles/faascost_sched.dir/closed_form.cc.o.d"
  "/root/repo/src/sched/config.cc" "src/sched/CMakeFiles/faascost_sched.dir/config.cc.o" "gcc" "src/sched/CMakeFiles/faascost_sched.dir/config.cc.o.d"
  "/root/repo/src/sched/host_sim.cc" "src/sched/CMakeFiles/faascost_sched.dir/host_sim.cc.o" "gcc" "src/sched/CMakeFiles/faascost_sched.dir/host_sim.cc.o.d"
  "/root/repo/src/sched/inference.cc" "src/sched/CMakeFiles/faascost_sched.dir/inference.cc.o" "gcc" "src/sched/CMakeFiles/faascost_sched.dir/inference.cc.o.d"
  "/root/repo/src/sched/overalloc.cc" "src/sched/CMakeFiles/faascost_sched.dir/overalloc.cc.o" "gcc" "src/sched/CMakeFiles/faascost_sched.dir/overalloc.cc.o.d"
  "/root/repo/src/sched/profiler.cc" "src/sched/CMakeFiles/faascost_sched.dir/profiler.cc.o" "gcc" "src/sched/CMakeFiles/faascost_sched.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/faascost_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
