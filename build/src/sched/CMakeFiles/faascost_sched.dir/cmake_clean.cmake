file(REMOVE_RECURSE
  "CMakeFiles/faascost_sched.dir/bandwidth_sim.cc.o"
  "CMakeFiles/faascost_sched.dir/bandwidth_sim.cc.o.d"
  "CMakeFiles/faascost_sched.dir/closed_form.cc.o"
  "CMakeFiles/faascost_sched.dir/closed_form.cc.o.d"
  "CMakeFiles/faascost_sched.dir/config.cc.o"
  "CMakeFiles/faascost_sched.dir/config.cc.o.d"
  "CMakeFiles/faascost_sched.dir/host_sim.cc.o"
  "CMakeFiles/faascost_sched.dir/host_sim.cc.o.d"
  "CMakeFiles/faascost_sched.dir/inference.cc.o"
  "CMakeFiles/faascost_sched.dir/inference.cc.o.d"
  "CMakeFiles/faascost_sched.dir/overalloc.cc.o"
  "CMakeFiles/faascost_sched.dir/overalloc.cc.o.d"
  "CMakeFiles/faascost_sched.dir/profiler.cc.o"
  "CMakeFiles/faascost_sched.dir/profiler.cc.o.d"
  "libfaascost_sched.a"
  "libfaascost_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faascost_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
