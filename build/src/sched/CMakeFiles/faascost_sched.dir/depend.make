# Empty dependencies file for faascost_sched.
# This may be replaced when dependencies are built.
