file(REMOVE_RECURSE
  "libfaascost_sched.a"
)
