
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/generator.cc" "src/trace/CMakeFiles/faascost_trace.dir/generator.cc.o" "gcc" "src/trace/CMakeFiles/faascost_trace.dir/generator.cc.o.d"
  "/root/repo/src/trace/io.cc" "src/trace/CMakeFiles/faascost_trace.dir/io.cc.o" "gcc" "src/trace/CMakeFiles/faascost_trace.dir/io.cc.o.d"
  "/root/repo/src/trace/summary.cc" "src/trace/CMakeFiles/faascost_trace.dir/summary.cc.o" "gcc" "src/trace/CMakeFiles/faascost_trace.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/faascost_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
