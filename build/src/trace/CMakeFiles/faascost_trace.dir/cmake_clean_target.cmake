file(REMOVE_RECURSE
  "libfaascost_trace.a"
)
