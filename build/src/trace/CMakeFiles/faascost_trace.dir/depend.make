# Empty dependencies file for faascost_trace.
# This may be replaced when dependencies are built.
