file(REMOVE_RECURSE
  "CMakeFiles/faascost_trace.dir/generator.cc.o"
  "CMakeFiles/faascost_trace.dir/generator.cc.o.d"
  "CMakeFiles/faascost_trace.dir/io.cc.o"
  "CMakeFiles/faascost_trace.dir/io.cc.o.d"
  "CMakeFiles/faascost_trace.dir/summary.cc.o"
  "CMakeFiles/faascost_trace.dir/summary.cc.o.d"
  "libfaascost_trace.a"
  "libfaascost_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faascost_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
