file(REMOVE_RECURSE
  "libfaascost_core.a"
)
