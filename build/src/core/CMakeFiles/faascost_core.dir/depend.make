# Empty dependencies file for faascost_core.
# This may be replaced when dependencies are built.
