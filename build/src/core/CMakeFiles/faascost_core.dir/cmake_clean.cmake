file(REMOVE_RECURSE
  "CMakeFiles/faascost_core.dir/cost_decomposition.cc.o"
  "CMakeFiles/faascost_core.dir/cost_decomposition.cc.o.d"
  "CMakeFiles/faascost_core.dir/exploits.cc.o"
  "CMakeFiles/faascost_core.dir/exploits.cc.o.d"
  "CMakeFiles/faascost_core.dir/provider_economics.cc.o"
  "CMakeFiles/faascost_core.dir/provider_economics.cc.o.d"
  "CMakeFiles/faascost_core.dir/rightsizing.cc.o"
  "CMakeFiles/faascost_core.dir/rightsizing.cc.o.d"
  "libfaascost_core.a"
  "libfaascost_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faascost_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
