file(REMOVE_RECURSE
  "CMakeFiles/faascost.dir/faascost_cli.cc.o"
  "CMakeFiles/faascost.dir/faascost_cli.cc.o.d"
  "faascost"
  "faascost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faascost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
