# Empty dependencies file for faascost.
# This may be replaced when dependencies are built.
