file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ka_behavior.dir/bench_table2_ka_behavior.cc.o"
  "CMakeFiles/bench_table2_ka_behavior.dir/bench_table2_ka_behavior.cc.o.d"
  "bench_table2_ka_behavior"
  "bench_table2_ka_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ka_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
