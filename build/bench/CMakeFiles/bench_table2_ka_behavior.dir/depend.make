# Empty dependencies file for bench_table2_ka_behavior.
# This may be replaced when dependencies are built.
