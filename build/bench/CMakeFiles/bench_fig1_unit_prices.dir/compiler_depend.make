# Empty compiler generated dependencies file for bench_fig1_unit_prices.
# This may be replaced when dependencies are built.
