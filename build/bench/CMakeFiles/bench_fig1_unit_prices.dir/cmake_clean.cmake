file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_unit_prices.dir/bench_fig1_unit_prices.cc.o"
  "CMakeFiles/bench_fig1_unit_prices.dir/bench_fig1_unit_prices.cc.o.d"
  "bench_fig1_unit_prices"
  "bench_fig1_unit_prices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_unit_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
