file(REMOVE_RECURSE
  "CMakeFiles/bench_provider_economics.dir/bench_provider_economics.cc.o"
  "CMakeFiles/bench_provider_economics.dir/bench_provider_economics.cc.o.d"
  "bench_provider_economics"
  "bench_provider_economics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_provider_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
