# Empty compiler generated dependencies file for bench_provider_economics.
# This may be replaced when dependencies are built.
