file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_overallocation.dir/bench_fig10_overallocation.cc.o"
  "CMakeFiles/bench_fig10_overallocation.dir/bench_fig10_overallocation.cc.o.d"
  "bench_fig10_overallocation"
  "bench_fig10_overallocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_overallocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
