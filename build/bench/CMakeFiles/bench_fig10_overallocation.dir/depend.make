# Empty dependencies file for bench_fig10_overallocation.
# This may be replaced when dependencies are built.
