file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_keepalive.dir/bench_fig9_keepalive.cc.o"
  "CMakeFiles/bench_fig9_keepalive.dir/bench_fig9_keepalive.cc.o.d"
  "bench_fig9_keepalive"
  "bench_fig9_keepalive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_keepalive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
