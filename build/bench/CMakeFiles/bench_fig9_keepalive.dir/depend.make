# Empty dependencies file for bench_fig9_keepalive.
# This may be replaced when dependencies are built.
