file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_throttle_profile.dir/bench_fig12_throttle_profile.cc.o"
  "CMakeFiles/bench_fig12_throttle_profile.dir/bench_fig12_throttle_profile.cc.o.d"
  "bench_fig12_throttle_profile"
  "bench_fig12_throttle_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_throttle_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
