# Empty compiler generated dependencies file for bench_fig8_serving_overhead.
# This may be replaced when dependencies are built.
