# Empty compiler generated dependencies file for bench_coldstart_runtimes.
# This may be replaced when dependencies are built.
