file(REMOVE_RECURSE
  "CMakeFiles/bench_coldstart_runtimes.dir/bench_coldstart_runtimes.cc.o"
  "CMakeFiles/bench_coldstart_runtimes.dir/bench_coldstart_runtimes.cc.o.d"
  "bench_coldstart_runtimes"
  "bench_coldstart_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coldstart_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
