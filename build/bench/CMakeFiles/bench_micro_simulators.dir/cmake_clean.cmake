file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_simulators.dir/bench_micro_simulators.cc.o"
  "CMakeFiles/bench_micro_simulators.dir/bench_micro_simulators.cc.o.d"
  "bench_micro_simulators"
  "bench_micro_simulators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_simulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
