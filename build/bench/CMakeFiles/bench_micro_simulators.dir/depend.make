# Empty dependencies file for bench_micro_simulators.
# This may be replaced when dependencies are built.
