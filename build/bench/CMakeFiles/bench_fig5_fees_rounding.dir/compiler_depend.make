# Empty compiler generated dependencies file for bench_fig5_fees_rounding.
# This may be replaced when dependencies are built.
