file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fees_rounding.dir/bench_fig5_fees_rounding.cc.o"
  "CMakeFiles/bench_fig5_fees_rounding.dir/bench_fig5_fees_rounding.cc.o.d"
  "bench_fig5_fees_rounding"
  "bench_fig5_fees_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fees_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
