file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_param_inference.dir/bench_table3_param_inference.cc.o"
  "CMakeFiles/bench_table3_param_inference.dir/bench_table3_param_inference.cc.o.d"
  "bench_table3_param_inference"
  "bench_table3_param_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_param_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
