# Empty compiler generated dependencies file for bench_table3_param_inference.
# This may be replaced when dependencies are built.
