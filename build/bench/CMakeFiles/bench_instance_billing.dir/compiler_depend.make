# Empty compiler generated dependencies file for bench_instance_billing.
# This may be replaced when dependencies are built.
