file(REMOVE_RECURSE
  "CMakeFiles/bench_instance_billing.dir/bench_instance_billing.cc.o"
  "CMakeFiles/bench_instance_billing.dir/bench_instance_billing.cc.o.d"
  "bench_instance_billing"
  "bench_instance_billing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instance_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
