file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_concurrency.dir/bench_fig6_concurrency.cc.o"
  "CMakeFiles/bench_fig6_concurrency.dir/bench_fig6_concurrency.cc.o.d"
  "bench_fig6_concurrency"
  "bench_fig6_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
