# Empty dependencies file for bench_fig4_coldstart_cost.
# This may be replaced when dependencies are built.
