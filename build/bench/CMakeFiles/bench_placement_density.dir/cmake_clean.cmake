file(REMOVE_RECURSE
  "CMakeFiles/bench_placement_density.dir/bench_placement_density.cc.o"
  "CMakeFiles/bench_placement_density.dir/bench_placement_density.cc.o.d"
  "bench_placement_density"
  "bench_placement_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_placement_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
