# Empty compiler generated dependencies file for bench_fig2_billable_inflation.
# This may be replaced when dependencies are built.
