file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_billable_inflation.dir/bench_fig2_billable_inflation.cc.o"
  "CMakeFiles/bench_fig2_billable_inflation.dir/bench_fig2_billable_inflation.cc.o.d"
  "bench_fig2_billable_inflation"
  "bench_fig2_billable_inflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_billable_inflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
