file(REMOVE_RECURSE
  "CMakeFiles/bench_cotenancy.dir/bench_cotenancy.cc.o"
  "CMakeFiles/bench_cotenancy.dir/bench_cotenancy.cc.o.d"
  "bench_cotenancy"
  "bench_cotenancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cotenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
