# Empty dependencies file for bench_cotenancy.
# This may be replaced when dependencies are built.
