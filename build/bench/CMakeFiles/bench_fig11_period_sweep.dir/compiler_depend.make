# Empty compiler generated dependencies file for bench_fig11_period_sweep.
# This may be replaced when dependencies are built.
