# Empty compiler generated dependencies file for bench_fleet_economics.
# This may be replaced when dependencies are built.
