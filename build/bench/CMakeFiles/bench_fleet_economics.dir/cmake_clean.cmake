file(REMOVE_RECURSE
  "CMakeFiles/bench_fleet_economics.dir/bench_fleet_economics.cc.o"
  "CMakeFiles/bench_fleet_economics.dir/bench_fleet_economics.cc.o.d"
  "bench_fleet_economics"
  "bench_fleet_economics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fleet_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
