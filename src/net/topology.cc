#include "src/net/topology.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

namespace faascost {

MicroSecs PathInfo::TransferTime(int64_t bytes) const {
  if (!reachable || bytes <= 0) {
    return reachable ? latency : 0;
  }
  if (bytes_per_us <= 0.0) {
    return latency;
  }
  const double serialization = static_cast<double>(bytes) / bytes_per_us;
  return latency + static_cast<MicroSecs>(std::ceil(serialization));
}

bool PathInfo::SameRoute(const PathInfo& other) const {
  if (reachable != other.reachable || latency != other.latency) {
    return false;
  }
  for (int c = 0; c < kTransferClassCount; ++c) {
    if (hops[c] != other.hops[c]) {
      return false;
    }
  }
  return true;
}

int NetTopology::AddLink(int a, int b, MicroSecs latency, double gbps,
                         TransferClass cls_ab, TransferClass cls_ba) {
  if (a < 0 || a >= node_count() || b < 0 || b >= node_count() || a == b) {
    throw std::invalid_argument("NetTopology::AddLink: invalid endpoints");
  }
  NetLink l;
  l.a = a;
  l.b = b;
  l.latency = latency;
  l.gbps = gbps;
  l.cls_ab = cls_ab;
  l.cls_ba = cls_ba;
  links_.push_back(l);
  const int idx = static_cast<int>(links_.size()) - 1;
  adjacency_[static_cast<size_t>(a)].push_back(idx);
  adjacency_[static_cast<size_t>(b)].push_back(idx);
  return idx;
}

PathInfo NetTopology::Route(int src, int dst, const std::vector<bool>& down_link,
                            const std::vector<bool>& no_transit) const {
  PathInfo out;
  const int n = node_count();
  if (src < 0 || src >= n || dst < 0 || dst >= n || src == dst) {
    return out;
  }
  const auto link_down = [&](int l) {
    return static_cast<size_t>(l) < down_link.size() && down_link[static_cast<size_t>(l)];
  };
  const auto transit_blocked = [&](int node) {
    return static_cast<size_t>(node) < no_transit.size() &&
           no_transit[static_cast<size_t>(node)];
  };

  constexpr MicroSecs kUnreached = std::numeric_limits<MicroSecs>::max();
  std::vector<MicroSecs> dist(static_cast<size_t>(n), kUnreached);
  std::vector<int> via_link(static_cast<size_t>(n), -1);
  std::vector<int> via_node(static_cast<size_t>(n), -1);
  // (distance, node): the node id breaks latency ties, so equal-cost routes
  // resolve identically on every run.
  using Entry = std::pair<MicroSecs, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  dist[static_cast<size_t>(src)] = 0;
  heap.push({0, src});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[static_cast<size_t>(u)]) {
      continue;  // Stale entry.
    }
    if (u == dst) {
      break;
    }
    if (u != src && transit_blocked(u)) {
      continue;  // May terminate traffic, may not forward it.
    }
    for (const int li : adjacency_[static_cast<size_t>(u)]) {
      if (link_down(li)) {
        continue;
      }
      const NetLink& l = links_[static_cast<size_t>(li)];
      const int v = l.a == u ? l.b : l.a;
      const MicroSecs nd = d + l.latency;
      if (nd < dist[static_cast<size_t>(v)]) {
        dist[static_cast<size_t>(v)] = nd;
        via_link[static_cast<size_t>(v)] = li;
        via_node[static_cast<size_t>(v)] = u;
        heap.push({nd, v});
      }
    }
  }
  if (dist[static_cast<size_t>(dst)] == kUnreached) {
    return out;
  }
  out.reachable = true;
  out.latency = dist[static_cast<size_t>(dst)];
  out.bytes_per_us = std::numeric_limits<double>::max();
  for (int v = dst; v != src; v = via_node[static_cast<size_t>(v)]) {
    const NetLink& l = links_[static_cast<size_t>(via_link[static_cast<size_t>(v)])];
    const int u = via_node[static_cast<size_t>(v)];
    const TransferClass cls = l.a == u ? l.cls_ab : l.cls_ba;
    ++out.hops[static_cast<int>(cls)];
    out.bytes_per_us = std::min(out.bytes_per_us, l.gbps * kBytesPerUsPerGbps);
  }
  return out;
}

std::vector<std::string> CloudTopologyParams::Validate() const {
  std::vector<std::string> errors;
  if (zones < 1) {
    errors.push_back("zones must be >= 1");
  }
  if (zones_per_region < 1) {
    errors.push_back("zones_per_region must be >= 1");
  }
  if (intra_zone_latency < 0 || inter_zone_latency < 0 || inter_region_latency < 0 ||
      internet_latency < 0) {
    errors.push_back("latencies must be >= 0");
  }
  if (intra_zone_gbps <= 0.0 || inter_zone_gbps <= 0.0 || inter_region_gbps <= 0.0 ||
      uplink_gbps <= 0.0 || backup_uplink_gbps <= 0.0) {
    errors.push_back("bandwidths must be > 0");
  }
  return errors;
}

NetTopology MakeCloudTopology(const CloudTopologyParams& params) {
  NetTopology topo;
  for (int z = 0; z < params.zones; ++z) {
    topo.AddNode();
  }
  const int internet = topo.AddNode();

  for (int r = 0; r < params.regions(); ++r) {
    const int lo = r * params.zones_per_region;
    const int hi = std::min(lo + params.zones_per_region, params.zones);
    const int count = hi - lo;
    // Cross-zone ring (a single pair gets one link, a lone zone none).
    if (count == 2) {
      topo.AddLink(lo, lo + 1, params.inter_zone_latency, params.inter_zone_gbps,
                   TransferClass::kInterZone, TransferClass::kInterZone);
    } else if (count > 2) {
      for (int z = lo; z < hi; ++z) {
        const int next = z + 1 == hi ? lo : z + 1;
        topo.AddLink(z, next, params.inter_zone_latency, params.inter_zone_gbps,
                     TransferClass::kInterZone, TransferClass::kInterZone);
      }
    }
    // Primary uplink in the region's first zone; thinner, slower backup in
    // its second. The two-ring-hop latency handicap makes the primary
    // *strictly* preferred from every zone while it is up: reaching the
    // backup zone costs at most one ring hop more than reaching the primary,
    // so the healthy route never ties with (or loses to) the backup.
    topo.AddLink(lo, internet, params.internet_latency, params.uplink_gbps,
                 TransferClass::kInternetEgress, TransferClass::kInternetIngress);
    if (count >= 2) {
      topo.AddLink(lo + 1, internet,
                   params.internet_latency + 2 * params.inter_zone_latency,
                   params.backup_uplink_gbps, TransferClass::kInternetEgress,
                   TransferClass::kInternetIngress);
    }
  }
  // Region peering: primary zones, full mesh (region counts are small).
  for (int r1 = 0; r1 < params.regions(); ++r1) {
    for (int r2 = r1 + 1; r2 < params.regions(); ++r2) {
      topo.AddLink(r1 * params.zones_per_region, r2 * params.zones_per_region,
                   params.inter_region_latency, params.inter_region_gbps,
                   TransferClass::kInterRegion, TransferClass::kInterRegion);
    }
  }
  return topo;
}

}  // namespace faascost
