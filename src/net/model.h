// NetworkModel: the single object a simulator attaches to route payloads.
//
// It bundles the zone/region topology (topology.h), the provider's transfer
// price sheet (billing/tiered.h), a deterministic payload-size model, and
// the zonal-outage windows, behind two kinds of calls:
//
//   - *Pure* time queries (TransferTime / path lookups): no state touched,
//     callable in any order. Simulators use these to shift event times.
//   - *Stateful* metering (Transfer / MeterOps): walks the monthly-
//     cumulative price ladder, so calls must happen in event-processing
//     order. Each call returns the marginal USD it charged; the sum of
//     those marginals is bill().TotalUsd() bit-for-bit, which is what lets
//     end-of-run decompositions reconcile bitwise against per-event
//     telemetry (obs/timeseries.h).
//
// Attachment contract (span.h / timeseries.h): simulators hold a raw
// `NetworkModel*` defaulting to null. Detached, every hook is one pointer
// test and runs stay bit-identical to pre-network goldens. Attached, the
// model draws payload sizes only from its own DeriveSeed stream
// (kNetStream), never from the simulator's existing streams. The model is
// caller-owned run state, like a TraceSink — it is not archived in
// checkpoints, so resuming a network-attached engine requires handing the
// resumed engine the same live model instance.
//
// Outage windows degrade a zone's network edge: its internet uplink and
// region peerings go down and it stops forwarding transit, while the
// cross-zone ring stays up so resident traffic detours via peers — paying
// cross-zone per-GB charges it normally would not (the egress-cost
// consequence) through a thinner backup uplink (the bandwidth consequence).
// If no detour exists the baseline route is used unchanged: outages degrade
// the network, they never wedge the simulation.

#ifndef FAASCOST_NET_MODEL_H_
#define FAASCOST_NET_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/billing/tiered.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/net/topology.h"

namespace faascost {

// A zonal outage window on the network edge, [start, start + duration).
// Mirrors the workflow engine's ZonalOutageSpec so one scenario can feed
// both the capacity consequence and the network consequence.
struct NetOutage {
  int zone = 0;
  MicroSecs start = 0;
  MicroSecs duration = 0;
};

// Deterministic per-attempt payload sizes. A mean of 0 disables that
// direction (the transfer still happens with the caller's explicit bytes).
// Sizes are lognormal in ln-space — payload distributions are heavy-tailed
// like every other FaaS workload dimension — drawn from an Rng seeded via
// DeriveSeed(kNetStream), a pure function of (function, request, attempt):
// interleaving-independent, and untouched by any simulator stream.
struct PayloadModelParams {
  double request_mean_kb = 0.0;
  double request_sigma = 1.0;
  double response_mean_kb = 0.0;
  double response_sigma = 1.0;
};

struct NetworkModelConfig {
  CloudTopologyParams topology;
  PayloadModelParams payload;
  // Storage operations the function performs per executed attempt (S3/GCS
  // class A = mutate, class B = read). Billed flat per op.
  int64_t class_a_ops_per_request = 0;
  int64_t class_b_ops_per_request = 0;
  // A failed attempt still answers the client — with an error body, not the
  // full response payload.
  int64_t error_response_bytes = 1024;
  std::vector<NetOutage> outages;

  std::vector<std::string> Validate() const;
};

// One metered transfer: how long it took and what it charged. `usd` is the
// marginal tier-walked charge; `detour_usd` is the (clamped-at-zero) part of
// it the baseline no-outage route would not have incurred.
struct TransferCharge {
  MicroSecs time = 0;
  Usd usd = 0.0;
  Usd detour_usd = 0.0;
  bool rerouted = false;
  int64_t bytes = 0;
};

struct AttemptPayload {
  int64_t request_bytes = 0;
  int64_t response_bytes = 0;
};

class NetworkModel {
 public:
  // Zone argument meaning "the public internet / the client".
  static constexpr int kInternet = -1;

  // Throws std::invalid_argument on invalid config or pricing.
  NetworkModel(NetworkModelConfig config, NetworkPricing pricing, uint64_t seed);

  const NetworkModelConfig& config() const { return config_; }
  int zones() const { return config_.topology.zones; }
  // Deterministic zone assignment for callers without a placement notion.
  int ZoneOf(int64_t key) const {
    const int z = static_cast<int>(key % static_cast<int64_t>(zones()));
    return z < 0 ? z + zones() : z;
  }

  // Payload sizes for one attempt. Explicit hints (trace record bytes > 0)
  // win; otherwise sizes are drawn from the attempt's derived stream. The
  // response hint/draw is replaced by error_response_bytes when !ok.
  AttemptPayload PayloadFor(int64_t function_id, int64_t req_idx, int attempt,
                            int64_t request_hint, int64_t response_hint, bool ok) const;

  // Pure transfer time between zones (kInternet = the client side) at sim
  // time t, under whatever outage windows cover t. No state is touched.
  MicroSecs TransferTime(int src_zone, int dst_zone, int64_t bytes, MicroSecs t) const;

  // Stateful: meters `bytes` over the route active at time t and returns
  // the marginal charge. Call in event-processing order.
  TransferCharge Transfer(int src_zone, int dst_zone, int64_t bytes, MicroSecs t);
  // Stateful: flat-priced storage operations; returns the marginal charge.
  Usd MeterOps(int64_t class_a, int64_t class_b);
  // The per-request operation bundle from the config.
  Usd MeterRequestOps() {
    return MeterOps(config_.class_a_ops_per_request, config_.class_b_ops_per_request);
  }

  bool InOutage(int zone, MicroSecs t) const;
  const NetworkBill& bill() const { return meter_.bill(); }
  const TrafficMeter& meter() const { return meter_; }
  const NetTopology& topology() const { return topo_; }

 private:
  // Outage timeline: index of the constant-mask interval containing t.
  int64_t IntervalFor(MicroSecs t) const;
  // Route under the mask of interval `interval`, cached. Node arguments.
  const PathInfo& PathFor(int src_node, int dst_node, int64_t interval) const;
  int NodeOf(int zone) const;  // kInternet -> internet node.
  PathInfo IntraZonePath() const;

  NetworkModelConfig config_;
  TrafficMeter meter_;
  uint64_t payload_seed_ = 0;
  double req_ln_mu_ = 0.0;
  double resp_ln_mu_ = 0.0;
  NetTopology topo_;
  std::vector<MicroSecs> boundaries_;  // Sorted outage start/end times.
  // (interval, src, dst) -> path. Mutable: a deterministic cache over pure
  // routing results, safe to fill from const time queries.
  mutable std::map<std::pair<int64_t, std::pair<int, int>>, PathInfo> routes_;
};

}  // namespace faascost

#endif  // FAASCOST_NET_MODEL_H_
