#include "src/net/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace faascost {

namespace {

// Payload streams per request: request size, then response size. The
// per-attempt sub-stream mirrors the workflow engine's AttemptSeed shape so
// payloads are a pure function of identity, not of interleaving.
constexpr int kMaxAttemptsPerRequest = 64;

// Lognormal location for a target mean: mean = exp(mu + sigma^2/2).
double LnMuForMeanBytes(double mean_kb, double sigma) {
  if (mean_kb <= 0.0) {
    return 0.0;
  }
  return std::log(mean_kb * 1024.0) - 0.5 * sigma * sigma;
}

}  // namespace

std::vector<std::string> NetworkModelConfig::Validate() const {
  std::vector<std::string> errors = topology.Validate();
  if (payload.request_mean_kb < 0.0 || payload.response_mean_kb < 0.0) {
    errors.push_back("payload means must be >= 0 (0 disables)");
  }
  if (payload.request_sigma < 0.0 || payload.response_sigma < 0.0) {
    errors.push_back("payload sigmas must be >= 0");
  }
  if (class_a_ops_per_request < 0 || class_b_ops_per_request < 0) {
    errors.push_back("per-request op counts must be >= 0");
  }
  if (error_response_bytes < 0) {
    errors.push_back("error_response_bytes must be >= 0");
  }
  for (size_t i = 0; i < outages.size(); ++i) {
    const NetOutage& o = outages[i];
    if (o.zone < 0 || o.zone >= topology.zones) {
      errors.push_back("outage " + std::to_string(i) + " names an invalid zone");
    }
    if (o.start < 0 || o.duration <= 0) {
      errors.push_back("outage " + std::to_string(i) + " has an empty window");
    }
  }
  return errors;
}

NetworkModel::NetworkModel(NetworkModelConfig config, NetworkPricing pricing,
                           uint64_t seed)
    : config_(std::move(config)),
      meter_(std::move(pricing)),
      payload_seed_(DeriveSeed(seed, kNetStream)),
      topo_(MakeCloudTopology(config_.topology)) {
  std::vector<std::string> errors = config_.Validate();
  for (const std::string& e : meter_.pricing().Validate()) {
    errors.push_back("pricing: " + e);
  }
  if (!errors.empty()) {
    std::string joined = "invalid NetworkModel configuration:";
    for (const std::string& e : errors) {
      joined += "\n  " + e;
    }
    throw std::invalid_argument(joined);
  }
  req_ln_mu_ = LnMuForMeanBytes(config_.payload.request_mean_kb,
                                config_.payload.request_sigma);
  resp_ln_mu_ = LnMuForMeanBytes(config_.payload.response_mean_kb,
                                 config_.payload.response_sigma);
  for (const NetOutage& o : config_.outages) {
    boundaries_.push_back(o.start);
    boundaries_.push_back(o.start + o.duration);
  }
  std::sort(boundaries_.begin(), boundaries_.end());
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
}

AttemptPayload NetworkModel::PayloadFor(int64_t function_id, int64_t req_idx,
                                        int attempt, int64_t request_hint,
                                        int64_t response_hint, bool ok) const {
  AttemptPayload p;
  const bool draw_req = request_hint <= 0 && config_.payload.request_mean_kb > 0.0;
  const bool draw_resp = response_hint <= 0 && config_.payload.response_mean_kb > 0.0;
  if (draw_req || draw_resp) {
    const uint64_t fn_seed = DeriveSeed(payload_seed_, static_cast<uint64_t>(function_id));
    const uint64_t sub = static_cast<uint64_t>(req_idx) * kMaxAttemptsPerRequest +
                         static_cast<uint64_t>(attempt % kMaxAttemptsPerRequest);
    Rng rng(DeriveSeed(fn_seed, sub));
    // Fixed draw order: request, then response, whether or not each is used.
    const double req_draw = rng.LogNormal(req_ln_mu_, config_.payload.request_sigma);
    const double resp_draw = rng.LogNormal(resp_ln_mu_, config_.payload.response_sigma);
    if (draw_req) {
      p.request_bytes = static_cast<int64_t>(std::llround(req_draw));
    }
    if (draw_resp) {
      p.response_bytes = static_cast<int64_t>(std::llround(resp_draw));
    }
  }
  if (request_hint > 0) {
    p.request_bytes = request_hint;
  }
  if (response_hint > 0) {
    p.response_bytes = response_hint;
  }
  if (!ok) {
    p.response_bytes = config_.error_response_bytes;
  }
  return p;
}

int64_t NetworkModel::IntervalFor(MicroSecs t) const {
  // Interval i covers [boundaries_[i-1], boundaries_[i]); interval 0 is
  // everything before the first boundary.
  return std::upper_bound(boundaries_.begin(), boundaries_.end(), t) -
         boundaries_.begin();
}

bool NetworkModel::InOutage(int zone, MicroSecs t) const {
  for (const NetOutage& o : config_.outages) {
    if (o.zone == zone && t >= o.start && t < o.start + o.duration) {
      return true;
    }
  }
  return false;
}

int NetworkModel::NodeOf(int zone) const {
  return zone == kInternet ? zones() : zone;
}

PathInfo NetworkModel::IntraZonePath() const {
  PathInfo p;
  p.reachable = true;
  p.latency = config_.topology.intra_zone_latency;
  p.bytes_per_us = config_.topology.intra_zone_gbps * kBytesPerUsPerGbps;
  p.hops[static_cast<int>(TransferClass::kIntraZone)] = 1;
  return p;
}

const PathInfo& NetworkModel::PathFor(int src_node, int dst_node,
                                      int64_t interval) const {
  const auto key = std::make_pair(interval, std::make_pair(src_node, dst_node));
  const auto it = routes_.find(key);
  if (it != routes_.end()) {
    return it->second;
  }
  // Mask for this interval (a negative interval is the baseline sentinel:
  // no outage mask at all). Any probe time inside the interval gives the
  // same mask; the interval's left edge works because windows are half-open.
  std::vector<bool> down_link(static_cast<size_t>(topo_.link_count()), false);
  std::vector<bool> no_transit(static_cast<size_t>(topo_.node_count()), false);
  if (interval >= 0) {
    MicroSecs probe = 0;
    if (interval > 0) {
      probe = boundaries_[static_cast<size_t>(interval - 1)];
    }
    for (int z = 0; z < zones(); ++z) {
      if (!InOutage(z, probe)) {
        continue;
      }
      no_transit[static_cast<size_t>(z)] = true;
      for (const int li : topo_.LinksAt(z)) {
        const NetLink& l = topo_.link(li);
        // The zone's edge goes dark: uplinks and region peerings. The
        // cross-zone ring stays up so resident traffic can detour.
        if (l.cls_ab == TransferClass::kInternetEgress ||
            l.cls_ab == TransferClass::kInterRegion) {
          down_link[static_cast<size_t>(li)] = true;
        }
      }
    }
  }
  PathInfo path = topo_.Route(src_node, dst_node, down_link, no_transit);
  if (!path.reachable) {
    // No detour exists (e.g. a single-zone region fully dark): degrade to
    // the baseline route rather than wedging the simulation.
    path = topo_.Route(src_node, dst_node, {}, {});
  }
  return routes_.emplace(key, path).first->second;
}

MicroSecs NetworkModel::TransferTime(int src_zone, int dst_zone, int64_t bytes,
                                     MicroSecs t) const {
  if (bytes <= 0) {
    return 0;
  }
  if (src_zone == dst_zone) {
    return src_zone == kInternet ? 0 : IntraZonePath().TransferTime(bytes);
  }
  return PathFor(NodeOf(src_zone), NodeOf(dst_zone), IntervalFor(t)).TransferTime(bytes);
}

TransferCharge NetworkModel::Transfer(int src_zone, int dst_zone, int64_t bytes,
                                      MicroSecs t) {
  TransferCharge charge;
  if (bytes <= 0) {
    return charge;
  }
  charge.bytes = bytes;
  const PathInfo intra = IntraZonePath();
  const PathInfo* path = &intra;
  const PathInfo* baseline = &intra;
  if (src_zone != dst_zone) {
    const int src = NodeOf(src_zone);
    const int dst = NodeOf(dst_zone);
    path = &PathFor(src, dst, IntervalFor(t));
    baseline = &PathFor(src, dst, -1);  // Sentinel: the no-outage route.
  } else if (src_zone == kInternet) {
    return charge;  // Internet-to-internet moves nothing we bill.
  }
  charge.time = path->TransferTime(bytes);
  charge.rerouted = !path->SameRoute(*baseline);
  // Hypothetical baseline charge first, at the same cumulative position the
  // actual metering is about to consume — the detour surcharge is then the
  // honest marginal difference, clamped at zero (a reroute can also be
  // cheaper, e.g. when the masked route was the long way around).
  Usd hypothetical = 0.0;
  if (charge.rerouted) {
    for (int c = 0; c < kTransferClassCount; ++c) {
      if (baseline->hops[c] > 0) {
        hypothetical += meter_.CostIfAdded(static_cast<TransferClass>(c),
                                           baseline->hops[c] * bytes, t);
      }
    }
  }
  for (int c = 0; c < kTransferClassCount; ++c) {
    if (path->hops[c] > 0) {
      charge.usd +=
          meter_.AddTransfer(static_cast<TransferClass>(c), path->hops[c] * bytes, t);
    }
  }
  if (charge.rerouted) {
    charge.detour_usd = std::max(0.0, charge.usd - hypothetical);
  }
  meter_.NoteTransfer(charge.rerouted, charge.detour_usd);
  return charge;
}

Usd NetworkModel::MeterOps(int64_t class_a, int64_t class_b) {
  if (class_a <= 0 && class_b <= 0) {
    return 0.0;
  }
  return meter_.AddOps(class_a, class_b);
}

}  // namespace faascost
