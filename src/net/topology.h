// Zone/region network topology: the graph every simulated payload is routed
// over. Nodes are availability zones (plus one node for the public
// internet), edges are links carrying a latency, a bandwidth, and the
// TransferClass each direction bills at (billing/tiered.h).
//
// The canonical cloud shape (MakeCloudTopology) mirrors how providers
// actually wire regions: zones within a region form a ring of cross-zone
// links, each region reaches the internet through a primary uplink in its
// first zone and a thinner backup uplink in its second, and regions peer
// through their primary zones. That shape is what gives a zonal outage its
// network consequence — when the primary zone is down, egress reroutes over
// the ring onto the backup uplink, paying extra cross-zone per-GB charges
// and squeezing through less bandwidth.
//
// Everything here is deterministic: routing is Dijkstra by latency over
// insertion-ordered adjacency lists with a (distance, node-id) heap, so
// equal-cost ties break the same way on every run and platform. No RNG, no
// clocks, no unordered containers.

#ifndef FAASCOST_NET_TOPOLOGY_H_
#define FAASCOST_NET_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/billing/tiered.h"
#include "src/common/units.h"

namespace faascost {

// 1 Gb/s moves 125 bytes per microsecond.
inline constexpr double kBytesPerUsPerGbps = 125.0;

struct NetLink {
  int a = 0;
  int b = 0;
  MicroSecs latency = 0;  // One-way propagation + processing latency.
  double gbps = 0.0;      // Usable bandwidth, either direction.
  // Billing class per direction: an internet uplink bills tiered egress one
  // way and free ingress the other; symmetric links bill the same class
  // both ways.
  TransferClass cls_ab = TransferClass::kIntraZone;
  TransferClass cls_ba = TransferClass::kIntraZone;
};

// The latency/bandwidth/billing summary of one routed path. hops[] counts
// link traversals per transfer class — a payload crossing two cross-zone
// links bills the inter-zone rate twice, exactly like real per-direction
// AZ-transfer charges.
struct PathInfo {
  bool reachable = false;
  MicroSecs latency = 0;
  double bytes_per_us = 0.0;  // Bottleneck bandwidth along the path.
  int64_t hops[kTransferClassCount] = {};

  // Store-and-forward transfer time: path latency plus serialization of the
  // payload through the bottleneck link, rounded up to whole microseconds.
  MicroSecs TransferTime(int64_t bytes) const;
  bool SameRoute(const PathInfo& other) const;
};

class NetTopology {
 public:
  int AddNode() {
    adjacency_.emplace_back();
    return static_cast<int>(adjacency_.size()) - 1;
  }
  // Bidirectional link; returns its index. Endpoints must be valid nodes.
  int AddLink(int a, int b, MicroSecs latency, double gbps, TransferClass cls_ab,
              TransferClass cls_ba);

  int node_count() const { return static_cast<int>(adjacency_.size()); }
  int link_count() const { return static_cast<int>(links_.size()); }
  const NetLink& link(int i) const { return links_[static_cast<size_t>(i)]; }
  const std::vector<int>& LinksAt(int node) const {
    return adjacency_[static_cast<size_t>(node)];
  }

  // Lowest-latency path from src to dst. `down_link[l]` masks link l
  // entirely; `no_transit[n]` lets node n originate or terminate traffic
  // but not forward it (a degraded zone still sources its own bytes).
  // Either mask may be empty (nothing masked). src == dst yields an
  // unreachable PathInfo — same-zone transfers are the caller's special
  // case, not a graph walk.
  PathInfo Route(int src, int dst, const std::vector<bool>& down_link,
                 const std::vector<bool>& no_transit) const;

 private:
  std::vector<NetLink> links_;
  std::vector<std::vector<int>> adjacency_;  // Node -> link indices, insertion order.
};

// Parameters of the canonical cloud topology. Defaults sketch a mid-size
// multi-zone deployment: millisecond-scale cross-zone latency, tens of
// milliseconds to cross regions or reach clients, fat intra-region pipes
// and a thin backup uplink.
struct CloudTopologyParams {
  int zones = 4;
  int zones_per_region = 4;
  MicroSecs intra_zone_latency = 200;
  MicroSecs inter_zone_latency = 1'000;
  MicroSecs inter_region_latency = 15'000;
  MicroSecs internet_latency = 25'000;
  double intra_zone_gbps = 100.0;
  double inter_zone_gbps = 25.0;
  double inter_region_gbps = 5.0;
  double uplink_gbps = 10.0;
  double backup_uplink_gbps = 2.0;

  int regions() const { return (zones + zones_per_region - 1) / zones_per_region; }
  std::vector<std::string> Validate() const;
};

// Builds the canonical shape. Node ids: zones occupy [0, zones); the public
// internet is node `zones` (the model layer maps its kInternet sentinel to
// it). Region r spans zones [r*zpr, min((r+1)*zpr, zones)); its first zone
// carries the primary uplink and the inter-region peerings, its second (if
// any) the backup uplink.
NetTopology MakeCloudTopology(const CloudTopologyParams& params);

}  // namespace faascost

#endif  // FAASCOST_NET_TOPOLOGY_H_
