#include "src/trace/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace faascost {

namespace {

// Weight split between function-level and request-level utilization latents.
// Functions have characteristic utilization levels; requests jitter around
// them. The squares sum to one so the combined latent stays standard normal.
constexpr double kFunctionLatentWeight = 0.5;
const double kRequestLatentWeight = std::sqrt(1.0 - 0.5 * 0.5);

}  // namespace

double StdNormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double KumaraswamyParams::Quantile(double u) const {
  u = std::clamp(u, 1e-12, 1.0 - 1e-12);
  return std::pow(1.0 - std::pow(1.0 - u, 1.0 / b), 1.0 / a);
}

double KumaraswamyParams::Cdf(double x) const {
  x = std::clamp(x, 0.0, 1.0);
  return 1.0 - std::pow(1.0 - std::pow(x, a), b);
}

TraceGenerator::TraceGenerator(TraceGenConfig config, uint64_t seed)
    : config_(std::move(config)),
      rng_(seed),
      payload_seed_(DeriveSeed(seed, kNetStream)),
      popularity_(std::max<int64_t>(config_.num_functions, 1), config_.zipf_exponent) {
  assert(!config_.combos.empty());
  // Global lognormal location from the target mean and the combined sigma.
  const double sigma_total_sq =
      config_.exec_ln_sigma_function * config_.exec_ln_sigma_function +
      config_.exec_ln_sigma_request * config_.exec_ln_sigma_request;
  const double mu_global =
      std::log(config_.exec_mean_ms * static_cast<double>(kMicrosPerMilli)) -
      sigma_total_sq / 2.0;

  double total_weight = 0.0;
  double mean_ln_vcpu = 0.0;
  for (const auto& combo : config_.combos) {
    total_weight += combo.weight;
    mean_ln_vcpu += combo.weight * std::log(combo.vcpus);
  }
  mean_ln_vcpu /= total_weight;

  functions_.reserve(static_cast<size_t>(config_.num_functions));
  for (int64_t id = 0; id < config_.num_functions; ++id) {
    FunctionProfile fn;
    fn.function_id = id;
    // Weighted combo choice.
    double pick = rng_.NextDouble() * total_weight;
    const AllocCombo* chosen = &config_.combos.back();
    for (const auto& combo : config_.combos) {
      if (pick < combo.weight) {
        chosen = &combo;
        break;
      }
      pick -= combo.weight;
    }
    fn.vcpus = chosen->vcpus;
    fn.mem_mb = chosen->mem_mb;
    const double alloc_shift =
        config_.exec_alloc_exponent * (std::log(fn.vcpus) - mean_ln_vcpu);
    fn.exec_ln_mu = rng_.Normal(mu_global + alloc_shift, config_.exec_ln_sigma_function);
    const auto [zc, zm] = rng_.CorrelatedNormals(config_.util_copula_rho);
    fn.cpu_latent_shift = kFunctionLatentWeight * zc;
    fn.mem_latent_shift = kFunctionLatentWeight * zm;
    if (config_.failure_rate_mean > 0.0) {
      // Beta(alpha, beta) with mean m: beta = alpha * (1 - m) / m.
      const double m = std::min(config_.failure_rate_mean, 0.999);
      const double alpha = config_.failure_rate_alpha;
      const double beta = alpha * (1.0 - m) / m;
      fn.failure_rate = std::clamp(rng_.Beta(alpha, beta), 0.0, 1.0);
    }
    functions_.push_back(fn);
  }
}

RequestRecord TraceGenerator::MakeRequest(const FunctionProfile& fn, MicroSecs arrival,
                                          Rng& rng) const {
  RequestRecord r;
  r.function_id = fn.function_id;
  r.arrival = arrival;
  r.alloc_vcpus = fn.vcpus;
  r.alloc_mem_mb = fn.mem_mb;

  const double exec_us = std::exp(rng.Normal(fn.exec_ln_mu, config_.exec_ln_sigma_request));
  r.exec_duration = std::max<MicroSecs>(1, static_cast<MicroSecs>(exec_us));

  const auto [zc, zm] = rng.CorrelatedNormals(config_.util_copula_rho);
  const double latent_cpu = fn.cpu_latent_shift + kRequestLatentWeight * zc;
  const double latent_mem = fn.mem_latent_shift + kRequestLatentWeight * zm;
  const double cpu_util = config_.cpu_util.Quantile(StdNormalCdf(latent_cpu));
  const double mem_util = config_.mem_util.Quantile(StdNormalCdf(latent_mem));

  r.cpu_time = std::max<MicroSecs>(
      1, static_cast<MicroSecs>(cpu_util * fn.vcpus * static_cast<double>(r.exec_duration)));
  r.used_mem_mb = mem_util * fn.mem_mb;
  r.failure_rate = fn.failure_rate;

  if (rng.Bernoulli(config_.cold_start_fraction)) {
    r.cold_start = true;
    r.init_duration = std::max<MicroSecs>(
        1, static_cast<MicroSecs>(rng.LogNormal(config_.init_ln_mu, config_.init_ln_sigma)));
  }
  return r;
}

std::vector<RequestRecord> TraceGenerator::Generate() {
  std::vector<RequestRecord> out;
  out.reserve(static_cast<size_t>(config_.num_requests));
  Rng rng = rng_.Fork();
  // Payload draws live on their own stream (see TraceGenConfig): the main
  // stream's draw sequence — and with it every other field — is the same
  // whether payload synthesis is on or off.
  const bool want_req_payload = config_.payload_request_mean_kb > 0.0;
  const bool want_resp_payload = config_.payload_response_mean_kb > 0.0;
  Rng payload_rng(payload_seed_);
  const double req_mu =
      want_req_payload
          ? std::log(config_.payload_request_mean_kb * 1024.0) -
                config_.payload_request_ln_sigma * config_.payload_request_ln_sigma / 2.0
          : 0.0;
  const double resp_mu =
      want_resp_payload
          ? std::log(config_.payload_response_mean_kb * 1024.0) -
                config_.payload_response_ln_sigma * config_.payload_response_ln_sigma / 2.0
          : 0.0;
  for (int64_t i = 0; i < config_.num_requests; ++i) {
    const int64_t fid = popularity_.Sample(rng) - 1;
    const FunctionProfile& fn = functions_[static_cast<size_t>(fid)];
    const MicroSecs arrival = rng.UniformInt(0, config_.window - 1);
    out.push_back(MakeRequest(fn, arrival, rng));
    if (want_req_payload) {
      out.back().req_bytes = std::max<int64_t>(
          1, static_cast<int64_t>(
                 payload_rng.LogNormal(req_mu, config_.payload_request_ln_sigma)));
    }
    if (want_resp_payload) {
      out.back().resp_bytes = std::max<int64_t>(
          1, static_cast<int64_t>(
                 payload_rng.LogNormal(resp_mu, config_.payload_response_ln_sigma)));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RequestRecord& a, const RequestRecord& b) { return a.arrival < b.arrival; });
  return out;
}

std::vector<SandboxLifecycle> TraceGenerator::GenerateLifecycles(int64_t count) {
  std::vector<SandboxLifecycle> out;
  out.reserve(static_cast<size_t>(count));
  Rng rng = rng_.Fork();
  for (int64_t i = 0; i < count; ++i) {
    const int64_t fid = popularity_.Sample(rng) - 1;
    const FunctionProfile& fn = functions_[static_cast<size_t>(fid)];
    SandboxLifecycle lc;
    lc.function_id = fn.function_id;
    lc.alloc_vcpus = fn.vcpus;
    lc.alloc_mem_mb = fn.mem_mb;
    lc.init_duration = std::max<MicroSecs>(
        1, static_cast<MicroSecs>(rng.LogNormal(config_.init_ln_mu, config_.init_ln_sigma)));
    const double n_extra = rng.LogNormal(config_.lifecycle_ln_mu, config_.lifecycle_ln_sigma);
    const int64_t n = 1 + static_cast<int64_t>(n_extra);
    lc.request_durations.reserve(static_cast<size_t>(n));
    for (int64_t k = 0; k < n; ++k) {
      const double exec_us =
          std::exp(rng.Normal(fn.exec_ln_mu, config_.exec_ln_sigma_request));
      lc.request_durations.push_back(std::max<MicroSecs>(1, static_cast<MicroSecs>(exec_us)));
    }
    out.push_back(std::move(lc));
  }
  return out;
}

}  // namespace faascost
