#include "src/trace/io.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "src/common/fileio.h"

namespace faascost {

namespace {

// v2 header: the two payload columns were appended for the network model.
// The reader accepts both widths (and either header), so v1 extracts keep
// loading; absent payload columns parse as 0 = "unrecorded".
constexpr const char* kHeader =
    "function_id,arrival_us,exec_us,cpu_us,alloc_vcpus,alloc_mem_mb,"
    "used_mem_mb,cold_start,init_us,req_bytes,resp_bytes";
constexpr std::string_view kHeaderPrefix = "function_id,";

bool ParseField(std::string_view field, int64_t& out) {
  const auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), out);
  return ec == std::errc() && ptr == field.data() + field.size();
}

bool ParseField(std::string_view field, double& out) {
  // std::from_chars for doubles is not universally available; strtod via a
  // bounded copy keeps this portable.
  char buf[64];
  if (field.empty() || field.size() >= sizeof(buf)) {
    return false;
  }
  field.copy(buf, field.size());
  buf[field.size()] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end == buf + field.size();
}

bool ParseLine(std::string_view line, RequestRecord& r) {
  std::string_view fields[11];
  size_t n = 0;
  while (n < 11) {
    const size_t comma = line.find(',');
    fields[n++] = line.substr(0, comma);
    if (comma == std::string_view::npos) {
      break;
    }
    line.remove_prefix(comma + 1);
  }
  if (n != 9 && n != 11) {
    return false;
  }
  int64_t cold = 0;
  if (!ParseField(fields[0], r.function_id) || !ParseField(fields[1], r.arrival) ||
      !ParseField(fields[2], r.exec_duration) || !ParseField(fields[3], r.cpu_time) ||
      !ParseField(fields[4], r.alloc_vcpus) || !ParseField(fields[5], r.alloc_mem_mb) ||
      !ParseField(fields[6], r.used_mem_mb) || !ParseField(fields[7], cold) ||
      !ParseField(fields[8], r.init_duration)) {
    return false;
  }
  if (n == 11 &&
      (!ParseField(fields[9], r.req_bytes) || !ParseField(fields[10], r.resp_bytes))) {
    return false;
  }
  r.cold_start = cold != 0;
  return true;
}

}  // namespace

size_t WriteTraceCsv(std::ostream& out, const std::vector<RequestRecord>& records) {
  out.precision(17);  // Round-trip-exact doubles.
  out << kHeader << '\n';
  for (const auto& r : records) {
    out << r.function_id << ',' << r.arrival << ',' << r.exec_duration << ','
        << r.cpu_time << ',' << r.alloc_vcpus << ',' << r.alloc_mem_mb << ','
        << r.used_mem_mb << ',' << (r.cold_start ? 1 : 0) << ',' << r.init_duration
        << ',' << r.req_bytes << ',' << r.resp_bytes << '\n';
  }
  return records.size();
}

size_t WriteTraceCsvFile(const std::string& path,
                         const std::vector<RequestRecord>& records) {
  // Render in memory, then land the bytes atomically so a crash mid-write
  // cannot leave a truncated trace behind.
  std::ostringstream out;
  const size_t n = WriteTraceCsv(out, records);
  try {
    WriteFileAtomic(path, out.str());
  } catch (const std::runtime_error&) {
    return 0;
  }
  return n;
}

std::vector<RequestRecord> ReadTraceCsv(std::istream& in, size_t* skipped) {
  std::vector<RequestRecord> out;
  size_t bad = 0;
  std::string line;
  while (std::getline(in, line)) {
    // Skip any header row, current or legacy width.
    if (line.empty() || std::string_view(line).substr(0, kHeaderPrefix.size()) ==
                            kHeaderPrefix) {
      continue;
    }
    RequestRecord r;
    if (ParseLine(line, r)) {
      out.push_back(r);
    } else {
      ++bad;
    }
  }
  if (skipped != nullptr) {
    *skipped = bad;
  }
  return out;
}

std::vector<RequestRecord> ReadTraceCsvFile(const std::string& path, size_t* skipped) {
  std::ifstream in(path);
  if (!in) {
    if (skipped != nullptr) {
      *skipped = 0;
    }
    return {};
  }
  return ReadTraceCsv(in, skipped);
}

}  // namespace faascost
