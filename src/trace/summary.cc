#include "src/trace/summary.h"

#include "src/common/units.h"

namespace faascost {

UtilizationSamples ExtractUtilization(const std::vector<RequestRecord>& records) {
  UtilizationSamples s;
  s.cpu.reserve(records.size());
  s.mem.reserve(records.size());
  for (const auto& r : records) {
    s.cpu.push_back(r.CpuUtilization());
    s.mem.push_back(r.MemUtilization());
  }
  return s;
}

TraceStats ComputeTraceStats(const std::vector<RequestRecord>& records) {
  TraceStats out;
  out.num_requests = records.size();
  if (records.empty()) {
    return out;
  }

  std::vector<double> exec_ms;
  std::vector<double> cpu_ms;
  exec_ms.reserve(records.size());
  cpu_ms.reserve(records.size());
  size_t cold = 0;
  for (const auto& r : records) {
    exec_ms.push_back(MicrosToMillis(r.exec_duration));
    cpu_ms.push_back(MicrosToMillis(r.cpu_time));
    if (r.cold_start) {
      ++cold;
    }
  }
  const UtilizationSamples util = ExtractUtilization(records);

  out.mean_exec_ms = Mean(exec_ms);
  out.mean_cpu_time_ms = Mean(cpu_ms);
  out.mean_cpu_util = Mean(util.cpu);
  out.mean_mem_util = Mean(util.mem);
  out.frac_cpu_util_below_half = FractionBelow(util.cpu, 0.5);
  out.frac_mem_util_below_half = FractionBelow(util.mem, 0.5);
  out.util_pearson = PearsonCorrelation(util.cpu, util.mem);
  out.cold_start_fraction = static_cast<double>(cold) / static_cast<double>(records.size());
  out.exec_ms = Summarize(exec_ms);
  out.cpu_util = Summarize(util.cpu);
  out.mem_util = Summarize(util.mem);
  return out;
}

}  // namespace faascost
