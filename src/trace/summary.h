// Trace summarization: the aggregate statistics the paper reports from the
// Huawei traces, used both to validate the generator's calibration and to
// drive the Fig. 3 bench.

#ifndef FAASCOST_TRACE_SUMMARY_H_
#define FAASCOST_TRACE_SUMMARY_H_

#include <vector>

#include "src/common/stats.h"
#include "src/trace/record.h"

namespace faascost {

struct TraceStats {
  size_t num_requests = 0;
  double mean_exec_ms = 0.0;
  double mean_cpu_time_ms = 0.0;
  double mean_cpu_util = 0.0;
  double mean_mem_util = 0.0;
  // Fraction of requests using less than half of the allocation.
  double frac_cpu_util_below_half = 0.0;
  double frac_mem_util_below_half = 0.0;
  double util_pearson = 0.0;  // Pearson correlation of CPU vs memory util.
  double cold_start_fraction = 0.0;
  Summary exec_ms;      // Full distribution of execution durations (ms).
  Summary cpu_util;     // Full distribution of CPU utilization.
  Summary mem_util;     // Full distribution of memory utilization.
};

TraceStats ComputeTraceStats(const std::vector<RequestRecord>& records);

// Extracts per-request utilization vectors (for scatter/CDF plots).
struct UtilizationSamples {
  std::vector<double> cpu;
  std::vector<double> mem;
};
UtilizationSamples ExtractUtilization(const std::vector<RequestRecord>& records);

}  // namespace faascost

#endif  // FAASCOST_TRACE_SUMMARY_H_
