// CSV serialization for traces, so generated workloads can be exported to
// other tools and real trace extracts (e.g. from the Huawei release) can be
// loaded into the analyses.
//
// Format (header included):
//   function_id,arrival_us,exec_us,cpu_us,alloc_vcpus,alloc_mem_mb,
//   used_mem_mb,cold_start,init_us,req_bytes,resp_bytes
// The reader also accepts the legacy 9-column layout (no payload columns);
// missing payload sizes load as 0 = "unrecorded".

#ifndef FAASCOST_TRACE_IO_H_
#define FAASCOST_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/trace/record.h"

namespace faascost {

// Writes the trace as CSV. Returns the number of records written.
size_t WriteTraceCsv(std::ostream& out, const std::vector<RequestRecord>& records);
size_t WriteTraceCsvFile(const std::string& path, const std::vector<RequestRecord>& records);

// Parses a CSV trace. Lines that fail to parse are skipped and counted in
// `*skipped` (if non-null); a missing header is tolerated.
std::vector<RequestRecord> ReadTraceCsv(std::istream& in, size_t* skipped = nullptr);
std::vector<RequestRecord> ReadTraceCsvFile(const std::string& path,
                                            size_t* skipped = nullptr);

}  // namespace faascost

#endif  // FAASCOST_TRACE_IO_H_
