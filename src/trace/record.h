// Trace record model mirroring the fields of the Huawei Cloud production FaaS
// trace release that the paper's §2 analysis uses: per-request wall-clock
// execution duration, consumed CPU time, CPU/memory utilization relative to a
// fixed per-function allocation, and cold-start lifecycle information.

#ifndef FAASCOST_TRACE_RECORD_H_
#define FAASCOST_TRACE_RECORD_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "src/common/units.h"

namespace faascost {

// Terminal outcome of one invocation attempt (or, at the request level, of
// the whole retry sequence). Platforms bill failed attempts too: AWS bills
// duration up to the timeout, fees are charged regardless of outcome, and
// client retries multiply both (see BillingModel::failure).
enum class Outcome {
  kOk = 0,
  kInitFailure,       // The sandbox failed to initialize (cold-start error).
  kCrash,             // The function crashed mid-execution.
  kTimeout,           // Platform-enforced execution timeout, or client gave up.
  kRejected,          // Overload rejection (HTTP 429): never admitted.
  kRetriesExhausted,  // Request-level: every client attempt failed.
  kCircuitOpen,       // Client circuit breaker fast-failed the dispatch;
                      // the attempt never reached the platform (not billed).
  kUpstreamFailed,    // Workflow hop skipped because an upstream hop failed
                      // terminally; never dispatched (not billed).
  kHedgeLoser,        // Speculative duplicate that lost the hedge race; billed
                      // for the duration it ran before cancellation landed.
  kDeadLettered,      // Async hop exhausted platform-side redrives; the final
                      // attempt is billed and the message is DLQ-priced.
};

// Every Outcome value, in enum order. Kept adjacent to the enum so adding a
// value without extending the table is caught by the round-trip test.
inline constexpr Outcome kAllOutcomes[] = {
    Outcome::kOk,          Outcome::kInitFailure,      Outcome::kCrash,
    Outcome::kTimeout,     Outcome::kRejected,         Outcome::kRetriesExhausted,
    Outcome::kCircuitOpen, Outcome::kUpstreamFailed,   Outcome::kHedgeLoser,
    Outcome::kDeadLettered,
};

inline const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kInitFailure:
      return "init_failure";
    case Outcome::kCrash:
      return "crash";
    case Outcome::kTimeout:
      return "timeout";
    case Outcome::kRejected:
      return "rejected";
    case Outcome::kRetriesExhausted:
      return "retries_exhausted";
    case Outcome::kCircuitOpen:
      return "circuit_open";
    case Outcome::kUpstreamFailed:
      return "upstream_failed";
    case Outcome::kHedgeLoser:
      return "hedge_loser";
    case Outcome::kDeadLettered:
      return "dead_lettered";
  }
  return "unknown";
}

// Inverse of OutcomeName: parses the serialized outcome token of a JSONL/CSV
// artifact back into the enum, so checkpointed workflow state and exported
// attempt records can be re-ingested. Returns nullopt for unknown tokens
// (including "unknown" itself, which no valid Outcome serializes to).
inline std::optional<Outcome> OutcomeFromName(std::string_view name) {
  for (const Outcome o : kAllOutcomes) {
    if (name == OutcomeName(o)) {
      return o;
    }
  }
  return std::nullopt;
}

// One function invocation as recorded by the provider.
struct RequestRecord {
  int64_t function_id = 0;
  MicroSecs arrival = 0;         // Arrival time within the trace window.
  MicroSecs exec_duration = 0;   // Wall-clock execution duration.
  MicroSecs cpu_time = 0;        // Consumed CPU time (vCPU-microseconds).
  double alloc_vcpus = 0.0;      // Configured vCPU allocation.
  MegaBytes alloc_mem_mb = 0.0;  // Configured memory allocation.
  MegaBytes used_mem_mb = 0.0;   // Average memory actually used.
  bool cold_start = false;
  MicroSecs init_duration = 0;  // Sandbox initialization time; 0 if warm.
  // Failure semantics. For failed attempts, exec_duration is the duration up
  // to the crash/abort point (timeouts run through the full limit), which is
  // what failure-billing rules act on.
  Outcome outcome = Outcome::kOk;
  int attempt = 1;            // 1-based client attempt number.
  double failure_rate = 0.0;  // Per-attempt failure probability of the function.
  // Payload sizes for the network model (src/net). 0 means "unrecorded":
  // simulators then fall back to the NetworkModel's deterministic payload
  // draw (or move nothing when the model is disabled). Not part of the
  // digest-audited record shape, so pinned digests stay valid.
  int64_t req_bytes = 0;   // Client-request body entering the platform.
  int64_t resp_bytes = 0;  // Response body returned to the client.

  // Fraction of the CPU allocation actually consumed over exec_duration.
  double CpuUtilization() const {
    if (exec_duration <= 0 || alloc_vcpus <= 0.0) {
      return 0.0;
    }
    return static_cast<double>(cpu_time) /
           (static_cast<double>(exec_duration) * alloc_vcpus);
  }

  // Fraction of the memory allocation actually used.
  double MemUtilization() const {
    if (alloc_mem_mb <= 0.0) {
      return 0.0;
    }
    return used_mem_mb / alloc_mem_mb;
  }
};

// A sandbox lifecycle for the cold-start study (paper Fig. 4): one cold start
// (initialization) followed by the requests served before the sandbox is
// reclaimed. Requests inherit the sandbox's allocation.
struct SandboxLifecycle {
  int64_t function_id = 0;
  double alloc_vcpus = 0.0;
  MegaBytes alloc_mem_mb = 0.0;
  MicroSecs init_duration = 0;
  // Wall-clock execution durations of all requests served in this sandbox
  // (the first one is the request that triggered the cold start).
  std::vector<MicroSecs> request_durations;
};

}  // namespace faascost

#endif  // FAASCOST_TRACE_RECORD_H_
