// Synthetic trace generator calibrated to the production statistics the paper
// reports from the Huawei serverless traces:
//
//   - mean wall-clock execution duration  ~ 58.19 ms   (paper §2.5)
//   - mean consumed CPU time              ~ 33.1 ms    (paper §4.2)
//   - >42% of requests use < 50% of the allotted CPU   (paper §2.3, Fig. 3)
//   - ~88% of requests use < 50% of the allotted memory(paper §2.3, Fig. 3)
//   - Pearson correlation of CPU and memory utilization ~ 0.397 (Fig. 3)
//   - 42.1% of cold starts consume at least as many billable resources during
//     initialization as all subsequent requests combined (Fig. 4)
//
// Durations are lognormal (heavy-tailed, as in every published FaaS workload
// characterization), function popularity is Zipfian, allocations come from a
// fixed set of vCPU-memory combos (Huawei FunctionGraph offers only fixed
// pairs, Table 1), and per-request CPU/memory utilizations are joined by a
// Gaussian copula over Kumaraswamy marginals (closed-form quantile function,
// so no special functions are required).

#ifndef FAASCOST_TRACE_GENERATOR_H_
#define FAASCOST_TRACE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/trace/record.h"

namespace faascost {

// Kumaraswamy(a, b) marginal on [0, 1]; F(x) = 1 - (1 - x^a)^b.
struct KumaraswamyParams {
  double a = 1.0;
  double b = 1.0;

  double Quantile(double u) const;
  double Cdf(double x) const;
};

// A fixed vCPU-memory allocation combo with its popularity weight.
struct AllocCombo {
  double vcpus = 0.0;
  MegaBytes mem_mb = 0.0;
  double weight = 0.0;
};

struct TraceGenConfig {
  int64_t num_requests = 1'000'000;
  int64_t num_functions = 5'000;
  double zipf_exponent = 0.8;  // Function popularity skew.
  MicroSecs window = 86'400LL * kMicrosPerSec;  // One day, like the paper.

  // Wall-clock execution duration: lognormal in microseconds.
  // mean = exp(mu + sigma^2/2); defaults give ~58.19 ms.
  double exec_ln_sigma_function = 0.50;  // Across-function spread.
  double exec_ln_sigma_request = 1.30;   // Within-function spread.
  double exec_mean_ms = 58.19;
  // Larger allocations correlate with longer executions in production
  // workloads; applied as a log-duration shift proportional to
  // log(vCPUs) - mean(log vCPUs), so the overall mean stays calibrated.
  double exec_alloc_exponent = 0.35;

  // Utilization marginals.
  KumaraswamyParams cpu_util{1.20, 1.50};  // Mean ~0.45, F(0.5) ~ 0.58.
  KumaraswamyParams mem_util{1.00, 3.06};  // F(0.5) ~ 0.88.
  // Gaussian-copula correlation of the underlying normals. 0.44 yields a
  // Pearson correlation of ~0.397 on the transformed marginals.
  double util_copula_rho = 0.44;

  // Fraction of requests that are cold starts in the flat request stream.
  double cold_start_fraction = 0.005;
  // Initialization duration: lognormal, mean ~ 740 ms.
  double init_ln_mu = 13.20;     // ln(microseconds).
  double init_ln_sigma = 0.80;

  // Allocation combos; Huawei FunctionGraph exposes fixed pairs only, with
  // memory-per-vCPU close to AWS's 1769 MB ratio (which is why the paper's
  // AWS mapping inflates billable memory only slightly beyond Huawei's).
  std::vector<AllocCombo> combos = {
      {0.3, 512.0, 0.22}, {0.5, 1024.0, 0.26}, {1.0, 2048.0, 0.30},
      {2.0, 4096.0, 0.16}, {4.0, 8192.0, 0.06},
  };

  // Sandbox lifecycle model for the cold-start study: number of requests a
  // sandbox serves after its cold start is 1 + floor(LogNormal(mu, sigma)).
  double lifecycle_ln_mu = 2.80;
  double lifecycle_ln_sigma = 1.80;

  // Per-function failure rates: each function draws its per-attempt failure
  // probability from Beta(alpha, beta) with beta set so the mean equals
  // `failure_rate_mean` — most functions are healthy while a few fail often,
  // matching the skew of production error rates. 0 disables (the default; no
  // RNG draws happen, so existing traces are unchanged).
  double failure_rate_mean = 0.0;
  double failure_rate_alpha = 0.6;

  // Payload synthesis for the network model (src/net): lognormal body sizes
  // stamped on req_bytes/resp_bytes. A mean of 0 disables that side (the
  // default; no RNG draws happen, so existing traces are unchanged). Enabled
  // draws come from a dedicated kNetStream-derived Rng, never the main
  // generator stream, so every other field of the trace stays bit-identical
  // to a payload-less run of the same seed.
  double payload_request_mean_kb = 0.0;
  double payload_request_ln_sigma = 1.0;
  double payload_response_mean_kb = 0.0;
  double payload_response_ln_sigma = 1.0;
};

// Static per-function characteristics drawn once.
struct FunctionProfile {
  int64_t function_id = 0;
  double vcpus = 0.0;
  MegaBytes mem_mb = 0.0;
  double exec_ln_mu = 0.0;  // Function-level lognormal location (microseconds).
  // Function-level latent shifts for the utilization copula.
  double cpu_latent_shift = 0.0;
  double mem_latent_shift = 0.0;
  double failure_rate = 0.0;  // Per-attempt failure probability.
};

class TraceGenerator {
 public:
  TraceGenerator(TraceGenConfig config, uint64_t seed);

  // Generates the flat request stream, sorted by arrival time.
  std::vector<RequestRecord> Generate();

  // Generates `count` sandbox lifecycles for the cold-start study (Fig. 4).
  std::vector<SandboxLifecycle> GenerateLifecycles(int64_t count);

  const std::vector<FunctionProfile>& functions() const { return functions_; }
  const TraceGenConfig& config() const { return config_; }

 private:
  RequestRecord MakeRequest(const FunctionProfile& fn, MicroSecs arrival, Rng& rng) const;

  TraceGenConfig config_;
  Rng rng_;
  uint64_t payload_seed_ = 0;  // DeriveSeed(seed, kNetStream); see config.
  std::vector<FunctionProfile> functions_;
  ZipfTable popularity_;
};

// Standard normal CDF (used to map copula normals to uniforms).
double StdNormalCdf(double z);

}  // namespace faascost

#endif  // FAASCOST_TRACE_GENERATOR_H_
