// Resilience policies for the workflow engine and their billing semantics.
//
// Every mechanism here trades extra *billed* work for latency or success
// probability, which is exactly the trade-off the cost model has to expose:
//
//   - RetryPolicy (reused from src/platform): per-hop client retries with
//     backoff and a circuit breaker. Every real attempt bills; kCircuitOpen
//     short-circuits never do.
//   - DeadlineBudgetPolicy: an end-to-end workflow deadline. In `propagate`
//     mode the remaining budget travels with the workflow, shrinking each
//     hop's effective timeout and fast-failing (unbilled) hops that cannot
//     fit — the alternative to naive per-hop timeouts that burn the full
//     per-hop limit on a workflow that is already doomed.
//   - HedgePolicy: a speculative duplicate dispatched after a latency
//     threshold; first success wins, the loser is cancelled. Cancellation
//     takes `cancel_latency` to land, so the loser bills for everything it
//     ran until then (and bills in full when it finishes first anyway) —
//     hedging's double-billing exposure.
//   - AsyncRedrivePolicy: platform-side retries of async hops. Each redrive
//     is a fresh billed invocation; exhausting them dead-letters the message
//     (kDeadLettered) with DLQ storage-op fees from WorkflowPricing.

#ifndef FAASCOST_WORKFLOW_POLICY_H_
#define FAASCOST_WORKFLOW_POLICY_H_

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/platform/faults.h"

namespace faascost {

// End-to-end workflow deadline budget.
struct DeadlineBudgetPolicy {
  // Workflow deadline measured from arrival; 0 disables.
  MicroSecs deadline = 0;
  // When set, each hop's effective timeout is min(hop timeout, remaining
  // budget) and hops dispatched with no budget left fail fast *unbilled*
  // (they are never handed to the platform). When clear, the deadline is
  // only checked at workflow completion — hops keep burning their full
  // per-hop timeout on workflows that can no longer succeed.
  bool propagate = true;

  bool enabled() const { return deadline > 0; }
  std::vector<std::string> Validate() const;
};

// Speculative duplicate requests (tail-latency hedging).
struct HedgePolicy {
  // Dispatch one duplicate if the primary attempt has not resolved after
  // this long; 0 disables hedging.
  MicroSecs hedge_after = 0;
  // Time for the loser's cancellation to land after the winner completes.
  // The loser bills for min(its own runtime, time until cancellation) — if
  // it finishes before the cancel arrives, it bills in full.
  MicroSecs cancel_latency = 10 * kMicrosPerMilli;

  bool enabled() const { return hedge_after > 0; }
  std::vector<std::string> Validate() const;
};

// Platform-side retries for async hops, with a dead-letter queue behind them.
struct AsyncRedrivePolicy {
  // Redrives after the initial delivery (SQS maxReceiveCount - 1 style).
  // Every redrive is a separately billed invocation.
  int max_redrives = 2;
  // Delay between a failed delivery and its redrive.
  MicroSecs redrive_delay = kMicrosPerSec;

  std::vector<std::string> Validate() const;
};

// The full per-workflow resilience configuration. One policy applies to every
// hop of every DAG in a run (per-hop heterogeneity comes from HopSpec).
struct WorkflowPolicy {
  RetryPolicy retry;
  DeadlineBudgetPolicy deadline;
  HedgePolicy hedge;
  AsyncRedrivePolicy redrive;

  std::vector<std::string> Validate() const;
};

// Upper bound on attempts a single hop can make in one workflow instance
// (client attempts + hedges + provider redrives). The per-attempt RNG stream
// is `hop * kMaxAttemptsPerHop + attempt_ordinal`, so the bound is what keeps
// streams of different hops disjoint; Validate() enforces policies stay
// comfortably inside it.
inline constexpr int kMaxAttemptsPerHop = 64;

}  // namespace faascost

#endif  // FAASCOST_WORKFLOW_POLICY_H_
