// Workflow DAG model: one request triggers a graph of function invocations
// with data dependencies (SeBS-style application archetypes; ROADMAP
// "Scenario diversity"). A WorkflowDag is a static template — hops are the
// *functions* of the application, shared by every workflow instance, so
// chained invocations interact with cold starts and keep-alive exactly the
// way single calls cannot: instance N's hop warms the sandbox instance N+1
// reuses, and a mid-chain failure bills every upstream hop.
//
// The builders produce the three archetypes the workflow bench sweeps:
// linear chains (web/API pipelines), fan-out/fan-in (parallel batch with an
// optional quorum join), and map-reduce (split -> mappers -> reduce).

#ifndef FAASCOST_WORKFLOW_DAG_H_
#define FAASCOST_WORKFLOW_DAG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace faascost {

// One node of the DAG: a deployed function plus its invocation profile.
struct HopSpec {
  std::string name;
  // Wall-clock execution time model: lognormal with this mean and
  // coefficient of variation (sigma/mean of the distribution itself).
  MicroSecs exec_mean = 80 * kMicrosPerMilli;
  double exec_cv = 0.25;
  // Fraction of the execution spent on-CPU (the rest is I/O wait); consumed
  // CPU time on the billable record is exec * cpu_fraction * vcpus.
  double cpu_fraction = 0.8;
  double vcpus = 1.0;
  MegaBytes mem_mb = 1024.0;
  // Per-hop platform execution timeout (the "naive" policy knob); 0 = none.
  // Under a propagated deadline budget the effective timeout additionally
  // shrinks to the workflow's remaining budget.
  MicroSecs timeout = 0;
  // Per-attempt failure probability override; < 0 uses the engine-wide rate.
  double failure_rate = -1.0;
  // Async hop: on failure the *provider* re-drives it (AsyncRedrivePolicy)
  // and terminal failures are dead-lettered; client retries and hedging do
  // not apply.
  bool async = false;
  // For join nodes (>1 parent): dispatch once this many parents succeeded
  // (degraded fan-in); 0 = require every parent. Parents that are still
  // running when the join fires become billed stragglers.
  int quorum = 0;
  // Zone pinning for chaos scenarios (taken modulo the engine's zone count).
  int zone = 0;
};

// A directed acyclic graph of hops. Edges point downstream (from producer to
// consumer); hops with no parents are sources (dispatched at workflow
// arrival), hops with no children are sinks (the workflow succeeds when all
// sinks succeed).
struct WorkflowDag {
  std::string name;
  std::vector<HopSpec> hops;
  std::vector<std::vector<int>> children;  // children[h] = downstream hops.
  std::vector<std::vector<int>> parents;   // parents[h] = upstream hops.
  // Data-dependency payload per edge, parallel to `children`: the bytes the
  // producer ships to that consumer when it succeeds. Only consulted when a
  // NetworkModel is attached to the engine; 0 = the edge carries a signal,
  // no payload.
  std::vector<std::vector<int64_t>> child_bytes;
  // Client-facing payloads: `input_bytes` travels from the internet to every
  // source hop at workflow arrival; `output_bytes` travels from each sink to
  // the internet at resolution (failed workflows ship an error body instead).
  int64_t input_bytes = 0;
  int64_t output_bytes = 0;

  // Appends a hop and returns its index; keeps the adjacency arrays sized.
  int AddHop(HopSpec hop);
  // Adds the edge from -> to, carrying `bytes` of producer output. Indices
  // must already exist (Validate checks).
  void AddEdge(int from, int to, int64_t bytes = 0);
  // Payload on the from -> to edge; 0 when absent.
  int64_t EdgeBytes(int from, int to) const;

  std::vector<int> Sources() const;
  std::vector<int> Sinks() const;

  // Topological order (Kahn, smallest-index-first: deterministic); empty
  // when the graph has a cycle.
  std::vector<int> TopoOrder() const;

  // Human-readable config errors (bad indices, cycles, quorum out of range,
  // non-positive execution model); empty when valid.
  std::vector<std::string> Validate() const;
};

// Linear chain of `length` hops cloned from `proto` (hop i named
// "<name>.h<i>", zone = proto.zone + i when spread_zones).
WorkflowDag MakeChainDag(const std::string& name, int length, const HopSpec& proto,
                         bool spread_zones = false);

// Fan-out/fan-in: one source, `width` parallel branches, one join sink with
// the given quorum (0 = wait for every branch).
WorkflowDag MakeFanOutDag(const std::string& name, int width, int quorum,
                          const HopSpec& proto);

// Map-reduce: a splitter, `mappers` parallel map hops, and a reduce join
// whose execution scales with the mapper count (shuffle cost).
WorkflowDag MakeMapReduceDag(const std::string& name, int mappers, const HopSpec& proto);

// Stamps a uniform payload profile onto a built DAG: `input` bytes of client
// ingress into every source, `edge` bytes on every existing edge, `output`
// bytes of egress from every sink. Convenience for archetype DAGs built
// without per-edge sizes; set child_bytes directly for non-uniform shapes.
void ApplyUniformPayloads(WorkflowDag& dag, int64_t input, int64_t edge,
                          int64_t output);

}  // namespace faascost

#endif  // FAASCOST_WORKFLOW_DAG_H_
