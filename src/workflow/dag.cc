#include "src/workflow/dag.h"

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

namespace faascost {

int WorkflowDag::AddHop(HopSpec hop) {
  hops.push_back(std::move(hop));
  children.emplace_back();
  parents.emplace_back();
  child_bytes.emplace_back();
  return static_cast<int>(hops.size()) - 1;
}

void WorkflowDag::AddEdge(int from, int to, int64_t bytes) {
  const int n = static_cast<int>(hops.size());
  if (from >= 0 && from < n) {
    children[static_cast<size_t>(from)].push_back(to);
    child_bytes[static_cast<size_t>(from)].push_back(bytes);
  }
  if (to >= 0 && to < n) {
    parents[static_cast<size_t>(to)].push_back(from);
  }
}

int64_t WorkflowDag::EdgeBytes(int from, int to) const {
  if (from < 0 || static_cast<size_t>(from) >= children.size()) {
    return 0;
  }
  const std::vector<int>& kids = children[static_cast<size_t>(from)];
  for (size_t i = 0; i < kids.size(); ++i) {
    if (kids[i] == to && i < child_bytes[static_cast<size_t>(from)].size()) {
      return child_bytes[static_cast<size_t>(from)][i];
    }
  }
  return 0;
}

std::vector<int> WorkflowDag::Sources() const {
  std::vector<int> out;
  for (size_t h = 0; h < hops.size(); ++h) {
    if (parents[h].empty()) {
      out.push_back(static_cast<int>(h));
    }
  }
  return out;
}

std::vector<int> WorkflowDag::Sinks() const {
  std::vector<int> out;
  for (size_t h = 0; h < hops.size(); ++h) {
    if (children[h].empty()) {
      out.push_back(static_cast<int>(h));
    }
  }
  return out;
}

std::vector<int> WorkflowDag::TopoOrder() const {
  const size_t n = hops.size();
  std::vector<int> indegree(n, 0);
  for (size_t h = 0; h < n; ++h) {
    for (const int c : children[h]) {
      if (c >= 0 && static_cast<size_t>(c) < n) {
        ++indegree[static_cast<size_t>(c)];
      }
    }
  }
  // Min-heap on hop index: the order is a pure function of the DAG, not of
  // insertion order, so validation messages and traversals stay stable.
  std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
  for (size_t h = 0; h < n; ++h) {
    if (indegree[h] == 0) {
      ready.push(static_cast<int>(h));
    }
  }
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    const int h = ready.top();
    ready.pop();
    order.push_back(h);
    for (const int c : children[static_cast<size_t>(h)]) {
      if (c < 0 || static_cast<size_t>(c) >= n) {
        continue;
      }
      if (--indegree[static_cast<size_t>(c)] == 0) {
        ready.push(c);
      }
    }
  }
  if (order.size() != n) {
    return {};  // Cycle.
  }
  return order;
}

std::vector<std::string> WorkflowDag::Validate() const {
  std::vector<std::string> errors;
  const int n = static_cast<int>(hops.size());
  if (n == 0) {
    errors.push_back("dag '" + name + "': has no hops");
    return errors;
  }
  for (int h = 0; h < n; ++h) {
    const HopSpec& hop = hops[static_cast<size_t>(h)];
    const std::string where = "dag '" + name + "' hop " + std::to_string(h);
    if (hop.exec_mean <= 0) {
      errors.push_back(where + ": exec_mean must be positive");
    }
    if (hop.exec_cv < 0.0) {
      errors.push_back(where + ": exec_cv must be non-negative");
    }
    if (hop.cpu_fraction < 0.0 || hop.cpu_fraction > 1.0) {
      errors.push_back(where + ": cpu_fraction must be in [0, 1]");
    }
    if (hop.vcpus <= 0.0) {
      errors.push_back(where + ": vcpus must be positive");
    }
    if (hop.mem_mb <= 0.0) {
      errors.push_back(where + ": mem_mb must be positive");
    }
    if (hop.timeout < 0) {
      errors.push_back(where + ": timeout must be non-negative");
    }
    if (hop.failure_rate > 1.0) {
      errors.push_back(where + ": failure_rate must be <= 1");
    }
    const int fan_in = static_cast<int>(parents[static_cast<size_t>(h)].size());
    if (hop.quorum < 0 || hop.quorum > fan_in) {
      errors.push_back(where + ": quorum " + std::to_string(hop.quorum) +
                       " out of range for fan-in " + std::to_string(fan_in));
    }
    if (hop.zone < 0) {
      errors.push_back(where + ": zone must be non-negative");
    }
    for (const int c : children[static_cast<size_t>(h)]) {
      if (c < 0 || c >= n) {
        errors.push_back(where + ": edge to out-of-range hop " + std::to_string(c));
      } else if (c == h) {
        errors.push_back(where + ": self-edge");
      }
    }
    for (const int64_t b : child_bytes[static_cast<size_t>(h)]) {
      if (b < 0) {
        errors.push_back(where + ": edge payload bytes must be non-negative");
      }
    }
  }
  if (input_bytes < 0 || output_bytes < 0) {
    errors.push_back("dag '" + name + "': input/output bytes must be non-negative");
  }
  if (errors.empty() && TopoOrder().empty()) {
    errors.push_back("dag '" + name + "': contains a cycle");
  }
  return errors;
}

WorkflowDag MakeChainDag(const std::string& name, int length, const HopSpec& proto,
                         bool spread_zones) {
  WorkflowDag dag;
  dag.name = name;
  for (int i = 0; i < length; ++i) {
    HopSpec hop = proto;
    hop.name = name + ".h" + std::to_string(i);
    if (spread_zones) {
      hop.zone = proto.zone + i;
    }
    dag.AddHop(std::move(hop));
    if (i > 0) {
      dag.AddEdge(i - 1, i);
    }
  }
  return dag;
}

WorkflowDag MakeFanOutDag(const std::string& name, int width, int quorum,
                          const HopSpec& proto) {
  WorkflowDag dag;
  dag.name = name;
  HopSpec source = proto;
  source.name = name + ".src";
  const int src = dag.AddHop(std::move(source));
  for (int i = 0; i < width; ++i) {
    HopSpec branch = proto;
    branch.name = name + ".b" + std::to_string(i);
    branch.zone = proto.zone + i;
    const int b = dag.AddHop(std::move(branch));
    dag.AddEdge(src, b);
  }
  HopSpec join = proto;
  join.name = name + ".join";
  join.quorum = quorum;
  const int j = dag.AddHop(std::move(join));
  for (int i = 0; i < width; ++i) {
    dag.AddEdge(src + 1 + i, j);
  }
  return dag;
}

WorkflowDag MakeMapReduceDag(const std::string& name, int mappers, const HopSpec& proto) {
  WorkflowDag dag;
  dag.name = name;
  HopSpec split = proto;
  split.name = name + ".split";
  const int s = dag.AddHop(std::move(split));
  for (int i = 0; i < mappers; ++i) {
    HopSpec map = proto;
    map.name = name + ".map" + std::to_string(i);
    map.zone = proto.zone + i;
    const int m = dag.AddHop(std::move(map));
    dag.AddEdge(s, m);
  }
  HopSpec reduce = proto;
  reduce.name = name + ".reduce";
  // Shuffle cost: the reduce hop reads every mapper's output.
  reduce.exec_mean = proto.exec_mean + (proto.exec_mean / 4) * mappers;
  const int r = dag.AddHop(std::move(reduce));
  for (int i = 0; i < mappers; ++i) {
    dag.AddEdge(s + 1 + i, r);
  }
  return dag;
}

void ApplyUniformPayloads(WorkflowDag& dag, int64_t input, int64_t edge,
                          int64_t output) {
  dag.input_bytes = input;
  dag.output_bytes = output;
  for (std::vector<int64_t>& bytes : dag.child_bytes) {
    std::fill(bytes.begin(), bytes.end(), edge);
  }
}

}  // namespace faascost
