#include "src/workflow/policy.h"

#include <string>
#include <vector>

namespace faascost {

std::vector<std::string> DeadlineBudgetPolicy::Validate() const {
  std::vector<std::string> errors;
  if (deadline < 0) {
    errors.push_back("deadline.deadline must be non-negative");
  }
  return errors;
}

std::vector<std::string> HedgePolicy::Validate() const {
  std::vector<std::string> errors;
  if (hedge_after < 0) {
    errors.push_back("hedge.hedge_after must be non-negative");
  }
  if (cancel_latency < 0) {
    errors.push_back("hedge.cancel_latency must be non-negative");
  }
  return errors;
}

std::vector<std::string> AsyncRedrivePolicy::Validate() const {
  std::vector<std::string> errors;
  if (max_redrives < 0) {
    errors.push_back("redrive.max_redrives must be non-negative");
  }
  if (redrive_delay < 0) {
    errors.push_back("redrive.redrive_delay must be non-negative");
  }
  return errors;
}

std::vector<std::string> WorkflowPolicy::Validate() const {
  std::vector<std::string> errors = retry.Validate();
  for (const auto& e : deadline.Validate()) {
    errors.push_back(e);
  }
  for (const auto& e : hedge.Validate()) {
    errors.push_back(e);
  }
  for (const auto& e : redrive.Validate()) {
    errors.push_back(e);
  }
  // Worst case per hop: every client attempt plus one hedge each, or the
  // initial async delivery plus every redrive. Keep both well inside the
  // per-hop RNG stream window.
  const int sync_worst = retry.max_attempts * (hedge.enabled() ? 2 : 1);
  const int async_worst = 1 + redrive.max_redrives;
  if (sync_worst > kMaxAttemptsPerHop / 2) {
    errors.push_back("policy: max_attempts x hedging exceeds " +
                     std::to_string(kMaxAttemptsPerHop / 2) + " attempts per hop");
  }
  if (async_worst > kMaxAttemptsPerHop / 2) {
    errors.push_back("policy: max_redrives exceeds " +
                     std::to_string(kMaxAttemptsPerHop / 2 - 1) + " redrives per hop");
  }
  return errors;
}

}  // namespace faascost
