#include "src/workflow/workflow_sim.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"

namespace faascost {

std::vector<std::string> ZonalOutageSpec::Validate() const {
  std::vector<std::string> errors;
  if (zone < 0) {
    errors.push_back("outage.zone must be non-negative");
  }
  if (start < 0) {
    errors.push_back("outage.start must be non-negative");
  }
  if (duration <= 0) {
    errors.push_back("outage.duration must be positive");
  }
  return errors;
}

std::vector<std::string> WorkflowSimConfig::Validate() const {
  std::vector<std::string> errors;
  if (workflows < 0) {
    errors.push_back("workflows must be non-negative");
  }
  if (workflows > 0 && dags.empty()) {
    errors.push_back("workflows > 0 requires at least one dag");
  }
  for (const WorkflowDag& dag : dags) {
    for (const auto& e : dag.Validate()) {
      errors.push_back(e);
    }
  }
  if (!(wps > 0.0)) {
    errors.push_back("wps must be positive");
  }
  if (keepalive < 0) {
    errors.push_back("keepalive must be non-negative");
  }
  if (init_mean <= 0) {
    errors.push_back("init_mean must be positive");
  }
  if (init_jitter < 0.0 || init_jitter > 1.0) {
    errors.push_back("init_jitter must be in [0, 1]");
  }
  if (failure_rate < 0.0 || failure_rate > 1.0) {
    errors.push_back("failure_rate must be in [0, 1]");
  }
  if (init_failure_rate < 0.0 || init_failure_rate > 1.0) {
    errors.push_back("init_failure_rate must be in [0, 1]");
  }
  if (zones < 1) {
    errors.push_back("zones must be >= 1");
  }
  for (const ZonalOutageSpec& o : outages) {
    for (const auto& e : o.Validate()) {
      errors.push_back(e);
    }
  }
  for (const auto& e : policy.Validate()) {
    errors.push_back(e);
  }
  if (pricing.per_state_transition < 0.0 || pricing.dlq_write_fee < 0.0 ||
      pricing.dlq_read_fee < 0.0) {
    errors.push_back("pricing fees must be non-negative");
  }
  return errors;
}

namespace {

enum class EvKind { kOutageStart, kArrival, kDispatch, kComplete, kHedgeFire };

// kDispatch flavors.
constexpr int kFlavorClient = 0;   // First attempt or client retry.
constexpr int kFlavorRedrive = 1;  // Platform-side async redrive.

struct Event {
  MicroSecs time = 0;
  int64_t seq = 0;
  EvKind kind = EvKind::kArrival;
  int64_t wf = -1;
  int hop = -1;
  int64_t idx = -1;  // Attempt row (kComplete/kHedgeFire) or outage index.
  int flavor = kFlavorClient;
};

// Min-heap on (time, seq): ties resolve in scheduling order, so runs are
// bit-reproducible regardless of heap internals.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }
};

struct Sandbox {
  MicroSecs free_at = 0;
};

// One deployed function (a (dag, hop) pair), shared across every workflow
// instance of that dag: warm pool + the client fleet's circuit breaker.
struct FunctionState {
  std::vector<Sandbox> warm;
  CircuitBreaker breaker{0, 0};
  bool breaker_open_last = false;
};

struct HopState {
  int succeeded_parents = 0;
  int terminal_parents = 0;
  bool dispatched = false;
  bool resolved = false;
  bool success = false;
  // The quorum join this hop feeds already fired: the current attempt runs
  // to completion (billed), but no further retries/redrives are spent.
  bool straggler = false;
  int total_attempts = 0;   // RNG-ordinal counter (client + hedge + redrive).
  int client_attempts = 0;  // Sync client attempts, incl. kCircuitOpen rows.
  int redrives = 0;
  std::vector<int64_t> open;  // Open attempt rows, ascending.
  // Earliest time every inbound edge payload has landed (network runs only):
  // the first dispatch waits for it.
  MicroSecs data_ready = 0;
};

struct WfState {
  MicroSecs arrival = 0;
  int dag = 0;
  std::vector<HopState> hops;
  int pending_sinks = 0;
  int failed_sinks = 0;
  bool done = false;
  bool degraded = false;
  // Outcome of the first non-straggler hop that failed terminally.
  Outcome root_cause = Outcome::kOk;
  Outcome outcome = Outcome::kOk;
  MicroSecs end = 0;
  Usd usd_attempts = 0.0;
  int64_t transitions = 0;
  int64_t dead_letters = 0;
  Usd usd_network = 0.0;
  Usd usd_net_detour = 0.0;
  // Latest sink-egress landing time: the client has not "seen" the result
  // until its payload arrives, so ws.end extends to cover it.
  MicroSecs net_end = 0;
};

// Engine-private per-attempt bookkeeping, parallel to result.attempts.
struct AttemptExtra {
  bool closed = false;
  int zone = 0;
  bool survives = false;  // Sandbox outlives the attempt (kOk / mid-exec timeout).
  MicroSecs backoff = 0;  // Pre-drawn client retry backoff.
};

class Engine {
 public:
  Engine(const WorkflowSimConfig& cfg, const BillingModel& billing, uint64_t seed)
      : cfg_(cfg), billing_(billing), seed_(seed) {}

  WorkflowSimResult Run();

 private:
  const WorkflowDag& Dag(int d) const { return cfg_.dags[static_cast<size_t>(d)]; }
  const HopSpec& Spec(int d, int h) const {
    return Dag(d).hops[static_cast<size_t>(h)];
  }
  int ZoneOf(const HopSpec& spec) const { return spec.zone % cfg_.zones; }

  uint64_t AttemptSeed(int64_t wf, int hop, int ordinal) const {
    const uint64_t wf_seed =
        DeriveSeed(seed_, kWorkflowStreamBase + static_cast<uint64_t>(wf));
    return DeriveSeed(wf_seed, static_cast<uint64_t>(hop) * kMaxAttemptsPerHop +
                                   static_cast<uint64_t>(ordinal));
  }

  void Schedule(Event e) {
    e.seq = next_seq_++;
    events_.push(e);
  }

  bool InOutage(int zone, MicroSecs t) const {
    for (const ZonalOutageSpec& o : cfg_.outages) {
      if (o.zone % cfg_.zones == zone && t >= o.start && t < o.start + o.duration) {
        return true;
      }
    }
    return false;
  }

  MicroSecs SampleInit(Rng& rng) const {
    if (cfg_.init_jitter > 0.0) {
      const double f = rng.Uniform(1.0 - cfg_.init_jitter, 1.0 + cfg_.init_jitter);
      return std::max<MicroSecs>(
          1, static_cast<MicroSecs>(static_cast<double>(cfg_.init_mean) * f));
    }
    return cfg_.init_mean;
  }

  MicroSecs SampleExec(const HopSpec& spec, Rng& rng) const {
    if (!(spec.exec_cv > 0.0)) {
      return std::max<MicroSecs>(1, spec.exec_mean);
    }
    const double mean = static_cast<double>(spec.exec_mean);
    const double sigma2 = std::log1p(spec.exec_cv * spec.exec_cv);
    const double mu = std::log(mean) - sigma2 / 2.0;
    const double x = rng.LogNormal(mu, std::sqrt(sigma2));
    return std::max<MicroSecs>(1, static_cast<MicroSecs>(x));
  }

  // Removes (if present) an expired-keepalive prune + MRU acquire. Returns
  // true when a warm sandbox was taken.
  bool AcquireWarm(FunctionState& fs, MicroSecs t) {
    std::vector<Sandbox>& w = fs.warm;
    w.erase(std::remove_if(w.begin(), w.end(),
                           [&](const Sandbox& s) { return s.free_at + cfg_.keepalive < t; }),
            w.end());
    int best = -1;
    for (int i = 0; i < static_cast<int>(w.size()); ++i) {
      if (w[static_cast<size_t>(i)].free_at <= t &&
          (best < 0 || w[static_cast<size_t>(i)].free_at > w[static_cast<size_t>(best)].free_at)) {
        best = i;
      }
    }
    if (best < 0) {
      return false;
    }
    w.erase(w.begin() + best);
    return true;
  }

  void NoteBreaker(int d, int h) {
    FunctionState& fs = functions_[static_cast<size_t>(d)][static_cast<size_t>(h)];
    const bool open = fs.breaker.open();
    if (open != fs.breaker_open_last) {
      fs.breaker_open_last = open;
      res_.breaker_transitions.push_back({now_, d, h, open});
    }
  }

  int64_t NewRow(int64_t wf, int hop, Outcome outcome, bool hedge, bool redrive) {
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    HopState& hs = ws.hops[static_cast<size_t>(hop)];
    if (hs.total_attempts >= kMaxAttemptsPerHop) {
      throw IntegrityViolation("workflow.attempt_stream_overflow", now_, seed_,
                               "wf " + std::to_string(wf) + " hop " + std::to_string(hop),
                               "per-hop attempt ordinal exceeded kMaxAttemptsPerHop");
    }
    HopAttempt row;
    row.wf = wf;
    row.dag = ws.dag;
    row.hop = hop;
    row.attempt.req_idx = hop;
    row.attempt.attempt = ++hs.total_attempts;  // 1-based ordinal.
    row.attempt.outcome = outcome;
    row.hedge = hedge;
    row.provider_redrive = redrive;
    res_.attempts.push_back(row);
    extras_.emplace_back();
    return static_cast<int64_t>(res_.attempts.size()) - 1;
  }

  void EmitAttemptSpans(int64_t idx) {
    if (cfg_.trace == nullptr) {
      return;
    }
    const HopAttempt& row = res_.attempts[static_cast<size_t>(idx)];
    if (row.attempt.cold_start && row.attempt.init_duration > 0) {
      Span s;
      s.kind = SpanKind::kInit;
      s.group = kTrackGroupWorkflow;
      s.track = row.wf;
      s.start = row.attempt.dispatched;
      s.duration = row.attempt.init_duration;
      s.req_idx = row.hop;
      s.attempt = row.attempt.attempt;
      s.ref = idx;
      s.cold = true;
      cfg_.trace->Record(s);
    }
    Span s;
    s.kind = SpanKind::kExec;
    s.group = kTrackGroupWorkflow;
    s.track = row.wf;
    s.start = row.attempt.dispatched + row.attempt.init_duration;
    s.duration = row.attempt.exec_duration;
    s.req_idx = row.hop;
    s.attempt = row.attempt.attempt;
    s.ref = idx;
    s.status = OutcomeName(row.attempt.outcome);
    s.terminal = true;
    s.billed_micros = row.attempt.exec_duration;
    s.billed_usd = row.usd;
    cfg_.trace->Record(s);
  }

  // Maps the hop's engine zone into the attached model's zone space.
  int NetZone(const HopSpec& spec) const {
    if (cfg_.network == nullptr) {
      return NetworkModel::kInternet;
    }
    return cfg_.network->ZoneOf(static_cast<int64_t>(ZoneOf(spec)));
  }

  // Walks the tiered meter in event-processing order, books the marginal
  // charge to the instance and the run, and emits telemetry. kTransfer spans
  // are non-terminal, so the billed-USD and transfer-USD columns stay
  // disjoint and each reconciles independently. Waste attribution is
  // disjoint, first match wins: a failed sink's egress wastes the whole
  // charge; a rerouted-but-successful transfer wastes the detour surcharge.
  // Returns the transfer time.
  MicroSecs MeterTransfer(int src_zone, int dst_zone, int64_t bytes, int64_t wf,
                          int hop, bool failed_egress) {
    if (cfg_.network == nullptr || bytes <= 0) {
      return 0;
    }
    const TransferCharge c = cfg_.network->Transfer(src_zone, dst_zone, bytes, now_);
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    ws.usd_network += c.usd;
    ws.usd_net_detour += c.detour_usd;
    res_.usd_network += c.usd;
    res_.usd_network_detour += c.detour_usd;
    ++res_.net_transfers;
    res_.net_bytes += c.bytes;
    const MicroSecs end = now_ + c.time;
    if (cfg_.timeseries != nullptr) {
      cfg_.timeseries->RecordTransfer(end, c.bytes, c.usd);
      if (failed_egress) {
        cfg_.timeseries->RecordWaste(end, WasteKind::kFailedEgress, c.usd);
      } else if (c.detour_usd > 0.0) {
        cfg_.timeseries->RecordWaste(end, WasteKind::kCrossZoneDetour, c.detour_usd);
      }
    }
    if (cfg_.trace != nullptr) {
      Span s;
      s.kind = SpanKind::kTransfer;
      s.group = kTrackGroupWorkflow;
      s.track = wf;
      s.start = now_;
      s.duration = c.time;
      s.req_idx = hop;
      s.ref = c.bytes;
      s.status = c.rerouted ? "rerouted" : "";
      s.billed_usd = c.usd;
      cfg_.trace->Record(s);
    }
    return c.time;
  }

  void EmitBackoffSpan(int64_t wf, int hop, int attempt, MicroSecs delay) {
    if (cfg_.trace == nullptr) {
      return;
    }
    Span s;
    s.kind = SpanKind::kBackoff;
    s.group = kTrackGroupWorkflow;
    s.track = wf;
    s.start = now_;
    s.duration = delay;
    s.req_idx = hop;
    s.attempt = attempt;
    cfg_.trace->Record(s);
  }

  // Bills the row, books its USD, returns the sandbox, emits spans. Every
  // attempt row passes through here exactly once.
  void CloseRow(int64_t idx) {
    AttemptExtra& ex = extras_[static_cast<size_t>(idx)];
    if (ex.closed) {
      throw IntegrityViolation("workflow.double_close", now_, seed_,
                               "attempt " + std::to_string(idx), "row closed twice");
    }
    ex.closed = true;
    HopAttempt& row = res_.attempts[static_cast<size_t>(idx)];
    WfState& ws = wfs_[static_cast<size_t>(row.wf)];
    const HopSpec& spec = Spec(row.dag, row.hop);
    if (row.platform_dispatched) {
      row.usd =
          ComputeInvoice(billing_, BillableRecord(row.attempt, spec.vcpus, spec.mem_mb))
              .total;
    }
    ws.usd_attempts += row.usd;
    res_.usd_attempts += row.usd;
    if (row.attempt.outcome == Outcome::kHedgeLoser) {
      res_.usd_hedge_losers += row.usd;
    }
    HopState& hs = ws.hops[static_cast<size_t>(row.hop)];
    if (hs.straggler) {
      row.straggler = true;
      ++res_.counters.stragglers;
      res_.usd_stragglers += row.usd;
    }
    if (row.platform_dispatched && ex.survives) {
      functions_[static_cast<size_t>(row.dag)][static_cast<size_t>(row.hop)].warm.push_back(
          {row.attempt.end});
    }
    if (cfg_.timeseries != nullptr) {
      // Same value and timestamp the terminal span carries (start + duration),
      // in the same per-row order — keeps ReconcileBilledUsd bitwise.
      const MicroSecs span_end = row.attempt.dispatched + row.attempt.init_duration +
                                 row.attempt.exec_duration;
      cfg_.timeseries->RecordBilled(span_end, row.usd);
      if (row.attempt.exec_duration > 0) {
        cfg_.timeseries->RecordExecution(span_end - row.attempt.exec_duration, span_end);
      }
      if (row.usd > 0.0) {
        // Disjoint categories, first match wins (see WasteKind).
        if (row.attempt.outcome == Outcome::kHedgeLoser) {
          cfg_.timeseries->RecordWaste(span_end, WasteKind::kHedgeLoser, row.usd);
        } else if (row.straggler) {
          cfg_.timeseries->RecordWaste(span_end, WasteKind::kStraggler, row.usd);
        } else if (row.attempt.outcome == Outcome::kDeadLettered) {
          cfg_.timeseries->RecordWaste(span_end, WasteKind::kDeadLetter, row.usd);
        } else if (row.attempt.outcome != Outcome::kOk) {
          cfg_.timeseries->RecordWaste(span_end, WasteKind::kFailedAttempt, row.usd);
        }
      }
    }
    EmitAttemptSpans(idx);
  }

  void RemoveOpen(HopState& hs, int64_t idx) {
    hs.open.erase(std::remove(hs.open.begin(), hs.open.end(), idx), hs.open.end());
  }

  // Truncates an in-flight row at `t` (hedge cancel or outage kill).
  static void TruncateRow(HopAttempt& row, MicroSecs t) {
    row.attempt.end = t;
    const MicroSecs since_dispatch = t - row.attempt.dispatched;
    if (since_dispatch <= row.attempt.init_duration) {
      row.attempt.init_duration = since_dispatch;
      row.attempt.exec_duration = 0;
      row.attempt.start_exec = 0;
    } else {
      row.attempt.exec_duration = since_dispatch - row.attempt.init_duration;
    }
  }

  void OnArrival(int64_t wf) {
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    ws.arrival = now_;
    ws.dag = static_cast<int>(wf % static_cast<int64_t>(cfg_.dags.size()));
    const WorkflowDag& dag = Dag(ws.dag);
    ws.hops.resize(dag.hops.size());
    ws.pending_sinks = static_cast<int>(dag.Sinks().size());
    ++res_.counters.workflows_started;
    if (cfg_.timeseries != nullptr) {
      cfg_.timeseries->RecordArrival(now_);
    }
    for (const int src : dag.Sources()) {
      HopState& hs = ws.hops[static_cast<size_t>(src)];
      hs.dispatched = true;
      // Client ingress: the input payload travels internet -> source zone
      // before the source can start.
      MicroSecs xfer = 0;
      if (cfg_.network != nullptr && dag.input_bytes > 0) {
        xfer = MeterTransfer(NetworkModel::kInternet,
                             NetZone(dag.hops[static_cast<size_t>(src)]),
                             dag.input_bytes, wf, src, /*failed_egress=*/false);
      }
      if (xfer > 0) {
        hs.data_ready = now_ + xfer;
        Schedule({now_ + xfer, 0, EvKind::kDispatch, wf, src, -1, kFlavorClient});
      } else {
        DispatchAttempt(wf, src, /*hedge=*/false, /*redrive=*/false);
      }
    }
  }

  void DispatchAttempt(int64_t wf, int hop, bool hedge, bool redrive) {
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    HopState& hs = ws.hops[static_cast<size_t>(hop)];
    const HopSpec& spec = Spec(ws.dag, hop);
    if (!hedge && !redrive && !spec.async) {
      ++hs.client_attempts;
    }

    // Deadline fast-fail: with a propagated budget, a hop that cannot fit is
    // never handed to the platform — the row exists (taxonomy + audit) but
    // is unbilled by construction.
    const DeadlineBudgetPolicy& dl = cfg_.policy.deadline;
    if (!hedge && dl.enabled() && dl.propagate && now_ >= ws.arrival + dl.deadline) {
      const int64_t idx = NewRow(wf, hop, Outcome::kTimeout, hedge, redrive);
      HopAttempt& row = res_.attempts[static_cast<size_t>(idx)];
      row.fail_fast = true;
      row.attempt.dispatched = now_;
      row.attempt.end = now_;
      CloseRow(idx);
      ++res_.counters.fail_fast;
      ResolveHopFailure(wf, hop, Outcome::kTimeout);
      return;
    }

    FunctionState& fs = functions_[static_cast<size_t>(ws.dag)][static_cast<size_t>(hop)];

    // Circuit breaker guards sync client dispatches (hedges ride on an
    // admitted primary; redrives are platform-side).
    if (!spec.async && !hedge && fs.breaker.enabled()) {
      const bool allowed = fs.breaker.AllowDispatch(now_);
      NoteBreaker(ws.dag, hop);
      if (!allowed) {
        const int ordinal = hs.total_attempts;
        const int64_t idx = NewRow(wf, hop, Outcome::kCircuitOpen, hedge, redrive);
        HopAttempt& row = res_.attempts[static_cast<size_t>(idx)];
        row.attempt.dispatched = now_;
        row.attempt.end = now_;
        CloseRow(idx);
        ++res_.counters.circuit_open;
        Rng rng(AttemptSeed(wf, hop, ordinal));
        FailClientAttempt(wf, hop, Outcome::kCircuitOpen,
                          cfg_.policy.retry.BackoffDelay(hs.client_attempts, rng));
        return;
      }
    }

    const int ordinal = hs.total_attempts;
    const int64_t idx = NewRow(wf, hop, Outcome::kOk, hedge, redrive);
    HopAttempt& row = res_.attempts[static_cast<size_t>(idx)];
    AttemptExtra& ex = extras_[static_cast<size_t>(idx)];
    row.platform_dispatched = true;
    ++res_.counters.dispatched_attempts;
    ++ws.transitions;
    if (cfg_.network != nullptr) {
      // Storage ops the attempt performs (class A mutate / class B read),
      // flat-priced by the model's meter.
      const Usd ops = cfg_.network->MeterRequestOps();
      ws.usd_network += ops;
      res_.usd_network += ops;
    }

    Rng rng(AttemptSeed(wf, hop, ordinal));
    const int zone = ZoneOf(spec);
    ex.zone = zone;
    const bool outage_now = InOutage(zone, now_);

    bool cold = true;
    if (!outage_now && AcquireWarm(fs, now_)) {
      cold = false;
    }
    MicroSecs init = 0;
    if (cold) {
      init = SampleInit(rng);
      ++res_.counters.cold_starts;
    }
    if (cfg_.timeseries != nullptr) {
      cfg_.timeseries->RecordDispatch(now_, cold);
    }
    const bool init_fail =
        cold && (outage_now ||
                 (cfg_.init_failure_rate > 0.0 && rng.Bernoulli(cfg_.init_failure_rate)));

    const MicroSecs exec = SampleExec(spec, rng);
    const double p_fail = spec.failure_rate >= 0.0 ? spec.failure_rate : cfg_.failure_rate;
    const bool crash = !init_fail && p_fail > 0.0 && rng.Bernoulli(p_fail);
    MicroSecs run = exec;
    if (crash) {
      const double u = 1.0 - rng.NextDouble();  // (0, 1].
      run = std::max<MicroSecs>(1, static_cast<MicroSecs>(static_cast<double>(exec) * u));
    }
    // Pre-draw the client retry backoff so the failure path needs no RNG.
    ex.backoff = cfg_.policy.retry.BackoffDelay(hs.client_attempts, rng);

    Outcome outcome = Outcome::kOk;
    MicroSecs init_run = init;
    MicroSecs cut = run;
    if (init_fail) {
      outcome = Outcome::kInitFailure;
      cut = 0;
    } else {
      if (crash) {
        outcome = Outcome::kCrash;
      }
      // Per-hop platform timeout bounds the execution portion; the earliest
      // of {crash, timeout, natural end} wins.
      if (spec.timeout > 0 && cut >= spec.timeout) {
        cut = spec.timeout;
        outcome = Outcome::kTimeout;
      }
      // Propagated deadline budget bounds wall-clock from dispatch.
      if (dl.enabled() && dl.propagate) {
        const MicroSecs remaining = ws.arrival + dl.deadline - now_;
        if (init_run + cut > remaining) {
          outcome = Outcome::kTimeout;
          if (remaining <= init_run) {
            init_run = remaining;
            cut = 0;
          } else {
            cut = remaining - init_run;
          }
        }
      }
    }

    row.attempt.outcome = outcome;
    row.attempt.dispatched = now_;
    row.attempt.cold_start = cold;
    row.attempt.init_duration = init_run;
    row.attempt.exec_duration = cut;
    row.attempt.start_exec = cut > 0 ? now_ + init_run : 0;
    row.attempt.end = now_ + init_run + cut;
    // A sandbox survives a completed execution or a mid-execution timeout;
    // init failures, crashes, and aborts during init destroy it.
    ex.survives = outcome == Outcome::kOk ||
                  (outcome == Outcome::kTimeout && cut > 0 && init_run >= init);

    hs.open.push_back(idx);
    Schedule({row.attempt.end, 0, EvKind::kComplete, wf, hop, idx, kFlavorClient});
    if (!spec.async && !hedge && cfg_.policy.hedge.enabled() &&
        row.attempt.end > now_ + cfg_.policy.hedge.hedge_after) {
      Schedule({now_ + cfg_.policy.hedge.hedge_after, 0, EvKind::kHedgeFire, wf, hop, idx,
                kFlavorClient});
    }
  }

  // Rewrites a failed async delivery that has exhausted its redrives to
  // kDeadLettered. Must run before the row is billed.
  bool MaybeDeadLetter(int64_t wf, int hop, int64_t idx) {
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    HopState& hs = ws.hops[static_cast<size_t>(hop)];
    const HopSpec& spec = Spec(ws.dag, hop);
    if (!spec.async || hs.straggler || hs.resolved) {
      return false;
    }
    if (hs.redrives < cfg_.policy.redrive.max_redrives) {
      return false;
    }
    res_.attempts[static_cast<size_t>(idx)].attempt.outcome = Outcome::kDeadLettered;
    return true;
  }

  // Common continuation after a dispatched attempt failed (natural
  // completion or outage kill). The row must already be truncated to its
  // final shape but not yet closed.
  void OnAttemptFailed(int64_t wf, int hop, int64_t idx) {
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    HopState& hs = ws.hops[static_cast<size_t>(hop)];
    const HopSpec& spec = Spec(ws.dag, hop);
    const bool dead_letter = MaybeDeadLetter(wf, hop, idx);
    CloseRow(idx);
    RemoveOpen(hs, idx);
    const HopAttempt& row = res_.attempts[static_cast<size_t>(idx)];

    FunctionState& fs = functions_[static_cast<size_t>(ws.dag)][static_cast<size_t>(hop)];
    if (!spec.async && fs.breaker.enabled()) {
      fs.breaker.RecordFailure(now_);
      NoteBreaker(ws.dag, hop);
    }

    if (hs.resolved) {
      return;
    }
    if (hs.straggler) {
      // No further money is spent once the join has fired.
      if (hs.open.empty()) {
        ResolveHopFailure(wf, hop, row.attempt.outcome);
      }
      return;
    }
    if (dead_letter) {
      ++res_.counters.dead_letters;
      ++ws.dead_letters;
      ResolveHopFailure(wf, hop, Outcome::kDeadLettered);
      return;
    }
    if (spec.async) {
      ++hs.redrives;
      ++res_.counters.provider_redrives;
      Schedule({now_ + cfg_.policy.redrive.redrive_delay, 0, EvKind::kDispatch, wf, hop, -1,
                kFlavorRedrive});
      return;
    }
    if (!hs.open.empty()) {
      return;  // A hedge twin is still in flight; it may yet win.
    }
    FailClientAttempt(wf, hop, row.attempt.outcome, extras_[static_cast<size_t>(idx)].backoff);
  }

  // All sync attempts for this client try have failed: retry or give up.
  void FailClientAttempt(int64_t wf, int hop, Outcome last, MicroSecs backoff) {
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    HopState& hs = ws.hops[static_cast<size_t>(hop)];
    if (!hs.straggler && hs.client_attempts < cfg_.policy.retry.max_attempts) {
      ++res_.counters.client_retries;
      if (cfg_.timeseries != nullptr) {
        cfg_.timeseries->RecordRetry(now_);
      }
      EmitBackoffSpan(wf, hop, hs.client_attempts, backoff);
      Schedule({now_ + backoff, 0, EvKind::kDispatch, wf, hop, -1, kFlavorClient});
      return;
    }
    ResolveHopFailure(wf, hop,
                      cfg_.policy.retry.max_attempts > 1 ? Outcome::kRetriesExhausted : last);
  }

  void OnComplete(int64_t wf, int hop, int64_t idx) {
    if (extras_[static_cast<size_t>(idx)].closed) {
      return;  // Truncated earlier (hedge cancel / outage kill).
    }
    HopAttempt& row = res_.attempts[static_cast<size_t>(idx)];
    if (row.attempt.outcome == Outcome::kHedgeLoser) {
      // Lost the race but finished before the cancel landed: bills in full,
      // no further state-machine effect (the hop already resolved).
      CloseRow(idx);
      return;
    }
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    HopState& hs = ws.hops[static_cast<size_t>(hop)];
    if (row.attempt.outcome != Outcome::kOk) {
      OnAttemptFailed(wf, hop, idx);
      return;
    }
    CloseRow(idx);
    RemoveOpen(hs, idx);
    const HopSpec& spec = Spec(ws.dag, hop);
    FunctionState& fs = functions_[static_cast<size_t>(ws.dag)][static_cast<size_t>(hop)];
    if (!spec.async && fs.breaker.enabled()) {
      fs.breaker.RecordSuccess();
      NoteBreaker(ws.dag, hop);
    }
    if (hs.resolved) {
      return;
    }
    if (row.hedge) {
      ++res_.counters.hedge_wins;
    }
    ResolveHopSuccess(wf, hop);
  }

  void ResolveHopSuccess(int64_t wf, int hop) {
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    HopState& hs = ws.hops[static_cast<size_t>(hop)];
    const WorkflowDag& dag = Dag(ws.dag);
    hs.resolved = true;
    hs.success = true;
    // Cancel the losing side of a hedge race.
    if (!hs.open.empty()) {
      std::vector<int64_t> open = hs.open;
      hs.open.clear();
      std::sort(open.begin(), open.end());
      const MicroSecs cancel_t = now_ + cfg_.policy.hedge.cancel_latency;
      for (const int64_t o : open) {
        HopAttempt& loser = res_.attempts[static_cast<size_t>(o)];
        loser.attempt.outcome = Outcome::kHedgeLoser;
        ++res_.counters.hedge_losers;
        if (loser.attempt.end > cancel_t) {
          TruncateRow(loser, cancel_t);
          extras_[static_cast<size_t>(o)].survives = false;
          CloseRow(o);
        }
        // else: it finishes first and bills in full at its own completion.
      }
    }
    if (dag.children[static_cast<size_t>(hop)].empty()) {
      SinkResolved(wf, hop, /*sink_success=*/true);
    }
    for (const int c : dag.children[static_cast<size_t>(hop)]) {
      HopState& cs = ws.hops[static_cast<size_t>(c)];
      if (cfg_.network != nullptr) {
        // Ship the edge payload producer zone -> consumer zone now; the
        // consumer's first dispatch waits for every inbound payload.
        const int64_t bytes = dag.EdgeBytes(hop, c);
        if (bytes > 0) {
          const MicroSecs xfer =
              MeterTransfer(NetZone(Spec(ws.dag, hop)), NetZone(Spec(ws.dag, c)),
                            bytes, wf, c, /*failed_egress=*/false);
          cs.data_ready = std::max(cs.data_ready, now_ + xfer);
        }
      }
      ++cs.succeeded_parents;
      ++cs.terminal_parents;
      CheckReadiness(wf, c);
    }
  }

  void ResolveHopFailure(int64_t wf, int hop, Outcome oc) {
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    HopState& hs = ws.hops[static_cast<size_t>(hop)];
    const WorkflowDag& dag = Dag(ws.dag);
    const bool was_straggler = hs.straggler;
    hs.resolved = true;
    hs.success = false;
    if (!was_straggler && ws.root_cause == Outcome::kOk) {
      ws.root_cause = oc;
    }
    if (dag.children[static_cast<size_t>(hop)].empty()) {
      SinkResolved(wf, hop, /*sink_success=*/false);
    }
    for (const int c : dag.children[static_cast<size_t>(hop)]) {
      ++ws.hops[static_cast<size_t>(c)].terminal_parents;
      CheckReadiness(wf, c);
    }
  }

  void CheckReadiness(int64_t wf, int c) {
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    HopState& cs = ws.hops[static_cast<size_t>(c)];
    if (cs.dispatched || cs.resolved) {
      return;
    }
    const WorkflowDag& dag = Dag(ws.dag);
    const HopSpec& cspec = Spec(ws.dag, c);
    const int n = static_cast<int>(dag.parents[static_cast<size_t>(c)].size());
    const int req = cspec.quorum > 0 ? cspec.quorum : n;
    if (cs.succeeded_parents >= req) {
      cs.dispatched = true;
      if (cs.succeeded_parents < n) {
        // Quorum fired before every parent finished: the workflow proceeds
        // degraded; parents still running become billed stragglers.
        ws.degraded = true;
        for (const int p : dag.parents[static_cast<size_t>(c)]) {
          HopState& ps = ws.hops[static_cast<size_t>(p)];
          if (ps.dispatched && !ps.resolved && !ps.straggler) {
            ps.straggler = true;
          }
        }
      }
      if (cs.data_ready > now_) {
        // Inbound edge payloads are still in flight: start when they land.
        Schedule({cs.data_ready, 0, EvKind::kDispatch, wf, c, -1, kFlavorClient});
      } else {
        DispatchAttempt(wf, c, /*hedge=*/false, /*redrive=*/false);
      }
      return;
    }
    if (cs.succeeded_parents + (n - cs.terminal_parents) < req) {
      // The quorum can no longer be met: skip the hop, unbilled.
      cs.dispatched = true;
      const int64_t idx = NewRow(wf, c, Outcome::kUpstreamFailed, false, false);
      HopAttempt& row = res_.attempts[static_cast<size_t>(idx)];
      row.attempt.dispatched = now_;
      row.attempt.end = now_;
      CloseRow(idx);
      ++res_.counters.upstream_skipped;
      ResolveHopFailure(wf, c, Outcome::kUpstreamFailed);
    }
  }

  void SinkResolved(int64_t wf, int hop, bool sink_success) {
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    if (!sink_success) {
      ++ws.failed_sinks;
    }
    if (cfg_.network != nullptr) {
      // Sink egress: the client sees the result (or an error body) only
      // after it crosses the topology, so the instance's end extends to the
      // latest landing.
      const int64_t bytes = sink_success
                                ? Dag(ws.dag).output_bytes
                                : cfg_.network->config().error_response_bytes;
      if (bytes > 0) {
        const MicroSecs xfer =
            MeterTransfer(NetZone(Spec(ws.dag, hop)), NetworkModel::kInternet,
                          bytes, wf, hop, /*failed_egress=*/!sink_success);
        ws.net_end = std::max(ws.net_end, now_ + xfer);
      }
    }
    if (--ws.pending_sinks > 0) {
      return;
    }
    ws.done = true;
    ws.end = std::max(now_, ws.net_end);
    const DeadlineBudgetPolicy& dl = cfg_.policy.deadline;
    if (ws.failed_sinks > 0) {
      ws.outcome =
          ws.root_cause != Outcome::kOk ? ws.root_cause : Outcome::kUpstreamFailed;
    } else if (dl.enabled() && ws.end > ws.arrival + dl.deadline) {
      ws.outcome = Outcome::kTimeout;  // Completed, but past the deadline.
    } else {
      ws.outcome = Outcome::kOk;
    }
    if (cfg_.timeseries != nullptr) {
      cfg_.timeseries->RecordCompletion(ws.end, ws.outcome == Outcome::kOk,
                                        ws.end - ws.arrival);
    }
  }

  void OnHedgeFire(int64_t wf, int hop, int64_t idx) {
    if (extras_[static_cast<size_t>(idx)].closed) {
      return;  // The primary already resolved.
    }
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    HopState& hs = ws.hops[static_cast<size_t>(hop)];
    if (hs.resolved || ws.done) {
      return;
    }
    // One live hedge per primary: fire only when the triggering attempt is
    // the lone open one.
    if (hs.open.size() != 1 || hs.open.front() != idx) {
      return;
    }
    ++res_.counters.hedges;
    DispatchAttempt(wf, hop, /*hedge=*/true, /*redrive=*/false);
  }

  void OnDispatchEvent(int64_t wf, int hop, int flavor) {
    WfState& ws = wfs_[static_cast<size_t>(wf)];
    HopState& hs = ws.hops[static_cast<size_t>(hop)];
    if (hs.resolved) {
      return;
    }
    if (hs.straggler) {
      // A retry/redrive scheduled before the join fired: spend nothing more.
      ResolveHopFailure(wf, hop, Outcome::kRetriesExhausted);
      return;
    }
    DispatchAttempt(wf, hop, /*hedge=*/false, /*redrive=*/flavor == kFlavorRedrive);
  }

  void OnOutageStart(int64_t outage_idx) {
    const ZonalOutageSpec& o = cfg_.outages[static_cast<size_t>(outage_idx)];
    const int zone = o.zone % cfg_.zones;
    // Warm capacity in the zone dies.
    for (size_t d = 0; d < functions_.size(); ++d) {
      for (size_t h = 0; h < functions_[d].size(); ++h) {
        if (ZoneOf(Dag(static_cast<int>(d)).hops[h]) == zone) {
          functions_[d][h].warm.clear();
        }
      }
    }
    // In-flight attempts in the zone crash at the outage boundary, billed to
    // the crash point.
    const int64_t n = static_cast<int64_t>(res_.attempts.size());
    for (int64_t i = 0; i < n; ++i) {
      AttemptExtra& ex = extras_[static_cast<size_t>(i)];
      if (ex.closed || ex.zone != zone) {
        continue;
      }
      HopAttempt& row = res_.attempts[static_cast<size_t>(i)];
      if (!row.platform_dispatched || row.attempt.end < now_) {
        continue;
      }
      row.outage_killed = true;
      ++res_.counters.outage_killed;
      ex.survives = false;
      if (row.attempt.outcome == Outcome::kHedgeLoser) {
        // Already lost its race; just stop the meter at the outage.
        TruncateRow(row, now_);
        CloseRow(i);
        continue;
      }
      row.attempt.outcome = Outcome::kCrash;
      TruncateRow(row, now_);
      OnAttemptFailed(row.wf, row.hop, i);
    }
  }

  const WorkflowSimConfig& cfg_;
  const BillingModel& billing_;
  uint64_t seed_;

  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  int64_t next_seq_ = 0;
  MicroSecs now_ = 0;
  int64_t events_processed_ = 0;

  std::vector<std::vector<FunctionState>> functions_;  // [dag][hop].
  std::vector<WfState> wfs_;
  std::vector<AttemptExtra> extras_;
  WorkflowSimResult res_;
};

WorkflowSimResult Engine::Run() {
  // Shared per-function state.
  functions_.resize(cfg_.dags.size());
  for (size_t d = 0; d < cfg_.dags.size(); ++d) {
    functions_[d].resize(cfg_.dags[d].hops.size());
    for (size_t h = 0; h < functions_[d].size(); ++h) {
      functions_[d][h].breaker = CircuitBreaker(cfg_.policy.retry.breaker_threshold,
                                                cfg_.policy.retry.breaker_cooldown);
    }
  }
  wfs_.resize(static_cast<size_t>(cfg_.workflows));

  for (size_t i = 0; i < cfg_.outages.size(); ++i) {
    Schedule({cfg_.outages[i].start, 0, EvKind::kOutageStart, -1, -1,
              static_cast<int64_t>(i), kFlavorClient});
  }
  for (int64_t i = 0; i < cfg_.workflows; ++i) {
    const MicroSecs t = static_cast<MicroSecs>(
        std::llround(static_cast<double>(i) * static_cast<double>(kMicrosPerSec) / cfg_.wps));
    Schedule({t, 0, EvKind::kArrival, i, -1, -1, kFlavorClient});
  }

  Auditor* aud = cfg_.auditor;
  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    if (aud != nullptr && aud->basic()) {
      aud->CheckLazy(
          ev.time >= now_, "workflow.monotone_event_time", ev.time, seed_,
          [&] { return "event seq " + std::to_string(ev.seq); },
          [&] { return "event time regressed below " + std::to_string(now_); });
    }
    now_ = ev.time;
    ++events_processed_;
    if (aud != nullptr && aud->ScanDue(events_processed_)) {
      aud->NoteScan();
      for (size_t i = 0; i < extras_.size(); ++i) {
        const HopAttempt& row = res_.attempts[i];
        aud->CheckLazy(
            extras_[i].closed || row.attempt.end >= now_, "workflow.open_attempt_in_past",
            now_, seed_, [&] { return "attempt " + std::to_string(i); },
            [&] { return "open row ends at " + std::to_string(row.attempt.end); });
      }
    }
    switch (ev.kind) {
      case EvKind::kOutageStart:
        OnOutageStart(ev.idx);
        break;
      case EvKind::kArrival:
        OnArrival(ev.wf);
        break;
      case EvKind::kDispatch:
        OnDispatchEvent(ev.wf, ev.hop, ev.flavor);
        break;
      case EvKind::kComplete:
        OnComplete(ev.wf, ev.hop, ev.idx);
        break;
      case EvKind::kHedgeFire:
        OnHedgeFire(ev.wf, ev.hop, ev.idx);
        break;
    }
    res_.makespan = std::max(res_.makespan, now_);
  }

  // Finalize: per-workflow rows, fee line items, waste decomposition.
  const Usd fee_t = cfg_.pricing.per_state_transition;
  const Usd fee_dlq = cfg_.pricing.dlq_write_fee + cfg_.pricing.dlq_read_fee;
  res_.workflows.reserve(wfs_.size());
  for (size_t i = 0; i < wfs_.size(); ++i) {
    WfState& ws = wfs_[i];
    if (aud != nullptr && aud->basic()) {
      aud->CheckLazy(
          ws.done, "workflow.unterminated", now_, seed_,
          [&] { return "wf " + std::to_string(i); },
          [&] { return std::string("event queue drained with unresolved sinks"); });
    }
    WorkflowRow row;
    row.wf = static_cast<int64_t>(i);
    row.dag = ws.dag;
    row.outcome = ws.outcome;
    row.degraded = ws.degraded;
    row.arrival = ws.arrival;
    row.end = ws.end;
    row.usd = ws.usd_attempts + fee_t * static_cast<double>(ws.transitions) +
              fee_dlq * static_cast<double>(ws.dead_letters) + ws.usd_network;
    row.usd_network = ws.usd_network;
    res_.usd_transitions += fee_t * static_cast<double>(ws.transitions);
    res_.usd_dlq += fee_dlq * static_cast<double>(ws.dead_letters);
    if (ws.outcome == Outcome::kOk) {
      ++res_.counters.workflows_succeeded;
      if (ws.degraded) {
        ++res_.counters.degraded_successes;
      }
      // A successful instance's network spend is useful, except the part an
      // outage detour forced on it.
      res_.usd_useful += ws.usd_network - ws.usd_net_detour;
    } else {
      ++res_.counters.workflows_failed;
    }
    res_.workflows.push_back(row);
    if (cfg_.trace != nullptr) {
      Span s;
      s.kind = SpanKind::kWorkflow;
      s.group = kTrackGroupWorkflow;
      s.track = static_cast<int64_t>(i);
      s.start = ws.arrival;
      s.duration = ws.end - ws.arrival;
      s.status = OutcomeName(ws.outcome);
      s.terminal = true;
      s.billed_usd = row.usd;
      cfg_.trace->Record(s);
    }
  }
  res_.usd_total =
      res_.usd_attempts + res_.usd_transitions + res_.usd_dlq + res_.usd_network;
  for (const HopAttempt& att : res_.attempts) {
    if (res_.workflows[static_cast<size_t>(att.wf)].outcome == Outcome::kOk &&
        att.attempt.outcome == Outcome::kOk && !att.straggler) {
      res_.usd_useful += att.usd + fee_t;
    }
  }
  res_.usd_wasted = res_.usd_total - res_.usd_useful;
  for (const auto& dag_fns : functions_) {
    for (const FunctionState& fs : dag_fns) {
      res_.counters.breaker_trips += fs.breaker.trips();
    }
  }
  return res_;
}

}  // namespace

WorkflowSimResult SimulateWorkflows(const WorkflowSimConfig& config,
                                    const BillingModel& billing, uint64_t seed) {
  const std::vector<std::string> errors = config.Validate();
  if (!errors.empty()) {
    std::string joined = "invalid WorkflowSimConfig:";
    for (const auto& e : errors) {
      joined += "\n  " + e;
    }
    throw std::invalid_argument(joined);
  }
  Engine engine(config, billing, seed);
  return engine.Run();
}

}  // namespace faascost
