// Deterministic workflow engine: drives DAGs of function invocations through
// the platform/billing primitives and prices every resilience decision.
//
// The engine is a composition layer, not a new platform model: hops execute
// under FleetSim-style per-function warm pools with keep-alive (chained hops
// warm each other's sandboxes), attempts are priced through BillableRecord +
// ComputeInvoice so failure-billing rules apply unchanged, and orchestration
// overhead (state transitions, DLQ storage ops) is priced by WorkflowPricing.
// What it adds is the cross-invocation cost structure single calls cannot
// show: a mid-chain failure bills every upstream hop, retries at hop k re-pay
// hops 1..k-1's sunk cost, hedges double-bill, quorum joins bill stragglers,
// and dead-lettered async hops pay for every redrive plus the DLQ write.
//
// Determinism contract: every stochastic draw comes from a per-attempt Rng
// seeded as DeriveSeed(DeriveSeed(seed, kWorkflowStreamBase + wf),
// hop * kMaxAttemptsPerHop + ordinal) — a pure function of (seed, workflow,
// hop, attempt) independent of event interleaving. A run with zero workflows
// constructs no Rng at all. Events are ordered by (time, sequence) so ties
// resolve identically on every run.

#ifndef FAASCOST_WORKFLOW_WORKFLOW_SIM_H_
#define FAASCOST_WORKFLOW_WORKFLOW_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/billing/catalog.h"
#include "src/billing/model.h"
#include "src/common/units.h"
#include "src/integrity/integrity.h"
#include "src/net/model.h"
#include "src/obs/span.h"
#include "src/platform/platform_sim.h"
#include "src/trace/record.h"
#include "src/workflow/dag.h"
#include "src/workflow/policy.h"

namespace faascost {

// One availability-zone outage window: at `start`, warm sandboxes in the zone
// are destroyed and in-flight attempts crash (billed to the crash point);
// dispatches during the window fail initialization after the wasted init
// time. Recovery is implicit: once the window ends, cold starts succeed.
struct ZonalOutageSpec {
  int zone = 0;
  MicroSecs start = 0;
  MicroSecs duration = 0;

  std::vector<std::string> Validate() const;
};

struct WorkflowSimConfig {
  // DAG templates; workflow instance i runs dags[i % dags.size()].
  std::vector<WorkflowDag> dags;
  // Number of workflow instances. 0 is the zero-DAG run: no arrivals, no RNG
  // construction, bit-identical empty results.
  int64_t workflows = 0;
  // Workflow arrival rate (uniform spacing, starting at t = 0).
  double wps = 1.0;

  WorkflowPolicy policy;

  // Per-function sandbox model (FleetSim-style single-concurrency pools).
  MicroSecs keepalive = 60 * kMicrosPerSec;
  MicroSecs init_mean = 400 * kMicrosPerMilli;
  double init_jitter = 0.25;  // Init uniform in init_mean * [1-j, 1+j].
  // Engine-wide per-attempt fault rates (HopSpec::failure_rate overrides the
  // crash rate per hop).
  double failure_rate = 0.0;
  double init_failure_rate = 0.0;

  // Availability zones; hop zones are taken modulo this count.
  int zones = 1;
  std::vector<ZonalOutageSpec> outages;

  // Orchestration pricing (state transitions + DLQ ops); per-invocation
  // billing comes from the BillingModel passed to SimulateWorkflows.
  WorkflowPricing pricing;

  // Null-sink hooks: with all detached the run is bit-identical to an
  // unobserved one.
  TraceSink* trace = nullptr;
  Auditor* auditor = nullptr;
  // Zone/region topology + transfer pricing (src/net/model.h). Attached, the
  // engine routes client ingress (dag.input_bytes at arrival), every
  // data-dependency edge payload (dag.child_bytes at producer success), and
  // sink egress (dag.output_bytes, or the model's error body on failure)
  // through the topology: transfer time delays the consumer's dispatch and
  // extends the workflow's client-observed end; transfer bytes walk the
  // tiered meter and land in usd_network. Storage ops are metered per
  // platform-dispatched attempt. Hop zones map into the model via
  // ZoneOf(spec.zone % zones). Caller-owned run state like a TraceSink; the
  // caller mirrors ZonalOutageSpec windows into NetworkModelConfig::outages
  // when the capacity outage should also degrade the network edge.
  NetworkModel* network = nullptr;
  // Sim-time windowed telemetry (src/obs/timeseries.h). Billed USD is
  // recorded in CloseRow — the single point every priced attempt passes
  // through — at the attempt's terminal-span end time, so the series
  // reconciles bitwise against span totals. Waste categories follow
  // DESIGN.md §10: hedge losers, stragglers, dead letters, failed attempts.
  TimeSeries* timeseries = nullptr;

  std::vector<std::string> Validate() const;
};

// One invocation attempt of one hop of one workflow instance. `attempt`
// carries the platform-level fields (req_idx = hop index, attempt = 1-based
// per-hop ordinal across client attempts, hedges, and redrives), so the
// audit can re-price it through BillableRecord + ComputeInvoice.
struct HopAttempt {
  int64_t wf = 0;
  int dag = 0;
  int hop = 0;
  AttemptOutcome attempt;
  bool hedge = false;             // Speculative duplicate (HedgePolicy).
  bool provider_redrive = false;  // Platform-side async redrive.
  // Deadline fast-fail: the remaining budget was <= 0 at dispatch, so the
  // attempt was never handed to the platform (unbilled by policy design).
  bool fail_fast = false;
  // Completed after the quorum join it feeds had already fired (billed).
  bool straggler = false;
  bool outage_killed = false;  // Truncated by a zonal outage.
  // False for rows that never reached the platform (kCircuitOpen,
  // kUpstreamFailed, fail-fast): their usd is 0 by construction.
  bool platform_dispatched = false;
  // Invoice total for this attempt (excludes transition/DLQ fees, which are
  // workflow-level line items).
  Usd usd = 0.0;
};

// Terminal summary of one workflow instance.
struct WorkflowRow {
  int64_t wf = 0;
  int dag = 0;
  // kOk on success; otherwise the root cause — the outcome of the first hop
  // that failed terminally (kRetriesExhausted, kDeadLettered, ...), or
  // kTimeout when the workflow completed past its deadline.
  Outcome outcome = Outcome::kOk;
  bool degraded = false;  // A quorum join fired before every parent finished.
  MicroSecs arrival = 0;
  // Last sink resolution plus any sink-egress transfer time (stragglers may
  // run past it).
  MicroSecs end = 0;
  // Full cost of the instance: attempt invoices + its state-transition fees
  // + its DLQ fees + its network charges (usd_network below).
  Usd usd = 0.0;
  // The network share of `usd`: transfers this instance routed plus the
  // storage ops its attempts metered. 0 when no NetworkModel is attached.
  Usd usd_network = 0.0;
};

struct WorkflowCounters {
  int64_t workflows_started = 0;
  int64_t workflows_succeeded = 0;
  int64_t workflows_failed = 0;
  int64_t degraded_successes = 0;  // Succeeded via a quorum join firing early.
  int64_t dispatched_attempts = 0; // Attempts that reached the platform.
  int64_t client_retries = 0;
  int64_t hedges = 0;
  int64_t hedge_wins = 0;    // The duplicate finished first.
  int64_t hedge_losers = 0;  // Billed losers (either side of the race).
  int64_t provider_redrives = 0;
  int64_t dead_letters = 0;
  int64_t upstream_skipped = 0;  // Hops never dispatched (kUpstreamFailed).
  int64_t fail_fast = 0;         // Deadline fast-fails (unbilled).
  int64_t circuit_open = 0;      // Breaker short-circuits (unbilled).
  int64_t breaker_trips = 0;
  int64_t cold_starts = 0;
  int64_t outage_killed = 0;
  int64_t stragglers = 0;  // Attempts billed after their join fired.
};

// One client circuit-breaker state flip, for the breaker-monotonicity
// property test: transitions alternate open/closed per function and carry
// non-decreasing times.
struct BreakerTransition {
  MicroSecs time = 0;
  int dag = 0;
  int hop = 0;
  bool open = false;  // State after the transition.
};

struct WorkflowSimResult {
  std::vector<HopAttempt> attempts;
  std::vector<WorkflowRow> workflows;
  WorkflowCounters counters;
  std::vector<BreakerTransition> breaker_transitions;

  // USD decomposition:
  //   usd_total = usd_attempts + usd_transitions + usd_dlq + usd_network.
  Usd usd_attempts = 0.0;     // Sum of per-attempt invoices.
  Usd usd_transitions = 0.0;  // dispatched_attempts * per_state_transition.
  Usd usd_dlq = 0.0;          // dead_letters * (dlq_write_fee + dlq_read_fee).
  // Network line item: transfer charges + storage-op fees, metered through
  // the attached NetworkModel. Zero when detached. Reconciles bitwise
  // against kTransfer spans / windowed telemetry via ReconcileTransferUsd.
  Usd usd_network = 0.0;
  Usd usd_network_detour = 0.0;  // Outage-rerouting surcharge inside usd_network.
  int64_t net_transfers = 0;
  int64_t net_bytes = 0;
  Usd usd_total = 0.0;
  // Billed-but-wasted money: usd_total minus the invoices (plus transition
  // fees) of kOk, non-straggler attempts inside workflows that ultimately
  // succeeded, and minus successful workflows' network spend net of detour
  // surcharges. This is the quantity deadline budgets and breakers exist to
  // shrink.
  Usd usd_useful = 0.0;
  Usd usd_wasted = 0.0;
  // Named waste components (subsets of usd_wasted's inputs).
  Usd usd_hedge_losers = 0.0;
  Usd usd_stragglers = 0.0;

  MicroSecs makespan = 0;  // Last event in the run (includes stragglers).
};

// Runs `config.workflows` instances to completion. Throws
// std::invalid_argument when config.Validate() reports errors; throws
// IntegrityViolation when an attached auditor finds an inconsistency.
WorkflowSimResult SimulateWorkflows(const WorkflowSimConfig& config,
                                    const BillingModel& billing, uint64_t seed);

}  // namespace faascost

#endif  // FAASCOST_WORKFLOW_WORKFLOW_SIM_H_
