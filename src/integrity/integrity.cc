#include "src/integrity/integrity.h"

namespace faascost {

namespace {

std::string BuildMessage(const std::string& invariant, MicroSecs sim_time,
                         uint64_t seed, const std::string& entity,
                         const std::string& detail) {
  std::string out = "integrity violation: " + invariant;
  out += " at t=" + std::to_string(sim_time) + "us";
  out += " seed=" + std::to_string(seed);
  if (!entity.empty()) {
    out += " entity=" + entity;
  }
  if (!detail.empty()) {
    out += ": " + detail;
  }
  return out;
}

}  // namespace

AuditLevel ParseAuditLevel(std::string_view text) {
  if (text == "off") {
    return AuditLevel::kOff;
  }
  if (text == "basic") {
    return AuditLevel::kBasic;
  }
  if (text == "full") {
    return AuditLevel::kFull;
  }
  throw std::invalid_argument("unknown audit level '" + std::string(text) +
                              "' (expected off|basic|full)");
}

const char* AuditLevelName(AuditLevel level) {
  switch (level) {
    case AuditLevel::kOff:
      return "off";
    case AuditLevel::kBasic:
      return "basic";
    case AuditLevel::kFull:
      return "full";
  }
  return "?";
}

IntegrityViolation::IntegrityViolation(std::string invariant, MicroSecs sim_time,
                                       uint64_t seed, std::string entity,
                                       std::string detail)
    : std::runtime_error(BuildMessage(invariant, sim_time, seed, entity, detail)),
      invariant_(std::move(invariant)),
      sim_time_(sim_time),
      seed_(seed),
      entity_(std::move(entity)),
      detail_(std::move(detail)) {}

Auditor::Auditor(AuditLevel level, int64_t scan_cadence_events)
    : level_(level), scan_cadence_(scan_cadence_events) {}

void Auditor::Check(bool ok, std::string_view invariant, MicroSecs sim_time,
                    uint64_t seed, std::string_view entity,
                    std::string_view detail) {
  ++checks_run_;
  if (!ok) {
    Fail(invariant, sim_time, seed, entity, detail);
  }
}

void Auditor::Fail(std::string_view invariant, MicroSecs sim_time, uint64_t seed,
                   std::string_view entity, std::string_view detail) {
  throw IntegrityViolation(std::string(invariant), sim_time, seed,
                           std::string(entity), std::string(detail));
}

}  // namespace faascost
