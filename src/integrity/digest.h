// Canonical state digests.
//
// A StateDigest is a streaming FNV-1a/64 hash over a canonical byte encoding
// of simulator state. Two runs that reach the same logical state — same
// queues, same sandbox pool, same RNG stream positions, same accumulated
// cost — produce the same digest, bit for bit, regardless of which process
// or checkpoint path got them there. The digest is the contract behind
// checkpoint/resume equivalence: `run-to-T2` and `run-to-T1 + resume-to-T2`
// must agree on it, and tests golden it for fixed seeds.
//
// Canonicalization rules (see DESIGN.md §9):
//   - Scalars mix with an explicit width: u64/i64 as 8 little-endian bytes,
//     doubles as their IEEE-754 bit pattern, bools as one byte, strings as
//     length-prefixed bytes. This removes formatting ambiguity entirely.
//   - Order-sensitive where order is state: event-queue heap arrays, FIFO
//     admission queues, and deque contents mix in container order, because
//     that order determines future behavior.
//   - Order-insensitive where order is incidental: collections keyed by id
//     (per-function pools, per-key breakers) either iterate in sorted-key
//     order before mixing, or combine per-item sub-digests through
//     UnorderedDigest, whose commutative fold ignores iteration order.

#ifndef FAASCOST_INTEGRITY_DIGEST_H_
#define FAASCOST_INTEGRITY_DIGEST_H_

#include <bit>
#include <cstdint>
#include <string_view>

namespace faascost {

inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr uint64_t kFnvPrime = 1099511628211ULL;

// Streaming, order-sensitive FNV-1a/64 accumulator.
class StateDigest {
 public:
  void MixByte(uint8_t b) {
    h_ ^= b;
    h_ *= kFnvPrime;
  }

  void MixU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      MixByte(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void MixI64(int64_t v) { MixU64(static_cast<uint64_t>(v)); }

  // Doubles hash by bit pattern: -0.0 != +0.0, and every NaN payload is
  // distinct. Digest equality therefore implies bit-identical doubles.
  void MixDouble(double v) { MixU64(std::bit_cast<uint64_t>(v)); }

  void MixBool(bool v) { MixByte(v ? 1 : 0); }

  // Length-prefixed so "ab"+"c" and "a"+"bc" cannot collide.
  void MixStr(std::string_view s) {
    MixU64(s.size());
    for (const char c : s) {
      MixByte(static_cast<uint8_t>(c));
    }
  }

  // Domain-separation label for a named section of state.
  void MixLabel(std::string_view label) { MixStr(label); }

  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = kFnvOffsetBasis;
};

// Commutative combiner for collections whose iteration order is incidental
// (e.g. unordered_map buckets). Each item is hashed into its own StateDigest
// and Added here; the fold (sum + xor of a mixed form) is order-insensitive
// but still sensitive to multiplicity and to every item bit.
class UnorderedDigest {
 public:
  void Add(uint64_t item_digest) {
    sum_ += item_digest;
    // Bijective mix before xor so items differing only in low bits still
    // disturb the whole word.
    uint64_t z = item_digest + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    xored_ ^= z ^ (z >> 31);
    ++count_;
  }

  // Folds the combined value into an order-sensitive parent digest.
  void FinishInto(StateDigest* parent) const {
    parent->MixU64(count_);
    parent->MixU64(sum_);
    parent->MixU64(xored_);
  }

 private:
  uint64_t sum_ = 0;
  uint64_t xored_ = 0;
  uint64_t count_ = 0;
};

}  // namespace faascost

#endif  // FAASCOST_INTEGRITY_DIGEST_H_
