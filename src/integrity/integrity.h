// Runtime invariant auditor.
//
// The auditor is a null-sink hook (same pattern as TraceSink /
// MetricsRegistry in src/obs): simulator configs carry an `Auditor*` that
// defaults to nullptr, and a detached run performs exactly one pointer test
// per potential check — no RNG draws, no allocation — so results stay
// bit-identical to pre-auditor goldens.
//
// When attached, the auditor evaluates conservation laws over live simulator
// state (billed-microsecond conservation, request conservation, capacity
// accounting, monotone event time, USD reconciliation; the full catalog is
// DESIGN.md §9). A failed check throws IntegrityViolation carrying the
// invariant name, sim time, seed, and offending entity, so a corrupted run
// dies loudly at the first inconsistent state instead of producing a
// plausible-looking wrong invoice.

#ifndef FAASCOST_INTEGRITY_INTEGRITY_H_
#define FAASCOST_INTEGRITY_INTEGRITY_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "src/common/units.h"

namespace faascost {

// How much checking an attached auditor performs.
//   kOff   — attached but inert (counts nothing; useful for plumbing tests).
//   kBasic — O(1) checks only: monotone time, counter conservation laws.
//   kFull  — kBasic plus O(state) scans (walk every sandbox/queue entry) at
//            the configured cadence and USD reconciliation at end of run.
enum class AuditLevel { kOff, kBasic, kFull };

// Parses "off" | "basic" | "full"; throws std::invalid_argument otherwise.
AuditLevel ParseAuditLevel(std::string_view text);
const char* AuditLevelName(AuditLevel level);

// Thrown when an invariant fails. The what() string is a single line
// suitable for CLI stderr; structured fields are kept for tests and
// programmatic handling.
class IntegrityViolation : public std::runtime_error {
 public:
  IntegrityViolation(std::string invariant, MicroSecs sim_time, uint64_t seed,
                     std::string entity, std::string detail);

  const std::string& invariant() const { return invariant_; }
  MicroSecs sim_time() const { return sim_time_; }
  uint64_t seed() const { return seed_; }
  const std::string& entity() const { return entity_; }
  const std::string& detail() const { return detail_; }

 private:
  std::string invariant_;
  MicroSecs sim_time_ = 0;
  uint64_t seed_ = 0;
  std::string entity_;
  std::string detail_;
};

class Auditor {
 public:
  // `scan_cadence_events`: run O(state) scans every N processed events
  // (kFull only). Cadence 0 disables periodic scans but keeps O(1) checks
  // and the end-of-run scan.
  explicit Auditor(AuditLevel level, int64_t scan_cadence_events = 8192);

  AuditLevel level() const { return level_; }

  bool basic() const { return level_ >= AuditLevel::kBasic; }
  bool full() const { return level_ >= AuditLevel::kFull; }

  // True when a periodic O(state) scan is due at this event count.
  bool ScanDue(int64_t events_processed) const {
    return full() && scan_cadence_ > 0 && events_processed % scan_cadence_ == 0;
  }

  // Records one invariant evaluation; throws IntegrityViolation when !ok.
  void Check(bool ok, std::string_view invariant, MicroSecs sim_time,
             uint64_t seed, std::string_view entity, std::string_view detail);

  // Hot-path variant: `detail` and `entity` are nullary callables invoked
  // only on failure, so a passing check costs one branch and a counter
  // increment — no string formatting or allocation. In-run checks that
  // execute per event or per scanned entity must use this form to stay
  // inside the <10% audited-run overhead budget (see tools/ci.sh).
  template <typename EntityFn, typename DetailFn>
  void CheckLazy(bool ok, std::string_view invariant, MicroSecs sim_time,
                 uint64_t seed, EntityFn&& entity, DetailFn&& detail) {
    ++checks_run_;
    if (!ok) [[unlikely]] {
      Fail(invariant, sim_time, seed, entity(), detail());
    }
  }

  [[noreturn]] void Fail(std::string_view invariant, MicroSecs sim_time,
                         uint64_t seed, std::string_view entity,
                         std::string_view detail);

  // Observability for tests and the CLI summary line.
  int64_t checks_run() const { return checks_run_; }
  int64_t scans_run() const { return scans_run_; }
  void NoteScan() { ++scans_run_; }

 private:
  AuditLevel level_;
  int64_t scan_cadence_;
  int64_t checks_run_ = 0;
  int64_t scans_run_ = 0;
};

}  // namespace faascost

#endif  // FAASCOST_INTEGRITY_INTEGRITY_H_
