// One state walker, three backends.
//
// Checkpoint save, checkpoint load, and canonical digest must agree on
// exactly which bits constitute simulator state — if they could drift apart,
// a checkpoint might silently omit a field the digest covers (resume
// diverges) or cover a field the digest ignores (divergence goes
// undetected). To make drift structurally impossible, every engine writes a
// single template:
//
//   template <typename Ar> void Archive(Ar& ar) {
//     ar.Field("now", now);
//     ar.Begin("breaker"); ... ar.End();
//     ...
//   }
//
// and instantiates it with Saver (JsonWriter-backed), Loader
// (JsonValue-backed), or Digester (StateDigest-backed). Adding a field to
// the walker updates all three at once; forgetting one is impossible.
//
// Encoding choices:
//   - Doubles save/load as their IEEE-754 bit pattern (a JSON uint64), so a
//     round trip through the text checkpoint is exact. The digest mixes the
//     same bits.
//   - Loader looks fields up by key (not position), so field reordering in
//     the walker does not invalidate old checkpoints — only renames and
//     removals do, and those bump the checkpoint version.

#ifndef FAASCOST_INTEGRITY_ARCHIVE_H_
#define FAASCOST_INTEGRITY_ARCHIVE_H_

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/json_reader.h"
#include "src/common/json_writer.h"
#include "src/common/rng.h"
#include "src/integrity/digest.h"

namespace faascost {

class Saver {
 public:
  static constexpr bool kLoading = false;

  explicit Saver(JsonWriter* w) : w_(w) {}

  void Field(std::string_view key, uint64_t& v) { w_->KV(key, v); }
  void Field(std::string_view key, int64_t& v) { w_->KV(key, v); }
  void Field(std::string_view key, int& v) { w_->KV(key, static_cast<int64_t>(v)); }
  void Field(std::string_view key, bool& v) { w_->KV(key, v); }
  void Field(std::string_view key, double& v) {
    w_->KV(key, std::bit_cast<uint64_t>(v));
  }
  void Field(std::string_view key, std::string& v) {
    w_->KV(key, std::string_view(v));
  }

  void Begin(std::string_view key) {
    w_->Key(key);
    w_->BeginObject();
  }
  void End() { w_->EndObject(); }

  // Returns the element count the caller must iterate (its own `n` when
  // saving, the document's when loading).
  size_t BeginArray(std::string_view key, size_t n) {
    w_->Key(key);
    w_->BeginArray();
    return n;
  }
  void BeginElem() { w_->BeginObject(); }
  void EndElem() { w_->EndObject(); }
  void EndArray() { w_->EndArray(); }

  void I64Vec(std::string_view key, std::vector<int64_t>& v) {
    w_->Key(key);
    w_->BeginArray();
    for (const int64_t x : v) {
      w_->Value(x);
    }
    w_->EndArray();
  }

 private:
  JsonWriter* w_;
};

class Loader {
 public:
  static constexpr bool kLoading = true;

  explicit Loader(const JsonValue* root) { stack_.push_back({root, 0}); }

  void Field(std::string_view key, uint64_t& v) { v = Cur().At(key).GetUint64(); }
  void Field(std::string_view key, int64_t& v) { v = Cur().At(key).GetInt64(); }
  void Field(std::string_view key, int& v) {
    v = static_cast<int>(Cur().At(key).GetInt64());
  }
  void Field(std::string_view key, bool& v) { v = Cur().At(key).GetBool(); }
  void Field(std::string_view key, double& v) {
    v = std::bit_cast<double>(Cur().At(key).GetUint64());
  }
  void Field(std::string_view key, std::string& v) {
    v = Cur().At(key).GetString();
  }

  void Begin(std::string_view key) { stack_.push_back({&Cur().At(key), 0}); }
  void End() { stack_.pop_back(); }

  size_t BeginArray(std::string_view key, size_t /*n*/) {
    const JsonValue* arr = &Cur().At(key);
    stack_.push_back({arr, 0});
    return arr->GetArray().size();
  }
  void BeginElem() {
    Frame& f = stack_.back();
    stack_.push_back({&f.node->GetArray().at(f.index), 0});
  }
  void EndElem() {
    stack_.pop_back();
    ++stack_.back().index;
  }
  void EndArray() { stack_.pop_back(); }

  void I64Vec(std::string_view key, std::vector<int64_t>& v) {
    const auto& items = Cur().At(key).GetArray();
    v.clear();
    v.reserve(items.size());
    for (const JsonValue& item : items) {
      v.push_back(item.GetInt64());
    }
  }

 private:
  struct Frame {
    const JsonValue* node;
    size_t index;
  };

  const JsonValue& Cur() const { return *stack_.back().node; }

  std::vector<Frame> stack_;
};

class Digester {
 public:
  static constexpr bool kLoading = false;

  explicit Digester(StateDigest* d) : d_(d) {}

  void Field(std::string_view key, uint64_t& v) {
    d_->MixStr(key);
    d_->MixU64(v);
  }
  void Field(std::string_view key, int64_t& v) {
    d_->MixStr(key);
    d_->MixI64(v);
  }
  void Field(std::string_view key, int& v) {
    d_->MixStr(key);
    d_->MixI64(v);
  }
  void Field(std::string_view key, bool& v) {
    d_->MixStr(key);
    d_->MixBool(v);
  }
  void Field(std::string_view key, double& v) {
    d_->MixStr(key);
    d_->MixDouble(v);
  }
  void Field(std::string_view key, std::string& v) {
    d_->MixStr(key);
    d_->MixStr(v);
  }

  void Begin(std::string_view key) {
    d_->MixLabel(key);
    d_->MixByte('{');
  }
  void End() { d_->MixByte('}'); }

  size_t BeginArray(std::string_view key, size_t n) {
    d_->MixLabel(key);
    d_->MixByte('[');
    d_->MixU64(n);
    return n;
  }
  void BeginElem() { d_->MixByte('{'); }
  void EndElem() { d_->MixByte('}'); }
  void EndArray() { d_->MixByte(']'); }

  void I64Vec(std::string_view key, std::vector<int64_t>& v) {
    d_->MixLabel(key);
    d_->MixU64(v.size());
    for (const int64_t x : v) {
      d_->MixI64(x);
    }
  }

 private:
  StateDigest* d_;
};

// Archives an RNG's position in its stream (xoshiro state words plus the
// cached Box-Muller spare) under one key. Shared by every engine.
template <typename Ar>
void ArchiveRng(Ar& ar, std::string_view key, Rng& rng) {
  RngState st = rng.SaveState();
  ar.Begin(key);
  ar.Field("s0", st.s[0]);
  ar.Field("s1", st.s[1]);
  ar.Field("s2", st.s[2]);
  ar.Field("s3", st.s[3]);
  ar.Field("spare_bits", st.spare_normal_bits);
  ar.Field("has_spare", st.has_spare_normal);
  ar.End();
  if constexpr (Ar::kLoading) {
    rng.LoadState(st);
  }
}

}  // namespace faascost

#endif  // FAASCOST_INTEGRITY_ARCHIVE_H_
