#include "src/integrity/audit_rules.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace faascost {

namespace {

// Relative tolerance for USD reconciliation. The reference and the audited
// totals are computed by different call sites, so exact bit-equality is only
// guaranteed when summation order matches; a run artifact may also round on
// serialization. One part per billion is far below any real billing delta.
bool UsdClose(Usd a, Usd b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= 1e-9 * scale;
}

std::string UsdPair(Usd got, Usd want) {
  return "got=" + std::to_string(got) + " want=" + std::to_string(want);
}

}  // namespace

Usd RecomputePlatformTotalUsd(const PlatformSimResult& result,
                              const PlatformSimConfig& config,
                              const BillingModel& billing) {
  Usd total = 0.0;
  for (const AttemptOutcome& att : result.attempts) {
    total +=
        ComputeInvoice(billing, BillableRecord(att, config.vcpus, config.mem_mb)).total;
  }
  return total;
}

void AuditPlatformRun(const PlatformSimResult& result, const PlatformSimConfig& config,
                      uint64_t seed, Auditor& auditor, const BillingModel* billing,
                      Usd expected_total_usd) {
  const MicroSecs end = result.timeline.empty() ? 0 : result.timeline.back().time;

  // Failure taxonomy partitions the failed-attempt count (queue timeouts are
  // a sub-category of timeouts, not a sibling).
  const int64_t taxonomy = result.init_failure_attempts + result.crash_attempts +
                           result.timeout_attempts + result.rejected_attempts +
                           result.circuit_open_attempts;
  auditor.Check(taxonomy == result.failed_attempts, "platform.failure_taxonomy", end,
                seed, "counters",
                "taxonomy=" + std::to_string(taxonomy) +
                    " failed=" + std::to_string(result.failed_attempts));
  auditor.Check(result.queue_timeout_attempts <= result.timeout_attempts,
                "platform.failure_taxonomy", end, seed, "counters",
                "queue_timeouts=" + std::to_string(result.queue_timeout_attempts) +
                    " exceed timeouts=" + std::to_string(result.timeout_attempts));

  // Attempt conservation: every attempt beyond the first per request is a
  // retry.
  const int64_t extra = static_cast<int64_t>(result.attempts.size()) -
                        static_cast<int64_t>(result.requests.size());
  auditor.Check(extra == result.retries, "platform.attempt_conservation", end, seed,
                "attempts",
                "attempts=" + std::to_string(result.attempts.size()) +
                    " requests=" + std::to_string(result.requests.size()) +
                    " retries=" + std::to_string(result.retries));

  // Request conservation: every request reached a terminal outcome, and the
  // derived aggregates match a recount.
  int64_t ok = 0;
  for (size_t i = 0; i < result.requests.size(); ++i) {
    const RequestOutcome& r = result.requests[i];
    auditor.Check(r.attempts >= 1, "platform.request_conservation", end, seed,
                  "request " + std::to_string(i),
                  "terminated with attempts=" + std::to_string(r.attempts));
    auditor.Check(
        r.completion >= r.arrival && r.e2e_latency == r.completion - r.arrival,
        "platform.request_conservation", end, seed, "request " + std::to_string(i),
        "arrival=" + std::to_string(r.arrival) +
            " completion=" + std::to_string(r.completion) +
            " e2e=" + std::to_string(r.e2e_latency));
    if (r.outcome == Outcome::kOk) {
      ++ok;
    }
  }
  auditor.Check(ok == result.successes, "platform.request_conservation", end, seed,
                "requests",
                "recounted successes=" + std::to_string(ok) +
                    " recorded=" + std::to_string(result.successes));
  int64_t cold = 0;
  for (const AttemptOutcome& att : result.attempts) {
    if (att.cold_start) {
      ++cold;
    }
  }
  auditor.Check(cold == result.cold_starts, "platform.request_conservation", end, seed,
                "attempts",
                "recounted cold starts=" + std::to_string(cold) +
                    " recorded=" + std::to_string(result.cold_starts));

  // Billed-usec conservation: in the single-concurrency model a sandbox is
  // busy exactly while one attempt executes, so total sandbox busy time must
  // equal total attempt execution time. With concurrent execution the busy
  // wall-clock is a union of overlapping windows, so it can only be smaller.
  MicroSecs busy = 0;
  for (const SandboxAccounting& s : result.sandboxes) {
    auditor.Check(s.busy_time >= 0 && s.idle_time >= 0 && s.init_time >= 0,
                  "platform.sandbox_time_accounting", end, seed,
                  "sandbox " + std::to_string(s.sandbox_id),
                  "init=" + std::to_string(s.init_time) +
                      " busy=" + std::to_string(s.busy_time) +
                      " idle=" + std::to_string(s.idle_time));
    auditor.Check(
        s.init_time + s.busy_time + s.idle_time <= s.destroyed_at - s.created_at,
        "platform.sandbox_time_accounting", end, seed,
        "sandbox " + std::to_string(s.sandbox_id),
        "accounted=" + std::to_string(s.init_time + s.busy_time + s.idle_time) +
            " lifetime=" + std::to_string(s.destroyed_at - s.created_at));
    busy += s.busy_time;
  }
  MicroSecs exec = 0;
  for (const AttemptOutcome& att : result.attempts) {
    auditor.Check(att.exec_duration >= 0, "platform.billed_time_conservation", end,
                  seed, "attempt of request " + std::to_string(att.req_idx),
                  "exec_duration=" + std::to_string(att.exec_duration));
    exec += att.exec_duration;
  }
  const bool multi = config.concurrency == ConcurrencyModel::kMultiConcurrency;
  auditor.Check(multi ? busy <= exec : busy == exec,
                "platform.billed_time_conservation", end, seed, "sandboxes",
                "sandbox busy=" + std::to_string(busy) + " attempt exec=" +
                    std::to_string(exec) + (multi ? " (concurrent: busy <= exec)" : ""));

  // Monotone timeline.
  for (size_t i = 1; i < result.timeline.size(); ++i) {
    auditor.Check(result.timeline[i].time > result.timeline[i - 1].time,
                  "platform.monotone_timeline", end, seed,
                  "sample " + std::to_string(i),
                  std::to_string(result.timeline[i].time) + " after " +
                      std::to_string(result.timeline[i - 1].time));
  }

  // USD reconciliation against the independent billing recomputation.
  if (billing != nullptr) {
    const Usd recomputed = RecomputePlatformTotalUsd(result, config, *billing);
    auditor.Check(UsdClose(expected_total_usd, recomputed),
                  "platform.usd_reconciliation", end, seed, "billing",
                  UsdPair(expected_total_usd, recomputed));
  }
}

void AuditFleetRun(const FleetResult& result, const FleetSimConfig& config,
                   Auditor& auditor) {
  const uint64_t seed = config.fault_seed;
  MicroSecs end = 0;
  for (const SandboxSpan& span : result.spans) {
    end = std::max(end, span.destroyed_at);
  }

  // Failure taxonomy partitions the failed-attempt count.
  const int64_t taxonomy = result.crash_attempts + result.timeout_attempts +
                           result.init_failure_attempts + result.rejected_attempts +
                           result.queue_timeout_attempts + result.circuit_open_attempts;
  auditor.Check(taxonomy == result.failed_attempts, "fleet.failure_taxonomy", end, seed,
                "counters",
                "taxonomy=" + std::to_string(taxonomy) +
                    " failed=" + std::to_string(result.failed_attempts));

  // Attempt and request conservation.
  auditor.Check(result.attempts == result.requests + result.retries,
                "fleet.attempt_conservation", end, seed, "counters",
                "attempts=" + std::to_string(result.attempts) +
                    " requests=" + std::to_string(result.requests) +
                    " retries=" + std::to_string(result.retries));
  auditor.Check(result.successes + result.retries_exhausted == result.requests,
                "fleet.request_conservation", end, seed, "counters",
                "successes=" + std::to_string(result.successes) +
                    " exhausted=" + std::to_string(result.retries_exhausted) +
                    " requests=" + std::to_string(result.requests));
  auditor.Check(static_cast<int64_t>(result.e2e_latency.size()) == result.requests,
                "fleet.request_conservation", end, seed, "e2e_latency",
                std::to_string(result.e2e_latency.size()) + " entries for " +
                    std::to_string(result.requests) + " requests");
  auditor.Check(result.sandboxes == static_cast<int64_t>(result.spans.size()) &&
                    result.cold_starts == result.sandboxes,
                "fleet.capacity_accounting", end, seed, "spans",
                "sandboxes=" + std::to_string(result.sandboxes) +
                    " spans=" + std::to_string(result.spans.size()) +
                    " cold_starts=" + std::to_string(result.cold_starts));

  // Per-span time accounting: a sandbox's lifetime is exactly its busy time
  // (init + execution) plus its idle (keep-alive) time.
  double sandbox_seconds = 0.0, busy_seconds = 0.0, idle_seconds = 0.0;
  Usd hardware = 0.0;
  for (size_t i = 0; i < result.spans.size(); ++i) {
    const SandboxSpan& span = result.spans[i];
    auditor.Check(
        span.busy >= 0 && span.idle >= 0 && span.destroyed_at >= span.created_at,
        "fleet.span_time_accounting", end, seed, "span " + std::to_string(i),
        "busy=" + std::to_string(span.busy) + " idle=" + std::to_string(span.idle) +
            " lifetime=" + std::to_string(span.destroyed_at - span.created_at));
    auditor.Check(span.busy + span.idle == span.destroyed_at - span.created_at,
                  "fleet.span_time_accounting", end, seed, "span " + std::to_string(i),
                  "busy+idle=" + std::to_string(span.busy + span.idle) + " lifetime=" +
                      std::to_string(span.destroyed_at - span.created_at));
    sandbox_seconds += MicrosToSecs(span.destroyed_at - span.created_at);
    busy_seconds += MicrosToSecs(span.busy);
    idle_seconds += MicrosToSecs(span.idle);
    const Usd rate = config.hardware_per_vcpu_second * span.vcpus +
                     config.hardware_per_gb_second * MbToGb(span.mem_mb);
    hardware += rate * MicrosToSecs(span.busy) +
                rate * config.ka_cost_share * MicrosToSecs(span.idle);
  }

  // USD reconciliation: the aggregate cost figures must match an independent
  // recomputation from the per-span records they claim to summarize.
  auditor.Check(UsdClose(result.hardware_cost, hardware), "fleet.usd_reconciliation",
                end, seed, "hardware_cost", UsdPair(result.hardware_cost, hardware));
  auditor.Check(UsdClose(result.sandbox_seconds, sandbox_seconds) &&
                    UsdClose(result.busy_seconds, busy_seconds) &&
                    UsdClose(result.idle_seconds, idle_seconds),
                "fleet.usd_reconciliation", end, seed, "span aggregates",
                "sandbox_s " + UsdPair(result.sandbox_seconds, sandbox_seconds) +
                    "; busy_s " + UsdPair(result.busy_seconds, busy_seconds) +
                    "; idle_s " + UsdPair(result.idle_seconds, idle_seconds));
  auditor.Check(result.fee_revenue <= result.revenue + 1e-9, "fleet.usd_conservation",
                end, seed, "revenue",
                "fees=" + std::to_string(result.fee_revenue) +
                    " total=" + std::to_string(result.revenue));
  if (result.revenue > 0.0) {
    const double margin = (result.revenue - result.hardware_cost) / result.revenue;
    auditor.Check(UsdClose(result.margin, margin), "fleet.usd_reconciliation", end,
                  seed, "margin", UsdPair(result.margin, margin));
  }
}

}  // namespace faascost
