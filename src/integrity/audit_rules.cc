#include "src/integrity/audit_rules.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace faascost {

namespace {

// Relative tolerance for USD reconciliation. The reference and the audited
// totals are computed by different call sites, so exact bit-equality is only
// guaranteed when summation order matches; a run artifact may also round on
// serialization. One part per billion is far below any real billing delta.
bool UsdClose(Usd a, Usd b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= 1e-9 * scale;
}

std::string UsdPair(Usd got, Usd want) {
  return "got=" + std::to_string(got) + " want=" + std::to_string(want);
}

}  // namespace

Usd RecomputePlatformTotalUsd(const PlatformSimResult& result,
                              const PlatformSimConfig& config,
                              const BillingModel& billing) {
  Usd total = 0.0;
  for (const AttemptOutcome& att : result.attempts) {
    total +=
        ComputeInvoice(billing, BillableRecord(att, config.vcpus, config.mem_mb)).total;
  }
  return total;
}

void AuditPlatformRun(const PlatformSimResult& result, const PlatformSimConfig& config,
                      uint64_t seed, Auditor& auditor, const BillingModel* billing,
                      Usd expected_total_usd) {
  const MicroSecs end = result.timeline.empty() ? 0 : result.timeline.back().time;

  // Failure taxonomy partitions the failed-attempt count (queue timeouts are
  // a sub-category of timeouts, not a sibling).
  const int64_t taxonomy = result.init_failure_attempts + result.crash_attempts +
                           result.timeout_attempts + result.rejected_attempts +
                           result.circuit_open_attempts;
  auditor.Check(taxonomy == result.failed_attempts, "platform.failure_taxonomy", end,
                seed, "counters",
                "taxonomy=" + std::to_string(taxonomy) +
                    " failed=" + std::to_string(result.failed_attempts));
  auditor.Check(result.queue_timeout_attempts <= result.timeout_attempts,
                "platform.failure_taxonomy", end, seed, "counters",
                "queue_timeouts=" + std::to_string(result.queue_timeout_attempts) +
                    " exceed timeouts=" + std::to_string(result.timeout_attempts));

  // Attempt conservation: every attempt beyond the first per request is a
  // retry.
  const int64_t extra = static_cast<int64_t>(result.attempts.size()) -
                        static_cast<int64_t>(result.requests.size());
  auditor.Check(extra == result.retries, "platform.attempt_conservation", end, seed,
                "attempts",
                "attempts=" + std::to_string(result.attempts.size()) +
                    " requests=" + std::to_string(result.requests.size()) +
                    " retries=" + std::to_string(result.retries));

  // Request conservation: every request reached a terminal outcome, and the
  // derived aggregates match a recount.
  int64_t ok = 0;
  for (size_t i = 0; i < result.requests.size(); ++i) {
    const RequestOutcome& r = result.requests[i];
    auditor.Check(r.attempts >= 1, "platform.request_conservation", end, seed,
                  "request " + std::to_string(i),
                  "terminated with attempts=" + std::to_string(r.attempts));
    auditor.Check(
        r.completion >= r.arrival && r.e2e_latency == r.completion - r.arrival,
        "platform.request_conservation", end, seed, "request " + std::to_string(i),
        "arrival=" + std::to_string(r.arrival) +
            " completion=" + std::to_string(r.completion) +
            " e2e=" + std::to_string(r.e2e_latency));
    if (r.outcome == Outcome::kOk) {
      ++ok;
    }
  }
  auditor.Check(ok == result.successes, "platform.request_conservation", end, seed,
                "requests",
                "recounted successes=" + std::to_string(ok) +
                    " recorded=" + std::to_string(result.successes));
  int64_t cold = 0;
  for (const AttemptOutcome& att : result.attempts) {
    if (att.cold_start) {
      ++cold;
    }
  }
  auditor.Check(cold == result.cold_starts, "platform.request_conservation", end, seed,
                "attempts",
                "recounted cold starts=" + std::to_string(cold) +
                    " recorded=" + std::to_string(result.cold_starts));

  // Billed-usec conservation: in the single-concurrency model a sandbox is
  // busy exactly while one attempt executes, so total sandbox busy time must
  // equal total attempt execution time. With concurrent execution the busy
  // wall-clock is a union of overlapping windows, so it can only be smaller.
  MicroSecs busy = 0;
  for (const SandboxAccounting& s : result.sandboxes) {
    auditor.Check(s.busy_time >= 0 && s.idle_time >= 0 && s.init_time >= 0,
                  "platform.sandbox_time_accounting", end, seed,
                  "sandbox " + std::to_string(s.sandbox_id),
                  "init=" + std::to_string(s.init_time) +
                      " busy=" + std::to_string(s.busy_time) +
                      " idle=" + std::to_string(s.idle_time));
    auditor.Check(
        s.init_time + s.busy_time + s.idle_time <= s.destroyed_at - s.created_at,
        "platform.sandbox_time_accounting", end, seed,
        "sandbox " + std::to_string(s.sandbox_id),
        "accounted=" + std::to_string(s.init_time + s.busy_time + s.idle_time) +
            " lifetime=" + std::to_string(s.destroyed_at - s.created_at));
    busy += s.busy_time;
  }
  MicroSecs exec = 0;
  for (const AttemptOutcome& att : result.attempts) {
    auditor.Check(att.exec_duration >= 0, "platform.billed_time_conservation", end,
                  seed, "attempt of request " + std::to_string(att.req_idx),
                  "exec_duration=" + std::to_string(att.exec_duration));
    exec += att.exec_duration;
  }
  const bool multi = config.concurrency == ConcurrencyModel::kMultiConcurrency;
  auditor.Check(multi ? busy <= exec : busy == exec,
                "platform.billed_time_conservation", end, seed, "sandboxes",
                "sandbox busy=" + std::to_string(busy) + " attempt exec=" +
                    std::to_string(exec) + (multi ? " (concurrent: busy <= exec)" : ""));

  // Monotone timeline.
  for (size_t i = 1; i < result.timeline.size(); ++i) {
    auditor.Check(result.timeline[i].time > result.timeline[i - 1].time,
                  "platform.monotone_timeline", end, seed,
                  "sample " + std::to_string(i),
                  std::to_string(result.timeline[i].time) + " after " +
                      std::to_string(result.timeline[i - 1].time));
  }

  // USD reconciliation against the independent billing recomputation.
  if (billing != nullptr) {
    const Usd recomputed = RecomputePlatformTotalUsd(result, config, *billing);
    auditor.Check(UsdClose(expected_total_usd, recomputed),
                  "platform.usd_reconciliation", end, seed, "billing",
                  UsdPair(expected_total_usd, recomputed));
  }
}

void AuditFleetRun(const FleetResult& result, const FleetSimConfig& config,
                   Auditor& auditor) {
  const uint64_t seed = config.fault_seed;
  MicroSecs end = 0;
  for (const SandboxSpan& span : result.spans) {
    end = std::max(end, span.destroyed_at);
  }

  // Failure taxonomy partitions the failed-attempt count.
  const int64_t taxonomy = result.crash_attempts + result.timeout_attempts +
                           result.init_failure_attempts + result.rejected_attempts +
                           result.queue_timeout_attempts + result.circuit_open_attempts;
  auditor.Check(taxonomy == result.failed_attempts, "fleet.failure_taxonomy", end, seed,
                "counters",
                "taxonomy=" + std::to_string(taxonomy) +
                    " failed=" + std::to_string(result.failed_attempts));

  // Attempt and request conservation.
  auditor.Check(result.attempts == result.requests + result.retries,
                "fleet.attempt_conservation", end, seed, "counters",
                "attempts=" + std::to_string(result.attempts) +
                    " requests=" + std::to_string(result.requests) +
                    " retries=" + std::to_string(result.retries));
  auditor.Check(result.successes + result.retries_exhausted == result.requests,
                "fleet.request_conservation", end, seed, "counters",
                "successes=" + std::to_string(result.successes) +
                    " exhausted=" + std::to_string(result.retries_exhausted) +
                    " requests=" + std::to_string(result.requests));
  auditor.Check(static_cast<int64_t>(result.e2e_latency.size()) == result.requests,
                "fleet.request_conservation", end, seed, "e2e_latency",
                std::to_string(result.e2e_latency.size()) + " entries for " +
                    std::to_string(result.requests) + " requests");
  auditor.Check(result.sandboxes == static_cast<int64_t>(result.spans.size()) &&
                    result.cold_starts == result.sandboxes,
                "fleet.capacity_accounting", end, seed, "spans",
                "sandboxes=" + std::to_string(result.sandboxes) +
                    " spans=" + std::to_string(result.spans.size()) +
                    " cold_starts=" + std::to_string(result.cold_starts));

  // Per-span time accounting: a sandbox's lifetime is exactly its busy time
  // (init + execution) plus its idle (keep-alive) time.
  double sandbox_seconds = 0.0, busy_seconds = 0.0, idle_seconds = 0.0;
  Usd hardware = 0.0;
  for (size_t i = 0; i < result.spans.size(); ++i) {
    const SandboxSpan& span = result.spans[i];
    auditor.Check(
        span.busy >= 0 && span.idle >= 0 && span.destroyed_at >= span.created_at,
        "fleet.span_time_accounting", end, seed, "span " + std::to_string(i),
        "busy=" + std::to_string(span.busy) + " idle=" + std::to_string(span.idle) +
            " lifetime=" + std::to_string(span.destroyed_at - span.created_at));
    auditor.Check(span.busy + span.idle == span.destroyed_at - span.created_at,
                  "fleet.span_time_accounting", end, seed, "span " + std::to_string(i),
                  "busy+idle=" + std::to_string(span.busy + span.idle) + " lifetime=" +
                      std::to_string(span.destroyed_at - span.created_at));
    sandbox_seconds += MicrosToSecs(span.destroyed_at - span.created_at);
    busy_seconds += MicrosToSecs(span.busy);
    idle_seconds += MicrosToSecs(span.idle);
    const Usd rate = config.hardware_per_vcpu_second * span.vcpus +
                     config.hardware_per_gb_second * MbToGb(span.mem_mb);
    hardware += rate * MicrosToSecs(span.busy) +
                rate * config.ka_cost_share * MicrosToSecs(span.idle);
  }

  // USD reconciliation: the aggregate cost figures must match an independent
  // recomputation from the per-span records they claim to summarize.
  auditor.Check(UsdClose(result.hardware_cost, hardware), "fleet.usd_reconciliation",
                end, seed, "hardware_cost", UsdPair(result.hardware_cost, hardware));
  auditor.Check(UsdClose(result.sandbox_seconds, sandbox_seconds) &&
                    UsdClose(result.busy_seconds, busy_seconds) &&
                    UsdClose(result.idle_seconds, idle_seconds),
                "fleet.usd_reconciliation", end, seed, "span aggregates",
                "sandbox_s " + UsdPair(result.sandbox_seconds, sandbox_seconds) +
                    "; busy_s " + UsdPair(result.busy_seconds, busy_seconds) +
                    "; idle_s " + UsdPair(result.idle_seconds, idle_seconds));
  auditor.Check(result.fee_revenue <= result.revenue + 1e-9, "fleet.usd_conservation",
                end, seed, "revenue",
                "fees=" + std::to_string(result.fee_revenue) +
                    " total=" + std::to_string(result.revenue));
  if (result.revenue > 0.0) {
    const double margin = (result.revenue - result.hardware_cost) / result.revenue;
    auditor.Check(UsdClose(result.margin, margin), "fleet.usd_reconciliation", end,
                  seed, "margin", UsdPair(result.margin, margin));
  }
}

Usd RecomputeWorkflowTotalUsd(const WorkflowSimResult& result,
                              const WorkflowSimConfig& config,
                              const BillingModel& billing) {
  Usd total = 0.0;
  for (const HopAttempt& att : result.attempts) {
    if (!att.platform_dispatched) {
      continue;
    }
    const HopSpec& spec =
        config.dags[static_cast<size_t>(att.dag)].hops[static_cast<size_t>(att.hop)];
    total += ComputeInvoice(billing, BillableRecord(att.attempt, spec.vcpus, spec.mem_mb))
                 .total;
  }
  total += config.pricing.per_state_transition *
           static_cast<double>(result.counters.dispatched_attempts);
  total += (config.pricing.dlq_write_fee + config.pricing.dlq_read_fee) *
           static_cast<double>(result.counters.dead_letters);
  // Network charges walk a stateful tiered meter and cannot be re-derived
  // from attempts alone; the line item is carried over and cross-checked
  // against the per-workflow rows (and, bitwise, against kTransfer spans via
  // ReconcileTransferUsd) in AuditWorkflowRun.
  total += result.usd_network;
  return total;
}

void AuditWorkflowRun(const WorkflowSimResult& result, const WorkflowSimConfig& config,
                      uint64_t seed, Auditor& auditor, const BillingModel& billing) {
  const MicroSecs end = result.makespan;

  // Per-attempt invariants: unbilled-by-construction rows carry exactly $0,
  // billed rows match an independent re-pricing, and timelines are monotone.
  int64_t dispatched = 0, circuit_open = 0, upstream = 0, fail_fast = 0, dead = 0,
          hedge_losers = 0, cold = 0;
  for (size_t i = 0; i < result.attempts.size(); ++i) {
    const HopAttempt& att = result.attempts[i];
    const std::string entity = "attempt " + std::to_string(i);
    const Outcome oc = att.attempt.outcome;
    auditor.Check(att.attempt.end >= att.attempt.dispatched &&
                      att.attempt.exec_duration >= 0 && att.attempt.init_duration >= 0,
                  "workflow.monotone_attempt_time", end, seed, entity,
                  "dispatched=" + std::to_string(att.attempt.dispatched) +
                      " end=" + std::to_string(att.attempt.end));
    const bool never_billed =
        oc == Outcome::kCircuitOpen || oc == Outcome::kUpstreamFailed || att.fail_fast;
    auditor.Check(never_billed == !att.platform_dispatched, "workflow.never_billed",
                  end, seed, entity,
                  std::string("outcome=") + OutcomeName(oc) +
                      " fail_fast=" + std::to_string(att.fail_fast) +
                      " dispatched=" + std::to_string(att.platform_dispatched));
    if (!att.platform_dispatched) {
      auditor.Check(!(std::fabs(att.usd) > 0.0) && att.attempt.exec_duration == 0,
                    "workflow.never_billed", end, seed, entity,
                    "undispatched row carries usd=" + std::to_string(att.usd));
    } else {
      ++dispatched;
      const HopSpec& spec =
          config.dags[static_cast<size_t>(att.dag)].hops[static_cast<size_t>(att.hop)];
      const Usd want =
          ComputeInvoice(billing, BillableRecord(att.attempt, spec.vcpus, spec.mem_mb))
              .total;
      auditor.Check(UsdClose(att.usd, want), "workflow.usd_reconciliation", end, seed,
                    entity, UsdPair(att.usd, want));
    }
    if (oc == Outcome::kCircuitOpen) ++circuit_open;
    if (oc == Outcome::kUpstreamFailed) ++upstream;
    if (oc == Outcome::kDeadLettered) ++dead;
    if (oc == Outcome::kHedgeLoser) ++hedge_losers;
    if (att.fail_fast) ++fail_fast;
    if (att.attempt.cold_start) ++cold;
  }
  auditor.Check(dispatched == result.counters.dispatched_attempts &&
                    circuit_open == result.counters.circuit_open &&
                    upstream == result.counters.upstream_skipped &&
                    fail_fast == result.counters.fail_fast &&
                    dead == result.counters.dead_letters &&
                    hedge_losers == result.counters.hedge_losers &&
                    cold == result.counters.cold_starts,
                "workflow.attempt_conservation", end, seed, "counters",
                "recounted dispatched=" + std::to_string(dispatched) +
                    " circuit_open=" + std::to_string(circuit_open) +
                    " upstream=" + std::to_string(upstream) +
                    " fail_fast=" + std::to_string(fail_fast) +
                    " dead=" + std::to_string(dead) +
                    " hedge_losers=" + std::to_string(hedge_losers) +
                    " cold=" + std::to_string(cold));

  // Workflow-outcome partition and per-workflow USD conservation: every
  // instance terminated, and its USD is exactly the sum of its attempts'
  // invoices plus its transition and DLQ fee shares.
  int64_t ok = 0, failed = 0, degraded = 0;
  std::vector<Usd> wf_usd(result.workflows.size(), 0.0);
  std::vector<int64_t> wf_transitions(result.workflows.size(), 0);
  std::vector<int64_t> wf_dead(result.workflows.size(), 0);
  for (const HopAttempt& att : result.attempts) {
    const size_t w = static_cast<size_t>(att.wf);
    wf_usd[w] += att.usd;
    if (att.platform_dispatched) ++wf_transitions[w];
    if (att.attempt.outcome == Outcome::kDeadLettered) ++wf_dead[w];
  }
  const Usd fee_dlq = config.pricing.dlq_write_fee + config.pricing.dlq_read_fee;
  for (size_t i = 0; i < result.workflows.size(); ++i) {
    const WorkflowRow& row = result.workflows[i];
    auditor.Check(row.end >= row.arrival, "workflow.monotone_attempt_time", end, seed,
                  "wf " + std::to_string(i),
                  "arrival=" + std::to_string(row.arrival) +
                      " end=" + std::to_string(row.end));
    const Usd want = wf_usd[i] +
                     config.pricing.per_state_transition *
                         static_cast<double>(wf_transitions[i]) +
                     fee_dlq * static_cast<double>(wf_dead[i]) + row.usd_network;
    auditor.Check(UsdClose(row.usd, want), "workflow.usd_conservation", end, seed,
                  "wf " + std::to_string(i), UsdPair(row.usd, want));
    if (row.outcome == Outcome::kOk) {
      ++ok;
      if (row.degraded) ++degraded;
    } else {
      ++failed;
    }
  }
  auditor.Check(ok == result.counters.workflows_succeeded &&
                    failed == result.counters.workflows_failed &&
                    degraded == result.counters.degraded_successes &&
                    ok + failed == result.counters.workflows_started,
                "workflow.outcome_partition", end, seed, "counters",
                "recounted ok=" + std::to_string(ok) + " failed=" +
                    std::to_string(failed) + " degraded=" + std::to_string(degraded) +
                    " started=" + std::to_string(result.counters.workflows_started));

  // Run-level USD conservation: the decomposition adds up, the workflow rows
  // add up to the run total, and the total matches an independent billing
  // recomputation (hedge losers and dead letters included).
  Usd attempts_usd = 0.0;
  for (const HopAttempt& att : result.attempts) {
    attempts_usd += att.usd;
  }
  auditor.Check(UsdClose(attempts_usd, result.usd_attempts),
                "workflow.usd_conservation", end, seed, "usd_attempts",
                UsdPair(result.usd_attempts, attempts_usd));
  auditor.Check(UsdClose(result.usd_total, result.usd_attempts + result.usd_transitions +
                                               result.usd_dlq + result.usd_network),
                "workflow.usd_conservation", end, seed, "usd_total",
                UsdPair(result.usd_total, result.usd_attempts + result.usd_transitions +
                                              result.usd_dlq + result.usd_network));
  Usd rows_network = 0.0;
  for (const WorkflowRow& row : result.workflows) {
    rows_network += row.usd_network;
  }
  auditor.Check(UsdClose(rows_network, result.usd_network),
                "workflow.usd_conservation", end, seed, "usd_network",
                UsdPair(rows_network, result.usd_network));
  Usd rows_usd = 0.0;
  for (const WorkflowRow& row : result.workflows) {
    rows_usd += row.usd;
  }
  auditor.Check(UsdClose(rows_usd, result.usd_total), "workflow.usd_conservation", end,
                seed, "workflow rows", UsdPair(rows_usd, result.usd_total));
  auditor.Check(UsdClose(result.usd_useful + result.usd_wasted, result.usd_total),
                "workflow.usd_conservation", end, seed, "waste decomposition",
                UsdPair(result.usd_useful + result.usd_wasted, result.usd_total));
  const Usd recomputed = RecomputeWorkflowTotalUsd(result, config, billing);
  auditor.Check(UsdClose(result.usd_total, recomputed), "workflow.usd_reconciliation",
                end, seed, "billing", UsdPair(result.usd_total, recomputed));
}

}  // namespace faascost
