// End-of-run reconciliation audits over finished simulation results.
//
// The in-run Auditor hooks (src/platform, src/cluster, src/sched) check
// invariants over live engine state; the rules here take the *public* result
// structs, so they can audit any run — fresh, resumed, or deserialized from
// an artifact — and so negative tests can corrupt a field directly and prove
// the corresponding invariant fires. Every violation throws
// IntegrityViolation with the offending entity and a counter-by-counter
// detail string. See DESIGN.md §9 for the invariant catalog.

#ifndef FAASCOST_INTEGRITY_AUDIT_RULES_H_
#define FAASCOST_INTEGRITY_AUDIT_RULES_H_

#include <cstdint>

#include "src/billing/model.h"
#include "src/cluster/fleet_sim.h"
#include "src/common/units.h"
#include "src/integrity/integrity.h"
#include "src/platform/platform_sim.h"
#include "src/workflow/workflow_sim.h"

namespace faascost {

// Independent USD recomputation for a platform run: every attempt billed
// through BillableRecord + ComputeInvoice at the config's allocation. This is
// the reference total that AuditPlatformRun reconciles against.
Usd RecomputePlatformTotalUsd(const PlatformSimResult& result,
                              const PlatformSimConfig& config,
                              const BillingModel& billing);

// Audits a finished PlatformSim run: failure-taxonomy partition, attempt and
// request conservation, busy-time conservation against attempt execution
// durations, sandbox time accounting, monotone timeline, and — when
// `billing` is non-null — reconciliation of `expected_total_usd` (the
// caller's invoiced total, e.g. from a run artifact) against the independent
// recomputation above. Throws IntegrityViolation on the first failure.
void AuditPlatformRun(const PlatformSimResult& result, const PlatformSimConfig& config,
                      uint64_t seed, Auditor& auditor,
                      const BillingModel* billing = nullptr,
                      Usd expected_total_usd = 0.0);

// Audits a finished fleet run: failure-taxonomy partition, attempt/request
// conservation, per-span time accounting, and reconciliation of the
// hardware-cost, span-seconds, and margin aggregates against an independent
// recomputation from the spans. Throws IntegrityViolation on the first
// failure.
void AuditFleetRun(const FleetResult& result, const FleetSimConfig& config,
                   Auditor& auditor);

// Independent USD recomputation for a workflow run: every platform-dispatched
// attempt re-priced through BillableRecord + ComputeInvoice at its hop's
// allocation, plus transition and DLQ fees from the counters. This is the
// reference total AuditWorkflowRun reconciles against.
Usd RecomputeWorkflowTotalUsd(const WorkflowSimResult& result,
                              const WorkflowSimConfig& config,
                              const BillingModel& billing);

// Audits a finished workflow run: USD conservation (workflow USD == sum of
// hop-attempt USD including hedge losers and dead letters, == independent
// billing recomputation), never-billed invariants (kCircuitOpen /
// kUpstreamFailed / fail-fast rows carry exactly $0), workflow-outcome
// partition, attempt-counter conservation, and monotone per-attempt times.
// Throws IntegrityViolation on the first failure.
void AuditWorkflowRun(const WorkflowSimResult& result, const WorkflowSimConfig& config,
                      uint64_t seed, Auditor& auditor, const BillingModel& billing);

}  // namespace faascost

#endif  // FAASCOST_INTEGRITY_AUDIT_RULES_H_
