#include "src/integrity/checkpoint.h"

#include "src/common/fileio.h"

namespace faascost {

void WriteCheckpoint(const std::string& path, const CheckpointHeader& header,
                     const std::function<void(JsonWriter&)>& write_state) {
  JsonWriter w;
  w.BeginObject();
  w.KV("magic", kCheckpointMagic);
  w.KV("version", kCheckpointVersion);
  w.KV("sim", std::string_view(header.sim));
  w.KV("seed", header.seed);
  w.KV("config_hash", header.config_hash);
  w.KV("input_digest", header.input_digest);
  w.KV("sim_time_us", header.sim_time_us);
  w.KV("state_digest", header.state_digest);
  w.Key("state");
  write_state(w);
  w.EndObject();
  if (!w.balanced()) {
    throw CheckpointError("checkpoint state writer left unbalanced JSON for '" +
                          path + "'");
  }
  WriteFileAtomic(path, w.str());
}

LoadedCheckpoint LoadCheckpoint(const std::string& path) {
  std::string text;
  try {
    text = ReadFileToString(path);
  } catch (const std::runtime_error& e) {
    throw CheckpointError(std::string("cannot read checkpoint: ") + e.what());
  }

  LoadedCheckpoint out;
  try {
    out.doc = ParseJson(text);
    const JsonValue& doc = out.doc;
    if (doc.At("magic").GetString() != kCheckpointMagic) {
      throw CheckpointError("'" + path + "' is not a faascost checkpoint");
    }
    const int64_t version = doc.At("version").GetInt64();
    if (version != kCheckpointVersion) {
      throw CheckpointError("checkpoint '" + path + "' has version " +
                            std::to_string(version) + ", this build reads " +
                            std::to_string(kCheckpointVersion));
    }
    out.header.sim = doc.At("sim").GetString();
    out.header.seed = doc.At("seed").GetUint64();
    out.header.config_hash = doc.At("config_hash").GetUint64();
    out.header.input_digest = doc.At("input_digest").GetUint64();
    out.header.sim_time_us = doc.At("sim_time_us").GetInt64();
    out.header.state_digest = doc.At("state_digest").GetUint64();
    // Validate the state blob exists up front rather than at first field read.
    (void)doc.At("state");
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    throw CheckpointError("malformed checkpoint '" + path + "': " + e.what());
  }
  return out;
}

}  // namespace faascost
