// Versioned, deterministic checkpoint files.
//
// A checkpoint is one JSON document written through the deterministic
// JsonWriter (compact, byte-stable) and the crash-safe WriteFileAtomic path:
//
//   {
//     "magic": "faascost-checkpoint",
//     "version": 1,
//     "sim": "platform" | "fleet",
//     "seed": <u64>,
//     "config_hash": <u64>,     // digest of the full sim config
//     "input_digest": <u64>,    // digest of external input (trace); 0 if none
//     "sim_time_us": <i64>,     // event time the state was captured at
//     "state_digest": <u64>,    // canonical digest of the "state" blob
//     "state": { ... }          // engine state via the Archive walker
//   }
//
// Loading validates magic and version here; the engine validates sim kind,
// config_hash, input_digest, and recomputes state_digest after restore so a
// corrupted or mismatched checkpoint fails closed. All failures throw
// CheckpointError (distinct from IntegrityViolation: a bad file is an input
// problem, not a simulator bug).

#ifndef FAASCOST_INTEGRITY_CHECKPOINT_H_
#define FAASCOST_INTEGRITY_CHECKPOINT_H_

#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "src/common/json_reader.h"
#include "src/common/json_writer.h"
#include "src/common/units.h"

namespace faascost {

inline constexpr std::string_view kCheckpointMagic = "faascost-checkpoint";
inline constexpr int64_t kCheckpointVersion = 1;

class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CheckpointHeader {
  std::string sim;
  uint64_t seed = 0;
  uint64_t config_hash = 0;
  uint64_t input_digest = 0;
  MicroSecs sim_time_us = 0;
  uint64_t state_digest = 0;
};

// Serializes header + state into `path` atomically. `write_state` receives a
// writer positioned at the "state" value and must emit exactly one JSON
// value (normally an object built through Saver).
void WriteCheckpoint(const std::string& path, const CheckpointHeader& header,
                     const std::function<void(JsonWriter&)>& write_state);

struct LoadedCheckpoint {
  CheckpointHeader header;
  JsonValue doc;

  // The engine-state blob ("state" member).
  const JsonValue& state() const { return doc.At("state"); }
};

// Reads and structurally validates a checkpoint (magic, version, header
// fields present and well-typed). Throws CheckpointError on I/O errors,
// malformed JSON, or header mismatch.
LoadedCheckpoint LoadCheckpoint(const std::string& path);

}  // namespace faascost

#endif  // FAASCOST_INTEGRITY_CHECKPOINT_H_
