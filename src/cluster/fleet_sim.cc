#include "src/cluster/fleet_sim.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "src/common/rng.h"

namespace faascost {

namespace {

// A function's live sandbox (single-concurrency: busy until available_at).
struct LiveSandbox {
  MicroSecs available_at = 0;
  size_t span_index = 0;
  bool dead = false;  // Destroyed by a crash; no reuse, no KA linger.
};

// One dispatch (initial or retry) waiting to be processed. Ordering by
// (arrival, seq) with seq = trace index for initial attempts reproduces the
// fault-free per-record iteration order exactly.
struct PendingAttempt {
  MicroSecs arrival = 0;
  int64_t seq = 0;
  size_t trace_idx = 0;
  int attempt = 1;

  bool operator>(const PendingAttempt& other) const {
    if (arrival != other.arrival) {
      return arrival > other.arrival;
    }
    return seq > other.seq;
  }
};

Usd SpanRate(const SandboxSpan& span, const FleetSimConfig& cfg) {
  return cfg.hardware_per_vcpu_second * span.vcpus +
         cfg.hardware_per_gb_second * MbToGb(span.mem_mb);
}

RequestRecord Billed(const RequestRecord& r, bool cold, const FleetSimConfig& cfg) {
  RequestRecord out = r;
  out.cold_start = cold;
  out.init_duration = cold ? cfg.init_duration : 0;
  return out;
}

}  // namespace

std::vector<std::string> FleetSimConfig::Validate() const {
  std::vector<std::string> errors;
  if (keepalive < 0) {
    errors.push_back("keepalive must be >= 0, got " + std::to_string(keepalive));
  }
  if (init_duration < 0) {
    errors.push_back("init_duration must be >= 0, got " + std::to_string(init_duration));
  }
  if (ka_cost_share < 0.0 || ka_cost_share > 1.0) {
    errors.push_back("ka_cost_share must be in [0, 1], got " +
                     std::to_string(ka_cost_share));
  }
  if (hardware_per_vcpu_second < 0.0 || hardware_per_gb_second < 0.0) {
    errors.push_back("hardware rates must be >= 0");
  }
  if (failure_rate < 0.0 || failure_rate > 1.0) {
    errors.push_back("failure_rate must be in [0, 1], got " +
                     std::to_string(failure_rate));
  }
  if (max_exec_duration < 0) {
    errors.push_back("max_exec_duration must be >= 0 (0 disables), got " +
                     std::to_string(max_exec_duration));
  }
  for (const std::string& e : retry.Validate()) {
    errors.push_back("retry: " + e);
  }
  return errors;
}

FleetResult SimulateFleet(const std::vector<RequestRecord>& trace,
                          const BillingModel& billing, const FleetSimConfig& config) {
  {
    const std::vector<std::string> errors = config.Validate();
    if (!errors.empty()) {
      std::string msg = "invalid FleetSimConfig";
      for (const auto& e : errors) {
        msg += "; " + e;
      }
      throw std::invalid_argument(msg);
    }
  }
  FleetResult result;
  result.requests = static_cast<int64_t>(trace.size());
  // The fault stream is separate from everything else and only drawn from
  // when a failure can actually fire, so a zero-fault config reproduces the
  // fault-oblivious simulation exactly.
  Rng fault_rng(config.fault_seed ^ 0x9e3779b97f4a7c15ULL);

  std::priority_queue<PendingAttempt, std::vector<PendingAttempt>,
                      std::greater<PendingAttempt>>
      pending;
  for (size_t i = 0; i < trace.size(); ++i) {
    assert(trace[i].exec_duration >= 0);
    pending.push({trace[i].arrival, static_cast<int64_t>(i), i, 1});
  }
  int64_t next_seq = static_cast<int64_t>(trace.size());

  // Per-function sandbox pools, fed in global (arrival, seq) order.
  std::unordered_map<int64_t, std::vector<LiveSandbox>> pools;
  while (!pending.empty()) {
    const PendingAttempt at = pending.top();
    pending.pop();
    const RequestRecord& r = trace[at.trace_idx];
    ++result.attempts;

    // Sample this attempt's fate. Crashes abort at a uniform point of the
    // execution; anything running past the platform timeout is cut there.
    double p = config.failure_rate;
    if (config.use_trace_failure_rates && r.failure_rate > 0.0) {
      p = r.failure_rate;
    }
    Outcome oc = Outcome::kOk;
    MicroSecs effective = r.exec_duration;
    if (p > 0.0 && fault_rng.Bernoulli(p)) {
      oc = Outcome::kCrash;
      effective = std::max<MicroSecs>(
          1, static_cast<MicroSecs>(static_cast<double>(r.exec_duration) *
                                    (1.0 - fault_rng.NextDouble())));
    }
    if (config.max_exec_duration > 0 && effective > config.max_exec_duration) {
      oc = Outcome::kTimeout;
      effective = config.max_exec_duration;
    }

    auto& pool = pools[r.function_id];
    // Reuse the most recently freed sandbox that is idle and unexpired.
    LiveSandbox* reuse = nullptr;
    for (auto& sb : pool) {
      if (!sb.dead && sb.available_at <= at.arrival &&
          at.arrival - sb.available_at <= config.keepalive) {
        if (reuse == nullptr || sb.available_at > reuse->available_at) {
          reuse = &sb;
        }
      }
    }
    bool cold = false;
    MicroSecs end = 0;
    if (reuse != nullptr) {
      SandboxSpan& span = result.spans[reuse->span_index];
      span.idle += at.arrival - reuse->available_at;
      span.busy += effective;
      ++span.requests;
      end = at.arrival + effective;
      reuse->available_at = end;
      if (oc == Outcome::kCrash) {
        // Process death: the sandbox dies with the request, no KA linger.
        reuse->dead = true;
        span.destroyed_at = end;
      }
    } else {
      cold = true;
      SandboxSpan span;
      span.function_id = r.function_id;
      span.vcpus = r.alloc_vcpus;
      span.mem_mb = r.alloc_mem_mb;
      span.created_at = at.arrival;
      span.busy = config.init_duration + effective;
      span.requests = 1;
      end = at.arrival + config.init_duration + effective;
      LiveSandbox sb;
      sb.available_at = end;
      sb.span_index = result.spans.size();
      if (oc == Outcome::kCrash) {
        sb.dead = true;
        span.destroyed_at = end;
      }
      result.spans.push_back(span);
      pool.push_back(sb);
      ++result.cold_starts;
    }

    // Bill the attempt under the platform's failure rules.
    RequestRecord billed = Billed(r, cold, config);
    billed.outcome = oc;
    billed.attempt = at.attempt;
    if (oc != Outcome::kOk) {
      billed.exec_duration = effective;
      billed.cpu_time = r.exec_duration > 0
                            ? static_cast<MicroSecs>(
                                  static_cast<double>(r.cpu_time) *
                                  static_cast<double>(effective) /
                                  static_cast<double>(r.exec_duration))
                            : r.cpu_time;
    }
    const Invoice inv = ComputeInvoice(billing, billed);
    result.revenue += inv.total;
    result.fee_revenue += inv.invocation_cost;

    if (oc != Outcome::kOk) {
      ++result.failed_attempts;
      if (oc == Outcome::kCrash) {
        ++result.crash_attempts;
      } else {
        ++result.timeout_attempts;
      }
      if (at.attempt < config.retry.max_attempts) {
        const MicroSecs delay = config.retry.BackoffDelay(at.attempt, fault_rng);
        pending.push({end + delay, next_seq++, at.trace_idx, at.attempt + 1});
        ++result.retries;
      } else {
        ++result.retries_exhausted;
      }
    }
  }

  // Close every surviving sandbox: it lingers one keep-alive window past its
  // last use (crashed sandboxes were destroyed on the spot).
  for (auto& [fid, pool] : pools) {
    for (const auto& sb : pool) {
      if (sb.dead) {
        continue;
      }
      SandboxSpan& span = result.spans[sb.span_index];
      span.idle += config.keepalive;
      span.destroyed_at = sb.available_at + config.keepalive;
    }
  }

  result.sandboxes = static_cast<int64_t>(result.spans.size());
  for (const auto& span : result.spans) {
    result.sandbox_seconds += MicrosToSecs(span.destroyed_at - span.created_at);
    result.busy_seconds += MicrosToSecs(span.busy);
    result.idle_seconds += MicrosToSecs(span.idle);
    const Usd rate = SpanRate(span, config);
    result.hardware_cost += rate * MicrosToSecs(span.busy) +
                            rate * config.ka_cost_share * MicrosToSecs(span.idle);
  }
  if (result.revenue > 0.0) {
    result.margin = (result.revenue - result.hardware_cost) / result.revenue;
  }

  // Pack the sandbox spans onto servers to find the fleet high-water mark.
  struct Event {
    MicroSecs time;
    bool create;
    size_t span;
  };
  std::vector<Event> events;
  events.reserve(result.spans.size() * 2);
  for (size_t i = 0; i < result.spans.size(); ++i) {
    events.push_back({result.spans[i].created_at, true, i});
    events.push_back({result.spans[i].destroyed_at, false, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.create < b.create;  // Process destroys before creates at ties.
  });
  ClusterPlacer placer(config.server, config.placement);
  std::vector<Placement> tickets(result.spans.size());
  for (const auto& ev : events) {
    const SandboxSpan& span = result.spans[ev.span];
    if (ev.create) {
      tickets[ev.span] = placer.Place({span.vcpus, span.mem_mb});
      result.peak_servers = std::max(result.peak_servers, placer.active_server_count());
    } else {
      placer.Release(tickets[ev.span]);
    }
  }
  return result;
}

std::vector<EconomicsBucket> BucketEconomics(const FleetResult& result,
                                             const std::vector<RequestRecord>& trace,
                                             const BillingModel& billing,
                                             const FleetSimConfig& config, int buckets) {
  assert(buckets > 0);
  struct FnAgg {
    int64_t requests = 0;
    Usd revenue = 0.0;
    Usd cost = 0.0;
    int64_t cold = 0;
  };
  std::unordered_map<int64_t, FnAgg> per_fn;

  // Cost and cold starts from the spans.
  for (const auto& span : result.spans) {
    FnAgg& agg = per_fn[span.function_id];
    const Usd rate = SpanRate(span, config);
    agg.cost += rate * MicrosToSecs(span.busy) +
                rate * config.ka_cost_share * MicrosToSecs(span.idle);
    ++agg.cold;
  }
  // Revenue approximated per request with warm billing plus the per-span
  // cold-start surcharge (exact enough for bucketing).
  for (const auto& r : trace) {
    FnAgg& agg = per_fn[r.function_id];
    ++agg.requests;
    RequestRecord warm = r;
    warm.cold_start = false;
    warm.init_duration = 0;
    agg.revenue += ComputeInvoice(billing, warm).total;
  }
  if (billing.billable_time == BillableTime::kTurnaround) {
    for (const auto& span : result.spans) {
      FnAgg& agg = per_fn[span.function_id];
      // The init duration billed at the sandbox's allocation rate.
      RequestRecord init_only;
      init_only.exec_duration = 0;
      init_only.cpu_time = 0;
      init_only.init_duration = config.init_duration;
      init_only.cold_start = true;
      init_only.alloc_vcpus = span.vcpus;
      init_only.alloc_mem_mb = span.mem_mb;
      agg.revenue += ComputeInvoice(billing, init_only).resource_cost;
    }
  }

  std::vector<std::pair<int64_t, FnAgg>> sorted(per_fn.begin(), per_fn.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.requests > b.second.requests;
  });

  std::vector<EconomicsBucket> out(static_cast<size_t>(buckets));
  for (size_t i = 0; i < sorted.size(); ++i) {
    const size_t b = i * static_cast<size_t>(buckets) / sorted.size();
    EconomicsBucket& bucket = out[b];
    ++bucket.functions;
    bucket.requests += sorted[i].second.requests;
    bucket.revenue += sorted[i].second.revenue;
    bucket.hardware_cost += sorted[i].second.cost;
    bucket.cold_start_rate += static_cast<double>(sorted[i].second.cold);
  }
  for (auto& bucket : out) {
    if (bucket.requests > 0) {
      bucket.cold_start_rate /= static_cast<double>(bucket.requests);
    }
  }
  return out;
}

}  // namespace faascost
