#include "src/cluster/fleet_sim.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/common/rng.h"
#include "src/integrity/archive.h"
#include "src/integrity/digest.h"

namespace faascost {

namespace {

// A function's live sandbox (single-concurrency: busy until available_at).
struct LiveSandbox {
  MicroSecs available_at = 0;
  size_t span_index = 0;
  bool dead = false;  // Destroyed by a crash or host loss; no reuse, no KA linger.
  int host = -1;      // Fault domain (only set when host faults are enabled).
};

// One dispatch (initial or retry) waiting to be processed. Ordering by
// (arrival, seq) with seq = trace index for initial attempts reproduces the
// fault-free per-record iteration order exactly. An attempt parked in an
// admission queue keeps its `ticket` as the re-queue seq so queue order stays
// FIFO across wake-ups.
struct PendingAttempt {
  MicroSecs arrival = 0;
  int64_t seq = 0;
  size_t trace_idx = 0;
  int attempt = 1;
  bool queued = false;  // Waiting in a function's admission queue.
  MicroSecs queued_since = 0;
  int64_t ticket = -1;

  bool operator>(const PendingAttempt& other) const {
    if (arrival != other.arrival) {
      return arrival > other.arrival;
    }
    return seq > other.seq;
  }
};

// priority_queue with the protected underlying container exposed: checkpoints
// serialize the heap array verbatim, so a restored queue pops in exactly the
// original order, tie-breaking included.
struct AttemptQueue : std::priority_queue<PendingAttempt, std::vector<PendingAttempt>,
                                          std::greater<PendingAttempt>> {
  std::vector<PendingAttempt>& raw() { return c; }
  const std::vector<PendingAttempt>& raw() const { return c; }
};

struct MetricIds {
  int attempts = 0, failures = 0, cold = 0, retries = 0;
  int queue_waiting = 0, revenue = 0, fees = 0;
};

Usd SpanRate(const SandboxSpan& span, const FleetSimConfig& cfg) {
  return cfg.hardware_per_vcpu_second * span.vcpus +
         cfg.hardware_per_gb_second * MbToGb(span.mem_mb);
}

RequestRecord Billed(const RequestRecord& r, bool cold, const FleetSimConfig& cfg) {
  RequestRecord out = r;
  out.cold_start = cold;
  out.init_duration = cold ? cfg.init_duration : 0;
  return out;
}

uint64_t HashFleetConfig(const FleetSimConfig& c) {
  StateDigest d;
  d.MixLabel("fleet-config-v1");
  d.MixI64(c.keepalive);
  d.MixI64(c.init_duration);
  d.MixDouble(c.ka_cost_share);
  d.MixDouble(c.server.vcpus);
  d.MixDouble(c.server.mem_mb);
  d.MixI64(static_cast<int64_t>(c.placement));
  d.MixDouble(c.hardware_per_vcpu_second);
  d.MixDouble(c.hardware_per_gb_second);
  d.MixDouble(c.failure_rate);
  d.MixBool(c.use_trace_failure_rates);
  d.MixI64(c.max_exec_duration);
  d.MixI64(c.retry.max_attempts);
  d.MixI64(c.retry.backoff_base);
  d.MixDouble(c.retry.backoff_multiplier);
  d.MixI64(c.retry.backoff_cap);
  d.MixBool(c.retry.full_jitter);
  d.MixI64(c.retry.attempt_timeout);
  d.MixBool(c.retry.retry_rejected);
  d.MixI64(c.retry.breaker_threshold);
  d.MixI64(c.retry.breaker_cooldown);
  d.MixU64(c.fault_seed);
  d.MixI64(c.host_faults.hosts);
  d.MixDouble(c.host_faults.mtbf_seconds);
  d.MixDouble(c.host_faults.mttr_seconds);
  d.MixI64(c.host_faults.zones);
  d.MixDouble(c.host_faults.zone_outage_mtbf_seconds);
  d.MixDouble(c.host_faults.graceful_fraction);
  d.MixI64(c.host_faults.drain_deadline);
  d.MixI64(c.max_sandboxes_per_function);
  d.MixBool(c.admission.enabled);
  d.MixI64(c.admission.queue_depth);
  d.MixI64(c.admission.queue_timeout);
  d.MixI64(static_cast<int64_t>(c.admission.shed));
  return d.value();
}

}  // namespace

std::vector<std::string> FleetSimConfig::Validate() const {
  std::vector<std::string> errors;
  if (keepalive < 0) {
    errors.push_back("keepalive must be >= 0, got " + std::to_string(keepalive));
  }
  if (init_duration < 0) {
    errors.push_back("init_duration must be >= 0, got " + std::to_string(init_duration));
  }
  if (ka_cost_share < 0.0 || ka_cost_share > 1.0) {
    errors.push_back("ka_cost_share must be in [0, 1], got " +
                     std::to_string(ka_cost_share));
  }
  if (hardware_per_vcpu_second < 0.0 || hardware_per_gb_second < 0.0) {
    errors.push_back("hardware rates must be >= 0");
  }
  if (failure_rate < 0.0 || failure_rate > 1.0) {
    errors.push_back("failure_rate must be in [0, 1], got " +
                     std::to_string(failure_rate));
  }
  if (max_exec_duration < 0) {
    errors.push_back("max_exec_duration must be >= 0 (0 disables), got " +
                     std::to_string(max_exec_duration));
  }
  for (const std::string& e : retry.Validate()) {
    errors.push_back("retry: " + e);
  }
  for (const std::string& e : host_faults.Validate()) {
    errors.push_back("host_faults: " + e);
  }
  for (const std::string& e : admission.Validate()) {
    errors.push_back("admission: " + e);
  }
  if (max_sandboxes_per_function < 0) {
    errors.push_back("max_sandboxes_per_function must be >= 0 (0 = unbounded), got " +
                     std::to_string(max_sandboxes_per_function));
  }
  if (admission.enabled && max_sandboxes_per_function <= 0) {
    errors.push_back(
        "admission control needs max_sandboxes_per_function > 0: with an "
        "unbounded sandbox pool there is no capacity limit to queue against");
  }
  if (metrics != nullptr && metrics_interval <= 0) {
    errors.push_back("metrics_interval must be > 0 when a metrics registry is attached");
  }
  return errors;
}

struct FleetEngine::Impl {
  FleetSimConfig config;
  const std::vector<RequestRecord>* trace = nullptr;
  // Copied, not pointed to: billing models are small value structs and
  // callers routinely pass `MakeBillingModel(...)` temporaries that would
  // dangle by the time StepOne() invoices an attempt.
  BillingModel billing;

  FleetResult result;
  // The fault stream is separate from everything else and only drawn from
  // when a failure can actually fire, so a zero-fault config reproduces the
  // fault-oblivious simulation exactly. Stream 0 is the legacy
  // `seed ^ gamma` derivation, keeping pre-chaos goldens bit-identical.
  Rng fault_rng;
  HostFaultModel host_faults;
  bool hosts_on = false;
  MicroSecs drain = 0;
  bool breaker_on = false;
  int cap = 0;

  AttemptQueue pending;
  int64_t next_seq = 0;
  // Per-function sandbox pools, fed in global (arrival, seq) order.
  std::unordered_map<int64_t, std::vector<LiveSandbox>> pools;
  // Per-function admission queue occupancy and client circuit breakers.
  std::unordered_map<int64_t, int> queue_waiting;
  std::unordered_map<int64_t, CircuitBreaker> breakers;

  // --- Observability and integrity hooks (no-ops when null) ---
  TraceSink* sink = nullptr;
  MetricsRegistry* metrics = nullptr;
  TimeSeries* ts = nullptr;
  EngineProfiler* prof = nullptr;
  Auditor* auditor = nullptr;
  NetworkModel* net = nullptr;
  MetricIds mid;
  MicroSecs next_sample = 0;
  int64_t waiting_now = 0;  // Attempts currently parked in admission queues.

  MicroSecs now = 0;  // Arrival time of the last processed attempt.
  int64_t attempts_processed = 0;
  bool started = false;
  bool finished = false;

  explicit Impl(FleetSimConfig cfg)
      : config(std::move(cfg)),
        fault_rng(DeriveSeed(config.fault_seed, kFaultStream)),
        host_faults(config.host_faults, config.fault_seed),
        hosts_on(config.host_faults.enabled()),
        drain(config.host_faults.drain_deadline),
        breaker_on(config.retry.breaker_threshold > 0),
        cap(config.max_sandboxes_per_function),
        sink(config.trace_sink),
        metrics(config.metrics),
        ts(config.timeseries),
        prof(config.profiler),
        auditor(config.auditor),
        net(config.network) {
    if (prof != nullptr) {
      prof->RegisterEventType(0, "attempt");
    }
    if (metrics != nullptr) {
      using K = MetricsRegistry::Kind;
      mid.attempts = metrics->Define(K::kGauge, "fleet.attempts_total");
      mid.failures = metrics->Define(K::kGauge, "fleet.failed_attempts_total");
      mid.cold = metrics->Define(K::kGauge, "fleet.cold_starts_total");
      mid.retries = metrics->Define(K::kGauge, "fleet.retries_total");
      mid.queue_waiting = metrics->Define(K::kGauge, "fleet.queue_waiting");
      mid.revenue = metrics->Define(K::kGauge, "fleet.revenue_usd");
      mid.fees = metrics->Define(K::kGauge, "fleet.fee_revenue_usd");
    }
  }

  CircuitBreaker& BreakerFor(int64_t fid) {
    return breakers
        .try_emplace(fid, config.retry.breaker_threshold, config.retry.breaker_cooldown)
        .first->second;
  }

  // Rows snapshot the running totals on every cadence boundary up to `t`.
  void SampleMetricsUntil(MicroSecs t) {
    if (metrics == nullptr) {
      return;
    }
    while (t >= next_sample) {
      metrics->Set(mid.attempts, static_cast<double>(result.attempts));
      metrics->Set(mid.failures, static_cast<double>(result.failed_attempts));
      metrics->Set(mid.cold, static_cast<double>(result.cold_starts));
      metrics->Set(mid.retries, static_cast<double>(result.retries));
      metrics->Set(mid.queue_waiting, static_cast<double>(waiting_now));
      metrics->Set(mid.revenue, result.revenue);
      metrics->Set(mid.fees, result.fee_revenue);
      metrics->Sample(next_sample);
      next_sample += config.metrics_interval;
    }
  }

  // One metered hop of an attempt's payload: fold into the result, the
  // series, and the sink — same marginal value, same end timestamp, same
  // order on every side, so ReconcileTransferUsd compares bitwise.
  void MeterCharge(const TransferCharge& c, MicroSecs start,
                   const PendingAttempt& at, int64_t fid) {
    ++result.net_transfers;
    result.net_bytes += c.bytes;
    result.network_transfer_usd += c.usd;
    const MicroSecs end = start + c.time;
    if (ts != nullptr) {
      ts->RecordTransfer(end, c.bytes, c.usd);
    }
    if (sink != nullptr) {
      Span sp;
      sp.kind = SpanKind::kTransfer;
      sp.group = kTrackGroupFleetFunction;
      sp.track = fid;
      sp.start = start;
      sp.duration = c.time;
      sp.req_idx = static_cast<int32_t>(at.trace_idx);
      sp.attempt = at.attempt;
      sp.ref = c.bytes;
      sp.status = c.rerouted ? "rerouted" : "";
      sp.billed_usd = c.usd;
      sink->Record(sp);
    }
  }

  // The client's terminal resolution of a request, success or surrender.
  void ResolveTerminal(const PendingAttempt& at, MicroSecs when, bool ok) {
    result.e2e_latency[at.trace_idx] = when - (*trace)[at.trace_idx].arrival;
    if (ok) {
      ++result.successes;
    }
    if (ts != nullptr) {
      ts->RecordCompletion(when, ok, when - (*trace)[at.trace_idx].arrival);
    }
  }

  // A failed attempt: schedule the retry, or resolve the request if the
  // outcome is not retryable / the budget is spent.
  void HandleFailure(const PendingAttempt& at, MicroSecs end, bool retryable) {
    if (retryable && at.attempt < config.retry.max_attempts) {
      const MicroSecs delay = config.retry.BackoffDelay(at.attempt, fault_rng);
      if (sink != nullptr) {
        Span sp;
        sp.kind = SpanKind::kBackoff;
        sp.group = kTrackGroupFleetFunction;
        sp.track = (*trace)[at.trace_idx].function_id;
        sp.start = end;
        sp.duration = delay;
        sp.req_idx = static_cast<int32_t>(at.trace_idx);
        sp.attempt = at.attempt;
        sink->Record(sp);
      }
      pending.push({end + delay, next_seq++, at.trace_idx, at.attempt + 1});
      ++result.retries;
      if (ts != nullptr) {
        ts->RecordRetry(end);
      }
    } else {
      ++result.retries_exhausted;
      ResolveTerminal(at, end, false);
    }
  }

  // Bill an attempt that never reached a sandbox (shed, queue timeout,
  // breaker fast-fail): no resources ran, only per-invocation fee rules can
  // apply. kCircuitOpen is $0 by construction.
  void BillUnexecuted(const PendingAttempt& at, Outcome oc, MicroSecs end) {
    RequestRecord billed = (*trace)[at.trace_idx];
    billed.cold_start = false;
    billed.init_duration = 0;
    billed.exec_duration = 0;
    billed.cpu_time = 0;
    billed.outcome = oc;
    billed.attempt = at.attempt;
    const Invoice inv = ComputeInvoice(billing, billed);
    result.revenue += inv.total;
    result.fee_revenue += inv.invocation_cost;
    // Billed recording is co-located with the terminal span's pricing (same
    // value, same end time, same order) so ReconcileBilledUsd is bitwise.
    if (ts != nullptr) {
      ts->RecordBilled(end, inv.total);
      ts->RecordWaste(end, WasteKind::kFailedAttempt, inv.total);
    }
    if (sink != nullptr) {
      Span sp;
      sp.kind = SpanKind::kQueueWait;
      sp.group = kTrackGroupFleetFunction;
      sp.track = (*trace)[at.trace_idx].function_id;
      sp.start = at.queued ? at.queued_since : at.arrival;
      sp.duration = end - sp.start;
      sp.req_idx = static_cast<int32_t>(at.trace_idx);
      sp.attempt = at.attempt;
      sp.status = OutcomeName(oc);
      sp.terminal = true;
      sp.billed_micros = inv.billable_time;
      sp.billed_usd = inv.total;
      sink->Record(sp);
    }
  }

  // O(state) invariant scan (AuditLevel::kFull, cadence-gated over processed
  // attempts). See DESIGN.md §9 for the invariant catalog.
  void AuditScan() {
    if (auditor == nullptr) {
      return;
    }
    auditor->NoteScan();
    // Request conservation: every request is resolved (success or exhausted)
    // or has exactly one live attempt chain in the pending queue.
    auditor->CheckLazy(
        static_cast<int64_t>(pending.size()) ==
            result.requests - result.successes - result.retries_exhausted,
        "fleet.request_conservation", now, config.fault_seed,
        [] { return "pending"; },
        [&] {
          return "pending=" + std::to_string(pending.size()) + " requests=" +
                 std::to_string(result.requests) + " successes=" +
                 std::to_string(result.successes) + " exhausted=" +
                 std::to_string(result.retries_exhausted);
        });
    // Admission-queue accounting: the global waiting counter, the sum of
    // per-function occupancies, and the queued flags in the pending heap all
    // agree.
    int64_t per_fn = 0;
    for (const auto& [fid, n] : queue_waiting) {
      auditor->CheckLazy(n >= 0, "fleet.queue_occupancy_nonnegative", now,
                         config.fault_seed,
                         [&] { return "function " + std::to_string(fid); },
                         [&] { return std::to_string(n); });
      per_fn += n;
    }
    int64_t flagged = 0;
    for (const PendingAttempt& at : pending.raw()) {
      if (at.queued) {
        ++flagged;
      }
    }
    auditor->CheckLazy(per_fn == waiting_now && flagged == waiting_now,
                       "fleet.queue_accounting", now, config.fault_seed,
                       [] { return "admission queues"; },
                       [&] {
                         return "per_fn=" + std::to_string(per_fn) + " flagged=" +
                                std::to_string(flagged) + " counter=" +
                                std::to_string(waiting_now);
                       });
    // Capacity accounting: one sandbox span per cold start, ever.
    auditor->CheckLazy(
        result.cold_starts == static_cast<int64_t>(result.spans.size()),
        "fleet.capacity_accounting", now, config.fault_seed,
        [] { return "spans"; },
        [&] {
          return "cold_starts=" + std::to_string(result.cold_starts) +
                 " spans=" + std::to_string(result.spans.size());
        });
    // Failure taxonomy partitions the failed-attempt count.
    const int64_t taxonomy = result.crash_attempts + result.timeout_attempts +
                             result.init_failure_attempts + result.rejected_attempts +
                             result.queue_timeout_attempts +
                             result.circuit_open_attempts;
    auditor->CheckLazy(taxonomy == result.failed_attempts,
                       "fleet.failure_taxonomy", now, config.fault_seed,
                       [] { return "counters"; },
                       [&] {
                         return "taxonomy=" + std::to_string(taxonomy) +
                                " failed=" + std::to_string(result.failed_attempts);
                       });
    // Billed-time conservation: no span accrues negative busy or idle time.
    for (const SandboxSpan& span : result.spans) {
      auditor->CheckLazy(span.busy >= 0 && span.idle >= 0,
                         "fleet.span_time_accounting", now, config.fault_seed,
                         [&] {
                           return "function " + std::to_string(span.function_id);
                         },
                         [&] {
                           return "busy=" + std::to_string(span.busy) +
                                  " idle=" + std::to_string(span.idle);
                         });
    }
    // USD conservation: the fee component never exceeds the total invoiced.
    auditor->CheckLazy(result.fee_revenue <= result.revenue + 1e-9,
                       "fleet.usd_conservation", now, config.fault_seed,
                       [] { return "revenue"; },
                       [&] {
                         return "fees=" + std::to_string(result.fee_revenue) +
                                " total=" + std::to_string(result.revenue);
                       });
  }

  void StepOne() {
    PendingAttempt at = pending.top();
    pending.pop();
    if (auditor != nullptr && auditor->basic()) {
      auditor->CheckLazy(at.arrival >= now, "fleet.monotone_event_time", now,
                         config.fault_seed, [] { return "pending queue"; },
                         [&] {
                           return "attempt at t=" + std::to_string(at.arrival) +
                                  " after t=" + std::to_string(now);
                         });
    }
    now = at.arrival;
    ++attempts_processed;
    if (prof != nullptr) {
      prof->CountEvent(0, at.arrival, pending.size());
    }
    if (ts != nullptr) {
      ts->RecordArrivalQueued(at.arrival, waiting_now);
    }
    const RequestRecord& r = (*trace)[at.trace_idx];
    SampleMetricsUntil(at.arrival);

    // Client circuit breaker: fast-fail without reaching the platform. Only
    // fresh dispatches are gated; an attempt already parked in an admission
    // queue is a continuation, not a new dispatch.
    if (breaker_on && !at.queued && !BreakerFor(r.function_id).AllowDispatch(at.arrival)) {
      ++result.attempts;
      ++result.failed_attempts;
      ++result.circuit_open_attempts;
      BillUnexecuted(at, Outcome::kCircuitOpen, at.arrival);
      HandleFailure(at, at.arrival, /*retryable=*/true);
      return;
    }

    auto& pool = pools[r.function_id];
    // Sweep idle sandboxes for host deaths, then reuse the most recently
    // freed idle unexpired survivor.
    LiveSandbox* reuse = nullptr;
    for (auto& sb : pool) {
      if (sb.dead || sb.available_at > at.arrival) {
        continue;
      }
      if (hosts_on && sb.host >= 0) {
        const MicroSecs idle_upto =
            std::min(at.arrival, sb.available_at + config.keepalive);
        if (auto ev = host_faults.FirstFailureIn(sb.host, sb.available_at, idle_upto)) {
          // Died while idle: a drain of an idle sandbox retires it at once.
          SandboxSpan& span = result.spans[sb.span_index];
          span.idle += ev->time - sb.available_at;
          span.destroyed_at = ev->time;
          sb.dead = true;
          ++result.host_fault_sandbox_kills;
          continue;
        }
      }
      if (at.arrival - sb.available_at <= config.keepalive &&
          (reuse == nullptr || sb.available_at > reuse->available_at)) {
        reuse = &sb;
      }
    }

    // Per-function sandbox cap: no warm sandbox and no room to scale out
    // means queueing (admission control), shedding, or plain rejection.
    if (reuse == nullptr && cap > 0) {
      int busy = 0;
      MicroSecs next_free = std::numeric_limits<MicroSecs>::max();
      for (const auto& sb : pool) {
        if (!sb.dead && sb.available_at > at.arrival) {
          ++busy;
          next_free = std::min(next_free, sb.available_at);
        }
      }
      if (busy >= cap) {
        if (!config.admission.enabled) {
          // A cap without a queue is the classic 429 at capacity.
          ++result.attempts;
          ++result.failed_attempts;
          ++result.rejected_attempts;
          BillUnexecuted(at, Outcome::kRejected, at.arrival);
          if (breaker_on) {
            BreakerFor(r.function_id).RecordFailure(at.arrival);
          }
          HandleFailure(at, at.arrival, config.retry.retry_rejected);
          return;
        }
        int& waiting = queue_waiting[r.function_id];
        if (!at.queued) {
          if (waiting >= config.admission.queue_depth) {
            // Full queue: shed the newcomer. The fleet model is tail-drop
            // only; reject-oldest lives in the event-driven PlatformSim.
            ++result.attempts;
            ++result.failed_attempts;
            ++result.rejected_attempts;
            BillUnexecuted(at, Outcome::kRejected, at.arrival);
            if (breaker_on) {
              BreakerFor(r.function_id).RecordFailure(at.arrival);
            }
            HandleFailure(at, at.arrival, config.retry.retry_rejected);
            return;
          }
          ++waiting;
          ++waiting_now;
          ++result.queued_attempts;
          at.queued = true;
          at.queued_since = at.arrival;
          at.ticket = next_seq++;
        }
        const MicroSecs deadline = config.admission.queue_timeout > 0
                                       ? at.queued_since + config.admission.queue_timeout
                                       : std::numeric_limits<MicroSecs>::max();
        if (next_free > deadline) {
          // No sandbox frees before the queue timeout: fail at the deadline.
          --waiting;
          --waiting_now;
          ++result.attempts;
          ++result.failed_attempts;
          ++result.queue_timeout_attempts;
          result.queue_wait_seconds += MicrosToSecs(deadline - at.queued_since);
          BillUnexecuted(at, Outcome::kTimeout, deadline);
          if (breaker_on) {
            BreakerFor(r.function_id).RecordFailure(deadline);
          }
          HandleFailure(at, deadline, /*retryable=*/true);
          return;
        }
        // Wait for the earliest sandbox to free. Re-queuing under the
        // original ticket keeps the queue FIFO across wake-ups.
        PendingAttempt parked = at;
        parked.arrival = next_free;
        parked.seq = at.ticket;
        pending.push(parked);
        return;
      }
    }

    // Dispatching now; leave the admission queue if we were parked in it.
    if (at.queued) {
      --queue_waiting[r.function_id];
      --waiting_now;
      result.queue_wait_seconds += MicrosToSecs(at.arrival - at.queued_since);
      if (sink != nullptr) {
        Span sp;
        sp.kind = SpanKind::kQueueWait;
        sp.group = kTrackGroupFleetFunction;
        sp.track = r.function_id;
        sp.start = at.queued_since;
        sp.duration = at.arrival - at.queued_since;
        sp.req_idx = static_cast<int32_t>(at.trace_idx);
        sp.attempt = at.attempt;
        sink->Record(sp);
      }
    }
    ++result.attempts;

    // Sample this attempt's fate. Crashes abort at a uniform point of the
    // execution; anything running past the platform timeout is cut there.
    double p = config.failure_rate;
    if (config.use_trace_failure_rates && r.failure_rate > 0.0) {
      p = r.failure_rate;
    }
    Outcome oc = Outcome::kOk;
    MicroSecs effective = r.exec_duration;
    if (p > 0.0 && fault_rng.Bernoulli(p)) {
      oc = Outcome::kCrash;
      effective = std::max<MicroSecs>(
          1, static_cast<MicroSecs>(static_cast<double>(r.exec_duration) *
                                    (1.0 - fault_rng.NextDouble())));
    }
    if (config.max_exec_duration > 0 && effective > config.max_exec_duration) {
      oc = Outcome::kTimeout;
      effective = config.max_exec_duration;
    }

    const bool cold = (reuse == nullptr);
    const MicroSecs init = cold ? config.init_duration : 0;
    int host = -1;
    if (hosts_on) {
      host = cold ? host_faults.PickHost(at.arrival) : reuse->host;
    }
    const MicroSecs body_start = at.arrival + init;
    MicroSecs end = body_start + effective;
    MicroSecs init_billed = init;
    bool host_kills_sandbox = false;
    if (hosts_on && host >= 0) {
      if (auto ev = host_faults.FirstFailureIn(host, at.arrival, end)) {
        // The host goes away while we run. A graceful drain grants the
        // deadline to finish; an abrupt crash (or a blown deadline) kills
        // the attempt where the host died. Either way the sandbox is gone.
        const MicroSecs kill = ev->graceful ? ev->time + drain : ev->time;
        host_kills_sandbox = true;
        ++result.host_fault_sandbox_kills;
        if (kill < end) {
          ++result.host_fault_attempt_kills;
          end = kill;
          if (kill < body_start) {
            oc = Outcome::kInitFailure;  // Died before init completed.
            init_billed = kill - at.arrival;
            effective = 0;
          } else {
            oc = Outcome::kCrash;
            effective = kill - body_start;
          }
        } else if (ev->graceful) {
          ++result.drain_survivals;  // Finished inside the drain window.
        }
      }
    }

    if (!cold) {
      SandboxSpan& span = result.spans[reuse->span_index];
      span.idle += at.arrival - reuse->available_at;
      span.busy += effective;
      ++span.requests;
      reuse->available_at = end;
      if (oc == Outcome::kCrash || host_kills_sandbox) {
        // Process death or host loss: no KA linger.
        reuse->dead = true;
        span.destroyed_at = end;
      }
    } else {
      SandboxSpan span;
      span.function_id = r.function_id;
      span.vcpus = r.alloc_vcpus;
      span.mem_mb = r.alloc_mem_mb;
      span.created_at = at.arrival;
      span.busy = init_billed + effective;
      span.requests = 1;
      span.host = host;
      LiveSandbox sb;
      sb.available_at = end;
      sb.span_index = result.spans.size();
      sb.host = host;
      if (oc == Outcome::kCrash || oc == Outcome::kInitFailure || host_kills_sandbox) {
        sb.dead = true;
        span.destroyed_at = end;
      }
      result.spans.push_back(span);
      pool.push_back(sb);
      ++result.cold_starts;
    }

    // Bill the attempt under the platform's failure rules.
    RequestRecord billed = Billed(r, cold, config);
    billed.outcome = oc;
    billed.attempt = at.attempt;
    if (oc != Outcome::kOk) {
      billed.exec_duration = effective;
      billed.cpu_time = r.exec_duration > 0
                            ? static_cast<MicroSecs>(static_cast<double>(r.cpu_time) *
                                                     static_cast<double>(effective) /
                                                     static_cast<double>(r.exec_duration))
                            : r.cpu_time;
    }
    if (oc == Outcome::kInitFailure) {
      billed.init_duration = init_billed;  // Only the partial init ran.
    }
    const Invoice inv = ComputeInvoice(billing, billed);
    result.revenue += inv.total;
    result.fee_revenue += inv.invocation_cost;
    if (ts != nullptr) {
      // The billed add carries the same value / end time / order as the
      // terminal span below: bitwise reconciliation depends on it.
      ts->RecordDispatchBilled(at.arrival, end, cold, inv.total);
      ts->RecordExecution(at.arrival, end);
      if (oc != Outcome::kOk) {
        ts->RecordWaste(end, WasteKind::kFailedAttempt, inv.total);
      } else if (cold && init_billed + effective > 0) {
        // Cold-start surcharge attribution: the init share of the attempt's
        // occupied time, priced at the attempt's average rate. A heuristic
        // (billing models differ on whether init bills), but a deterministic
        // one.
        ts->RecordWaste(end, WasteKind::kColdInit,
                        inv.total * (static_cast<double>(init_billed) /
                                     static_cast<double>(init_billed + effective)));
      }
    }

    if (sink != nullptr) {
      const size_t used_span = cold ? result.spans.size() - 1 : reuse->span_index;
      if (cold && init_billed > 0) {
        Span in;
        in.kind = SpanKind::kInit;
        in.group = kTrackGroupFleetSandbox;
        in.track = static_cast<int64_t>(used_span);
        in.start = at.arrival;
        in.duration = init_billed;
        in.req_idx = static_cast<int32_t>(at.trace_idx);
        in.attempt = at.attempt;
        in.sandbox_id = static_cast<int32_t>(used_span);
        in.cold = true;
        if (oc == Outcome::kInitFailure) {
          in.status = OutcomeName(oc);
        }
        sink->Record(in);
      }
      Span ex;
      ex.kind = SpanKind::kExec;
      ex.group = kTrackGroupFleetFunction;
      ex.track = r.function_id;
      ex.start = at.arrival;
      ex.duration = end - at.arrival;
      ex.req_idx = static_cast<int32_t>(at.trace_idx);
      ex.attempt = at.attempt;
      ex.sandbox_id = static_cast<int32_t>(used_span);
      ex.ref = static_cast<int64_t>(used_span);
      ex.status = OutcomeName(oc);
      ex.cold = cold;
      ex.terminal = true;
      ex.billed_micros = inv.billable_time;
      ex.billed_usd = inv.total;
      sink->Record(ex);
    }

    // Route the attempt's payloads over the network edge (null model = one
    // pointer test). The request rides internet -> zone at dispatch, the
    // response rides back at completion; both extend the client-perceived
    // end, never the sandbox occupancy (see FleetSimConfig::network).
    MicroSecs client_end = end;
    if (net != nullptr) {
      const int zone = net->ZoneOf(hosts_on && host >= 0 ? host : r.function_id);
      const AttemptPayload pl =
          net->PayloadFor(r.function_id, at.trace_idx, at.attempt - 1, r.req_bytes,
                          r.resp_bytes, oc == Outcome::kOk);
      TransferCharge in;
      if (pl.request_bytes > 0) {
        in = net->Transfer(NetworkModel::kInternet, zone, pl.request_bytes, at.arrival);
        MeterCharge(in, at.arrival, at, r.function_id);
      }
      TransferCharge back;
      if (pl.response_bytes > 0) {
        back = net->Transfer(zone, NetworkModel::kInternet, pl.response_bytes, end);
        MeterCharge(back, end, at, r.function_id);
      }
      result.network_ops_usd += net->MeterRequestOps();
      client_end = end + in.time + back.time;
      const Usd detour = in.detour_usd + back.detour_usd;
      result.network_detour_usd += detour;
      if (ts != nullptr) {
        // Disjoint waste attribution, first match wins: a failed attempt's
        // whole transfer spend is waste; a successful one only wastes the
        // outage-detour surcharge.
        if (oc != Outcome::kOk) {
          ts->RecordWaste(client_end, WasteKind::kFailedEgress, in.usd + back.usd);
        } else if (detour > 0.0) {
          ts->RecordWaste(client_end, WasteKind::kCrossZoneDetour, detour);
        }
      }
    }

    if (oc == Outcome::kOk) {
      if (breaker_on) {
        BreakerFor(r.function_id).RecordSuccess();
      }
      ResolveTerminal(at, client_end, true);
    } else {
      ++result.failed_attempts;
      if (oc == Outcome::kCrash) {
        ++result.crash_attempts;
      } else if (oc == Outcome::kTimeout) {
        ++result.timeout_attempts;
      } else {
        ++result.init_failure_attempts;
      }
      if (breaker_on) {
        BreakerFor(r.function_id).RecordFailure(end);
      }
      HandleFailure(at, client_end, /*retryable=*/true);
    }

    if (auditor != nullptr && auditor->ScanDue(attempts_processed)) {
      AuditScan();
    }
  }

  // The complete mutable state, walked once for save, load, and digest (see
  // src/integrity/archive.h). The trace and billing model are inputs, not
  // state; maps are archived in sorted-key order so the walk is canonical.
  template <typename Ar>
  void Archive(Ar& ar) {
    ar.Field("now", now);
    ar.Field("next_seq", next_seq);
    ar.Field("waiting_now", waiting_now);
    ar.Field("next_sample", next_sample);
    ar.Field("attempts_processed", attempts_processed);
    int next_host = host_faults.next_host();
    ar.Field("next_host", next_host);
    if constexpr (Ar::kLoading) {
      host_faults.set_next_host(next_host);
    }
    ArchiveRng(ar, "fault_rng", fault_rng);

    {
      std::vector<PendingAttempt>& heap = pending.raw();
      const size_t n = ar.BeginArray("pending", heap.size());
      if constexpr (Ar::kLoading) {
        heap.resize(n);
      }
      for (size_t i = 0; i < n; ++i) {
        PendingAttempt& at = heap[i];
        ar.BeginElem();
        ar.Field("t", at.arrival);
        ar.Field("seq", at.seq);
        uint64_t idx = at.trace_idx;
        ar.Field("idx", idx);
        if constexpr (Ar::kLoading) {
          at.trace_idx = static_cast<size_t>(idx);
        }
        ar.Field("attempt", at.attempt);
        ar.Field("queued", at.queued);
        ar.Field("queued_since", at.queued_since);
        ar.Field("ticket", at.ticket);
        ar.EndElem();
      }
      ar.EndArray();
    }

    {
      std::vector<std::pair<int64_t, std::vector<LiveSandbox>>> sorted;
      if constexpr (!Ar::kLoading) {
        sorted.assign(pools.begin(), pools.end());
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
      }
      const size_t n = ar.BeginArray("pools", sorted.size());
      if constexpr (Ar::kLoading) {
        sorted.resize(n);
      }
      for (size_t i = 0; i < n; ++i) {
        ar.BeginElem();
        ar.Field("fid", sorted[i].first);
        std::vector<LiveSandbox>& pool = sorted[i].second;
        const size_t m = ar.BeginArray("sandboxes", pool.size());
        if constexpr (Ar::kLoading) {
          pool.resize(m);
        }
        for (size_t j = 0; j < m; ++j) {
          LiveSandbox& sb = pool[j];
          ar.BeginElem();
          ar.Field("available_at", sb.available_at);
          uint64_t span_index = sb.span_index;
          ar.Field("span", span_index);
          if constexpr (Ar::kLoading) {
            sb.span_index = static_cast<size_t>(span_index);
          }
          ar.Field("dead", sb.dead);
          ar.Field("host", sb.host);
          ar.EndElem();
        }
        ar.EndArray();
        ar.EndElem();
      }
      ar.EndArray();
      if constexpr (Ar::kLoading) {
        pools.clear();
        for (auto& [fid, pool] : sorted) {
          pools.emplace(fid, std::move(pool));
        }
      }
    }

    {
      std::vector<std::pair<int64_t, int>> sorted;
      if constexpr (!Ar::kLoading) {
        sorted.assign(queue_waiting.begin(), queue_waiting.end());
        std::sort(sorted.begin(), sorted.end());
      }
      const size_t n = ar.BeginArray("queue_waiting", sorted.size());
      if constexpr (Ar::kLoading) {
        sorted.resize(n);
      }
      for (size_t i = 0; i < n; ++i) {
        ar.BeginElem();
        ar.Field("fid", sorted[i].first);
        ar.Field("n", sorted[i].second);
        ar.EndElem();
      }
      ar.EndArray();
      if constexpr (Ar::kLoading) {
        queue_waiting.clear();
        queue_waiting.insert(sorted.begin(), sorted.end());
      }
    }

    {
      std::vector<std::pair<int64_t, CircuitBreakerState>> sorted;
      if constexpr (!Ar::kLoading) {
        sorted.reserve(breakers.size());
        for (const auto& [fid, cb] : breakers) {
          sorted.emplace_back(fid, cb.SaveState());
        }
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
      }
      const size_t n = ar.BeginArray("breakers", sorted.size());
      if constexpr (Ar::kLoading) {
        sorted.resize(n);
      }
      for (size_t i = 0; i < n; ++i) {
        ar.BeginElem();
        ar.Field("fid", sorted[i].first);
        CircuitBreakerState& st = sorted[i].second;
        ar.Field("state", st.state);
        ar.Field("consecutive_failures", st.consecutive_failures);
        ar.Field("open_until", st.open_until);
        ar.Field("probe_inflight", st.probe_inflight);
        ar.Field("trips", st.trips);
        ar.EndElem();
      }
      ar.EndArray();
      if constexpr (Ar::kLoading) {
        breakers.clear();
        for (const auto& [fid, st] : sorted) {
          BreakerFor(fid).LoadState(st);
        }
      }
    }

    ar.Begin("counters");
    ar.Field("requests", result.requests);
    ar.Field("attempts", result.attempts);
    ar.Field("cold_starts", result.cold_starts);
    ar.Field("failed_attempts", result.failed_attempts);
    ar.Field("crash_attempts", result.crash_attempts);
    ar.Field("timeout_attempts", result.timeout_attempts);
    ar.Field("init_failure_attempts", result.init_failure_attempts);
    ar.Field("retries", result.retries);
    ar.Field("retries_exhausted", result.retries_exhausted);
    ar.Field("successes", result.successes);
    ar.Field("rejected_attempts", result.rejected_attempts);
    ar.Field("queue_timeout_attempts", result.queue_timeout_attempts);
    ar.Field("circuit_open_attempts", result.circuit_open_attempts);
    ar.Field("queued_attempts", result.queued_attempts);
    ar.Field("queue_wait_seconds", result.queue_wait_seconds);
    ar.Field("host_fault_attempt_kills", result.host_fault_attempt_kills);
    ar.Field("host_fault_sandbox_kills", result.host_fault_sandbox_kills);
    ar.Field("drain_survivals", result.drain_survivals);
    ar.Field("revenue", result.revenue);
    ar.Field("fee_revenue", result.fee_revenue);
    ar.End();

    {
      std::vector<int64_t> e2e(result.e2e_latency.begin(), result.e2e_latency.end());
      ar.I64Vec("e2e_latency", e2e);
      if constexpr (Ar::kLoading) {
        result.e2e_latency.assign(e2e.begin(), e2e.end());
      }
    }

    {
      const size_t n = ar.BeginArray("spans", result.spans.size());
      if constexpr (Ar::kLoading) {
        result.spans.resize(n);
      }
      for (size_t i = 0; i < n; ++i) {
        SandboxSpan& span = result.spans[i];
        ar.BeginElem();
        ar.Field("fid", span.function_id);
        ar.Field("vcpus", span.vcpus);
        ar.Field("mem_mb", span.mem_mb);
        ar.Field("created_at", span.created_at);
        ar.Field("destroyed_at", span.destroyed_at);
        ar.Field("busy", span.busy);
        ar.Field("idle", span.idle);
        ar.Field("requests", span.requests);
        ar.Field("host", span.host);
        ar.EndElem();
      }
      ar.EndArray();
    }
  }
};

FleetEngine::FleetEngine(FleetSimConfig config) {
  const std::vector<std::string> errors = config.Validate();
  if (!errors.empty()) {
    std::string msg = "invalid FleetSimConfig";
    for (const auto& e : errors) {
      msg += "; " + e;
    }
    throw std::invalid_argument(msg);
  }
  impl_ = std::make_unique<Impl>(std::move(config));
}

FleetEngine::~FleetEngine() = default;
FleetEngine::FleetEngine(FleetEngine&&) noexcept = default;
FleetEngine& FleetEngine::operator=(FleetEngine&&) noexcept = default;

void FleetEngine::Start(const std::vector<RequestRecord>& trace,
                        const BillingModel& billing) {
  Impl& im = *impl_;
  if (im.started) {
    throw std::logic_error("FleetEngine::Start called twice");
  }
  im.started = true;
  im.trace = &trace;
  im.billing = billing;
  im.result.requests = static_cast<int64_t>(trace.size());
  im.result.e2e_latency.assign(trace.size(), 0);
  for (size_t i = 0; i < trace.size(); ++i) {
    assert(trace[i].exec_duration >= 0);
    im.pending.push({trace[i].arrival, static_cast<int64_t>(i), i, 1});
  }
  im.next_seq = static_cast<int64_t>(trace.size());
  if (im.metrics != nullptr && !trace.empty()) {
    im.next_sample = trace.front().arrival;
  }
}

void FleetEngine::Resume(const std::vector<RequestRecord>& trace,
                         const BillingModel& billing, const JsonValue& state) {
  Impl& im = *impl_;
  if (im.started) {
    throw std::logic_error("FleetEngine::Resume on a started engine");
  }
  im.started = true;
  im.trace = &trace;
  im.billing = billing;
  Loader ar(&state);
  im.Archive(ar);
}

void FleetEngine::AdvanceUntil(MicroSecs t) {
  Impl& im = *impl_;
  while (!im.pending.empty() && im.pending.top().arrival <= t) {
    im.StepOne();
  }
}

void FleetEngine::RunToEnd() {
  Impl& im = *impl_;
  while (!im.pending.empty()) {
    im.StepOne();
  }
}

bool FleetEngine::done() const { return impl_->pending.empty(); }

MicroSecs FleetEngine::now() const { return impl_->now; }

FleetResult FleetEngine::Finish() {
  Impl& im = *impl_;
  if (im.finished) {
    throw std::logic_error("FleetEngine::Finish called twice");
  }
  im.finished = true;
  FleetResult& result = im.result;
  const FleetSimConfig& config = im.config;

  // Close every surviving sandbox: it lingers one keep-alive window past its
  // last use (crashed sandboxes were destroyed on the spot), unless its host
  // dies mid-linger first.
  // Iterate pools in sorted key order: the hash-map order must never be
  // observable, and this loop touches spans that feed serialized artifacts.
  std::vector<int64_t> pool_fids;
  pool_fids.reserve(im.pools.size());
  for (const auto& [fid, pool] : im.pools) {
    pool_fids.push_back(fid);
  }
  std::sort(pool_fids.begin(), pool_fids.end());
  for (const int64_t fid : pool_fids) {
    for (const auto& sb : im.pools[fid]) {
      if (sb.dead) {
        continue;
      }
      SandboxSpan& span = result.spans[sb.span_index];
      if (im.hosts_on && sb.host >= 0) {
        if (auto ev = im.host_faults.FirstFailureIn(
                sb.host, sb.available_at, sb.available_at + config.keepalive)) {
          span.idle += ev->time - sb.available_at;
          span.destroyed_at = ev->time;
          ++result.host_fault_sandbox_kills;
          continue;
        }
      }
      span.idle += config.keepalive;
      span.destroyed_at = sb.available_at + config.keepalive;
    }
  }
  // A commutative sum today, but iterate deterministically anyway so a
  // future non-commutative use cannot silently inherit hash-map order.
  std::vector<int64_t> breaker_fids;
  breaker_fids.reserve(im.breakers.size());
  for (const auto& [fid, cb] : im.breakers) {
    breaker_fids.push_back(fid);
  }
  std::sort(breaker_fids.begin(), breaker_fids.end());
  for (const int64_t fid : breaker_fids) {
    result.breaker_trips += im.breakers.at(fid).trips();
  }
  if (im.sink != nullptr) {
    for (size_t i = 0; i < result.spans.size(); ++i) {
      const SandboxSpan& span = result.spans[i];
      Span sp;
      sp.kind = SpanKind::kSandboxLife;
      sp.group = kTrackGroupFleetSandbox;
      sp.track = static_cast<int64_t>(i);
      sp.start = span.created_at;
      sp.duration = span.destroyed_at - span.created_at;
      sp.sandbox_id = static_cast<int32_t>(i);
      sp.ref = static_cast<int64_t>(i);
      im.sink->Record(sp);
    }
  }
  if (im.metrics != nullptr) {
    im.SampleMetricsUntil(im.next_sample);  // Final row with the closing totals.
  }
  if (im.prof != nullptr) {
    im.prof->AddRngDraws(im.fault_rng.draw_count());
    im.prof->AddRngDraws(im.host_faults.TotalRngDraws());
  }

  if (im.net != nullptr) {
    result.network_bill = im.net->bill();
  }
  result.sandboxes = static_cast<int64_t>(result.spans.size());
  for (const auto& span : result.spans) {
    result.sandbox_seconds += MicrosToSecs(span.destroyed_at - span.created_at);
    result.busy_seconds += MicrosToSecs(span.busy);
    result.idle_seconds += MicrosToSecs(span.idle);
    const Usd rate = SpanRate(span, config);
    result.hardware_cost += rate * MicrosToSecs(span.busy) +
                            rate * config.ka_cost_share * MicrosToSecs(span.idle);
  }
  if (result.revenue > 0.0) {
    result.margin = (result.revenue - result.hardware_cost) / result.revenue;
  }

  // Pack the sandbox spans onto servers to find the fleet high-water mark.
  struct Event {
    MicroSecs time;
    bool create;
    size_t span;
  };
  std::vector<Event> events;
  events.reserve(result.spans.size() * 2);
  for (size_t i = 0; i < result.spans.size(); ++i) {
    events.push_back({result.spans[i].created_at, true, i});
    events.push_back({result.spans[i].destroyed_at, false, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.create < b.create;  // Process destroys before creates at ties.
  });
  ClusterPlacer placer(config.server, config.placement);
  std::vector<Placement> tickets(result.spans.size());
  for (const auto& ev : events) {
    const SandboxSpan& span = result.spans[ev.span];
    if (ev.create) {
      tickets[ev.span] = placer.Place({span.vcpus, span.mem_mb});
      result.peak_servers = std::max(result.peak_servers, placer.active_server_count());
    } else {
      placer.Release(tickets[ev.span]);
    }
  }
  return std::move(result);
}

void FleetEngine::SaveState(JsonWriter& w) {
  Saver ar(&w);
  w.BeginObject();
  impl_->Archive(ar);
  w.EndObject();
}

uint64_t FleetEngine::Digest() {
  StateDigest d;
  d.MixLabel("fleet-state-v1");
  Digester ar(&d);
  impl_->Archive(ar);
  return d.value();
}

uint64_t FleetEngine::ConfigHash() const { return HashFleetConfig(impl_->config); }

uint64_t FleetEngine::DigestTrace(const std::vector<RequestRecord>& trace) {
  StateDigest d;
  d.MixLabel("fleet-trace-v1");
  d.MixU64(trace.size());
  for (const RequestRecord& r : trace) {
    d.MixI64(r.function_id);
    d.MixI64(r.arrival);
    d.MixI64(r.exec_duration);
    d.MixI64(r.cpu_time);
    d.MixDouble(r.alloc_vcpus);
    d.MixDouble(r.alloc_mem_mb);
    d.MixDouble(r.used_mem_mb);
    d.MixBool(r.cold_start);
    d.MixI64(r.init_duration);
    d.MixI64(static_cast<int64_t>(r.outcome));
    d.MixI64(r.attempt);
    d.MixDouble(r.failure_rate);
  }
  return d.value();
}

FleetResult SimulateFleet(const std::vector<RequestRecord>& trace,
                          const BillingModel& billing, const FleetSimConfig& config) {
  FleetEngine engine(config);
  engine.Start(trace, billing);
  engine.RunToEnd();
  return engine.Finish();
}

std::vector<EconomicsBucket> BucketEconomics(const FleetResult& result,
                                             const std::vector<RequestRecord>& trace,
                                             const BillingModel& billing,
                                             const FleetSimConfig& config, int buckets) {
  // Bucket counts arrive from CLI flags and bench parameters; validate in
  // every build type (the default build defines NDEBUG).
  if (buckets <= 0) {
    throw std::invalid_argument("BucketEconomics: buckets must be > 0, got " +
                                std::to_string(buckets));
  }
  struct FnAgg {
    int64_t requests = 0;
    Usd revenue = 0.0;
    Usd cost = 0.0;
    int64_t cold = 0;
  };
  std::unordered_map<int64_t, FnAgg> per_fn;

  // Cost and cold starts from the spans.
  for (const auto& span : result.spans) {
    FnAgg& agg = per_fn[span.function_id];
    const Usd rate = SpanRate(span, config);
    agg.cost += rate * MicrosToSecs(span.busy) +
                rate * config.ka_cost_share * MicrosToSecs(span.idle);
    ++agg.cold;
  }
  // Revenue approximated per request with warm billing plus the per-span
  // cold-start surcharge (exact enough for bucketing).
  for (const auto& r : trace) {
    FnAgg& agg = per_fn[r.function_id];
    ++agg.requests;
    RequestRecord warm = r;
    warm.cold_start = false;
    warm.init_duration = 0;
    agg.revenue += ComputeInvoice(billing, warm).total;
  }
  if (billing.billable_time == BillableTime::kTurnaround) {
    for (const auto& span : result.spans) {
      FnAgg& agg = per_fn[span.function_id];
      // The init duration billed at the sandbox's allocation rate.
      RequestRecord init_only;
      init_only.exec_duration = 0;
      init_only.cpu_time = 0;
      init_only.init_duration = config.init_duration;
      init_only.cold_start = true;
      init_only.alloc_vcpus = span.vcpus;
      init_only.alloc_mem_mb = span.mem_mb;
      agg.revenue += ComputeInvoice(billing, init_only).resource_cost;
    }
  }

  std::vector<std::pair<int64_t, FnAgg>> sorted(per_fn.begin(), per_fn.end());
  // Tie-break on function id: without it, functions with equal request
  // counts would keep their unordered_map order, and the bucket boundaries
  // (and the serialized economics table) would depend on the hash seed.
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.requests != b.second.requests) {
      return a.second.requests > b.second.requests;
    }
    return a.first < b.first;
  });

  std::vector<EconomicsBucket> out(static_cast<size_t>(buckets));
  for (size_t i = 0; i < sorted.size(); ++i) {
    const size_t b = i * static_cast<size_t>(buckets) / sorted.size();
    EconomicsBucket& bucket = out[b];
    ++bucket.functions;
    bucket.requests += sorted[i].second.requests;
    bucket.revenue += sorted[i].second.revenue;
    bucket.hardware_cost += sorted[i].second.cost;
    bucket.cold_start_rate += static_cast<double>(sorted[i].second.cold);
  }
  for (auto& bucket : out) {
    if (bucket.requests > 0) {
      bucket.cold_start_rate /= static_cast<double>(bucket.requests);
    }
  }
  return out;
}

}  // namespace faascost
