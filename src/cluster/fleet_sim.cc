#include "src/cluster/fleet_sim.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "src/common/rng.h"

namespace faascost {

namespace {

// A function's live sandbox (single-concurrency: busy until available_at).
struct LiveSandbox {
  MicroSecs available_at = 0;
  size_t span_index = 0;
  bool dead = false;  // Destroyed by a crash or host loss; no reuse, no KA linger.
  int host = -1;      // Fault domain (only set when host faults are enabled).
};

// One dispatch (initial or retry) waiting to be processed. Ordering by
// (arrival, seq) with seq = trace index for initial attempts reproduces the
// fault-free per-record iteration order exactly. An attempt parked in an
// admission queue keeps its `ticket` as the re-queue seq so queue order stays
// FIFO across wake-ups.
struct PendingAttempt {
  MicroSecs arrival = 0;
  int64_t seq = 0;
  size_t trace_idx = 0;
  int attempt = 1;
  bool queued = false;        // Waiting in a function's admission queue.
  MicroSecs queued_since = 0;
  int64_t ticket = -1;

  bool operator>(const PendingAttempt& other) const {
    if (arrival != other.arrival) {
      return arrival > other.arrival;
    }
    return seq > other.seq;
  }
};

Usd SpanRate(const SandboxSpan& span, const FleetSimConfig& cfg) {
  return cfg.hardware_per_vcpu_second * span.vcpus +
         cfg.hardware_per_gb_second * MbToGb(span.mem_mb);
}

RequestRecord Billed(const RequestRecord& r, bool cold, const FleetSimConfig& cfg) {
  RequestRecord out = r;
  out.cold_start = cold;
  out.init_duration = cold ? cfg.init_duration : 0;
  return out;
}

}  // namespace

std::vector<std::string> FleetSimConfig::Validate() const {
  std::vector<std::string> errors;
  if (keepalive < 0) {
    errors.push_back("keepalive must be >= 0, got " + std::to_string(keepalive));
  }
  if (init_duration < 0) {
    errors.push_back("init_duration must be >= 0, got " + std::to_string(init_duration));
  }
  if (ka_cost_share < 0.0 || ka_cost_share > 1.0) {
    errors.push_back("ka_cost_share must be in [0, 1], got " +
                     std::to_string(ka_cost_share));
  }
  if (hardware_per_vcpu_second < 0.0 || hardware_per_gb_second < 0.0) {
    errors.push_back("hardware rates must be >= 0");
  }
  if (failure_rate < 0.0 || failure_rate > 1.0) {
    errors.push_back("failure_rate must be in [0, 1], got " +
                     std::to_string(failure_rate));
  }
  if (max_exec_duration < 0) {
    errors.push_back("max_exec_duration must be >= 0 (0 disables), got " +
                     std::to_string(max_exec_duration));
  }
  for (const std::string& e : retry.Validate()) {
    errors.push_back("retry: " + e);
  }
  for (const std::string& e : host_faults.Validate()) {
    errors.push_back("host_faults: " + e);
  }
  for (const std::string& e : admission.Validate()) {
    errors.push_back("admission: " + e);
  }
  if (max_sandboxes_per_function < 0) {
    errors.push_back("max_sandboxes_per_function must be >= 0 (0 = unbounded), got " +
                     std::to_string(max_sandboxes_per_function));
  }
  if (admission.enabled && max_sandboxes_per_function <= 0) {
    errors.push_back(
        "admission control needs max_sandboxes_per_function > 0: with an "
        "unbounded sandbox pool there is no capacity limit to queue against");
  }
  if (metrics != nullptr && metrics_interval <= 0) {
    errors.push_back("metrics_interval must be > 0 when a metrics registry is attached");
  }
  return errors;
}

FleetResult SimulateFleet(const std::vector<RequestRecord>& trace,
                          const BillingModel& billing, const FleetSimConfig& config) {
  {
    const std::vector<std::string> errors = config.Validate();
    if (!errors.empty()) {
      std::string msg = "invalid FleetSimConfig";
      for (const auto& e : errors) {
        msg += "; " + e;
      }
      throw std::invalid_argument(msg);
    }
  }
  FleetResult result;
  result.requests = static_cast<int64_t>(trace.size());
  result.e2e_latency.assign(trace.size(), 0);
  // The fault stream is separate from everything else and only drawn from
  // when a failure can actually fire, so a zero-fault config reproduces the
  // fault-oblivious simulation exactly. Stream 0 is the legacy
  // `seed ^ gamma` derivation, keeping pre-chaos goldens bit-identical.
  Rng fault_rng(DeriveSeed(config.fault_seed, kFaultStream));
  HostFaultModel host_faults(config.host_faults, config.fault_seed);
  const bool hosts_on = config.host_faults.enabled();
  const MicroSecs drain = config.host_faults.drain_deadline;
  const bool breaker_on = config.retry.breaker_threshold > 0;
  const int cap = config.max_sandboxes_per_function;

  std::priority_queue<PendingAttempt, std::vector<PendingAttempt>,
                      std::greater<PendingAttempt>>
      pending;
  for (size_t i = 0; i < trace.size(); ++i) {
    assert(trace[i].exec_duration >= 0);
    pending.push({trace[i].arrival, static_cast<int64_t>(i), i, 1});
  }
  int64_t next_seq = static_cast<int64_t>(trace.size());

  // Per-function sandbox pools, fed in global (arrival, seq) order.
  std::unordered_map<int64_t, std::vector<LiveSandbox>> pools;
  // Per-function admission queue occupancy and client circuit breakers.
  std::unordered_map<int64_t, int> queue_waiting;
  std::unordered_map<int64_t, CircuitBreaker> breakers;
  auto breaker_for = [&](int64_t fid) -> CircuitBreaker& {
    return breakers
        .try_emplace(fid, config.retry.breaker_threshold, config.retry.breaker_cooldown)
        .first->second;
  };

  // --- Observability (no-ops when the hooks are null) ---
  TraceSink* const sink = config.trace_sink;
  MetricsRegistry* const metrics = config.metrics;
  struct MetricIds {
    int attempts = 0, failures = 0, cold = 0, retries = 0;
    int queue_waiting = 0, revenue = 0, fees = 0;
  };
  MetricIds mid;
  MicroSecs next_sample = 0;
  int64_t waiting_now = 0;  // Attempts currently parked in admission queues.
  if (metrics != nullptr) {
    using K = MetricsRegistry::Kind;
    mid.attempts = metrics->Define(K::kGauge, "fleet.attempts_total");
    mid.failures = metrics->Define(K::kGauge, "fleet.failed_attempts_total");
    mid.cold = metrics->Define(K::kGauge, "fleet.cold_starts_total");
    mid.retries = metrics->Define(K::kGauge, "fleet.retries_total");
    mid.queue_waiting = metrics->Define(K::kGauge, "fleet.queue_waiting");
    mid.revenue = metrics->Define(K::kGauge, "fleet.revenue_usd");
    mid.fees = metrics->Define(K::kGauge, "fleet.fee_revenue_usd");
    if (!trace.empty()) {
      next_sample = trace.front().arrival;
    }
  }
  // Rows snapshot the running totals on every cadence boundary up to `t`.
  auto sample_metrics_until = [&](MicroSecs t) {
    if (metrics == nullptr) {
      return;
    }
    while (t >= next_sample) {
      metrics->Set(mid.attempts, static_cast<double>(result.attempts));
      metrics->Set(mid.failures, static_cast<double>(result.failed_attempts));
      metrics->Set(mid.cold, static_cast<double>(result.cold_starts));
      metrics->Set(mid.retries, static_cast<double>(result.retries));
      metrics->Set(mid.queue_waiting, static_cast<double>(waiting_now));
      metrics->Set(mid.revenue, result.revenue);
      metrics->Set(mid.fees, result.fee_revenue);
      metrics->Sample(next_sample);
      next_sample += config.metrics_interval;
    }
  };

  // The client's terminal resolution of a request, success or surrender.
  auto resolve_terminal = [&](const PendingAttempt& at, MicroSecs when, bool ok) {
    result.e2e_latency[at.trace_idx] = when - trace[at.trace_idx].arrival;
    if (ok) {
      ++result.successes;
    }
  };

  // A failed attempt: schedule the retry, or resolve the request if the
  // outcome is not retryable / the budget is spent.
  auto handle_failure = [&](const PendingAttempt& at, MicroSecs end, bool retryable) {
    if (retryable && at.attempt < config.retry.max_attempts) {
      const MicroSecs delay = config.retry.BackoffDelay(at.attempt, fault_rng);
      if (sink != nullptr) {
        Span sp;
        sp.kind = SpanKind::kBackoff;
        sp.group = kTrackGroupFleetFunction;
        sp.track = trace[at.trace_idx].function_id;
        sp.start = end;
        sp.duration = delay;
        sp.req_idx = static_cast<int32_t>(at.trace_idx);
        sp.attempt = at.attempt;
        sink->Record(sp);
      }
      pending.push({end + delay, next_seq++, at.trace_idx, at.attempt + 1});
      ++result.retries;
    } else {
      ++result.retries_exhausted;
      resolve_terminal(at, end, false);
    }
  };

  // Bill an attempt that never reached a sandbox (shed, queue timeout,
  // breaker fast-fail): no resources ran, only per-invocation fee rules can
  // apply. kCircuitOpen is $0 by construction.
  auto bill_unexecuted = [&](const PendingAttempt& at, Outcome oc, MicroSecs end) {
    RequestRecord billed = trace[at.trace_idx];
    billed.cold_start = false;
    billed.init_duration = 0;
    billed.exec_duration = 0;
    billed.cpu_time = 0;
    billed.outcome = oc;
    billed.attempt = at.attempt;
    const Invoice inv = ComputeInvoice(billing, billed);
    result.revenue += inv.total;
    result.fee_revenue += inv.invocation_cost;
    if (sink != nullptr) {
      Span sp;
      sp.kind = SpanKind::kQueueWait;
      sp.group = kTrackGroupFleetFunction;
      sp.track = trace[at.trace_idx].function_id;
      sp.start = at.queued ? at.queued_since : at.arrival;
      sp.duration = end - sp.start;
      sp.req_idx = static_cast<int32_t>(at.trace_idx);
      sp.attempt = at.attempt;
      sp.status = OutcomeName(oc);
      sp.terminal = true;
      sp.billed_micros = inv.billable_time;
      sp.billed_usd = inv.total;
      sink->Record(sp);
    }
  };

  while (!pending.empty()) {
    PendingAttempt at = pending.top();
    pending.pop();
    const RequestRecord& r = trace[at.trace_idx];
    sample_metrics_until(at.arrival);

    // Client circuit breaker: fast-fail without reaching the platform. Only
    // fresh dispatches are gated; an attempt already parked in an admission
    // queue is a continuation, not a new dispatch.
    if (breaker_on && !at.queued &&
        !breaker_for(r.function_id).AllowDispatch(at.arrival)) {
      ++result.attempts;
      ++result.failed_attempts;
      ++result.circuit_open_attempts;
      bill_unexecuted(at, Outcome::kCircuitOpen, at.arrival);
      handle_failure(at, at.arrival, /*retryable=*/true);
      continue;
    }

    auto& pool = pools[r.function_id];
    // Sweep idle sandboxes for host deaths, then reuse the most recently
    // freed idle unexpired survivor.
    LiveSandbox* reuse = nullptr;
    for (auto& sb : pool) {
      if (sb.dead || sb.available_at > at.arrival) {
        continue;
      }
      if (hosts_on && sb.host >= 0) {
        const MicroSecs idle_upto =
            std::min(at.arrival, sb.available_at + config.keepalive);
        if (auto ev = host_faults.FirstFailureIn(sb.host, sb.available_at, idle_upto)) {
          // Died while idle: a drain of an idle sandbox retires it at once.
          SandboxSpan& span = result.spans[sb.span_index];
          span.idle += ev->time - sb.available_at;
          span.destroyed_at = ev->time;
          sb.dead = true;
          ++result.host_fault_sandbox_kills;
          continue;
        }
      }
      if (at.arrival - sb.available_at <= config.keepalive &&
          (reuse == nullptr || sb.available_at > reuse->available_at)) {
        reuse = &sb;
      }
    }

    // Per-function sandbox cap: no warm sandbox and no room to scale out
    // means queueing (admission control), shedding, or plain rejection.
    if (reuse == nullptr && cap > 0) {
      int busy = 0;
      MicroSecs next_free = std::numeric_limits<MicroSecs>::max();
      for (const auto& sb : pool) {
        if (!sb.dead && sb.available_at > at.arrival) {
          ++busy;
          next_free = std::min(next_free, sb.available_at);
        }
      }
      if (busy >= cap) {
        if (!config.admission.enabled) {
          // A cap without a queue is the classic 429 at capacity.
          ++result.attempts;
          ++result.failed_attempts;
          ++result.rejected_attempts;
          bill_unexecuted(at, Outcome::kRejected, at.arrival);
          if (breaker_on) {
            breaker_for(r.function_id).RecordFailure(at.arrival);
          }
          handle_failure(at, at.arrival, config.retry.retry_rejected);
          continue;
        }
        int& waiting = queue_waiting[r.function_id];
        if (!at.queued) {
          if (waiting >= config.admission.queue_depth) {
            // Full queue: shed the newcomer. The fleet model is tail-drop
            // only; reject-oldest lives in the event-driven PlatformSim.
            ++result.attempts;
            ++result.failed_attempts;
            ++result.rejected_attempts;
            bill_unexecuted(at, Outcome::kRejected, at.arrival);
            if (breaker_on) {
              breaker_for(r.function_id).RecordFailure(at.arrival);
            }
            handle_failure(at, at.arrival, config.retry.retry_rejected);
            continue;
          }
          ++waiting;
          ++waiting_now;
          ++result.queued_attempts;
          at.queued = true;
          at.queued_since = at.arrival;
          at.ticket = next_seq++;
        }
        const MicroSecs deadline = config.admission.queue_timeout > 0
                                       ? at.queued_since + config.admission.queue_timeout
                                       : std::numeric_limits<MicroSecs>::max();
        if (next_free > deadline) {
          // No sandbox frees before the queue timeout: fail at the deadline.
          --waiting;
          --waiting_now;
          ++result.attempts;
          ++result.failed_attempts;
          ++result.queue_timeout_attempts;
          result.queue_wait_seconds += MicrosToSecs(deadline - at.queued_since);
          bill_unexecuted(at, Outcome::kTimeout, deadline);
          if (breaker_on) {
            breaker_for(r.function_id).RecordFailure(deadline);
          }
          handle_failure(at, deadline, /*retryable=*/true);
          continue;
        }
        // Wait for the earliest sandbox to free. Re-queuing under the
        // original ticket keeps the queue FIFO across wake-ups.
        PendingAttempt parked = at;
        parked.arrival = next_free;
        parked.seq = at.ticket;
        pending.push(parked);
        continue;
      }
    }

    // Dispatching now; leave the admission queue if we were parked in it.
    if (at.queued) {
      --queue_waiting[r.function_id];
      --waiting_now;
      result.queue_wait_seconds += MicrosToSecs(at.arrival - at.queued_since);
      if (sink != nullptr) {
        Span sp;
        sp.kind = SpanKind::kQueueWait;
        sp.group = kTrackGroupFleetFunction;
        sp.track = r.function_id;
        sp.start = at.queued_since;
        sp.duration = at.arrival - at.queued_since;
        sp.req_idx = static_cast<int32_t>(at.trace_idx);
        sp.attempt = at.attempt;
        sink->Record(sp);
      }
    }
    ++result.attempts;

    // Sample this attempt's fate. Crashes abort at a uniform point of the
    // execution; anything running past the platform timeout is cut there.
    double p = config.failure_rate;
    if (config.use_trace_failure_rates && r.failure_rate > 0.0) {
      p = r.failure_rate;
    }
    Outcome oc = Outcome::kOk;
    MicroSecs effective = r.exec_duration;
    if (p > 0.0 && fault_rng.Bernoulli(p)) {
      oc = Outcome::kCrash;
      effective = std::max<MicroSecs>(
          1, static_cast<MicroSecs>(static_cast<double>(r.exec_duration) *
                                    (1.0 - fault_rng.NextDouble())));
    }
    if (config.max_exec_duration > 0 && effective > config.max_exec_duration) {
      oc = Outcome::kTimeout;
      effective = config.max_exec_duration;
    }

    const bool cold = (reuse == nullptr);
    const MicroSecs init = cold ? config.init_duration : 0;
    int host = -1;
    if (hosts_on) {
      host = cold ? host_faults.PickHost(at.arrival) : reuse->host;
    }
    const MicroSecs body_start = at.arrival + init;
    MicroSecs end = body_start + effective;
    MicroSecs init_billed = init;
    bool host_kills_sandbox = false;
    if (hosts_on && host >= 0) {
      if (auto ev = host_faults.FirstFailureIn(host, at.arrival, end)) {
        // The host goes away while we run. A graceful drain grants the
        // deadline to finish; an abrupt crash (or a blown deadline) kills
        // the attempt where the host died. Either way the sandbox is gone.
        const MicroSecs kill = ev->graceful ? ev->time + drain : ev->time;
        host_kills_sandbox = true;
        ++result.host_fault_sandbox_kills;
        if (kill < end) {
          ++result.host_fault_attempt_kills;
          end = kill;
          if (kill < body_start) {
            oc = Outcome::kInitFailure;  // Died before init completed.
            init_billed = kill - at.arrival;
            effective = 0;
          } else {
            oc = Outcome::kCrash;
            effective = kill - body_start;
          }
        } else if (ev->graceful) {
          ++result.drain_survivals;  // Finished inside the drain window.
        }
      }
    }

    if (!cold) {
      SandboxSpan& span = result.spans[reuse->span_index];
      span.idle += at.arrival - reuse->available_at;
      span.busy += effective;
      ++span.requests;
      reuse->available_at = end;
      if (oc == Outcome::kCrash || host_kills_sandbox) {
        // Process death or host loss: no KA linger.
        reuse->dead = true;
        span.destroyed_at = end;
      }
    } else {
      SandboxSpan span;
      span.function_id = r.function_id;
      span.vcpus = r.alloc_vcpus;
      span.mem_mb = r.alloc_mem_mb;
      span.created_at = at.arrival;
      span.busy = init_billed + effective;
      span.requests = 1;
      span.host = host;
      LiveSandbox sb;
      sb.available_at = end;
      sb.span_index = result.spans.size();
      sb.host = host;
      if (oc == Outcome::kCrash || oc == Outcome::kInitFailure || host_kills_sandbox) {
        sb.dead = true;
        span.destroyed_at = end;
      }
      result.spans.push_back(span);
      pool.push_back(sb);
      ++result.cold_starts;
    }

    // Bill the attempt under the platform's failure rules.
    RequestRecord billed = Billed(r, cold, config);
    billed.outcome = oc;
    billed.attempt = at.attempt;
    if (oc != Outcome::kOk) {
      billed.exec_duration = effective;
      billed.cpu_time = r.exec_duration > 0
                            ? static_cast<MicroSecs>(
                                  static_cast<double>(r.cpu_time) *
                                  static_cast<double>(effective) /
                                  static_cast<double>(r.exec_duration))
                            : r.cpu_time;
    }
    if (oc == Outcome::kInitFailure) {
      billed.init_duration = init_billed;  // Only the partial init ran.
    }
    const Invoice inv = ComputeInvoice(billing, billed);
    result.revenue += inv.total;
    result.fee_revenue += inv.invocation_cost;

    if (sink != nullptr) {
      const size_t used_span = cold ? result.spans.size() - 1 : reuse->span_index;
      if (cold && init_billed > 0) {
        Span in;
        in.kind = SpanKind::kInit;
        in.group = kTrackGroupFleetSandbox;
        in.track = static_cast<int64_t>(used_span);
        in.start = at.arrival;
        in.duration = init_billed;
        in.req_idx = static_cast<int32_t>(at.trace_idx);
        in.attempt = at.attempt;
        in.sandbox_id = static_cast<int32_t>(used_span);
        in.cold = true;
        if (oc == Outcome::kInitFailure) {
          in.status = OutcomeName(oc);
        }
        sink->Record(in);
      }
      Span ex;
      ex.kind = SpanKind::kExec;
      ex.group = kTrackGroupFleetFunction;
      ex.track = r.function_id;
      ex.start = at.arrival;
      ex.duration = end - at.arrival;
      ex.req_idx = static_cast<int32_t>(at.trace_idx);
      ex.attempt = at.attempt;
      ex.sandbox_id = static_cast<int32_t>(used_span);
      ex.ref = static_cast<int64_t>(used_span);
      ex.status = OutcomeName(oc);
      ex.cold = cold;
      ex.terminal = true;
      ex.billed_micros = inv.billable_time;
      ex.billed_usd = inv.total;
      sink->Record(ex);
    }

    if (oc == Outcome::kOk) {
      if (breaker_on) {
        breaker_for(r.function_id).RecordSuccess();
      }
      resolve_terminal(at, end, true);
    } else {
      ++result.failed_attempts;
      if (oc == Outcome::kCrash) {
        ++result.crash_attempts;
      } else if (oc == Outcome::kTimeout) {
        ++result.timeout_attempts;
      } else {
        ++result.init_failure_attempts;
      }
      if (breaker_on) {
        breaker_for(r.function_id).RecordFailure(end);
      }
      handle_failure(at, end, /*retryable=*/true);
    }
  }

  // Close every surviving sandbox: it lingers one keep-alive window past its
  // last use (crashed sandboxes were destroyed on the spot), unless its host
  // dies mid-linger first.
  // Iterate pools in sorted key order: the hash-map order must never be
  // observable, and this loop touches spans that feed serialized artifacts.
  std::vector<int64_t> pool_fids;
  pool_fids.reserve(pools.size());
  for (const auto& [fid, pool] : pools) {
    pool_fids.push_back(fid);
  }
  std::sort(pool_fids.begin(), pool_fids.end());
  for (const int64_t fid : pool_fids) {
    for (const auto& sb : pools[fid]) {
      if (sb.dead) {
        continue;
      }
      SandboxSpan& span = result.spans[sb.span_index];
      if (hosts_on && sb.host >= 0) {
        if (auto ev = host_faults.FirstFailureIn(sb.host, sb.available_at,
                                                 sb.available_at + config.keepalive)) {
          span.idle += ev->time - sb.available_at;
          span.destroyed_at = ev->time;
          ++result.host_fault_sandbox_kills;
          continue;
        }
      }
      span.idle += config.keepalive;
      span.destroyed_at = sb.available_at + config.keepalive;
    }
  }
  // A commutative sum today, but iterate deterministically anyway so a
  // future non-commutative use cannot silently inherit hash-map order.
  std::vector<int64_t> breaker_fids;
  breaker_fids.reserve(breakers.size());
  for (const auto& [fid, cb] : breakers) {
    breaker_fids.push_back(fid);
  }
  std::sort(breaker_fids.begin(), breaker_fids.end());
  for (const int64_t fid : breaker_fids) {
    result.breaker_trips += breakers.at(fid).trips();
  }
  if (sink != nullptr) {
    for (size_t i = 0; i < result.spans.size(); ++i) {
      const SandboxSpan& span = result.spans[i];
      Span sp;
      sp.kind = SpanKind::kSandboxLife;
      sp.group = kTrackGroupFleetSandbox;
      sp.track = static_cast<int64_t>(i);
      sp.start = span.created_at;
      sp.duration = span.destroyed_at - span.created_at;
      sp.sandbox_id = static_cast<int32_t>(i);
      sp.ref = static_cast<int64_t>(i);
      sink->Record(sp);
    }
  }
  if (metrics != nullptr) {
    sample_metrics_until(next_sample);  // Final row with the closing totals.
  }

  result.sandboxes = static_cast<int64_t>(result.spans.size());
  for (const auto& span : result.spans) {
    result.sandbox_seconds += MicrosToSecs(span.destroyed_at - span.created_at);
    result.busy_seconds += MicrosToSecs(span.busy);
    result.idle_seconds += MicrosToSecs(span.idle);
    const Usd rate = SpanRate(span, config);
    result.hardware_cost += rate * MicrosToSecs(span.busy) +
                            rate * config.ka_cost_share * MicrosToSecs(span.idle);
  }
  if (result.revenue > 0.0) {
    result.margin = (result.revenue - result.hardware_cost) / result.revenue;
  }

  // Pack the sandbox spans onto servers to find the fleet high-water mark.
  struct Event {
    MicroSecs time;
    bool create;
    size_t span;
  };
  std::vector<Event> events;
  events.reserve(result.spans.size() * 2);
  for (size_t i = 0; i < result.spans.size(); ++i) {
    events.push_back({result.spans[i].created_at, true, i});
    events.push_back({result.spans[i].destroyed_at, false, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.create < b.create;  // Process destroys before creates at ties.
  });
  ClusterPlacer placer(config.server, config.placement);
  std::vector<Placement> tickets(result.spans.size());
  for (const auto& ev : events) {
    const SandboxSpan& span = result.spans[ev.span];
    if (ev.create) {
      tickets[ev.span] = placer.Place({span.vcpus, span.mem_mb});
      result.peak_servers = std::max(result.peak_servers, placer.active_server_count());
    } else {
      placer.Release(tickets[ev.span]);
    }
  }
  return result;
}

std::vector<EconomicsBucket> BucketEconomics(const FleetResult& result,
                                             const std::vector<RequestRecord>& trace,
                                             const BillingModel& billing,
                                             const FleetSimConfig& config, int buckets) {
  // Bucket counts arrive from CLI flags and bench parameters; validate in
  // every build type (the default build defines NDEBUG).
  if (buckets <= 0) {
    throw std::invalid_argument("BucketEconomics: buckets must be > 0, got " +
                                std::to_string(buckets));
  }
  struct FnAgg {
    int64_t requests = 0;
    Usd revenue = 0.0;
    Usd cost = 0.0;
    int64_t cold = 0;
  };
  std::unordered_map<int64_t, FnAgg> per_fn;

  // Cost and cold starts from the spans.
  for (const auto& span : result.spans) {
    FnAgg& agg = per_fn[span.function_id];
    const Usd rate = SpanRate(span, config);
    agg.cost += rate * MicrosToSecs(span.busy) +
                rate * config.ka_cost_share * MicrosToSecs(span.idle);
    ++agg.cold;
  }
  // Revenue approximated per request with warm billing plus the per-span
  // cold-start surcharge (exact enough for bucketing).
  for (const auto& r : trace) {
    FnAgg& agg = per_fn[r.function_id];
    ++agg.requests;
    RequestRecord warm = r;
    warm.cold_start = false;
    warm.init_duration = 0;
    agg.revenue += ComputeInvoice(billing, warm).total;
  }
  if (billing.billable_time == BillableTime::kTurnaround) {
    for (const auto& span : result.spans) {
      FnAgg& agg = per_fn[span.function_id];
      // The init duration billed at the sandbox's allocation rate.
      RequestRecord init_only;
      init_only.exec_duration = 0;
      init_only.cpu_time = 0;
      init_only.init_duration = config.init_duration;
      init_only.cold_start = true;
      init_only.alloc_vcpus = span.vcpus;
      init_only.alloc_mem_mb = span.mem_mb;
      agg.revenue += ComputeInvoice(billing, init_only).resource_cost;
    }
  }

  std::vector<std::pair<int64_t, FnAgg>> sorted(per_fn.begin(), per_fn.end());
  // Tie-break on function id: without it, functions with equal request
  // counts would keep their unordered_map order, and the bucket boundaries
  // (and the serialized economics table) would depend on the hash seed.
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.requests != b.second.requests) {
      return a.second.requests > b.second.requests;
    }
    return a.first < b.first;
  });

  std::vector<EconomicsBucket> out(static_cast<size_t>(buckets));
  for (size_t i = 0; i < sorted.size(); ++i) {
    const size_t b = i * static_cast<size_t>(buckets) / sorted.size();
    EconomicsBucket& bucket = out[b];
    ++bucket.functions;
    bucket.requests += sorted[i].second.requests;
    bucket.revenue += sorted[i].second.revenue;
    bucket.hardware_cost += sorted[i].second.cost;
    bucket.cold_start_rate += static_cast<double>(sorted[i].second.cold);
  }
  for (auto& bucket : out) {
    if (bucket.requests > 0) {
      bucket.cold_start_rate /= static_cast<double>(bucket.requests);
    }
  }
  return out;
}

}  // namespace faascost
