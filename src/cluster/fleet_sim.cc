#include "src/cluster/fleet_sim.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace faascost {

namespace {

// A function's live sandbox (single-concurrency: busy until available_at).
struct LiveSandbox {
  MicroSecs available_at = 0;
  size_t span_index = 0;
};

Usd SpanRate(const SandboxSpan& span, const FleetSimConfig& cfg) {
  return cfg.hardware_per_vcpu_second * span.vcpus +
         cfg.hardware_per_gb_second * MbToGb(span.mem_mb);
}

RequestRecord Billed(const RequestRecord& r, bool cold, const FleetSimConfig& cfg) {
  RequestRecord out = r;
  out.cold_start = cold;
  out.init_duration = cold ? cfg.init_duration : 0;
  return out;
}

}  // namespace

FleetResult SimulateFleet(const std::vector<RequestRecord>& trace,
                          const BillingModel& billing, const FleetSimConfig& config) {
  FleetResult result;
  result.requests = static_cast<int64_t>(trace.size());

  // Per-function sandbox pools, fed in global arrival order.
  std::unordered_map<int64_t, std::vector<LiveSandbox>> pools;
  for (const auto& r : trace) {
    assert(r.exec_duration >= 0);
    auto& pool = pools[r.function_id];
    // Reuse the most recently freed sandbox that is idle and unexpired.
    LiveSandbox* reuse = nullptr;
    for (auto& sb : pool) {
      if (sb.available_at <= r.arrival &&
          r.arrival - sb.available_at <= config.keepalive) {
        if (reuse == nullptr || sb.available_at > reuse->available_at) {
          reuse = &sb;
        }
      }
    }
    if (reuse != nullptr) {
      SandboxSpan& span = result.spans[reuse->span_index];
      span.idle += r.arrival - reuse->available_at;
      span.busy += r.exec_duration;
      ++span.requests;
      reuse->available_at = r.arrival + r.exec_duration;
      result.revenue += ComputeInvoice(billing, Billed(r, false, config)).total;
      result.fee_revenue += billing.invocation_fee;
    } else {
      SandboxSpan span;
      span.function_id = r.function_id;
      span.vcpus = r.alloc_vcpus;
      span.mem_mb = r.alloc_mem_mb;
      span.created_at = r.arrival;
      span.busy = config.init_duration + r.exec_duration;
      span.requests = 1;
      result.spans.push_back(span);
      LiveSandbox sb;
      sb.available_at = r.arrival + config.init_duration + r.exec_duration;
      sb.span_index = result.spans.size() - 1;
      pool.push_back(sb);
      ++result.cold_starts;
      result.revenue += ComputeInvoice(billing, Billed(r, true, config)).total;
      result.fee_revenue += billing.invocation_fee;
    }
  }

  // Close every sandbox: it lingers one keep-alive window past its last use.
  for (auto& [fid, pool] : pools) {
    for (const auto& sb : pool) {
      SandboxSpan& span = result.spans[sb.span_index];
      span.idle += config.keepalive;
      span.destroyed_at = sb.available_at + config.keepalive;
    }
  }

  result.sandboxes = static_cast<int64_t>(result.spans.size());
  for (const auto& span : result.spans) {
    result.sandbox_seconds += MicrosToSecs(span.destroyed_at - span.created_at);
    result.busy_seconds += MicrosToSecs(span.busy);
    result.idle_seconds += MicrosToSecs(span.idle);
    const Usd rate = SpanRate(span, config);
    result.hardware_cost += rate * MicrosToSecs(span.busy) +
                            rate * config.ka_cost_share * MicrosToSecs(span.idle);
  }
  if (result.revenue > 0.0) {
    result.margin = (result.revenue - result.hardware_cost) / result.revenue;
  }

  // Pack the sandbox spans onto servers to find the fleet high-water mark.
  struct Event {
    MicroSecs time;
    bool create;
    size_t span;
  };
  std::vector<Event> events;
  events.reserve(result.spans.size() * 2);
  for (size_t i = 0; i < result.spans.size(); ++i) {
    events.push_back({result.spans[i].created_at, true, i});
    events.push_back({result.spans[i].destroyed_at, false, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.create < b.create;  // Process destroys before creates at ties.
  });
  ClusterPlacer placer(config.server, config.placement);
  std::vector<Placement> tickets(result.spans.size());
  for (const auto& ev : events) {
    const SandboxSpan& span = result.spans[ev.span];
    if (ev.create) {
      tickets[ev.span] = placer.Place({span.vcpus, span.mem_mb});
      result.peak_servers = std::max(result.peak_servers, placer.active_server_count());
    } else {
      placer.Release(tickets[ev.span]);
    }
  }
  return result;
}

std::vector<EconomicsBucket> BucketEconomics(const FleetResult& result,
                                             const std::vector<RequestRecord>& trace,
                                             const BillingModel& billing,
                                             const FleetSimConfig& config, int buckets) {
  assert(buckets > 0);
  struct FnAgg {
    int64_t requests = 0;
    Usd revenue = 0.0;
    Usd cost = 0.0;
    int64_t cold = 0;
  };
  std::unordered_map<int64_t, FnAgg> per_fn;

  // Cost and cold starts from the spans.
  for (const auto& span : result.spans) {
    FnAgg& agg = per_fn[span.function_id];
    const Usd rate = SpanRate(span, config);
    agg.cost += rate * MicrosToSecs(span.busy) +
                rate * config.ka_cost_share * MicrosToSecs(span.idle);
    ++agg.cold;
  }
  // Revenue approximated per request with warm billing plus the per-span
  // cold-start surcharge (exact enough for bucketing).
  for (const auto& r : trace) {
    FnAgg& agg = per_fn[r.function_id];
    ++agg.requests;
    RequestRecord warm = r;
    warm.cold_start = false;
    warm.init_duration = 0;
    agg.revenue += ComputeInvoice(billing, warm).total;
  }
  if (billing.billable_time == BillableTime::kTurnaround) {
    for (const auto& span : result.spans) {
      FnAgg& agg = per_fn[span.function_id];
      // The init duration billed at the sandbox's allocation rate.
      RequestRecord init_only;
      init_only.exec_duration = 0;
      init_only.cpu_time = 0;
      init_only.init_duration = config.init_duration;
      init_only.cold_start = true;
      init_only.alloc_vcpus = span.vcpus;
      init_only.alloc_mem_mb = span.mem_mb;
      agg.revenue += ComputeInvoice(billing, init_only).resource_cost;
    }
  }

  std::vector<std::pair<int64_t, FnAgg>> sorted(per_fn.begin(), per_fn.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.requests > b.second.requests;
  });

  std::vector<EconomicsBucket> out(static_cast<size_t>(buckets));
  for (size_t i = 0; i < sorted.size(); ++i) {
    const size_t b = i * static_cast<size_t>(buckets) / sorted.size();
    EconomicsBucket& bucket = out[b];
    ++bucket.functions;
    bucket.requests += sorted[i].second.requests;
    bucket.revenue += sorted[i].second.revenue;
    bucket.hardware_cost += sorted[i].second.cost;
    bucket.cold_start_rate += static_cast<double>(sorted[i].second.cold);
  }
  for (auto& bucket : out) {
    if (bucket.requests > 0) {
      bucket.cold_start_rate /= static_cast<double>(bucket.requests);
    }
  }
  return out;
}

}  // namespace faascost
