#include "src/cluster/host_faults.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace faascost {

namespace {

// Sentinel for "this stream generates nothing further".
constexpr MicroSecs kNever = std::numeric_limits<MicroSecs>::max() / 2;

MicroSecs SecsToMicrosClamped(double seconds) {
  const double micros = seconds * static_cast<double>(kMicrosPerSec);
  if (micros >= static_cast<double>(kNever)) {
    return kNever;
  }
  return static_cast<MicroSecs>(micros);
}

}  // namespace

std::vector<std::string> HostFaultModelConfig::Validate() const {
  std::vector<std::string> errors;
  if (hosts < 0) {
    errors.push_back("hosts must be >= 0 (0 disables host faults), got " +
                     std::to_string(hosts));
  }
  if (mtbf_seconds < 0.0 || std::isnan(mtbf_seconds)) {
    errors.push_back("mtbf_seconds must be >= 0 (0 = hosts never crash), got " +
                     std::to_string(mtbf_seconds));
  }
  if (mttr_seconds < 0.0 || std::isnan(mttr_seconds)) {
    errors.push_back("mttr_seconds must be >= 0, got " + std::to_string(mttr_seconds));
  }
  if (zones < 1) {
    errors.push_back("zones must be >= 1 (hosts are striped across zones), got " +
                     std::to_string(zones));
  }
  if (zone_outage_mtbf_seconds < 0.0 || std::isnan(zone_outage_mtbf_seconds)) {
    errors.push_back("zone_outage_mtbf_seconds must be >= 0 (0 = no outages), got " +
                     std::to_string(zone_outage_mtbf_seconds));
  }
  if (graceful_fraction < 0.0 || graceful_fraction > 1.0 ||
      std::isnan(graceful_fraction)) {
    errors.push_back("graceful_fraction must be in [0, 1], got " +
                     std::to_string(graceful_fraction));
  }
  if (drain_deadline < 0) {
    errors.push_back("drain_deadline must be >= 0 (0 = drains kill immediately), got " +
                     std::to_string(drain_deadline));
  }
  if (enabled() && mtbf_seconds > 0.0 && mtbf_seconds <= mttr_seconds) {
    errors.push_back(
        "mtbf_seconds must exceed mttr_seconds (a host cannot spend more time "
        "failed than alive): mtbf=" +
        std::to_string(mtbf_seconds) + ", mttr=" + std::to_string(mttr_seconds));
  }
  return errors;
}

HostFaultModel::HostFaultModel(const HostFaultModelConfig& config, uint64_t seed)
    : config_(config), seed_(seed), zone_rng_(DeriveSeed(seed, kHostFaultStream)) {
  if (config_.enabled()) {
    hosts_.reserve(static_cast<size_t>(config_.hosts));
    for (int h = 0; h < config_.hosts; ++h) {
      hosts_.emplace_back(DeriveSeed(seed_, kHostStreamBase + static_cast<uint64_t>(h)));
    }
  }
}

void HostFaultModel::ExtendHostSchedule(int host, MicroSecs t) {
  HostStream& hs = hosts_[static_cast<size_t>(host)];
  if (config_.mtbf_seconds <= 0.0) {
    hs.generated_until = kNever;
    return;
  }
  const double rate_per_us =
      1.0 / (config_.mtbf_seconds * static_cast<double>(kMicrosPerSec));
  const MicroSecs mttr = SecsToMicrosClamped(config_.mttr_seconds);
  while (hs.generated_until <= t) {
    const MicroSecs gap =
        std::max<MicroSecs>(1, static_cast<MicroSecs>(hs.rng.Exponential(rate_per_us)));
    const MicroSecs when = hs.generated_until + gap;
    HostFailureEvent ev;
    ev.time = when;
    if (config_.graceful_fraction > 0.0) {
      ev.graceful = hs.rng.Bernoulli(config_.graceful_fraction);
    }
    hs.events.push_back(ev);
    // The host is in repair until `when + mttr`; its next crash clock starts
    // only once the replacement is up.
    hs.generated_until = when >= kNever - mttr ? kNever : when + mttr;
  }
}

void HostFaultModel::ExtendZoneSchedule(MicroSecs t) {
  if (config_.zone_outage_mtbf_seconds <= 0.0) {
    zones_generated_until_ = kNever;
    return;
  }
  const double rate_per_us =
      1.0 / (config_.zone_outage_mtbf_seconds * static_cast<double>(kMicrosPerSec));
  while (zones_generated_until_ <= t) {
    const MicroSecs gap = std::max<MicroSecs>(
        1, static_cast<MicroSecs>(zone_rng_.Exponential(rate_per_us)));
    const MicroSecs when = zones_generated_until_ + gap;
    ZoneOutage outage;
    outage.time = when;
    outage.zone = static_cast<int>(zone_rng_.UniformInt(0, config_.zones - 1));
    zone_outages_.push_back(outage);
    zones_generated_until_ = when;
  }
}

std::optional<HostFailureEvent> HostFaultModel::FirstFailureIn(int host, MicroSecs after,
                                                               MicroSecs upto) {
  if (!config_.enabled() || upto <= after) {
    return std::nullopt;
  }
  ExtendHostSchedule(host, upto);
  ExtendZoneSchedule(upto);
  std::optional<HostFailureEvent> best;
  const auto& own = hosts_[static_cast<size_t>(host)].events;
  const auto it = std::upper_bound(
      own.begin(), own.end(), after,
      [](MicroSecs t, const HostFailureEvent& e) { return t < e.time; });
  if (it != own.end() && it->time <= upto) {
    best = *it;
  }
  const int zone = host % config_.zones;
  for (const ZoneOutage& outage : zone_outages_) {
    if (outage.time > upto || (best.has_value() && outage.time >= best->time)) {
      break;  // Sorted by time; nothing earlier can follow.
    }
    if (outage.time > after && outage.zone == zone) {
      best = HostFailureEvent{outage.time, /*graceful=*/false};
      break;
    }
  }
  return best;
}

bool HostFaultModel::IsDown(int host, MicroSecs t) {
  if (!config_.enabled()) {
    return false;
  }
  ExtendHostSchedule(host, t);
  ExtendZoneSchedule(t);
  const MicroSecs mttr = SecsToMicrosClamped(config_.mttr_seconds);
  const auto& own = hosts_[static_cast<size_t>(host)].events;
  for (auto it = own.rbegin(); it != own.rend(); ++it) {
    if (it->time <= t) {
      if (t < it->time + mttr) {
        return true;
      }
      break;
    }
  }
  const int zone = host % config_.zones;
  for (auto it = zone_outages_.rbegin(); it != zone_outages_.rend(); ++it) {
    if (it->time <= t) {
      if (it->zone == zone && t < it->time + mttr) {
        return true;
      }
      if (it->time + mttr <= t) {
        break;  // Older outages cannot still be in repair either.
      }
    }
  }
  return false;
}

int HostFaultModel::PickHost(MicroSecs t) {
  if (!config_.enabled() || config_.hosts <= 0) {
    return 0;
  }
  for (int i = 0; i < config_.hosts; ++i) {
    const int h = (next_host_ + i) % config_.hosts;
    if (!IsDown(h, t)) {
      next_host_ = (h + 1) % config_.hosts;
      return h;
    }
  }
  // Every host is down: round-robin anyway (the sandbox dies at once, which
  // is the honest outcome of scheduling into a fully-failed fleet).
  const int h = next_host_;
  next_host_ = (next_host_ + 1) % config_.hosts;
  return h;
}

uint64_t HostFaultModel::TotalRngDraws() const {
  uint64_t draws = zone_rng_.draw_count();
  for (const HostStream& hs : hosts_) {
    draws += hs.rng.draw_count();
  }
  return draws;
}

}  // namespace faascost
