// Fleet-level host failure model: seeded, deterministic host crashes with
// MTTR-based replacement, optional correlated zone-wide outages, and a
// graceful-drain fraction (planned host retirement).
//
// Hosts here are *fault domains*: every sandbox is pinned to one logical
// host at creation, and a host failure takes every resident sandbox down
// with it — in-flight requests fail (Outcome::kCrash / kInitFailure), idle
// sandboxes vanish, and the function's next arrivals stampede into cold
// starts. Capacity packing (`ClusterPlacer`) stays a separate concern; the
// fault domains are the unit of correlated loss, not of bin-packing.
//
// Determinism contract: every host draws from its own RNG stream derived
// with `DeriveSeed(seed, kHostStreamBase + host)`, and the zone-outage
// stream from `DeriveSeed(seed, kHostFaultStream)`, so the failure schedule
// is a pure function of (config, seed) regardless of query order. A
// disabled model generates nothing and consumes no randomness, keeping
// zero-chaos fleet runs bit-identical to the fault-free simulator.

#ifndef FAASCOST_CLUSTER_HOST_FAULTS_H_
#define FAASCOST_CLUSTER_HOST_FAULTS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace faascost {

struct HostFaultModelConfig {
  // Number of logical fault domains sandboxes are spread across. 0 disables
  // host-failure modeling entirely (no streams are ever created).
  int hosts = 0;
  // Per-host mean time between crashes, exponential inter-arrivals. 0 = a
  // host never crashes on its own.
  double mtbf_seconds = 0.0;
  // Mean time to repair: a failed host rejoins (as a fresh host) this long
  // after each failure; new sandboxes avoid hosts that are down.
  double mttr_seconds = 120.0;
  // Hosts are striped round-robin across this many zones (host h lives in
  // zone h % zones); a zone outage fails every host in the zone at once.
  int zones = 1;
  // Mean time between whole-zone outages across the fleet. 0 = never.
  double zone_outage_mtbf_seconds = 0.0;
  // Fraction of host failures that are graceful drains (planned
  // replacement): resident sandboxes refuse new admissions and get
  // `drain_deadline` to finish in-flight work before the host goes away.
  // Zone outages are always abrupt (that is what makes them outages).
  double graceful_fraction = 0.0;
  // Drain budget for graceful host retirement.
  MicroSecs drain_deadline = 10LL * kMicrosPerSec;

  // True when the model can produce any failure event.
  bool enabled() const {
    return hosts > 0 && (mtbf_seconds > 0.0 || zone_outage_mtbf_seconds > 0.0);
  }
  // Human-readable config errors; empty when valid.
  std::vector<std::string> Validate() const;
};

// One host-loss event as seen by a resident sandbox.
struct HostFailureEvent {
  MicroSecs time = 0;
  bool graceful = false;  // Drain (deadline applies) vs abrupt crash.
};

// Deterministic, lazily generated host-failure schedule. All queries only
// ever *read* forward in each stream and cache what they generate, so any
// query order yields the same schedule.
class HostFaultModel {
 public:
  HostFaultModel(const HostFaultModelConfig& config, uint64_t seed);

  // Earliest failure of `host` (own crash or its zone's outage) in the
  // half-open window (after, upto]; nullopt when the host survives it.
  std::optional<HostFailureEvent> FirstFailureIn(int host, MicroSecs after,
                                                 MicroSecs upto);

  // Round-robin host choice for a new sandbox at `t`, skipping hosts that
  // are down (within MTTR of a failure). Falls back to plain round-robin
  // when every host is down.
  int PickHost(MicroSecs t);

  // Whether `host` is inside the repair window of a failure at `t`.
  bool IsDown(int host, MicroSecs t);

  const HostFaultModelConfig& config() const { return config_; }

  // Total draws across the zone stream and every host stream, for engine
  // flight-recorder accounting (telemetry only, not checkpointed state).
  uint64_t TotalRngDraws() const;

  // Checkpoint support. The failure schedules are pure functions of
  // (config, seed) and regenerate lazily after a restore; the round-robin
  // placement cursor is the model's only order-dependent state.
  int next_host() const { return next_host_; }
  void set_next_host(int h) { next_host_ = h; }

 private:
  // Extends a host's own-crash schedule until it covers time `t`.
  void ExtendHostSchedule(int host, MicroSecs t);
  // Extends the zone-outage schedule until it covers time `t`.
  void ExtendZoneSchedule(MicroSecs t);

  struct HostStream {
    Rng rng;
    std::vector<HostFailureEvent> events;  // Sorted by time.
    MicroSecs generated_until = 0;
    explicit HostStream(uint64_t seed) : rng(seed) {}
  };

  struct ZoneOutage {
    MicroSecs time = 0;
    int zone = 0;
  };

  HostFaultModelConfig config_;
  uint64_t seed_ = 0;
  std::vector<HostStream> hosts_;
  Rng zone_rng_;
  std::vector<ZoneOutage> zone_outages_;  // Sorted by time.
  MicroSecs zones_generated_until_ = 0;
  int next_host_ = 0;  // Round-robin cursor for PickHost.
};

}  // namespace faascost

#endif  // FAASCOST_CLUSTER_HOST_FAULTS_H_
