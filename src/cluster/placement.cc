#include "src/cluster/placement.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace faascost {

const char* PlacementPolicyName(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kFirstFit:
      return "first-fit";
    case PlacementPolicy::kBestFit:
      return "best-fit";
    case PlacementPolicy::kWorstFit:
      return "worst-fit";
  }
  return "unknown";
}

ClusterPlacer::ClusterPlacer(ServerSpec server, PlacementPolicy policy)
    : spec_(server), policy_(policy) {
  assert(spec_.vcpus > 0.0);
  assert(spec_.mem_mb > 0.0);
}

bool ClusterPlacer::Fits(const Server& s, const SandboxDemand& d) const {
  return s.cpu_used + d.vcpus <= spec_.vcpus + 1e-9 &&
         s.mem_used + d.mem_mb <= spec_.mem_mb + 1e-6;
}

double ClusterPlacer::RemainingScore(const Server& s) const {
  // Normalized remaining capacity across both dimensions.
  return (spec_.vcpus - s.cpu_used) / spec_.vcpus +
         (spec_.mem_mb - s.mem_used) / spec_.mem_mb;
}

Placement ClusterPlacer::Place(const SandboxDemand& demand) {
  assert(demand.vcpus <= spec_.vcpus && demand.mem_mb <= spec_.mem_mb);
  int chosen = -1;
  double chosen_score = 0.0;
  for (size_t i = 0; i < servers_.size(); ++i) {
    if (!Fits(servers_[i], demand)) {
      continue;
    }
    if (policy_ == PlacementPolicy::kFirstFit) {
      chosen = static_cast<int>(i);
      break;
    }
    const double score = RemainingScore(servers_[i]);
    const bool better = policy_ == PlacementPolicy::kBestFit ? score < chosen_score
                                                             : score > chosen_score;
    if (chosen < 0 || better) {
      chosen = static_cast<int>(i);
      chosen_score = score;
    }
  }
  if (chosen < 0) {
    servers_.push_back({});
    chosen = static_cast<int>(servers_.size()) - 1;
  }
  Server& s = servers_[static_cast<size_t>(chosen)];
  s.cpu_used += demand.vcpus;
  s.mem_used += demand.mem_mb;
  ++s.sandboxes;
  ++sandboxes_;
  return {chosen, demand};
}

void ClusterPlacer::Release(const Placement& placement) {
  assert(placement.server >= 0 &&
         placement.server < static_cast<int>(servers_.size()));
  Server& s = servers_[static_cast<size_t>(placement.server)];
  s.cpu_used = std::max(0.0, s.cpu_used - placement.demand.vcpus);
  s.mem_used = std::max<MegaBytes>(0.0, s.mem_used - placement.demand.mem_mb);
  --s.sandboxes;
  --sandboxes_;
}

int ClusterPlacer::active_server_count() const {
  int n = 0;
  for (const auto& s : servers_) {
    if (s.sandboxes > 0) {
      ++n;
    }
  }
  return n;
}

double ClusterPlacer::CpuUtilization() const {
  double used = 0.0;
  int active = 0;
  for (const auto& s : servers_) {
    if (s.sandboxes > 0) {
      used += s.cpu_used / spec_.vcpus;
      ++active;
    }
  }
  return active > 0 ? used / active : 0.0;
}

double ClusterPlacer::MemUtilization() const {
  double used = 0.0;
  int active = 0;
  for (const auto& s : servers_) {
    if (s.sandboxes > 0) {
      used += s.mem_used / spec_.mem_mb;
      ++active;
    }
  }
  return active > 0 ? used / active : 0.0;
}

double ClusterPlacer::StrandedCpuFraction(double exhaustion_threshold) const {
  // CPU left unusable on servers whose memory is effectively exhausted.
  double stranded = 0.0;
  int active = 0;
  for (const auto& s : servers_) {
    if (s.sandboxes == 0) {
      continue;
    }
    ++active;
    if (s.mem_used / spec_.mem_mb >= exhaustion_threshold) {
      stranded += (spec_.vcpus - s.cpu_used) / spec_.vcpus;
    }
  }
  return active > 0 ? stranded / active : 0.0;
}

double ClusterPlacer::StrandedMemFraction(double exhaustion_threshold) const {
  double stranded = 0.0;
  int active = 0;
  for (const auto& s : servers_) {
    if (s.sandboxes == 0) {
      continue;
    }
    ++active;
    if (s.cpu_used / spec_.vcpus >= exhaustion_threshold) {
      stranded += (spec_.mem_mb - s.mem_used) / spec_.mem_mb;
    }
  }
  return active > 0 ? stranded / active : 0.0;
}

double ClusterPlacer::DeploymentDensity() const {
  const int active = active_server_count();
  return active > 0 ? static_cast<double>(sandboxes_) / active : 0.0;
}

const char* KnobPolicyName(KnobPolicy p) {
  switch (p) {
    case KnobPolicy::kUnconstrained:
      return "unconstrained";
    case KnobPolicy::kRatioBounded:
      return "ratio-bounded (1:1..1:4 vCPU:GB)";
    case KnobPolicy::kProportional:
      return "memory-proportional CPU (1769 MB/vCPU)";
    case KnobPolicy::kFixedCombos:
      return "fixed CPU-memory combos";
  }
  return "unknown";
}

SandboxDemand ApplyKnobPolicy(KnobPolicy policy, const SandboxDemand& raw) {
  SandboxDemand d = raw;
  switch (policy) {
    case KnobPolicy::kUnconstrained:
      return d;
    case KnobPolicy::kRatioBounded: {
      // Alibaba: vCPU:GB within [1:4, 1:1]; round CPU up to 0.05 steps and
      // memory to 64 MB steps, raising whichever side violates the band.
      const double gb = MbToGb(d.mem_mb);
      if (d.vcpus < gb / 4.0) {
        d.vcpus = gb / 4.0;  // Too little CPU for the memory.
      }
      if (gb < d.vcpus) {
        d.mem_mb = d.vcpus * 1024.0;  // Too little memory for the CPU.
      }
      d.vcpus = std::ceil(d.vcpus / 0.05) * 0.05;
      d.mem_mb = std::ceil(d.mem_mb / 64.0) * 64.0;
      return d;
    }
    case KnobPolicy::kProportional: {
      // AWS: memory raised so the proportional CPU covers the demand.
      const MegaBytes needed = d.vcpus * kAwsLambdaMbPerVcpu;
      d.mem_mb = std::max(d.mem_mb, needed);
      d.vcpus = d.mem_mb / kAwsLambdaMbPerVcpu;
      return d;
    }
    case KnobPolicy::kFixedCombos: {
      // Huawei-style ladder; pick the first combo covering both dimensions.
      static const SandboxDemand kCombos[] = {
          {0.3, 512.0}, {0.5, 1024.0}, {1.0, 2048.0}, {2.0, 4096.0}, {4.0, 8192.0},
      };
      for (const auto& combo : kCombos) {
        if (combo.vcpus >= d.vcpus && combo.mem_mb >= d.mem_mb) {
          return combo;
        }
      }
      return kCombos[std::size(kCombos) - 1];
    }
  }
  return d;
}

DensityReport PackAndMeasure(const std::vector<SandboxDemand>& raw_demands,
                             KnobPolicy knob, PlacementPolicy placement,
                             const ServerSpec& server) {
  ClusterPlacer placer(server, placement);
  DensityReport out;
  for (const auto& raw : raw_demands) {
    const SandboxDemand d = ApplyKnobPolicy(knob, raw);
    out.allocated_cpu += d.vcpus;
    out.allocated_mem += d.mem_mb;
    placer.Place(d);
  }
  out.servers = placer.active_server_count();
  out.density = placer.DeploymentDensity();
  out.cpu_util = placer.CpuUtilization();
  out.mem_util = placer.MemUtilization();
  out.stranded_cpu = placer.StrandedCpuFraction();
  out.stranded_mem = placer.StrandedMemFraction();
  return out;
}

}  // namespace faascost
