// Fleet-level serving simulation: an entire trace day across thousands of
// functions, each with its own sandbox pool and keep-alive lifecycle, packed
// onto host servers. This ties the paper's layers together end to end:
// per-request billing (§2) x keep-alive and cold starts (§3.3) x placement
// and deployment density (§2.2) x provider economics ("these costs are
// ultimately passed on to users through per-unit resource pricing or
// invocation fees").
//
// The per-function serving model is the single-concurrency one (a sandbox
// serves one request at a time; concurrent arrivals fan out to more
// sandboxes), with a fixed keep-alive window after each idle period.

#ifndef FAASCOST_CLUSTER_FLEET_SIM_H_
#define FAASCOST_CLUSTER_FLEET_SIM_H_

#include <cstdint>
#include <vector>

#include "src/billing/model.h"
#include "src/cluster/placement.h"
#include "src/trace/record.h"

namespace faascost {

struct FleetSimConfig {
  MicroSecs keepalive = 300LL * kMicrosPerSec;  // Per-sandbox KA window.
  MicroSecs init_duration = 400 * kMicrosPerMilli;  // Cold-start cost.
  // KA-phase cost share of the full allocation (Table 2: 1.0 = run as
  // usual, ~0.03 = freeze/deallocate, GCP-style in between).
  double ka_cost_share = 1.0;
  ServerSpec server;
  PlacementPolicy placement = PlacementPolicy::kBestFit;
  // Provider hardware rate for a fully-utilized (1 vCPU, 2 GB) unit.
  Usd hardware_per_vcpu_second = 7.68e-6;
  Usd hardware_per_gb_second = 8.53e-7;
};

// One sandbox's lifetime, for placement and cost accounting.
struct SandboxSpan {
  int64_t function_id = 0;
  double vcpus = 0.0;
  MegaBytes mem_mb = 0.0;
  MicroSecs created_at = 0;
  MicroSecs destroyed_at = 0;
  MicroSecs busy = 0;   // init + execution time.
  MicroSecs idle = 0;   // Keep-alive time.
  int64_t requests = 0;
};

struct FleetResult {
  int64_t requests = 0;
  int64_t cold_starts = 0;
  int64_t sandboxes = 0;
  double sandbox_seconds = 0.0;  // Sum of sandbox lifetimes.
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  int peak_servers = 0;          // Fleet size high-water mark.
  Usd revenue = 0.0;             // User bills under the billing model.
  Usd fee_revenue = 0.0;         // Fee component of the revenue.
  Usd hardware_cost = 0.0;       // Busy at full rate; idle at ka_cost_share.
  double margin = 0.0;
  std::vector<SandboxSpan> spans;  // Per-sandbox accounting.
};

// Simulates sandbox lifecycles for the whole trace (requests must be sorted
// by arrival; they are grouped per function internally), bills every request
// under `billing`, and packs the sandbox spans onto servers to find the
// fleet's peak size.
FleetResult SimulateFleet(const std::vector<RequestRecord>& trace,
                          const BillingModel& billing, const FleetSimConfig& config);

// Revenue/cost split by function-popularity decile: functions sorted by
// request count, bucketed into `buckets` groups of equal function count.
struct EconomicsBucket {
  int64_t functions = 0;
  int64_t requests = 0;
  Usd revenue = 0.0;
  Usd hardware_cost = 0.0;
  double cold_start_rate = 0.0;
};
std::vector<EconomicsBucket> BucketEconomics(const FleetResult& result,
                                             const std::vector<RequestRecord>& trace,
                                             const BillingModel& billing,
                                             const FleetSimConfig& config, int buckets);

}  // namespace faascost

#endif  // FAASCOST_CLUSTER_FLEET_SIM_H_
