// Fleet-level serving simulation: an entire trace day across thousands of
// functions, each with its own sandbox pool and keep-alive lifecycle, packed
// onto host servers. This ties the paper's layers together end to end:
// per-request billing (§2) x keep-alive and cold starts (§3.3) x placement
// and deployment density (§2.2) x provider economics ("these costs are
// ultimately passed on to users through per-unit resource pricing or
// invocation fees").
//
// The per-function serving model is the single-concurrency one (a sandbox
// serves one request at a time; concurrent arrivals fan out to more
// sandboxes), with a fixed keep-alive window after each idle period.

#ifndef FAASCOST_CLUSTER_FLEET_SIM_H_
#define FAASCOST_CLUSTER_FLEET_SIM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/billing/model.h"
#include "src/cluster/host_faults.h"
#include "src/cluster/placement.h"
#include "src/common/json_reader.h"
#include "src/common/json_writer.h"
#include "src/integrity/integrity.h"
#include "src/net/model.h"
#include "src/obs/engine_profiler.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"
#include "src/platform/faults.h"
#include "src/trace/record.h"

namespace faascost {

struct FleetSimConfig {
  MicroSecs keepalive = 300LL * kMicrosPerSec;  // Per-sandbox KA window.
  MicroSecs init_duration = 400 * kMicrosPerMilli;  // Cold-start cost.
  // KA-phase cost share of the full allocation (Table 2: 1.0 = run as
  // usual, ~0.03 = freeze/deallocate, GCP-style in between).
  double ka_cost_share = 1.0;
  ServerSpec server;
  PlacementPolicy placement = PlacementPolicy::kBestFit;
  // Provider hardware rate for a fully-utilized (1 vCPU, 2 GB) unit.
  Usd hardware_per_vcpu_second = 7.68e-6;
  Usd hardware_per_gb_second = 8.53e-7;
  // --- Failure injection (fleet-level model: crashes and timeouts) ---
  // Global per-attempt crash probability. A crash aborts the request at a
  // uniform point of its execution and destroys the sandbox, so the retry
  // (and the function's next request) pays a fresh cold start.
  double failure_rate = 0.0;
  // Prefer the trace's per-function failure_rate field (when > 0) over the
  // global rate, so trace-generator heterogeneity carries through.
  bool use_trace_failure_rates = true;
  // Platform-enforced execution timeout; requests running longer are aborted
  // (and billed) at the limit. The sandbox survives a timeout. 0 disables.
  MicroSecs max_exec_duration = 0;
  // Client retries of failed attempts; retries re-enter the arrival stream
  // after backoff and are billed like any other attempt.
  RetryPolicy retry;
  uint64_t fault_seed = 1234;  // Seed of the fault RNG stream.
  // --- Fleet-level chaos (host failures, admission control) ---
  // Seeded host fault domains: sandboxes are pinned to logical hosts and a
  // host loss destroys every resident sandbox (in-flight work crashes, the
  // survivors stampede into cold starts). Disabled by default; a disabled
  // model consumes no randomness, so zero-chaos runs stay bit-identical.
  HostFaultModelConfig host_faults;
  // Per-function sandbox cap. 0 = unbounded (every concurrent arrival gets
  // a sandbox, as in the fault-free model). Must be > 0 for admission
  // control to have anything to queue against.
  int max_sandboxes_per_function = 0;
  // Bounded per-function admission queue, active only with a sandbox cap:
  // arrivals beyond the cap wait for a warm sandbox instead of fanning out,
  // shed at kRejected past queue_depth, and fail kTimeout past
  // queue_timeout. The fleet model sheds newest-only (reject-oldest needs
  // the event-driven PlatformSim queue).
  AdmissionControlConfig admission;
  // Observability hooks (non-owning; the caller keeps them alive through the
  // simulation). Null by default: instrumentation is then one pointer test
  // per attempt, draws no randomness, and results stay bit-identical.
  // Spans land on kTrackGroupFleetFunction (tid = function id) and
  // kTrackGroupFleetSandbox (tid = span index); every attempt's terminal
  // span carries its invoice share, so span USD sums reproduce `revenue`.
  TraceSink* trace_sink = nullptr;
  MetricsRegistry* metrics = nullptr;
  // Metrics sampling cadence over trace time (used only when `metrics` is
  // attached).
  MicroSecs metrics_interval = kMicrosPerSec;
  // Sim-time windowed telemetry (same null-sink contract). Billed-USD
  // recording is co-located with terminal-span pricing, so the series'
  // per-window sums reconcile bitwise against span totals
  // (ReconcileBilledUsd in src/obs/timeseries.h).
  TimeSeries* timeseries = nullptr;
  // Engine flight recorder: per-attempt event counts, pending-queue depth
  // samples, and fault-RNG draw totals (src/obs/engine_profiler.h).
  EngineProfiler* profiler = nullptr;
  // Runtime invariant auditor (non-owning; null = detached, zero overhead
  // beyond one pointer test per attempt). See src/integrity/integrity.h.
  Auditor* auditor = nullptr;
  // Network model (src/net; non-owning, same null contract): every executed
  // attempt's request payload rides internet -> sandbox zone and its
  // response rides back, metered on the monthly-cumulative price ladder.
  // Transfer time extends the *client* path (terminal latency and retry
  // scheduling), not sandbox occupancy — the sandbox is released when the
  // function returns; bytes move through the platform's edge, not the
  // sandbox. The zone is the sandbox's host when host faults are on,
  // ZoneOf(function_id) otherwise. Unexecuted attempts (shed, queue
  // timeout, breaker fast-fail) never reach the edge and move nothing.
  // Like TraceSink, the model is caller-owned run state and is NOT archived:
  // checkpoint/resume of a network-attached run is unsupported.
  NetworkModel* network = nullptr;

  // Human-readable config errors; empty when valid. SimulateFleet throws
  // std::invalid_argument on a non-empty result.
  std::vector<std::string> Validate() const;
};

// One sandbox's lifetime, for placement and cost accounting.
struct SandboxSpan {
  int64_t function_id = 0;
  double vcpus = 0.0;
  MegaBytes mem_mb = 0.0;
  MicroSecs created_at = 0;
  MicroSecs destroyed_at = 0;
  MicroSecs busy = 0;   // init + execution time.
  MicroSecs idle = 0;   // Keep-alive time.
  int64_t requests = 0;
  int host = -1;  // Fault domain (only set when host faults are enabled).
};

struct FleetResult {
  int64_t requests = 0;
  int64_t attempts = 0;  // Dispatched attempts (== requests with no faults).
  int64_t cold_starts = 0;
  int64_t sandboxes = 0;
  // Failure taxonomy over attempts (all zero in a fault-free run).
  int64_t failed_attempts = 0;
  int64_t crash_attempts = 0;
  int64_t timeout_attempts = 0;       // Execution timeouts (not queue waits).
  int64_t init_failure_attempts = 0;  // Host died before init completed.
  int64_t retries = 0;
  int64_t retries_exhausted = 0;  // Requests that terminally failed.
  int64_t successes = 0;          // Requests whose final attempt succeeded.
  // --- Chaos taxonomy (all zero without host faults / admission control) ---
  int64_t rejected_attempts = 0;       // Shed by a full admission queue.
  int64_t queue_timeout_attempts = 0;  // Waited past admission queue_timeout.
  int64_t circuit_open_attempts = 0;   // Fast-failed by the client breaker.
  int64_t breaker_trips = 0;           // Closed->open transitions, all functions.
  int64_t queued_attempts = 0;         // Attempts that waited in a queue at all.
  double queue_wait_seconds = 0.0;     // Total admission-queue wait.
  int64_t host_fault_attempt_kills = 0;   // In-flight attempts killed by host loss.
  int64_t host_fault_sandbox_kills = 0;   // Sandboxes destroyed by host loss.
  int64_t drain_survivals = 0;  // Attempts finished inside a graceful drain window.
  // Per original request: terminal resolution time minus trace arrival
  // (queueing delay, retries and backoff included). Indexed like the trace.
  std::vector<MicroSecs> e2e_latency;
  double sandbox_seconds = 0.0;  // Sum of sandbox lifetimes.
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  int peak_servers = 0;          // Fleet size high-water mark.
  Usd revenue = 0.0;             // User bills under the billing model.
  Usd fee_revenue = 0.0;         // Fee component of the revenue.
  Usd hardware_cost = 0.0;       // Busy at full rate; idle at ka_cost_share.
  double margin = 0.0;
  std::vector<SandboxSpan> spans;  // Per-sandbox accounting.
  // --- Network accounting (all zero with no NetworkModel attached) ---
  // USD fields fold marginal charges in emission order — the same order the
  // telemetry hooks and kTransfer spans see, so per-window reconciliation
  // (ReconcileTransferUsd) is bitwise. `network_bill` is the meter's
  // end-of-run decomposition by transfer class.
  int64_t net_transfers = 0;
  int64_t net_bytes = 0;
  Usd network_transfer_usd = 0.0;
  Usd network_ops_usd = 0.0;
  Usd network_detour_usd = 0.0;
  NetworkBill network_bill;
};

// Simulates sandbox lifecycles for the whole trace (requests must be sorted
// by arrival; they are grouped per function internally), bills every attempt
// under `billing` (including failed ones, per its failure rules), and packs
// the sandbox spans onto servers to find the fleet's peak size. With fault
// injection enabled, crashed attempts destroy their sandbox and client
// retries re-enter the arrival stream after backoff.
FleetResult SimulateFleet(const std::vector<RequestRecord>& trace,
                          const BillingModel& billing, const FleetSimConfig& config);

// Stepwise fleet simulation with checkpoint/resume support. The trace and
// billing model are external inputs: they are NOT serialized into
// checkpoints — `InputDigest()` goes into the checkpoint header and a resume
// must present the identical trace. The trace must outlive the engine (held
// by pointer); the billing model is copied. `SimulateFleet` is the one-shot
// wrapper:
//
//   FleetEngine e(config);
//   e.Start(trace, billing);          // or e.Resume(trace, billing, state)
//   e.RunToEnd();                     // or e.AdvanceUntil(t) in slices
//   FleetResult r = e.Finish();
//
// Running the engine to completion in one shot or across any save/restore
// boundary yields bit-identical results (tested; see DESIGN.md §9).
class FleetEngine {
 public:
  explicit FleetEngine(FleetSimConfig config);
  ~FleetEngine();
  FleetEngine(FleetEngine&&) noexcept;
  FleetEngine& operator=(FleetEngine&&) noexcept;

  // Seeds the attempt queue from the trace. Call exactly one of Start/Resume.
  void Start(const std::vector<RequestRecord>& trace, const BillingModel& billing);
  // Restores mutable state from a checkpoint's "state" blob; the caller must
  // pass the same trace and billing model the checkpoint was taken under.
  void Resume(const std::vector<RequestRecord>& trace, const BillingModel& billing,
              const JsonValue& state);

  // Processes every pending attempt with arrival <= t.
  void AdvanceUntil(MicroSecs t);
  void RunToEnd();
  bool done() const;
  MicroSecs now() const;  // Arrival time of the last processed attempt.

  // Closing accounting (sandbox linger, hardware cost, placement packing).
  // Call once, after RunToEnd.
  FleetResult Finish();

  // Serializes the complete mutable state as one JSON object.
  void SaveState(JsonWriter& w);
  // Canonical FNV-1a digest over the same state walk SaveState uses.
  uint64_t Digest();
  uint64_t ConfigHash() const;
  // Digest over the input trace, recorded in checkpoint headers.
  static uint64_t DigestTrace(const std::vector<RequestRecord>& trace);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Revenue/cost split by function-popularity decile: functions sorted by
// request count, bucketed into `buckets` groups of equal function count.
struct EconomicsBucket {
  int64_t functions = 0;
  int64_t requests = 0;
  Usd revenue = 0.0;
  Usd hardware_cost = 0.0;
  double cold_start_rate = 0.0;
};
std::vector<EconomicsBucket> BucketEconomics(const FleetResult& result,
                                             const std::vector<RequestRecord>& trace,
                                             const BillingModel& billing,
                                             const FleetSimConfig& config, int buckets);

}  // namespace faascost

#endif  // FAASCOST_CLUSTER_FLEET_SIM_H_
