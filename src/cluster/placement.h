// Function placement and deployment density (paper §2.2): the constraints
// providers put on resource control knobs (fixed combos, bounded CPU:memory
// ratios) "reflect an underlying function placement challenge: highly
// unbalanced CPU-to-memory combinations can fragment the resource capacity
// on host servers, potentially leading to higher deployment costs, e.g.
// through decreased deployment density, or higher scheduling delay waiting
// for placement."
//
// This module models a fleet of identical hosts onto which function
// sandboxes are packed by their (vCPU, memory) allocation, and measures the
// deployment density and the stranded (unusable) capacity different knob
// policies produce.

#ifndef FAASCOST_CLUSTER_PLACEMENT_H_
#define FAASCOST_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace faascost {

// Host shape. The default mirrors a common FaaS worker: 64 vCPUs with 4 GB
// of memory per core (the 1:4 CPU:GB boundary Alibaba enforces on users).
struct ServerSpec {
  double vcpus = 64.0;
  MegaBytes mem_mb = 64.0 * 4096.0;
};

struct SandboxDemand {
  double vcpus = 0.0;
  MegaBytes mem_mb = 0.0;
};

enum class PlacementPolicy {
  kFirstFit,  // First server with room.
  kBestFit,   // Server with the least remaining capacity that still fits.
  kWorstFit,  // Server with the most remaining capacity.
};

const char* PlacementPolicyName(PlacementPolicy p);

// A placement ticket used to release capacity later.
struct Placement {
  int server = -1;
  SandboxDemand demand;
};

class ClusterPlacer {
 public:
  ClusterPlacer(ServerSpec server, PlacementPolicy policy);

  // Places a sandbox, opening a new server when nothing fits. Returns the
  // ticket (server index is always valid: servers are unbounded).
  Placement Place(const SandboxDemand& demand);

  // Returns capacity from an earlier placement.
  void Release(const Placement& placement);

  int server_count() const { return static_cast<int>(servers_.size()); }
  int active_server_count() const;  // Servers hosting at least one sandbox.
  int64_t sandbox_count() const { return sandboxes_; }

  // Mean utilization of each dimension across ACTIVE servers.
  double CpuUtilization() const;
  double MemUtilization() const;

  // Stranded capacity (paper's fragmentation): on each active server, the
  // share of one dimension that cannot be used because the other dimension
  // is (nearly) exhausted. Reported as the fleet-wide fraction of the
  // less-utilized dimension left unusable on servers whose other dimension
  // is above `exhaustion_threshold`.
  double StrandedCpuFraction(double exhaustion_threshold = 0.9) const;
  double StrandedMemFraction(double exhaustion_threshold = 0.9) const;

  // Sandboxes per active server.
  double DeploymentDensity() const;

 private:
  struct Server {
    double cpu_used = 0.0;
    MegaBytes mem_used = 0.0;
    int64_t sandboxes = 0;
  };

  bool Fits(const Server& s, const SandboxDemand& d) const;
  double RemainingScore(const Server& s) const;

  ServerSpec spec_;
  PlacementPolicy policy_;
  std::vector<Server> servers_;
  int64_t sandboxes_ = 0;
};

// --- Knob-policy experiment (paper §2.2) ---

// How the platform constrains what users may request.
enum class KnobPolicy {
  kUnconstrained,     // Users get exactly what they ask for.
  kRatioBounded,      // CPU:GB ratio clamped to [1:4, 1:1] (Alibaba-style).
  kProportional,      // CPU forced proportional to memory (AWS-style).
  kFixedCombos,       // Snap up to the nearest fixed combo (Huawei-style).
};

const char* KnobPolicyName(KnobPolicy p);

// Applies the knob policy to a raw demand (never shrinks either dimension).
SandboxDemand ApplyKnobPolicy(KnobPolicy policy, const SandboxDemand& raw);

struct DensityReport {
  int servers = 0;
  double density = 0.0;   // Sandboxes per server.
  double cpu_util = 0.0;
  double mem_util = 0.0;
  double stranded_cpu = 0.0;
  double stranded_mem = 0.0;
  double allocated_cpu = 0.0;      // Total vCPUs granted (>= requested).
  MegaBytes allocated_mem = 0.0;
};

// Packs the demands (after the knob policy) and reports fleet metrics.
DensityReport PackAndMeasure(const std::vector<SandboxDemand>& raw_demands,
                             KnobPolicy knob, PlacementPolicy placement,
                             const ServerSpec& server = {});

}  // namespace faascost

#endif  // FAASCOST_CLUSTER_PLACEMENT_H_
