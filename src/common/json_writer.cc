#include "src/common/json_writer.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace faascost {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    // The comma (if any) was written with the key.
    pending_key_ = false;
    return;
  }
  if (!has_items_.empty()) {
    assert(stack_.back() == Scope::kArray);
    if (has_items_.back()) {
      out_.push_back(',');
    }
    has_items_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  assert(!pending_key_);
  out_.push_back('}');
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::EndArray() {
  assert(!stack_.empty() && stack_.back() == Scope::kArray);
  out_.push_back(']');
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  assert(!pending_key_);
  if (has_items_.back()) {
    out_.push_back(',');
  }
  has_items_.back() = true;
  AppendEscaped(&out_, key);
  out_.push_back(':');
  pending_key_ = true;
}

void JsonWriter::Value(std::string_view v) {
  BeforeValue();
  AppendEscaped(&out_, v);
}

void JsonWriter::Value(bool v) {
  BeforeValue();
  out_.append(v ? "true" : "false");
}

void JsonWriter::Value(int64_t v) {
  BeforeValue();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, res.ptr);
}

void JsonWriter::Value(uint64_t v) {
  BeforeValue();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, res.ptr);
}

void JsonWriter::Value(double v) {
  BeforeValue();
  out_.append(FormatDouble(v));
}

void JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
}

void JsonWriter::AppendEscaped(std::string* out, std::string_view v) {
  out->push_back('"');
  for (const char c : v) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonWriter::FormatDouble(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace faascost
