#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace faascost {

Histogram::Histogram(double lo, double hi, size_t bins) : lo_(lo) {
  // Explicit checks: histogram bounds come from experiment configs and CLI
  // flags, so they must hold in release (NDEBUG) builds as well. The negated
  // comparison also rejects NaN bounds.
  if (!(hi > lo)) {
    throw std::invalid_argument("Histogram: hi (" + std::to_string(hi) +
                                ") must be > lo (" + std::to_string(lo) + ")");
  }
  if (bins == 0) {
    throw std::invalid_argument("Histogram: bins must be > 0");
  }
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::Add(double value) {
  // NaN compares false against every threshold below, so it would survive
  // the clamp and hit the size_t cast, which is UB for NaN. Count and drop.
  if (std::isnan(value)) {
    ++nan_count_;
    return;
  }
  // Clamp in the double domain: casting +inf (or anything past the size_t
  // range) is just as undefined as casting NaN.
  double idx = (value - lo_) / width_;
  if (idx < 0.0) {
    idx = 0.0;
  }
  if (idx >= static_cast<double>(counts_.size())) {
    idx = static_cast<double>(counts_.size() - 1);
  }
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(size_t bin) const { return lo_ + width_ * static_cast<double>(bin); }

double Histogram::bin_hi(size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::ModeMidpoint() const {
  size_t best = 0;
  for (size_t i = 1; i < counts_.size(); ++i) {
    if (counts_[i] > counts_[best]) {
      best = i;
    }
  }
  return bin_lo(best) + width_ / 2.0;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::At(double x) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  if (!(q > 0.0 && q <= 1.0)) {
    throw std::invalid_argument("EmpiricalCdf::Quantile: q must be in (0, 1], got " +
                                std::to_string(q));
  }
  const double rank = q * static_cast<double>(sorted_.size());
  size_t idx = rank <= 1.0 ? 0 : static_cast<size_t>(std::ceil(rank)) - 1;
  idx = std::min(idx, sorted_.size() - 1);
  return sorted_[idx];
}

std::vector<std::pair<double, double>> EmpiricalCdf::Curve(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) {
    return out;
  }
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(Quantile(q), q);
  }
  return out;
}

}  // namespace faascost
