// Unit types and conversions shared across the faascost libraries.
//
// The simulators operate on integer microseconds (`MicroSecs`) to avoid
// floating-point drift in discrete-event queues; analysis and billing code use
// double-precision seconds. Memory is tracked in megabytes (the granularity of
// every platform control knob in the paper's Table 1) and billed in GB-seconds.

#ifndef FAASCOST_COMMON_UNITS_H_
#define FAASCOST_COMMON_UNITS_H_

#include <cstdint>

namespace faascost {

// Simulation time: integer microseconds since simulation start.
using MicroSecs = int64_t;

inline constexpr MicroSecs kMicrosPerMilli = 1'000;
inline constexpr MicroSecs kMicrosPerSec = 1'000'000;

constexpr MicroSecs MillisToMicros(double ms) {
  return static_cast<MicroSecs>(ms * static_cast<double>(kMicrosPerMilli));
}

constexpr MicroSecs SecsToMicros(double s) {
  return static_cast<MicroSecs>(s * static_cast<double>(kMicrosPerSec));
}

constexpr double MicrosToMillis(MicroSecs us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerMilli);
}

constexpr double MicrosToSecs(MicroSecs us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSec);
}

// Memory sizes. Control knobs are expressed in MB (Table 1); billable memory
// in GB-seconds.
using MegaBytes = double;

inline constexpr double kMbPerGb = 1024.0;

constexpr double MbToGb(MegaBytes mb) { return mb / kMbPerGb; }

// Billable resource-time products.
struct GbSeconds {
  double value = 0.0;
};

struct VcpuSeconds {
  double value = 0.0;
};

// Money. All prices in the catalog are USD.
using Usd = double;

// The AWS Lambda memory size that corresponds to exactly one vCPU; vCPUs are
// allocated proportionally to memory below/above this point (paper §1, §2.2).
inline constexpr MegaBytes kAwsLambdaMbPerVcpu = 1769.0;

}  // namespace faascost

#endif  // FAASCOST_COMMON_UNITS_H_
