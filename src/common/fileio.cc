#include "src/common/fileio.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace faascost {

namespace {

[[noreturn]] void FailErrno(const std::string& step, const std::string& path) {
  throw std::runtime_error(step + " failed for '" + path +
                           "': " + std::strerror(errno));
}

}  // namespace

void WriteFileAtomic(const std::string& path, std::string_view content) {
  // The temp file must live in the same directory as the target: rename(2)
  // is only atomic within one filesystem.
  const std::string tmp_path = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    FailErrno("open", tmp_path);
  }
  size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp_path.c_str());
      errno = saved;
      FailErrno("write", tmp_path);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp_path.c_str());
    errno = saved;
    FailErrno("fsync", tmp_path);
  }
  if (::close(fd) != 0) {
    const int saved = errno;
    ::unlink(tmp_path.c_str());
    errno = saved;
    FailErrno("close", tmp_path);
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp_path.c_str());
    errno = saved;
    FailErrno("rename", path);
  }
}

std::string ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    FailErrno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  if (std::ferror(f) != 0) {
    std::fclose(f);
    throw std::runtime_error("read failed for '" + path + "'");
  }
  std::fclose(f);
  return out;
}

}  // namespace faascost
