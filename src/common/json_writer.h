// Minimal streaming JSON writer shared by the exporters, benches, and CLI.
//
// The writer appends to an internal buffer and tracks nesting in a small
// state stack so commas are inserted automatically. Output is compact (no
// whitespace) and byte-deterministic: doubles are formatted with the
// shortest round-trip representation (std::to_chars), so the same values
// always produce the same bytes. Non-finite doubles have no JSON encoding
// and are emitted as `null`.

#ifndef FAASCOST_COMMON_JSON_WRITER_H_
#define FAASCOST_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace faascost {

class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Writes an object key; the next call must write its value.
  void Key(std::string_view key);

  void Value(std::string_view v);
  void Value(const char* v) { Value(std::string_view(v)); }
  void Value(bool v);
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(int64_t v);
  void Value(uint64_t v);
  void Value(double v);
  void Null();

  // Key + value in one call.
  template <typename T>
  void KV(std::string_view key, T v) {
    Key(key);
    Value(v);
  }

  // The document so far. Valid JSON once all containers are closed.
  const std::string& str() const { return out_; }

  // True when every BeginObject/BeginArray has been matched by its End.
  bool balanced() const { return stack_.empty(); }

  // Appends the escaped form of `v` (quotes included) to `out`; exposed so
  // callers building JSON by hand can share the escaping rules.
  static void AppendEscaped(std::string* out, std::string_view v);

  // Shortest round-trip decimal form of `v`; "null" for non-finite values.
  static std::string FormatDouble(double v);

 private:
  enum class Scope : uint8_t { kObject, kArray };

  // Emits the separator owed before a value (or key) in the current scope.
  void BeforeValue();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

}  // namespace faascost

#endif  // FAASCOST_COMMON_JSON_WRITER_H_
