#include "src/common/rng.h"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

namespace faascost {

namespace {

// SplitMix64, used to expand a single seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

RngState Rng::SaveState() const {
  RngState st;
  for (int i = 0; i < 4; ++i) {
    st.s[i] = state_[i];
  }
  std::memcpy(&st.spare_normal_bits, &spare_normal_, sizeof(st.spare_normal_bits));
  st.has_spare_normal = has_spare_normal_;
  return st;
}

void Rng::LoadState(const RngState& state) {
  for (int i = 0; i < 4; ++i) {
    state_[i] = state.s[i];
  }
  std::memcpy(&spare_normal_, &state.spare_normal_bits, sizeof(spare_normal_));
  has_spare_normal_ = state.has_spare_normal;
  draw_count_ = 0;
}

uint64_t Rng::NextU64() {
  // xoshiro256** step.
  ++draw_count_;
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  // Distribution parameters reach here from workload configs; reject bad
  // ranges in release builds too instead of wrapping modulo garbage.
  if (hi < lo) {
    throw std::invalid_argument("Rng::UniformInt: hi (" + std::to_string(hi) +
                                ") must be >= lo (" + std::to_string(lo) + ")");
  }
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection-free modulo is fine here: span << 2^64 for all our uses.
  return lo + static_cast<int64_t>(NextU64() % span);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("Rng::Exponential: rate must be > 0, got " +
                                std::to_string(rate));
  }
  double u = NextDouble();
  while (u <= 1e-300) {
    u = NextDouble();
  }
  return -std::log(u) / rate;
}

double Rng::Gamma(double shape, double scale) {
  if (!(shape > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument("Rng::Gamma: shape and scale must be > 0, got shape=" +
                                std::to_string(shape) + " scale=" +
                                std::to_string(scale));
  }
  if (shape < 1.0) {
    // Boost to shape+1 and correct with a power of a uniform.
    const double u = std::max(NextDouble(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v * scale;
    }
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double Rng::Beta(double a, double b) {
  const double x = Gamma(a, 1.0);
  const double y = Gamma(b, 1.0);
  return x / (x + y);
}

std::pair<double, double> Rng::CorrelatedNormals(double rho) {
  const double z1 = Normal();
  const double z2 = Normal();
  return {z1, rho * z1 + std::sqrt(std::max(0.0, 1.0 - rho * rho)) * z2};
}

int64_t Rng::Zipf(int64_t n, double s) {
  const ZipfTable table(n, s);
  return table.Sample(*this);
}

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfTable::ZipfTable(int64_t n, double exponent) {
  if (n < 1) {
    throw std::invalid_argument("ZipfTable: n must be >= 1, got " + std::to_string(n));
  }
  cdf_.resize(static_cast<size_t>(n));
  double acc = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), exponent);
    cdf_[static_cast<size_t>(k - 1)] = acc;
  }
  for (auto& v : cdf_) {
    v /= acc;
  }
}

int64_t ZipfTable::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search for the first cdf entry >= u.
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(cdf_.size()) - 1;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (cdf_[static_cast<size_t>(mid)] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

}  // namespace faascost
