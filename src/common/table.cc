#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace faascost {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::Render() const {
  size_t cols = headers_.size();
  for (const auto& row : rows_) {
    cols = std::max(cols, row.size());
  }
  std::vector<size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(headers_);
  for (const auto& row : rows_) {
    widen(row);
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < cols; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      out << "| " << cell << std::string(widths[i] - cell.size(), ' ') << ' ';
    }
    out << "|\n";
  };
  auto rule = [&] {
    for (size_t i = 0; i < cols; ++i) {
      out << '+' << std::string(widths[i] + 2, '-');
    }
    out << "+\n";
  };

  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) {
    emit(row);
  }
  rule();
  return out.str();
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatSci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string FormatSignedPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace faascost
