#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace faascost {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileOfSorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) {
    return 0.0;
  }
  // Percentile requests come straight from CLI flags and report configs;
  // out-of-range values would index out of bounds, so reject them in
  // release builds too (the negated form also rejects NaN).
  if (!(pct >= 0.0 && pct <= 100.0)) {
    throw std::invalid_argument("PercentileOfSorted: pct must be in [0, 100], got " +
                                std::to_string(pct));
  }
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Percentile(std::vector<double> values, double pct) {
  std::sort(values.begin(), values.end());
  return PercentileOfSorted(values, pct);
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) {
    return s;
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (double v : sorted) {
    rs.Add(v);
  }
  s.count = sorted.size();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p5 = PercentileOfSorted(sorted, 5);
  s.p25 = PercentileOfSorted(sorted, 25);
  s.p50 = PercentileOfSorted(sorted, 50);
  s.p75 = PercentileOfSorted(sorted, 75);
  s.p95 = PercentileOfSorted(sorted, 95);
  s.p99 = PercentileOfSorted(sorted, 99);
  return s;
}

double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("PearsonCorrelation: series lengths differ (" +
                                std::to_string(x.size()) + " vs " +
                                std::to_string(y.size()) + ")");
  }
  const size_t n = x.size();
  if (n < 2) {
    return 0.0;
  }
  double mx = 0.0;
  double my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double v : values) {
    s += v;
  }
  return s / static_cast<double>(values.size());
}

double FractionBelow(const std::vector<double>& values, double threshold) {
  if (values.empty()) {
    return 0.0;
  }
  size_t n = 0;
  for (double v : values) {
    if (v < threshold) {
      ++n;
    }
  }
  return static_cast<double>(n) / static_cast<double>(values.size());
}

double FractionAtOrBelow(const std::vector<double>& values, double threshold) {
  if (values.empty()) {
    return 0.0;
  }
  size_t n = 0;
  for (double v : values) {
    if (v <= threshold) {
      ++n;
    }
  }
  return static_cast<double>(n) / static_cast<double>(values.size());
}

}  // namespace faascost
