// Canonical registry of DeriveSeed stream numbers.
//
// Every independent RNG stream in the tree derives its seed as
// `DeriveSeed(base_seed, k*Stream)` with a constant declared HERE and nowhere
// else. faaslint rule R7 enforces that policy statically: a `k*Stream`
// constant declared outside this header is an unregistered stream, two
// registered constants with the same value are a collision, and a raw integer
// literal passed as the stream argument of DeriveSeed is banned outright.
// Keeping the registry in one header is what makes the collision check
// meaningful — engines that never include each other's headers still share
// the stream-number space, and a reused number silently correlates their
// draws.
//
// Second-level derivations (splitting an already-derived stream by host,
// workflow, hop, or attempt index) are exempt from registration: their
// uniqueness comes from the parent stream, not from this table. The base
// constants below reserve the ranges those splits occupy.

#ifndef FAASCOST_COMMON_STREAM_REGISTRY_H_
#define FAASCOST_COMMON_STREAM_REGISTRY_H_

#include <cstdint>

namespace faascost {

// Well-known stream numbers. Keep these unique across the codebase.
inline constexpr uint64_t kFaultStream = 0;      // Request-level fault model.
inline constexpr uint64_t kHostFaultStream = 1;  // Fleet host-failure model.
inline constexpr uint64_t kNetStream = 2;        // Network payload sizes (src/net).
// Host-fault per-host streams occupy [kHostStreamBase, kHostStreamBase + hosts).
inline constexpr uint64_t kHostStreamBase = 16;
// Workflow-engine per-instance streams occupy
// [kWorkflowStreamBase, kWorkflowStreamBase + workflows). Each workflow's
// seed is further split per (hop, attempt), so every draw is a pure function
// of (base seed, workflow, hop, attempt) independent of event interleaving.
inline constexpr uint64_t kWorkflowStreamBase = 1'048'576;

}  // namespace faascost

#endif  // FAASCOST_COMMON_STREAM_REGISTRY_H_
