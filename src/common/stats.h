// Descriptive statistics used throughout the analysis and benches.

#ifndef FAASCOST_COMMON_STATS_H_
#define FAASCOST_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace faascost {

// Online accumulator for mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Summary of a sample vector. Percentiles use linear interpolation between
// order statistics (the "linear" / type-7 definition).
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p5 = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

// Computes the summary of `values`. Copies and sorts internally; `values` is
// not modified. Returns a zeroed Summary for an empty input.
Summary Summarize(const std::vector<double>& values);

// Percentile in [0, 100] of `sorted` (must be ascending). Returns 0.0 for an
// empty input so release builds cannot read out of bounds; throws
// std::invalid_argument when pct is outside [0, 100] (checked under NDEBUG
// too — percentile requests come from CLI flags).
double PercentileOfSorted(const std::vector<double>& sorted, double pct);

// Convenience: sorts a copy and takes the percentile. 0.0 for empty input.
double Percentile(std::vector<double> values, double pct);

// Pearson correlation coefficient of two equal-length samples. Returns 0 when
// either sample has zero variance or fewer than two points; throws
// std::invalid_argument when the lengths differ.
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

// Fraction of entries strictly below `threshold`; 0 for empty input.
double FractionBelow(const std::vector<double>& values, double threshold);

// Fraction of entries <= `threshold`; 0 for empty input.
double FractionAtOrBelow(const std::vector<double>& values, double threshold);

}  // namespace faascost

#endif  // FAASCOST_COMMON_STATS_H_
