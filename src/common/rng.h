// Deterministic random number generation for the simulators and the synthetic
// trace generator.
//
// All stochastic components in faascost draw from an explicitly seeded `Rng`
// so every experiment is reproducible bit-for-bit. The class wraps a
// xoshiro256** engine and provides the distributions the trace generator and
// platform simulator need (uniform, normal, lognormal, exponential, beta via
// gamma sampling, bounded Zipf, and correlated normal pairs for the Gaussian
// copula).

#ifndef FAASCOST_COMMON_RNG_H_
#define FAASCOST_COMMON_RNG_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/stream_registry.h"

namespace faascost {

// Golden-ratio increment used to decorrelate derived seeds (splitmix64's
// gamma). Historically the fault streams seeded themselves with
// `seed ^ kSeedGamma`; DeriveSeed generalizes that to numbered streams.
inline constexpr uint64_t kSeedGamma = 0x9e3779b97f4a7c15ULL;

// Derives the seed of an independent RNG stream from a base seed. Stream 0
// reproduces the legacy `seed ^ kSeedGamma` derivation bit-for-bit (golden
// outputs depend on it); distinct stream numbers give distinct seeds for the
// same base seed, so concurrently-running fault streams can never collide.
inline constexpr uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  return seed ^ (kSeedGamma * (stream + 1));
}

// Stream numbers live in src/common/stream_registry.h (included above): one
// canonical table so faaslint R7 can prove the numbers never collide.

// Full serializable position of one Rng stream: the xoshiro256** engine
// words plus the Box-Muller spare. Restoring a saved state resumes the
// stream bit-exactly, which is what checkpoint/resume and the integrity
// digests rely on. The spare normal is carried as its IEEE-754 bit pattern
// so a save/load round trip through text formats cannot perturb it.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  uint64_t spare_normal_bits = 0;
  bool has_spare_normal = false;
};

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Snapshot / restore of the full stream position (see RngState).
  RngState SaveState() const;
  void LoadState(const RngState& state);

  // Raw 64-bit output of the underlying engine.
  uint64_t NextU64();

  // Engine steps taken since construction (or LoadState, which resets it).
  // Telemetry only — the engine flight recorder reports it — so it is
  // deliberately NOT part of RngState: restoring a checkpoint resumes the
  // stream bit-exactly while the profiler starts counting afresh.
  uint64_t draw_count() const { return draw_count_; }

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Throws std::invalid_argument
  // when hi < lo.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  // Standard normal via Box-Muller (cached spare value).
  double Normal();
  double Normal(double mean, double stddev);

  // Lognormal with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma);

  // Exponential with the given rate (lambda). Throws std::invalid_argument
  // unless rate > 0.
  double Exponential(double rate);

  // Gamma(shape, scale) via Marsaglia-Tsang. Throws std::invalid_argument
  // unless shape > 0 and scale > 0.
  double Gamma(double shape, double scale);

  // Beta(a, b) sampled as Gamma ratios.
  double Beta(double a, double b);

  // Pair of standard normals with correlation rho (Gaussian copula input).
  std::pair<double, double> CorrelatedNormals(double rho);

  // Zipf-distributed integer in [1, n] with exponent s. Uses an inverted-CDF
  // table owned by the caller-visible helper `ZipfTable`.
  // (Use ZipfTable for repeated draws; this is a convenience for small n.)
  int64_t Zipf(int64_t n, double s);

  // Fork a statistically independent child stream. Deterministic: the child
  // seed is derived from this engine's next output.
  Rng Fork();

 private:
  uint64_t state_[4];
  uint64_t draw_count_ = 0;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

// Precomputed inverse-CDF table for Zipf draws; O(log n) per sample.
class ZipfTable {
 public:
  // Throws std::invalid_argument unless n >= 1.
  ZipfTable(int64_t n, double exponent);

  int64_t Sample(Rng& rng) const;
  int64_t size() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace faascost

#endif  // FAASCOST_COMMON_RNG_H_
