#include "src/common/wallclock.h"

#include <chrono>

namespace faascost {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace faascost
