// The repo's single sanctioned wall-clock read.
//
// Simulation results must be pure functions of (config, seed): faaslint rule
// R1 bans every nondeterminism source (std::chrono clocks, time(), getenv,
// ...) across the tree, with exactly this file exempted. Anything that
// legitimately needs real elapsed time — today that is the engine flight
// recorder's per-phase timings, which describe how long the *host* took, not
// anything about the simulated world — must route through MonotonicNanos() so
// the exemption stays one grep away from its every consumer. Wall-clock
// readings must never feed simulation state, RNG seeding, or any
// byte-compared artifact.

#ifndef FAASCOST_COMMON_WALLCLOCK_H_
#define FAASCOST_COMMON_WALLCLOCK_H_

#include <cstdint>

namespace faascost {

// Monotonic host time in nanoseconds from an arbitrary epoch. Differences are
// meaningful; absolute values are not.
int64_t MonotonicNanos();

}  // namespace faascost

#endif  // FAASCOST_COMMON_WALLCLOCK_H_
