// Minimal ASCII table renderer used by the bench binaries to print
// paper-style tables.

#ifndef FAASCOST_COMMON_TABLE_H_
#define FAASCOST_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace faascost {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Renders the table with column separators, padding every column to its
  // widest cell. Missing cells render as empty strings.
  std::string Render() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers for table cells.
std::string FormatDouble(double v, int precision);
std::string FormatSci(double v, int precision);  // e.g. "2.30e-05"
std::string FormatPercent(double fraction, int precision);
std::string FormatSignedPercent(double fraction, int precision);  // "+1.25%"

}  // namespace faascost

#endif  // FAASCOST_COMMON_TABLE_H_
