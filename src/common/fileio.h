// Crash-safe artifact I/O.
//
// Every artifact faascost writes (traces, metrics, checkpoints, run
// manifests) goes through WriteFileAtomic: the content lands in a temporary
// file in the destination directory, is flushed to disk, and is then renamed
// over the target. Readers therefore never observe a half-written artifact —
// a crash mid-write leaves either the old file or no file, plus at worst a
// stray `.tmp` sibling.

#ifndef FAASCOST_COMMON_FILEIO_H_
#define FAASCOST_COMMON_FILEIO_H_

#include <string>
#include <string_view>

namespace faascost {

// Writes `content` to `path` atomically (temp file + fsync + rename).
// Throws std::runtime_error describing the failing step and errno on error;
// on failure the temporary file is removed and `path` is left untouched.
void WriteFileAtomic(const std::string& path, std::string_view content);

// Reads the whole file into a string. Throws std::runtime_error when the
// file cannot be opened or read.
std::string ReadFileToString(const std::string& path);

}  // namespace faascost

#endif  // FAASCOST_COMMON_FILEIO_H_
