// Minimal recursive-descent JSON parser, the read-side counterpart of
// JsonWriter. It exists so checkpoints and artifacts written through the
// deterministic writer can be loaded back without an external dependency.
//
// Faithfulness guarantees the checkpoint layer relies on:
//   - Integers are kept exact: any number written without '.', 'e' or 'E'
//     parses into a uint64_t magnitude plus sign, covering the full uint64
//     range (JsonWriter::Value(uint64_t) round-trips bit-for-bit).
//   - Doubles parse via strtod; combined with the writer's shortest
//     round-trip formatting, double values round-trip bit-for-bit too.
//
// Errors throw JsonParseError with a byte offset; there is no partial-parse
// recovery. The parser accepts exactly the JSON subset the writer emits
// (plus insignificant whitespace); it does not accept comments or trailing
// commas.

#ifndef FAASCOST_COMMON_JSON_READER_H_
#define FAASCOST_COMMON_JSON_READER_H_

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace faascost {

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, size_t offset)
      : std::runtime_error(message + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}

  size_t offset() const { return offset_; }

 private:
  size_t offset_ = 0;
};

// One parsed JSON value. Object members preserve document order.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kInt || kind_ == Kind::kDouble; }

  // Typed accessors; each throws JsonParseError-free std::runtime_error when
  // the value has the wrong kind or an integer conversion would overflow.
  bool GetBool() const;
  int64_t GetInt64() const;
  uint64_t GetUint64() const;   // Requires a non-negative integer.
  double GetDouble() const;     // Accepts both kInt and kDouble.
  const std::string& GetString() const;
  const std::vector<JsonValue>& GetArray() const;
  const std::vector<std::pair<std::string, JsonValue>>& GetObject() const;

  // Object member lookup; null when `key` is absent (or not an object).
  const JsonValue* Find(std::string_view key) const;
  // Find + throw std::runtime_error naming the key when absent.
  const JsonValue& At(std::string_view key) const;

  // --- Construction (used by the parser; tests may build values directly) ---
  static JsonValue MakeNull();
  static JsonValue MakeBool(bool v);
  static JsonValue MakeInt(uint64_t magnitude, bool negative);
  static JsonValue MakeDouble(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool negative_ = false;     // Sign of kInt values.
  uint64_t magnitude_ = 0;    // Magnitude of kInt values.
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Parses one JSON document (surrounding whitespace allowed; trailing garbage
// rejected). Throws JsonParseError on malformed input.
JsonValue ParseJson(std::string_view text);

}  // namespace faascost

#endif  // FAASCOST_COMMON_JSON_READER_H_
