#include "src/common/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace faascost {

AsciiChart::AsciiChart(size_t width, size_t height) : width_(width), height_(height) {}

std::string AsciiChart::Render() const {
  std::ostringstream out;
  if (!title_.empty()) {
    out << title_ << '\n';
  }

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      if (!std::isfinite(x) || !std::isfinite(y)) {
        continue;
      }
      any = true;
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  if (!any) {
    out << "(no data)\n";
    return out.str();
  }
  if (xmax <= xmin) {
    xmax = xmin + 1.0;
  }
  if (ymax <= ymin) {
    ymax = ymin + 1.0;
  }

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      if (!std::isfinite(x) || !std::isfinite(y)) {
        continue;
      }
      const double fx = (x - xmin) / (xmax - xmin);
      const double fy = (y - ymin) / (ymax - ymin);
      size_t cx = static_cast<size_t>(fx * static_cast<double>(width_ - 1) + 0.5);
      size_t cy = static_cast<size_t>(fy * static_cast<double>(height_ - 1) + 0.5);
      cx = std::min(cx, width_ - 1);
      cy = std::min(cy, height_ - 1);
      grid[height_ - 1 - cy][cx] = s.marker;
    }
  }

  char buf[64];
  std::snprintf(buf, sizeof(buf), "%10.4g", ymax);
  out << buf << " +" << grid.front() << "+\n";
  for (size_t r = 1; r + 1 < height_; ++r) {
    out << std::string(10, ' ') << " |" << grid[r] << "|\n";
  }
  std::snprintf(buf, sizeof(buf), "%10.4g", ymin);
  out << buf << " +" << grid.back() << "+\n";

  std::snprintf(buf, sizeof(buf), "%-12.4g", xmin);
  std::string xaxis = std::string(11, ' ') + buf;
  std::snprintf(buf, sizeof(buf), "%12.4g", xmax);
  const std::string right = buf;
  if (xaxis.size() + right.size() < width_ + 13) {
    xaxis += std::string(width_ + 13 - xaxis.size() - right.size(), ' ');
  }
  xaxis += right;
  out << xaxis << '\n';
  if (!x_label_.empty() || !y_label_.empty()) {
    out << "  x: " << x_label_ << "   y: " << y_label_ << '\n';
  }
  for (const auto& s : series_) {
    out << "  '" << s.marker << "' = " << s.label << '\n';
  }
  return out.str();
}

}  // namespace faascost
