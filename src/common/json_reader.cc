#include "src/common/json_reader.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace faascost {

bool JsonValue::GetBool() const {
  if (kind_ != Kind::kBool) {
    throw std::runtime_error("JsonValue: not a bool");
  }
  return bool_;
}

int64_t JsonValue::GetInt64() const {
  if (kind_ != Kind::kInt) {
    throw std::runtime_error("JsonValue: not an integer");
  }
  if (negative_) {
    // INT64_MIN's magnitude is representable: 2^63.
    if (magnitude_ > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1ULL) {
      throw std::runtime_error("JsonValue: integer underflows int64");
    }
    return static_cast<int64_t>(~magnitude_ + 1ULL);  // Two's-complement negate.
  }
  if (magnitude_ > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    throw std::runtime_error("JsonValue: integer overflows int64");
  }
  return static_cast<int64_t>(magnitude_);
}

uint64_t JsonValue::GetUint64() const {
  if (kind_ != Kind::kInt) {
    throw std::runtime_error("JsonValue: not an integer");
  }
  if (negative_ && magnitude_ != 0) {
    throw std::runtime_error("JsonValue: negative integer where uint64 expected");
  }
  return magnitude_;
}

double JsonValue::GetDouble() const {
  if (kind_ == Kind::kDouble) {
    return double_;
  }
  if (kind_ == Kind::kInt) {
    const double mag = static_cast<double>(magnitude_);
    return negative_ ? -mag : mag;
  }
  throw std::runtime_error("JsonValue: not a number");
}

const std::string& JsonValue::GetString() const {
  if (kind_ != Kind::kString) {
    throw std::runtime_error("JsonValue: not a string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::GetArray() const {
  if (kind_ != Kind::kArray) {
    throw std::runtime_error("JsonValue: not an array");
  }
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::GetObject() const {
  if (kind_ != Kind::kObject) {
    throw std::runtime_error("JsonValue: not an object");
  }
  return object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::At(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    throw std::runtime_error("JsonValue: missing key '" + std::string(key) + "'");
  }
  return *v;
}

JsonValue JsonValue::MakeNull() { return JsonValue(); }

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeInt(uint64_t magnitude, bool negative) {
  JsonValue out;
  out.kind_ = Kind::kInt;
  out.magnitude_ = magnitude;
  // Keep the sign even at magnitude 0: "-0" is how the writer serializes the
  // double -0.0, and GetDouble must restore that exact bit pattern for
  // checkpoint round-trips. GetInt64/GetUint64 still treat -0 as plain 0.
  out.negative_ = negative;
  return out;
}

JsonValue JsonValue::MakeDouble(double v) {
  JsonValue out;
  out.kind_ = Kind::kDouble;
  out.double_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(items);
  return out;
}

JsonValue JsonValue::MakeObject(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(members);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    SkipWs();
    JsonValue v = ParseValue(0);
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  // Containers deeper than this indicate a malformed (or adversarial) input,
  // not a real checkpoint; bail out before the recursion can blow the stack.
  static constexpr int kMaxDepth = 200;

  [[noreturn]] void Fail(const std::string& message) const {
    throw JsonParseError(message, pos_);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  JsonValue ParseValue(int depth) {
    if (depth > kMaxDepth) {
      Fail("nesting too deep");
    }
    switch (Peek()) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return JsonValue::MakeString(ParseString());
      case 't':
        if (!Consume("true")) {
          Fail("invalid literal");
        }
        return JsonValue::MakeBool(true);
      case 'f':
        if (!Consume("false")) {
          Fail("invalid literal");
        }
        return JsonValue::MakeBool(false);
      case 'n':
        if (!Consume("null")) {
          Fail("invalid literal");
        }
        return JsonValue::MakeNull();
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject(int depth) {
    Expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue::MakeObject(std::move(members));
    }
    while (true) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      SkipWs();
      members.emplace_back(std::move(key), ParseValue(depth + 1));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return JsonValue::MakeObject(std::move(members));
    }
  }

  JsonValue ParseArray(int depth) {
    Expect('[');
    std::vector<JsonValue> items;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue::MakeArray(std::move(items));
    }
    while (true) {
      SkipWs();
      items.push_back(ParseValue(depth + 1));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return JsonValue::MakeArray(std::move(items));
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          const uint32_t code = ParseHex4();
          AppendUtf8(&out, code);
          break;
        }
        default:
          Fail("invalid escape");
      }
    }
  }

  uint32_t ParseHex4() {
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) {
        Fail("truncated \\u escape");
      }
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        Fail("invalid \\u escape");
      }
    }
    return code;
  }

  // BMP-only UTF-8 encoding; the writer only ever \u-escapes control
  // characters, so surrogate pairs are not produced by our own documents.
  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue ParseNumber() {
    const size_t start = pos_;
    bool negative = false;
    if (Peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (Peek() < '0' || Peek() > '9') {
      Fail("invalid number");
    }
    bool integral = true;
    bool overflow = false;
    uint64_t magnitude = 0;
    while (Peek() >= '0' && Peek() <= '9') {
      const uint64_t digit = static_cast<uint64_t>(Peek() - '0');
      if (magnitude > (std::numeric_limits<uint64_t>::max() - digit) / 10ULL) {
        overflow = true;
      } else {
        magnitude = magnitude * 10ULL + digit;
      }
      ++pos_;
    }
    if (Peek() == '.') {
      integral = false;
      ++pos_;
      if (Peek() < '0' || Peek() > '9') {
        Fail("invalid fraction");
      }
      while (Peek() >= '0' && Peek() <= '9') {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      integral = false;
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (Peek() < '0' || Peek() > '9') {
        Fail("invalid exponent");
      }
      while (Peek() >= '0' && Peek() <= '9') {
        ++pos_;
      }
    }
    if (integral && !overflow) {
      return JsonValue::MakeInt(magnitude, negative);
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      Fail("invalid number");
    }
    // Out-of-range doubles saturate to +/-inf; the writer never emits them
    // (non-finite values serialize as null), so reject on read too.
    if (errno == ERANGE && (parsed > 1.0 || parsed < -1.0)) {
      Fail("number out of double range");
    }
    return JsonValue::MakeDouble(parsed);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue ParseJson(std::string_view text) { return Parser(text).ParseDocument(); }

}  // namespace faascost
