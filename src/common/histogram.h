// Histograms and empirical CDFs for the analysis benches.

#ifndef FAASCOST_COMMON_HISTOGRAM_H_
#define FAASCOST_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace faascost {

// Fixed-width-bin histogram over [lo, hi); values outside are clamped into the
// first/last bin. NaN values are dropped (tracked by nan_count()) rather than
// binned — casting NaN to an index is undefined behaviour.
class Histogram {
 public:
  // Throws std::invalid_argument unless hi > lo and bins > 0 (checked in
  // release builds too: bounds come from experiment configs).
  Histogram(double lo, double hi, size_t bins);

  void Add(double value);

  size_t bin_count() const { return counts_.size(); }
  int64_t count(size_t bin) const { return counts_[bin]; }
  int64_t total() const { return total_; }
  int64_t nan_count() const { return nan_count_; }
  double bin_lo(size_t bin) const;
  double bin_hi(size_t bin) const;
  // Midpoint of the bin with the highest count (ties -> lowest bin).
  double ModeMidpoint() const;

 private:
  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
  int64_t nan_count_ = 0;
};

// Empirical CDF built from a sample; supports evaluation and inverse.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  // P(X <= x).
  double At(double x) const;
  // Smallest sample value v with P(X <= v) >= q, q in (0, 1].
  // Returns 0.0 when the CDF was built from an empty sample; throws
  // std::invalid_argument when q is outside (0, 1].
  double Quantile(double q) const;

  size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

  // Evaluation points for plotting: `points` evenly spaced quantiles as
  // (value, cumulative probability) pairs.
  std::vector<std::pair<double, double>> Curve(size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace faascost

#endif  // FAASCOST_COMMON_HISTOGRAM_H_
