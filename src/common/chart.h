// ASCII charts for bench output: XY line/scatter plots and CDF overlays.
// The paper's figures are reproduced as numeric series plus a coarse ASCII
// rendering so the shape is visible directly in terminal output.

#ifndef FAASCOST_COMMON_CHART_H_
#define FAASCOST_COMMON_CHART_H_

#include <string>
#include <utility>
#include <vector>

namespace faascost {

struct ChartSeries {
  std::string label;
  char marker = '*';
  std::vector<std::pair<double, double>> points;
};

class AsciiChart {
 public:
  AsciiChart(size_t width, size_t height);

  void SetTitle(std::string title) { title_ = std::move(title); }
  void SetXLabel(std::string label) { x_label_ = std::move(label); }
  void SetYLabel(std::string label) { y_label_ = std::move(label); }
  void AddSeries(ChartSeries series) { series_.push_back(std::move(series)); }

  // Renders all series onto a shared grid with auto-scaled axes.
  std::string Render() const;

 private:
  size_t width_;
  size_t height_;
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<ChartSeries> series_;
};

}  // namespace faascost

#endif  // FAASCOST_COMMON_CHART_H_
