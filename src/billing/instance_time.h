// Instance-time billing (paper §2.4): with provisioned concurrency, minimum
// instances, or a configured scale-down delay, the user pays for the whole
// runtime-instance lifespan rather than per request. Providers price
// instance time slightly below the request-based rates (and usually without
// rounding), but idle instance time is billed -- so bursty traffic with long
// idle gaps can cost far more than request-based billing.

#ifndef FAASCOST_BILLING_INSTANCE_TIME_H_
#define FAASCOST_BILLING_INSTANCE_TIME_H_

#include <vector>

#include "src/billing/model.h"
#include "src/common/units.h"

namespace faascost {

struct InstanceTimeBillingModel {
  // GCP instance-based billing rates (request-based: 2.4e-5 / 2.5e-6).
  Usd price_per_vcpu_second = 1.8e-5;
  Usd price_per_gb_second = 2.0e-6;
  Usd invocation_fee = 0.0;  // Instance-based billing waives request fees.
  // Minimum billed lifespan per instance (some providers bill a floor).
  MicroSecs min_instance_time = 0;
};

// One instance's lifespan for billing purposes.
struct InstanceSpan {
  MicroSecs created_at = 0;
  MicroSecs destroyed_at = 0;
};

struct InstanceTimeBill {
  Usd resource_cost = 0.0;
  Usd invocation_cost = 0.0;
  Usd total = 0.0;
  double instance_seconds = 0.0;
};

// Bills instance lifespans at the given allocation.
InstanceTimeBill BillInstanceTime(const InstanceTimeBillingModel& model,
                                  const std::vector<InstanceSpan>& instances,
                                  double vcpus, MegaBytes mem_mb, size_t num_requests);

// Comparison of the two billing modes for the same run.
struct BillingModeComparison {
  Usd request_based_total = 0.0;
  Usd instance_time_total = 0.0;
  // > 1: instance-time billing costs more (bursty / low-utilization traffic,
  // the paper's §2.4 warning); < 1: it is cheaper (dense traffic amortizes
  // the instance and dodges rounding + fees).
  double instance_over_request = 0.0;
};

}  // namespace faascost

#endif  // FAASCOST_BILLING_INSTANCE_TIME_H_
