// Trace-driven billing analyses from the paper's §2:
//  - billable-resource inflation under different billing models (Fig. 2),
//  - rounding-up and minimum-cutoff overheads (Fig. 5-right),
//  - cold-start vs execution billable-resource differences (Fig. 4).

#ifndef FAASCOST_BILLING_ANALYSIS_H_
#define FAASCOST_BILLING_ANALYSIS_H_

#include <string>
#include <vector>

#include "src/billing/model.h"
#include "src/common/histogram.h"
#include "src/trace/record.h"

namespace faascost {

// --- Fig. 2: billable vs actual resources ---

struct InflationResult {
  std::string platform;
  // Ratio of total billable to total actual consumption across the trace.
  double cpu_inflation = 0.0;  // billable vCPU-s / consumed vCPU-s.
  double mem_inflation = 0.0;  // billable GB-s / consumed GB-s. 0 if unbilled.
  double total_billable_vcpu_seconds = 0.0;
  double total_actual_vcpu_seconds = 0.0;
  double total_billable_gb_seconds = 0.0;
  double total_actual_gb_seconds = 0.0;
  // Per-request billable amounts for CDF plotting.
  std::vector<double> billable_vcpu_seconds;
  std::vector<double> billable_gb_seconds;
};

// Bills every request under `model` and compares against actual consumption
// (consumed CPU time; used memory held for the wall-clock execution
// duration). `keep_samples` controls whether per-request vectors are kept.
InflationResult AnalyzeInflation(const BillingModel& model,
                                 const std::vector<RequestRecord>& requests,
                                 bool keep_samples = false);

// Actual per-request consumption (identical across models), for CDF overlay.
struct ActualConsumption {
  std::vector<double> vcpu_seconds;
  std::vector<double> gb_seconds;
  double total_vcpu_seconds = 0.0;
  double total_gb_seconds = 0.0;
};
ActualConsumption ComputeActualConsumption(const std::vector<RequestRecord>& requests);

// --- Fig. 5-right: rounding up ---

struct RoundingResult {
  // Mean added billable wall-clock time (ms) from rounding `exec` up.
  double mean_rounded_up_time_ms = 0.0;
  // Mean added billable memory (GB-s) from memory-granularity rounding.
  double mean_rounded_up_gb_seconds = 0.0;
  size_t num_requests = 0;
};

// Rounding overhead under (time granularity, minimum cutoff, memory
// granularity), computed over requests with exec >= 1 ms as in the paper.
RoundingResult AnalyzeRounding(const std::vector<RequestRecord>& requests,
                               MicroSecs time_granularity, MicroSecs min_cutoff,
                               MegaBytes mem_granularity_mb);

// --- Fig. 4: cold-start billable-resource difference ---

struct ColdStartDiff {
  // (billable resources during executions) - (billable during init), in
  // wall-clock allocation terms. Negative: the cold start cost more than all
  // requests it served.
  double cpu_diff_vcpu_seconds = 0.0;
  double mem_diff_gb_seconds = 0.0;
};

struct ColdStartStudy {
  std::vector<ColdStartDiff> diffs;
  // Fraction of lifecycles whose execution-phase billable resources do not
  // exceed the initialization-phase billable resources (paper: 42.1%).
  double frac_zero_or_negative_cpu = 0.0;
  double frac_zero_or_negative_mem = 0.0;
};

ColdStartStudy AnalyzeColdStarts(const std::vector<SandboxLifecycle>& lifecycles);

}  // namespace faascost

#endif  // FAASCOST_BILLING_ANALYSIS_H_
