// Machine-readable catalog of the billing models and unit prices of the ten
// public serverless platforms the paper studies (Table 1 and Fig. 1, as of
// 2025-05-15), plus the §1 price-comparison constants (AWS Lambda vs EC2 vs
// Fargate on identical ARM hardware).
//
// All prices are USD. Where a platform does not document a value publicly the
// entry carries the paper's empirical estimate and is flagged in the comment.

#ifndef FAASCOST_BILLING_CATALOG_H_
#define FAASCOST_BILLING_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

#include "src/billing/model.h"
#include "src/billing/tiered.h"

namespace faascost {

// Canonical platform identifiers used across the library.
enum class Platform {
  kAwsLambda,
  kGcpCloudRunFunctions,   // Request-based billing, 1st gen knobs.
  kAzureConsumption,
  kAzureFlexConsumption,
  kIbmCodeEngine,
  kHuaweiFunctionGraph,
  kAlibabaFunctionCompute,
  kOracleFunctions,
  kVercelFunctions,
  kCloudflareWorkers,
};

// All platforms in Table 1 order.
std::vector<Platform> AllPlatforms();

const char* PlatformName(Platform p);

// Billing model for one platform (Table 1 rules + Fig. 1 prices).
BillingModel MakeBillingModel(Platform p);

// Entire catalog in Table 1 order.
std::vector<BillingModel> MakeCatalog();

// §1 comparison constants: per-second cost of a ~1 vCPU / ~2 GB unit on AWS
// Lambda (ARM), an EC2 c6g.medium VM, and an equivalently sized Fargate
// container (us-east-2). The paper reports Lambda at $2.3034e-5/s with EC2 at
// 41.1% and Fargate at 47.8% of that price.
struct ComputeUnitPrice {
  std::string service;
  Usd per_second = 0.0;
  Usd invocation_fee = 0.0;
};
std::vector<ComputeUnitPrice> MakeSection1Comparison();

// Effective unit prices for Fig. 1. For platforms that bill memory only (CPU
// embedded), `vcpu` is the embedded rate implied by the proportional
// allocation (price of the memory that buys one vCPU, minus the memory's own
// going rate) and `memory` is the listed memory rate.
struct UnitPrices {
  Platform platform;
  Usd per_vcpu_second = 0.0;
  Usd per_gb_second = 0.0;
  bool cpu_embedded = false;
};
UnitPrices EffectiveUnitPrices(Platform p);

// CPU-to-memory unit price ratio (vCPU-s price / GB-s price); the paper
// reports 9-9.64 across GCP, Fargate, and IBM (§2.2). Returns nullopt for
// platforms without separate CPU pricing.
std::optional<double> CpuMemPriceRatio(Platform p);

// AWS Fargate separate unit prices (x86, us-east-2), used for the §2.2 ratio
// analysis.
UnitPrices FargateUnitPrices();

// Orchestration-side prices for workflow DAGs (src/workflow): the per-hop
// state-transition fee of the platform's workflow service and the
// storage-operation costs of its dead-letter queue. These sit *next to* the
// per-invocation BillingModel — each hop attempt is still invoiced through
// ComputeInvoice; the workflow engine adds these on top, so workflow USD
// decomposes exactly into Σ hop invoices + Σ transition fees + Σ DLQ ops.
struct WorkflowPricing {
  // Charged once per dispatched hop attempt (AWS Step Functions standard
  // workflows: $25 per million state transitions).
  Usd per_state_transition = 0.0;
  // Charged once per terminally-failed async message written to the DLQ
  // (SQS-class request pricing: $0.40 per million requests).
  Usd dlq_write_fee = 0.0;
  // Charged once per dead letter for the consumer that later drains it
  // (receive + delete request pair).
  Usd dlq_read_fee = 0.0;
};

// Workflow-service prices for a platform. Platforms without a documented
// orchestration service inherit the AWS-anchored defaults, flagged in the
// implementation, so cross-platform sweeps stay comparable.
WorkflowPricing MakeWorkflowPricing(Platform p);

// Data-transfer and storage-operation prices for a platform (tiered.h):
// the monthly-cumulative internet-egress ladder with its free tier, the
// flat inter-zone / inter-region per-GB rates, and the class-A/class-B
// storage operation fees. Like MakeWorkflowPricing, platforms without a
// public transfer price sheet inherit AWS-anchored defaults, flagged in the
// implementation.
NetworkPricing MakeNetworkPricing(Platform p);

}  // namespace faascost

#endif  // FAASCOST_BILLING_CATALOG_H_
