#include "src/billing/tiered.h"

#include <algorithm>

namespace faascost {

const char* TransferClassName(TransferClass c) {
  switch (c) {
    case TransferClass::kIntraZone:
      return "intra_zone";
    case TransferClass::kInterZone:
      return "inter_zone";
    case TransferClass::kInterRegion:
      return "inter_region";
    case TransferClass::kInternetEgress:
      return "internet_egress";
    case TransferClass::kInternetIngress:
      return "internet_ingress";
  }
  return "unknown";
}

TieredSchedule TieredSchedule::Flat(Usd usd_per_gb) {
  TieredSchedule s;
  s.tiers.push_back({kNoTierLimit, usd_per_gb});
  return s;
}

TieredSchedule TieredSchedule::Free() { return Flat(0.0); }

std::vector<std::string> TieredSchedule::Validate() const {
  std::vector<std::string> errors;
  if (tiers.empty()) {
    errors.push_back("schedule has no tiers");
    return errors;
  }
  int64_t prev = 0;
  for (size_t i = 0; i < tiers.size(); ++i) {
    if (tiers[i].upto_bytes <= prev) {
      errors.push_back("tier " + std::to_string(i) + " bound does not ascend");
    }
    if (tiers[i].usd_per_gb < 0.0) {
      errors.push_back("tier " + std::to_string(i) + " has a negative rate");
    }
    prev = tiers[i].upto_bytes;
  }
  if (tiers.back().upto_bytes != kNoTierLimit) {
    errors.push_back("last tier must be unbounded (kNoTierLimit)");
  }
  return errors;
}

Usd TieredCost(const TieredSchedule& schedule, int64_t from_bytes, int64_t add_bytes) {
  int64_t pos = std::max<int64_t>(from_bytes, 0);
  int64_t remaining = std::max<int64_t>(add_bytes, 0);
  Usd usd = 0.0;
  for (const PriceTier& tier : schedule.tiers) {
    if (remaining <= 0) {
      break;
    }
    if (pos >= tier.upto_bytes) {
      continue;  // This tier is already fully consumed.
    }
    const int64_t seg = std::min(remaining, tier.upto_bytes - pos);
    // One grouping per segment, folded in ascending tier order — the
    // determinism contract the header promises. kBytesPerGb is a power of
    // two, so the division is exact whenever seg fits a double's mantissa.
    usd += tier.usd_per_gb * (static_cast<double>(seg) / static_cast<double>(kBytesPerGb));
    pos += seg;
    remaining -= seg;
  }
  return usd;
}

std::vector<std::string> NetworkPricing::Validate() const {
  std::vector<std::string> errors;
  for (int c = 0; c < kTransferClassCount; ++c) {
    for (const std::string& e : transfer[static_cast<size_t>(c)].Validate()) {
      errors.push_back(std::string(TransferClassName(static_cast<TransferClass>(c))) +
                       ": " + e);
    }
  }
  if (class_a_per_op < 0.0 || class_b_per_op < 0.0) {
    errors.push_back("storage operation fees must be non-negative");
  }
  if (billing_period < 0) {
    errors.push_back("billing_period must be >= 0 (0 = never reset)");
  }
  return errors;
}

Usd NetworkBill::TransferUsd() const {
  Usd total = 0.0;
  for (int c = 0; c < kTransferClassCount; ++c) {
    total += usd[c];
  }
  return total;
}

Usd NetworkBill::TotalUsd() const { return TransferUsd() + ops_usd; }

TrafficMeter::TrafficMeter(NetworkPricing pricing) : pricing_(std::move(pricing)) {}

int64_t TrafficMeter::PeriodIndexFor(MicroSecs t) const {
  if (pricing_.billing_period <= 0) {
    return 0;
  }
  return t / pricing_.billing_period;
}

void TrafficMeter::RollPeriod(MicroSecs t) {
  // High-water mark: a completion timestamped slightly in the past (event
  // heaps resolve work out of arrival order) must not roll a period back.
  const int64_t idx = PeriodIndexFor(t);
  if (idx > period_idx_) {
    period_idx_ = idx;
    period_bytes_.fill(0);
  }
}

Usd TrafficMeter::AddTransfer(TransferClass c, int64_t bytes, MicroSecs t) {
  RollPeriod(t);
  const size_t ci = static_cast<size_t>(c);
  const int64_t add = std::max<int64_t>(bytes, 0);
  const Usd usd = TieredCost(pricing_.transfer[ci], period_bytes_[ci], add);
  period_bytes_[ci] += add;
  bill_.bytes[ci] += add;
  bill_.usd[ci] += usd;
  return usd;
}

Usd TrafficMeter::CostIfAdded(TransferClass c, int64_t bytes, MicroSecs t) const {
  const size_t ci = static_cast<size_t>(c);
  int64_t from = period_bytes_[ci];
  if (PeriodIndexFor(t) > period_idx_) {
    from = 0;  // The hypothetical transfer would land in a fresh period.
  }
  return TieredCost(pricing_.transfer[ci], from, std::max<int64_t>(bytes, 0));
}

Usd TrafficMeter::AddOps(int64_t class_a, int64_t class_b) {
  const int64_t a = std::max<int64_t>(class_a, 0);
  const int64_t b = std::max<int64_t>(class_b, 0);
  const Usd usd = pricing_.class_a_per_op * static_cast<double>(a) +
                  pricing_.class_b_per_op * static_cast<double>(b);
  bill_.class_a_ops += a;
  bill_.class_b_ops += b;
  bill_.ops_usd += usd;
  return usd;
}

void TrafficMeter::NoteTransfer(bool rerouted, Usd detour_usd) {
  ++bill_.transfers;
  if (rerouted) {
    ++bill_.rerouted_transfers;
  }
  if (detour_usd > 0.0) {
    bill_.detour_usd += detour_usd;
  }
}

}  // namespace faascost
