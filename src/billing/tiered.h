// Tiered/volume pricing for data transfer and storage operations — the
// billing dimensions the compute catalog (catalog.h) stops short of. Public
// clouds price network egress on a *monthly cumulative* volume ladder: the
// first N bytes of a billing period are free, the next tier bills at one
// per-GB rate, the tier after that at a lower one, and so on (the gacspp
// grid-cost model walks the same ladder recursively; SNIPPETS.md). Getting
// the marginal cost of one transfer right therefore requires knowing how
// many bytes of its class were already moved this period.
//
// TieredCost() is that walk as a pure function: the incremental USD of
// adding `add_bytes` when `from_bytes` have already accumulated. TrafficMeter
// wraps it with the per-class cumulative state, monthly period rollover, and
// a folded NetworkBill, and is the single authority the simulators meter
// through — every AddTransfer returns the marginal USD priced at that exact
// cumulative position, in call order, so end-of-run totals reconcile
// bit-for-bit against per-event telemetry (obs/timeseries.h contract).

#ifndef FAASCOST_BILLING_TIERED_H_
#define FAASCOST_BILLING_TIERED_H_

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace faascost {

// How a payload's route is billed. Every traversed link charges its class;
// the classes mirror the public price sheets: traffic inside one zone and
// ingress from the internet are free on every major platform, crossing a
// zone boundary bills per GB *per direction*, crossing a region bills more,
// and internet egress is the tiered headline rate.
enum class TransferClass {
  kIntraZone = 0,     // Same-zone hop (free everywhere, still counted).
  kInterZone,         // Cross-zone hop within a region.
  kInterRegion,       // Cross-region backbone hop.
  kInternetEgress,    // Zone/region uplink toward the public internet.
  kInternetIngress,   // Public internet toward the platform (free, counted).
};
inline constexpr int kTransferClassCount = 5;
const char* TransferClassName(TransferClass c);

// Bytes per billed GB. Binary, matching the repo's MB convention
// (units.h: kMbPerGb = 1024) and AWS's GB-means-GiB billing practice. A
// power of two, so `bytes / kBytesPerGb` is exact in double for any volume a
// simulation can produce — tier-boundary tests can pin values bitwise.
inline constexpr int64_t kBytesPerGb = 1024LL * 1024LL * 1024LL;

// One rung of the volume ladder: bytes up to `upto_bytes` of cumulative
// period volume bill at `usd_per_gb`. Tiers are ascending and the last one
// is unbounded (upto_bytes == kNoTierLimit). A free allowance is simply a
// first tier priced at zero.
inline constexpr int64_t kNoTierLimit = std::numeric_limits<int64_t>::max();
struct PriceTier {
  int64_t upto_bytes = kNoTierLimit;
  Usd usd_per_gb = 0.0;
};

struct TieredSchedule {
  std::vector<PriceTier> tiers;

  // Single unbounded tier at one rate (rate 0 = free class).
  static TieredSchedule Flat(Usd usd_per_gb);
  // Zero-priced everywhere.
  static TieredSchedule Free();

  // Empty schedules are invalid; tiers must ascend and end unbounded.
  // Returns human-readable violations (empty when valid).
  std::vector<std::string> Validate() const;
};

// Marginal USD of moving `add_bytes` when `from_bytes` have already been
// moved this billing period: walks the ladder from the tier containing
// from_bytes, charging each crossed segment at its rate. Segments fold in
// ascending tier order — with one grouping, `usd_per_gb * (seg / kBytesPerGb)`
// per segment — so the result is a deterministic function of
// (schedule, from, add), bit-reproducible across runs and platforms.
// Negative inputs are treated as zero.
Usd TieredCost(const TieredSchedule& schedule, int64_t from_bytes, int64_t add_bytes);

// Per-provider transfer + storage-operation price sheet.
struct NetworkPricing {
  std::array<TieredSchedule, kTransferClassCount> transfer;
  // Storage operations, per op: class A mutates (PUT/LIST-class), class B
  // reads (GET-class). The S3/GCS convention, priced per million.
  Usd class_a_per_op = 0.0;
  Usd class_b_per_op = 0.0;
  // Cumulative-volume reset period (the "monthly" in monthly-cumulative).
  // 0 = never reset: the whole run is one billing period.
  MicroSecs billing_period = 0;

  std::vector<std::string> Validate() const;
};

// End-of-run network bill, decomposed the way the price sheet charges it.
// All USD fields are folds of the marginal charges in metering order, so a
// simulator that records each marginal charge into telemetry reconciles
// against these totals bitwise.
struct NetworkBill {
  int64_t bytes[kTransferClassCount] = {};  // Billed byte-hops per class.
  Usd usd[kTransferClassCount] = {};
  int64_t class_a_ops = 0;
  int64_t class_b_ops = 0;
  Usd ops_usd = 0.0;
  // Outage-reroute surcharge: the part of `usd` the baseline (no-outage)
  // routes would not have incurred. Informational subset, clamped at zero
  // per transfer.
  Usd detour_usd = 0.0;
  int64_t transfers = 0;
  int64_t rerouted_transfers = 0;

  // Folded in class order, then + ops_usd.
  Usd TransferUsd() const;
  Usd TotalUsd() const;
};

// Stateful meter over a NetworkPricing sheet. Call sites must meter in
// event-processing order: the cumulative tier position (and therefore every
// marginal price) is defined by that order. Period rollover is a
// high-water-mark on the timestamps seen, so slightly out-of-order
// completion times (inherent to discrete-event simulators) cannot roll a
// period backwards.
class TrafficMeter {
 public:
  explicit TrafficMeter(NetworkPricing pricing);

  // Marginal USD of `bytes` on class `c` at sim time `t`; advances the
  // cumulative position and folds the charge into bill().
  Usd AddTransfer(TransferClass c, int64_t bytes, MicroSecs t);
  // The charge AddTransfer(c, bytes, t) *would* return, without metering.
  Usd CostIfAdded(TransferClass c, int64_t bytes, MicroSecs t) const;
  // Storage operations (flat-priced; no tiers on op fees).
  Usd AddOps(int64_t class_a, int64_t class_b);

  // Adjustment hooks for the bill's informational fields.
  void NoteTransfer(bool rerouted, Usd detour_usd);

  // Cumulative bytes of `c` within the current billing period.
  int64_t PeriodBytes(TransferClass c) const {
    return period_bytes_[static_cast<size_t>(c)];
  }
  const NetworkBill& bill() const { return bill_; }
  const NetworkPricing& pricing() const { return pricing_; }

 private:
  int64_t PeriodIndexFor(MicroSecs t) const;
  void RollPeriod(MicroSecs t);

  NetworkPricing pricing_;
  int64_t period_idx_ = 0;
  std::array<int64_t, kTransferClassCount> period_bytes_ = {};
  NetworkBill bill_;
};

}  // namespace faascost

#endif  // FAASCOST_BILLING_TIERED_H_
