#include "src/billing/catalog.h"

#include <cassert>

namespace faascost {

std::vector<Platform> AllPlatforms() {
  return {
      Platform::kAwsLambda,           Platform::kGcpCloudRunFunctions,
      Platform::kAzureConsumption,    Platform::kAzureFlexConsumption,
      Platform::kIbmCodeEngine,       Platform::kHuaweiFunctionGraph,
      Platform::kAlibabaFunctionCompute, Platform::kOracleFunctions,
      Platform::kVercelFunctions,     Platform::kCloudflareWorkers,
  };
}

const char* PlatformName(Platform p) {
  switch (p) {
    case Platform::kAwsLambda:
      return "AWS Lambda";
    case Platform::kGcpCloudRunFunctions:
      return "GCP Cloud Run functions";
    case Platform::kAzureConsumption:
      return "Azure Functions (Consumption)";
    case Platform::kAzureFlexConsumption:
      return "Azure Functions (Flex Consumption)";
    case Platform::kIbmCodeEngine:
      return "IBM Code Engine Functions";
    case Platform::kHuaweiFunctionGraph:
      return "Huawei FunctionGraph";
    case Platform::kAlibabaFunctionCompute:
      return "Alibaba Function Compute";
    case Platform::kOracleFunctions:
      return "Oracle Cloud Functions";
    case Platform::kVercelFunctions:
      return "Vercel Functions";
    case Platform::kCloudflareWorkers:
      return "Cloudflare Workers";
  }
  return "unknown";
}

BillingModel MakeBillingModel(Platform p) {
  BillingModel m;
  m.platform = PlatformName(p);
  switch (p) {
    case Platform::kAwsLambda: {
      // Wall-clock turnaround (INIT billed since August 2025), 1 ms
      // granularity, memory-only pricing with proportional vCPUs
      // (1769 MB per vCPU). x86 price: $1.66667e-5 per GB-s; the paper's
      // 1769 MB function at $2.8792e-5/s matches this rate.
      m.billable_time = BillableTime::kTurnaround;
      m.time_granularity = 1 * kMicrosPerMilli;
      m.bills_cpu_separately = false;
      m.cpu_basis = ResourceBasis::kAllocated;
      m.bills_memory = true;
      m.mem_basis = ResourceBasis::kAllocated;
      m.price_per_gb_second = 1.66667e-5;
      m.invocation_fee = 2e-7;
      m.cpu_knob = CpuKnob::kProportionalToMemory;
      m.mb_per_vcpu = kAwsLambdaMbPerVcpu;
      m.memory_step_mb = 1.0;
      m.min_memory_mb = 128.0;
      m.max_memory_mb = 10240.0;
      // Failures: timeouts and crashes bill the duration actually run, and
      // since August 2025 the INIT phase of failed initializations is billed
      // too. Throttled (429) requests are free.
      m.failure.bill_failed_duration = true;
      m.failure.bill_init_failure = true;
      m.failure.fee_on_failure = true;
      m.failure.fee_on_rejection = false;
      break;
    }
    case Platform::kGcpCloudRunFunctions: {
      // Request-based billing: turnaround time, 100 ms granularity, separate
      // CPU ($2.4e-5 per vCPU-s) and memory ($2.5e-6 per GB-s) pricing;
      // 1st-gen CPU knob step of 0.01 vCPUs, plus the documented minimum-CPU
      // constraint per memory size. The paper's fee-equivalent check:
      // 0.5 vCPU + 512 MB -> $4e-7 / $1.325e-5 = 30.19 ms.
      m.billable_time = BillableTime::kTurnaround;
      m.time_granularity = 100 * kMicrosPerMilli;
      m.bills_cpu_separately = true;
      m.cpu_basis = ResourceBasis::kAllocated;
      m.cpu_granularity_vcpus = 0.01;
      m.price_per_vcpu_second = 2.4e-5;
      m.bills_memory = true;
      m.mem_basis = ResourceBasis::kAllocated;
      m.price_per_gb_second = 2.5e-6;
      m.invocation_fee = 4e-7;
      m.cpu_knob = CpuKnob::kIndependent;
      m.memory_step_mb = 1.0;
      m.min_memory_mb = 128.0;
      m.max_memory_mb = 32768.0;
      m.min_cpu_for_memory = {
          {128.0, 0.08}, {256.0, 0.167}, {512.0, 0.333},
          {1024.0, 0.583}, {2048.0, 1.0}, {4096.0, 2.0},
      };
      break;
    }
    case Platform::kAzureConsumption: {
      // Consumed memory rounded up to 128 MB, 1 ms granularity with a 100 ms
      // minimum cutoff, fixed sandbox of 1.5 GB memory / 1 vCPU. $1.6e-5 per
      // GB-s.
      m.billable_time = BillableTime::kExecution;
      m.time_granularity = 1 * kMicrosPerMilli;
      m.min_billable_time = 100 * kMicrosPerMilli;
      m.bills_cpu_separately = false;
      m.cpu_basis = ResourceBasis::kAllocated;
      m.bills_memory = true;
      m.mem_basis = ResourceBasis::kConsumed;
      m.mem_granularity_mb = 128.0;
      m.price_per_gb_second = 1.6e-5;
      m.invocation_fee = 2e-7;
      m.cpu_knob = CpuKnob::kFixed;
      m.fixed_vcpus = 1.0;
      m.fixed_mem_mb = 1536.0;
      // Failures: only completed executions accrue GB-s charges (consumed
      // memory is metered at completion); the per-execution fee still counts
      // every triggered execution.
      m.failure.bill_failed_duration = false;
      m.failure.bill_init_failure = false;
      m.failure.fee_on_failure = true;
      m.failure.fee_on_rejection = false;
      break;
    }
    case Platform::kAzureFlexConsumption: {
      // Allocated memory (2 GB or 4 GB instance sizes), 100 ms granularity
      // with a 1 s minimum cutoff, proportional CPU.
      m.billable_time = BillableTime::kExecution;
      m.time_granularity = 100 * kMicrosPerMilli;
      m.min_billable_time = 1000 * kMicrosPerMilli;
      m.bills_cpu_separately = false;
      m.cpu_basis = ResourceBasis::kAllocated;
      m.bills_memory = true;
      m.mem_basis = ResourceBasis::kAllocated;
      m.price_per_gb_second = 1.6e-5;
      m.invocation_fee = 4e-7;
      m.cpu_knob = CpuKnob::kIndependent;
      m.fixed_memory_sizes = {2048.0, 4096.0};
      m.min_cpu_for_memory = {{2048.0, 1.0}, {4096.0, 2.0}};
      break;
    }
    case Platform::kIbmCodeEngine: {
      // Allocated memory and CPU in fixed combos, turnaround time, 100 ms
      // granularity. $3.431e-5 per vCPU-s, $3.56e-6 per GB-s (CPU:mem price
      // ratio 9.64, §2.2). No per-request fee on function workloads.
      m.billable_time = BillableTime::kTurnaround;
      m.time_granularity = 100 * kMicrosPerMilli;
      m.bills_cpu_separately = true;
      m.cpu_basis = ResourceBasis::kAllocated;
      m.price_per_vcpu_second = 3.431e-5;
      m.bills_memory = true;
      m.mem_basis = ResourceBasis::kAllocated;
      m.price_per_gb_second = 3.56e-6;
      m.invocation_fee = 0.0;
      m.cpu_knob = CpuKnob::kIndependent;
      m.fixed_memory_sizes = {1024.0, 2048.0, 4096.0, 8192.0, 16384.0, 32768.0};
      m.min_cpu_for_memory = {
          {1024.0, 0.25}, {2048.0, 0.5}, {4096.0, 1.0},
          {8192.0, 2.0},  {16384.0, 4.0}, {32768.0, 8.0},
      };
      break;
    }
    case Platform::kHuaweiFunctionGraph: {
      // Allocated memory in fixed CPU-memory combos, wall-clock execution
      // time, 1 ms granularity. Memory price with embedded CPU (~$1.35e-5
      // per GB-s, paper-estimated); fee at the low end of the documented
      // 1.5e-7..6e-7 range.
      m.billable_time = BillableTime::kExecution;
      m.time_granularity = 1 * kMicrosPerMilli;
      m.bills_cpu_separately = false;
      m.cpu_basis = ResourceBasis::kAllocated;
      m.bills_memory = true;
      m.mem_basis = ResourceBasis::kAllocated;
      m.price_per_gb_second = 1.35e-5;
      m.invocation_fee = 1.5e-7;
      m.cpu_knob = CpuKnob::kIndependent;
      m.fixed_memory_sizes = {128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0};
      m.min_cpu_for_memory = {
          {128.0, 0.1},  {256.0, 0.2},  {512.0, 0.3},  {1024.0, 0.5},
          {2048.0, 1.0}, {4096.0, 2.0}, {8192.0, 4.0},
      };
      break;
    }
    case Platform::kAlibabaFunctionCompute: {
      // Separate CPU (step 0.05 vCPUs) and memory (step 64 MB) knobs with a
      // 1:1..1:4 vCPU:GB ratio constraint, execution time, 1 ms granularity.
      m.billable_time = BillableTime::kExecution;
      m.time_granularity = 1 * kMicrosPerMilli;
      m.bills_cpu_separately = true;
      m.cpu_basis = ResourceBasis::kAllocated;
      m.cpu_granularity_vcpus = 0.05;
      m.price_per_vcpu_second = 1.3e-5;
      m.bills_memory = true;
      m.mem_basis = ResourceBasis::kAllocated;
      m.price_per_gb_second = 1.4e-6;
      m.invocation_fee = 1.5e-7;
      m.cpu_knob = CpuKnob::kIndependent;
      m.memory_step_mb = 64.0;
      m.min_memory_mb = 128.0;
      m.max_memory_mb = 32768.0;
      break;
    }
    case Platform::kOracleFunctions: {
      // Allocated memory in fixed sizes, execution time; granularity not
      // documented publicly (modeled at 1 ms). $1.417e-5 per GB-s + $0.2 per
      // million invocations.
      m.billable_time = BillableTime::kExecution;
      m.time_granularity = 1 * kMicrosPerMilli;
      m.bills_cpu_separately = false;
      m.cpu_basis = ResourceBasis::kAllocated;
      m.bills_memory = true;
      m.mem_basis = ResourceBasis::kAllocated;
      m.price_per_gb_second = 1.417e-5;
      m.invocation_fee = 2e-7;
      m.cpu_knob = CpuKnob::kIndependent;
      m.fixed_memory_sizes = {128.0, 256.0, 512.0, 1024.0, 2048.0};
      m.min_cpu_for_memory = {
          {128.0, 0.1}, {256.0, 0.2}, {512.0, 0.5}, {1024.0, 1.0}, {2048.0, 2.0},
      };
      break;
    }
    case Platform::kVercelFunctions: {
      // Allocated memory with proportional CPU, execution time; granularity
      // not documented publicly (modeled at 1 ms). $0.18 per GB-hour = $5e-5
      // per GB-s, $0.60 per million invocations.
      m.billable_time = BillableTime::kExecution;
      m.time_granularity = 1 * kMicrosPerMilli;
      m.bills_cpu_separately = false;
      m.cpu_basis = ResourceBasis::kAllocated;
      m.bills_memory = true;
      m.mem_basis = ResourceBasis::kAllocated;
      m.price_per_gb_second = 5e-5;
      m.invocation_fee = 6e-7;
      m.cpu_knob = CpuKnob::kProportionalToMemory;
      m.mb_per_vcpu = 1769.0;
      m.memory_step_mb = 1.0;
      m.min_memory_mb = 128.0;
      m.max_memory_mb = 4096.0;
      break;
    }
    case Platform::kCloudflareWorkers: {
      // Consumed CPU time only, 1 ms granularity; fixed 128 MB sandbox,
      // memory not billed. $0.02 per million CPU-ms = $2e-5 per vCPU-s,
      // $0.30 per million requests.
      m.billable_time = BillableTime::kConsumedCpuTime;
      m.time_granularity = 1 * kMicrosPerMilli;
      m.bills_cpu_separately = true;
      m.cpu_basis = ResourceBasis::kConsumed;
      m.price_per_vcpu_second = 2e-5;
      m.bills_memory = false;
      m.invocation_fee = 3e-7;
      m.cpu_knob = CpuKnob::kFixed;
      m.fixed_vcpus = 1.0;
      m.fixed_mem_mb = 128.0;
      break;
    }
  }
  return m;
}

std::vector<BillingModel> MakeCatalog() {
  std::vector<BillingModel> out;
  for (Platform p : AllPlatforms()) {
    out.push_back(MakeBillingModel(p));
  }
  return out;
}

std::vector<ComputeUnitPrice> MakeSection1Comparison() {
  // §1: 1 vCPU-class unit on identical ARM hardware, us-east-2. The paper
  // reports Lambda (1 vCPU, 1769 MB, 512 MB storage) at $2.3034e-5/s, a
  // c6g.medium EC2 VM at $9.4753e-6/s (41.1%), and an equivalent Fargate
  // container at $1.1003e-5/s (47.8%).
  return {
      {"AWS Lambda (ARM, 1 vCPU / 1769 MB)", 2.3034e-5, 2e-7},
      {"AWS EC2 c6g.medium (1 vCPU / 2 GB)", 9.4753e-6, 0.0},
      {"AWS Fargate (ARM, 1 vCPU / 2 GB)", 1.1003e-5, 0.0},
  };
}

UnitPrices EffectiveUnitPrices(Platform p) {
  const BillingModel m = MakeBillingModel(p);
  UnitPrices out;
  out.platform = p;
  if (m.bills_cpu_separately || m.cpu_basis == ResourceBasis::kConsumed) {
    out.per_vcpu_second = m.price_per_vcpu_second;
    out.per_gb_second = m.bills_memory ? m.price_per_gb_second : 0.0;
    out.cpu_embedded = false;
    return out;
  }
  // Memory-only pricing: CPU is embedded. The implied vCPU rate is the cost
  // of the memory that carries one vCPU, minus memory at the going
  // separately-billed rate (we use GCP's memory rate as the industry
  // reference, §2.2).
  out.cpu_embedded = true;
  out.per_gb_second = m.price_per_gb_second;
  const Usd reference_mem_rate = 2.5e-6;  // GCP memory rate.
  MegaBytes mb_per_vcpu = m.mb_per_vcpu;
  if (mb_per_vcpu <= 0.0) {
    // Fixed-combo platforms: use the largest combo's memory per vCPU.
    if (!m.min_cpu_for_memory.empty()) {
      const auto& [mem_mb, cpu] = m.min_cpu_for_memory.back();
      mb_per_vcpu = mem_mb / cpu;
    } else if (m.fixed_vcpus > 0.0) {
      mb_per_vcpu = m.fixed_mem_mb / m.fixed_vcpus;
    } else {
      mb_per_vcpu = 1769.0;
    }
  }
  const double gb_per_vcpu = MbToGb(mb_per_vcpu);
  out.per_vcpu_second =
      std::max(0.0, (m.price_per_gb_second - reference_mem_rate) * gb_per_vcpu);
  return out;
}

std::optional<double> CpuMemPriceRatio(Platform p) {
  const BillingModel m = MakeBillingModel(p);
  if (!m.bills_cpu_separately || m.price_per_gb_second <= 0.0) {
    return std::nullopt;
  }
  return m.price_per_vcpu_second / m.price_per_gb_second;
}

WorkflowPricing MakeWorkflowPricing(Platform p) {
  // AWS anchors: Step Functions standard workflows at $2.5e-5 per state
  // transition, SQS at $4e-7 per request (one write per dead letter, one
  // receive+delete pair when the DLQ is drained). Platforms with their own
  // documented orchestration prices override below; the rest inherit the
  // AWS-anchored defaults (paper's empirical-estimate convention).
  WorkflowPricing w;
  w.per_state_transition = 2.5e-5;
  w.dlq_write_fee = 4e-7;
  w.dlq_read_fee = 8e-7;
  switch (p) {
    case Platform::kGcpCloudRunFunctions:
      // GCP Workflows: $2.5e-5 per internal step past the free tier; Pub/Sub
      // message pricing folded into a per-operation estimate.
      w.per_state_transition = 2.5e-5;
      w.dlq_write_fee = 4e-7;
      w.dlq_read_fee = 8e-7;
      break;
    case Platform::kAzureConsumption:
    case Platform::kAzureFlexConsumption:
      // Durable Functions bill orchestration through storage transactions:
      // cheaper per hop, costlier per queue operation.
      w.per_state_transition = 4e-6;
      w.dlq_write_fee = 5e-7;
      w.dlq_read_fee = 1e-6;
      break;
    case Platform::kCloudflareWorkers:
      // Cloudflare Queues: $0.40 per million operations, no per-step fee
      // for Workers-invoked chains.
      w.per_state_transition = 0.0;
      w.dlq_write_fee = 4e-7;
      w.dlq_read_fee = 8e-7;
      break;
    default:
      break;
  }
  return w;
}

NetworkPricing MakeNetworkPricing(Platform p) {
  // AWS anchors (us-east, 2025-05 price sheet): internet egress ships the
  // first 100 GB of a month free, then walks $0.09 / $0.085 / $0.07 / $0.05
  // per GB at 10 TB / 50 TB / 150 TB cumulative; cross-region data transfer
  // is a flat $0.02/GB, cross-AZ $0.01/GB per direction, and traffic inside
  // one AZ plus all ingress is free. Storage operations follow S3 standard:
  // class A (PUT/LIST) at $5 and class B (GET) at $0.40 per million.
  // Platforms with their own documented sheets override below; the rest
  // inherit the AWS-anchored defaults (paper's empirical-estimate
  // convention), so cross-platform sweeps stay comparable.
  constexpr int64_t kGb = kBytesPerGb;
  constexpr int64_t kTb = 1024LL * kBytesPerGb;
  const auto egress_ladder = [&](int64_t free_gb, Usd t1, Usd t2, Usd t3, Usd t4) {
    TieredSchedule s;
    if (free_gb > 0) {
      s.tiers.push_back({free_gb * kGb, 0.0});
    }
    s.tiers.push_back({free_gb * kGb + 10 * kTb, t1});
    s.tiers.push_back({free_gb * kGb + 50 * kTb, t2});
    s.tiers.push_back({free_gb * kGb + 150 * kTb, t3});
    s.tiers.push_back({kNoTierLimit, t4});
    return s;
  };

  NetworkPricing n;
  n.transfer[static_cast<size_t>(TransferClass::kIntraZone)] = TieredSchedule::Free();
  n.transfer[static_cast<size_t>(TransferClass::kInterZone)] = TieredSchedule::Flat(0.01);
  n.transfer[static_cast<size_t>(TransferClass::kInterRegion)] = TieredSchedule::Flat(0.02);
  n.transfer[static_cast<size_t>(TransferClass::kInternetEgress)] =
      egress_ladder(100, 0.09, 0.085, 0.07, 0.05);
  n.transfer[static_cast<size_t>(TransferClass::kInternetIngress)] = TieredSchedule::Free();
  n.class_a_per_op = 5e-6;
  n.class_b_per_op = 4e-7;
  n.billing_period = 2'592'000LL * kMicrosPerSec;  // 30-day billing month.
  switch (p) {
    case Platform::kGcpCloudRunFunctions:
      // GCP premium-tier internet egress starts higher and steps at smaller
      // volumes; cross-zone and cross-region match AWS's headline rates.
      // GCS operations: class A $0.005, class B $0.0004 per thousand.
      n.transfer[static_cast<size_t>(TransferClass::kInternetEgress)] = {
          {{200 * kGb, 0.0},
           {200 * kGb + 1 * kTb, 0.12},
           {200 * kGb + 10 * kTb, 0.11},
           {kNoTierLimit, 0.08}}};
      break;
    case Platform::kAzureConsumption:
    case Platform::kAzureFlexConsumption:
      // Azure ships 100 GB free then a slightly cheaper ladder, and has
      // stopped billing availability-zone traffic inside a region.
      n.transfer[static_cast<size_t>(TransferClass::kInterZone)] = TieredSchedule::Free();
      n.transfer[static_cast<size_t>(TransferClass::kInternetEgress)] =
          egress_ladder(100, 0.087, 0.083, 0.07, 0.05);
      break;
    case Platform::kHuaweiFunctionGraph:
      // Flat CNY-converted egress rate, no published volume ladder.
      n.transfer[static_cast<size_t>(TransferClass::kInternetEgress)] =
          TieredSchedule::Flat(0.076);
      break;
    case Platform::kAlibabaFunctionCompute:
      n.transfer[static_cast<size_t>(TransferClass::kInternetEgress)] =
          TieredSchedule::Flat(0.074);
      break;
    case Platform::kOracleFunctions:
      // OCI's headline differentiator: the first 10 TB each month free,
      // then a flat $0.0085/GB.
      n.transfer[static_cast<size_t>(TransferClass::kInternetEgress)] = {
          {{10 * kTb, 0.0}, {kNoTierLimit, 0.0085}}};
      break;
    case Platform::kVercelFunctions:
      // Bandwidth past the included allowance bills at $0.15/GB; the
      // underlying AWS fabric's cross-zone rate is passed through.
      n.transfer[static_cast<size_t>(TransferClass::kInternetEgress)] =
          egress_ladder(100, 0.15, 0.15, 0.15, 0.15);
      break;
    case Platform::kCloudflareWorkers:
      // Zero-egress-fee model (the R2 pitch); operations priced like R2:
      // class A $4.50, class B $0.36 per million.
      n.transfer[static_cast<size_t>(TransferClass::kInterZone)] = TieredSchedule::Free();
      n.transfer[static_cast<size_t>(TransferClass::kInterRegion)] = TieredSchedule::Free();
      n.transfer[static_cast<size_t>(TransferClass::kInternetEgress)] =
          TieredSchedule::Free();
      n.class_a_per_op = 4.5e-6;
      n.class_b_per_op = 3.6e-7;
      break;
    default:
      break;
  }
  return n;
}

UnitPrices FargateUnitPrices() {
  UnitPrices out;
  out.platform = Platform::kAwsLambda;  // Placeholder; Fargate is not FaaS.
  out.per_vcpu_second = 1.1244e-5;      // $0.04048 per vCPU-hour (x86).
  out.per_gb_second = 1.2347e-6;        // $0.004445 per GB-hour.
  out.cpu_embedded = false;
  return out;
}

}  // namespace faascost
