#include "src/billing/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace faascost {

MicroSecs RoundUpTime(MicroSecs value, MicroSecs granularity) {
  if (granularity <= 0 || value <= 0) {
    return std::max<MicroSecs>(value, 0);
  }
  return (value + granularity - 1) / granularity * granularity;
}

double RoundUpDouble(double value, double granularity) {
  if (granularity <= 0.0 || value <= 0.0) {
    return std::max(value, 0.0);
  }
  // The 1e-9 slack keeps snapping idempotent when a derived value (e.g. a
  // proportional vCPU share times the MB-per-vCPU ratio) lands one ulp above
  // an exact multiple.
  return std::ceil(value / granularity - 1e-9) * granularity;
}

namespace {

// Minimum vCPUs the platform requires for `mem_mb`, from the model's
// threshold table (largest threshold not exceeding mem_mb).
double MinCpuFor(const BillingModel& model, MegaBytes mem_mb) {
  double min_cpu = 0.0;
  for (const auto& [threshold_mb, cpu] : model.min_cpu_for_memory) {
    if (mem_mb >= threshold_mb) {
      min_cpu = cpu;
    }
  }
  return min_cpu;
}

MegaBytes ClampMemory(const BillingModel& model, MegaBytes mem_mb) {
  mem_mb = std::max(mem_mb, model.min_memory_mb);
  if (model.max_memory_mb > 0.0) {
    mem_mb = std::min(mem_mb, model.max_memory_mb);
  }
  return mem_mb;
}

}  // namespace

SnappedAllocation SnapAllocation(const BillingModel& model, double want_vcpus,
                                 MegaBytes want_mem_mb) {
  SnappedAllocation out;
  switch (model.cpu_knob) {
    case CpuKnob::kFixed: {
      out.vcpus = model.fixed_vcpus;
      out.mem_mb = model.fixed_mem_mb;
      return out;
    }
    case CpuKnob::kProportionalToMemory: {
      assert(model.mb_per_vcpu > 0.0);
      // Raise memory until the derived vCPU share covers the request; the
      // paper maps Huawei allocations to AWS with max(mem, vcpu-equivalent).
      MegaBytes mem = std::max(want_mem_mb, want_vcpus * model.mb_per_vcpu);
      mem = ClampMemory(model, RoundUpDouble(mem, model.memory_step_mb));
      out.mem_mb = mem;
      out.vcpus = mem / model.mb_per_vcpu;
      return out;
    }
    case CpuKnob::kIndependent: {
      if (!model.fixed_memory_sizes.empty()) {
        // Fixed vCPU-memory combos: pick the first size that covers both the
        // memory demand and (via the combo's CPU) the CPU demand.
        MegaBytes chosen = model.fixed_memory_sizes.back();
        for (MegaBytes size : model.fixed_memory_sizes) {
          if (size >= want_mem_mb && MinCpuFor(model, size) >= want_vcpus) {
            chosen = size;
            break;
          }
        }
        out.mem_mb = chosen;
        out.vcpus = std::max(MinCpuFor(model, chosen), want_vcpus);
        if (model.cpu_granularity_vcpus > 0.0) {
          out.vcpus = RoundUpDouble(out.vcpus, model.cpu_granularity_vcpus);
        }
        return out;
      }
      MegaBytes mem = ClampMemory(model, RoundUpDouble(want_mem_mb, model.memory_step_mb));
      double cpu = std::max(want_vcpus, MinCpuFor(model, mem));
      if (model.cpu_granularity_vcpus > 0.0) {
        cpu = RoundUpDouble(cpu, model.cpu_granularity_vcpus);
      }
      out.mem_mb = mem;
      out.vcpus = cpu;
      return out;
    }
  }
  return out;
}

MicroSecs BillableTimeOf(const BillingModel& model, const RequestRecord& request) {
  MicroSecs t = 0;
  switch (model.billable_time) {
    case BillableTime::kExecution:
      t = request.exec_duration;
      break;
    case BillableTime::kTurnaround:
      t = request.exec_duration + request.init_duration;
      break;
    case BillableTime::kConsumedCpuTime:
      t = request.cpu_time;
      break;
  }
  t = RoundUpTime(t, model.time_granularity);
  return std::max(t, model.min_billable_time);
}

namespace {

// Whether the failure rules bill any resource time for this outcome.
bool BillsResources(const FailureBillingRules& rules, Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk:
      return true;
    case Outcome::kCrash:
    case Outcome::kTimeout:
      return rules.bill_failed_duration;
    case Outcome::kInitFailure:
      return rules.bill_init_failure;
    case Outcome::kRejected:
      return false;  // Never admitted; nothing ran.
    case Outcome::kRetriesExhausted:
      // Request-level aggregate; bill like the underlying failed attempt.
      return rules.bill_failed_duration;
    case Outcome::kCircuitOpen:
      return false;  // Fast-failed client-side; never reached the platform.
    case Outcome::kUpstreamFailed:
      return false;  // Skipped hop; never dispatched.
    case Outcome::kHedgeLoser:
      // The duplicate ran (and consumed resources) until cancellation landed;
      // platforms bill aborted executions like any other failed duration.
      return rules.bill_failed_duration;
    case Outcome::kDeadLettered:
      // The final redrive executed and failed; the DLQ storage operation is
      // priced separately (WorkflowPricing), not through the invoice.
      return rules.bill_failed_duration;
  }
  return true;
}

}  // namespace

Invoice ComputeInvoice(const BillingModel& model, const RequestRecord& request) {
  Invoice inv;
  if (request.outcome == Outcome::kCircuitOpen ||
      request.outcome == Outcome::kUpstreamFailed) {
    return inv;  // Never sent: no fee, no resources, $0 by construction.
  }
  if (request.outcome == Outcome::kRejected) {
    inv.invocation_cost = model.failure.fee_on_rejection ? model.invocation_fee : 0.0;
    inv.total = inv.invocation_cost;
    return inv;
  }
  if (!BillsResources(model.failure, request.outcome)) {
    inv.invocation_cost = model.failure.fee_on_failure ? model.invocation_fee : 0.0;
    inv.total = inv.invocation_cost;
    return inv;
  }
  const SnappedAllocation alloc =
      SnapAllocation(model, request.alloc_vcpus, request.alloc_mem_mb);
  inv.billable_time = BillableTimeOf(model, request);
  const double t_sec = MicrosToSecs(inv.billable_time);

  // CPU component. Embedded-CPU platforms still report billable vCPU time
  // (the CPU price is folded into the memory price, paper §2.2).
  if (model.cpu_basis == ResourceBasis::kConsumed) {
    const MicroSecs billed_cpu = std::max(
        RoundUpTime(request.cpu_time, model.time_granularity), model.min_billable_time);
    inv.billable_vcpu_seconds = MicrosToSecs(billed_cpu);
  } else {
    inv.billable_vcpu_seconds = alloc.vcpus * t_sec;
  }
  if (model.bills_cpu_separately || model.cpu_basis == ResourceBasis::kConsumed) {
    inv.resource_cost += model.price_per_vcpu_second * inv.billable_vcpu_seconds;
  }

  // Memory component.
  if (model.bills_memory) {
    MegaBytes billed_mem = 0.0;
    if (model.mem_basis == ResourceBasis::kConsumed) {
      billed_mem = RoundUpDouble(request.used_mem_mb, model.mem_granularity_mb);
    } else {
      billed_mem = model.mem_granularity_mb > 0.0
                       ? RoundUpDouble(alloc.mem_mb, model.mem_granularity_mb)
                       : alloc.mem_mb;
    }
    inv.billable_gb_seconds = MbToGb(billed_mem) * t_sec;
    inv.resource_cost += model.price_per_gb_second * inv.billable_gb_seconds;
  }

  inv.invocation_cost =
      request.outcome == Outcome::kOk || model.failure.fee_on_failure
          ? model.invocation_fee
          : 0.0;
  inv.total = inv.resource_cost + inv.invocation_cost;
  return inv;
}

Usd ResourceCostPerSecond(const BillingModel& model, const SnappedAllocation& alloc) {
  Usd usd_per_sec = 0.0;
  if (model.bills_cpu_separately || model.cpu_basis == ResourceBasis::kConsumed) {
    usd_per_sec += model.price_per_vcpu_second * alloc.vcpus;
  }
  if (model.bills_memory) {
    usd_per_sec += model.price_per_gb_second * MbToGb(alloc.mem_mb);
  }
  return usd_per_sec;
}

double FeeEquivalentMillis(const BillingModel& model, const SnappedAllocation& alloc) {
  const Usd usd_per_sec = ResourceCostPerSecond(model, alloc);
  if (usd_per_sec <= 0.0) {
    return 0.0;
  }
  return model.invocation_fee / usd_per_sec * 1000.0;
}

}  // namespace faascost
