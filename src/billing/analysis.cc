#include "src/billing/analysis.h"

#include <algorithm>

namespace faascost {

ActualConsumption ComputeActualConsumption(const std::vector<RequestRecord>& requests) {
  ActualConsumption out;
  out.vcpu_seconds.reserve(requests.size());
  out.gb_seconds.reserve(requests.size());
  for (const auto& r : requests) {
    const double cpu_s = MicrosToSecs(r.cpu_time);
    const double gb_s = MbToGb(r.used_mem_mb) * MicrosToSecs(r.exec_duration);
    out.vcpu_seconds.push_back(cpu_s);
    out.gb_seconds.push_back(gb_s);
    out.total_vcpu_seconds += cpu_s;
    out.total_gb_seconds += gb_s;
  }
  return out;
}

InflationResult AnalyzeInflation(const BillingModel& model,
                                 const std::vector<RequestRecord>& requests,
                                 bool keep_samples) {
  InflationResult out;
  out.platform = model.platform;
  if (keep_samples) {
    out.billable_vcpu_seconds.reserve(requests.size());
    out.billable_gb_seconds.reserve(requests.size());
  }
  double actual_cpu = 0.0;
  double actual_gb_s = 0.0;
  for (const auto& r : requests) {
    const Invoice inv = ComputeInvoice(model, r);
    out.total_billable_vcpu_seconds += inv.billable_vcpu_seconds;
    out.total_billable_gb_seconds += inv.billable_gb_seconds;
    actual_cpu += MicrosToSecs(r.cpu_time);
    actual_gb_s += MbToGb(r.used_mem_mb) * MicrosToSecs(r.exec_duration);
    if (keep_samples) {
      out.billable_vcpu_seconds.push_back(inv.billable_vcpu_seconds);
      out.billable_gb_seconds.push_back(inv.billable_gb_seconds);
    }
  }
  out.total_actual_vcpu_seconds = actual_cpu;
  out.total_actual_gb_seconds = actual_gb_s;
  out.cpu_inflation = actual_cpu > 0.0 ? out.total_billable_vcpu_seconds / actual_cpu : 0.0;
  out.mem_inflation = (actual_gb_s > 0.0 && model.bills_memory)
                          ? out.total_billable_gb_seconds / actual_gb_s
                          : 0.0;
  return out;
}

RoundingResult AnalyzeRounding(const std::vector<RequestRecord>& requests,
                               MicroSecs time_granularity, MicroSecs min_cutoff,
                               MegaBytes mem_granularity_mb) {
  RoundingResult out;
  double added_time_us = 0.0;
  double added_gb_s = 0.0;
  for (const auto& r : requests) {
    if (r.exec_duration < kMicrosPerMilli) {
      continue;  // The paper studies requests with exec >= 1 ms (Fig. 5).
    }
    ++out.num_requests;
    const MicroSecs billed =
        std::max(RoundUpTime(r.exec_duration, time_granularity), min_cutoff);
    added_time_us += static_cast<double>(billed - r.exec_duration);
    if (mem_granularity_mb > 0.0) {
      // Memory rounding applied to consumed memory, over the (unrounded)
      // execution duration: isolates the memory-granularity effect.
      const MegaBytes billed_mem = RoundUpDouble(r.used_mem_mb, mem_granularity_mb);
      added_gb_s += MbToGb(billed_mem - r.used_mem_mb) * MicrosToSecs(r.exec_duration);
    }
  }
  if (out.num_requests > 0) {
    added_time_us /= static_cast<double>(out.num_requests);
    added_gb_s /= static_cast<double>(out.num_requests);
  }
  out.mean_rounded_up_time_ms = added_time_us / static_cast<double>(kMicrosPerMilli);
  out.mean_rounded_up_gb_seconds = added_gb_s;
  return out;
}

ColdStartStudy AnalyzeColdStarts(const std::vector<SandboxLifecycle>& lifecycles) {
  ColdStartStudy out;
  out.diffs.reserve(lifecycles.size());
  size_t nonpos_cpu = 0;
  size_t nonpos_mem = 0;
  for (const auto& lc : lifecycles) {
    MicroSecs exec_total = 0;
    for (MicroSecs d : lc.request_durations) {
      exec_total += d;
    }
    // Billable resources in wall-clock allocation terms: alloc x duration for
    // both phases (the sandbox holds its full allocation during init too).
    ColdStartDiff diff;
    const double dt_s = MicrosToSecs(exec_total) - MicrosToSecs(lc.init_duration);
    diff.cpu_diff_vcpu_seconds = lc.alloc_vcpus * dt_s;
    diff.mem_diff_gb_seconds = MbToGb(lc.alloc_mem_mb) * dt_s;
    if (diff.cpu_diff_vcpu_seconds <= 0.0) {
      ++nonpos_cpu;
    }
    if (diff.mem_diff_gb_seconds <= 0.0) {
      ++nonpos_mem;
    }
    out.diffs.push_back(diff);
  }
  if (!lifecycles.empty()) {
    out.frac_zero_or_negative_cpu =
        static_cast<double>(nonpos_cpu) / static_cast<double>(lifecycles.size());
    out.frac_zero_or_negative_mem =
        static_cast<double>(nonpos_mem) / static_cast<double>(lifecycles.size());
  }
  return out;
}

}  // namespace faascost
