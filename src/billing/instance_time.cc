#include "src/billing/instance_time.h"

#include <algorithm>

namespace faascost {

InstanceTimeBill BillInstanceTime(const InstanceTimeBillingModel& model,
                                  const std::vector<InstanceSpan>& instances,
                                  double vcpus, MegaBytes mem_mb, size_t num_requests) {
  InstanceTimeBill bill;
  for (const auto& inst : instances) {
    const MicroSecs span =
        std::max(inst.destroyed_at - inst.created_at, model.min_instance_time);
    bill.instance_seconds += MicrosToSecs(span);
  }
  bill.resource_cost = bill.instance_seconds *
                       (model.price_per_vcpu_second * vcpus +
                        model.price_per_gb_second * MbToGb(mem_mb));
  bill.invocation_cost = model.invocation_fee * static_cast<double>(num_requests);
  bill.total = bill.resource_cost + bill.invocation_cost;
  return bill;
}

}  // namespace faascost
