// Generalized pay-per-use billing model, implementing the paper's
// Equation (1):
//
//   Cost = sum_{r in R_alloc} ceil(ALLOC(r)/G_r)*G_r * ceil(T/G_T)*G_T * C_r
//        + sum_{r in R_usg}   ceil(USG(r)/G_r)*G_r * C_r
//        + C_0
//
// where T is the billable wall-clock time (execution or turnaround),
// allocation-based resources are charged for the full billable duration,
// usage-based resources are charged on consumption, G are rounding
// granularities / minimum cutoffs, and C_0 is the fixed invocation fee.

#ifndef FAASCOST_BILLING_MODEL_H_
#define FAASCOST_BILLING_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/trace/record.h"

namespace faascost {

// What counts as the billable wall-clock time T (paper Table 1).
enum class BillableTime {
  kExecution,       // Wall-clock execution duration only.
  kTurnaround,      // Execution plus initialization (cold start) duration.
  kConsumedCpuTime, // Consumed CPU time (Cloudflare Workers).
};

// Whether a resource is charged on its allocation or on actual consumption.
enum class ResourceBasis {
  kAllocated,
  kConsumed,
};

// How the platform derives the vCPU allocation from the user-facing knobs.
enum class CpuKnob {
  kProportionalToMemory,  // vCPU = memory / mb_per_vcpu (AWS, Vercel, ...).
  kIndependent,           // Separate CPU knob (GCP, Alibaba, IBM).
  kFixed,                 // Platform-fixed size (Azure Consumption, Cloudflare).
};

// How the platform bills invocations that do not succeed (paper's billing
// audit extended to the failure path). The defaults describe the common
// behavior: failed and timed-out executions are billed for their reported
// duration, init failures are not billed, the per-invocation fee is charged
// regardless of outcome, and 429 rejections are free.
struct FailureBillingRules {
  // Charge resource time for crashed/timed-out attempts (duration up to the
  // crash point or through the timeout). When false the platform eats the
  // resource cost of failures (Azure Consumption bills only completed
  // executions).
  bool bill_failed_duration = true;
  // Charge the initialization time of a failed cold start. Only meaningful
  // under BillableTime::kTurnaround, where init is part of billable time
  // (AWS bills INIT_REPORT duration for runtime init failures).
  bool bill_init_failure = false;
  // Charge the invocation fee C_0 for failed (admitted) attempts.
  bool fee_on_failure = true;
  // Charge the invocation fee for overload rejections (429). Rejected
  // attempts never consume resources, so this is their only possible cost.
  bool fee_on_rejection = false;
};

struct BillingModel {
  std::string platform;

  BillableTime billable_time = BillableTime::kExecution;
  MicroSecs time_granularity = kMicrosPerMilli;  // G_T.
  MicroSecs min_billable_time = 0;               // Minimum cutoff (0 = none).

  // --- CPU ---
  // True if CPU appears as its own line item. When false, CPU cost is
  // embedded in the memory price (memory-only billing); billable vCPU time is
  // still reported for analysis (paper §2.2-2.3 includes billable vCPU time
  // for AWS because the CPU price is embedded).
  bool bills_cpu_separately = false;
  ResourceBasis cpu_basis = ResourceBasis::kAllocated;
  double cpu_granularity_vcpus = 0.0;  // Knob/billing step; 0 = no rounding.
  Usd price_per_vcpu_second = 0.0;     // 0 when embedded in memory price.

  // --- Memory ---
  bool bills_memory = true;
  ResourceBasis mem_basis = ResourceBasis::kAllocated;
  MegaBytes mem_granularity_mb = 0.0;  // 0 = no rounding.
  Usd price_per_gb_second = 0.0;

  Usd invocation_fee = 0.0;  // C_0.

  FailureBillingRules failure;  // How non-success outcomes are priced.

  // --- Control-knob model (how trace allocations map onto this platform) ---
  CpuKnob cpu_knob = CpuKnob::kIndependent;
  MegaBytes mb_per_vcpu = 0.0;       // For kProportionalToMemory.
  MegaBytes memory_step_mb = 1.0;    // Memory knob step.
  MegaBytes min_memory_mb = 0.0;
  MegaBytes max_memory_mb = 0.0;     // 0 = unbounded.
  double fixed_vcpus = 0.0;          // For kFixed.
  MegaBytes fixed_mem_mb = 0.0;      // For kFixed (billing may still use usage).
  // Fixed memory sizes (Azure Flex, Oracle); empty = continuous knob.
  std::vector<MegaBytes> fixed_memory_sizes;
  // Minimum vCPU required per memory size, as (memory MB, min vCPUs) steps
  // sorted by memory (GCP's constraint table, paper §2.2). Empty = none.
  std::vector<std::pair<MegaBytes, double>> min_cpu_for_memory;
};

// The allocation actually billed after snapping the requested (vCPU, memory)
// onto the platform's control knobs.
struct SnappedAllocation {
  double vcpus = 0.0;
  MegaBytes mem_mb = 0.0;
};

// Maps a desired allocation onto the platform's knobs: applies fixed sizes,
// granularity rounding (up), proportional-CPU coupling and minimum-CPU
// constraints. For proportional platforms the memory is first raised so the
// derived vCPU count covers `want_vcpus` (the paper maps Huawei allocations
// onto AWS by taking the larger of the two, §2.3).
SnappedAllocation SnapAllocation(const BillingModel& model, double want_vcpus,
                                 MegaBytes want_mem_mb);

// Result of billing one request under a model.
struct Invoice {
  MicroSecs billable_time = 0;        // Rounded billable wall-clock time.
  double billable_vcpu_seconds = 0.0; // Includes embedded-CPU platforms.
  double billable_gb_seconds = 0.0;   // 0 if memory not billed (Cloudflare).
  Usd resource_cost = 0.0;
  Usd invocation_cost = 0.0;
  Usd total = 0.0;
};

// Bills one trace request under `model`. The trace allocation is snapped via
// SnapAllocation; consumption-based components use the record's measured
// usage. Non-kOk outcomes are priced by `model.failure`: rejections carry at
// most the invocation fee, not-billed failures cost only the fee (if
// charged), and billed failures run through the normal resource path on the
// record's reported duration.
Invoice ComputeInvoice(const BillingModel& model, const RequestRecord& request);

// Rounds `value` up to a multiple of `granularity` (> 0); identity otherwise.
MicroSecs RoundUpTime(MicroSecs value, MicroSecs granularity);
double RoundUpDouble(double value, double granularity);

// The billable wall-clock time of a request under the model's time rules
// (granularity + minimum cutoff + turnaround inclusion). For
// kConsumedCpuTime models this is the rounded CPU time.
MicroSecs BillableTimeOf(const BillingModel& model, const RequestRecord& request);

// Equivalent billable wall-clock time of the invocation fee for a function
// with the given snapped allocation: the duration whose resource cost equals
// the fee (paper Fig. 5-left; e.g. 96 ms for AWS at 128 MB).
double FeeEquivalentMillis(const BillingModel& model, const SnappedAllocation& alloc);

// Per-second resource cost of holding `alloc` for one second under `model`
// (allocation-based components only).
Usd ResourceCostPerSecond(const BillingModel& model, const SnappedAllocation& alloc);

}  // namespace faascost

#endif  // FAASCOST_BILLING_MODEL_H_
