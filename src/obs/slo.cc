#include "src/obs/slo.h"

#include <stdexcept>

#include "src/common/json_writer.h"

namespace faascost {

std::vector<std::string> SloSpec::Validate() const {
  std::vector<std::string> errors;
  if (name.empty()) {
    errors.push_back("name must be non-empty");
  }
  if (objective_id < 0) {
    errors.push_back("objective_id must be >= 0, got " +
                     std::to_string(objective_id));
  }
  if (!(target > 0.0) || !(target < 1.0)) {
    errors.push_back("target must be in (0, 1), got " + std::to_string(target));
  }
  if (fast_windows <= 0 || slow_windows <= 0) {
    errors.push_back("window counts must be > 0");
  }
  if (fast_windows > slow_windows) {
    errors.push_back("fast_windows must be <= slow_windows");
  }
  if (!(fast_burn > 0.0) || !(slow_burn > 0.0)) {
    errors.push_back("burn thresholds must be > 0");
  }
  return errors;
}

double BurnRate(const TimeSeries& series, const SloSpec& spec, size_t last,
                int count) {
  int64_t completions = 0;
  int64_t good = 0;
  const size_t first =
      last + 1 >= static_cast<size_t>(count) ? last + 1 - static_cast<size_t>(count) : 0;
  for (size_t i = first; i <= last && i < series.window_count(); ++i) {
    const WindowStats& w = series.window_at(i);
    completions += w.completions;
    good += w.good[static_cast<size_t>(spec.objective_id)];
  }
  if (completions == 0) {
    return 0.0;
  }
  const double bad_fraction =
      static_cast<double>(completions - good) / static_cast<double>(completions);
  return bad_fraction / (1.0 - spec.target);
}

std::vector<SloAlert> EvaluateSlo(const TimeSeries& series, const SloSpec& spec) {
  const std::vector<std::string> errors = spec.Validate();
  if (!errors.empty()) {
    std::string msg = "invalid SloSpec";
    for (const std::string& e : errors) {
      msg += "; " + e;
    }
    throw std::invalid_argument(msg);
  }
  if (static_cast<size_t>(spec.objective_id) >= series.objective_count()) {
    throw std::invalid_argument(
        "SloSpec.objective_id " + std::to_string(spec.objective_id) +
        " not registered on the series (have " +
        std::to_string(series.objective_count()) + ")");
  }

  std::vector<SloAlert> alerts;
  bool firing = false;
  for (size_t i = 0; i < series.window_count(); ++i) {
    const double fast = BurnRate(series, spec, i, spec.fast_windows);
    const double slow = BurnRate(series, spec, i, spec.slow_windows);
    const bool should_fire = fast >= spec.fast_burn && slow >= spec.slow_burn;
    if (should_fire == firing) {
      continue;
    }
    firing = should_fire;
    SloAlert alert;
    alert.slo = spec.name;
    alert.time = static_cast<MicroSecs>(i + 1) * series.window();
    alert.firing = firing;
    alert.fast_burn = fast;
    alert.slow_burn = slow;
    alert.window_billed_usd = series.window_at(i).billed_usd;
    alert.window_index = static_cast<int64_t>(i);
    alerts.push_back(alert);
  }
  return alerts;
}

std::string SloAlertsJsonl(const std::vector<SloAlert>& alerts) {
  std::string out;
  for (const SloAlert& alert : alerts) {
    JsonWriter w;
    w.BeginObject();
    w.KV("slo", alert.slo);
    w.KV("time_us", alert.time);
    w.KV("state", alert.firing ? "firing" : "resolved");
    w.KV("fast_burn", alert.fast_burn);
    w.KV("slow_burn", alert.slow_burn);
    w.KV("window", alert.window_index);
    w.KV("window_billed_usd", alert.window_billed_usd);
    w.EndObject();
    out += w.str();
    out += '\n';
  }
  return out;
}

}  // namespace faascost
