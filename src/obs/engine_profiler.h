// Engine flight recorder: introspection of the simulator *engine* rather
// than the simulated world — event-queue depth over sim time, events
// processed by type, RNG draws consumed, and per-phase host wall-clock. This
// is the before/after evidence the ROADMAP's hot-path rebuild needs (you
// can't rebuild what you can't measure).
//
// Attachment follows the null-sink contract: engines hold a raw
// `EngineProfiler*` defaulting to null; detached runs pay one pointer test
// per event and stay bit-identical. Everything the profiler records about
// the *simulation* (event counts, queue depths, sim timestamps) is
// deterministic; the per-phase wall-clock durations are host measurements
// read through the sanctioned src/common/wallclock shim and are the one
// intentionally nondeterministic artifact in the tree — CI byte-compares
// must therefore never include the profile export (ci.sh compares the
// telemetry JSONL, not profile.json).

#ifndef FAASCOST_OBS_ENGINE_PROFILER_H_
#define FAASCOST_OBS_ENGINE_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace faascost {

class EngineProfiler {
 public:
  // `queue_sample_every`: record one (sim_time, depth) sample per this many
  // events (1 = every event). Throws std::invalid_argument unless > 0.
  explicit EngineProfiler(int64_t queue_sample_every = 64);

  // Names an event type before the run; unnamed types render as "event_N".
  void RegisterEventType(int type, const char* name);

  // One engine event: counts by type and samples queue depth on the cadence.
  void CountEvent(int type, MicroSecs sim_time, size_t queue_depth);

  // RNG accounting, reported by the engine at the end of the run (e.g. from
  // Rng::draw_count()).
  void AddRngDraws(uint64_t draws) { rng_draws_ += draws; }

  // Host wall-clock phases (setup / run / finish). Non-reentrant; EndPhase
  // without a matching BeginPhase is ignored.
  void BeginPhase(const char* name);
  void EndPhase();

  struct QueueSample {
    MicroSecs time = 0;
    int64_t depth = 0;
  };
  struct Phase {
    std::string name;
    int64_t wall_nanos = 0;
  };

  int64_t events_total() const { return events_total_; }
  int64_t EventsOfType(int type) const;
  const std::vector<std::string>& type_names() const { return type_names_; }
  uint64_t rng_draws() const { return rng_draws_; }
  const std::vector<QueueSample>& queue_samples() const { return queue_samples_; }
  int64_t queue_depth_peak() const { return queue_depth_peak_; }
  const std::vector<Phase>& phases() const { return phases_; }

  // Chrome-trace JSON (object form, loads in Perfetto): phase "X" events on
  // a wall-clock track, queue-depth "C" counter events on a sim-time track,
  // and per-type event counts in a top-level summary. Byte-deterministic
  // formatting via JsonWriter; the phase durations themselves are wall-clock
  // measurements and vary run to run.
  std::string ChromeTraceJson() const;

 private:
  void EnsureType(int type);

  int64_t sample_every_;
  int64_t events_total_ = 0;
  int64_t since_sample_ = 0;
  int64_t queue_depth_peak_ = 0;
  uint64_t rng_draws_ = 0;
  std::vector<int64_t> events_by_type_;
  std::vector<std::string> type_names_;
  std::vector<QueueSample> queue_samples_;
  std::vector<Phase> phases_;
  int64_t phase_started_nanos_ = 0;
  bool phase_open_ = false;
};

}  // namespace faascost

#endif  // FAASCOST_OBS_ENGINE_PROFILER_H_
