#include "src/obs/timeseries.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

namespace faascost {

namespace {

// Bitwise double equality (IEEE-754 payload compare). The reconciliation
// contract is bit-for-bit, so an epsilon compare would defeat its purpose;
// operator== on doubles is both banned (faaslint R5) and wrong here (it
// treats +0.0 == -0.0 and NaN != NaN).
bool SameBits(double a, double b) {
  uint64_t ua = 0;
  uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

}  // namespace

const char* WasteKindName(WasteKind kind) {
  switch (kind) {
    case WasteKind::kFailedAttempt:
      return "failed_attempt";
    case WasteKind::kColdInit:
      return "cold_init";
    case WasteKind::kHedgeLoser:
      return "hedge_loser";
    case WasteKind::kStraggler:
      return "straggler";
    case WasteKind::kDeadLetter:
      return "dead_letter";
    case WasteKind::kFailedEgress:
      return "failed_egress";
    case WasteKind::kCrossZoneDetour:
      return "cross_zone_detour";
  }
  return "unknown";
}

std::optional<WasteKind> WasteKindFromName(std::string_view name) {
  for (const WasteKind k : kAllWasteKinds) {
    if (name == WasteKindName(k)) {
      return k;
    }
  }
  return std::nullopt;
}

// --- StreamingHistogram ---

int StreamingHistogram::BucketIndex(int64_t v) {
  constexpr int64_t kExactLimit = int64_t{1} << kSubBucketBits;
  if (v < kExactLimit) {
    return static_cast<int>(v);
  }
  // v in [2^(e-1), 2^e): shift so the mantissa keeps kSubBucketBits+1 bits,
  // giving 2^kSubBucketBits sub-buckets per octave.
  const int e = std::bit_width(static_cast<uint64_t>(v));
  const int shift = e - (kSubBucketBits + 1);
  const int64_t sub = v >> shift;  // In [2^kSubBucketBits, 2^(kSubBucketBits+1)).
  const int octave = e - kSubBucketBits;  // 1 for the first scaled octave.
  return octave * static_cast<int>(kExactLimit) +
         static_cast<int>(sub - kExactLimit);
}

int64_t StreamingHistogram::BucketLow(int index) {
  constexpr int kExact = 1 << kSubBucketBits;
  if (index < kExact) {
    return index;
  }
  const int octave = index / kExact;
  const int sub = index % kExact;
  return static_cast<int64_t>(kExact + sub) << (octave - 1);
}

int64_t StreamingHistogram::BucketHigh(int index) {
  constexpr int kExact = 1 << kSubBucketBits;
  if (index < kExact) {
    return index;
  }
  const int octave = index / kExact;
  return BucketLow(index) + ((int64_t{1} << (octave - 1)) - 1);
}

void StreamingHistogram::BumpBucket(int index, int64_t n) {
  if (buckets_.empty()) {
    base_ = index;
    buckets_.push_back(0);
  } else if (index < base_) {
    buckets_.insert(buckets_.begin(), static_cast<size_t>(base_ - index), 0);
    base_ = index;
  } else if (static_cast<size_t>(index - base_) >= buckets_.size()) {
    buckets_.resize(static_cast<size_t>(index - base_) + 1, 0);
  }
  buckets_[static_cast<size_t>(index - base_)] += n;
}

void StreamingHistogram::SpillRaw() {
  for (const double v : raw_) {
    BumpBucket(BucketIndex(static_cast<int64_t>(v)), 1);
  }
  raw_.clear();
  raw_.shrink_to_fit();
}

void StreamingHistogram::Observe(double value) {
  // NaN fails every comparison, so `!(value >= 0.0)` rejects NaN and
  // negatives in one test; the upper bound rejects +inf and anything that
  // would overflow the int64 bucketing.
  if (!(value >= 0.0) || value >= 9.2e18) {
    ++rejected_;
    return;
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (buckets_.empty()) {
    // Sparse-window fast path: keep raw samples (exact quantiles, one small
    // allocation) until the count justifies bucketing.
    if (raw_.size() < static_cast<size_t>(kInlineSamples)) {
      if (raw_.capacity() == 0) {
        raw_.reserve(static_cast<size_t>(kInlineSamples));
      }
      raw_.push_back(value);
      return;
    }
    SpillRaw();
  }
  BumpBucket(BucketIndex(static_cast<int64_t>(value)), 1);
}

double StreamingHistogram::Mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double StreamingHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(
                               std::ceil(q * static_cast<double>(count_))));
  if (!raw_.empty()) {
    // Raw samples: the quantile is the exact rank-th smallest value.
    std::vector<double> sorted(raw_);
    std::sort(sorted.begin(), sorted.end());
    return sorted[static_cast<size_t>(rank - 1)];
  }
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      const int index = base_ + static_cast<int>(i);
      const double mid = static_cast<double>(BucketLow(index) + BucketHigh(index)) / 2.0;
      // Clamping into [min, max] makes single-sample and all-equal windows
      // return the exact observed value (min == max pins the result).
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

void StreamingHistogram::MergeFrom(const StreamingHistogram& other) {
  if (other.count_ == 0) {
    rejected_ += other.rejected_;
    return;
  }
  if (buckets_.empty() && other.buckets_.empty() &&
      raw_.size() + other.raw_.size() <= static_cast<size_t>(kInlineSamples)) {
    raw_.insert(raw_.end(), other.raw_.begin(), other.raw_.end());
  } else {
    SpillRaw();
    for (const double v : other.raw_) {
      BumpBucket(BucketIndex(static_cast<int64_t>(v)), 1);
    }
    if (buckets_.empty()) {
      base_ = other.base_;
      buckets_ = other.buckets_;
    } else if (!other.buckets_.empty()) {
      // Re-anchor to cover both occupied ranges, then add at the offset.
      if (other.base_ < base_) {
        buckets_.insert(buckets_.begin(), static_cast<size_t>(base_ - other.base_), 0);
        base_ = other.base_;
      }
      const size_t need =
          static_cast<size_t>(other.base_ - base_) + other.buckets_.size();
      if (need > buckets_.size()) {
        buckets_.resize(need, 0);
      }
      for (size_t i = 0; i < other.buckets_.size(); ++i) {
        buckets_[static_cast<size_t>(other.base_ - base_) + i] += other.buckets_[i];
      }
    }
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  rejected_ += other.rejected_;
  sum_ += other.sum_;
}

// --- WindowStats / TimeSeries ---

double WindowStats::WasteTotal() const {
  double total = 0.0;
  for (const double w : waste_usd) {
    total += w;
  }
  return total;
}

TimeSeries::TimeSeries(MicroSecs window) : window_(window) {
  if (window <= 0) {
    throw std::invalid_argument("TimeSeries window must be > 0, got " +
                                std::to_string(window));
  }
}

int TimeSeries::AddLatencyObjective(MicroSecs objective) {
  if (sealed_objectives_) {
    throw std::logic_error(
        "TimeSeries::AddLatencyObjective after recording started");
  }
  objectives_.push_back(objective);
  return static_cast<int>(objectives_.size()) - 1;
}

WindowStats& TimeSeries::WindowForSlow(MicroSecs t) {
  sealed_objectives_ = true;
  const int64_t index = t >= 0 ? t / window_ : 0;
  if (static_cast<size_t>(index) >= windows_.size()) {
    const size_t old = windows_.size();
    windows_.resize(static_cast<size_t>(index) + 1);
    for (size_t i = old; i < windows_.size(); ++i) {
      windows_[i].good.assign(objectives_.size(), 0);
    }
  }
  cached_idx_ = index;
  cached_lo_ = index * window_;
  return windows_[static_cast<size_t>(index)];
}

void TimeSeries::RecordCompletion(MicroSecs t, bool ok, MicroSecs latency) {
  WindowStats& w = WindowFor(t);
  ++w.completions;
  if (!ok) {
    ++w.failures;
  }
  w.latency_us.Observe(static_cast<double>(latency));
  for (size_t i = 0; i < objectives_.size(); ++i) {
    if (ok && latency <= objectives_[i]) {
      ++w.good[i];
    }
  }
}

void TimeSeries::RecordExecution(MicroSecs start, MicroSecs end) {
  if (end <= start) {
    return;
  }
  // Executions are almost always much shorter than a window, so the whole
  // span usually lands in the cached window — attribute it with one add and
  // skip both divisions below.
  if (start >= cached_lo_ && end - cached_lo_ <= window_) {
    windows_[static_cast<size_t>(cached_idx_)].busy_micros += end - start;
    return;
  }
  const int64_t first = start >= 0 ? start / window_ : 0;
  const int64_t last = (end - 1) / window_;
  for (int64_t i = first; i <= last; ++i) {
    const MicroSecs lo = std::max(start, i * window_);
    const MicroSecs hi = std::min(end, (i + 1) * window_);
    WindowFor(lo).busy_micros += hi - lo;
  }
}

Usd TimeSeries::TotalBilledUsd() const {
  Usd total = 0.0;
  for (const WindowStats& w : windows_) {
    total += w.billed_usd;
  }
  return total;
}

Usd TimeSeries::TotalWasteUsd(WasteKind kind) const {
  Usd total = 0.0;
  for (const WindowStats& w : windows_) {
    total += w.waste_usd[static_cast<int>(kind)];
  }
  return total;
}

Usd TimeSeries::TotalNetUsd() const {
  Usd total = 0.0;
  for (const WindowStats& w : windows_) {
    total += w.net_usd;
  }
  return total;
}

int64_t TimeSeries::TotalNetBytes() const {
  int64_t total = 0;
  for (const WindowStats& w : windows_) {
    total += w.net_bytes;
  }
  return total;
}

BilledReconciliation ReconcileBilledUsd(const TimeSeries& series,
                                        const std::vector<Span>& spans) {
  BilledReconciliation rec;
  const MicroSecs width = series.window();
  // Bucket terminal-span USD in emission order: the same order RecordBilled
  // contractually ran in, so per-window sums agree bitwise, not just "up to
  // reassociation". kWorkflow spans are roll-ups of their per-attempt spans
  // plus orchestration fees — counting both sides would double count.
  std::vector<double> by_window;
  for (const Span& sp : spans) {
    if (!sp.terminal || sp.kind == SpanKind::kWorkflow) {
      continue;
    }
    const MicroSecs end = sp.start + sp.duration;
    const int64_t index = end >= 0 ? end / width : 0;
    if (static_cast<size_t>(index) >= by_window.size()) {
      by_window.resize(static_cast<size_t>(index) + 1, 0.0);
    }
    by_window[static_cast<size_t>(index)] += sp.billed_usd;
  }

  const size_t n = std::max(series.window_count(), by_window.size());
  for (size_t i = 0; i < n; ++i) {
    const double from_series =
        i < series.window_count() ? series.window_at(i).billed_usd : 0.0;
    const double from_spans = i < by_window.size() ? by_window[i] : 0.0;
    if (!SameBits(from_series, from_spans)) {
      rec.first_mismatch_window = static_cast<int64_t>(i);
      break;
    }
  }
  rec.timeseries_total = series.TotalBilledUsd();
  for (const double w : by_window) {
    rec.span_total += w;
  }
  rec.ok = rec.first_mismatch_window == -1 &&
           SameBits(rec.timeseries_total, rec.span_total);
  return rec;
}

BilledReconciliation ReconcileTransferUsd(const TimeSeries& series,
                                          const std::vector<Span>& spans) {
  BilledReconciliation rec;
  const MicroSecs width = series.window();
  // Same discipline as ReconcileBilledUsd, over the network column: fold
  // kTransfer-span USD per end-time window in emission order — the order
  // RecordTransfer contractually ran in.
  std::vector<double> by_window;
  for (const Span& sp : spans) {
    if (sp.kind != SpanKind::kTransfer) {
      continue;
    }
    const MicroSecs end = sp.start + sp.duration;
    const int64_t index = end >= 0 ? end / width : 0;
    if (static_cast<size_t>(index) >= by_window.size()) {
      by_window.resize(static_cast<size_t>(index) + 1, 0.0);
    }
    by_window[static_cast<size_t>(index)] += sp.billed_usd;
  }

  const size_t n = std::max(series.window_count(), by_window.size());
  for (size_t i = 0; i < n; ++i) {
    const double from_series =
        i < series.window_count() ? series.window_at(i).net_usd : 0.0;
    const double from_spans = i < by_window.size() ? by_window[i] : 0.0;
    if (!SameBits(from_series, from_spans)) {
      rec.first_mismatch_window = static_cast<int64_t>(i);
      break;
    }
  }
  rec.timeseries_total = series.TotalNetUsd();
  for (const double w : by_window) {
    rec.span_total += w;
  }
  rec.ok = rec.first_mismatch_window == -1 &&
           SameBits(rec.timeseries_total, rec.span_total);
  return rec;
}

void IngestBilledSpans(TimeSeries& series, const std::vector<Span>& spans) {
  for (const Span& sp : spans) {
    if (!sp.terminal || sp.kind == SpanKind::kWorkflow) {
      continue;
    }
    const MicroSecs end = sp.start + sp.duration;
    series.RecordBilled(end, sp.billed_usd);
    if (std::strcmp(sp.status, "ok") == 0 || sp.status[0] == '\0') {
      continue;
    }
    WasteKind kind = WasteKind::kFailedAttempt;
    if (std::strcmp(sp.status, "hedge_loser") == 0) {
      kind = WasteKind::kHedgeLoser;
    } else if (std::strcmp(sp.status, "dead_lettered") == 0) {
      kind = WasteKind::kDeadLetter;
    }
    series.RecordWaste(end, kind, sp.billed_usd);
  }
}

}  // namespace faascost
