#include "src/obs/metrics.h"

#include <algorithm>
#include <cassert>

#include "src/common/stats.h"

namespace faascost {

int MetricsRegistry::Define(Kind kind, const std::string& name) {
  Metric m;
  m.kind = kind;
  m.name = name;
  m.first_column = columns_.size();
  if (kind == Kind::kHistogram) {
    columns_.push_back(name + ".count");
    columns_.push_back(name + ".mean");
    columns_.push_back(name + ".p95");
    columns_.push_back(name + ".max");
  } else {
    columns_.push_back(name);
  }
  metrics_.push_back(std::move(m));
  return static_cast<int>(metrics_.size()) - 1;
}

void MetricsRegistry::Add(int id, double delta) {
  assert(metrics_[static_cast<size_t>(id)].kind == Kind::kCounter);
  metrics_[static_cast<size_t>(id)].value += delta;
}

void MetricsRegistry::Set(int id, double value) {
  assert(metrics_[static_cast<size_t>(id)].kind == Kind::kGauge);
  metrics_[static_cast<size_t>(id)].value = value;
}

void MetricsRegistry::Observe(int id, double value) {
  assert(metrics_[static_cast<size_t>(id)].kind == Kind::kHistogram);
  metrics_[static_cast<size_t>(id)].window.push_back(value);
}

void MetricsRegistry::Sample(MicroSecs now) {
  Row row;
  row.time = now;
  row.values.reserve(columns_.size());
  for (Metric& m : metrics_) {
    if (m.kind == Kind::kHistogram) {
      RunningStats rs;
      std::vector<double> sorted = m.window;
      std::sort(sorted.begin(), sorted.end());
      for (double v : sorted) {
        rs.Add(v);
      }
      row.values.push_back(static_cast<double>(rs.count()));
      row.values.push_back(rs.mean());
      row.values.push_back(PercentileOfSorted(sorted, 95));
      row.values.push_back(rs.max());
      m.window.clear();
    } else {
      row.values.push_back(m.value);
    }
  }
  rows_.push_back(std::move(row));
}

void MetricsRegistry::Reset() {
  metrics_.clear();
  columns_.clear();
  rows_.clear();
}

double MetricsRegistry::Value(int id) const {
  const Metric& m = metrics_[static_cast<size_t>(id)];
  if (m.kind == Kind::kHistogram) {
    return static_cast<double>(m.window.size());
  }
  return m.value;
}

}  // namespace faascost
