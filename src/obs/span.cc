#include "src/obs/span.h"

namespace faascost {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kInit:
      return "init";
    case SpanKind::kServingOverhead:
      return "serving_overhead";
    case SpanKind::kExec:
      return "exec";
    case SpanKind::kBackoff:
      return "backoff";
    case SpanKind::kDrain:
      return "drain";
    case SpanKind::kSandboxLife:
      return "sandbox_life";
    case SpanKind::kThrottle:
      return "throttle";
    case SpanKind::kPreempt:
      return "preempt";
    case SpanKind::kWorkflow:
      return "workflow";
    case SpanKind::kTransfer:
      return "transfer";
  }
  return "unknown";
}

const char* TrackGroupName(int group) {
  switch (group) {
    case kTrackGroupClient:
      return "platform.requests";
    case kTrackGroupSandbox:
      return "platform.sandboxes";
    case kTrackGroupFleetFunction:
      return "fleet.functions";
    case kTrackGroupFleetSandbox:
      return "fleet.sandboxes";
    case kTrackGroupTenant:
      return "sched.tenants";
    case kTrackGroupWorkflow:
      return "workflow.instances";
  }
  return "unknown";
}

}  // namespace faascost
