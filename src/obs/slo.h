// Declarative SLOs with multi-window burn-rate alerting over the sim-time
// series, following the SRE-workbook recipe: a latency objective plus an
// error budget (1 - target), alerting only when BOTH a fast and a slow
// trailing window burn the budget faster than their thresholds. The fast
// window makes the alert responsive to flash crowds; the slow window keeps a
// single bad window from paging.
//
// Evaluation is post-run over a finalized TimeSeries, so alerts are a pure
// function of (windows, spec): deterministic, sim-time-stamped, and
// replayable. Each alert carries the triggering window's billed USD, taken
// bitwise from the time series — the same column ReconcileBilledUsd checks
// against span totals — so "what did the incident cost" reconciles
// bit-for-bit with the run's provenance spans.

#ifndef FAASCOST_OBS_SLO_H_
#define FAASCOST_OBS_SLO_H_

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/obs/timeseries.h"

namespace faascost {

struct SloSpec {
  std::string name = "latency";
  // Index returned by TimeSeries::AddLatencyObjective — the per-window
  // good-event counter this SLO reads (exact counts, not quantile estimates).
  int objective_id = 0;
  // Success target over completions, e.g. 0.999 = 99.9% of completions are
  // ok and within the latency objective.
  double target = 0.999;
  // Trailing window lengths, in multiples of the series' tumbling window.
  int fast_windows = 1;
  int slow_windows = 12;
  // Burn-rate thresholds: budget consumption speed relative to the rate that
  // spends exactly the whole budget over the SLO period (SRE workbook
  // defaults: 14.4x pages within hours, 6x within a day).
  double fast_burn = 14.4;
  double slow_burn = 6.0;

  // Human-readable spec errors; empty when valid.
  std::vector<std::string> Validate() const;
};

// One transition of the alert state machine, stamped with the sim time of
// the window edge that caused it.
struct SloAlert {
  std::string slo;
  MicroSecs time = 0;   // End of the triggering/resolving window.
  bool firing = false;  // true = fire transition, false = resolve.
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  // Billed USD of the triggering window, bitwise from the time series.
  Usd window_billed_usd = 0.0;
  int64_t window_index = 0;
};

// Burn rate of the trailing `count` windows ending at `last` (inclusive):
// (bad completions / completions) / (1 - target). Windows with no
// completions burn nothing. Pure function of the finalized series.
double BurnRate(const TimeSeries& series, const SloSpec& spec, size_t last,
                int count);

// Walks every finalized window in order and returns the fire/resolve
// transitions. Throws std::invalid_argument when the spec fails Validate()
// or names an objective the series does not have.
std::vector<SloAlert> EvaluateSlo(const TimeSeries& series, const SloSpec& spec);

// JSONL export (one alert object per line), byte-deterministic via
// JsonWriter.
std::string SloAlertsJsonl(const std::vector<SloAlert>& alerts);

}  // namespace faascost

#endif  // FAASCOST_OBS_SLO_H_
