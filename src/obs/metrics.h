// Metrics registry: counters, gauges, and windowed histograms sampled on a
// fixed sim-time cadence into a time series.
//
// A simulator (or its driver) defines metrics up front, updates them as
// events fire, and calls Sample(now) on its cadence; each Sample appends one
// row snapshotting every metric. Counters and gauges snapshot their current
// value; histograms summarize the observations since the previous sample
// (count/mean/p95/max) and then clear the window. Like TraceSink, the
// registry is attached via a raw pointer defaulting to null, so detached
// runs pay one pointer test per site and stay bit-identical.

#ifndef FAASCOST_OBS_METRICS_H_
#define FAASCOST_OBS_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace faascost {

class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  // Registers a metric and returns its id. Names should be unique,
  // dot-separated, snake_case (e.g. "platform.queue_depth").
  int Define(Kind kind, const std::string& name);

  // Counter: monotonically accumulates.
  void Add(int id, double delta = 1.0);
  // Gauge: last-write-wins.
  void Set(int id, double value);
  // Histogram: adds one observation to the current window.
  void Observe(int id, double value);

  // Appends a row at sim time `now` and resets histogram windows.
  void Sample(MicroSecs now);

  // Drops all definitions, values, and sampled rows (row capacity is kept).
  // Simulators Define their metrics at the start of each run, so a
  // long-lived registry must be Reset between runs to avoid duplicate
  // columns.
  void Reset();

  struct Row {
    MicroSecs time = 0;
    std::vector<double> values;  // Parallel to columns().
  };

  // Flattened column names in definition order; a histogram named H expands
  // to H.count, H.mean, H.p95, H.max.
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t metric_count() const { return metrics_.size(); }

  // Current value of a counter or gauge (histograms: window size).
  double Value(int id) const;

 private:
  struct Metric {
    Kind kind = Kind::kGauge;
    std::string name;
    double value = 0.0;
    std::vector<double> window;  // Histogram observations since last Sample.
    size_t first_column = 0;
  };

  std::vector<Metric> metrics_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace faascost

#endif  // FAASCOST_OBS_METRICS_H_
