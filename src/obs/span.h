// Span model and sink interface for cross-layer cost provenance.
//
// A Span is one sim-time-stamped segment of work (or waiting) attributed to a
// request attempt, a sandbox, or a tenant. Simulators emit spans through a
// TraceSink pointer that defaults to null: with no sink attached the
// instrumentation reduces to a pointer test, touches no RNG, and leaves
// results bit-identical to untraced runs. The obs library sits between
// `common` and `trace` in the dependency order, so spans carry outcomes as
// interned C strings (e.g. from OutcomeName()) rather than the trace-layer
// Outcome enum.

#ifndef FAASCOST_OBS_SPAN_H_
#define FAASCOST_OBS_SPAN_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"

namespace faascost {

enum class SpanKind {
  kQueueWait,        // Dispatch to execution start (or to terminal rejection).
  kInit,             // Sandbox cold-start initialization.
  kServingOverhead,  // Per-request serving-stack overhead at exec start.
  kExec,             // Function body execution, start to terminal outcome.
  kBackoff,          // Client retry backoff between attempts.
  kDrain,            // Sandbox draining, drain start to death.
  kSandboxLife,      // Sandbox creation to death (or end of run).
  kThrottle,         // Tenant frozen by the CPU bandwidth controller.
  kPreempt,          // Tenant runnable but preempted by co-tenants.
  kWorkflow,         // Workflow instance, first dispatch to terminal outcome.
  kTransfer,         // Network payload moving over the zone topology.
};

const char* SpanKindName(SpanKind kind);

// Track groups: the Chrome-trace `pid` a span renders under. Each group is a
// named process in the exported trace; `Span::track` is the tid within it.
inline constexpr int kTrackGroupClient = 1;         // PlatformSim, per request.
inline constexpr int kTrackGroupSandbox = 2;        // PlatformSim, per sandbox.
inline constexpr int kTrackGroupFleetFunction = 3;  // FleetSim, per function.
inline constexpr int kTrackGroupFleetSandbox = 4;   // FleetSim, per sandbox.
inline constexpr int kTrackGroupTenant = 5;         // HostSim, per tenant.
// WorkflowSim: hop spans share their workflow's tid, so they render nested
// under the kWorkflow root span in the Chrome trace.
inline constexpr int kTrackGroupWorkflow = 6;       // WorkflowSim, per workflow.

const char* TrackGroupName(int group);

struct Span {
  SpanKind kind = SpanKind::kExec;
  int group = kTrackGroupClient;
  int64_t track = 0;

  MicroSecs start = 0;
  MicroSecs duration = 0;

  // Attribution. Fields not meaningful for a given kind stay at defaults.
  int32_t req_idx = -1;
  int32_t attempt = 0;
  int32_t sandbox_id = -1;
  // Layer-specific back-reference (PlatformSim: index into result.attempts;
  // FleetSim: index into result.spans for sandbox spans). -1 when unset.
  int64_t ref = -1;
  // Interned outcome string ("" while in flight / not applicable). Must point
  // at static storage; spans never own it.
  const char* status = "";
  bool cold = false;
  // True on the single span that carries an attempt's billing attribution.
  bool terminal = false;

  // Billed share: filled in by the simulator (FleetSim) or a post-run tagger
  // (core/observe.h for PlatformSim).
  MicroSecs billed_micros = 0;
  Usd billed_usd = 0.0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Record(const Span& span) = 0;
};

// Default sink: appends every span to a vector, in emission order.
class SpanCollector final : public TraceSink {
 public:
  void Record(const Span& span) override { spans_.push_back(span); }

  const std::vector<Span>& spans() const { return spans_; }
  std::vector<Span>* mutable_spans() { return &spans_; }
  void Clear() { spans_.clear(); }

 private:
  std::vector<Span> spans_;
};

}  // namespace faascost

#endif  // FAASCOST_OBS_SPAN_H_
