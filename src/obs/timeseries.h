// Sim-time windowed telemetry: tumbling-window aggregation of the signals the
// paper says must be seen *over time* to turn a bill into a diagnosis —
// request rate, cold-start rate, latency quantiles, billed-USD rate, waste
// USD by category, queue depth, and live concurrency.
//
// Attachment follows the repo's null-sink contract (span.h): simulators hold
// a raw `TimeSeries*` defaulting to null, every hook is one pointer test when
// detached, recording draws no randomness, and detached runs stay
// bit-identical to pre-telemetry goldens.
//
// Windows are tumbling in sim time: an event at time t lands in window
// t / width (integer floor division), so an event exactly on a window edge
// deterministically opens the *next* window — the boundary rule is a pure
// function of (t, width), never of processing order or seed. Windows are
// stored densely by index and grown on demand, because completion times are
// not monotone in processing order (a long execution finishes after later
// arrivals were already processed).
//
// Bit-for-bit USD reconciliation: simulators call RecordBilled at the exact
// code point where the attempt's terminal span is given its invoice, with the
// same timestamp (the span's end) and the same value (the invoice total), in
// the same order. Per-window sums then accumulate in emission order on both
// sides, so ReconcileBilledUsd can compare window sums *bitwise* — the
// honest version of "the time series reproduces revenue", with no epsilon to
// hide a dropped or double-counted attempt behind.

#ifndef FAASCOST_OBS_TIMESERIES_H_
#define FAASCOST_OBS_TIMESERIES_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "src/common/units.h"
#include "src/obs/span.h"

namespace faascost {

// Billed-but-not-useful USD, by root cause. Fleet/platform runs populate
// kFailedAttempt and kColdInit; the workflow engine adds the resilience-
// policy categories it prices (DESIGN.md §10). Categories are disjoint per
// attempt: hedge loser > straggler > failed, first match wins.
enum class WasteKind {
  kFailedAttempt = 0,  // Full invoice of a failed (non-ok) attempt.
  kColdInit,           // Cold-start surcharge share of a successful attempt.
  kHedgeLoser,         // Speculative duplicate that lost the hedge race.
  kStraggler,          // Quorum-join loser billed past the join.
  kDeadLetter,         // Final attempt of a dead-lettered async hop.
  kFailedEgress,       // Transfer USD spent moving a failed attempt's bytes.
  kCrossZoneDetour,    // Outage-rerouting surcharge over the baseline route.
};
inline constexpr int kWasteKindCount = 7;
const char* WasteKindName(WasteKind kind);

// Every category, in enum order. Keep in sync with the enum above — the
// round-trip test (tests/obs/wastekind_roundtrip_test.cc) walks this array
// and fails if a category is missing a name or a name maps back wrong.
inline constexpr WasteKind kAllWasteKinds[] = {
    WasteKind::kFailedAttempt, WasteKind::kColdInit,
    WasteKind::kHedgeLoser,    WasteKind::kStraggler,
    WasteKind::kDeadLetter,    WasteKind::kFailedEgress,
    WasteKind::kCrossZoneDetour,
};

// Inverse of WasteKindName; nullopt for unrecognized names.
std::optional<WasteKind> WasteKindFromName(std::string_view name);

// Fixed-memory streaming histogram with HDR-style integer bucketing: values
// are floored to int64 and bucketed by (octave, sub-bucket) using bit
// operations only — no libm, so quantiles are bit-deterministic across
// platforms. Resolution is kSubBucketBits significant bits (~1.6% relative
// error), exact below 2^kSubBucketBits.
//
// Degenerate-input contract (tested in tests/obs/timeseries_test.cc):
//   - empty histogram: Quantile() == 0.0 for every q;
//   - single sample, or all samples equal: Quantile() is that exact value;
//   - NaN, +/-inf, and negative values are rejected, never stored, and
//     counted in rejected().
class StreamingHistogram {
 public:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per octave.
  // Windows with up to this many samples keep them raw (quantiles are then
  // exact); the first sample past it migrates everything into buckets. A
  // day-scale fleet run at 60s windows averages ~35 samples per window, so
  // the common window never allocates a bucket array at all — that
  // allocation is what used to dominate the telemetry overhead budget.
  static constexpr int kInlineSamples = 64;

  void Observe(double value);

  int64_t count() const { return count_; }
  int64_t rejected() const { return rejected_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  double Mean() const;

  // Lowest recorded value v such that at least ceil(q * count) samples are
  // <= v's bucket, reported as the bucket midpoint clamped into [min, max].
  // q is clamped into [0, 1].
  double Quantile(double q) const;

  void MergeFrom(const StreamingHistogram& other);

 private:
  static int BucketIndex(int64_t v);
  static int64_t BucketLow(int index);
  static int64_t BucketHigh(int index);

  // Adds one count at an absolute bucket index, growing/re-anchoring the
  // offset storage as needed.
  void BumpBucket(int index, int64_t n);
  // Migrates raw_ into buckets_ (called on the first sample past
  // kInlineSamples, and before merging bucketed histograms).
  void SpillRaw();

  // Raw samples while small (exact quantiles, no bucket allocation).
  std::vector<double> raw_;
  // Offset storage: buckets_[i] counts BucketIndex base_ + i, covering only
  // the occupied index range. A window of millisecond-scale latencies spans
  // ~2 octaves (~128 buckets) but their absolute indices sit near 900, so
  // anchoring at the first observed index instead of zero keeps per-window
  // memory and allocation proportional to the spread, not the magnitude.
  std::vector<int64_t> buckets_;
  int base_ = 0;  // Absolute bucket index of buckets_[0]; meaningless when empty.
  int64_t count_ = 0;
  int64_t rejected_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// One tumbling window's aggregates. Default-constructed = untouched window
// (all zero), so dense storage over a sparse run is well-defined.
struct WindowStats {
  int64_t arrivals = 0;     // Attempt arrivals (retries re-arrive).
  int64_t dispatches = 0;   // Attempts that reached a sandbox.
  int64_t cold_starts = 0;
  int64_t completions = 0;  // Terminal request resolutions, ok or not.
  int64_t failures = 0;     // Terminal resolutions that failed.
  int64_t retries = 0;
  double billed_usd = 0.0;  // Accumulated in emission order (see header).
  int64_t queue_depth_max = 0;
  int64_t busy_micros = 0;  // Execution-time overlap with this window.
  StreamingHistogram latency_us;      // Terminal e2e latency, microseconds.
  std::vector<int64_t> good;          // Per latency objective: ok && within.
  // Colder columns (touched on waste events and network transfers only)
  // sit behind the per-event fields so the hot path's cache-line footprint
  // stays what it was before the network columns were added.
  double waste_usd[kWasteKindCount] = {};
  int64_t net_bytes = 0;    // Payload bytes entering the network this window.
  double net_usd = 0.0;     // Transfer USD, accumulated in emission order.

  double WasteTotal() const;
};

class TimeSeries {
 public:
  // Throws std::invalid_argument unless window > 0.
  explicit TimeSeries(MicroSecs window);

  MicroSecs window() const { return window_; }
  int64_t WindowIndexFor(MicroSecs t) const { return t / window_; }

  // Registers a latency objective (for SLO good-event counting) and returns
  // its index into WindowStats::good. Must be called before any
  // RecordCompletion; throws std::logic_error afterwards.
  int AddLatencyObjective(MicroSecs objective);
  size_t objective_count() const { return objectives_.size(); }
  MicroSecs objective_at(size_t i) const { return objectives_[i]; }

  // --- Recording hooks (all sim-time-stamped; out-of-order tolerated) ---
  // The small ones are defined inline: simulators call them once or more per
  // event, so the per-call budget is a few ns — a cached-window hit plus one
  // counter update, no out-of-line call.
  void RecordArrival(MicroSecs t) { ++WindowFor(t).arrivals; }
  // Arrival-side hook: the arrival count and the queue-depth high-water
  // mark share one window lookup (they always fire together in the
  // simulator hot loops).
  void RecordArrivalQueued(MicroSecs t, int64_t depth) {
    WindowStats& w = WindowFor(t);
    ++w.arrivals;
    w.queue_depth_max = std::max(w.queue_depth_max, depth);
  }
  void RecordDispatch(MicroSecs t, bool cold) {
    WindowStats& w = WindowFor(t);
    ++w.dispatches;
    if (cold) {
      ++w.cold_starts;
    }
  }
  // Terminal resolution of a request: success flag and end-to-end latency.
  // Also feeds the per-objective good counters registered above.
  void RecordCompletion(MicroSecs t, bool ok, MicroSecs latency);
  void RecordRetry(MicroSecs t) { ++WindowFor(t).retries; }
  // Billed USD at the attempt's terminal-span end time. Call exactly where
  // the terminal span is priced, in the same order — reconciliation is
  // bitwise (see file header).
  void RecordBilled(MicroSecs t, Usd usd) { WindowFor(t).billed_usd += usd; }
  // Dispatch-side hook for one executed attempt: the dispatch/cold-start
  // counts land in the dispatch window and the billed USD in the end
  // window, two lookups instead of three. The billed add runs exactly where
  // a RecordDispatch + RecordBilled pair would, so the emission-order
  // bitwise contract above is unchanged.
  void RecordDispatchBilled(MicroSecs dispatch_t, MicroSecs end, bool cold,
                            Usd billed) {
    WindowStats& d = WindowFor(dispatch_t);
    ++d.dispatches;
    if (cold) {
      ++d.cold_starts;
    }
    WindowFor(end).billed_usd += billed;
  }
  void RecordWaste(MicroSecs t, WasteKind kind, Usd usd) {
    WindowFor(t).waste_usd[static_cast<int>(kind)] += usd;
  }
  // Network transfer USD at the transfer span's end time. Same bitwise
  // contract as RecordBilled: call where the transfer is priced, in the
  // same order, so ReconcileTransferUsd can compare without an epsilon.
  void RecordTransfer(MicroSecs t, int64_t bytes, Usd usd) {
    WindowStats& w = WindowFor(t);
    w.net_bytes += bytes;
    w.net_usd += usd;
  }
  void RecordQueueDepth(MicroSecs t, int64_t depth) {
    WindowStats& w = WindowFor(t);
    w.queue_depth_max = std::max(w.queue_depth_max, depth);
  }
  // Attributes [start, end) busy time to every window it overlaps; average
  // live concurrency per window is busy_micros / window width.
  void RecordExecution(MicroSecs start, MicroSecs end);

  // --- Finalized view ---
  size_t window_count() const { return windows_.size(); }
  const WindowStats& window_at(size_t i) const { return windows_[i]; }
  // Sum of per-window billed_usd, folded in window order (bit-reproducible
  // given the same recording sequence).
  Usd TotalBilledUsd() const;
  Usd TotalWasteUsd(WasteKind kind) const;
  // Sums of per-window network columns, folded in window order.
  Usd TotalNetUsd() const;
  int64_t TotalNetBytes() const;

 private:
  // Hot path: one branch against the last-hit window. Simulators emit events
  // in near-sorted sim time, so consecutive hooks almost always land in the
  // same window and skip both the 64-bit division and the slow-path call.
  WindowStats& WindowFor(MicroSecs t) {
    // The cache starts cold, so the first record always reaches
    // WindowForSlow, which seals the objective list — no store needed here.
    if (t >= cached_lo_ && t - cached_lo_ < window_) {
      return windows_[static_cast<size_t>(cached_idx_)];
    }
    return WindowForSlow(t);
  }
  WindowStats& WindowForSlow(MicroSecs t);

  MicroSecs window_;
  std::vector<MicroSecs> objectives_;
  std::vector<WindowStats> windows_;
  // Last-hit window cache; lo starts past any timestamp so the first call
  // always takes the slow path (which seeds it).
  int64_t cached_idx_ = 0;
  MicroSecs cached_lo_ = std::numeric_limits<MicroSecs>::max();
  bool sealed_objectives_ = false;
};

// Bitwise per-window reconciliation of the time series' billed-USD column
// against the USD carried on terminal spans. Spans are bucketed by end time
// (start + duration — the timestamp RecordBilled contractually receives) in
// emission order, then each window and the window-order folded totals are
// compared bit-for-bit.
struct BilledReconciliation {
  bool ok = false;
  int64_t first_mismatch_window = -1;  // -1 when ok.
  Usd timeseries_total = 0.0;
  Usd span_total = 0.0;
};
BilledReconciliation ReconcileBilledUsd(const TimeSeries& series,
                                        const std::vector<Span>& spans);

// Feeds post-run-priced terminal spans into the series (PlatformSim bills
// spans after the run via TagPlatformSpanBilling, so it cannot call
// RecordBilled inline). Iterates spans in emission order; by construction
// the series then reconciles bitwise against the same span vector.
void IngestBilledSpans(TimeSeries& series, const std::vector<Span>& spans);

// Same bitwise reconciliation for the network column: the USD carried on
// kTransfer spans (bucketed by end time, folded in emission order) must
// reproduce the series' per-window net_usd exactly. kTransfer spans are
// non-terminal, so the compute-billing reconciliation above never sees them
// and the two columns stay disjoint.
BilledReconciliation ReconcileTransferUsd(const TimeSeries& series,
                                          const std::vector<Span>& spans);

}  // namespace faascost

#endif  // FAASCOST_OBS_TIMESERIES_H_
