#include "src/obs/engine_profiler.h"

#include <algorithm>
#include <stdexcept>

#include "src/common/json_writer.h"
#include "src/common/wallclock.h"

namespace faascost {

EngineProfiler::EngineProfiler(int64_t queue_sample_every)
    : sample_every_(queue_sample_every) {
  if (queue_sample_every <= 0) {
    throw std::invalid_argument("queue_sample_every must be > 0, got " +
                                std::to_string(queue_sample_every));
  }
}

void EngineProfiler::EnsureType(int type) {
  if (static_cast<size_t>(type) >= events_by_type_.size()) {
    const size_t old = events_by_type_.size();
    events_by_type_.resize(static_cast<size_t>(type) + 1, 0);
    type_names_.resize(static_cast<size_t>(type) + 1);
    for (size_t i = old; i < type_names_.size(); ++i) {
      if (type_names_[i].empty()) {
        type_names_[i] = "event_" + std::to_string(i);
      }
    }
  }
}

void EngineProfiler::RegisterEventType(int type, const char* name) {
  if (type < 0) {
    throw std::invalid_argument("event type must be >= 0");
  }
  EnsureType(type);
  type_names_[static_cast<size_t>(type)] = name;
}

void EngineProfiler::CountEvent(int type, MicroSecs sim_time, size_t queue_depth) {
  if (type < 0) {
    return;
  }
  EnsureType(type);
  ++events_by_type_[static_cast<size_t>(type)];
  ++events_total_;
  queue_depth_peak_ =
      std::max(queue_depth_peak_, static_cast<int64_t>(queue_depth));
  if (++since_sample_ >= sample_every_) {
    since_sample_ = 0;
    queue_samples_.push_back({sim_time, static_cast<int64_t>(queue_depth)});
  }
}

int64_t EngineProfiler::EventsOfType(int type) const {
  if (type < 0 || static_cast<size_t>(type) >= events_by_type_.size()) {
    return 0;
  }
  return events_by_type_[static_cast<size_t>(type)];
}

void EngineProfiler::BeginPhase(const char* name) {
  if (phase_open_) {
    EndPhase();
  }
  phases_.push_back({name, 0});
  phase_started_nanos_ = MonotonicNanos();
  phase_open_ = true;
}

void EngineProfiler::EndPhase() {
  if (!phase_open_) {
    return;
  }
  phases_.back().wall_nanos = MonotonicNanos() - phase_started_nanos_;
  phase_open_ = false;
}

std::string EngineProfiler::ChromeTraceJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  // Track metadata: pid 1 = host wall-clock phases, pid 2 = sim-time queue.
  const auto meta = [&w](int pid, const char* name) {
    w.BeginObject();
    w.KV("name", "process_name");
    w.KV("ph", "M");
    w.KV("pid", pid);
    w.KV("tid", 0);
    w.Key("args");
    w.BeginObject();
    w.KV("name", name);
    w.EndObject();
    w.EndObject();
  };
  meta(1, "engine.phases (host wall-clock)");
  meta(2, "engine.queue (sim time)");
  // Phases as complete events laid end to end on the wall-clock track: the
  // trace origin is the first phase's start, so absolute host time never
  // reaches the artifact.
  int64_t cursor_us = 0;
  for (const Phase& phase : phases_) {
    const int64_t dur_us = phase.wall_nanos / 1'000;
    w.BeginObject();
    w.KV("name", phase.name);
    w.KV("ph", "X");
    w.KV("pid", 1);
    w.KV("tid", 0);
    w.KV("ts", cursor_us);
    w.KV("dur", dur_us);
    w.EndObject();
    cursor_us += dur_us;
  }
  for (const QueueSample& sample : queue_samples_) {
    w.BeginObject();
    w.KV("name", "event_queue_depth");
    w.KV("ph", "C");
    w.KV("pid", 2);
    w.KV("tid", 0);
    w.KV("ts", sample.time);
    w.Key("args");
    w.BeginObject();
    w.KV("depth", sample.depth);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.KV("eventsTotal", events_total_);
  w.Key("eventsByType");
  w.BeginObject();
  for (size_t i = 0; i < events_by_type_.size(); ++i) {
    w.KV(type_names_[i], events_by_type_[i]);
  }
  w.EndObject();
  w.KV("rngDraws", rng_draws_);
  w.KV("queueDepthPeak", queue_depth_peak_);
  w.EndObject();
  return w.str();
}

}  // namespace faascost
