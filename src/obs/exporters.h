// Exporters: Chrome trace-event JSON (loads in Perfetto / chrome://tracing)
// and JSONL metrics. Both are byte-deterministic functions of their inputs —
// no wall-clock timestamps, no pointer values, shortest-round-trip doubles —
// so the same seeded run always produces the same artifact bytes.

#ifndef FAASCOST_OBS_EXPORTERS_H_
#define FAASCOST_OBS_EXPORTERS_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"

namespace faascost {

// Renders spans as a Chrome trace-event JSON document (object form, one "X"
// complete event per span plus "M" metadata naming each track group).
// Events are stably sorted by (group, track, start, longer-first) so `ts` is
// monotone within every track and enclosing spans precede their children.
std::string ChromeTraceJson(const std::vector<Span>& spans);

// Renders the registry's sampled rows as JSONL: one JSON object per sample
// with "time_us" plus every column in definition order.
std::string MetricsJsonl(const MetricsRegistry& registry);

// Renders the tumbling-window time series as JSONL: one JSON object per
// window in index order, with rates, latency quantiles (p50/p95/p99 ms),
// billed USD (shortest-round-trip double, so the bytes re-parse to the
// bit-exact per-window sum), waste USD by category, queue depth, and average
// live concurrency. Byte-deterministic for a deterministic run.
std::string TimeSeriesJsonl(const TimeSeries& series);

// Writes `content` to `path`, truncating. Returns false on I/O failure.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace faascost

#endif  // FAASCOST_OBS_EXPORTERS_H_
