#include "src/obs/exporters.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>
#include <utility>

#include "src/common/fileio.h"
#include "src/common/json_writer.h"

namespace faascost {

namespace {

// Sort order guaranteeing monotone ts per (pid, tid) track and parents before
// equal-start children. stable_sort keeps emission order for exact ties.
bool SpanBefore(const Span& a, const Span& b) {
  if (a.group != b.group) {
    return a.group < b.group;
  }
  if (a.track != b.track) {
    return a.track < b.track;
  }
  if (a.start != b.start) {
    return a.start < b.start;
  }
  return a.duration > b.duration;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<Span>& spans) {
  std::vector<Span> sorted = spans;
  std::stable_sort(sorted.begin(), sorted.end(), SpanBefore);

  std::set<int> groups;
  for (const Span& s : sorted) {
    groups.insert(s.group);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.Value("ms");
  w.Key("traceEvents");
  w.BeginArray();
  for (const int group : groups) {
    w.BeginObject();
    w.KV("ph", "M");
    w.KV("pid", static_cast<int64_t>(group));
    w.KV("name", "process_name");
    w.Key("args");
    w.BeginObject();
    w.KV("name", TrackGroupName(group));
    w.EndObject();
    w.EndObject();
  }
  for (const Span& s : sorted) {
    w.BeginObject();
    w.KV("ph", "X");
    w.KV("name", SpanKindName(s.kind));
    w.KV("cat", TrackGroupName(s.group));
    w.KV("pid", static_cast<int64_t>(s.group));
    w.KV("tid", s.track);
    w.KV("ts", s.start);
    w.KV("dur", s.duration);
    w.Key("args");
    w.BeginObject();
    if (s.req_idx >= 0) {
      w.KV("req", static_cast<int64_t>(s.req_idx));
      w.KV("attempt", static_cast<int64_t>(s.attempt));
    }
    if (s.sandbox_id >= 0) {
      w.KV("sandbox", static_cast<int64_t>(s.sandbox_id));
    }
    if (s.status != nullptr && s.status[0] != '\0') {
      w.KV("status", s.status);
    }
    if (s.cold) {
      w.KV("cold", true);
    }
    if (s.terminal) {
      w.KV("billed_us", s.billed_micros);
      w.KV("billed_usd", s.billed_usd);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string MetricsJsonl(const MetricsRegistry& registry) {
  std::string out;
  const std::vector<std::string>& columns = registry.columns();
  for (const MetricsRegistry::Row& row : registry.rows()) {
    JsonWriter w;
    w.BeginObject();
    w.KV("time_us", row.time);
    for (size_t i = 0; i < columns.size(); ++i) {
      w.KV(columns[i], row.values[i]);
    }
    w.EndObject();
    out += w.str();
    out.push_back('\n');
  }
  return out;
}

std::string TimeSeriesJsonl(const TimeSeries& series) {
  std::string out;
  const MicroSecs width = series.window();
  for (size_t i = 0; i < series.window_count(); ++i) {
    const WindowStats& win = series.window_at(i);
    JsonWriter w;
    w.BeginObject();
    w.KV("window", static_cast<int64_t>(i));
    w.KV("start_us", static_cast<MicroSecs>(i) * width);
    w.KV("end_us", static_cast<MicroSecs>(i + 1) * width);
    w.KV("arrivals", win.arrivals);
    w.KV("dispatches", win.dispatches);
    w.KV("cold_starts", win.cold_starts);
    w.KV("completions", win.completions);
    w.KV("failures", win.failures);
    w.KV("retries", win.retries);
    w.KV("cold_start_rate",
         win.dispatches > 0 ? static_cast<double>(win.cold_starts) /
                                  static_cast<double>(win.dispatches)
                            : 0.0);
    w.KV("p50_ms", win.latency_us.Quantile(0.50) / 1'000.0);
    w.KV("p95_ms", win.latency_us.Quantile(0.95) / 1'000.0);
    w.KV("p99_ms", win.latency_us.Quantile(0.99) / 1'000.0);
    w.KV("latency_samples", win.latency_us.count());
    w.KV("latency_rejected", win.latency_us.rejected());
    w.KV("billed_usd", win.billed_usd);
    w.KV("waste_usd_total", win.WasteTotal());
    for (int k = 0; k < kWasteKindCount; ++k) {
      w.KV(std::string("waste_usd_") + WasteKindName(static_cast<WasteKind>(k)),
           win.waste_usd[k]);
    }
    w.KV("net_bytes", win.net_bytes);
    w.KV("net_usd", win.net_usd);
    w.KV("queue_depth_max", win.queue_depth_max);
    w.KV("avg_concurrency",
         static_cast<double>(win.busy_micros) / static_cast<double>(width));
    for (size_t obj = 0; obj < series.objective_count(); ++obj) {
      w.KV("good_within_" + std::to_string(series.objective_at(obj) / 1'000) + "ms",
           win.good[obj]);
    }
    w.EndObject();
    out += w.str();
    out.push_back('\n');
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  // Crash-safe: readers of run artifacts never see a half-written file.
  try {
    WriteFileAtomic(path, content);
  } catch (const std::runtime_error&) {
    return false;
  }
  return true;
}

}  // namespace faascost
