#include "src/obs/exporters.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>
#include <utility>

#include "src/common/fileio.h"
#include "src/common/json_writer.h"

namespace faascost {

namespace {

// Sort order guaranteeing monotone ts per (pid, tid) track and parents before
// equal-start children. stable_sort keeps emission order for exact ties.
bool SpanBefore(const Span& a, const Span& b) {
  if (a.group != b.group) {
    return a.group < b.group;
  }
  if (a.track != b.track) {
    return a.track < b.track;
  }
  if (a.start != b.start) {
    return a.start < b.start;
  }
  return a.duration > b.duration;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<Span>& spans) {
  std::vector<Span> sorted = spans;
  std::stable_sort(sorted.begin(), sorted.end(), SpanBefore);

  std::set<int> groups;
  for (const Span& s : sorted) {
    groups.insert(s.group);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.Value("ms");
  w.Key("traceEvents");
  w.BeginArray();
  for (const int group : groups) {
    w.BeginObject();
    w.KV("ph", "M");
    w.KV("pid", static_cast<int64_t>(group));
    w.KV("name", "process_name");
    w.Key("args");
    w.BeginObject();
    w.KV("name", TrackGroupName(group));
    w.EndObject();
    w.EndObject();
  }
  for (const Span& s : sorted) {
    w.BeginObject();
    w.KV("ph", "X");
    w.KV("name", SpanKindName(s.kind));
    w.KV("cat", TrackGroupName(s.group));
    w.KV("pid", static_cast<int64_t>(s.group));
    w.KV("tid", s.track);
    w.KV("ts", s.start);
    w.KV("dur", s.duration);
    w.Key("args");
    w.BeginObject();
    if (s.req_idx >= 0) {
      w.KV("req", static_cast<int64_t>(s.req_idx));
      w.KV("attempt", static_cast<int64_t>(s.attempt));
    }
    if (s.sandbox_id >= 0) {
      w.KV("sandbox", static_cast<int64_t>(s.sandbox_id));
    }
    if (s.status != nullptr && s.status[0] != '\0') {
      w.KV("status", s.status);
    }
    if (s.cold) {
      w.KV("cold", true);
    }
    if (s.terminal) {
      w.KV("billed_us", s.billed_micros);
      w.KV("billed_usd", s.billed_usd);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string MetricsJsonl(const MetricsRegistry& registry) {
  std::string out;
  const std::vector<std::string>& columns = registry.columns();
  for (const MetricsRegistry::Row& row : registry.rows()) {
    JsonWriter w;
    w.BeginObject();
    w.KV("time_us", row.time);
    for (size_t i = 0; i < columns.size(); ++i) {
      w.KV(columns[i], row.values[i]);
    }
    w.EndObject();
    out += w.str();
    out.push_back('\n');
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  // Crash-safe: readers of run artifacts never see a half-written file.
  try {
    WriteFileAtomic(path, content);
  } catch (const std::runtime_error&) {
    return false;
  }
  return true;
}

}  // namespace faascost
