#include "src/core/cost_decomposition.h"

#include <algorithm>

namespace faascost {

RequestRecord OutcomeToRecord(const RequestOutcome& outcome,
                              const PlatformSimConfig& sim_config,
                              const WorkloadSpec& workload) {
  RequestRecord r;
  r.function_id = 0;
  r.arrival = outcome.arrival;
  r.exec_duration = outcome.reported_duration;
  r.cpu_time = workload.cpu_time;
  r.alloc_vcpus = sim_config.vcpus;
  r.alloc_mem_mb = sim_config.mem_mb;
  r.used_mem_mb = std::min<MegaBytes>(workload.memory_footprint, sim_config.mem_mb);
  r.cold_start = outcome.cold_start;
  r.init_duration = outcome.init_duration;
  return r;
}

CostBreakdown DecomposeCosts(const BillingModel& billing, const PlatformSimConfig& sim_config,
                             const WorkloadSpec& workload,
                             const std::vector<RequestOutcome>& outcomes) {
  CostBreakdown out;
  out.platform = billing.platform;
  out.num_requests = outcomes.size();

  const SnappedAllocation alloc =
      SnapAllocation(billing, sim_config.vcpus, sim_config.mem_mb);

  // Expected (jitter-free) serving overhead for this allocation.
  const ServingOverheadModel& ov = sim_config.serving;
  double overhead_us = static_cast<double>(ov.base + ov.cpu_work);
  if (sim_config.vcpus < 1.0) {
    overhead_us += static_cast<double>(ov.low_alloc_penalty) * (1.0 - sim_config.vcpus);
  }

  const bool wall_billed = billing.billable_time != BillableTime::kConsumedCpuTime;

  // Decomposed unit rates for valuing consumed resources. When CPU is not a
  // separate line item its cost is embedded in the memory price; split it
  // out against the industry-reference memory rate (GCP's $2.5e-6 per GB-s,
  // the paper's §2.2 anchor).
  constexpr Usd kReferenceMemRate = 2.5e-6;
  Usd cpu_rate = billing.price_per_vcpu_second;
  Usd mem_rate = billing.bills_memory ? billing.price_per_gb_second : 0.0;
  if (!billing.bills_cpu_separately && billing.cpu_basis == ResourceBasis::kAllocated &&
      billing.mem_basis == ResourceBasis::kAllocated && billing.bills_memory &&
      alloc.vcpus > 0.0) {
    const double gb_per_vcpu = MbToGb(alloc.mem_mb / alloc.vcpus);
    cpu_rate = std::max(0.0, (billing.price_per_gb_second - kReferenceMemRate)) *
               gb_per_vcpu;
    mem_rate = std::min(billing.price_per_gb_second, kReferenceMemRate);
  }

  for (const auto& o : outcomes) {
    const RequestRecord rec = OutcomeToRecord(o, sim_config, workload);
    const Invoice inv = ComputeInvoice(billing, rec);
    out.total += inv.total;
    out.invocation_fees += inv.invocation_cost;

    // Contention-free, overhead-free execution of the same request.
    const double ideal_exec_s =
        MicrosToSecs(workload.cpu_time) / std::min(1.0, sim_config.vcpus) +
        MicrosToSecs(workload.io_wait);

    if (!wall_billed) {
      // Consumption billing (Cloudflare): the resource component tracks
      // usage; the only inflation is the 1 ms CPU-time ceil.
      const Usd useful = billing.price_per_vcpu_second * MicrosToSecs(rec.cpu_time);
      out.useful_work += std::min(useful, inv.resource_cost);
      out.rounding += std::max(0.0, inv.resource_cost - useful);
      continue;
    }

    // Effective dollars per billable second of this request, derived from
    // the invoice itself so the components always sum to the bill.
    const double billable_s = MicrosToSecs(inv.billable_time);
    const Usd rate = billable_s > 0.0 ? inv.resource_cost / billable_s : 0.0;

    MicroSecs raw_time = rec.exec_duration;
    if (billing.billable_time == BillableTime::kTurnaround) {
      raw_time += rec.init_duration;
    }
    const double rounding_s = std::max(0.0, MicrosToSecs(inv.billable_time - raw_time));
    const Usd rounding_cost = rate * rounding_s;
    const Usd init_cost = billing.billable_time == BillableTime::kTurnaround
                              ? rate * MicrosToSecs(rec.init_duration)
                              : 0.0;
    const double exec_s = MicrosToSecs(rec.exec_duration);
    const Usd overhead_cost = rate * std::min(overhead_us / 1e6, exec_s);
    const Usd contention_cost =
        rate * std::max(0.0, exec_s - ideal_exec_s - overhead_us / 1e6);

    // Useful work: the resources actually consumed over the ideal
    // execution, valued at decomposed unit rates; bounded by what is left
    // of the bill after the structural components.
    Usd useful = 0.0;
    if (billing.mem_basis == ResourceBasis::kConsumed) {
      // Memory-consumption billing (Azure): CPU is not billed at all.
      useful = billing.price_per_gb_second * MbToGb(rec.used_mem_mb) * ideal_exec_s;
    } else {
      useful = cpu_rate * MicrosToSecs(rec.cpu_time) +
               mem_rate * MbToGb(rec.used_mem_mb) * ideal_exec_s;
    }
    const Usd structural = rounding_cost + init_cost + overhead_cost + contention_cost;
    useful = std::clamp(useful, 0.0, std::max(0.0, inv.resource_cost - structural));

    out.rounding += rounding_cost;
    out.initialization += init_cost;
    out.serving_overhead += overhead_cost;
    out.contention += contention_cost;
    out.useful_work += useful;
    // Whatever remains is allocation paid for but not used.
    out.utilization_gap += std::max(0.0, inv.resource_cost - structural - useful);
  }
  return out;
}

}  // namespace faascost
