// Quantization-aware function rightsizing (paper §4.3 implications).
//
// Existing rightsizing tools assume reciprocal scaling: halve the allocation,
// double the duration, so allocation-based cost stays roughly flat and the
// cheapest SLO-compliant configuration is the smallest one that meets the
// latency target under the reciprocal model. The paper shows the real
// duration curve has step-like jumps from quantized scheduling (Fig. 10), so
// a fine-grained, measurement-driven search can find configurations that are
// both cheaper and faster than the reciprocal-model choice.

#ifndef FAASCOST_CORE_RIGHTSIZING_H_
#define FAASCOST_CORE_RIGHTSIZING_H_

#include <vector>

#include "src/billing/model.h"
#include "src/sched/config.h"

namespace faascost {

struct RightsizingPoint {
  MegaBytes mem_mb = 0.0;
  double vcpu_fraction = 0.0;
  double mean_duration_ms = 0.0;   // Measured via the scheduling simulator.
  double modeled_duration_ms = 0.0; // Reciprocal-model prediction.
  Usd cost_per_invocation = 0.0;    // Billable cost at the measured duration.
  Usd modeled_cost = 0.0;           // Cost at the modeled duration.
  bool meets_slo = false;
  bool modeled_meets_slo = false;
};

struct RightsizingResult {
  std::vector<RightsizingPoint> points;
  // Best configuration found by measuring through the scheduler simulator.
  RightsizingPoint best;
  // Configuration a reciprocal-model (quantization-agnostic) tool would pick.
  RightsizingPoint model_choice;
  // Relative cost saving of quantization-aware over model-driven choice,
  // evaluated at real (measured) costs.
  double savings_fraction = 0.0;
};

struct RightsizingConfig {
  MicroSecs cpu_demand = 160 * kMicrosPerMilli;
  double latency_slo_ms = 1'000.0;
  MegaBytes mem_min = 128.0;
  MegaBytes mem_max = 1'769.0;
  MegaBytes mem_step = 32.0;
  int samples_per_point = 60;
  // AWS-style scheduling environment.
  MicroSecs period = 20 * kMicrosPerMilli;
  int config_hz = 250;
};

// Sweeps AWS Lambda memory sizes for a CPU-bound function under `billing`
// (use MakeBillingModel(Platform::kAwsLambda)) and returns the best
// measured configuration vs the reciprocal-model choice.
RightsizingResult RightsizeAwsMemory(const RightsizingConfig& config,
                                     const BillingModel& billing, uint64_t seed);

// GCP variant: sweeps the fine-grained 1st-gen CPU knob (0.01 vCPU steps) at
// a fixed memory size under GCP's request-based billing (100 ms rounding +
// separate CPU pricing). The quantization effects here come from the 100 ms
// period and the coarse billable-time granularity.
struct GcpRightsizingConfig {
  MicroSecs cpu_demand = 160 * kMicrosPerMilli;
  double latency_slo_ms = 2'000.0;
  double vcpu_min = 0.08;
  double vcpu_max = 1.0;
  double vcpu_step = 0.02;
  MegaBytes mem_mb = 512.0;
  int samples_per_point = 60;
  MicroSecs period = 100 * kMicrosPerMilli;
  int config_hz = 1000;
};

RightsizingResult RightsizeGcpCpu(const GcpRightsizingConfig& config,
                                  const BillingModel& billing, uint64_t seed);

}  // namespace faascost

#endif  // FAASCOST_CORE_RIGHTSIZING_H_
