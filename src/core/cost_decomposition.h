// Top-down cost decomposition: the paper's central exercise of tracing a
// user-facing bill down through the serving architecture to OS scheduling.
//
// For a simulated run of a function on a platform, the bill of every request
// is decomposed into:
//   - useful work: the cost of the CPU actually consumed and the memory
//     actually used over the contention-free execution,
//   - utilization gap: allocation-based billing of resources the request
//     held but did not use,
//   - initialization: billable time attributable to cold starts under
//     turnaround billing,
//   - serving overhead: the architecture's per-request latency (Fig. 8),
//   - contention: execution-time inflation from the multi-concurrency model
//     (Fig. 6),
//   - rounding: billable-time granularity and minimum cutoffs (Fig. 5),
//   - invocation fees.

#ifndef FAASCOST_CORE_COST_DECOMPOSITION_H_
#define FAASCOST_CORE_COST_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "src/billing/model.h"
#include "src/platform/platform_sim.h"
#include "src/platform/workload.h"

namespace faascost {

struct CostBreakdown {
  std::string platform;
  size_t num_requests = 0;
  Usd total = 0.0;
  Usd useful_work = 0.0;
  Usd utilization_gap = 0.0;
  Usd initialization = 0.0;
  Usd serving_overhead = 0.0;
  Usd contention = 0.0;
  Usd rounding = 0.0;
  Usd invocation_fees = 0.0;

  // Fraction of the bill that paid for useful work.
  double UsefulFraction() const { return total > 0.0 ? useful_work / total : 0.0; }
};

// Decomposes the bill of a simulated run. `workload` provides per-request
// CPU demand and memory footprint; `sim_config` provides the allocation and
// the expected serving overhead used to separate overhead from contention.
CostBreakdown DecomposeCosts(const BillingModel& billing, const PlatformSimConfig& sim_config,
                             const WorkloadSpec& workload,
                             const std::vector<RequestOutcome>& outcomes);

// Converts a simulated request outcome into a billing-layer trace record.
RequestRecord OutcomeToRecord(const RequestOutcome& outcome,
                              const PlatformSimConfig& sim_config,
                              const WorkloadSpec& workload);

}  // namespace faascost

#endif  // FAASCOST_CORE_COST_DECOMPOSITION_H_
