// Provider-side economics of serverless serving (paper §3.3 and §5): keeping
// sandboxes alive holds machine resources whose cost the provider bears, so
// keep-alive policy, KA-phase resource behaviour, and cold-start rates trade
// off against each other -- and are ultimately "passed on to users through
// per-unit resource pricing or invocation fees".
//
// The hardware cost proxy is the §1 price comparison: an EC2 c6g.medium
// (1 vCPU / 2 GB) costs $9.4753e-6 per second, i.e. the provider can rent
// the same capacity users buy through Lambda at ~41% of the Lambda price.

#ifndef FAASCOST_CORE_PROVIDER_ECONOMICS_H_
#define FAASCOST_CORE_PROVIDER_ECONOMICS_H_

#include "src/billing/model.h"
#include "src/platform/keepalive.h"
#include "src/platform/platform_sim.h"
#include "src/platform/workload.h"

namespace faascost {

// Machine cost rates (per second) the provider pays for held resources.
struct HardwareCostModel {
  // Decomposed from the EC2 c6g.medium price with the §2.2 CPU:memory
  // price-ratio consensus (~9.1): 1 vCPU + 2 GB = $9.4753e-6/s.
  Usd per_vcpu_second = 7.68e-6;
  Usd per_gb_second = 8.53e-7;
  // Residual cost share of a sandbox whose resources are deallocated during
  // KA (snapshot/cache storage, control-plane state).
  double frozen_residual = 0.03;
};

struct ProviderEconomics {
  Usd revenue = 0.0;        // What the user is billed.
  Usd provider_cost = 0.0;  // Machine-time cost of serving.
  double margin = 0.0;      // (revenue - cost) / revenue.
  double cold_start_rate = 0.0;
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;  // KA-phase instance time.
  double init_seconds = 0.0;
};

// Computes revenue (by billing every request under `billing`) and provider
// machine cost (by pricing each sandbox phase: init and busy at full
// allocation; KA idle according to the keep-alive policy's resource
// behaviour).
ProviderEconomics AnalyzeProviderEconomics(const BillingModel& billing,
                                           const PlatformSimConfig& sim_config,
                                           const WorkloadSpec& workload,
                                           const PlatformSimResult& result,
                                           const HardwareCostModel& hardware = {});

}  // namespace faascost

#endif  // FAASCOST_CORE_PROVIDER_ECONOMICS_H_
