// Cost provenance for PlatformSim traces: stamps every attempt's terminal
// span with the billed microseconds and USD of that attempt's invoice, so a
// trace answers "where did this dollar go". FleetSim tags spans inline (it
// computes invoices as it runs); PlatformSim does not link billing, so the
// tagging lives here at the core layer.

#ifndef FAASCOST_CORE_OBSERVE_H_
#define FAASCOST_CORE_OBSERVE_H_

#include <vector>

#include "src/billing/model.h"
#include "src/net/model.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"
#include "src/platform/platform_sim.h"

namespace faascost {

struct ProvenanceTotals {
  Usd billed_usd = 0.0;            // Sum over all attempts' invoices.
  Usd failed_usd = 0.0;            // Share billed to non-kOk attempts.
  MicroSecs billed_micros = 0;     // Sum of rounded billable time.
  int64_t tagged_spans = 0;        // Terminal spans that received a tag.
};

// Prices every attempt of `result` under `billing` (via BillableRecord with
// the config's allocation) and writes each invoice onto the attempt's
// terminal span — the span with `terminal` set, found through `Span::ref`.
// Returns the run's invoice totals; by construction the USD tags across
// `spans` sum to `billed_usd` exactly. Spans from other simulators (no ref /
// not terminal) are left untouched.
ProvenanceTotals TagPlatformSpanBilling(std::vector<Span>* spans,
                                        const PlatformSimResult& result,
                                        const PlatformSimConfig& config,
                                        const BillingModel& billing);

struct NetworkTotals {
  int64_t transfers = 0;
  int64_t bytes = 0;
  Usd transfer_usd = 0.0;  // Emission-order fold of the marginal charges.
  Usd ops_usd = 0.0;       // Storage class-A/class-B operation fees.
  Usd detour_usd = 0.0;    // Outage-reroute surcharge subset of transfer_usd.
};

// Routes every executed attempt's client ingress and response egress through
// `net`, in attempt-emission order — the same reason TagPlatformSpanBilling
// lives here: PlatformSim does not link billing, and the network model
// bundles a price sheet. The engine is untouched, so digests, checkpoints,
// and pre-network goldens stay valid; the network rides on top.
//
// Per executed attempt (one that reached a sandbox; shed, rejected, and
// breaker-dropped attempts move nothing): the request payload travels
// internet -> ZoneOf(sandbox) at dispatch time, the response (or the error
// body on failure) travels back at the attempt's end, and the per-request
// storage-op bundle is metered. Each transfer appends a kTransfer span to
// `spans` and a RecordTransfer into `series` (either may be null), with
// waste attribution: a failed attempt's transfer USD -> kFailedEgress, a
// successful attempt's reroute surcharge -> kCrossZoneDetour. The terminal
// attempt's transfer time extends its request's e2e_latency in `result` —
// the client path, never sandbox occupancy.
NetworkTotals MeterPlatformNetwork(NetworkModel& net, PlatformSimResult* result,
                                   std::vector<Span>* spans, TimeSeries* series);

}  // namespace faascost

#endif  // FAASCOST_CORE_OBSERVE_H_
