// Cost provenance for PlatformSim traces: stamps every attempt's terminal
// span with the billed microseconds and USD of that attempt's invoice, so a
// trace answers "where did this dollar go". FleetSim tags spans inline (it
// computes invoices as it runs); PlatformSim does not link billing, so the
// tagging lives here at the core layer.

#ifndef FAASCOST_CORE_OBSERVE_H_
#define FAASCOST_CORE_OBSERVE_H_

#include <vector>

#include "src/billing/model.h"
#include "src/obs/span.h"
#include "src/platform/platform_sim.h"

namespace faascost {

struct ProvenanceTotals {
  Usd billed_usd = 0.0;            // Sum over all attempts' invoices.
  Usd failed_usd = 0.0;            // Share billed to non-kOk attempts.
  MicroSecs billed_micros = 0;     // Sum of rounded billable time.
  int64_t tagged_spans = 0;        // Terminal spans that received a tag.
};

// Prices every attempt of `result` under `billing` (via BillableRecord with
// the config's allocation) and writes each invoice onto the attempt's
// terminal span — the span with `terminal` set, found through `Span::ref`.
// Returns the run's invoice totals; by construction the USD tags across
// `spans` sum to `billed_usd` exactly. Spans from other simulators (no ref /
// not terminal) are left untouched.
ProvenanceTotals TagPlatformSpanBilling(std::vector<Span>* spans,
                                        const PlatformSimResult& result,
                                        const PlatformSimConfig& config,
                                        const BillingModel& billing);

}  // namespace faascost

#endif  // FAASCOST_CORE_OBSERVE_H_
