#include "src/core/rightsizing.h"

#include <algorithm>
#include <cassert>

#include "src/common/stats.h"
#include "src/sched/bandwidth_sim.h"
#include "src/sched/closed_form.h"

namespace faascost {

namespace {

Usd CostAtDuration(const BillingModel& billing, double vcpus, MegaBytes mem_mb,
                   double duration_ms) {
  RequestRecord r;
  r.exec_duration = static_cast<MicroSecs>(duration_ms * 1'000.0);
  r.cpu_time = r.exec_duration;
  r.alloc_vcpus = vcpus;
  r.alloc_mem_mb = mem_mb;
  r.used_mem_mb = mem_mb;
  return ComputeInvoice(billing, r).total;
}

// Picks best (measured, SLO-feasible, cheapest) and model_choice (cheapest
// under the reciprocal model) from a filled sweep, and the savings.
void SelectChoices(RightsizingResult& out) {
  const RightsizingPoint* best = nullptr;
  for (const auto& pt : out.points) {
    if (!pt.meets_slo) {
      continue;
    }
    if (best == nullptr || pt.cost_per_invocation < best->cost_per_invocation) {
      best = &pt;
    }
  }
  const RightsizingPoint* model_choice = nullptr;
  for (const auto& pt : out.points) {
    if (!pt.modeled_meets_slo) {
      continue;
    }
    if (model_choice == nullptr || pt.modeled_cost < model_choice->modeled_cost - 1e-12) {
      model_choice = &pt;
    }
  }
  if (best != nullptr) {
    out.best = *best;
  }
  if (model_choice != nullptr) {
    out.model_choice = *model_choice;
  }
  if (best != nullptr && model_choice != nullptr &&
      model_choice->cost_per_invocation > 0.0) {
    out.savings_fraction =
        1.0 - best->cost_per_invocation / model_choice->cost_per_invocation;
  }
}

}  // namespace

RightsizingResult RightsizeAwsMemory(const RightsizingConfig& config,
                                     const BillingModel& billing, uint64_t seed) {
  assert(config.mem_step > 0.0);
  assert(config.mem_max >= config.mem_min);
  RightsizingResult out;
  Rng rng(seed);

  // Reference at full allocation for the reciprocal model.
  double full_alloc_ms = MicrosToMillis(config.cpu_demand);

  for (MegaBytes mem = config.mem_min; mem <= config.mem_max + 1e-9;
       mem += config.mem_step) {
    RightsizingPoint pt;
    pt.mem_mb = mem;
    pt.vcpu_fraction = AwsVcpuFractionForMemory(mem);

    const SchedConfig sc =
        MakeSchedConfig(config.period, std::min(pt.vcpu_fraction, 1.0), config.config_hz);
    const CpuBandwidthSim sim(sc);
    RunningStats stats;
    for (int i = 0; i < config.samples_per_point; ++i) {
      const TaskRunResult r = sim.RunWithRandomPhase(
          config.cpu_demand, 3'600LL * kMicrosPerSec, rng);
      stats.Add(MicrosToMillis(r.wall_duration));
    }
    pt.mean_duration_ms = stats.mean();
    pt.modeled_duration_ms =
        full_alloc_ms / std::min(1.0, std::max(pt.vcpu_fraction, 1e-9));
    pt.cost_per_invocation =
        CostAtDuration(billing, pt.vcpu_fraction, mem, pt.mean_duration_ms);
    pt.modeled_cost =
        CostAtDuration(billing, pt.vcpu_fraction, mem, pt.modeled_duration_ms);
    pt.meets_slo = pt.mean_duration_ms <= config.latency_slo_ms;
    pt.modeled_meets_slo = pt.modeled_duration_ms <= config.latency_slo_ms;
    out.points.push_back(pt);
  }
  SelectChoices(out);
  return out;
}

RightsizingResult RightsizeGcpCpu(const GcpRightsizingConfig& config,
                                  const BillingModel& billing, uint64_t seed) {
  assert(config.vcpu_step > 0.0);
  assert(config.vcpu_max >= config.vcpu_min);
  RightsizingResult out;
  Rng rng(seed);
  const double full_alloc_ms = MicrosToMillis(config.cpu_demand);

  for (double vcpus = config.vcpu_min; vcpus <= config.vcpu_max + 1e-9;
       vcpus += config.vcpu_step) {
    RightsizingPoint pt;
    pt.mem_mb = config.mem_mb;
    pt.vcpu_fraction = vcpus;

    const SchedConfig sc =
        MakeSchedConfig(config.period, std::min(vcpus, 1.0), config.config_hz);
    const CpuBandwidthSim sim(sc);
    RunningStats stats;
    for (int i = 0; i < config.samples_per_point; ++i) {
      const TaskRunResult r =
          sim.RunWithRandomPhase(config.cpu_demand, 3'600LL * kMicrosPerSec, rng);
      stats.Add(MicrosToMillis(r.wall_duration));
    }
    pt.mean_duration_ms = stats.mean();
    pt.modeled_duration_ms = full_alloc_ms / std::min(1.0, std::max(vcpus, 1e-9));
    pt.cost_per_invocation =
        CostAtDuration(billing, vcpus, config.mem_mb, pt.mean_duration_ms);
    pt.modeled_cost =
        CostAtDuration(billing, vcpus, config.mem_mb, pt.modeled_duration_ms);
    pt.meets_slo = pt.mean_duration_ms <= config.latency_slo_ms;
    pt.modeled_meets_slo = pt.modeled_duration_ms <= config.latency_slo_ms;
    out.points.push_back(pt);
  }
  SelectChoices(out);
  return out;
}

}  // namespace faascost
