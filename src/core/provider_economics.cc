#include "src/core/provider_economics.h"

#include <algorithm>

#include "src/core/cost_decomposition.h"

namespace faascost {

ProviderEconomics AnalyzeProviderEconomics(const BillingModel& billing,
                                           const PlatformSimConfig& sim_config,
                                           const WorkloadSpec& workload,
                                           const PlatformSimResult& result,
                                           const HardwareCostModel& hardware) {
  ProviderEconomics out;

  for (const auto& o : result.requests) {
    const RequestRecord rec = OutcomeToRecord(o, sim_config, workload);
    out.revenue += ComputeInvoice(billing, rec).total;
  }
  if (!result.requests.empty()) {
    out.cold_start_rate = static_cast<double>(result.cold_starts) /
                          static_cast<double>(result.requests.size());
  }

  const Usd full_rate = hardware.per_vcpu_second * sim_config.vcpus +
                        hardware.per_gb_second * MbToGb(sim_config.mem_mb);

  // KA-phase cost share, from the policy's resource behaviour (Table 2).
  double idle_share = 1.0;
  switch (sim_config.keepalive->resource_behavior()) {
    case KaResourceBehavior::kFreezeDeallocate:
      idle_share = hardware.frozen_residual;
      break;
    case KaResourceBehavior::kScaleDownCpu: {
      // CPU throttled to ~0.01 vCPUs; memory stays resident.
      const Usd idle_rate = hardware.per_vcpu_second * 0.01 +
                            hardware.per_gb_second * MbToGb(sim_config.mem_mb);
      idle_share = full_rate > 0.0 ? idle_rate / full_rate : 1.0;
      break;
    }
    case KaResourceBehavior::kRunAsUsual:
      idle_share = 1.0;
      break;
    case KaResourceBehavior::kCodeCache:
      idle_share = hardware.frozen_residual / 3.0;  // Bytecode cache only.
      break;
  }

  for (const auto& sb : result.sandboxes) {
    out.init_seconds += MicrosToSecs(sb.init_time);
    out.busy_seconds += MicrosToSecs(sb.busy_time);
    out.idle_seconds += MicrosToSecs(sb.idle_time);
  }
  out.provider_cost = full_rate * (out.init_seconds + out.busy_seconds) +
                      full_rate * idle_share * out.idle_seconds;
  if (out.revenue > 0.0) {
    out.margin = (out.revenue - out.provider_cost) / out.revenue;
  }
  return out;
}

}  // namespace faascost
