#include "src/core/observe.h"

namespace faascost {

ProvenanceTotals TagPlatformSpanBilling(std::vector<Span>* spans,
                                        const PlatformSimResult& result,
                                        const PlatformSimConfig& config,
                                        const BillingModel& billing) {
  ProvenanceTotals totals;
  std::vector<Invoice> invoices;
  invoices.reserve(result.attempts.size());
  for (const AttemptOutcome& att : result.attempts) {
    const Invoice inv =
        ComputeInvoice(billing, BillableRecord(att, config.vcpus, config.mem_mb));
    totals.billed_usd += inv.total;
    totals.billed_micros += inv.billable_time;
    if (att.outcome != Outcome::kOk) {
      totals.failed_usd += inv.total;
    }
    invoices.push_back(inv);
  }
  for (Span& sp : *spans) {
    if (!sp.terminal || sp.group != kTrackGroupClient || sp.ref < 0 ||
        sp.ref >= static_cast<int64_t>(invoices.size())) {
      continue;
    }
    const Invoice& inv = invoices[static_cast<size_t>(sp.ref)];
    sp.billed_micros = inv.billable_time;
    sp.billed_usd = inv.total;
    ++totals.tagged_spans;
  }
  return totals;
}

namespace {

// One metered hop: fold into totals and emit the span + series entries.
void EmitTransfer(const TransferCharge& c, MicroSecs start, const AttemptOutcome& att,
                  NetworkTotals* totals, std::vector<Span>* spans, TimeSeries* series) {
  ++totals->transfers;
  totals->bytes += c.bytes;
  totals->transfer_usd += c.usd;
  const MicroSecs end = start + c.time;
  if (series != nullptr) {
    series->RecordTransfer(end, c.bytes, c.usd);
  }
  if (spans != nullptr) {
    Span sp;
    sp.kind = SpanKind::kTransfer;
    sp.group = kTrackGroupClient;
    sp.track = att.req_idx;
    sp.start = start;
    sp.duration = c.time;
    sp.req_idx = att.req_idx;
    sp.attempt = att.attempt;
    sp.ref = c.bytes;
    sp.status = c.rerouted ? "rerouted" : "";
    sp.billed_usd = c.usd;
    spans->push_back(sp);
  }
}

}  // namespace

NetworkTotals MeterPlatformNetwork(NetworkModel& net, PlatformSimResult* result,
                                   std::vector<Span>* spans, TimeSeries* series) {
  NetworkTotals totals;
  for (const AttemptOutcome& att : result->attempts) {
    if (att.sandbox_id < 0) {
      continue;  // Never reached a sandbox: no bytes moved.
    }
    const int zone = net.ZoneOf(att.sandbox_id);
    const bool ok = att.outcome == Outcome::kOk;
    const AttemptPayload pl = net.PayloadFor(/*function_id=*/0, att.req_idx,
                                             att.attempt - 1, /*request_hint=*/0,
                                             /*response_hint=*/0, ok);
    TransferCharge in;
    if (pl.request_bytes > 0) {
      in = net.Transfer(NetworkModel::kInternet, zone, pl.request_bytes, att.dispatched);
      EmitTransfer(in, att.dispatched, att, &totals, spans, series);
    }
    TransferCharge back;
    if (pl.response_bytes > 0) {
      back = net.Transfer(zone, NetworkModel::kInternet, pl.response_bytes, att.end);
      EmitTransfer(back, att.end, att, &totals, spans, series);
    }
    totals.ops_usd += net.MeterRequestOps();
    const MicroSecs client_end = att.end + in.time + back.time;
    const Usd detour = in.detour_usd + back.detour_usd;
    totals.detour_usd += detour;
    if (series != nullptr) {
      if (!ok) {
        series->RecordWaste(client_end, WasteKind::kFailedEgress, in.usd + back.usd);
      } else if (detour > 0.0) {
        series->RecordWaste(client_end, WasteKind::kCrossZoneDetour, detour);
      }
    }
    if (att.req_idx >= 0 && att.req_idx < static_cast<int>(result->requests.size())) {
      RequestOutcome& req = result->requests[static_cast<size_t>(att.req_idx)];
      if (att.attempt == req.attempts) {
        req.e2e_latency += in.time + back.time;
      }
    }
  }
  return totals;
}

}  // namespace faascost
