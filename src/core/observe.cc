#include "src/core/observe.h"

namespace faascost {

ProvenanceTotals TagPlatformSpanBilling(std::vector<Span>* spans,
                                        const PlatformSimResult& result,
                                        const PlatformSimConfig& config,
                                        const BillingModel& billing) {
  ProvenanceTotals totals;
  std::vector<Invoice> invoices;
  invoices.reserve(result.attempts.size());
  for (const AttemptOutcome& att : result.attempts) {
    const Invoice inv =
        ComputeInvoice(billing, BillableRecord(att, config.vcpus, config.mem_mb));
    totals.billed_usd += inv.total;
    totals.billed_micros += inv.billable_time;
    if (att.outcome != Outcome::kOk) {
      totals.failed_usd += inv.total;
    }
    invoices.push_back(inv);
  }
  for (Span& sp : *spans) {
    if (!sp.terminal || sp.group != kTrackGroupClient || sp.ref < 0 ||
        sp.ref >= static_cast<int64_t>(invoices.size())) {
      continue;
    }
    const Invoice& inv = invoices[static_cast<size_t>(sp.ref)];
    sp.billed_micros = inv.billable_time;
    sp.billed_usd = inv.total;
    ++totals.tagged_spans;
  }
  return totals;
}

}  // namespace faascost
