// Shared exit-code convention for every faascost subcommand (documented in
// README "Exit codes"). Scripts and CI branch on these numerically, so they
// are part of the tool's public contract: audit, monitor and network all
// return the same code for the same failure kind, and new subcommands must
// reuse these constants instead of inventing their own numbers.
//
//   kOk                 success; the report/artifacts are trustworthy.
//   kUsage              bad flags or invalid config: nothing was simulated.
//   kIntegrityViolation a simulator invariant or a bit-for-bit USD
//                       reconciliation failed mid-run (IntegrityViolation,
//                       monitor/network reconciliation gates).
//   kMalformedArtifact  an input artifact exists but cannot be trusted: a
//                       mismatched or corrupt checkpoint, unparseable JSON
//                       (CheckpointError / JsonParseError).

#ifndef FAASCOST_CLI_EXIT_CODES_H_
#define FAASCOST_CLI_EXIT_CODES_H_

namespace faascost {
namespace cli {

inline constexpr int kOk = 0;
inline constexpr int kUsage = 1;
inline constexpr int kIntegrityViolation = 2;
inline constexpr int kMalformedArtifact = 3;

}  // namespace cli
}  // namespace faascost

#endif  // FAASCOST_CLI_EXIT_CODES_H_
