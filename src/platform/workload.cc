#include "src/platform/workload.h"

namespace faascost {

WorkloadSpec PyAesWorkload() {
  WorkloadSpec w;
  w.name = "pyaes";
  w.cpu_time = 160 * kMicrosPerMilli;
  w.memory_footprint = 45.0;
  w.cpu_jitter = 0.04;
  return w;
}

WorkloadSpec MinimalWorkload() {
  WorkloadSpec w;
  w.name = "minimal";
  w.cpu_time = 5;  // A few microseconds: return an empty string and status.
  w.memory_footprint = 8.0;
  w.cpu_jitter = 0.10;
  return w;
}

WorkloadSpec VideoProcessingWorkload() {
  WorkloadSpec w;
  w.name = "video-processing";
  w.cpu_time = 10LL * kMicrosPerSec;
  w.memory_footprint = 350.0;
  w.cpu_jitter = 0.05;
  return w;
}

WorkloadSpec ProfilerProbeWorkload(MicroSecs exec_duration) {
  WorkloadSpec w;
  w.name = "profiler-probe";
  w.cpu_time = exec_duration;
  w.memory_footprint = 10.0;
  w.cpu_jitter = 0.0;
  return w;
}

}  // namespace faascost
