// Workload definitions used across the platform experiments (paper §3-§4).

#ifndef FAASCOST_PLATFORM_WORKLOAD_H_
#define FAASCOST_PLATFORM_WORKLOAD_H_

#include <string>

#include "src/common/units.h"

namespace faascost {

// A serverless function body. CPU demand is expressed at full-core speed;
// the execution model divides it by the effective CPU share. `io_wait` is
// wall-clock time spent blocked (e.g., remote API calls) that consumes no
// CPU.
struct WorkloadSpec {
  std::string name;
  MicroSecs cpu_time = 0;        // CPU demand per request at 1 vCPU.
  MicroSecs io_wait = 0;         // Blocking time per request.
  MegaBytes memory_footprint = 0.0;
  double cpu_jitter = 0.03;      // Relative uniform jitter on cpu_time.
};

// PyAES from FunctionBench: the compute-bound function the paper deploys for
// the concurrency (Fig. 6) and overallocation (Fig. 10) experiments; each
// request takes about 160 ms of CPU time.
WorkloadSpec PyAesWorkload();

// A minimal function returning an empty string (Fig. 8): the measured
// duration is pure serving-architecture overhead.
WorkloadSpec MinimalWorkload();

// The SeBS video-processing application used for the intermittent-execution
// exploit (§4.3): a long, strongly compute-bound function.
WorkloadSpec VideoProcessingWorkload();

// The scheduler-profiling probe of Algorithm 1: pure CPU burn for a fixed
// wall-clock duration.
WorkloadSpec ProfilerProbeWorkload(MicroSecs exec_duration);

}  // namespace faascost

#endif  // FAASCOST_PLATFORM_WORKLOAD_H_
