#include "src/platform/platform_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

namespace faascost {

namespace {

enum class EventType {
  kArrival,
  kInitDone,
  kSandboxNext,
  kKaExpire,
  kScalerEval,
  kSample,
};

struct Event {
  MicroSecs time = 0;
  EventType type = EventType::kArrival;
  int sandbox_id = -1;
  uint64_t gen = 0;
  int req_idx = -1;

  bool operator>(const Event& other) const { return time > other.time; }
};

struct InFlightReq {
  int req_idx = -1;
  double remaining_cpu = 0.0;  // Microseconds of CPU at full-core speed.
  bool in_cpu_phase = false;
  MicroSecs fixed_end = 0;  // End of the fixed (overhead + I/O) phase.
};

struct SandboxState {
  int id = 0;
  bool dead = false;
  bool initializing = true;
  MicroSecs created_at = 0;
  MicroSecs ready_at = 0;
  std::vector<InFlightReq> inflight;
  std::vector<int> pending_local;  // Requests waiting for this sandbox's init.
  MicroSecs last_advance = 0;
  double rate = 0.0;  // Cached per-request CPU rate.
  uint64_t gen = 0;
  MicroSecs ka_deadline = -1;
  int64_t served = 0;
  MicroSecs busy_time = 0;
  MicroSecs idle_time = 0;
  MicroSecs busy_snapshot = 0;  // busy_time at the previous metric sample.
};

}  // namespace

PlatformSim::PlatformSim(PlatformSimConfig config, uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  assert(config_.vcpus > 0.0);
  assert(config_.concurrency_limit >= 1);
  assert(config_.keepalive != nullptr);
}

PlatformSimResult PlatformSim::Run(const std::vector<MicroSecs>& arrivals,
                                   const WorkloadSpec& workload) {
  PlatformSimResult result;
  result.requests.resize(arrivals.size());
  Rng rng(seed_);
  AutoscalerConfig scaler_config = config_.autoscaler;
  scaler_config.per_instance_capacity =
      config_.vcpus * config_.autoscaler.target_utilization;
  scaler_config.max_instances = std::min(scaler_config.max_instances, config_.max_instances);
  WindowedAutoscaler scaler(scaler_config);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  std::vector<SandboxState> sandboxes;
  std::deque<int> global_queue;  // Requests waiting for capacity (multi model).
  size_t completed = 0;
  MicroSecs now = 0;
  MicroSecs last_scale_action = std::numeric_limits<MicroSecs>::min() / 2;
  int64_t arrivals_since_sample = 0;
  MicroSecs last_completion = -1;  // For idle-interval feedback to the KA policy.

  for (size_t i = 0; i < arrivals.size(); ++i) {
    assert(i == 0 || arrivals[i] >= arrivals[i - 1]);
    queue.push({arrivals[i], EventType::kArrival, -1, 0, static_cast<int>(i)});
    result.requests[i].arrival = arrivals[i];
  }
  if (!arrivals.empty()) {
    queue.push({arrivals.front() + config_.autoscaler.sample_interval, EventType::kSample});
    if (config_.autoscaler_enabled) {
      queue.push(
          {arrivals.front() + config_.autoscaler.eval_interval, EventType::kScalerEval});
    }
  }

  auto cpu_phase_count = [](const SandboxState& s) {
    int k = 0;
    for (const auto& r : s.inflight) {
      if (r.in_cpu_phase) {
        ++k;
      }
    }
    return k;
  };

  auto compute_rate = [&](const SandboxState& s) {
    const int k = cpu_phase_count(s);
    if (k == 0) {
      return 0.0;
    }
    double rate = std::min(1.0, config_.vcpus / static_cast<double>(k));
    const double excess = std::min(static_cast<double>(k) - config_.vcpus,
                                   config_.contention_excess_cap);
    if (excess > 0.0) {
      rate /= 1.0 + config_.contention_coeff * excess;
    }
    return rate;
  };

  auto advance = [&](SandboxState& s) {
    const MicroSecs dt = now - s.last_advance;
    if (dt <= 0) {
      return;
    }
    if (!s.initializing && !s.dead) {
      if (s.inflight.empty()) {
        s.idle_time += dt;
      } else {
        s.busy_time += dt;
      }
    }
    if (s.rate > 0.0) {
      for (auto& r : s.inflight) {
        if (r.in_cpu_phase) {
          r.remaining_cpu -= s.rate * static_cast<double>(dt);
        }
      }
    }
    s.last_advance = now;
  };

  auto schedule_next = [&](SandboxState& s) {
    if (s.dead || s.initializing || s.inflight.empty()) {
      return;
    }
    MicroSecs next = -1;
    for (const auto& r : s.inflight) {
      MicroSecs t = 0;
      if (r.in_cpu_phase) {
        if (s.rate <= 0.0) {
          continue;
        }
        t = now + static_cast<MicroSecs>(std::ceil(std::max(0.0, r.remaining_cpu) / s.rate));
        t = std::max(t, now + 1);
      } else {
        t = std::max(r.fixed_end, now);
      }
      if (next < 0 || t < next) {
        next = t;
      }
    }
    if (next >= 0) {
      ++s.gen;
      queue.push({next, EventType::kSandboxNext, s.id, s.gen});
    }
  };

  auto ready_count = [&] {
    int n = 0;
    for (const auto& s : sandboxes) {
      if (!s.dead && !s.initializing) {
        ++n;
      }
    }
    return n;
  };

  auto alive_count = [&] {
    int n = 0;
    for (const auto& s : sandboxes) {
      if (!s.dead) {
        ++n;
      }
    }
    return n;
  };

  auto initializing_count = [&] {
    int n = 0;
    for (const auto& s : sandboxes) {
      if (!s.dead && s.initializing) {
        ++n;
      }
    }
    return n;
  };

  auto create_sandbox = [&]() -> SandboxState& {
    SandboxState s;
    s.id = static_cast<int>(sandboxes.size());
    s.created_at = now;
    s.last_advance = now;
    MicroSecs init = 0;
    if (config_.coldstart != nullptr) {
      init = config_.coldstart->Sample(rng).total;
    } else {
      const double jitter = rng.Uniform(-config_.init_jitter, config_.init_jitter);
      init = std::max<MicroSecs>(
          1,
          static_cast<MicroSecs>(static_cast<double>(config_.init_mean) * (1.0 + jitter)));
    }
    s.ready_at = now + init;
    sandboxes.push_back(std::move(s));
    SandboxState& ref = sandboxes.back();
    queue.push({ref.ready_at, EventType::kInitDone, ref.id, ref.gen});
    return ref;
  };

  // Starts processing `req_idx` on a ready sandbox at `now`.
  auto start_request = [&](SandboxState& s, int req_idx, bool cold) {
    RequestOutcome& out = result.requests[static_cast<size_t>(req_idx)];
    out.sandbox_id = s.id;
    out.start_exec = now;
    out.cold_start = cold;
    if (cold) {
      out.init_duration = s.ready_at - s.created_at;
    }
    InFlightReq r;
    r.req_idx = req_idx;
    double cpu = static_cast<double>(workload.cpu_time);
    if (workload.cpu_jitter > 0.0) {
      cpu *= 1.0 + rng.Uniform(-workload.cpu_jitter, workload.cpu_jitter);
    }
    r.remaining_cpu = std::max(1.0, cpu);
    const MicroSecs overhead = config_.serving.Sample(config_.vcpus, rng);
    r.fixed_end = now + overhead + workload.io_wait;
    r.in_cpu_phase = r.fixed_end <= now;
    s.inflight.push_back(r);
    ++s.served;
    s.ka_deadline = -1;
  };

  // Completes one request; returns true if the sandbox became idle.
  auto complete_request = [&](SandboxState& s, size_t pos) {
    const int req_idx = s.inflight[pos].req_idx;
    RequestOutcome& out = result.requests[static_cast<size_t>(req_idx)];
    out.completion = now;
    out.reported_duration = now - out.start_exec;
    out.e2e_latency = now - out.arrival;
    s.inflight.erase(s.inflight.begin() + static_cast<int>(pos));
    ++completed;
    last_completion = std::max(last_completion, now);
  };

  auto enter_idle = [&](SandboxState& s) {
    s.ka_deadline = now + config_.keepalive->SampleDuration(rng, ready_count());
    ++s.gen;
    queue.push({s.ka_deadline, EventType::kKaExpire, s.id, s.gen});
  };

  // Pulls queued requests onto available capacity (multi-concurrency model).
  auto pull_global_queue = [&] {
    while (!global_queue.empty()) {
      SandboxState* best = nullptr;
      int eligible = 0;
      for (auto& s : sandboxes) {
        if (s.dead || s.initializing) {
          continue;
        }
        if (static_cast<int>(s.inflight.size()) >= config_.concurrency_limit) {
          continue;
        }
        ++eligible;
        if (config_.routing == RoutingPolicy::kRandom) {
          // Reservoir pick: uniform among eligible sandboxes.
          if (rng.UniformInt(1, eligible) == 1) {
            best = &s;
          }
        } else if (best == nullptr || s.inflight.size() < best->inflight.size()) {
          best = &s;
        }
      }
      if (best == nullptr) {
        return;
      }
      advance(*best);
      const int req_idx = global_queue.front();
      global_queue.pop_front();
      const bool cold = best->served == 0;
      start_request(*best, req_idx, cold);
      best->rate = compute_rate(*best);
      schedule_next(*best);
    }
  };

  auto handle_arrival = [&](int req_idx) {
    if (config_.concurrency == ConcurrencyModel::kSingleConcurrency) {
      // Reuse the most recently used warm idle sandbox, else cold start.
      SandboxState* best = nullptr;
      for (auto& s : sandboxes) {
        if (s.dead || s.initializing || !s.inflight.empty()) {
          continue;
        }
        if (s.ka_deadline >= 0 && s.ka_deadline <= now) {
          continue;  // Expiry event still queued but the window has passed.
        }
        if (best == nullptr || s.ready_at > best->ready_at) {
          best = &s;
        }
      }
      if (best != nullptr) {
        advance(*best);
        start_request(*best, req_idx, /*cold=*/false);
        best->rate = compute_rate(*best);
        // schedule_next bumps the generation, which also invalidates the
        // pending KA-expiry event of the previously idle sandbox.
        schedule_next(*best);
        return;
      }
      SandboxState& fresh = create_sandbox();
      fresh.pending_local.push_back(req_idx);
      return;
    }
    // Multi-concurrency: queue at the ingress and let the pull logic place it.
    global_queue.push_back(req_idx);
    pull_global_queue();
    if (!global_queue.empty() && alive_count() == 0) {
      // Scale from zero: start one instance immediately; any further
      // scale-out is metric-driven and therefore lags demand (paper §3.1).
      create_sandbox();
    }
  };

  while (!queue.empty()) {
    if (completed == arrivals.size()) {
      break;
    }
    const Event ev = queue.top();
    queue.pop();
    now = ev.time;
    switch (ev.type) {
      case EventType::kArrival: {
        ++arrivals_since_sample;
        // Idle-time feedback for predictive keep-alive (paper §3.3).
        if (last_completion >= 0 && now > last_completion) {
          config_.keepalive->ObserveIdleInterval(now - last_completion);
        }
        handle_arrival(ev.req_idx);
        break;
      }
      case EventType::kInitDone: {
        SandboxState& s = sandboxes[static_cast<size_t>(ev.sandbox_id)];
        if (s.dead || !s.initializing) {
          break;
        }
        advance(s);
        s.initializing = false;
        if (!s.pending_local.empty()) {
          for (int req_idx : s.pending_local) {
            start_request(s, req_idx, /*cold=*/true);
          }
          s.pending_local.clear();
          s.rate = compute_rate(s);
          schedule_next(s);
        } else if (config_.concurrency == ConcurrencyModel::kMultiConcurrency) {
          pull_global_queue();
          if (s.inflight.empty()) {
            enter_idle(s);
          }
        } else if (s.inflight.empty()) {
          enter_idle(s);
        }
        break;
      }
      case EventType::kSandboxNext: {
        SandboxState& s = sandboxes[static_cast<size_t>(ev.sandbox_id)];
        if (s.dead || ev.gen != s.gen) {
          break;
        }
        advance(s);
        // Fixed-phase transitions first, then completions.
        for (auto& r : s.inflight) {
          if (!r.in_cpu_phase && r.fixed_end <= now) {
            r.in_cpu_phase = true;
          }
        }
        for (size_t i = s.inflight.size(); i-- > 0;) {
          if (s.inflight[i].in_cpu_phase && s.inflight[i].remaining_cpu <= 0.5) {
            complete_request(s, i);
          }
        }
        s.rate = compute_rate(s);
        if (s.inflight.empty()) {
          enter_idle(s);
          if (config_.concurrency == ConcurrencyModel::kMultiConcurrency) {
            pull_global_queue();
          }
        } else {
          schedule_next(s);
        }
        break;
      }
      case EventType::kKaExpire: {
        SandboxState& s = sandboxes[static_cast<size_t>(ev.sandbox_id)];
        if (s.dead || ev.gen != s.gen || !s.inflight.empty() || s.initializing) {
          break;
        }
        advance(s);
        s.dead = true;
        break;
      }
      case EventType::kScalerEval: {
        const int ready = ready_count();
        const int desired = scaler.DesiredInstances(now);
        const int alive = alive_count();
        const bool cooled_down =
            now - last_scale_action >= scaler_config.action_cooldown;
        if (desired > alive && cooled_down) {
          const int target = std::min(desired, config_.max_instances);
          for (int i = alive; i < target; ++i) {
            create_sandbox();
          }
          last_scale_action = now;
        } else if (desired < ready && global_queue.empty() && cooled_down) {
          // Scale down surplus idle instances.
          int to_remove = ready - desired;
          for (auto& s : sandboxes) {
            if (to_remove <= 0) {
              break;
            }
            if (!s.dead && !s.initializing && s.inflight.empty()) {
              advance(s);
              s.dead = true;
              --to_remove;
            }
          }
          last_scale_action = now;
        }
        if (completed < arrivals.size()) {
          queue.push({now + config_.autoscaler.eval_interval, EventType::kScalerEval});
        }
        break;
      }
      case EventType::kSample: {
        TimelineSample sample;
        sample.time = now;
        double util_sum = 0.0;
        int ready = 0;
        for (auto& s : sandboxes) {
          if (s.dead) {
            continue;
          }
          ++sample.instances;
          if (!s.initializing) {
            ++ready;
            // Utilization = busy-time fraction over the last sample interval
            // (what a CPU-usage metric reports), not the instantaneous
            // in-flight indicator.
            advance(s);
            const double busy_frac =
                static_cast<double>(s.busy_time - s.busy_snapshot) /
                static_cast<double>(config_.autoscaler.sample_interval);
            s.busy_snapshot = s.busy_time;
            util_sum += std::clamp(busy_frac, 0.0, 1.0);
          }
          sample.busy_requests += static_cast<int>(s.inflight.size());
        }
        sample.busy_requests += static_cast<int>(global_queue.size());
        sample.ready_instances = ready;
        sample.avg_utilization = ready > 0 ? util_sum / ready : 0.0;
        result.timeline.push_back(sample);
        if (config_.autoscaler_enabled) {
          // Consumed-CPU metric (what a CPU-utilization target observes):
          // the sum of per-instance busy fractions times the allocation,
          // physically capped at the deployed capacity.
          scaler.AddSample(now, util_sum * config_.vcpus);
        }
        arrivals_since_sample = 0;
        if (completed < arrivals.size()) {
          queue.push({now + config_.autoscaler.sample_interval, EventType::kSample});
        }
        break;
      }
    }
  }

  // Finalize accounting; surviving sandboxes are closed at the last event.
  for (auto& s : sandboxes) {
    advance(s);
    SandboxAccounting acc;
    acc.sandbox_id = s.id;
    acc.created_at = s.created_at;
    acc.destroyed_at = now;
    acc.init_time = std::min(s.ready_at, now) - s.created_at;
    acc.busy_time = s.busy_time;
    acc.idle_time = s.idle_time;
    result.total_instance_seconds += MicrosToSecs(acc.destroyed_at - acc.created_at);
    result.sandboxes.push_back(acc);
  }
  for (const auto& r : result.requests) {
    if (r.cold_start) {
      ++result.cold_starts;
    }
  }
  return result;
}

std::vector<MicroSecs> UniformArrivals(double rps, MicroSecs duration) {
  std::vector<MicroSecs> out;
  if (rps <= 0.0 || duration <= 0) {
    return out;
  }
  const double gap = static_cast<double>(kMicrosPerSec) / rps;
  for (double t = 0.0; t < static_cast<double>(duration); t += gap) {
    out.push_back(static_cast<MicroSecs>(t));
  }
  return out;
}

std::vector<MicroSecs> PoissonArrivals(double rps, MicroSecs duration, Rng& rng) {
  std::vector<MicroSecs> out;
  if (rps <= 0.0 || duration <= 0) {
    return out;
  }
  const double rate_per_us = rps / static_cast<double>(kMicrosPerSec);
  double t = rng.Exponential(rate_per_us);
  while (t < static_cast<double>(duration)) {
    out.push_back(static_cast<MicroSecs>(t));
    t += rng.Exponential(rate_per_us);
  }
  return out;
}

double ColdStartProbability(const PlatformSimConfig& config, const WorkloadSpec& workload,
                            MicroSecs idle, int samples, uint64_t seed) {
  assert(samples > 0);
  int cold = 0;
  for (int i = 0; i < samples; ++i) {
    const uint64_t run_seed = seed + static_cast<uint64_t>(i) * 7919;
    // First pass: find the warm-up request's completion time.
    PlatformSim warmup(config, run_seed);
    const PlatformSimResult first = warmup.Run({0}, workload);
    const MicroSecs probe_at = first.requests.front().completion + idle;
    // Replay with the same seed so the warm-up behaves identically, then
    // probe after the idle interval.
    PlatformSim probe(config, run_seed);
    const PlatformSimResult both = probe.Run({0, probe_at}, workload);
    if (both.requests.back().cold_start) {
      ++cold;
    }
  }
  return static_cast<double>(cold) / static_cast<double>(samples);
}

}  // namespace faascost
