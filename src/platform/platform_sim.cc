#include "src/platform/platform_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>

namespace faascost {

namespace {

enum class EventType {
  kArrival,
  kInitDone,
  kSandboxNext,
  kKaExpire,
  kScalerEval,
  kSample,
  kRetryArrival,   // req_idx = original request index.
  kExecTimeout,    // req_idx = attempt index (platform-enforced timeout).
  kClientTimeout,  // req_idx = attempt index (client abandons the attempt).
  kQueueTimeout,   // req_idx = attempt index (admission queue wait expired).
  kDrainDeadline,  // sandbox_id = draining sandbox whose budget is up.
};

struct Event {
  MicroSecs time = 0;
  EventType type = EventType::kArrival;
  int sandbox_id = -1;
  uint64_t gen = 0;
  int req_idx = -1;

  bool operator>(const Event& other) const { return time > other.time; }
};

struct InFlightReq {
  int req_idx = -1;
  int attempt_idx = -1;        // Index into PlatformSimResult::attempts.
  double remaining_cpu = 0.0;  // Microseconds of CPU at full-core speed.
  bool in_cpu_phase = false;
  bool will_crash = false;  // remaining_cpu was truncated at the crash point.
  MicroSecs fixed_end = 0;  // End of the fixed (overhead + I/O) phase.
};

struct SandboxState {
  int id = 0;
  bool dead = false;
  bool initializing = true;
  bool draining = false;     // Refusing admissions; dies when inflight empties.
  bool init_failed = false;  // Fault-injected: init ends in failure.
  MicroSecs created_at = 0;
  MicroSecs ready_at = 0;
  MicroSecs drain_started = 0;  // Meaningful only while draining.
  std::vector<InFlightReq> inflight;
  std::vector<int> pending_local;  // Attempts waiting for this sandbox's init.
  MicroSecs last_advance = 0;
  double rate = 0.0;  // Cached per-request CPU rate.
  uint64_t gen = 0;
  MicroSecs ka_deadline = -1;
  int64_t served = 0;
  MicroSecs busy_time = 0;
  MicroSecs idle_time = 0;
  MicroSecs busy_snapshot = 0;  // busy_time at the previous metric sample.
};

}  // namespace

std::vector<std::string> PlatformSimConfig::Validate() const {
  std::vector<std::string> errors;
  if (!(vcpus > 0.0)) {
    errors.push_back("vcpus must be > 0, got " + std::to_string(vcpus));
  }
  if (!(mem_mb > 0.0)) {
    errors.push_back("mem_mb must be > 0, got " + std::to_string(mem_mb));
  }
  if (concurrency_limit < 1) {
    errors.push_back("concurrency_limit must be >= 1, got " +
                     std::to_string(concurrency_limit));
  }
  if (max_instances < 1) {
    errors.push_back("max_instances must be >= 1, got " + std::to_string(max_instances));
  }
  if (coldstart == nullptr && init_mean <= 0) {
    errors.push_back("init_mean must be > 0 when no cold-start model is set");
  }
  if (init_jitter < 0.0 || init_jitter >= 1.0) {
    errors.push_back("init_jitter must be in [0, 1), got " + std::to_string(init_jitter));
  }
  if (contention_coeff < 0.0) {
    errors.push_back("contention_coeff must be >= 0");
  }
  if (contention_excess_cap < 0.0) {
    errors.push_back("contention_excess_cap must be >= 0");
  }
  if (keepalive == nullptr) {
    errors.push_back("a keepalive policy is required");
  }
  for (const std::string& e : faults.Validate()) {
    errors.push_back("faults: " + e);
  }
  for (const std::string& e : retry.Validate()) {
    errors.push_back("retry: " + e);
  }
  for (const std::string& e : admission.Validate()) {
    errors.push_back("admission: " + e);
  }
  if (drain_deadline < 0) {
    errors.push_back("drain_deadline must be >= 0 (0 = drains kill at once), got " +
                     std::to_string(drain_deadline));
  }
  return errors;
}

PlatformSim::PlatformSim(PlatformSimConfig config, uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  const std::vector<std::string> errors = config_.Validate();
  if (!errors.empty()) {
    std::string msg = "invalid PlatformSimConfig";
    for (const auto& e : errors) {
      msg += "; " + e;
    }
    throw std::invalid_argument(msg);
  }
}

PlatformSimResult PlatformSim::Run(const std::vector<MicroSecs>& arrivals,
                                   const WorkloadSpec& workload) {
  PlatformSimResult result;
  result.requests.resize(arrivals.size());
  result.attempts.reserve(arrivals.size());
  Rng rng(seed_);
  // Faults draw from their own stream: a zero-fault run leaves the main
  // stream — and therefore every result — identical to a fault-free build.
  FaultModel faults(config_.faults, seed_);
  // One client fleet, one function: a single shared breaker. Disabled
  // (threshold 0) it never gates, records, or trips.
  CircuitBreaker breaker(config_.retry.breaker_threshold, config_.retry.breaker_cooldown);
  AutoscalerConfig scaler_config = config_.autoscaler;
  scaler_config.per_instance_capacity =
      config_.vcpus * config_.autoscaler.target_utilization;
  scaler_config.max_instances = std::min(scaler_config.max_instances, config_.max_instances);
  WindowedAutoscaler scaler(scaler_config);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  std::vector<SandboxState> sandboxes;
  std::deque<int> global_queue;  // Attempts waiting for capacity (multi model).
  std::vector<int> next_attempt_no(arrivals.size(), 1);
  std::vector<uint8_t> attempt_open;     // Server side not yet concluded.
  std::vector<uint8_t> attempt_started;  // Admitted to a sandbox.
  size_t terminal = 0;       // Requests with a terminal client outcome.
  int64_t open_attempts = 0; // Dispatched attempts not yet concluded.
  MicroSecs now = 0;
  MicroSecs last_scale_action = std::numeric_limits<MicroSecs>::min() / 2;
  int64_t arrivals_since_sample = 0;
  MicroSecs last_completion = -1;  // For idle-interval feedback to the KA policy.
  const bool multi = config_.concurrency == ConcurrencyModel::kMultiConcurrency;

  for (size_t i = 0; i < arrivals.size(); ++i) {
    assert(i == 0 || arrivals[i] >= arrivals[i - 1]);
    queue.push({arrivals[i], EventType::kArrival, -1, 0, static_cast<int>(i)});
    result.requests[i].arrival = arrivals[i];
  }
  if (!arrivals.empty()) {
    queue.push({arrivals.front() + config_.autoscaler.sample_interval, EventType::kSample});
    if (config_.autoscaler_enabled) {
      queue.push(
          {arrivals.front() + config_.autoscaler.eval_interval, EventType::kScalerEval});
    }
  }

  auto done = [&] { return terminal == arrivals.size() && open_attempts == 0; };

  // --- Observability (no-ops when the hooks are null) ---
  TraceSink* const trace = config_.trace;
  MetricsRegistry* const metrics = config_.metrics;
  struct MetricIds {
    int instances = 0, ready = 0, inflight = 0, queue_depth = 0, utilization = 0;
    int breaker_open = 0, attempts = 0, failures = 0, cold_starts = 0, retries = 0;
    int queue_wait_ms = 0, e2e_ms = 0;
  };
  MetricIds mid;
  if (metrics != nullptr) {
    using K = MetricsRegistry::Kind;
    mid.instances = metrics->Define(K::kGauge, "platform.instances");
    mid.ready = metrics->Define(K::kGauge, "platform.warm_pool");
    mid.inflight = metrics->Define(K::kGauge, "platform.inflight");
    mid.queue_depth = metrics->Define(K::kGauge, "platform.queue_depth");
    mid.utilization = metrics->Define(K::kGauge, "platform.avg_utilization");
    mid.breaker_open = metrics->Define(K::kGauge, "platform.breaker_open");
    mid.attempts = metrics->Define(K::kCounter, "platform.attempts_total");
    mid.failures = metrics->Define(K::kCounter, "platform.failed_attempts_total");
    mid.cold_starts = metrics->Define(K::kCounter, "platform.cold_starts_total");
    mid.retries = metrics->Define(K::kCounter, "platform.retries_total");
    mid.queue_wait_ms = metrics->Define(K::kHistogram, "platform.queue_wait_ms");
    mid.e2e_ms = metrics->Define(K::kHistogram, "platform.e2e_latency_ms");
  }

  // One span on the request's client track. `term` marks the attempt's
  // terminal span — the one the billing tagger attributes the invoice to.
  auto emit_client_span = [&](SpanKind kind, MicroSecs start, MicroSecs duration,
                              int attempt_idx, const char* status, bool term) {
    const AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
    Span sp;
    sp.kind = kind;
    sp.group = kTrackGroupClient;
    sp.track = att.req_idx;
    sp.start = start;
    sp.duration = duration;
    sp.req_idx = att.req_idx;
    sp.attempt = att.attempt;
    sp.sandbox_id = att.sandbox_id;
    sp.ref = attempt_idx;
    sp.status = status;
    sp.cold = att.cold_start;
    sp.terminal = term;
    trace->Record(sp);
  };

  // Closes out a sandbox: emits its drain and lifetime spans, then marks it
  // dead. Every death site funnels through here.
  auto retire_sandbox = [&](SandboxState& s) {
    s.dead = true;
    if (trace == nullptr) {
      return;
    }
    if (s.draining) {
      Span d;
      d.kind = SpanKind::kDrain;
      d.group = kTrackGroupSandbox;
      d.track = s.id;
      d.start = s.drain_started;
      d.duration = now - s.drain_started;
      d.sandbox_id = s.id;
      trace->Record(d);
    }
    Span sp;
    sp.kind = SpanKind::kSandboxLife;
    sp.group = kTrackGroupSandbox;
    sp.track = s.id;
    sp.start = s.created_at;
    sp.duration = now - s.created_at;
    sp.sandbox_id = s.id;
    sp.status = s.init_failed ? OutcomeName(Outcome::kInitFailure) : "";
    trace->Record(sp);
  };

  auto cpu_phase_count = [](const SandboxState& s) {
    int k = 0;
    for (const auto& r : s.inflight) {
      if (r.in_cpu_phase) {
        ++k;
      }
    }
    return k;
  };

  auto compute_rate = [&](const SandboxState& s) {
    const int k = cpu_phase_count(s);
    if (k == 0) {
      return 0.0;
    }
    double rate = std::min(1.0, config_.vcpus / static_cast<double>(k));
    const double excess = std::min(static_cast<double>(k) - config_.vcpus,
                                   config_.contention_excess_cap);
    if (excess > 0.0) {
      rate /= 1.0 + config_.contention_coeff * excess;
    }
    return rate;
  };

  auto advance = [&](SandboxState& s) {
    const MicroSecs dt = now - s.last_advance;
    if (dt <= 0) {
      return;
    }
    if (!s.initializing && !s.dead) {
      if (s.inflight.empty()) {
        s.idle_time += dt;
      } else {
        s.busy_time += dt;
      }
    }
    if (s.rate > 0.0) {
      for (auto& r : s.inflight) {
        if (r.in_cpu_phase) {
          r.remaining_cpu -= s.rate * static_cast<double>(dt);
        }
      }
    }
    s.last_advance = now;
  };

  auto schedule_next = [&](SandboxState& s) {
    if (s.dead || s.initializing || s.inflight.empty()) {
      return;
    }
    MicroSecs next = -1;
    for (const auto& r : s.inflight) {
      MicroSecs t = 0;
      if (r.in_cpu_phase) {
        if (s.rate <= 0.0) {
          continue;
        }
        t = now + static_cast<MicroSecs>(std::ceil(std::max(0.0, r.remaining_cpu) / s.rate));
        t = std::max(t, now + 1);
      } else {
        t = std::max(r.fixed_end, now);
      }
      if (next < 0 || t < next) {
        next = t;
      }
    }
    if (next >= 0) {
      ++s.gen;
      queue.push({next, EventType::kSandboxNext, s.id, s.gen});
    }
  };

  auto ready_count = [&] {
    int n = 0;
    for (const auto& s : sandboxes) {
      if (!s.dead && !s.initializing && !s.draining) {
        ++n;
      }
    }
    return n;
  };

  auto alive_count = [&] {
    int n = 0;
    for (const auto& s : sandboxes) {
      if (!s.dead) {
        ++n;
      }
    }
    return n;
  };

  auto create_sandbox = [&]() -> SandboxState& {
    SandboxState s;
    s.id = static_cast<int>(sandboxes.size());
    s.created_at = now;
    s.last_advance = now;
    s.init_failed = faults.SampleInitFailure();
    MicroSecs init = 0;
    if (config_.coldstart != nullptr) {
      init = config_.coldstart->Sample(rng).total;
    } else {
      const double jitter = rng.Uniform(-config_.init_jitter, config_.init_jitter);
      init = std::max<MicroSecs>(
          1,
          static_cast<MicroSecs>(static_cast<double>(config_.init_mean) * (1.0 + jitter)));
    }
    s.ready_at = now + init;
    sandboxes.push_back(std::move(s));
    SandboxState& ref = sandboxes.back();
    queue.push({ref.ready_at, EventType::kInitDone, ref.id, ref.gen});
    return ref;
  };

  // Starts processing the attempt on a ready sandbox at `now`.
  auto start_attempt = [&](SandboxState& s, int attempt_idx, bool cold) {
    AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
    RequestOutcome& out = result.requests[static_cast<size_t>(att.req_idx)];
    attempt_started[static_cast<size_t>(attempt_idx)] = 1;
    att.sandbox_id = s.id;
    att.start_exec = now;
    att.cold_start = cold;
    att.init_duration = cold ? s.ready_at - s.created_at : 0;
    out.sandbox_id = s.id;
    out.start_exec = now;
    out.cold_start = cold;
    out.init_duration = att.init_duration;
    if (trace != nullptr && now > att.dispatched) {
      emit_client_span(SpanKind::kQueueWait, att.dispatched, now - att.dispatched,
                       attempt_idx, "", /*term=*/false);
    }
    if (metrics != nullptr) {
      metrics->Observe(mid.queue_wait_ms, MicrosToMillis(now - att.dispatched));
      if (cold) {
        metrics->Add(mid.cold_starts);
      }
    }
    InFlightReq r;
    r.req_idx = att.req_idx;
    r.attempt_idx = attempt_idx;
    double cpu = static_cast<double>(workload.cpu_time);
    if (workload.cpu_jitter > 0.0) {
      cpu *= 1.0 + rng.Uniform(-workload.cpu_jitter, workload.cpu_jitter);
    }
    r.remaining_cpu = std::max(1.0, cpu);
    const MicroSecs overhead = config_.serving.Sample(config_.vcpus, rng);
    r.fixed_end = now + overhead + workload.io_wait;
    r.in_cpu_phase = r.fixed_end <= now;
    if (trace != nullptr && overhead > 0) {
      emit_client_span(SpanKind::kServingOverhead, now, overhead, attempt_idx, "",
                       /*term=*/false);
    }
    if (config_.faults.crash_prob > 0.0 && faults.SampleCrash()) {
      // Crash point uniform over the attempt's CPU demand: the attempt fails
      // once the truncated work finishes, billed up to that point.
      r.will_crash = true;
      r.remaining_cpu = std::max(1.0, r.remaining_cpu * faults.SampleCrashPoint());
    }
    s.inflight.push_back(r);
    ++s.served;
    s.ka_deadline = -1;
    if (config_.faults.max_exec_duration > 0) {
      queue.push({now + config_.faults.max_exec_duration, EventType::kExecTimeout, s.id, 0,
                  attempt_idx});
    }
  };

  auto count_failure = [&](Outcome oc) {
    ++result.failed_attempts;
    switch (oc) {
      case Outcome::kInitFailure:
        ++result.init_failure_attempts;
        break;
      case Outcome::kCrash:
        ++result.crash_attempts;
        break;
      case Outcome::kTimeout:
        ++result.timeout_attempts;
        break;
      case Outcome::kRejected:
        ++result.rejected_attempts;
        break;
      case Outcome::kCircuitOpen:
        ++result.circuit_open_attempts;
        break;
      default:
        break;
    }
  };

  // Client-side resolution of a failed (or abandoned) attempt: schedule a
  // retry, or conclude the request.
  auto resolve_client = [&](int attempt_idx, Outcome oc) {
    const AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
    RequestOutcome& out = result.requests[static_cast<size_t>(att.req_idx)];
    out.last_error = oc;
    if (breaker.enabled() && oc != Outcome::kCircuitOpen) {
      // Real client-observed failures feed the breaker; its own
      // short-circuits must not, or one trip would loop forever.
      breaker.RecordFailure(now);
    }
    const bool retryable = oc != Outcome::kRejected || config_.retry.retry_rejected;
    if (retryable && att.attempt < config_.retry.max_attempts) {
      const MicroSecs delay = config_.retry.BackoffDelay(att.attempt, faults.rng());
      if (trace != nullptr) {
        emit_client_span(SpanKind::kBackoff, now, delay, attempt_idx, "", /*term=*/false);
      }
      if (metrics != nullptr) {
        metrics->Add(mid.retries);
      }
      queue.push({now + delay, EventType::kRetryArrival, -1, 0, att.req_idx});
      return;
    }
    out.outcome = att.attempt > 1 ? Outcome::kRetriesExhausted : oc;
    out.completion = now;
    out.reported_duration = att.exec_duration;
    out.e2e_latency = now - out.arrival;
    out.sandbox_id = att.sandbox_id;
    out.start_exec = att.start_exec;
    out.cold_start = att.cold_start;
    out.init_duration = att.init_duration;
    if (metrics != nullptr) {
      metrics->Observe(mid.e2e_ms, MicrosToMillis(now - out.arrival));
    }
    ++terminal;
  };

  // Server-side failure of an attempt (caller has already detached it from
  // any sandbox and set exec_duration for started attempts).
  auto fail_attempt = [&](int attempt_idx, Outcome oc) {
    AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
    att.outcome = oc;
    att.end = now;
    attempt_open[static_cast<size_t>(attempt_idx)] = 0;
    --open_attempts;
    count_failure(oc);
    if (trace != nullptr) {
      // Started attempts get an exec span; never-admitted ones a terminal
      // wait span from dispatch to the rejection/withdrawal.
      if (attempt_started[static_cast<size_t>(attempt_idx)]) {
        emit_client_span(SpanKind::kExec, att.start_exec, now - att.start_exec,
                         attempt_idx, OutcomeName(oc), /*term=*/true);
      } else {
        emit_client_span(SpanKind::kQueueWait, att.dispatched, now - att.dispatched,
                         attempt_idx, OutcomeName(oc), /*term=*/true);
      }
    }
    if (metrics != nullptr) {
      metrics->Add(mid.failures);
    }
    if (!att.client_abandoned) {
      resolve_client(attempt_idx, oc);
    }
  };

  // Completes one attempt successfully; delivery only if the client is
  // still waiting.
  auto complete_attempt = [&](SandboxState& s, size_t pos) {
    const InFlightReq req = s.inflight[pos];
    s.inflight.erase(s.inflight.begin() + static_cast<int>(pos));
    AttemptOutcome& att = result.attempts[static_cast<size_t>(req.attempt_idx)];
    att.outcome = Outcome::kOk;
    att.end = now;
    att.exec_duration = now - att.start_exec;
    attempt_open[static_cast<size_t>(req.attempt_idx)] = 0;
    --open_attempts;
    last_completion = std::max(last_completion, now);
    if (trace != nullptr) {
      emit_client_span(SpanKind::kExec, att.start_exec, now - att.start_exec,
                       req.attempt_idx, OutcomeName(Outcome::kOk), /*term=*/true);
    }
    if (att.client_abandoned) {
      return;  // The response has no one left to deliver to.
    }
    if (breaker.enabled()) {
      breaker.RecordSuccess();
    }
    RequestOutcome& out = result.requests[static_cast<size_t>(req.req_idx)];
    out.outcome = Outcome::kOk;
    out.completion = now;
    out.reported_duration = now - out.start_exec;
    out.e2e_latency = now - out.arrival;
    if (metrics != nullptr) {
      metrics->Observe(mid.e2e_ms, MicrosToMillis(now - out.arrival));
    }
    ++terminal;
  };

  auto enter_idle = [&](SandboxState& s) {
    s.ka_deadline = now + config_.keepalive->SampleDuration(rng, ready_count());
    ++s.gen;
    queue.push({s.ka_deadline, EventType::kKaExpire, s.id, s.gen});
  };

  // Pulls queued attempts onto available capacity (multi-concurrency model).
  auto pull_global_queue = [&] {
    while (!global_queue.empty()) {
      SandboxState* best = nullptr;
      int eligible = 0;
      for (auto& s : sandboxes) {
        if (s.dead || s.initializing || s.draining) {
          continue;
        }
        if (static_cast<int>(s.inflight.size()) >= config_.concurrency_limit) {
          continue;
        }
        ++eligible;
        if (config_.routing == RoutingPolicy::kRandom) {
          // Reservoir pick: uniform among eligible sandboxes.
          if (rng.UniformInt(1, eligible) == 1) {
            best = &s;
          }
        } else if (best == nullptr || s.inflight.size() < best->inflight.size()) {
          best = &s;
        }
      }
      if (best == nullptr) {
        return;
      }
      advance(*best);
      const int attempt_idx = global_queue.front();
      global_queue.pop_front();
      const bool cold = best->served == 0;
      start_attempt(*best, attempt_idx, cold);
      best->rate = compute_rate(*best);
      schedule_next(*best);
    }
  };

  // Sheds one attempt to make room in a full admission queue; returns false
  // when the incoming attempt itself was the victim (reject-newest).
  auto shed_for = [&](int attempt_idx) {
    ++result.shed_attempts;
    if (config_.admission.shed == ShedPolicy::kRejectNewest) {
      fail_attempt(attempt_idx, Outcome::kRejected);
      return false;
    }
    // Reject-oldest: the head of the queue has waited longest and is the
    // most likely to time out anyway; fail it to admit the newcomer.
    const int victim = global_queue.front();
    global_queue.pop_front();
    fail_attempt(victim, Outcome::kRejected);
    return true;
  };

  // Single-concurrency admission pump: when capacity frees up (a sandbox
  // goes idle or dies), admit waiting attempts — warm reuse first, then
  // cold starts while under the instance cap. No-op unless the bounded
  // admission queue is enabled, so default runs never touch it.
  auto pump_admission = [&] {
    if (!config_.admission.enabled || multi) {
      return;
    }
    while (!global_queue.empty()) {
      SandboxState* best = nullptr;
      for (auto& s : sandboxes) {
        if (s.dead || s.draining || s.initializing || !s.inflight.empty()) {
          continue;
        }
        if (s.ka_deadline >= 0 && s.ka_deadline <= now) {
          continue;
        }
        if (best == nullptr || s.ready_at > best->ready_at) {
          best = &s;
        }
      }
      const int attempt_idx = global_queue.front();
      if (best != nullptr) {
        global_queue.pop_front();
        advance(*best);
        start_attempt(*best, attempt_idx, /*cold=*/false);
        best->rate = compute_rate(*best);
        schedule_next(*best);
        continue;
      }
      if (alive_count() < config_.max_instances) {
        global_queue.pop_front();
        SandboxState& fresh = create_sandbox();
        fresh.pending_local.push_back(attempt_idx);
        result.attempts[static_cast<size_t>(attempt_idx)].sandbox_id = fresh.id;
        continue;
      }
      return;  // Still saturated; the queue keeps waiting.
    }
  };

  // Creates an attempt record for `req_idx` and routes it to a sandbox, the
  // global queue, or immediate rejection.
  auto dispatch = [&](int req_idx) {
    const int attempt_no = next_attempt_no[static_cast<size_t>(req_idx)]++;
    AttemptOutcome att;
    att.req_idx = req_idx;
    att.attempt = attempt_no;
    att.dispatched = now;
    const int attempt_idx = static_cast<int>(result.attempts.size());
    result.attempts.push_back(att);
    attempt_open.push_back(1);
    attempt_started.push_back(0);
    ++open_attempts;
    result.requests[static_cast<size_t>(req_idx)].attempts = attempt_no;
    if (metrics != nullptr) {
      metrics->Add(mid.attempts);
    }
    if (breaker.enabled() && !breaker.AllowDispatch(now)) {
      // Fast-fail at the client: the attempt never reaches the platform and
      // is never billed (and never starts a client-timeout clock).
      fail_attempt(attempt_idx, Outcome::kCircuitOpen);
      return;
    }
    if (config_.retry.attempt_timeout > 0) {
      queue.push(
          {now + config_.retry.attempt_timeout, EventType::kClientTimeout, -1, 0, attempt_idx});
    }
    if (!multi) {
      // Reuse the most recently used warm idle sandbox, else cold start.
      SandboxState* best = nullptr;
      for (auto& s : sandboxes) {
        if (s.dead || s.draining || s.initializing || !s.inflight.empty()) {
          continue;
        }
        if (s.ka_deadline >= 0 && s.ka_deadline <= now) {
          continue;  // Expiry event still queued but the window has passed.
        }
        if (best == nullptr || s.ready_at > best->ready_at) {
          best = &s;
        }
      }
      if (best != nullptr) {
        advance(*best);
        start_attempt(*best, attempt_idx, /*cold=*/false);
        best->rate = compute_rate(*best);
        // schedule_next bumps the generation, which also invalidates the
        // pending KA-expiry event of the previously idle sandbox.
        schedule_next(*best);
        return;
      }
      if (config_.admission.enabled && alive_count() >= config_.max_instances) {
        // Saturated: wait in the bounded admission queue instead of either
        // rejecting outright or scaling past the cap.
        if (static_cast<int>(global_queue.size()) >= config_.admission.queue_depth &&
            !shed_for(attempt_idx)) {
          return;  // The newcomer was the shed victim.
        }
        global_queue.push_back(attempt_idx);
        if (config_.admission.queue_timeout > 0) {
          queue.push({now + config_.admission.queue_timeout, EventType::kQueueTimeout, -1,
                      0, attempt_idx});
        }
        return;
      }
      if (config_.faults.reject_on_overload && alive_count() >= config_.max_instances) {
        fail_attempt(attempt_idx, Outcome::kRejected);
        return;
      }
      SandboxState& fresh = create_sandbox();
      fresh.pending_local.push_back(attempt_idx);
      result.attempts[static_cast<size_t>(attempt_idx)].sandbox_id = fresh.id;
      return;
    }
    // Multi-concurrency: 429 when the deployment is saturated — at the
    // instance cap with no spare concurrency anywhere and nothing warming up.
    if (config_.faults.reject_on_overload && alive_count() >= config_.max_instances) {
      bool spare = false;
      for (const auto& s : sandboxes) {
        if (s.dead) {
          continue;
        }
        if (s.initializing || static_cast<int>(s.inflight.size()) < config_.concurrency_limit) {
          spare = true;
          break;
        }
      }
      if (!spare) {
        fail_attempt(attempt_idx, Outcome::kRejected);
        return;
      }
    }
    // Queue at the ingress and let the pull logic place it. With admission
    // control the ingress queue is bounded: past the depth the shed policy
    // picks a victim, and waits are clocked against queue_timeout.
    if (config_.admission.enabled) {
      if (static_cast<int>(global_queue.size()) >= config_.admission.queue_depth &&
          !shed_for(attempt_idx)) {
        return;
      }
      if (config_.admission.queue_timeout > 0) {
        queue.push({now + config_.admission.queue_timeout, EventType::kQueueTimeout, -1, 0,
                    attempt_idx});
      }
    }
    global_queue.push_back(attempt_idx);
    pull_global_queue();
    if (!global_queue.empty() && alive_count() == 0) {
      // Scale from zero: start one instance immediately; any further
      // scale-out is metric-driven and therefore lags demand (paper §3.1).
      create_sandbox();
    }
  };

  while (!queue.empty()) {
    if (done()) {
      break;
    }
    const Event ev = queue.top();
    queue.pop();
    now = ev.time;
    switch (ev.type) {
      case EventType::kArrival:
      case EventType::kRetryArrival: {
        ++arrivals_since_sample;
        // Idle-time feedback for predictive keep-alive (paper §3.3); retry
        // re-arrivals are arrivals from the platform's point of view too.
        if (last_completion >= 0 && now > last_completion) {
          config_.keepalive->ObserveIdleInterval(now - last_completion);
        }
        dispatch(ev.req_idx);
        break;
      }
      case EventType::kInitDone: {
        SandboxState& s = sandboxes[static_cast<size_t>(ev.sandbox_id)];
        if (s.dead || !s.initializing) {
          break;
        }
        advance(s);
        if (trace != nullptr) {
          Span sp;
          sp.kind = SpanKind::kInit;
          sp.group = kTrackGroupSandbox;
          sp.track = s.id;
          sp.start = s.created_at;
          sp.duration = now - s.created_at;
          sp.sandbox_id = s.id;
          sp.cold = true;
          sp.status = s.init_failed ? OutcomeName(Outcome::kInitFailure)
                                    : OutcomeName(Outcome::kOk);
          trace->Record(sp);
        }
        if (s.init_failed) {
          // The sandbox never becomes ready; its waiting attempts fail after
          // the (wasted, possibly billed) initialization time.
          retire_sandbox(s);
          const MicroSecs init = s.ready_at - s.created_at;
          for (int attempt_idx : s.pending_local) {
            if (!attempt_open[static_cast<size_t>(attempt_idx)]) {
              continue;  // Withdrawn by a client timeout.
            }
            AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
            att.cold_start = true;
            att.init_duration = init;
            fail_attempt(attempt_idx, Outcome::kInitFailure);
          }
          s.pending_local.clear();
          if (multi && !global_queue.empty() && alive_count() == 0) {
            create_sandbox();  // The platform provisions a replacement.
          }
          break;
        }
        s.initializing = false;
        if (!s.pending_local.empty()) {
          for (int attempt_idx : s.pending_local) {
            if (!attempt_open[static_cast<size_t>(attempt_idx)]) {
              continue;  // Withdrawn by a client timeout.
            }
            start_attempt(s, attempt_idx, /*cold=*/true);
          }
          s.pending_local.clear();
          if (!s.inflight.empty()) {
            s.rate = compute_rate(s);
            schedule_next(s);
          } else {
            enter_idle(s);  // Every waiting client gave up during init.
          }
        } else if (multi) {
          pull_global_queue();
          if (s.inflight.empty()) {
            enter_idle(s);
          }
        } else if (s.inflight.empty()) {
          enter_idle(s);
        }
        break;
      }
      case EventType::kSandboxNext: {
        SandboxState& s = sandboxes[static_cast<size_t>(ev.sandbox_id)];
        if (s.dead || ev.gen != s.gen) {
          break;
        }
        advance(s);
        // Fixed-phase transitions first, then completions.
        for (auto& r : s.inflight) {
          if (!r.in_cpu_phase && r.fixed_end <= now) {
            r.in_cpu_phase = true;
          }
        }
        bool crashed = false;
        for (size_t i = s.inflight.size(); i-- > 0;) {
          if (s.inflight[i].in_cpu_phase && s.inflight[i].remaining_cpu <= 0.5) {
            if (s.inflight[i].will_crash) {
              const int attempt_idx = s.inflight[i].attempt_idx;
              s.inflight.erase(s.inflight.begin() + static_cast<int>(i));
              AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
              att.exec_duration = now - att.start_exec;
              fail_attempt(attempt_idx, Outcome::kCrash);
              crashed = true;
            } else {
              complete_attempt(s, i);
            }
          }
        }
        if (crashed && config_.faults.crash_kills_sandbox) {
          // Process death: co-resident in-flight requests die with it, and
          // the next arrival pays a cold start.
          for (const auto& r : s.inflight) {
            AttemptOutcome& att = result.attempts[static_cast<size_t>(r.attempt_idx)];
            att.exec_duration = now - att.start_exec;
            fail_attempt(r.attempt_idx, Outcome::kCrash);
          }
          s.inflight.clear();
          retire_sandbox(s);
          if (multi && !global_queue.empty() && alive_count() == 0) {
            create_sandbox();
          }
          break;
        }
        s.rate = compute_rate(s);
        if (s.inflight.empty()) {
          if (s.draining) {
            retire_sandbox(s);  // Drain complete: the instance retires cleanly.
          } else {
            enter_idle(s);
          }
          if (multi) {
            pull_global_queue();
          }
        } else {
          schedule_next(s);
        }
        break;
      }
      case EventType::kExecTimeout: {
        const int attempt_idx = ev.req_idx;
        if (!attempt_open[static_cast<size_t>(attempt_idx)] ||
            !attempt_started[static_cast<size_t>(attempt_idx)]) {
          break;  // Already concluded (finished, crashed, or sandbox died).
        }
        AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
        SandboxState& s = sandboxes[static_cast<size_t>(att.sandbox_id)];
        size_t pos = s.inflight.size();
        for (size_t i = 0; i < s.inflight.size(); ++i) {
          if (s.inflight[i].attempt_idx == attempt_idx) {
            pos = i;
            break;
          }
        }
        if (pos == s.inflight.size()) {
          break;
        }
        advance(s);
        s.inflight.erase(s.inflight.begin() + static_cast<int>(pos));
        att.exec_duration = now - att.start_exec;  // Billed through the timeout.
        fail_attempt(attempt_idx, Outcome::kTimeout);
        s.rate = compute_rate(s);
        if (s.inflight.empty()) {
          if (s.draining) {
            retire_sandbox(s);
          } else {
            enter_idle(s);
          }
          if (multi) {
            pull_global_queue();
          }
        } else {
          schedule_next(s);
        }
        break;
      }
      case EventType::kClientTimeout: {
        const int attempt_idx = ev.req_idx;
        if (!attempt_open[static_cast<size_t>(attempt_idx)]) {
          break;  // The attempt concluded before the client gave up.
        }
        AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
        if (att.client_abandoned) {
          break;
        }
        att.client_abandoned = true;
        if (!attempt_started[static_cast<size_t>(attempt_idx)]) {
          // Never admitted: withdraw from whichever queue it waits in.
          if (att.sandbox_id >= 0) {
            auto& pending = sandboxes[static_cast<size_t>(att.sandbox_id)].pending_local;
            pending.erase(std::remove(pending.begin(), pending.end(), attempt_idx),
                          pending.end());
          } else {
            global_queue.erase(
                std::remove(global_queue.begin(), global_queue.end(), attempt_idx),
                global_queue.end());
          }
          att.outcome = Outcome::kTimeout;
          att.end = now;
          attempt_open[static_cast<size_t>(attempt_idx)] = 0;
          --open_attempts;
          count_failure(Outcome::kTimeout);
          if (trace != nullptr) {
            emit_client_span(SpanKind::kQueueWait, att.dispatched, now - att.dispatched,
                             attempt_idx, OutcomeName(Outcome::kTimeout), /*term=*/true);
          }
          if (metrics != nullptr) {
            metrics->Add(mid.failures);
          }
        }
        // Started attempts keep running (and billing) server-side; the
        // client moves on either way.
        resolve_client(attempt_idx, Outcome::kTimeout);
        break;
      }
      case EventType::kQueueTimeout: {
        const int attempt_idx = ev.req_idx;
        if (!attempt_open[static_cast<size_t>(attempt_idx)] ||
            attempt_started[static_cast<size_t>(attempt_idx)]) {
          break;  // Admitted or already concluded while the clock ran.
        }
        if (result.attempts[static_cast<size_t>(attempt_idx)].sandbox_id >= 0) {
          break;  // Admitted to a cold-starting sandbox: init wait, not queue wait.
        }
        const auto it = std::find(global_queue.begin(), global_queue.end(), attempt_idx);
        if (it == global_queue.end()) {
          break;
        }
        global_queue.erase(it);
        ++result.queue_timeout_attempts;
        fail_attempt(attempt_idx, Outcome::kTimeout);
        break;
      }
      case EventType::kDrainDeadline: {
        SandboxState& s = sandboxes[static_cast<size_t>(ev.sandbox_id)];
        if (s.dead || !s.draining) {
          break;
        }
        advance(s);
        // The drain budget is spent: whatever is still running dies with
        // the instance (the cost of degrading gracefully but not infinitely).
        for (const auto& r : s.inflight) {
          AttemptOutcome& att = result.attempts[static_cast<size_t>(r.attempt_idx)];
          att.exec_duration = now - att.start_exec;
          ++result.drain_killed_attempts;
          fail_attempt(r.attempt_idx, Outcome::kCrash);
        }
        s.inflight.clear();
        retire_sandbox(s);
        if (multi && !global_queue.empty() && alive_count() == 0) {
          create_sandbox();
        }
        break;
      }
      case EventType::kKaExpire: {
        SandboxState& s = sandboxes[static_cast<size_t>(ev.sandbox_id)];
        if (s.dead || ev.gen != s.gen || !s.inflight.empty() || s.initializing) {
          break;
        }
        advance(s);
        retire_sandbox(s);
        break;
      }
      case EventType::kScalerEval: {
        const int ready = ready_count();
        const int desired = scaler.DesiredInstances(now);
        const int alive = alive_count();
        const bool cooled_down =
            now - last_scale_action >= scaler_config.action_cooldown;
        if (desired > alive && cooled_down) {
          const int target = std::min(desired, config_.max_instances);
          for (int i = alive; i < target; ++i) {
            create_sandbox();
          }
          last_scale_action = now;
        } else if (desired < ready && global_queue.empty() && cooled_down) {
          // Scale down surplus idle instances.
          int to_remove = ready - desired;
          for (auto& s : sandboxes) {
            if (to_remove <= 0) {
              break;
            }
            if (!s.dead && !s.initializing && !s.draining && s.inflight.empty()) {
              advance(s);
              retire_sandbox(s);
              --to_remove;
            }
          }
          if (config_.scaledown_drains_busy) {
            // Graceful degradation: surplus busy instances stop taking new
            // work and get drain_deadline to finish what they hold.
            for (auto& s : sandboxes) {
              if (to_remove <= 0) {
                break;
              }
              if (!s.dead && !s.initializing && !s.draining && !s.inflight.empty()) {
                advance(s);
                s.draining = true;
                s.drain_started = now;
                ++result.drained_sandboxes;
                queue.push({now + config_.drain_deadline, EventType::kDrainDeadline, s.id});
                --to_remove;
              }
            }
          }
          last_scale_action = now;
        }
        if (!done()) {
          queue.push({now + config_.autoscaler.eval_interval, EventType::kScalerEval});
        }
        break;
      }
      case EventType::kSample: {
        TimelineSample sample;
        sample.time = now;
        double util_sum = 0.0;
        int ready = 0;
        for (auto& s : sandboxes) {
          if (s.dead) {
            continue;
          }
          ++sample.instances;
          if (!s.initializing) {
            ++ready;
            // Utilization = busy-time fraction over the last sample interval
            // (what a CPU-usage metric reports), not the instantaneous
            // in-flight indicator.
            advance(s);
            const double busy_frac =
                static_cast<double>(s.busy_time - s.busy_snapshot) /
                static_cast<double>(config_.autoscaler.sample_interval);
            s.busy_snapshot = s.busy_time;
            util_sum += std::clamp(busy_frac, 0.0, 1.0);
          }
          sample.busy_requests += static_cast<int>(s.inflight.size());
        }
        const int inflight_only = sample.busy_requests;
        sample.busy_requests += static_cast<int>(global_queue.size());
        sample.ready_instances = ready;
        sample.avg_utilization = ready > 0 ? util_sum / ready : 0.0;
        result.timeline.push_back(sample);
        if (metrics != nullptr) {
          metrics->Set(mid.instances, sample.instances);
          metrics->Set(mid.ready, ready);
          metrics->Set(mid.inflight, inflight_only);
          metrics->Set(mid.queue_depth, static_cast<double>(global_queue.size()));
          metrics->Set(mid.utilization, sample.avg_utilization);
          metrics->Set(mid.breaker_open, breaker.open() ? 1.0 : 0.0);
          metrics->Sample(now);
        }
        if (config_.autoscaler_enabled) {
          // Consumed-CPU metric (what a CPU-utilization target observes):
          // the sum of per-instance busy fractions times the allocation,
          // physically capped at the deployed capacity.
          scaler.AddSample(now, util_sum * config_.vcpus);
        }
        arrivals_since_sample = 0;
        if (!done()) {
          queue.push({now + config_.autoscaler.sample_interval, EventType::kSample});
        }
        break;
      }
    }
    // Any event can free capacity (idle sandbox, death, KA expiry); admit
    // waiting single-model attempts as soon as it does. No-op by default.
    pump_admission();
  }

  // Finalize accounting; surviving sandboxes are closed at the last event.
  for (auto& s : sandboxes) {
    advance(s);
    if (!s.dead) {
      retire_sandbox(s);  // Emits the lifetime span for survivors.
    }
    SandboxAccounting acc;
    acc.sandbox_id = s.id;
    acc.created_at = s.created_at;
    acc.destroyed_at = now;
    acc.init_time = std::min(s.ready_at, now) - s.created_at;
    acc.busy_time = s.busy_time;
    acc.idle_time = s.idle_time;
    result.total_instance_seconds += MicrosToSecs(acc.destroyed_at - acc.created_at);
    result.sandboxes.push_back(acc);
  }
  for (const auto& a : result.attempts) {
    if (a.cold_start) {
      ++result.cold_starts;
    }
  }
  for (const auto& r : result.requests) {
    if (r.outcome == Outcome::kOk) {
      ++result.successes;
    }
  }
  result.retries =
      static_cast<int64_t>(result.attempts.size()) - static_cast<int64_t>(result.requests.size());
  result.breaker_trips = breaker.trips();
  return result;
}

std::vector<MicroSecs> UniformArrivals(double rps, MicroSecs duration) {
  std::vector<MicroSecs> out;
  if (rps <= 0.0 || duration <= 0) {
    return out;
  }
  const double gap = static_cast<double>(kMicrosPerSec) / rps;
  for (double t = 0.0; t < static_cast<double>(duration); t += gap) {
    out.push_back(static_cast<MicroSecs>(t));
  }
  return out;
}

std::vector<MicroSecs> PoissonArrivals(double rps, MicroSecs duration, Rng& rng) {
  std::vector<MicroSecs> out;
  if (rps <= 0.0 || duration <= 0) {
    return out;
  }
  const double rate_per_us = rps / static_cast<double>(kMicrosPerSec);
  double t = rng.Exponential(rate_per_us);
  while (t < static_cast<double>(duration)) {
    out.push_back(static_cast<MicroSecs>(t));
    t += rng.Exponential(rate_per_us);
  }
  return out;
}

RequestRecord BillableRecord(const AttemptOutcome& attempt, double alloc_vcpus,
                             MegaBytes alloc_mem_mb) {
  RequestRecord r;
  r.arrival = attempt.dispatched;
  r.exec_duration = attempt.exec_duration;
  r.cpu_time = attempt.exec_duration;  // ~1 busy vCPU for the whole duration.
  r.alloc_vcpus = alloc_vcpus;
  r.alloc_mem_mb = alloc_mem_mb;
  r.used_mem_mb = alloc_mem_mb;
  r.cold_start = attempt.cold_start;
  r.init_duration = attempt.init_duration;
  r.outcome = attempt.outcome;
  r.attempt = attempt.attempt;
  return r;
}

double ColdStartProbability(const PlatformSimConfig& config, const WorkloadSpec& workload,
                            MicroSecs idle, int samples, uint64_t seed) {
  assert(samples > 0);
  int cold = 0;
  for (int i = 0; i < samples; ++i) {
    const uint64_t run_seed = seed + static_cast<uint64_t>(i) * 7919;
    // First pass: find the warm-up request's completion time.
    PlatformSim warmup(config, run_seed);
    const PlatformSimResult first = warmup.Run({0}, workload);
    const MicroSecs probe_at = first.requests.front().completion + idle;
    // Replay with the same seed so the warm-up behaves identically, then
    // probe after the idle interval.
    PlatformSim probe(config, run_seed);
    const PlatformSimResult both = probe.Run({0, probe_at}, workload);
    if (both.requests.back().cold_start) {
      ++cold;
    }
  }
  return static_cast<double>(cold) / static_cast<double>(samples);
}

}  // namespace faascost
