#include "src/platform/platform_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>

#include "src/integrity/archive.h"
#include "src/integrity/digest.h"

namespace faascost {

namespace {

enum class EventType {
  kArrival,
  kInitDone,
  kSandboxNext,
  kKaExpire,
  kScalerEval,
  kSample,
  kRetryArrival,   // req_idx = original request index.
  kExecTimeout,    // req_idx = attempt index (platform-enforced timeout).
  kClientTimeout,  // req_idx = attempt index (client abandons the attempt).
  kQueueTimeout,   // req_idx = attempt index (admission queue wait expired).
  kDrainDeadline,  // sandbox_id = draining sandbox whose budget is up.
};

struct Event {
  MicroSecs time = 0;
  EventType type = EventType::kArrival;
  int sandbox_id = -1;
  uint64_t gen = 0;
  int req_idx = -1;

  bool operator>(const Event& other) const { return time > other.time; }
};

struct InFlightReq {
  int req_idx = -1;
  int attempt_idx = -1;        // Index into PlatformSimResult::attempts.
  double remaining_cpu = 0.0;  // Microseconds of CPU at full-core speed.
  bool in_cpu_phase = false;
  bool will_crash = false;  // remaining_cpu was truncated at the crash point.
  MicroSecs fixed_end = 0;  // End of the fixed (overhead + I/O) phase.
};

struct SandboxState {
  int id = 0;
  bool dead = false;
  bool initializing = true;
  bool draining = false;     // Refusing admissions; dies when inflight empties.
  bool init_failed = false;  // Fault-injected: init ends in failure.
  MicroSecs created_at = 0;
  MicroSecs ready_at = 0;
  MicroSecs drain_started = 0;  // Meaningful only while draining.
  std::vector<InFlightReq> inflight;
  std::vector<int> pending_local;  // Attempts waiting for this sandbox's init.
  MicroSecs last_advance = 0;
  double rate = 0.0;  // Cached per-request CPU rate.
  uint64_t gen = 0;
  MicroSecs ka_deadline = -1;
  int64_t served = 0;
  MicroSecs busy_time = 0;
  MicroSecs idle_time = 0;
  MicroSecs busy_snapshot = 0;  // busy_time at the previous metric sample.
};

// priority_queue with the protected underlying container exposed, so
// checkpoints serialize the heap array verbatim: a restored queue pops in
// exactly the original order, tie-breaking included.
struct EventQueue
    : std::priority_queue<Event, std::vector<Event>, std::greater<Event>> {
  std::vector<Event>& raw() { return c; }
  const std::vector<Event>& raw() const { return c; }
};

struct MetricIds {
  int instances = 0, ready = 0, inflight = 0, queue_depth = 0, utilization = 0;
  int breaker_open = 0, attempts = 0, failures = 0, cold_starts = 0, retries = 0;
  int queue_wait_ms = 0, e2e_ms = 0;
};

// --- Shared archive helpers (save / load / digest through one walker) ---

template <typename Ar>
void ArchiveBreaker(Ar& ar, std::string_view key, CircuitBreaker& breaker) {
  CircuitBreakerState st = breaker.SaveState();
  ar.Begin(key);
  ar.Field("state", st.state);
  ar.Field("consecutive_failures", st.consecutive_failures);
  ar.Field("open_until", st.open_until);
  ar.Field("probe_inflight", st.probe_inflight);
  ar.Field("trips", st.trips);
  ar.End();
  if constexpr (Ar::kLoading) {
    breaker.LoadState(st);
  }
}

template <typename Ar>
void ArchiveScaler(Ar& ar, std::string_view key, WindowedAutoscaler& scaler) {
  std::deque<std::pair<MicroSecs, double>> samples = scaler.samples();
  const size_t n = ar.BeginArray(key, samples.size());
  if constexpr (Ar::kLoading) {
    samples.resize(n);
  }
  for (size_t i = 0; i < n; ++i) {
    ar.BeginElem();
    ar.Field("t", samples[i].first);
    ar.Field("d", samples[i].second);
    ar.EndElem();
  }
  ar.EndArray();
  if constexpr (Ar::kLoading) {
    scaler.RestoreSamples(std::move(samples));
  }
}

template <typename Ar>
void ArchiveKeepAlive(Ar& ar, std::string_view key, KeepAlivePolicy& policy) {
  std::vector<int64_t> st;
  policy.SaveState(&st);
  ar.I64Vec(key, st);
  if constexpr (Ar::kLoading) {
    policy.LoadState(st);
  }
}

uint64_t HashPlatformConfig(const PlatformSimConfig& c, uint64_t seed) {
  StateDigest d;
  d.MixLabel("platform-config-v1");
  d.MixU64(seed);
  d.MixStr(c.name);
  d.MixI64(static_cast<int64_t>(c.concurrency));
  d.MixI64(c.concurrency_limit);
  d.MixI64(static_cast<int64_t>(c.routing));
  d.MixDouble(c.vcpus);
  d.MixDouble(c.mem_mb);
  d.MixI64(c.init_mean);
  d.MixDouble(c.init_jitter);
  d.MixBool(c.coldstart != nullptr);
  d.MixDouble(c.contention_coeff);
  d.MixDouble(c.contention_excess_cap);
  d.MixBool(c.autoscaler_enabled);
  d.MixDouble(c.autoscaler.target_utilization);
  d.MixI64(c.autoscaler.metric_window);
  d.MixI64(c.autoscaler.sample_interval);
  d.MixI64(c.autoscaler.eval_interval);
  d.MixI64(c.autoscaler.action_cooldown);
  d.MixI64(c.autoscaler.max_instances);
  d.MixI64(c.max_instances);
  d.MixDouble(c.faults.init_failure_prob);
  d.MixDouble(c.faults.crash_prob);
  d.MixBool(c.faults.crash_kills_sandbox);
  d.MixI64(c.faults.max_exec_duration);
  d.MixBool(c.faults.reject_on_overload);
  d.MixI64(c.retry.max_attempts);
  d.MixI64(c.retry.backoff_base);
  d.MixDouble(c.retry.backoff_multiplier);
  d.MixI64(c.retry.backoff_cap);
  d.MixBool(c.retry.full_jitter);
  d.MixI64(c.retry.attempt_timeout);
  d.MixBool(c.retry.retry_rejected);
  d.MixI64(c.retry.breaker_threshold);
  d.MixI64(c.retry.breaker_cooldown);
  d.MixBool(c.admission.enabled);
  d.MixI64(c.admission.queue_depth);
  d.MixI64(c.admission.queue_timeout);
  d.MixI64(static_cast<int64_t>(c.admission.shed));
  d.MixBool(c.scaledown_drains_busy);
  d.MixI64(c.drain_deadline);
  d.MixStr(c.keepalive != nullptr ? c.keepalive->name() : "");
  return d.value();
}

AutoscalerConfig MakeScalerConfig(const PlatformSimConfig& config) {
  AutoscalerConfig scaler_config = config.autoscaler;
  scaler_config.per_instance_capacity =
      config.vcpus * config.autoscaler.target_utilization;
  scaler_config.max_instances =
      std::min(scaler_config.max_instances, config.max_instances);
  return scaler_config;
}

}  // namespace

std::vector<std::string> PlatformSimConfig::Validate() const {
  std::vector<std::string> errors;
  if (!(vcpus > 0.0)) {
    errors.push_back("vcpus must be > 0, got " + std::to_string(vcpus));
  }
  if (!(mem_mb > 0.0)) {
    errors.push_back("mem_mb must be > 0, got " + std::to_string(mem_mb));
  }
  if (concurrency_limit < 1) {
    errors.push_back("concurrency_limit must be >= 1, got " +
                     std::to_string(concurrency_limit));
  }
  if (max_instances < 1) {
    errors.push_back("max_instances must be >= 1, got " + std::to_string(max_instances));
  }
  if (coldstart == nullptr && init_mean <= 0) {
    errors.push_back("init_mean must be > 0 when no cold-start model is set");
  }
  if (init_jitter < 0.0 || init_jitter >= 1.0) {
    errors.push_back("init_jitter must be in [0, 1), got " + std::to_string(init_jitter));
  }
  if (contention_coeff < 0.0) {
    errors.push_back("contention_coeff must be >= 0");
  }
  if (contention_excess_cap < 0.0) {
    errors.push_back("contention_excess_cap must be >= 0");
  }
  if (keepalive == nullptr) {
    errors.push_back("a keepalive policy is required");
  }
  for (const std::string& e : faults.Validate()) {
    errors.push_back("faults: " + e);
  }
  for (const std::string& e : retry.Validate()) {
    errors.push_back("retry: " + e);
  }
  for (const std::string& e : admission.Validate()) {
    errors.push_back("admission: " + e);
  }
  if (drain_deadline < 0) {
    errors.push_back("drain_deadline must be >= 0 (0 = drains kill at once), got " +
                     std::to_string(drain_deadline));
  }
  return errors;
}

PlatformSim::PlatformSim(PlatformSimConfig config, uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  const std::vector<std::string> errors = config_.Validate();
  if (!errors.empty()) {
    std::string msg = "invalid PlatformSimConfig";
    for (const auto& e : errors) {
      msg += "; " + e;
    }
    throw std::invalid_argument(msg);
  }
}

struct PlatformEngine::Impl {
  PlatformSimConfig config;
  uint64_t seed;
  WorkloadSpec workload;

  PlatformSimResult result;
  Rng rng;
  // Faults draw from their own stream: a zero-fault run leaves the main
  // stream — and therefore every result — identical to a fault-free build.
  FaultModel faults;
  // One client fleet, one function: a single shared breaker. Disabled
  // (threshold 0) it never gates, records, or trips.
  CircuitBreaker breaker;
  AutoscalerConfig scaler_config;
  WindowedAutoscaler scaler;

  EventQueue queue;
  std::vector<SandboxState> sandboxes;
  std::deque<int> global_queue;  // Attempts waiting for capacity (multi model).
  std::vector<int> next_attempt_no;
  std::vector<uint8_t> attempt_open;     // Server side not yet concluded.
  std::vector<uint8_t> attempt_started;  // Admitted to a sandbox.
  size_t terminal = 0;        // Requests with a terminal client outcome.
  int64_t open_attempts = 0;  // Dispatched attempts not yet concluded.
  MicroSecs now = 0;
  MicroSecs last_scale_action = std::numeric_limits<MicroSecs>::min() / 2;
  int64_t arrivals_since_sample = 0;
  MicroSecs last_completion = -1;  // For idle-interval feedback to the KA policy.
  int64_t events_processed = 0;
  bool multi = false;
  bool started = false;
  bool finished = false;

  // --- Observability and integrity hooks (no-ops when null) ---
  TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  TimeSeries* ts = nullptr;
  EngineProfiler* prof = nullptr;
  Auditor* auditor = nullptr;
  MetricIds mid;

  Impl(PlatformSimConfig cfg, uint64_t sd)
      : config(std::move(cfg)),
        seed(sd),
        rng(sd),
        faults(config.faults, sd),
        breaker(config.retry.breaker_threshold, config.retry.breaker_cooldown),
        scaler_config(MakeScalerConfig(config)),
        scaler(scaler_config),
        multi(config.concurrency == ConcurrencyModel::kMultiConcurrency),
        trace(config.trace),
        metrics(config.metrics),
        ts(config.timeseries),
        prof(config.profiler),
        auditor(config.auditor) {
    if (prof != nullptr) {
      // Keep in EventType declaration order.
      prof->RegisterEventType(static_cast<int>(EventType::kArrival), "arrival");
      prof->RegisterEventType(static_cast<int>(EventType::kInitDone), "init_done");
      prof->RegisterEventType(static_cast<int>(EventType::kSandboxNext), "sandbox_next");
      prof->RegisterEventType(static_cast<int>(EventType::kKaExpire), "ka_expire");
      prof->RegisterEventType(static_cast<int>(EventType::kScalerEval), "scaler_eval");
      prof->RegisterEventType(static_cast<int>(EventType::kSample), "sample");
      prof->RegisterEventType(static_cast<int>(EventType::kRetryArrival),
                              "retry_arrival");
      prof->RegisterEventType(static_cast<int>(EventType::kExecTimeout),
                              "exec_timeout");
      prof->RegisterEventType(static_cast<int>(EventType::kClientTimeout),
                              "client_timeout");
      prof->RegisterEventType(static_cast<int>(EventType::kQueueTimeout),
                              "queue_timeout");
      prof->RegisterEventType(static_cast<int>(EventType::kDrainDeadline),
                              "drain_deadline");
    }
    if (metrics != nullptr) {
      using K = MetricsRegistry::Kind;
      mid.instances = metrics->Define(K::kGauge, "platform.instances");
      mid.ready = metrics->Define(K::kGauge, "platform.warm_pool");
      mid.inflight = metrics->Define(K::kGauge, "platform.inflight");
      mid.queue_depth = metrics->Define(K::kGauge, "platform.queue_depth");
      mid.utilization = metrics->Define(K::kGauge, "platform.avg_utilization");
      mid.breaker_open = metrics->Define(K::kGauge, "platform.breaker_open");
      mid.attempts = metrics->Define(K::kCounter, "platform.attempts_total");
      mid.failures = metrics->Define(K::kCounter, "platform.failed_attempts_total");
      mid.cold_starts = metrics->Define(K::kCounter, "platform.cold_starts_total");
      mid.retries = metrics->Define(K::kCounter, "platform.retries_total");
      mid.queue_wait_ms = metrics->Define(K::kHistogram, "platform.queue_wait_ms");
      mid.e2e_ms = metrics->Define(K::kHistogram, "platform.e2e_latency_ms");
    }
  }

  bool Done() const { return terminal == result.requests.size() && open_attempts == 0; }

  // One span on the request's client track. `term` marks the attempt's
  // terminal span — the one the billing tagger attributes the invoice to.
  void EmitClientSpan(SpanKind kind, MicroSecs start, MicroSecs duration,
                      int attempt_idx, const char* status, bool term) {
    if (trace == nullptr) {
      return;
    }
    const AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
    Span sp;
    sp.kind = kind;
    sp.group = kTrackGroupClient;
    sp.track = att.req_idx;
    sp.start = start;
    sp.duration = duration;
    sp.req_idx = att.req_idx;
    sp.attempt = att.attempt;
    sp.sandbox_id = att.sandbox_id;
    sp.ref = attempt_idx;
    sp.status = status;
    sp.cold = att.cold_start;
    sp.terminal = term;
    trace->Record(sp);
  }

  // Closes out a sandbox: emits its drain and lifetime spans, then marks it
  // dead. Every death site funnels through here.
  void RetireSandbox(SandboxState& s) {
    s.dead = true;
    if (trace == nullptr) {
      return;
    }
    if (s.draining) {
      Span d;
      d.kind = SpanKind::kDrain;
      d.group = kTrackGroupSandbox;
      d.track = s.id;
      d.start = s.drain_started;
      d.duration = now - s.drain_started;
      d.sandbox_id = s.id;
      trace->Record(d);
    }
    Span sp;
    sp.kind = SpanKind::kSandboxLife;
    sp.group = kTrackGroupSandbox;
    sp.track = s.id;
    sp.start = s.created_at;
    sp.duration = now - s.created_at;
    sp.sandbox_id = s.id;
    sp.status = s.init_failed ? OutcomeName(Outcome::kInitFailure) : "";
    trace->Record(sp);
  }

  static int CpuPhaseCount(const SandboxState& s) {
    int k = 0;
    for (const auto& r : s.inflight) {
      if (r.in_cpu_phase) {
        ++k;
      }
    }
    return k;
  }

  double ComputeRate(const SandboxState& s) const {
    const int k = CpuPhaseCount(s);
    if (k == 0) {
      return 0.0;
    }
    double rate = std::min(1.0, config.vcpus / static_cast<double>(k));
    const double excess = std::min(static_cast<double>(k) - config.vcpus,
                                   config.contention_excess_cap);
    if (excess > 0.0) {
      rate /= 1.0 + config.contention_coeff * excess;
    }
    return rate;
  }

  void Advance(SandboxState& s) {
    const MicroSecs dt = now - s.last_advance;
    if (dt <= 0) {
      return;
    }
    if (!s.initializing && !s.dead) {
      if (s.inflight.empty()) {
        s.idle_time += dt;
      } else {
        s.busy_time += dt;
      }
    }
    if (s.rate > 0.0) {
      for (auto& r : s.inflight) {
        if (r.in_cpu_phase) {
          r.remaining_cpu -= s.rate * static_cast<double>(dt);
        }
      }
    }
    s.last_advance = now;
  }

  void ScheduleNext(SandboxState& s) {
    if (s.dead || s.initializing || s.inflight.empty()) {
      return;
    }
    MicroSecs next = -1;
    for (const auto& r : s.inflight) {
      MicroSecs t = 0;
      if (r.in_cpu_phase) {
        if (s.rate <= 0.0) {
          continue;
        }
        t = now + static_cast<MicroSecs>(std::ceil(std::max(0.0, r.remaining_cpu) / s.rate));
        t = std::max(t, now + 1);
      } else {
        t = std::max(r.fixed_end, now);
      }
      if (next < 0 || t < next) {
        next = t;
      }
    }
    if (next >= 0) {
      ++s.gen;
      queue.push({next, EventType::kSandboxNext, s.id, s.gen});
    }
  }

  int ReadyCount() const {
    int n = 0;
    for (const auto& s : sandboxes) {
      if (!s.dead && !s.initializing && !s.draining) {
        ++n;
      }
    }
    return n;
  }

  int AliveCount() const {
    int n = 0;
    for (const auto& s : sandboxes) {
      if (!s.dead) {
        ++n;
      }
    }
    return n;
  }

  SandboxState& CreateSandbox() {
    SandboxState s;
    s.id = static_cast<int>(sandboxes.size());
    s.created_at = now;
    s.last_advance = now;
    s.init_failed = faults.SampleInitFailure();
    MicroSecs init = 0;
    if (config.coldstart != nullptr) {
      init = config.coldstart->Sample(rng).total;
    } else {
      const double jitter = rng.Uniform(-config.init_jitter, config.init_jitter);
      init = std::max<MicroSecs>(
          1,
          static_cast<MicroSecs>(static_cast<double>(config.init_mean) * (1.0 + jitter)));
    }
    s.ready_at = now + init;
    sandboxes.push_back(std::move(s));
    SandboxState& ref = sandboxes.back();
    queue.push({ref.ready_at, EventType::kInitDone, ref.id, ref.gen});
    return ref;
  }

  // Starts processing the attempt on a ready sandbox at `now`.
  void StartAttempt(SandboxState& s, int attempt_idx, bool cold) {
    AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
    RequestOutcome& out = result.requests[static_cast<size_t>(att.req_idx)];
    attempt_started[static_cast<size_t>(attempt_idx)] = 1;
    att.sandbox_id = s.id;
    att.start_exec = now;
    att.cold_start = cold;
    att.init_duration = cold ? s.ready_at - s.created_at : 0;
    out.sandbox_id = s.id;
    out.start_exec = now;
    out.cold_start = cold;
    out.init_duration = att.init_duration;
    if (trace != nullptr && now > att.dispatched) {
      EmitClientSpan(SpanKind::kQueueWait, att.dispatched, now - att.dispatched,
                     attempt_idx, "", /*term=*/false);
    }
    if (metrics != nullptr) {
      metrics->Observe(mid.queue_wait_ms, MicrosToMillis(now - att.dispatched));
      if (cold) {
        metrics->Add(mid.cold_starts);
      }
    }
    if (ts != nullptr) {
      ts->RecordDispatch(now, cold);
    }
    InFlightReq r;
    r.req_idx = att.req_idx;
    r.attempt_idx = attempt_idx;
    double cpu = static_cast<double>(workload.cpu_time);
    if (workload.cpu_jitter > 0.0) {
      cpu *= 1.0 + rng.Uniform(-workload.cpu_jitter, workload.cpu_jitter);
    }
    r.remaining_cpu = std::max(1.0, cpu);
    const MicroSecs overhead = config.serving.Sample(config.vcpus, rng);
    r.fixed_end = now + overhead + workload.io_wait;
    r.in_cpu_phase = r.fixed_end <= now;
    if (trace != nullptr && overhead > 0) {
      EmitClientSpan(SpanKind::kServingOverhead, now, overhead, attempt_idx, "",
                     /*term=*/false);
    }
    if (config.faults.crash_prob > 0.0 && faults.SampleCrash()) {
      // Crash point uniform over the attempt's CPU demand: the attempt fails
      // once the truncated work finishes, billed up to that point.
      r.will_crash = true;
      r.remaining_cpu = std::max(1.0, r.remaining_cpu * faults.SampleCrashPoint());
    }
    s.inflight.push_back(r);
    ++s.served;
    s.ka_deadline = -1;
    if (config.faults.max_exec_duration > 0) {
      queue.push({now + config.faults.max_exec_duration, EventType::kExecTimeout, s.id, 0,
                  attempt_idx});
    }
  }

  void CountFailure(Outcome oc) {
    ++result.failed_attempts;
    switch (oc) {
      case Outcome::kInitFailure:
        ++result.init_failure_attempts;
        break;
      case Outcome::kCrash:
        ++result.crash_attempts;
        break;
      case Outcome::kTimeout:
        ++result.timeout_attempts;
        break;
      case Outcome::kRejected:
        ++result.rejected_attempts;
        break;
      case Outcome::kCircuitOpen:
        ++result.circuit_open_attempts;
        break;
      default:
        break;
    }
  }

  // Client-side resolution of a failed (or abandoned) attempt: schedule a
  // retry, or conclude the request.
  void ResolveClient(int attempt_idx, Outcome oc) {
    const AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
    RequestOutcome& out = result.requests[static_cast<size_t>(att.req_idx)];
    out.last_error = oc;
    if (breaker.enabled() && oc != Outcome::kCircuitOpen) {
      // Real client-observed failures feed the breaker; its own
      // short-circuits must not, or one trip would loop forever.
      breaker.RecordFailure(now);
    }
    const bool retryable = oc != Outcome::kRejected || config.retry.retry_rejected;
    if (retryable && att.attempt < config.retry.max_attempts) {
      const MicroSecs delay = config.retry.BackoffDelay(att.attempt, faults.rng());
      if (trace != nullptr) {
        EmitClientSpan(SpanKind::kBackoff, now, delay, attempt_idx, "", /*term=*/false);
      }
      if (metrics != nullptr) {
        metrics->Add(mid.retries);
      }
      if (ts != nullptr) {
        ts->RecordRetry(now);
      }
      queue.push({now + delay, EventType::kRetryArrival, -1, 0, att.req_idx});
      return;
    }
    out.outcome = att.attempt > 1 ? Outcome::kRetriesExhausted : oc;
    out.completion = now;
    out.reported_duration = att.exec_duration;
    out.e2e_latency = now - out.arrival;
    out.sandbox_id = att.sandbox_id;
    out.start_exec = att.start_exec;
    out.cold_start = att.cold_start;
    out.init_duration = att.init_duration;
    if (metrics != nullptr) {
      metrics->Observe(mid.e2e_ms, MicrosToMillis(now - out.arrival));
    }
    if (ts != nullptr) {
      ts->RecordCompletion(now, /*ok=*/false, now - out.arrival);
    }
    ++terminal;
  }

  // Server-side failure of an attempt (caller has already detached it from
  // any sandbox and set exec_duration for started attempts).
  void FailAttempt(int attempt_idx, Outcome oc) {
    AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
    att.outcome = oc;
    att.end = now;
    attempt_open[static_cast<size_t>(attempt_idx)] = 0;
    --open_attempts;
    CountFailure(oc);
    if (trace != nullptr) {
      // Started attempts get an exec span; never-admitted ones a terminal
      // wait span from dispatch to the rejection/withdrawal.
      if (attempt_started[static_cast<size_t>(attempt_idx)]) {
        EmitClientSpan(SpanKind::kExec, att.start_exec, now - att.start_exec,
                       attempt_idx, OutcomeName(oc), /*term=*/true);
      } else {
        EmitClientSpan(SpanKind::kQueueWait, att.dispatched, now - att.dispatched,
                       attempt_idx, OutcomeName(oc), /*term=*/true);
      }
    }
    if (metrics != nullptr) {
      metrics->Add(mid.failures);
    }
    if (ts != nullptr && attempt_started[static_cast<size_t>(attempt_idx)] &&
        now > att.start_exec) {
      ts->RecordExecution(att.start_exec, now);
    }
    if (!att.client_abandoned) {
      ResolveClient(attempt_idx, oc);
    }
  }

  // Completes one attempt successfully; delivery only if the client is
  // still waiting.
  void CompleteAttempt(SandboxState& s, size_t pos) {
    const InFlightReq req = s.inflight[pos];
    s.inflight.erase(s.inflight.begin() + static_cast<int>(pos));
    AttemptOutcome& att = result.attempts[static_cast<size_t>(req.attempt_idx)];
    att.outcome = Outcome::kOk;
    att.end = now;
    att.exec_duration = now - att.start_exec;
    attempt_open[static_cast<size_t>(req.attempt_idx)] = 0;
    --open_attempts;
    last_completion = std::max(last_completion, now);
    if (trace != nullptr) {
      EmitClientSpan(SpanKind::kExec, att.start_exec, now - att.start_exec,
                     req.attempt_idx, OutcomeName(Outcome::kOk), /*term=*/true);
    }
    if (ts != nullptr && now > att.start_exec) {
      ts->RecordExecution(att.start_exec, now);
    }
    if (att.client_abandoned) {
      return;  // The response has no one left to deliver to.
    }
    if (breaker.enabled()) {
      breaker.RecordSuccess();
    }
    RequestOutcome& out = result.requests[static_cast<size_t>(req.req_idx)];
    out.outcome = Outcome::kOk;
    out.completion = now;
    out.reported_duration = now - out.start_exec;
    out.e2e_latency = now - out.arrival;
    if (metrics != nullptr) {
      metrics->Observe(mid.e2e_ms, MicrosToMillis(now - out.arrival));
    }
    if (ts != nullptr) {
      ts->RecordCompletion(now, /*ok=*/true, now - out.arrival);
    }
    ++terminal;
  }

  void EnterIdle(SandboxState& s) {
    s.ka_deadline = now + config.keepalive->SampleDuration(rng, ReadyCount());
    ++s.gen;
    queue.push({s.ka_deadline, EventType::kKaExpire, s.id, s.gen});
  }

  // Pulls queued attempts onto available capacity (multi-concurrency model).
  void PullGlobalQueue() {
    while (!global_queue.empty()) {
      SandboxState* best = nullptr;
      int eligible = 0;
      for (auto& s : sandboxes) {
        if (s.dead || s.initializing || s.draining) {
          continue;
        }
        if (static_cast<int>(s.inflight.size()) >= config.concurrency_limit) {
          continue;
        }
        ++eligible;
        if (config.routing == RoutingPolicy::kRandom) {
          // Reservoir pick: uniform among eligible sandboxes.
          if (rng.UniformInt(1, eligible) == 1) {
            best = &s;
          }
        } else if (best == nullptr || s.inflight.size() < best->inflight.size()) {
          best = &s;
        }
      }
      if (best == nullptr) {
        return;
      }
      Advance(*best);
      const int attempt_idx = global_queue.front();
      global_queue.pop_front();
      const bool cold = best->served == 0;
      StartAttempt(*best, attempt_idx, cold);
      best->rate = ComputeRate(*best);
      ScheduleNext(*best);
    }
  }

  // Sheds one attempt to make room in a full admission queue; returns false
  // when the incoming attempt itself was the victim (reject-newest).
  bool ShedFor(int attempt_idx) {
    ++result.shed_attempts;
    if (config.admission.shed == ShedPolicy::kRejectNewest) {
      FailAttempt(attempt_idx, Outcome::kRejected);
      return false;
    }
    // Reject-oldest: the head of the queue has waited longest and is the
    // most likely to time out anyway; fail it to admit the newcomer.
    const int victim = global_queue.front();
    global_queue.pop_front();
    FailAttempt(victim, Outcome::kRejected);
    return true;
  }

  // Single-concurrency admission pump: when capacity frees up (a sandbox
  // goes idle or dies), admit waiting attempts — warm reuse first, then
  // cold starts while under the instance cap. No-op unless the bounded
  // admission queue is enabled, so default runs never touch it.
  void PumpAdmission() {
    if (!config.admission.enabled || multi) {
      return;
    }
    while (!global_queue.empty()) {
      SandboxState* best = nullptr;
      for (auto& s : sandboxes) {
        if (s.dead || s.draining || s.initializing || !s.inflight.empty()) {
          continue;
        }
        if (s.ka_deadline >= 0 && s.ka_deadline <= now) {
          continue;
        }
        if (best == nullptr || s.ready_at > best->ready_at) {
          best = &s;
        }
      }
      const int attempt_idx = global_queue.front();
      if (best != nullptr) {
        global_queue.pop_front();
        Advance(*best);
        StartAttempt(*best, attempt_idx, /*cold=*/false);
        best->rate = ComputeRate(*best);
        ScheduleNext(*best);
        continue;
      }
      if (AliveCount() < config.max_instances) {
        global_queue.pop_front();
        SandboxState& fresh = CreateSandbox();
        fresh.pending_local.push_back(attempt_idx);
        result.attempts[static_cast<size_t>(attempt_idx)].sandbox_id = fresh.id;
        continue;
      }
      return;  // Still saturated; the queue keeps waiting.
    }
  }

  // Creates an attempt record for `req_idx` and routes it to a sandbox, the
  // global queue, or immediate rejection.
  void Dispatch(int req_idx) {
    const int attempt_no = next_attempt_no[static_cast<size_t>(req_idx)]++;
    AttemptOutcome att;
    att.req_idx = req_idx;
    att.attempt = attempt_no;
    att.dispatched = now;
    const int attempt_idx = static_cast<int>(result.attempts.size());
    result.attempts.push_back(att);
    attempt_open.push_back(1);
    attempt_started.push_back(0);
    ++open_attempts;
    result.requests[static_cast<size_t>(req_idx)].attempts = attempt_no;
    if (metrics != nullptr) {
      metrics->Add(mid.attempts);
    }
    if (breaker.enabled() && !breaker.AllowDispatch(now)) {
      // Fast-fail at the client: the attempt never reaches the platform and
      // is never billed (and never starts a client-timeout clock).
      FailAttempt(attempt_idx, Outcome::kCircuitOpen);
      return;
    }
    if (config.retry.attempt_timeout > 0) {
      queue.push(
          {now + config.retry.attempt_timeout, EventType::kClientTimeout, -1, 0, attempt_idx});
    }
    if (!multi) {
      // Reuse the most recently used warm idle sandbox, else cold start.
      SandboxState* best = nullptr;
      for (auto& s : sandboxes) {
        if (s.dead || s.draining || s.initializing || !s.inflight.empty()) {
          continue;
        }
        if (s.ka_deadline >= 0 && s.ka_deadline <= now) {
          continue;  // Expiry event still queued but the window has passed.
        }
        if (best == nullptr || s.ready_at > best->ready_at) {
          best = &s;
        }
      }
      if (best != nullptr) {
        Advance(*best);
        StartAttempt(*best, attempt_idx, /*cold=*/false);
        best->rate = ComputeRate(*best);
        // ScheduleNext bumps the generation, which also invalidates the
        // pending KA-expiry event of the previously idle sandbox.
        ScheduleNext(*best);
        return;
      }
      if (config.admission.enabled && AliveCount() >= config.max_instances) {
        // Saturated: wait in the bounded admission queue instead of either
        // rejecting outright or scaling past the cap.
        if (static_cast<int>(global_queue.size()) >= config.admission.queue_depth &&
            !ShedFor(attempt_idx)) {
          return;  // The newcomer was the shed victim.
        }
        global_queue.push_back(attempt_idx);
        if (config.admission.queue_timeout > 0) {
          queue.push({now + config.admission.queue_timeout, EventType::kQueueTimeout, -1,
                      0, attempt_idx});
        }
        return;
      }
      if (config.faults.reject_on_overload && AliveCount() >= config.max_instances) {
        FailAttempt(attempt_idx, Outcome::kRejected);
        return;
      }
      SandboxState& fresh = CreateSandbox();
      fresh.pending_local.push_back(attempt_idx);
      result.attempts[static_cast<size_t>(attempt_idx)].sandbox_id = fresh.id;
      return;
    }
    // Multi-concurrency: 429 when the deployment is saturated — at the
    // instance cap with no spare concurrency anywhere and nothing warming up.
    if (config.faults.reject_on_overload && AliveCount() >= config.max_instances) {
      bool spare = false;
      for (const auto& s : sandboxes) {
        if (s.dead) {
          continue;
        }
        if (s.initializing || static_cast<int>(s.inflight.size()) < config.concurrency_limit) {
          spare = true;
          break;
        }
      }
      if (!spare) {
        FailAttempt(attempt_idx, Outcome::kRejected);
        return;
      }
    }
    // Queue at the ingress and let the pull logic place it. With admission
    // control the ingress queue is bounded: past the depth the shed policy
    // picks a victim, and waits are clocked against queue_timeout.
    if (config.admission.enabled) {
      if (static_cast<int>(global_queue.size()) >= config.admission.queue_depth &&
          !ShedFor(attempt_idx)) {
        return;
      }
      if (config.admission.queue_timeout > 0) {
        queue.push({now + config.admission.queue_timeout, EventType::kQueueTimeout, -1, 0,
                    attempt_idx});
      }
    }
    global_queue.push_back(attempt_idx);
    PullGlobalQueue();
    if (!global_queue.empty() && AliveCount() == 0) {
      // Scale from zero: start one instance immediately; any further
      // scale-out is metric-driven and therefore lags demand (paper §3.1).
      CreateSandbox();
    }
  }

  // O(state) invariant scan (AuditLevel::kFull, cadence-gated). Walks every
  // attempt, queue entry, and sandbox; see DESIGN.md §9 for the catalog.
  void AuditScan() {
    if (auditor == nullptr) {
      return;
    }
    auditor->NoteScan();
    // Request conservation: admitted == concluded + in-flight, expressed as
    // "the number of open attempt flags equals the open-attempt counter".
    int64_t open_flags = 0;
    for (const uint8_t open : attempt_open) {
      open_flags += open;
    }
    auditor->CheckLazy(open_flags == open_attempts, "platform.open_attempts", now,
                       seed, [] { return "attempts"; },
                       [&] {
                         return "flagged=" + std::to_string(open_flags) +
                                " counter=" + std::to_string(open_attempts);
                       });
    // Every open attempt is accounted for in exactly one waiting place:
    // running in a sandbox, parked in the global admission queue, or pending
    // a cold start.
    int64_t inflight_total = 0;
    int64_t pending_total = 0;
    for (const auto& s : sandboxes) {
      inflight_total += static_cast<int64_t>(s.inflight.size());
      pending_total += static_cast<int64_t>(s.pending_local.size());
      for (const auto& r : s.inflight) {
        auditor->CheckLazy(attempt_open[static_cast<size_t>(r.attempt_idx)] == 1 &&
                               attempt_started[static_cast<size_t>(r.attempt_idx)] == 1,
                           "platform.inflight_attempt_state", now, seed,
                           [&] { return "sandbox " + std::to_string(s.id); },
                           [&] {
                             return "attempt " + std::to_string(r.attempt_idx) +
                                    " resident but not open+started";
                           });
      }
      for (const int a : s.pending_local) {
        auditor->CheckLazy(attempt_open[static_cast<size_t>(a)] == 1 &&
                               attempt_started[static_cast<size_t>(a)] == 0,
                           "platform.pending_attempt_state", now, seed,
                           [&] { return "sandbox " + std::to_string(s.id); },
                           [&] {
                             return "attempt " + std::to_string(a) +
                                    " pending but not open";
                           });
      }
    }
    for (const int a : global_queue) {
      auditor->CheckLazy(attempt_open[static_cast<size_t>(a)] == 1 &&
                             attempt_started[static_cast<size_t>(a)] == 0,
                         "platform.queued_attempt_state", now, seed,
                         [] { return "global queue"; },
                         [&] {
                           return "attempt " + std::to_string(a) +
                                  " queued but not open";
                         });
    }
    auditor->CheckLazy(
        open_attempts == inflight_total + static_cast<int64_t>(global_queue.size()) +
                             pending_total,
        "platform.request_conservation", now, seed, [] { return "attempts"; },
        [&] {
          return "open=" + std::to_string(open_attempts) + " inflight=" +
                 std::to_string(inflight_total) + " queued=" +
                 std::to_string(global_queue.size()) + " pending=" +
                 std::to_string(pending_total);
        });
    // Capacity accounting: every sandbox is in exactly one of
    // dead / initializing / draining / busy / idle.
    int64_t dead = 0, initializing = 0, draining = 0, busy = 0, idle = 0;
    for (const auto& s : sandboxes) {
      if (s.dead) {
        ++dead;
      } else if (s.initializing) {
        ++initializing;
      } else if (s.draining) {
        ++draining;
      } else if (!s.inflight.empty()) {
        ++busy;
      } else {
        ++idle;
      }
      // Time accounting: once ready, every elapsed microsecond up to the
      // sandbox's accounting horizon is either busy or idle.
      if (!s.dead && !s.initializing) {
        auditor->CheckLazy(s.busy_time + s.idle_time == s.last_advance - s.ready_at,
                           "platform.sandbox_time_accounting", now, seed,
                           [&] { return "sandbox " + std::to_string(s.id); },
                           [&] {
                             return "busy=" + std::to_string(s.busy_time) +
                                    " idle=" + std::to_string(s.idle_time) +
                                    " horizon=" +
                                    std::to_string(s.last_advance - s.ready_at);
                           });
      }
      auditor->CheckLazy(s.last_advance <= now, "platform.sandbox_clock", now,
                         seed,
                         [&] { return "sandbox " + std::to_string(s.id); },
                         [&] {
                           return "last_advance=" + std::to_string(s.last_advance);
                         });
    }
    auditor->CheckLazy(
        dead + initializing + draining + busy + idle ==
            static_cast<int64_t>(sandboxes.size()),
        "platform.capacity_accounting", now, seed, [] { return "fleet"; },
        [&] {
          return "categories sum to " +
                 std::to_string(dead + initializing + draining + busy + idle) +
                 " of " + std::to_string(sandboxes.size());
        });
  }

  void StepOne() {
    const Event ev = queue.top();
    queue.pop();
    if (auditor != nullptr && auditor->basic()) {
      auditor->CheckLazy(ev.time >= now, "platform.monotone_event_time", now,
                         seed, [] { return "event queue"; },
                         [&] {
                           return "event at t=" + std::to_string(ev.time) +
                                  " after t=" + std::to_string(now);
                         });
    }
    now = ev.time;
    ++events_processed;
    if (prof != nullptr) {
      prof->CountEvent(static_cast<int>(ev.type), now,
                       queue.size() + 1);  // +1: `ev` was just popped.
    }
    switch (ev.type) {
      case EventType::kArrival:
      case EventType::kRetryArrival: {
        ++arrivals_since_sample;
        if (ts != nullptr) {
          ts->RecordArrival(now);
        }
        // Idle-time feedback for predictive keep-alive (paper §3.3); retry
        // re-arrivals are arrivals from the platform's point of view too.
        if (last_completion >= 0 && now > last_completion) {
          config.keepalive->ObserveIdleInterval(now - last_completion);
        }
        Dispatch(ev.req_idx);
        break;
      }
      case EventType::kInitDone: {
        SandboxState& s = sandboxes[static_cast<size_t>(ev.sandbox_id)];
        if (s.dead || !s.initializing) {
          break;
        }
        Advance(s);
        if (trace != nullptr) {
          Span sp;
          sp.kind = SpanKind::kInit;
          sp.group = kTrackGroupSandbox;
          sp.track = s.id;
          sp.start = s.created_at;
          sp.duration = now - s.created_at;
          sp.sandbox_id = s.id;
          sp.cold = true;
          sp.status = s.init_failed ? OutcomeName(Outcome::kInitFailure)
                                    : OutcomeName(Outcome::kOk);
          trace->Record(sp);
        }
        if (s.init_failed) {
          // The sandbox never becomes ready; its waiting attempts fail after
          // the (wasted, possibly billed) initialization time.
          RetireSandbox(s);
          const MicroSecs init = s.ready_at - s.created_at;
          for (int attempt_idx : s.pending_local) {
            if (!attempt_open[static_cast<size_t>(attempt_idx)]) {
              continue;  // Withdrawn by a client timeout.
            }
            AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
            att.cold_start = true;
            att.init_duration = init;
            FailAttempt(attempt_idx, Outcome::kInitFailure);
          }
          s.pending_local.clear();
          if (multi && !global_queue.empty() && AliveCount() == 0) {
            CreateSandbox();  // The platform provisions a replacement.
          }
          break;
        }
        s.initializing = false;
        if (!s.pending_local.empty()) {
          for (int attempt_idx : s.pending_local) {
            if (!attempt_open[static_cast<size_t>(attempt_idx)]) {
              continue;  // Withdrawn by a client timeout.
            }
            StartAttempt(s, attempt_idx, /*cold=*/true);
          }
          s.pending_local.clear();
          if (!s.inflight.empty()) {
            s.rate = ComputeRate(s);
            ScheduleNext(s);
          } else {
            EnterIdle(s);  // Every waiting client gave up during init.
          }
        } else if (multi) {
          PullGlobalQueue();
          if (s.inflight.empty()) {
            EnterIdle(s);
          }
        } else if (s.inflight.empty()) {
          EnterIdle(s);
        }
        break;
      }
      case EventType::kSandboxNext: {
        SandboxState& s = sandboxes[static_cast<size_t>(ev.sandbox_id)];
        if (s.dead || ev.gen != s.gen) {
          break;
        }
        Advance(s);
        // Fixed-phase transitions first, then completions.
        for (auto& r : s.inflight) {
          if (!r.in_cpu_phase && r.fixed_end <= now) {
            r.in_cpu_phase = true;
          }
        }
        bool crashed = false;
        for (size_t i = s.inflight.size(); i-- > 0;) {
          if (s.inflight[i].in_cpu_phase && s.inflight[i].remaining_cpu <= 0.5) {
            if (s.inflight[i].will_crash) {
              const int attempt_idx = s.inflight[i].attempt_idx;
              s.inflight.erase(s.inflight.begin() + static_cast<int>(i));
              AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
              att.exec_duration = now - att.start_exec;
              FailAttempt(attempt_idx, Outcome::kCrash);
              crashed = true;
            } else {
              CompleteAttempt(s, i);
            }
          }
        }
        if (crashed && config.faults.crash_kills_sandbox) {
          // Process death: co-resident in-flight requests die with it, and
          // the next arrival pays a cold start.
          for (const auto& r : s.inflight) {
            AttemptOutcome& att = result.attempts[static_cast<size_t>(r.attempt_idx)];
            att.exec_duration = now - att.start_exec;
            FailAttempt(r.attempt_idx, Outcome::kCrash);
          }
          s.inflight.clear();
          RetireSandbox(s);
          if (multi && !global_queue.empty() && AliveCount() == 0) {
            CreateSandbox();
          }
          break;
        }
        s.rate = ComputeRate(s);
        if (s.inflight.empty()) {
          if (s.draining) {
            RetireSandbox(s);  // Drain complete: the instance retires cleanly.
          } else {
            EnterIdle(s);
          }
          if (multi) {
            PullGlobalQueue();
          }
        } else {
          ScheduleNext(s);
        }
        break;
      }
      case EventType::kExecTimeout: {
        const int attempt_idx = ev.req_idx;
        if (!attempt_open[static_cast<size_t>(attempt_idx)] ||
            !attempt_started[static_cast<size_t>(attempt_idx)]) {
          break;  // Already concluded (finished, crashed, or sandbox died).
        }
        AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
        SandboxState& s = sandboxes[static_cast<size_t>(att.sandbox_id)];
        size_t pos = s.inflight.size();
        for (size_t i = 0; i < s.inflight.size(); ++i) {
          if (s.inflight[i].attempt_idx == attempt_idx) {
            pos = i;
            break;
          }
        }
        if (pos == s.inflight.size()) {
          break;
        }
        Advance(s);
        s.inflight.erase(s.inflight.begin() + static_cast<int>(pos));
        att.exec_duration = now - att.start_exec;  // Billed through the timeout.
        FailAttempt(attempt_idx, Outcome::kTimeout);
        s.rate = ComputeRate(s);
        if (s.inflight.empty()) {
          if (s.draining) {
            RetireSandbox(s);
          } else {
            EnterIdle(s);
          }
          if (multi) {
            PullGlobalQueue();
          }
        } else {
          ScheduleNext(s);
        }
        break;
      }
      case EventType::kClientTimeout: {
        const int attempt_idx = ev.req_idx;
        if (!attempt_open[static_cast<size_t>(attempt_idx)]) {
          break;  // The attempt concluded before the client gave up.
        }
        AttemptOutcome& att = result.attempts[static_cast<size_t>(attempt_idx)];
        if (att.client_abandoned) {
          break;
        }
        att.client_abandoned = true;
        if (!attempt_started[static_cast<size_t>(attempt_idx)]) {
          // Never admitted: withdraw from whichever queue it waits in.
          if (att.sandbox_id >= 0) {
            auto& pending = sandboxes[static_cast<size_t>(att.sandbox_id)].pending_local;
            pending.erase(std::remove(pending.begin(), pending.end(), attempt_idx),
                          pending.end());
          } else {
            global_queue.erase(
                std::remove(global_queue.begin(), global_queue.end(), attempt_idx),
                global_queue.end());
          }
          att.outcome = Outcome::kTimeout;
          att.end = now;
          attempt_open[static_cast<size_t>(attempt_idx)] = 0;
          --open_attempts;
          CountFailure(Outcome::kTimeout);
          if (trace != nullptr) {
            EmitClientSpan(SpanKind::kQueueWait, att.dispatched, now - att.dispatched,
                           attempt_idx, OutcomeName(Outcome::kTimeout), /*term=*/true);
          }
          if (metrics != nullptr) {
            metrics->Add(mid.failures);
          }
        }
        // Started attempts keep running (and billing) server-side; the
        // client moves on either way.
        ResolveClient(attempt_idx, Outcome::kTimeout);
        break;
      }
      case EventType::kQueueTimeout: {
        const int attempt_idx = ev.req_idx;
        if (!attempt_open[static_cast<size_t>(attempt_idx)] ||
            attempt_started[static_cast<size_t>(attempt_idx)]) {
          break;  // Admitted or already concluded while the clock ran.
        }
        if (result.attempts[static_cast<size_t>(attempt_idx)].sandbox_id >= 0) {
          break;  // Admitted to a cold-starting sandbox: init wait, not queue wait.
        }
        const auto it = std::find(global_queue.begin(), global_queue.end(), attempt_idx);
        if (it == global_queue.end()) {
          break;
        }
        global_queue.erase(it);
        ++result.queue_timeout_attempts;
        FailAttempt(attempt_idx, Outcome::kTimeout);
        break;
      }
      case EventType::kDrainDeadline: {
        SandboxState& s = sandboxes[static_cast<size_t>(ev.sandbox_id)];
        if (s.dead || !s.draining) {
          break;
        }
        Advance(s);
        // The drain budget is spent: whatever is still running dies with
        // the instance (the cost of degrading gracefully but not infinitely).
        for (const auto& r : s.inflight) {
          AttemptOutcome& att = result.attempts[static_cast<size_t>(r.attempt_idx)];
          att.exec_duration = now - att.start_exec;
          ++result.drain_killed_attempts;
          FailAttempt(r.attempt_idx, Outcome::kCrash);
        }
        s.inflight.clear();
        RetireSandbox(s);
        if (multi && !global_queue.empty() && AliveCount() == 0) {
          CreateSandbox();
        }
        break;
      }
      case EventType::kKaExpire: {
        SandboxState& s = sandboxes[static_cast<size_t>(ev.sandbox_id)];
        if (s.dead || ev.gen != s.gen || !s.inflight.empty() || s.initializing) {
          break;
        }
        Advance(s);
        RetireSandbox(s);
        break;
      }
      case EventType::kScalerEval: {
        const int ready = ReadyCount();
        const int desired = scaler.DesiredInstances(now);
        const int alive = AliveCount();
        const bool cooled_down =
            now - last_scale_action >= scaler_config.action_cooldown;
        if (desired > alive && cooled_down) {
          const int target = std::min(desired, config.max_instances);
          for (int i = alive; i < target; ++i) {
            CreateSandbox();
          }
          last_scale_action = now;
        } else if (desired < ready && global_queue.empty() && cooled_down) {
          // Scale down surplus idle instances.
          int to_remove = ready - desired;
          for (auto& s : sandboxes) {
            if (to_remove <= 0) {
              break;
            }
            if (!s.dead && !s.initializing && !s.draining && s.inflight.empty()) {
              Advance(s);
              RetireSandbox(s);
              --to_remove;
            }
          }
          if (config.scaledown_drains_busy) {
            // Graceful degradation: surplus busy instances stop taking new
            // work and get drain_deadline to finish what they hold.
            for (auto& s : sandboxes) {
              if (to_remove <= 0) {
                break;
              }
              if (!s.dead && !s.initializing && !s.draining && !s.inflight.empty()) {
                Advance(s);
                s.draining = true;
                s.drain_started = now;
                ++result.drained_sandboxes;
                queue.push({now + config.drain_deadline, EventType::kDrainDeadline, s.id});
                --to_remove;
              }
            }
          }
          last_scale_action = now;
        }
        if (!Done()) {
          queue.push({now + config.autoscaler.eval_interval, EventType::kScalerEval});
        }
        break;
      }
      case EventType::kSample: {
        TimelineSample sample;
        sample.time = now;
        double util_sum = 0.0;
        int ready = 0;
        for (auto& s : sandboxes) {
          if (s.dead) {
            continue;
          }
          ++sample.instances;
          if (!s.initializing) {
            ++ready;
            // Utilization = busy-time fraction over the last sample interval
            // (what a CPU-usage metric reports), not the instantaneous
            // in-flight indicator.
            Advance(s);
            const double busy_frac =
                static_cast<double>(s.busy_time - s.busy_snapshot) /
                static_cast<double>(config.autoscaler.sample_interval);
            s.busy_snapshot = s.busy_time;
            util_sum += std::clamp(busy_frac, 0.0, 1.0);
          }
          sample.busy_requests += static_cast<int>(s.inflight.size());
        }
        const int inflight_only = sample.busy_requests;
        sample.busy_requests += static_cast<int>(global_queue.size());
        sample.ready_instances = ready;
        sample.avg_utilization = ready > 0 ? util_sum / ready : 0.0;
        result.timeline.push_back(sample);
        if (metrics != nullptr) {
          metrics->Set(mid.instances, sample.instances);
          metrics->Set(mid.ready, ready);
          metrics->Set(mid.inflight, inflight_only);
          metrics->Set(mid.queue_depth, static_cast<double>(global_queue.size()));
          metrics->Set(mid.utilization, sample.avg_utilization);
          metrics->Set(mid.breaker_open, breaker.open() ? 1.0 : 0.0);
          metrics->Sample(now);
        }
        if (ts != nullptr) {
          ts->RecordQueueDepth(now, static_cast<int64_t>(global_queue.size()));
        }
        if (config.autoscaler_enabled) {
          // Consumed-CPU metric (what a CPU-utilization target observes):
          // the sum of per-instance busy fractions times the allocation,
          // physically capped at the deployed capacity.
          scaler.AddSample(now, util_sum * config.vcpus);
        }
        arrivals_since_sample = 0;
        if (!Done()) {
          queue.push({now + config.autoscaler.sample_interval, EventType::kSample});
        }
        break;
      }
    }
    // Any event can free capacity (idle sandbox, death, KA expiry); admit
    // waiting single-model attempts as soon as it does. No-op by default.
    PumpAdmission();
    if (auditor != nullptr) {
      if (auditor->basic()) {
        auditor->CheckLazy(open_attempts >= 0,
                           "platform.open_attempts_nonnegative", now, seed,
                           [] { return "attempts"; },
                           [&] { return std::to_string(open_attempts); });
        auditor->CheckLazy(terminal <= result.requests.size(),
                           "platform.terminal_bound", now, seed,
                           [] { return "requests"; },
                           [&] {
                             return std::to_string(terminal) + " of " +
                                    std::to_string(result.requests.size());
                           });
      }
      if (auditor->ScanDue(events_processed)) {
        AuditScan();
      }
    }
  }

  // The complete mutable state, walked once for save, load, and digest (see
  // src/integrity/archive.h). Every field a resumed run reads must be here.
  template <typename Ar>
  void Archive(Ar& ar) {
    ar.Field("now", now);
    uint64_t term = terminal;
    ar.Field("terminal", term);
    if constexpr (Ar::kLoading) {
      terminal = static_cast<size_t>(term);
    }
    ar.Field("open_attempts", open_attempts);
    ar.Field("last_scale_action", last_scale_action);
    ar.Field("arrivals_since_sample", arrivals_since_sample);
    ar.Field("last_completion", last_completion);
    ar.Field("events_processed", events_processed);

    ar.Begin("workload");
    ar.Field("name", workload.name);
    ar.Field("cpu_time", workload.cpu_time);
    ar.Field("io_wait", workload.io_wait);
    ar.Field("memory_footprint", workload.memory_footprint);
    ar.Field("cpu_jitter", workload.cpu_jitter);
    ar.End();

    ArchiveRng(ar, "rng", rng);
    ArchiveRng(ar, "fault_rng", faults.rng());
    ArchiveBreaker(ar, "breaker", breaker);
    ArchiveScaler(ar, "scaler_samples", scaler);
    ArchiveKeepAlive(ar, "keepalive", *config.keepalive);

    {
      std::vector<Event>& events = queue.raw();
      const size_t n = ar.BeginArray("events", events.size());
      if constexpr (Ar::kLoading) {
        events.resize(n);
      }
      for (size_t i = 0; i < n; ++i) {
        ar.BeginElem();
        Event& e = events[i];
        ar.Field("t", e.time);
        int type = static_cast<int>(e.type);
        ar.Field("k", type);
        if constexpr (Ar::kLoading) {
          e.type = static_cast<EventType>(type);
        }
        ar.Field("sb", e.sandbox_id);
        ar.Field("g", e.gen);
        ar.Field("r", e.req_idx);
        ar.EndElem();
      }
      ar.EndArray();
    }

    {
      std::vector<int64_t> gq(global_queue.begin(), global_queue.end());
      ar.I64Vec("global_queue", gq);
      if constexpr (Ar::kLoading) {
        global_queue.clear();
        for (const int64_t v : gq) {
          global_queue.push_back(static_cast<int>(v));
        }
      }
    }
    {
      std::vector<int64_t> nums(next_attempt_no.begin(), next_attempt_no.end());
      ar.I64Vec("next_attempt_no", nums);
      if constexpr (Ar::kLoading) {
        next_attempt_no.clear();
        for (const int64_t v : nums) {
          next_attempt_no.push_back(static_cast<int>(v));
        }
      }
    }
    {
      std::vector<int64_t> flags(attempt_open.begin(), attempt_open.end());
      ar.I64Vec("attempt_open", flags);
      if constexpr (Ar::kLoading) {
        attempt_open.clear();
        for (const int64_t v : flags) {
          attempt_open.push_back(static_cast<uint8_t>(v));
        }
      }
    }
    {
      std::vector<int64_t> flags(attempt_started.begin(), attempt_started.end());
      ar.I64Vec("attempt_started", flags);
      if constexpr (Ar::kLoading) {
        attempt_started.clear();
        for (const int64_t v : flags) {
          attempt_started.push_back(static_cast<uint8_t>(v));
        }
      }
    }

    {
      const size_t n = ar.BeginArray("sandboxes", sandboxes.size());
      if constexpr (Ar::kLoading) {
        sandboxes.resize(n);
      }
      for (size_t i = 0; i < n; ++i) {
        SandboxState& s = sandboxes[i];
        ar.BeginElem();
        ar.Field("id", s.id);
        ar.Field("dead", s.dead);
        ar.Field("initializing", s.initializing);
        ar.Field("draining", s.draining);
        ar.Field("init_failed", s.init_failed);
        ar.Field("created_at", s.created_at);
        ar.Field("ready_at", s.ready_at);
        ar.Field("drain_started", s.drain_started);
        ar.Field("last_advance", s.last_advance);
        ar.Field("rate", s.rate);
        ar.Field("gen", s.gen);
        ar.Field("ka_deadline", s.ka_deadline);
        ar.Field("served", s.served);
        ar.Field("busy_time", s.busy_time);
        ar.Field("idle_time", s.idle_time);
        ar.Field("busy_snapshot", s.busy_snapshot);
        {
          const size_t m = ar.BeginArray("inflight", s.inflight.size());
          if constexpr (Ar::kLoading) {
            s.inflight.resize(m);
          }
          for (size_t j = 0; j < m; ++j) {
            InFlightReq& r = s.inflight[j];
            ar.BeginElem();
            ar.Field("req_idx", r.req_idx);
            ar.Field("attempt_idx", r.attempt_idx);
            ar.Field("remaining_cpu", r.remaining_cpu);
            ar.Field("in_cpu_phase", r.in_cpu_phase);
            ar.Field("will_crash", r.will_crash);
            ar.Field("fixed_end", r.fixed_end);
            ar.EndElem();
          }
          ar.EndArray();
        }
        {
          std::vector<int64_t> pend(s.pending_local.begin(), s.pending_local.end());
          ar.I64Vec("pending_local", pend);
          if constexpr (Ar::kLoading) {
            s.pending_local.clear();
            for (const int64_t v : pend) {
              s.pending_local.push_back(static_cast<int>(v));
            }
          }
        }
        ar.EndElem();
      }
      ar.EndArray();
    }

    {
      const size_t n = ar.BeginArray("requests", result.requests.size());
      if constexpr (Ar::kLoading) {
        result.requests.resize(n);
      }
      for (size_t i = 0; i < n; ++i) {
        RequestOutcome& r = result.requests[i];
        ar.BeginElem();
        ar.Field("arrival", r.arrival);
        ar.Field("start_exec", r.start_exec);
        ar.Field("completion", r.completion);
        ar.Field("reported_duration", r.reported_duration);
        ar.Field("e2e_latency", r.e2e_latency);
        ar.Field("cold_start", r.cold_start);
        ar.Field("init_duration", r.init_duration);
        ar.Field("sandbox_id", r.sandbox_id);
        int outcome = static_cast<int>(r.outcome);
        int last_error = static_cast<int>(r.last_error);
        ar.Field("outcome", outcome);
        ar.Field("last_error", last_error);
        if constexpr (Ar::kLoading) {
          r.outcome = static_cast<Outcome>(outcome);
          r.last_error = static_cast<Outcome>(last_error);
        }
        ar.Field("attempts", r.attempts);
        ar.EndElem();
      }
      ar.EndArray();
    }

    {
      const size_t n = ar.BeginArray("attempts", result.attempts.size());
      if constexpr (Ar::kLoading) {
        result.attempts.resize(n);
      }
      for (size_t i = 0; i < n; ++i) {
        AttemptOutcome& a = result.attempts[i];
        ar.BeginElem();
        ar.Field("req_idx", a.req_idx);
        ar.Field("attempt", a.attempt);
        int outcome = static_cast<int>(a.outcome);
        ar.Field("outcome", outcome);
        if constexpr (Ar::kLoading) {
          a.outcome = static_cast<Outcome>(outcome);
        }
        ar.Field("dispatched", a.dispatched);
        ar.Field("start_exec", a.start_exec);
        ar.Field("end", a.end);
        ar.Field("exec_duration", a.exec_duration);
        ar.Field("cold_start", a.cold_start);
        ar.Field("init_duration", a.init_duration);
        ar.Field("sandbox_id", a.sandbox_id);
        ar.Field("client_abandoned", a.client_abandoned);
        ar.EndElem();
      }
      ar.EndArray();
    }

    {
      const size_t n = ar.BeginArray("timeline", result.timeline.size());
      if constexpr (Ar::kLoading) {
        result.timeline.resize(n);
      }
      for (size_t i = 0; i < n; ++i) {
        TimelineSample& s = result.timeline[i];
        ar.BeginElem();
        ar.Field("time", s.time);
        ar.Field("instances", s.instances);
        ar.Field("ready_instances", s.ready_instances);
        ar.Field("busy_requests", s.busy_requests);
        ar.Field("avg_utilization", s.avg_utilization);
        ar.EndElem();
      }
      ar.EndArray();
    }

    ar.Begin("counters");
    ar.Field("failed_attempts", result.failed_attempts);
    ar.Field("init_failure_attempts", result.init_failure_attempts);
    ar.Field("crash_attempts", result.crash_attempts);
    ar.Field("timeout_attempts", result.timeout_attempts);
    ar.Field("rejected_attempts", result.rejected_attempts);
    ar.Field("circuit_open_attempts", result.circuit_open_attempts);
    ar.Field("queue_timeout_attempts", result.queue_timeout_attempts);
    ar.Field("shed_attempts", result.shed_attempts);
    ar.Field("drained_sandboxes", result.drained_sandboxes);
    ar.Field("drain_killed_attempts", result.drain_killed_attempts);
    ar.End();
  }
};

PlatformEngine::PlatformEngine(PlatformSimConfig config, uint64_t seed) {
  const std::vector<std::string> errors = config.Validate();
  if (!errors.empty()) {
    std::string msg = "invalid PlatformSimConfig";
    for (const auto& e : errors) {
      msg += "; " + e;
    }
    throw std::invalid_argument(msg);
  }
  impl_ = std::make_unique<Impl>(std::move(config), seed);
}

PlatformEngine::~PlatformEngine() = default;
PlatformEngine::PlatformEngine(PlatformEngine&&) noexcept = default;
PlatformEngine& PlatformEngine::operator=(PlatformEngine&&) noexcept = default;

void PlatformEngine::Start(const std::vector<MicroSecs>& arrivals,
                           const WorkloadSpec& workload) {
  Impl& im = *impl_;
  if (im.started) {
    throw std::logic_error("PlatformEngine::Start called twice");
  }
  im.started = true;
  im.workload = workload;
  im.result.requests.resize(arrivals.size());
  im.result.attempts.reserve(arrivals.size());
  im.next_attempt_no.assign(arrivals.size(), 1);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    assert(i == 0 || arrivals[i] >= arrivals[i - 1]);
    im.queue.push({arrivals[i], EventType::kArrival, -1, 0, static_cast<int>(i)});
    im.result.requests[i].arrival = arrivals[i];
  }
  if (!arrivals.empty()) {
    im.queue.push(
        {arrivals.front() + im.config.autoscaler.sample_interval, EventType::kSample});
    if (im.config.autoscaler_enabled) {
      im.queue.push({arrivals.front() + im.config.autoscaler.eval_interval,
                     EventType::kScalerEval});
    }
  }
}

void PlatformEngine::AdvanceUntil(MicroSecs t) {
  Impl& im = *impl_;
  while (!im.queue.empty() && !im.Done() && im.queue.top().time <= t) {
    im.StepOne();
  }
}

void PlatformEngine::RunToEnd() {
  Impl& im = *impl_;
  while (!im.queue.empty() && !im.Done()) {
    im.StepOne();
  }
}

bool PlatformEngine::done() const { return impl_->Done(); }

MicroSecs PlatformEngine::now() const { return impl_->now; }

PlatformSimResult PlatformEngine::Finish() {
  Impl& im = *impl_;
  if (im.finished) {
    throw std::logic_error("PlatformEngine::Finish called twice");
  }
  im.finished = true;
  PlatformSimResult& result = im.result;
  // Finalize accounting; surviving sandboxes are closed at the last event.
  for (auto& s : im.sandboxes) {
    im.Advance(s);
    if (!s.dead) {
      im.RetireSandbox(s);  // Emits the lifetime span for survivors.
    }
    SandboxAccounting acc;
    acc.sandbox_id = s.id;
    acc.created_at = s.created_at;
    acc.destroyed_at = im.now;
    acc.init_time = std::min(s.ready_at, im.now) - s.created_at;
    acc.busy_time = s.busy_time;
    acc.idle_time = s.idle_time;
    result.total_instance_seconds += MicrosToSecs(acc.destroyed_at - acc.created_at);
    result.sandboxes.push_back(acc);
  }
  for (const auto& a : result.attempts) {
    if (a.cold_start) {
      ++result.cold_starts;
    }
  }
  for (const auto& r : result.requests) {
    if (r.outcome == Outcome::kOk) {
      ++result.successes;
    }
  }
  result.retries =
      static_cast<int64_t>(result.attempts.size()) - static_cast<int64_t>(result.requests.size());
  result.breaker_trips = im.breaker.trips();
  if (im.prof != nullptr) {
    im.prof->AddRngDraws(im.rng.draw_count());
    im.prof->AddRngDraws(im.faults.rng().draw_count());
  }
  return std::move(result);
}

void PlatformEngine::SaveState(JsonWriter& w) {
  Saver ar(&w);
  w.BeginObject();
  impl_->Archive(ar);
  w.EndObject();
}

void PlatformEngine::LoadState(const JsonValue& state) {
  Impl& im = *impl_;
  if (im.started) {
    throw std::logic_error("PlatformEngine::LoadState on a started engine");
  }
  im.started = true;
  Loader ar(&state);
  im.Archive(ar);
}

uint64_t PlatformEngine::Digest() {
  StateDigest d;
  d.MixLabel("platform-state-v1");
  Digester ar(&d);
  impl_->Archive(ar);
  return d.value();
}

uint64_t PlatformEngine::ConfigHash() const {
  return HashPlatformConfig(impl_->config, impl_->seed);
}

const PlatformSimConfig& PlatformEngine::config() const { return impl_->config; }

uint64_t PlatformEngine::seed() const { return impl_->seed; }

PlatformSimResult PlatformSim::Run(const std::vector<MicroSecs>& arrivals,
                                   const WorkloadSpec& workload) {
  PlatformEngine engine(config_, seed_);
  engine.Start(arrivals, workload);
  engine.RunToEnd();
  return engine.Finish();
}

std::vector<MicroSecs> UniformArrivals(double rps, MicroSecs duration) {
  std::vector<MicroSecs> out;
  if (rps <= 0.0 || duration <= 0) {
    return out;
  }
  const double gap = static_cast<double>(kMicrosPerSec) / rps;
  for (double t = 0.0; t < static_cast<double>(duration); t += gap) {
    out.push_back(static_cast<MicroSecs>(t));
  }
  return out;
}

std::vector<MicroSecs> PoissonArrivals(double rps, MicroSecs duration, Rng& rng) {
  std::vector<MicroSecs> out;
  if (rps <= 0.0 || duration <= 0) {
    return out;
  }
  const double rate_per_us = rps / static_cast<double>(kMicrosPerSec);
  double t = rng.Exponential(rate_per_us);
  while (t < static_cast<double>(duration)) {
    out.push_back(static_cast<MicroSecs>(t));
    t += rng.Exponential(rate_per_us);
  }
  return out;
}

RequestRecord BillableRecord(const AttemptOutcome& attempt, double alloc_vcpus,
                             MegaBytes alloc_mem_mb) {
  RequestRecord r;
  r.arrival = attempt.dispatched;
  r.exec_duration = attempt.exec_duration;
  r.cpu_time = attempt.exec_duration;  // ~1 busy vCPU for the whole duration.
  r.alloc_vcpus = alloc_vcpus;
  r.alloc_mem_mb = alloc_mem_mb;
  r.used_mem_mb = alloc_mem_mb;
  r.cold_start = attempt.cold_start;
  r.init_duration = attempt.init_duration;
  r.outcome = attempt.outcome;
  r.attempt = attempt.attempt;
  return r;
}

double ColdStartProbability(const PlatformSimConfig& config, const WorkloadSpec& workload,
                            MicroSecs idle, int samples, uint64_t seed) {
  assert(samples > 0);
  int cold = 0;
  for (int i = 0; i < samples; ++i) {
    const uint64_t run_seed = seed + static_cast<uint64_t>(i) * 7919;
    // First pass: find the warm-up request's completion time.
    PlatformSim warmup(config, run_seed);
    const PlatformSimResult first = warmup.Run({0}, workload);
    const MicroSecs probe_at = first.requests.front().completion + idle;
    // Replay with the same seed so the warm-up behaves identically, then
    // probe after the idle interval.
    PlatformSim probe(config, run_seed);
    const PlatformSimResult both = probe.Run({0, probe_at}, workload);
    if (both.requests.back().cold_start) {
      ++cold;
    }
  }
  return static_cast<double>(cold) / static_cast<double>(samples);
}

}  // namespace faascost
