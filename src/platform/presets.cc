#include "src/platform/presets.h"

namespace faascost {

PlatformSimConfig AwsLambdaPlatform(double vcpus, MegaBytes mem_mb) {
  PlatformSimConfig c;
  c.name = "AWS Lambda";
  c.concurrency = ConcurrencyModel::kSingleConcurrency;
  c.concurrency_limit = 1;
  c.vcpus = vcpus;
  c.mem_mb = mem_mb;
  c.serving = ApiLongPollingOverhead();
  c.keepalive = MakeAwsKeepAlive();
  c.init_mean = 400 * kMicrosPerMilli;
  c.init_jitter = 0.30;
  // Lambda gives extensions ~2 s to wrap up on environment shutdown.
  c.drain_deadline = 2LL * kMicrosPerSec;
  return c;
}

PlatformSimConfig GcpPlatform(double vcpus, MegaBytes mem_mb) {
  PlatformSimConfig c;
  c.name = "GCP Cloud Run functions";
  c.concurrency = ConcurrencyModel::kMultiConcurrency;
  c.concurrency_limit = 80;  // Default concurrency limit (paper §3.1).
  c.vcpus = vcpus;
  c.mem_mb = mem_mb;
  c.serving = HttpServerOverhead();
  c.keepalive = MakeGcpKeepAlive();
  c.init_mean = 1'500 * kMicrosPerMilli;
  c.init_jitter = 0.30;
  c.autoscaler_enabled = true;
  c.autoscaler.target_utilization = 0.6;  // 60% CPU utilization target.
  c.autoscaler.metric_window = 60LL * kMicrosPerSec;
  // Cloud Run sends SIGTERM and allows ~10 s before SIGKILL.
  c.drain_deadline = 10LL * kMicrosPerSec;
  return c;
}

PlatformSimConfig AzurePlatform() {
  PlatformSimConfig c;
  c.name = "Azure Functions (Consumption)";
  c.concurrency = ConcurrencyModel::kMultiConcurrency;
  c.concurrency_limit = 100;
  c.vcpus = 1.0;
  c.mem_mb = 1536.0;
  c.serving = HttpServerOverhead();
  c.keepalive = MakeAzureKeepAlive();
  c.init_mean = 2'500 * kMicrosPerMilli;
  c.init_jitter = 0.35;
  c.autoscaler_enabled = true;
  c.autoscaler.target_utilization = 0.7;
  c.autoscaler.metric_window = 30LL * kMicrosPerSec;
  // Functions host drain on scale-in is generous (tens of seconds).
  c.drain_deadline = 30LL * kMicrosPerSec;
  return c;
}

PlatformSimConfig CloudflarePlatform() {
  PlatformSimConfig c;
  c.name = "Cloudflare Workers";
  c.concurrency = ConcurrencyModel::kSingleConcurrency;
  c.concurrency_limit = 1;
  c.vcpus = 1.0;
  c.mem_mb = 128.0;
  c.serving = CodeExecutionOverhead();
  c.keepalive = MakeCloudflareKeepAlive();
  c.init_mean = 5 * kMicrosPerMilli;  // Load + JIT, masked by TLS pre-warm.
  c.init_jitter = 0.40;
  // Isolates are evicted near-instantly; in-flight work gets ~1 s.
  c.drain_deadline = 1LL * kMicrosPerSec;
  return c;
}

PlatformSimConfig IbmPlatform(double vcpus, MegaBytes mem_mb) {
  PlatformSimConfig c;
  c.name = "IBM Code Engine";
  c.concurrency = ConcurrencyModel::kMultiConcurrency;
  c.concurrency_limit = 100;
  c.vcpus = vcpus;
  c.mem_mb = mem_mb;
  c.serving = HttpServerOverhead();
  c.keepalive = MakeFixedKeepAlive(600LL * kMicrosPerSec, KaResourceBehavior::kScaleDownCpu);
  c.init_mean = 1'000 * kMicrosPerMilli;
  c.init_jitter = 0.30;
  c.autoscaler_enabled = true;
  // Knative-style termination grace period.
  c.drain_deadline = 10LL * kMicrosPerSec;
  return c;
}

}  // namespace faascost
