#include "src/platform/keepalive.h"

#include <algorithm>
#include <stdexcept>

namespace faascost {

const char* KaResourceBehaviorName(KaResourceBehavior b) {
  switch (b) {
    case KaResourceBehavior::kFreezeDeallocate:
      return "deallocate CPU and memory (freeze/resume)";
    case KaResourceBehavior::kScaleDownCpu:
      return "scale down CPU (~0.01 vCPUs)";
    case KaResourceBehavior::kRunAsUsual:
      return "run as usual (full allocation)";
    case KaResourceBehavior::kCodeCache:
      return "code/bytecode cache";
  }
  return "unknown";
}

namespace {

class AwsKeepAlive final : public KeepAlivePolicy {
 public:
  MicroSecs SampleDuration(Rng& rng, int /*active_instances*/) const override {
    return rng.UniformInt(300LL * kMicrosPerSec, 360LL * kMicrosPerSec);
  }
  KaResourceBehavior resource_behavior() const override {
    return KaResourceBehavior::kFreezeDeallocate;
  }
  double KaCpuShare(double /*alloc_vcpus*/) const override { return 0.0; }
  bool graceful_shutdown() const override { return true; }
  std::string name() const override { return "AWS Lambda (freeze, 300-360s)"; }
};

class GcpKeepAlive final : public KeepAlivePolicy {
 public:
  MicroSecs SampleDuration(Rng& rng, int /*active_instances*/) const override {
    return rng.UniformInt(850LL * kMicrosPerSec, 900LL * kMicrosPerSec);
  }
  KaResourceBehavior resource_behavior() const override {
    return KaResourceBehavior::kScaleDownCpu;
  }
  double KaCpuShare(double alloc_vcpus) const override {
    return alloc_vcpus > 0.0 ? 0.01 / alloc_vcpus : 0.0;
  }
  bool graceful_shutdown() const override { return false; }
  std::string name() const override { return "GCP (scale-down CPU, ~900s)"; }
};

class AzureKeepAlive final : public KeepAlivePolicy {
 public:
  MicroSecs SampleDuration(Rng& rng, int active_instances) const override {
    // Opportunistic: 120-360 s at one instance; functions scaled to 3+
    // instances observe up to ~740 s.
    if (active_instances >= 3) {
      return rng.UniformInt(360LL * kMicrosPerSec, 740LL * kMicrosPerSec);
    }
    return rng.UniformInt(120LL * kMicrosPerSec, 360LL * kMicrosPerSec);
  }
  KaResourceBehavior resource_behavior() const override {
    return KaResourceBehavior::kRunAsUsual;
  }
  double KaCpuShare(double /*alloc_vcpus*/) const override { return 1.0; }
  bool graceful_shutdown() const override { return false; }
  std::string name() const override { return "Azure (opportunistic, 120-360s)"; }
};

class CloudflareKeepAlive final : public KeepAlivePolicy {
 public:
  MicroSecs SampleDuration(Rng& /*rng*/, int /*active_instances*/) const override {
    // The code cache persists far beyond the measurement horizon; the ~5 ms
    // re-JIT on a miss is masked by the TLS-handshake pre-warm.
    return 86'400LL * kMicrosPerSec;
  }
  KaResourceBehavior resource_behavior() const override {
    return KaResourceBehavior::kCodeCache;
  }
  double KaCpuShare(double /*alloc_vcpus*/) const override { return 0.0; }
  bool graceful_shutdown() const override { return false; }
  std::string name() const override { return "Cloudflare (code cache)"; }
};

class FixedKeepAlive final : public KeepAlivePolicy {
 public:
  FixedKeepAlive(MicroSecs duration, KaResourceBehavior behavior)
      : duration_(duration), behavior_(behavior) {}
  MicroSecs SampleDuration(Rng& /*rng*/, int /*active_instances*/) const override {
    return duration_;
  }
  KaResourceBehavior resource_behavior() const override { return behavior_; }
  double KaCpuShare(double /*alloc_vcpus*/) const override {
    return behavior_ == KaResourceBehavior::kRunAsUsual ? 1.0 : 0.0;
  }
  bool graceful_shutdown() const override { return false; }
  std::string name() const override { return "fixed"; }

 private:
  MicroSecs duration_;
  KaResourceBehavior behavior_;
};

}  // namespace

std::unique_ptr<KeepAlivePolicy> MakeAwsKeepAlive() {
  return std::make_unique<AwsKeepAlive>();
}
std::unique_ptr<KeepAlivePolicy> MakeGcpKeepAlive() {
  return std::make_unique<GcpKeepAlive>();
}
std::unique_ptr<KeepAlivePolicy> MakeAzureKeepAlive() {
  return std::make_unique<AzureKeepAlive>();
}
std::unique_ptr<KeepAlivePolicy> MakeCloudflareKeepAlive() {
  return std::make_unique<CloudflareKeepAlive>();
}
std::unique_ptr<KeepAlivePolicy> MakeFixedKeepAlive(MicroSecs duration,
                                                    KaResourceBehavior behavior) {
  return std::make_unique<FixedKeepAlive>(duration, behavior);
}

HistogramPrewarmPolicy::HistogramPrewarmPolicy(HistogramPrewarmConfig config)
    : config_(config) {
  const size_t bins = static_cast<size_t>(config_.max_tracked / config_.bin_width) + 1;
  bins_.assign(bins, 0);
}

void HistogramPrewarmPolicy::ObserveIdleInterval(MicroSecs idle) {
  if (idle < 0) {
    return;
  }
  size_t bin = static_cast<size_t>(idle / config_.bin_width);
  bin = std::min(bin, bins_.size() - 1);
  ++bins_[bin];
  ++observations_;
}

MicroSecs HistogramPrewarmPolicy::LearnedWindow() const {
  if (observations_ < config_.min_observations) {
    return 0;
  }
  const int64_t target = static_cast<int64_t>(
      config_.coverage_quantile * static_cast<double>(observations_));
  int64_t seen = 0;
  for (size_t i = 0; i < bins_.size(); ++i) {
    seen += bins_[i];
    if (seen > target) {
      // Upper edge of the covering bin, scaled by the safety margin.
      const double edge = static_cast<double>((i + 1)) *
                          static_cast<double>(config_.bin_width) * config_.margin;
      return std::min(static_cast<MicroSecs>(edge), config_.max_keepalive);
    }
  }
  return config_.max_keepalive;
}

MicroSecs HistogramPrewarmPolicy::SampleDuration(Rng& rng,
                                                 int /*active_instances*/) const {
  const MicroSecs learned = LearnedWindow();
  if (learned > 0) {
    return learned;
  }
  return rng.UniformInt(config_.fallback_min, config_.fallback_max);
}

void HistogramPrewarmPolicy::SaveState(std::vector<int64_t>* out) const {
  out->clear();
  out->reserve(bins_.size() + 1);
  out->push_back(observations_);
  out->insert(out->end(), bins_.begin(), bins_.end());
}

void HistogramPrewarmPolicy::LoadState(const std::vector<int64_t>& state) {
  if (state.empty() || state.size() != bins_.size() + 1) {
    throw std::invalid_argument(
        "HistogramPrewarmPolicy::LoadState: expected " +
        std::to_string(bins_.size() + 1) + " values, got " +
        std::to_string(state.size()));
  }
  observations_ = state[0];
  std::copy(state.begin() + 1, state.end(), bins_.begin());
}

std::unique_ptr<KeepAlivePolicy> MakeHistogramPrewarm(HistogramPrewarmConfig config) {
  return std::make_unique<HistogramPrewarmPolicy>(config);
}

}  // namespace faascost
