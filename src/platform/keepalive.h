// Keep-alive policies and KA-phase resource behaviour (paper §3.3, Fig. 9 and
// Table 2). Policies decide how long an idle sandbox survives before
// reclamation; the resource behaviour describes what the sandbox can do (and
// what the provider pays) while kept alive.

#ifndef FAASCOST_PLATFORM_KEEPALIVE_H_
#define FAASCOST_PLATFORM_KEEPALIVE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace faascost {

// Resource allocation during the KA phase (Table 2).
enum class KaResourceBehavior {
  kFreezeDeallocate,  // AWS: microVM frozen; CPU and memory deallocated.
  kScaleDownCpu,      // GCP: CPU throttled to ~0.01 vCPUs; memory retained.
  kRunAsUsual,        // Azure Consumption: full allocation retained.
  kCodeCache,         // Cloudflare: only code/bytecode cache retained.
};

const char* KaResourceBehaviorName(KaResourceBehavior b);

class KeepAlivePolicy {
 public:
  virtual ~KeepAlivePolicy() = default;

  // Samples the keep-alive duration granted to a sandbox that just became
  // idle. `active_instances` lets opportunistic policies extend KA for
  // functions scaled to multiple instances (the paper observes ~740 s for an
  // Azure function scaled to 3 instances).
  virtual MicroSecs SampleDuration(Rng& rng, int active_instances) const = 0;

  // Feedback hook: the platform reports the observed idle interval between
  // the end of one invocation and the arrival of the next (whether or not
  // the sandbox survived it). Predictive policies (idle-time histograms,
  // paper §3.3 / Serverless-in-the-Wild) learn from this; the default
  // ignores it.
  virtual void ObserveIdleInterval(MicroSecs /*idle*/) {}

  virtual KaResourceBehavior resource_behavior() const = 0;

  // CPU share available to the (frozen/throttled) sandbox during KA, as a
  // fraction of `alloc_vcpus`.
  virtual double KaCpuShare(double alloc_vcpus) const = 0;

  // Whether the platform delivers SIGTERM and waits for handling when the
  // sandbox leaves KA (Table 2: only AWS via Lambda Extensions).
  virtual bool graceful_shutdown() const = 0;

  virtual std::string name() const = 0;

  // Checkpoint support: policies with learned state (idle-time histograms)
  // serialize it into a flat int64 vector; stateless policies keep the
  // defaults (empty save, no-op load).
  virtual void SaveState(std::vector<int64_t>* out) const { out->clear(); }
  virtual void LoadState(const std::vector<int64_t>& /*state*/) {}
};

// AWS Lambda: freeze/resume with a fixed KA window of 300-360 s; graceful
// shutdown supported with Lambda Extensions.
std::unique_ptr<KeepAlivePolicy> MakeAwsKeepAlive();

// GCP: scale-down-delay style KA of ~900 s with CPU scaled to ~0.01 vCPUs;
// instances are killed without SIGTERM.
std::unique_ptr<KeepAlivePolicy> MakeGcpKeepAlive();

// Azure Consumption: opportunistic KA between 120 s and 360 s at one
// instance, extended (up to ~740 s) when scaled to 3+ instances; full
// resource allocation retained; killed right after SIGTERM.
std::unique_ptr<KeepAlivePolicy> MakeAzureKeepAlive();

// Cloudflare Workers: code/bytecode cache with TLS-handshake pre-warm; the
// ~5 ms load+JIT on a miss is masked, so cold starts are effectively
// invisible. Modeled as a very long KA with near-zero re-init cost.
std::unique_ptr<KeepAlivePolicy> MakeCloudflareKeepAlive();

// A fixed-duration policy for experiments and tests.
std::unique_ptr<KeepAlivePolicy> MakeFixedKeepAlive(MicroSecs duration,
                                                    KaResourceBehavior behavior);

// Histogram-based predictive keep-alive (the mechanism the paper's §3.3
// attributes to Azure, after Shahrad et al.'s "Serverless in the Wild"):
// the platform builds an idle-time histogram per function and keeps the
// sandbox warm long enough to cover the observed inter-invocation gaps.
// Until `min_observations` intervals have been seen, it behaves like the
// opportunistic fallback window -- which is why the paper's short test
// period saw consistent cold starts despite regular traffic.
struct HistogramPrewarmConfig {
  MicroSecs bin_width = 30LL * kMicrosPerSec;
  MicroSecs max_tracked = 7'200LL * kMicrosPerSec;  // 2 h histogram span.
  int min_observations = 10;
  double coverage_quantile = 0.99;  // Keep warm to this idle percentile.
  double margin = 1.10;             // Safety factor on the learned window.
  MicroSecs max_keepalive = 3'600LL * kMicrosPerSec;
  // Fallback window before the histogram is trusted (Azure's opportunistic
  // 120-360 s).
  MicroSecs fallback_min = 120LL * kMicrosPerSec;
  MicroSecs fallback_max = 360LL * kMicrosPerSec;
};

class HistogramPrewarmPolicy final : public KeepAlivePolicy {
 public:
  explicit HistogramPrewarmPolicy(HistogramPrewarmConfig config);

  MicroSecs SampleDuration(Rng& rng, int active_instances) const override;
  void ObserveIdleInterval(MicroSecs idle) override;
  KaResourceBehavior resource_behavior() const override {
    return KaResourceBehavior::kRunAsUsual;
  }
  double KaCpuShare(double /*alloc_vcpus*/) const override { return 1.0; }
  bool graceful_shutdown() const override { return false; }
  std::string name() const override { return "histogram pre-warm"; }

  int64_t observations() const { return observations_; }
  // The idle duration covered at the configured quantile; 0 until trained.
  MicroSecs LearnedWindow() const;

  // Flat layout: [observations, bin0, bin1, ...].
  void SaveState(std::vector<int64_t>* out) const override;
  void LoadState(const std::vector<int64_t>& state) override;

 private:
  HistogramPrewarmConfig config_;
  std::vector<int64_t> bins_;
  int64_t observations_ = 0;
};

std::unique_ptr<KeepAlivePolicy> MakeHistogramPrewarm(HistogramPrewarmConfig config = {});

}  // namespace faascost

#endif  // FAASCOST_PLATFORM_KEEPALIVE_H_
