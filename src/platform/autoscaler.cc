#include "src/platform/autoscaler.h"

#include <algorithm>
#include <cmath>

namespace faascost {

WindowedAutoscaler::WindowedAutoscaler(AutoscalerConfig config) : config_(config) {}

void WindowedAutoscaler::AddSample(MicroSecs now, double demand) {
  samples_.emplace_back(now, demand);
  const MicroSecs horizon = now - config_.metric_window;
  while (!samples_.empty() && samples_.front().first <= horizon) {
    samples_.pop_front();
  }
}

double WindowedAutoscaler::WindowAverage(MicroSecs now) const {
  // Exclusive horizon: a 60 s window holds exactly 60 one-second samples.
  const MicroSecs horizon = now - config_.metric_window;
  double sum = 0.0;
  for (const auto& [t, u] : samples_) {
    if (t > horizon) {
      sum += u;
    }
  }
  // Fixed denominator: one slot per sample interval across the whole window,
  // so an unfilled window averages in implicit zeros.
  const double slots = static_cast<double>(config_.metric_window) /
                       static_cast<double>(config_.sample_interval);
  return slots > 0.0 ? sum / slots : 0.0;
}

int WindowedAutoscaler::DesiredInstances(MicroSecs now) const {
  if (config_.per_instance_capacity <= 0.0) {
    return 1;
  }
  const double avg = WindowAverage(now);
  // Epsilon guards against ceil(4.0000000001) at exactly the capacity.
  const int desired =
      static_cast<int>(std::ceil(avg / config_.per_instance_capacity - 1e-9));
  return std::clamp(desired, 1, config_.max_instances);
}

}  // namespace faascost
