// Platform presets wiring concurrency model, serving architecture, keep-alive
// policy and cold-start characteristics to match the paper's observations of
// each provider (§3).
//
// Every preset also carries a per-provider `drain_deadline` (the grace period
// in-flight work gets when an instance is retired). It is only consulted once
// draining is switched on (`scaledown_drains_busy`, or fleet host faults), so
// preset-based default runs are unaffected.

#ifndef FAASCOST_PLATFORM_PRESETS_H_
#define FAASCOST_PLATFORM_PRESETS_H_

#include "src/platform/platform_sim.h"

namespace faascost {

// AWS Lambda: single-concurrency, runtime-API long polling, freeze/resume KA
// of 300-360 s. `vcpus` follows the memory-proportional allocation.
PlatformSimConfig AwsLambdaPlatform(double vcpus, MegaBytes mem_mb);

// GCP Cloud Run functions (request-based billing): multi-concurrency with a
// default limit of 80, HTTP-server serving, windowed CPU-utilization
// autoscaling (60% target), ~900 s scale-down delay with CPU throttled to
// ~0.01 vCPUs during KA.
PlatformSimConfig GcpPlatform(double vcpus, MegaBytes mem_mb);

// Azure Functions Consumption: multi-concurrency HTTP serving on a fixed
// 1 vCPU / 1.5 GB sandbox, opportunistic 120-360 s KA with full resources.
PlatformSimConfig AzurePlatform();

// Cloudflare Workers: single-concurrency (isolate-per-request semantics),
// code/binary execution, code-cache KA with TLS pre-warm (~5 ms init).
PlatformSimConfig CloudflarePlatform();

// IBM Cloud Code Engine functions: multi-concurrency HTTP serving.
PlatformSimConfig IbmPlatform(double vcpus, MegaBytes mem_mb);

}  // namespace faascost

#endif  // FAASCOST_PLATFORM_PRESETS_H_
