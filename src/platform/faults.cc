#include "src/platform/faults.h"

#include <algorithm>
#include <cmath>

namespace faascost {

namespace {

void CheckProbability(double p, const char* what, std::vector<std::string>* errors) {
  if (p < 0.0 || p > 1.0 || std::isnan(p)) {
    errors->push_back(std::string(what) + " must be in [0, 1], got " + std::to_string(p));
  }
}

}  // namespace

bool FaultModelConfig::AnyEnabled() const {
  return init_failure_prob > 0.0 || crash_prob > 0.0 || max_exec_duration > 0 ||
         reject_on_overload;
}

std::vector<std::string> FaultModelConfig::Validate() const {
  std::vector<std::string> errors;
  CheckProbability(init_failure_prob, "init_failure_prob", &errors);
  CheckProbability(crash_prob, "crash_prob", &errors);
  if (max_exec_duration < 0) {
    errors.push_back("max_exec_duration must be >= 0 (0 disables), got " +
                     std::to_string(max_exec_duration));
  }
  return errors;
}

MicroSecs RetryPolicy::BackoffDelay(int failed_attempt, Rng& rng) const {
  double bound = static_cast<double>(backoff_base);
  for (int i = 1; i < failed_attempt; ++i) {
    bound *= backoff_multiplier;
    if (bound >= static_cast<double>(backoff_cap)) {
      break;
    }
  }
  bound = std::min(bound, static_cast<double>(backoff_cap));
  if (full_jitter) {
    bound *= rng.NextDouble();
  }
  return std::max<MicroSecs>(1, static_cast<MicroSecs>(bound));
}

std::vector<std::string> RetryPolicy::Validate() const {
  std::vector<std::string> errors;
  if (max_attempts < 1) {
    errors.push_back("max_attempts must be >= 1 (1 = no retries), got " +
                     std::to_string(max_attempts));
  }
  if (backoff_base <= 0) {
    errors.push_back("backoff_base must be > 0, got " + std::to_string(backoff_base));
  }
  if (backoff_multiplier < 1.0 || std::isnan(backoff_multiplier)) {
    errors.push_back("backoff_multiplier must be >= 1, got " +
                     std::to_string(backoff_multiplier));
  }
  if (backoff_cap < backoff_base) {
    errors.push_back("backoff_cap must be >= backoff_base");
  }
  if (attempt_timeout < 0) {
    errors.push_back("attempt_timeout must be >= 0 (0 disables), got " +
                     std::to_string(attempt_timeout));
  }
  return errors;
}

FaultModel::FaultModel(FaultModelConfig config, uint64_t seed)
    : config_(config), rng_(seed ^ 0x9e3779b97f4a7c15ULL) {}

bool FaultModel::SampleInitFailure() {
  if (config_.init_failure_prob <= 0.0) {
    return false;
  }
  return rng_.Bernoulli(config_.init_failure_prob);
}

bool FaultModel::SampleCrash() {
  if (config_.crash_prob <= 0.0) {
    return false;
  }
  return rng_.Bernoulli(config_.crash_prob);
}

double FaultModel::SampleCrashPoint() { return 1.0 - rng_.NextDouble(); }

}  // namespace faascost
