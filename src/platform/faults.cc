#include "src/platform/faults.h"

#include <algorithm>
#include <cmath>

namespace faascost {

namespace {

void CheckProbability(double p, const char* what, std::vector<std::string>* errors) {
  if (p < 0.0 || p > 1.0 || std::isnan(p)) {
    errors->push_back(std::string(what) + " must be in [0, 1], got " + std::to_string(p));
  }
}

}  // namespace

bool FaultModelConfig::AnyEnabled() const {
  return init_failure_prob > 0.0 || crash_prob > 0.0 || max_exec_duration > 0 ||
         reject_on_overload;
}

std::vector<std::string> FaultModelConfig::Validate() const {
  std::vector<std::string> errors;
  CheckProbability(init_failure_prob, "init_failure_prob", &errors);
  CheckProbability(crash_prob, "crash_prob", &errors);
  if (max_exec_duration < 0) {
    errors.push_back("max_exec_duration must be >= 0 (0 disables), got " +
                     std::to_string(max_exec_duration));
  }
  return errors;
}

MicroSecs RetryPolicy::BackoffDelay(int failed_attempt, Rng& rng) const {
  double bound = static_cast<double>(backoff_base);
  // The exponent is clamped so a runaway attempt counter cannot push the
  // bound to infinity, and the bound itself is clamped below the MicroSecs
  // range so the final cast is always well-defined even for absurd caps.
  const int exponent = std::min(failed_attempt - 1, kBackoffExponentCap);
  for (int i = 0; i < exponent; ++i) {
    bound *= backoff_multiplier;
    if (bound >= static_cast<double>(backoff_cap)) {
      break;
    }
  }
  constexpr double kMaxRepresentable = 9.0e18;  // < INT64_MAX, cast-safe.
  bound = std::min({bound, static_cast<double>(backoff_cap), kMaxRepresentable});
  if (full_jitter) {
    bound *= rng.NextDouble();
  }
  return std::max<MicroSecs>(1, static_cast<MicroSecs>(bound));
}

std::vector<std::string> RetryPolicy::Validate() const {
  std::vector<std::string> errors;
  if (max_attempts < 1) {
    errors.push_back("max_attempts must be >= 1 (1 = no retries), got " +
                     std::to_string(max_attempts));
  }
  if (backoff_base <= 0) {
    errors.push_back("backoff_base must be > 0, got " + std::to_string(backoff_base));
  }
  if (backoff_multiplier < 1.0 || std::isnan(backoff_multiplier)) {
    errors.push_back("backoff_multiplier must be >= 1, got " +
                     std::to_string(backoff_multiplier));
  }
  if (backoff_cap < backoff_base) {
    errors.push_back("backoff_cap must be >= backoff_base");
  }
  if (attempt_timeout < 0) {
    errors.push_back("attempt_timeout must be >= 0 (0 disables), got " +
                     std::to_string(attempt_timeout));
  }
  if (breaker_threshold < 0) {
    errors.push_back("breaker_threshold must be >= 0 (0 disables), got " +
                     std::to_string(breaker_threshold));
  }
  if (breaker_threshold > 0 && breaker_cooldown <= 0) {
    errors.push_back("breaker_cooldown must be > 0 when the breaker is enabled, got " +
                     std::to_string(breaker_cooldown));
  }
  return errors;
}

CircuitBreaker::CircuitBreaker(int threshold, MicroSecs cooldown)
    : threshold_(threshold), cooldown_(cooldown) {}

CircuitBreakerState CircuitBreaker::SaveState() const {
  CircuitBreakerState st;
  st.state = static_cast<int>(state_);
  st.consecutive_failures = consecutive_failures_;
  st.open_until = open_until_;
  st.probe_inflight = probe_inflight_;
  st.trips = trips_;
  return st;
}

void CircuitBreaker::LoadState(const CircuitBreakerState& st) {
  state_ = static_cast<State>(st.state);
  consecutive_failures_ = st.consecutive_failures;
  open_until_ = st.open_until;
  probe_inflight_ = st.probe_inflight;
  trips_ = st.trips;
}

bool CircuitBreaker::AllowDispatch(MicroSecs now) {
  if (threshold_ <= 0) {
    return true;
  }
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now < open_until_) {
        return false;
      }
      state_ = State::kHalfOpen;
      probe_inflight_ = true;
      return true;  // The half-open probe.
    case State::kHalfOpen:
      if (!probe_inflight_) {
        probe_inflight_ = true;
        return true;
      }
      return false;  // One probe at a time.
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (threshold_ <= 0) {
    return;
  }
  consecutive_failures_ = 0;
  state_ = State::kClosed;
  probe_inflight_ = false;
}

void CircuitBreaker::RecordFailure(MicroSecs now) {
  if (threshold_ <= 0) {
    return;
  }
  if (state_ == State::kHalfOpen) {
    // The probe (or a straggler) failed: straight back to open.
    state_ = State::kOpen;
    open_until_ = now + cooldown_;
    probe_inflight_ = false;
    ++trips_;
    return;
  }
  if (++consecutive_failures_ >= threshold_ && state_ == State::kClosed) {
    state_ = State::kOpen;
    open_until_ = now + cooldown_;
    consecutive_failures_ = 0;
    ++trips_;
  }
}

std::vector<std::string> AdmissionControlConfig::Validate() const {
  std::vector<std::string> errors;
  if (enabled && queue_depth <= 0) {
    errors.push_back(
        "queue_depth must be > 0 when admission control is enabled (a zero-depth "
        "queue admits nothing), got " +
        std::to_string(queue_depth));
  }
  if (queue_timeout < 0) {
    errors.push_back("queue_timeout must be >= 0 (0 = wait forever), got " +
                     std::to_string(queue_timeout));
  }
  return errors;
}

FaultModel::FaultModel(FaultModelConfig config, uint64_t seed)
    : config_(config), rng_(DeriveSeed(seed, kFaultStream)) {}

bool FaultModel::SampleInitFailure() {
  if (config_.init_failure_prob <= 0.0) {
    return false;
  }
  return rng_.Bernoulli(config_.init_failure_prob);
}

bool FaultModel::SampleCrash() {
  if (config_.crash_prob <= 0.0) {
    return false;
  }
  return rng_.Bernoulli(config_.crash_prob);
}

double FaultModel::SampleCrashPoint() { return 1.0 - rng_.NextDouble(); }

}  // namespace faascost
