// Cold-start (initialization) phase model. The paper's sandbox lifecycle
// (§2.4) is initialization -> execution -> keep-alive -> shutdown, and
// turnaround billing exists precisely because initialization cost "varies
// across functions with different language runtimes and dependency
// requirements". This model decomposes initialization into its phases and
// provides per-runtime presets, so cold-start experiments (Figs. 4, 9) can
// be run per language runtime.

#ifndef FAASCOST_PLATFORM_COLDSTART_H_
#define FAASCOST_PLATFORM_COLDSTART_H_

#include <string>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace faascost {

// One lognormal-distributed phase of sandbox initialization.
struct InitPhase {
  MicroSecs median = 0;
  double sigma = 0.3;  // Lognormal shape (relative spread).

  MicroSecs Sample(Rng& rng) const;
};

struct ColdStartModel {
  std::string runtime_name;
  InitPhase sandbox_provision;  // MicroVM/container allocation + boot.
  InitPhase runtime_boot;       // Language runtime / host process start.
  InitPhase code_fetch;         // Artifact download / layer mount.
  InitPhase dependency_import;  // Library loading, JIT warmup.
  InitPhase user_init;          // User code's global/init section.

  struct Breakdown {
    MicroSecs sandbox_provision = 0;
    MicroSecs runtime_boot = 0;
    MicroSecs code_fetch = 0;
    MicroSecs dependency_import = 0;
    MicroSecs user_init = 0;
    MicroSecs total = 0;
  };

  Breakdown Sample(Rng& rng) const;
  MicroSecs MedianTotal() const;
};

// Presets calibrated to commonly reported cold-start magnitudes.
ColdStartModel PythonColdStart();      // ~350-700 ms typical.
ColdStartModel NodeColdStart();        // ~250-500 ms.
ColdStartModel JavaColdStart();        // Seconds: JVM boot + class loading.
ColdStartModel WasmIsolateColdStart(); // ~5 ms: V8 isolate + bytecode cache.

}  // namespace faascost

#endif  // FAASCOST_PLATFORM_COLDSTART_H_
