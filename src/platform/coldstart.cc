#include "src/platform/coldstart.h"

#include <algorithm>
#include <cmath>

namespace faascost {

MicroSecs InitPhase::Sample(Rng& rng) const {
  if (median <= 0) {
    return 0;
  }
  const double v = static_cast<double>(median) * rng.LogNormal(0.0, sigma);
  return std::max<MicroSecs>(1, static_cast<MicroSecs>(v));
}

ColdStartModel::Breakdown ColdStartModel::Sample(Rng& rng) const {
  Breakdown b;
  b.sandbox_provision = sandbox_provision.Sample(rng);
  b.runtime_boot = runtime_boot.Sample(rng);
  b.code_fetch = code_fetch.Sample(rng);
  b.dependency_import = dependency_import.Sample(rng);
  b.user_init = user_init.Sample(rng);
  b.total = b.sandbox_provision + b.runtime_boot + b.code_fetch + b.dependency_import +
            b.user_init;
  return b;
}

MicroSecs ColdStartModel::MedianTotal() const {
  return sandbox_provision.median + runtime_boot.median + code_fetch.median +
         dependency_import.median + user_init.median;
}

namespace {
constexpr MicroSecs kMs = kMicrosPerMilli;
}  // namespace

ColdStartModel PythonColdStart() {
  ColdStartModel m;
  m.runtime_name = "python3.11";
  m.sandbox_provision = {120 * kMs, 0.35};
  m.runtime_boot = {95 * kMs, 0.25};
  m.code_fetch = {60 * kMs, 0.50};
  m.dependency_import = {140 * kMs, 0.60};
  m.user_init = {20 * kMs, 0.70};
  return m;
}

ColdStartModel NodeColdStart() {
  ColdStartModel m;
  m.runtime_name = "nodejs20";
  m.sandbox_provision = {120 * kMs, 0.35};
  m.runtime_boot = {55 * kMs, 0.25};
  m.code_fetch = {50 * kMs, 0.50};
  m.dependency_import = {70 * kMs, 0.55};
  m.user_init = {15 * kMs, 0.70};
  return m;
}

ColdStartModel JavaColdStart() {
  ColdStartModel m;
  m.runtime_name = "java17";
  m.sandbox_provision = {130 * kMs, 0.35};
  m.runtime_boot = {650 * kMs, 0.30};   // JVM start.
  m.code_fetch = {120 * kMs, 0.50};     // Fat jars.
  m.dependency_import = {900 * kMs, 0.45};  // Class loading + JIT warmup.
  m.user_init = {150 * kMs, 0.70};      // Framework bootstrap.
  return m;
}

ColdStartModel WasmIsolateColdStart() {
  ColdStartModel m;
  m.runtime_name = "wasm-isolate";
  m.sandbox_provision = {1 * kMs, 0.40};  // Isolate, not a microVM.
  m.runtime_boot = {0, 0.0};              // Engine is resident.
  m.code_fetch = {1 * kMs, 0.50};         // Bytecode cache hit.
  m.dependency_import = {3 * kMs, 0.50};  // Compile/instantiate.
  m.user_init = {0, 0.0};
  return m;
}

}  // namespace faascost
