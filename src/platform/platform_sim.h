// Discrete-event serverless platform simulator (paper §3).
//
// Simulates one deployed function on a platform with:
//   - a sandbox lifecycle of initialization (cold start), execution,
//     keep-alive and shutdown,
//   - either the single-concurrency serving model (one request per sandbox,
//     instant demand-driven scale-out; AWS Lambda, Cloudflare) or the
//     multi-concurrency model (requests share sandboxes up to a concurrency
//     limit, windowed-metric autoscaling; GCP, Azure, IBM, Knative),
//   - processor-sharing execution: concurrent CPU-bound requests in one
//     sandbox share its vCPUs, with a configurable contention penalty for
//     context switches and cache interference,
//   - per-architecture serving overhead added to every request,
//   - keep-alive policies that decide how long idle sandboxes survive,
//   - fault injection (init failures, mid-execution crashes, platform
//     execution timeouts, overload rejections) and client retries with
//     exponential backoff, so the billing cost of failure is measurable.

#ifndef FAASCOST_PLATFORM_PLATFORM_SIM_H_
#define FAASCOST_PLATFORM_PLATFORM_SIM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/json_reader.h"
#include "src/common/json_writer.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/integrity/integrity.h"
#include "src/obs/engine_profiler.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"
#include "src/platform/autoscaler.h"
#include "src/platform/coldstart.h"
#include "src/platform/faults.h"
#include "src/platform/keepalive.h"
#include "src/platform/serving.h"
#include "src/platform/workload.h"
#include "src/trace/record.h"

namespace faascost {

enum class ConcurrencyModel {
  kSingleConcurrency,
  kMultiConcurrency,
};

// How the ingress picks among warm sandboxes with spare concurrency.
enum class RoutingPolicy {
  kLeastLoaded,  // Idealized: always the emptiest sandbox.
  kRandom,       // Load-balancer reality: uniformly random among eligible.
};

struct PlatformSimConfig {
  std::string name = "platform";
  ConcurrencyModel concurrency = ConcurrencyModel::kSingleConcurrency;
  int concurrency_limit = 1;  // Per-sandbox in-flight cap (multi model).
  RoutingPolicy routing = RoutingPolicy::kRandom;
  double vcpus = 1.0;
  MegaBytes mem_mb = 1024.0;
  ServingOverheadModel serving;
  std::shared_ptr<KeepAlivePolicy> keepalive;
  // Sandbox initialization (cold start) duration: mean with uniform jitter,
  // or a phase-decomposed per-runtime model when `coldstart` is set.
  MicroSecs init_mean = 600 * kMicrosPerMilli;
  double init_jitter = 0.25;
  std::shared_ptr<const ColdStartModel> coldstart;
  // Relative slowdown per excess concurrent CPU-bound request (context
  // switching and cache pressure; paper §3.1 notes contention slowdowns are
  // "often worse" than pure sharing). The excess is capped: past a point the
  // working sets already thrash and extra requests add no marginal penalty.
  double contention_coeff = 0.02;
  double contention_excess_cap = 5.0;
  // Metric-driven autoscaling (multi-concurrency platforms only).
  bool autoscaler_enabled = false;
  AutoscalerConfig autoscaler;
  int max_instances = 1000;
  // Fault injection and client retries; the defaults are a fault-free world
  // with no retries, which reproduces the failure-oblivious behavior exactly.
  FaultModelConfig faults;
  RetryPolicy retry;
  // Bounded admission queue at the ingress. When enabled it replaces the
  // binary `faults.reject_on_overload` coin with backpressure: at
  // `max_instances` with no warm capacity, attempts wait (up to queue_depth
  // deep, up to queue_timeout long) and the shed policy picks the victim
  // past the depth. Off by default: the pre-chaos overload behavior.
  AdmissionControlConfig admission;
  // Graceful degradation on scale-down: when set, surplus *busy* sandboxes
  // are drained — they refuse new admissions, finish in-flight work, and
  // anything still running `drain_deadline` later is killed (kCrash).
  // Off by default: scale-down only ever reaps idle sandboxes (pre-chaos).
  bool scaledown_drains_busy = false;
  // Platform drain budget; presets carry per-provider values. Only consulted
  // when a drain actually starts, so it never perturbs default runs.
  MicroSecs drain_deadline = 0;
  // Observability hooks (non-owning; the caller keeps them alive through
  // Run). Both default to null, where instrumentation reduces to a pointer
  // test per event, draws no randomness, and leaves results bit-identical
  // to an unhooked run. Spans land on kTrackGroupClient (per request) and
  // kTrackGroupSandbox (per sandbox); metrics sample on the autoscaler's
  // sample_interval cadence.
  TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  // Sim-time windowed telemetry (same null-sink contract). PlatformSim
  // prices spans post-run (core/observe.h TagPlatformSpanBilling), so billed
  // USD enters the series via IngestBilledSpans, not inline.
  TimeSeries* timeseries = nullptr;
  // Engine flight recorder: per-type event counts, event-queue depth
  // samples, and RNG draw totals (src/obs/engine_profiler.h).
  EngineProfiler* profiler = nullptr;
  // Runtime invariant auditor (non-owning, same null-sink contract as the
  // observability hooks): null reduces every check to one pointer test and
  // leaves results bit-identical. Attached, it verifies conservation laws
  // over live simulator state and throws IntegrityViolation on the first
  // inconsistency (see src/integrity and DESIGN.md §9).
  Auditor* auditor = nullptr;

  // Human-readable config errors; empty when valid. PlatformSim's
  // constructor throws std::invalid_argument on a non-empty result.
  std::vector<std::string> Validate() const;
};

// Terminal per-request view: the fields describe the *final* attempt.
struct RequestOutcome {
  MicroSecs arrival = 0;
  MicroSecs start_exec = 0;   // When the sandbox began processing.
  MicroSecs completion = 0;   // Success delivery or final-failure time.
  MicroSecs reported_duration = 0;  // Provider-reported execution duration.
  MicroSecs e2e_latency = 0;        // arrival -> completion (includes queue).
  bool cold_start = false;
  MicroSecs init_duration = 0;
  int sandbox_id = -1;
  // Terminal outcome across the retry sequence: kOk, the single attempt's
  // failure, or kRetriesExhausted when multiple attempts all failed.
  Outcome outcome = Outcome::kOk;
  Outcome last_error = Outcome::kOk;  // Failure mode of the last failed attempt.
  int attempts = 1;                   // Client attempts dispatched.
};

// One platform-side invocation attempt — the auditable unit of billing.
// Every attempt (including failed, rejected, and client-abandoned ones)
// produces one record; use BillingModel failure rules to price it.
struct AttemptOutcome {
  int req_idx = -1;   // Index into PlatformSimResult::requests.
  int attempt = 1;    // 1-based client attempt number.
  Outcome outcome = Outcome::kOk;
  MicroSecs dispatched = 0;  // Client send time (arrival or retry re-arrival).
  MicroSecs start_exec = 0;  // When the sandbox began processing; 0 if never.
  MicroSecs end = 0;         // Completion, failure, or withdrawal time.
  // Provider-reported duration up to completion or abort (timeouts run
  // through the full max_exec_duration; crashes stop at the crash point).
  MicroSecs exec_duration = 0;
  bool cold_start = false;
  MicroSecs init_duration = 0;
  int sandbox_id = -1;
  // The client stopped waiting (attempt_timeout) before this attempt ended;
  // the platform kept executing — and billing — it.
  bool client_abandoned = false;
};

struct TimelineSample {
  MicroSecs time = 0;
  int instances = 0;       // Ready + initializing.
  int ready_instances = 0;
  int busy_requests = 0;   // In-flight requests across sandboxes.
  double avg_utilization = 0.0;
};

struct SandboxAccounting {
  int sandbox_id = 0;
  MicroSecs created_at = 0;
  MicroSecs destroyed_at = 0;
  MicroSecs init_time = 0;
  MicroSecs busy_time = 0;  // Time with >= 1 in-flight request.
  MicroSecs idle_time = 0;  // Keep-alive time.
};

struct PlatformSimResult {
  std::vector<RequestOutcome> requests;
  std::vector<AttemptOutcome> attempts;  // One per dispatched attempt.
  std::vector<TimelineSample> timeline;
  std::vector<SandboxAccounting> sandboxes;
  int cold_starts = 0;  // Attempts that triggered a sandbox initialization.
  double total_instance_seconds = 0.0;
  // Failure taxonomy over attempts (all zero in a fault-free run).
  int64_t successes = 0;  // Requests with terminal Outcome::kOk.
  int64_t failed_attempts = 0;
  int64_t init_failure_attempts = 0;
  int64_t crash_attempts = 0;
  int64_t timeout_attempts = 0;
  int64_t rejected_attempts = 0;
  int64_t retries = 0;  // attempts.size() - requests.size().
  // --- Chaos accounting (all zero with admission/breaker/drains off) ---
  int64_t circuit_open_attempts = 0;  // Breaker fast-fails (never billed).
  int64_t queue_timeout_attempts = 0; // Admission-queue waits past timeout.
  int64_t shed_attempts = 0;          // Rejected by a full admission queue.
  int64_t breaker_trips = 0;          // Closed->open transitions.
  int64_t drained_sandboxes = 0;      // Busy sandboxes put into draining.
  int64_t drain_killed_attempts = 0;  // In-flight work killed at the drain deadline.
};

// Stepwise simulator core: the same discrete-event machine PlatformSim::Run
// drives, exposed as an explicit engine so runs can be paused, digested,
// checkpointed, and resumed. `run-to-T2` and `run-to-T1 + checkpoint +
// resume-to-T2` produce bit-identical state (and therefore equal Digest()
// values) because SaveState/LoadState/Digest all walk the complete mutable
// state — event queue included, heap array verbatim — through one shared
// archive template.
class PlatformEngine {
 public:
  // Throws std::invalid_argument when `config.Validate()` reports errors.
  PlatformEngine(PlatformSimConfig config, uint64_t seed);
  ~PlatformEngine();
  PlatformEngine(PlatformEngine&&) noexcept;
  PlatformEngine& operator=(PlatformEngine&&) noexcept;

  // Seeds the event queue from the arrival trace (sorted ascending). Call
  // exactly once on a fresh engine; resumed engines LoadState instead.
  void Start(const std::vector<MicroSecs>& arrivals, const WorkloadSpec& workload);

  // Processes every event with time <= t (deterministic boundary: event
  // ordering is by time with stable heap tie-breaking).
  void AdvanceUntil(MicroSecs t);
  void RunToEnd();

  // All requests terminal and no attempt open.
  bool done() const;
  // Time of the last processed event.
  MicroSecs now() const;

  // Finalizes sandbox accounting and derived counters and returns the
  // result. Call once, after RunToEnd (or at any stopping point).
  PlatformSimResult Finish();

  // Writes the complete mutable state as one JSON object (checkpoint
  // "state" blob).
  void SaveState(JsonWriter& w);
  // Restores state saved by SaveState into a freshly constructed engine
  // with an identical config and seed. Replaces Start.
  void LoadState(const JsonValue& state);
  // Canonical digest over the same state SaveState covers.
  uint64_t Digest();
  // Digest of the effective configuration + seed, stored in checkpoint
  // headers to reject resumes under a different setup.
  uint64_t ConfigHash() const;

  const PlatformSimConfig& config() const;
  uint64_t seed() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class PlatformSim {
 public:
  // Throws std::invalid_argument when `config.Validate()` reports errors.
  PlatformSim(PlatformSimConfig config, uint64_t seed);

  // Runs the arrival sequence (sorted ascending) of identical requests of
  // `workload` to completion and returns per-request outcomes plus timeline
  // and sandbox accounting.
  PlatformSimResult Run(const std::vector<MicroSecs>& arrivals, const WorkloadSpec& workload);

  const PlatformSimConfig& config() const { return config_; }

 private:
  PlatformSimConfig config_;
  uint64_t seed_;
};

// Generates `duration`-long arrivals at a constant rate `rps` (deterministic
// spacing), starting at time 0.
std::vector<MicroSecs> UniformArrivals(double rps, MicroSecs duration);

// Poisson arrivals at rate `rps` over `duration`.
std::vector<MicroSecs> PoissonArrivals(double rps, MicroSecs duration, Rng& rng);

// Converts one attempt into a billable trace record under the sandbox's
// allocation, so billing's failure rules can price it. Consumed CPU time is
// approximated as one busy vCPU for the reported duration (exact tracking of
// shared-CPU progress is not needed for the cost-of-failure analysis).
RequestRecord BillableRecord(const AttemptOutcome& attempt, double alloc_vcpus,
                             MegaBytes alloc_mem_mb);

// Empirical cold-start probability at a given idle interval: repeatedly send
// a warm-up request followed by a probe after `idle`; returns the fraction
// of probes that hit a cold sandbox (paper Fig. 9, 100 samples per point).
double ColdStartProbability(const PlatformSimConfig& config, const WorkloadSpec& workload,
                            MicroSecs idle, int samples, uint64_t seed);

}  // namespace faascost

#endif  // FAASCOST_PLATFORM_PLATFORM_SIM_H_
