#include "src/platform/serving.h"

#include <algorithm>
#include <cmath>

namespace faascost {

const char* ServingArchitectureName(ServingArchitecture arch) {
  switch (arch) {
    case ServingArchitecture::kApiLongPolling:
      return "runtime-API long polling";
    case ServingArchitecture::kHttpServer:
      return "HTTP server";
    case ServingArchitecture::kCodeExecution:
      return "code/binary execution";
  }
  return "unknown";
}

MicroSecs ServingOverheadModel::Sample(double vcpus, Rng& rng) const {
  double cpu_part = static_cast<double>(cpu_work);
  if (vcpus < 1.0 && cpu_work > 0) {
    const double deficit = 1.0 - std::max(vcpus, 0.0);
    cpu_part += static_cast<double>(low_alloc_penalty) * deficit;
  }
  double total = static_cast<double>(base) + cpu_part;
  if (jitter > 0.0) {
    total *= 1.0 + rng.Uniform(-jitter, jitter);
  }
  return std::max<MicroSecs>(0, static_cast<MicroSecs>(total));
}

ServingOverheadModel ApiLongPollingOverhead() {
  ServingOverheadModel m;
  m.arch = ServingArchitecture::kApiLongPolling;
  m.base = 870;      // Poll cycle + response post over the local endpoint.
  m.cpu_work = 300;  // Event (de)serialization in the runtime.
  m.low_alloc_penalty = 0;
  m.jitter = 0.20;
  return m;
}

ServingOverheadModel HttpServerOverhead() {
  ServingOverheadModel m;
  m.arch = ServingArchitecture::kHttpServer;
  m.base = 1'000;              // Queue-proxy hop + connection handling.
  m.cpu_work = 2'100;          // Header/payload parsing and serialization.
  m.low_alloc_penalty = 3'100; // At 0.08 vCPUs: ~5.9 ms average.
  m.jitter = 0.25;
  return m;
}

ServingOverheadModel CodeExecutionOverhead() {
  ServingOverheadModel m;
  m.arch = ServingArchitecture::kCodeExecution;
  m.base = 4;  // Isolate dispatch; below the 0.01 ms reporting precision.
  m.cpu_work = 2;
  m.low_alloc_penalty = 0;
  m.jitter = 0.30;
  return m;
}

}  // namespace faascost
