// The three mainstream request-serving architectures (paper §3.2, Fig. 7)
// and their per-request overhead models (Fig. 8):
//
//  (a) Runtime-API long polling (AWS Lambda): a provider runtime inside the
//      sandbox blocks on the runtime API, hands events to the handler and
//      posts results back. Stable ~1.17 ms overhead, independent of the
//      resource configuration.
//  (b) HTTP server (GCP, Azure, IBM, Knative): a queue/sidecar proxies the
//      request to an HTTP server running the user handler. Highest overhead
//      (up to ~5.93 ms average): header/payload parsing, encoding and
//      serialization are CPU-bound, so low CPU allocations inflate it.
//  (c) Code/binary execution (Cloudflare Workers): the language engine runs
//      the code block per request. Near-zero overhead (below Cloudflare's
//      0.01 ms reporting precision).

#ifndef FAASCOST_PLATFORM_SERVING_H_
#define FAASCOST_PLATFORM_SERVING_H_

#include <string>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace faascost {

enum class ServingArchitecture {
  kApiLongPolling,
  kHttpServer,
  kCodeExecution,
};

const char* ServingArchitectureName(ServingArchitecture arch);

struct ServingOverheadModel {
  ServingArchitecture arch = ServingArchitecture::kApiLongPolling;
  MicroSecs base = 0;               // Fixed per-request overhead.
  MicroSecs cpu_work = 0;           // CPU-bound portion at a full vCPU.
  MicroSecs low_alloc_penalty = 0;  // Extra as the allocation approaches 0.
  double jitter = 0.15;             // Relative uniform jitter.

  // Samples the serving overhead for a request on a sandbox with `vcpus`.
  // The CPU-bound portion inflates as (1 + penalty * (1 - vcpus)) for
  // sub-core allocations: individual parsing/serialization bursts are short
  // enough to ride quota overallocation (§4.2), so the inflation is far
  // milder than reciprocal scaling.
  MicroSecs Sample(double vcpus, Rng& rng) const;
};

// Default overhead models calibrated to the Fig. 8 measurements.
ServingOverheadModel ApiLongPollingOverhead();   // AWS: ~1.17 ms mean.
ServingOverheadModel HttpServerOverhead();       // GCP/Azure: ~3-6 ms mean.
ServingOverheadModel CodeExecutionOverhead();    // Cloudflare: ~0.005 ms.

}  // namespace faascost

#endif  // FAASCOST_PLATFORM_SERVING_H_
