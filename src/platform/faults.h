// Fault injection and client retry semantics (cost-of-failure study).
//
// Real platforms bill failed and timed-out invocations: AWS bills duration up
// to the configured timeout, per-invocation fees are charged regardless of
// outcome, and client retries multiply both request fees and cold starts.
// This module provides the failure side of that equation:
//
//   - FaultModel: a seeded, deterministic source of per-attempt faults —
//     cold-start/init failures, mid-execution crashes (crash point sampled
//     uniformly over the execution's CPU demand), platform-enforced execution
//     timeouts (`max_exec_duration`), and overload rejections (429s) when
//     `max_instances` is saturated.
//   - RetryPolicy: client-side retries with exponential backoff and full
//     jitter plus an optional per-attempt client timeout, so failed or
//     abandoned attempts re-arrive at the platform as new load.
//
// The fault stream draws from its own RNG (forked off the simulation seed),
// so a zero-fault configuration leaves the simulator's random stream — and
// therefore every result — bit-identical to a fault-free build.

#ifndef FAASCOST_PLATFORM_FAULTS_H_
#define FAASCOST_PLATFORM_FAULTS_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/trace/record.h"

namespace faascost {

struct FaultModelConfig {
  // Probability that a fresh sandbox fails to initialize. The pending
  // requests fail with Outcome::kInitFailure after the (wasted) init time.
  double init_failure_prob = 0.0;
  // Per-attempt probability of a mid-execution crash. The crash point is
  // sampled uniformly over the attempt's CPU demand.
  double crash_prob = 0.0;
  // Whether a crash takes the whole sandbox down with it (process death):
  // co-resident in-flight requests also fail, and the next arrival pays a
  // cold start. This is what amplifies cold starts under failure.
  bool crash_kills_sandbox = true;
  // Platform-enforced execution timeout; attempts running longer are aborted
  // with Outcome::kTimeout. 0 disables.
  MicroSecs max_exec_duration = 0;
  // Reject new arrivals with Outcome::kRejected (HTTP 429) when the platform
  // is at `max_instances` and no sandbox has spare capacity. When false
  // (default, the fault-free baseline), arrivals queue or scale out
  // unconditionally.
  bool reject_on_overload = false;

  // True if any fault mechanism can fire.
  bool AnyEnabled() const;
  // Human-readable config errors; empty when valid.
  std::vector<std::string> Validate() const;
};

// Client-side retry policy: serial attempts with exponential backoff, plus an
// optional circuit breaker that fast-fails dispatches while the service is
// known-bad (capping retry storms at the source).
struct RetryPolicy {
  int max_attempts = 1;  // Total attempts including the first; 1 = no retry.
  // Backoff before attempt k+1: min(cap, base * multiplier^(k-1)), with full
  // jitter (uniform in [0, that bound]) when `full_jitter` is set. The
  // exponent is clamped (kBackoffExponentCap) so absurd attempt counts can
  // never overflow the computation; the cap is the max_backoff clamp.
  MicroSecs backoff_base = 100 * kMicrosPerMilli;
  double backoff_multiplier = 2.0;
  MicroSecs backoff_cap = 10LL * kMicrosPerSec;
  bool full_jitter = true;
  // Client-side timeout per attempt, measured from dispatch. On expiry the
  // client abandons the attempt and retries (or gives up); the platform may
  // keep executing — and billing — the abandoned attempt. 0 disables.
  MicroSecs attempt_timeout = 0;
  // Whether 429 rejections are retried (they usually are, which is what
  // turns overload into retry storms).
  bool retry_rejected = true;
  // --- Circuit breaker (client side) ---
  // Trip after this many consecutive client-observed failures; while open,
  // dispatches fail fast with Outcome::kCircuitOpen (never billed). After
  // `breaker_cooldown` a single half-open probe is let through: success
  // closes the breaker, failure re-opens it for another cooldown. 0 disables.
  int breaker_threshold = 0;
  MicroSecs breaker_cooldown = 30LL * kMicrosPerSec;

  bool enabled() const {
    return max_attempts > 1 || attempt_timeout > 0 || breaker_threshold > 0;
  }
  // Backoff delay before attempt number `failed_attempt + 1`.
  MicroSecs BackoffDelay(int failed_attempt, Rng& rng) const;
  // Human-readable config errors; empty when valid.
  std::vector<std::string> Validate() const;
};

// Largest exponent applied in BackoffDelay: 2^62 microseconds is ~146k years,
// far past any cap, so clamping here loses nothing while keeping the repeated
// multiplication (and the MicroSecs cast) finite for any attempt count.
inline constexpr int kBackoffExponentCap = 62;

// Serializable snapshot of a CircuitBreaker (checkpoint/resume support).
// `state` carries the State enum as an int to keep the struct a plain POD.
struct CircuitBreakerState {
  int state = 0;
  int consecutive_failures = 0;
  MicroSecs open_until = 0;
  bool probe_inflight = false;
  int64_t trips = 0;
};

// Runtime state of the RetryPolicy circuit breaker. One instance represents
// one client fleet's view of one function. Short-circuited dispatches do not
// feed back into the state; only real outcomes do.
class CircuitBreaker {
 public:
  CircuitBreaker(int threshold, MicroSecs cooldown);

  // Snapshot / restore for checkpointing. Thresholds come from config and
  // are not part of the snapshot.
  CircuitBreakerState SaveState() const;
  void LoadState(const CircuitBreakerState& st);

  // Whether a dispatch at `now` may proceed. While open this returns false
  // until the cooldown elapses, then admits exactly one half-open probe
  // (subsequent calls return false until that probe's outcome is recorded).
  bool AllowDispatch(MicroSecs now);
  // Client-observed outcome of a dispatched (admitted) attempt.
  void RecordSuccess();
  void RecordFailure(MicroSecs now);

  bool enabled() const { return threshold_ > 0; }
  int64_t trips() const { return trips_; }
  // Last acted-upon state (transitions happen lazily inside AllowDispatch),
  // exposed for the breaker-state gauge in the metrics registry.
  bool open() const { return state_ == State::kOpen; }

 private:
  enum class State { kClosed, kOpen, kHalfOpen };
  int threshold_ = 0;
  MicroSecs cooldown_ = 0;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  MicroSecs open_until_ = 0;
  bool probe_inflight_ = false;
  int64_t trips_ = 0;
};

// How a full admission queue sheds load.
enum class ShedPolicy {
  kRejectNewest,  // The incoming attempt is rejected (classic tail drop).
  kRejectOldest,  // The head of the queue is rejected to admit the newcomer.
};

inline const char* ShedPolicyName(ShedPolicy p) {
  return p == ShedPolicy::kRejectNewest ? "reject-newest" : "reject-oldest";
}

// Bounded admission queue in front of a function's sandboxes, replacing the
// binary reject-everything-at-capacity coin (`reject_on_overload`) with
// backpressure: at capacity, up to `queue_depth` attempts wait; beyond that
// the shed policy picks a victim (Outcome::kRejected), and attempts that wait
// longer than `queue_timeout` fail with Outcome::kTimeout.
struct AdmissionControlConfig {
  bool enabled = false;        // Off = the pre-chaos overload behavior.
  int queue_depth = 0;         // Must be > 0 when enabled.
  MicroSecs queue_timeout = 0; // 0 = queued attempts wait forever.
  ShedPolicy shed = ShedPolicy::kRejectNewest;

  // Human-readable config errors; empty when valid.
  std::vector<std::string> Validate() const;
};

// Deterministic fault sampler. All draws come from an internal RNG seeded at
// construction, so fault sequences are reproducible and independent of the
// simulator's own stochastic stream.
class FaultModel {
 public:
  FaultModel(FaultModelConfig config, uint64_t seed);

  // Samples whether a fresh sandbox's initialization fails. Draws from the
  // RNG only when init_failure_prob > 0.
  bool SampleInitFailure();
  // Samples whether an attempt will crash mid-execution. Draws only when
  // crash_prob > 0.
  bool SampleCrash();
  // Crash point as a fraction of the attempt's CPU demand, uniform in (0, 1].
  double SampleCrashPoint();

  const FaultModelConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

 private:
  FaultModelConfig config_;
  Rng rng_;
};

}  // namespace faascost

#endif  // FAASCOST_PLATFORM_FAULTS_H_
