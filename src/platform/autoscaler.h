// Windowed metric autoscaler for multi-concurrency platforms (paper §3.1).
//
// Platforms with the multi-concurrency serving model aggregate scaling
// metrics over a time window (60 s by default in Knative's KPA) to avoid
// oscillation, which is why "scaling does not begin until about 40 s" into
// the paper's 15 RPS experiment (Fig. 6-right): the windowed average has to
// climb past the per-instance capacity before the desired count crosses the
// next integer.
//
// Like Knative's KPA, the desired count derives from windowed *demand*
// divided by per-instance capacity, independent of the current count:
//   desired = ceil(window_avg_demand / per_instance_capacity)
// where demand is the arrival work rate in vCPU-seconds per second and
// capacity = vcpus * target_utilization.

#ifndef FAASCOST_PLATFORM_AUTOSCALER_H_
#define FAASCOST_PLATFORM_AUTOSCALER_H_

#include <deque>
#include <utility>

#include "src/common/units.h"

namespace faascost {

struct AutoscalerConfig {
  double target_utilization = 0.6;  // GCP default CPU utilization target.
  // Demand one instance is expected to absorb (vCPU-seconds per second);
  // the platform simulator sets this to vcpus * target_utilization.
  double per_instance_capacity = 0.6;
  MicroSecs metric_window = 60LL * kMicrosPerSec;  // Knative stable window.
  MicroSecs sample_interval = 1LL * kMicrosPerSec;
  MicroSecs eval_interval = 2LL * kMicrosPerSec;
  // Minimum time between scale actions (stabilization against flapping).
  MicroSecs action_cooldown = 10LL * kMicrosPerSec;
  int max_instances = 1000;
};

class WindowedAutoscaler {
 public:
  explicit WindowedAutoscaler(AutoscalerConfig config);

  // Records a demand sample (vCPU-seconds of arriving work per second of
  // wall time) at time `now`.
  void AddSample(MicroSecs now, double demand);

  // Average demand over the window. Slots with no sample yet (window not
  // filled) count as zero, which is what delays early scale-up.
  double WindowAverage(MicroSecs now) const;

  // Desired instance count from the window average.
  int DesiredInstances(MicroSecs now) const;

  const AutoscalerConfig& config() const { return config_; }

  // Checkpoint support: the sample window is the autoscaler's only mutable
  // state. Restoring it resumes scaling decisions bit-exactly.
  const std::deque<std::pair<MicroSecs, double>>& samples() const {
    return samples_;
  }
  void RestoreSamples(std::deque<std::pair<MicroSecs, double>> samples) {
    samples_ = std::move(samples);
  }

 private:
  AutoscalerConfig config_;
  std::deque<std::pair<MicroSecs, double>> samples_;
};

}  // namespace faascost

#endif  // FAASCOST_PLATFORM_AUTOSCALER_H_
