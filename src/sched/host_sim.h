// Multi-tenant host scheduling simulation (paper §4): "Serverless has a high
// degree of co-tenancy on servers... the OS kernel plays a crucial role in
// enforcing resource isolation and fair allocation across workloads with
// varying limits from different tenants."
//
// Models M cores shared by K single-threaded tenant task groups, each under
// its own CPU bandwidth-control quota. Dispatch is fair-share (lowest
// vruntime first) at tick granularity, so tenant tasks experience two kinds
// of gaps from user space: bandwidth throttles (multiples of the period, as
// in CpuBandwidthSim) and short waiting-for-a-core preemptions -- the sub-2ms
// gaps the paper measures on GCP, which the single-task simulator injects as
// exogenous noise but which emerge endogenously here.

#ifndef FAASCOST_SCHED_HOST_SIM_H_
#define FAASCOST_SCHED_HOST_SIM_H_

#include <vector>

#include "src/common/units.h"
#include "src/integrity/integrity.h"
#include "src/obs/span.h"
#include "src/sched/bandwidth_sim.h"
#include "src/sched/config.h"

namespace faascost {

struct TenantSpec {
  double quota_fraction = 0.5;  // Quota / period for this tenant's cgroup.
  double weight = 1.0;          // cpu.shares-style fair-share weight.
  // Duty cycle: the tenant wants CPU only `demand_fraction` of the time
  // (modeled as random on/off phases); 1.0 = always runnable.
  double demand_fraction = 1.0;
};

struct HostSimConfig {
  int cores = 4;
  MicroSecs period = 100 * kMicrosPerMilli;
  MicroSecs tick = 1 * kMicrosPerMilli;  // 1000 Hz.
  MicroSecs duration = 10LL * kMicrosPerSec;
  // Mean on/off phase length for tenants with demand_fraction < 1.
  MicroSecs demand_phase = 50 * kMicrosPerMilli;
  // Observability hook (non-owning, may be null). Each detected gap is also
  // emitted as a kThrottle (quota exhausted at some point during the gap) or
  // kPreempt span on kTrackGroupTenant, tid = tenant index. Null-sink runs
  // are bit-identical to uninstrumented ones.
  TraceSink* trace = nullptr;
  // Runtime invariant auditor (non-owning, may be null). Basic level checks
  // dispatch-width bounds per tick; full level additionally verifies
  // core-time conservation (sum of tenant CPU == busy core ticks) and the
  // per-tenant gap taxonomy at every quota-period boundary.
  Auditor* auditor = nullptr;
};

struct TenantResult {
  MicroSecs cpu_obtained = 0;
  MicroSecs runnable_time = 0;  // Time the task wanted a CPU.
  double cpu_share = 0.0;       // obtained / duration.
  // Gaps observed by an Algorithm-1-style probe: intervals where the task
  // was runnable but off-CPU for more than the detection threshold.
  std::vector<SuspensionEvent> gaps;
  int64_t throttled_ticks = 0;  // Off-CPU due to exhausted quota.
  int64_t preempted_ticks = 0;  // Off-CPU while unthrottled (lost the core).
};

struct HostSimResult {
  std::vector<TenantResult> tenants;
  double host_utilization = 0.0;  // Busy core-time / (cores * duration).
};

// Runs the host for `config.duration`. Deterministic given the seed.
HostSimResult SimulateHost(const HostSimConfig& config,
                           const std::vector<TenantSpec>& tenants, uint64_t seed);

}  // namespace faascost

#endif  // FAASCOST_SCHED_HOST_SIM_H_
