#include "src/sched/inference.h"

#include <algorithm>
#include <cmath>

namespace faascost {

namespace {

constexpr double kNoiseCutoffMs = 2.0;    // Gaps below this are preemption noise.
constexpr double kMatchThreshold = 0.85;  // Acceptance fraction for a candidate.

// Candidate periods observed across clouds and common kernel defaults (ms).
const double kPeriodCandidates[] = {100.0, 50.0, 40.0, 25.0, 20.0, 10.0, 5.0};
// Candidate tick intervals (ms) -> CONFIG_HZ in {100, 250, 300, 1000}.
const std::pair<double, int> kTickCandidates[] = {
    {10.0, 100}, {4.0, 250}, {10.0 / 3.0, 300}, {1.0, 1000}};

}  // namespace

double MultipleMatchFraction(const std::vector<double>& samples_ms, double base_ms,
                             double tol_ms) {
  if (samples_ms.empty() || base_ms <= 0.0) {
    return 0.0;
  }
  size_t hits = 0;
  for (double s : samples_ms) {
    const double k = std::round(s / base_ms);
    if (k >= 1.0 && std::abs(s - k * base_ms) <= tol_ms) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(samples_ms.size());
}

InferredSchedParams InferSchedParams(const std::vector<ThrottleProfile>& profiles) {
  InferredSchedParams out;

  // Rebuild per-event samples with sub-2 ms noise gaps removed. Unthrottles
  // happen at quota refills, so the differences between consecutive gap
  // *ends* carry the period; the CPU bursts between gaps are quantized by
  // the accounting tick.
  std::vector<double> end_diffs_ms;
  std::vector<double> runtimes_ms;
  MicroSecs total_wall = 0;
  MicroSecs total_cpu = 0;
  for (const auto& p : profiles) {
    total_wall += p.exec_duration;
    total_cpu += p.cpu_obtained;
    std::vector<SuspensionEvent> filtered;
    for (const auto& ev : p.throttle_log) {
      if (MicrosToMillis(ev.duration) >= kNoiseCutoffMs) {
        filtered.push_back(ev);
      }
    }
    for (size_t i = 0; i + 1 < filtered.size(); ++i) {
      const MicroSecs end_i = filtered[i].start + filtered[i].duration;
      const MicroSecs end_j = filtered[i + 1].start + filtered[i + 1].duration;
      end_diffs_ms.push_back(MicrosToMillis(end_j - end_i));
      runtimes_ms.push_back(MicrosToMillis(filtered[i + 1].start - end_i));
    }
  }

  // Coarsest tick consistent with the obtained CPU bursts.
  double tick_ms = 0.0;
  for (const auto& [cand_ms, hz] : kTickCandidates) {
    const double match = MultipleMatchFraction(runtimes_ms, cand_ms, 0.35);
    if (match >= kMatchThreshold) {
      out.config_hz = hz;
      out.match_tick = match;
      tick_ms = cand_ms;
      break;
    }
  }

  // Coarsest period consistent with the unthrottle times. Dispatch after an
  // off-grid refill waits for the next tick, so end-to-end differences can
  // drift by up to one tick around period multiples.
  const double period_tol = std::max(1.0, tick_ms);
  for (double cand : kPeriodCandidates) {
    const double match = MultipleMatchFraction(end_diffs_ms, cand, period_tol);
    if (match >= kMatchThreshold) {
      out.period_ms = cand;
      out.match_period = match;
      break;
    }
  }

  if (total_wall > 0) {
    out.quota_fraction = static_cast<double>(total_cpu) / static_cast<double>(total_wall);
  }
  return out;
}

}  // namespace faascost
