#include "src/sched/closed_form.h"

#include <cassert>

namespace faascost {

MicroSecs ClosedFormDuration(MicroSecs cpu_demand, MicroSecs period, MicroSecs quota) {
  assert(cpu_demand >= 0);
  assert(period > 0);
  assert(quota > 0);
  if (cpu_demand == 0) {
    return 0;
  }
  if (quota >= period) {
    // No effective throttling for a single-threaded task.
    return cpu_demand;
  }
  const MicroSecs full = cpu_demand / quota;
  const MicroSecs rem = cpu_demand % quota;
  if (rem != 0) {
    return full * period + rem;
  }
  return (full - 1) * period + quota;
}

double IdealDuration(MicroSecs cpu_demand, double vcpu_fraction) {
  assert(vcpu_fraction > 0.0);
  if (vcpu_fraction >= 1.0) {
    return static_cast<double>(cpu_demand);
  }
  return static_cast<double>(cpu_demand) / vcpu_fraction;
}

}  // namespace faascost
