#include "src/sched/bandwidth_sim.h"

#include <algorithm>
#include <cassert>

namespace faascost {

namespace {

// Merges two sorted suspension lists into one sorted list.
std::vector<SuspensionEvent> MergeSorted(const std::vector<SuspensionEvent>& a,
                                         const std::vector<SuspensionEvent>& b) {
  std::vector<SuspensionEvent> out;
  out.reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].start <= b[j].start)) {
      out.push_back(a[i++]);
    } else {
      out.push_back(b[j++]);
    }
  }
  return out;
}

MicroSecs CeilDiv(MicroSecs value, MicroSecs divisor) {
  return (value + divisor - 1) / divisor;
}

}  // namespace

CpuBandwidthSim::CpuBandwidthSim(SchedConfig config) : config_(std::move(config)) {
  assert(config_.period > 0);
  assert(config_.quota > 0);
  assert(config_.tick > 0);
  assert(config_.slice > 0);
  assert(config_.num_threads >= 1);
  assert(config_.burst >= 0);
}

TaskRunResult CpuBandwidthSim::Run(MicroSecs cpu_demand, MicroSecs wall_limit,
                                   MicroSecs tick_phase, MicroSecs refill_phase,
                                   Rng* rng) const {
  return RunImpl(IoPattern{}, cpu_demand, wall_limit, tick_phase, refill_phase, rng);
}

TaskRunResult CpuBandwidthSim::RunIoBound(const IoPattern& io, MicroSecs cpu_demand,
                                          MicroSecs wall_limit, MicroSecs tick_phase,
                                          MicroSecs refill_phase, Rng* rng) const {
  return RunImpl(io, cpu_demand, wall_limit, tick_phase, refill_phase, rng);
}

TaskRunResult CpuBandwidthSim::RunImpl(const IoPattern& io, MicroSecs cpu_demand,
                                       MicroSecs wall_limit, MicroSecs tick_phase,
                                       MicroSecs refill_phase, Rng* rng) const {
  TaskRunResult result;
  std::vector<SuspensionEvent> noise_gaps;

  const MicroSecs account_interval =
      config_.scheduler == SchedulerKind::kEevdf ? std::max<MicroSecs>(1, config_.tick / 2)
                                                 : config_.tick;
  const int64_t threads = config_.num_threads;
  const bool io_enabled = io.cpu_burst > 0 && io.io_wait > 0;

  MicroSecs now = 0;
  MicroSecs remaining = cpu_demand;
  MicroSecs obtained = 0;
  int64_t global_pool = config_.quota;
  int64_t local_pool = 0;  // Aggregate across threads; can go negative.
  MicroSecs unaccounted = 0;
  MicroSecs burst_remaining = io.cpu_burst;

  bool throttled = false;
  bool unthrottle_pending = false;
  MicroSecs throttle_start = 0;

  bool in_io = false;
  MicroSecs io_end = 0;

  const bool noise_enabled = config_.noise_mean_gap > 0 && rng != nullptr;
  bool in_noise = false;
  MicroSecs noise_end = 0;
  MicroSecs next_noise = noise_enabled
                             ? now + static_cast<MicroSecs>(rng->Exponential(
                                         1.0 / static_cast<double>(config_.noise_mean_gap)))
                             : kUnlimitedDemand;

  MicroSecs next_account = tick_phase > 0 ? tick_phase % account_interval : account_interval;
  if (next_account == 0) {
    next_account = account_interval;
  }
  MicroSecs next_refill = refill_phase > 0 ? refill_phase : config_.period;

  auto running = [&] { return !throttled && !in_noise && !in_io && remaining > 0; };

  auto account = [&] {
    if (unaccounted > 0) {
      local_pool -= unaccounted;
      unaccounted = 0;
    }
  };

  // At an accounting point with the task runnable: acquire slices if the
  // local pools ran dry; throttle if the global pool cannot cover them.
  auto acquire_or_throttle = [&] {
    if (throttled || remaining <= 0) {
      return;
    }
    if (local_pool <= 0) {
      const int64_t grant = std::min<int64_t>(config_.slice * threads, global_pool);
      local_pool += grant;
      global_pool -= grant;
      if (local_pool <= 0) {
        throttled = true;
        throttle_start = now;
      }
    }
  };

  auto consume = [&](MicroSecs dt) {
    const MicroSecs used = std::min<MicroSecs>(remaining, dt * threads);
    remaining -= used;
    obtained += used;
    unaccounted += used;
    burst_remaining -= used;
  };

  while (now < wall_limit && remaining > 0) {
    MicroSecs next_event = std::min({next_account, next_refill, wall_limit});
    if (noise_enabled) {
      next_event = std::min(next_event, in_noise ? noise_end : next_noise);
    }
    if (in_io) {
      next_event = std::min(next_event, io_end);
    }

    if (running()) {
      // The task may finish, or hit an I/O boundary, before the next event.
      const MicroSecs t_complete = now + CeilDiv(remaining, threads);
      const MicroSecs t_burst =
          io_enabled ? now + CeilDiv(std::max<MicroSecs>(burst_remaining, 1), threads)
                     : kUnlimitedDemand;
      const MicroSecs soft = std::min(t_complete, t_burst);
      if (soft <= next_event) {
        consume(soft - now);
        now = soft;
        if (remaining <= 0) {
          break;
        }
        if (io_enabled && burst_remaining <= 0) {
          // Blocking on I/O: a voluntary context switch accounts runtime.
          account();
          in_io = true;
          io_end = now + io.io_wait;
          result.io_blocked += io.io_wait;
          burst_remaining = io.cpu_burst;
        }
        continue;
      }
      consume(next_event - now);
    }
    now = next_event;

    if (noise_enabled && in_noise && now == noise_end) {
      in_noise = false;
    }

    if (in_io && now == io_end) {
      // Waking after I/O: the accumulated debt may throttle the wakeup
      // (paper §4.2: overruns and throttling may occur when the task
      // resumes, though less often than for CPU-bound tasks).
      in_io = false;
      acquire_or_throttle();
    }

    if (now == next_refill) {
      // hrtimer callback: the interrupt also drives runtime accounting.
      account();
      // Unused quota accumulates up to the burst allowance (cfs_burst).
      global_pool =
          std::min<int64_t>(std::max<int64_t>(global_pool, 0) + config_.quota,
                            config_.quota + config_.burst);
      if (throttled) {
        // distribute_cfs_runtime: bring the throttled queue's runtime to +1us
        // if the refill can cover the debt.
        if (local_pool <= 0) {
          const int64_t needed = 1 - local_pool;
          const int64_t grant = std::min<int64_t>(needed, global_pool);
          local_pool += grant;
          global_pool -= grant;
        }
        if (local_pool > 0) {
          // The unthrottled task is dispatched at the next scheduling point:
          // when the refill lands on the tick grid it resumes immediately,
          // otherwise it waits for the next tick (on busy co-tenant hosts the
          // CPU is occupied until the scheduler runs).
          const bool on_grid = (next_account - now) % account_interval == 0;
          if (on_grid) {
            throttled = false;
            result.throttles.push_back({throttle_start, now - throttle_start});
          } else {
            unthrottle_pending = true;
          }
        }
      } else {
        acquire_or_throttle();
      }
      next_refill += config_.period;
    }

    if (now == next_account) {
      if (unthrottle_pending) {
        unthrottle_pending = false;
        throttled = false;
        result.throttles.push_back({throttle_start, now - throttle_start});
      }
      account();
      acquire_or_throttle();
      next_account += account_interval;
    }

    if (noise_enabled && !in_noise && now == next_noise) {
      if (!throttled && !in_io && remaining > 0) {
        // Preemption by a co-tenant: a voluntary context switch accounts the
        // consumed runtime first.
        account();
        acquire_or_throttle();
        if (!throttled) {
          in_noise = true;
          const MicroSecs dur = static_cast<MicroSecs>(
              rng->Uniform(static_cast<double>(config_.noise_min),
                           static_cast<double>(config_.noise_max)));
          noise_end = now + std::max<MicroSecs>(1, dur);
          noise_gaps.push_back({now, noise_end - now});
        }
      }
      next_noise = now + std::max<MicroSecs>(
                             1, static_cast<MicroSecs>(rng->Exponential(
                                    1.0 / static_cast<double>(config_.noise_mean_gap))));
    }
  }

  if (throttled) {
    result.throttles.push_back({throttle_start, now - throttle_start});
  }

  result.wall_duration = now;
  result.cpu_obtained = obtained;
  result.completed = remaining <= 0;
  result.gaps = MergeSorted(result.throttles, noise_gaps);
  return result;
}

TaskRunResult CpuBandwidthSim::RunWithRandomPhase(MicroSecs cpu_demand, MicroSecs wall_limit,
                                                  Rng& rng) const {
  // Both the tick grid and the bandwidth hrtimer derive from the same clock
  // base, so refill expirations land on the tick grid; the paper's profiles
  // show tick-quantized runtime bursts. Randomize the shared offset and the
  // number of ticks between task start and the first refill.
  const MicroSecs tick_phase = rng.UniformInt(0, config_.tick - 1);
  const MicroSecs ticks_per_period = std::max<MicroSecs>(1, config_.period / config_.tick);
  MicroSecs refill_phase =
      (tick_phase + rng.UniformInt(0, ticks_per_period - 1) * config_.tick) %
      config_.period;
  if (refill_phase == 0) {
    refill_phase = config_.period;
  }
  return RunImpl(IoPattern{}, cpu_demand, wall_limit, tick_phase, refill_phase, &rng);
}

void EmitTaskRunSpans(const TaskRunResult& result, MicroSecs start_time, int64_t track,
                      TraceSink* sink) {
  if (sink == nullptr) {
    return;
  }
  Span exec;
  exec.kind = SpanKind::kExec;
  exec.group = kTrackGroupTenant;
  exec.track = track;
  exec.start = start_time;
  exec.duration = result.wall_duration;
  exec.status = result.completed ? "ok" : "cutoff";
  sink->Record(exec);
  for (const SuspensionEvent& t : result.throttles) {
    Span sp;
    sp.kind = SpanKind::kThrottle;
    sp.group = kTrackGroupTenant;
    sp.track = track;
    sp.start = start_time + t.start;
    sp.duration = t.duration;
    sink->Record(sp);
  }
  // Gaps that exactly match a throttle are already covered above; the rest
  // are co-tenant preemptions.
  size_t ti = 0;
  for (const SuspensionEvent& g : result.gaps) {
    while (ti < result.throttles.size() && result.throttles[ti].start < g.start) {
      ++ti;
    }
    if (ti < result.throttles.size() && result.throttles[ti].start == g.start &&
        result.throttles[ti].duration == g.duration) {
      continue;
    }
    Span sp;
    sp.kind = SpanKind::kPreempt;
    sp.group = kTrackGroupTenant;
    sp.track = track;
    sp.start = start_time + g.start;
    sp.duration = g.duration;
    sink->Record(sp);
  }
}

}  // namespace faascost
