// Overallocation sweep (paper §4.1, Fig. 10): run a fixed CPU-bound workload
// under decreasing fractional vCPU allocations and compare the measured
// wall-clock duration against ideal reciprocal scaling. Quantized scheduling
// makes the empirical mean fall below the expected curve, with step-like
// jumps at harmonic allocation points.

#ifndef FAASCOST_SCHED_OVERALLOC_H_
#define FAASCOST_SCHED_OVERALLOC_H_

#include <vector>

#include "src/sched/bandwidth_sim.h"
#include "src/sched/config.h"

namespace faascost {

struct OverallocPoint {
  double vcpu_fraction = 0.0;
  double mean_ms = 0.0;          // Empirical mean duration.
  double p5_ms = 0.0;            // Empirical 5th percentile.
  double expected_mean_ms = 0.0; // Reciprocal scaling of full-alloc mean.
  double expected_p5_ms = 0.0;
  double overalloc_ratio = 0.0;  // expected_mean / mean (>1 = overallocation).
};

struct OverallocSweepConfig {
  MicroSecs period = 20 * kMicrosPerMilli;
  int config_hz = 250;
  SchedulerKind scheduler = SchedulerKind::kCfs;
  MicroSecs cpu_demand = 160 * kMicrosPerMilli;  // PyAES: ~160 ms of CPU.
  double demand_jitter = 0.02;  // Relative lognormal-free jitter (uniform +/-).
  int samples_per_point = 200;
  MicroSecs wall_limit = 600LL * kMicrosPerSec;
};

// Sweeps the given vCPU fractions (each mapped to a quota over the period)
// and returns one point per fraction. The expected curves derive from the
// measurement at the largest fraction, scaled reciprocally, exactly as the
// paper constructs its dashed reference lines.
std::vector<OverallocPoint> SweepOverallocation(const OverallocSweepConfig& config,
                                                const std::vector<double>& fractions,
                                                uint64_t seed);

}  // namespace faascost

#endif  // FAASCOST_SCHED_OVERALLOC_H_
