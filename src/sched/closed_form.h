// Closed-form execution-duration model of CPU bandwidth control, the paper's
// Equation (2):
//
//   d = floor(T/Q) * P + (T mod Q)        if T mod Q != 0
//   d = (T/Q - 1) * P + Q                 otherwise
//
// where T is the required CPU time, P the enforcement period and Q the quota.
// This idealized model assumes exact (continuous) runtime accounting; the
// discrete-event simulator adds the tick-lagged accounting that produces
// overrun on real systems.

#ifndef FAASCOST_SCHED_CLOSED_FORM_H_
#define FAASCOST_SCHED_CLOSED_FORM_H_

#include "src/common/units.h"

namespace faascost {

// Equation (2): wall-clock duration of a CPU-bound task with demand T under
// (period, quota) bandwidth control, assuming the task starts at a period
// boundary with a full quota and exact accounting.
MicroSecs ClosedFormDuration(MicroSecs cpu_demand, MicroSecs period, MicroSecs quota);

// Ideal reciprocal-scaling duration: T / (Q/P). The paper's Fig. 10 "expected
// average" lines scale the full-allocation measurement this way.
double IdealDuration(MicroSecs cpu_demand, double vcpu_fraction);

}  // namespace faascost

#endif  // FAASCOST_SCHED_CLOSED_FORM_H_
