#include "src/sched/host_sim.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/common/rng.h"
#include "src/sched/profiler.h"

namespace faascost {

HostSimResult SimulateHost(const HostSimConfig& config,
                           const std::vector<TenantSpec>& tenants, uint64_t seed) {
  assert(config.cores >= 1);
  assert(config.tick > 0);
  assert(config.period % config.tick == 0);

  struct TenantState {
    double vruntime = 0.0;
    int64_t pool = 0;      // Remaining cgroup runtime this period.
    bool on_phase = true;  // Whether the task currently wants CPU.
    MicroSecs next_flip = 0;
    MicroSecs gap_start = -1;  // Start of the current runnable-but-off-CPU gap.
    bool gap_throttled = false;  // Any tick of the current gap hit quota.
  };

  Rng rng(seed);
  const size_t n = tenants.size();
  std::vector<TenantState> state(n);
  HostSimResult result;
  result.tenants.resize(n);

  auto phase_length = [&](const TenantSpec& spec, bool on) {
    // Exponential on/off phases sized so the long-run on-fraction matches
    // demand_fraction.
    const double mean_on = static_cast<double>(config.demand_phase);
    const double f = std::clamp(spec.demand_fraction, 0.01, 1.0);
    const double mean = on ? mean_on : mean_on * (1.0 - f) / f;
    return std::max<MicroSecs>(config.tick,
                               static_cast<MicroSecs>(rng.Exponential(1.0 / mean)));
  };

  for (size_t i = 0; i < n; ++i) {
    state[i].pool = static_cast<int64_t>(tenants[i].quota_fraction *
                                         static_cast<double>(config.period));
    if (tenants[i].demand_fraction < 1.0) {
      state[i].on_phase = rng.Bernoulli(tenants[i].demand_fraction);
      state[i].next_flip = phase_length(tenants[i], state[i].on_phase);
    } else {
      state[i].next_flip = kUnlimitedDemand;
    }
    // Small random vruntime offsets break ties deterministically.
    state[i].vruntime = rng.Uniform(0.0, 1.0);
  }

  int64_t busy_core_ticks = 0;
  std::vector<size_t> runnable;
  runnable.reserve(n);

  Auditor* const auditor = config.auditor;
  for (MicroSecs now = 0; now < config.duration; now += config.tick) {
    // Quota refills at period boundaries.
    if (now % config.period == 0 && now > 0) {
      for (size_t i = 0; i < n; ++i) {
        state[i].pool = static_cast<int64_t>(tenants[i].quota_fraction *
                                             static_cast<double>(config.period));
      }
      if (auditor != nullptr && auditor->full()) {
        // Core-time conservation at every refill boundary: the CPU handed to
        // tenants is exactly the busy core time, and each tenant's runnable
        // time partitions into obtained + throttled + preempted ticks.
        auditor->NoteScan();
        MicroSecs obtained = 0;
        for (size_t i = 0; i < n; ++i) {
          const TenantResult& tr = result.tenants[i];
          obtained += tr.cpu_obtained;
          const MicroSecs gap_ticks =
              (tr.throttled_ticks + tr.preempted_ticks) * config.tick;
          auditor->CheckLazy(tr.runnable_time == tr.cpu_obtained + gap_ticks,
                             "host.tenant_time_accounting", now, seed,
                             [&] { return "tenant " + std::to_string(i); },
                             [&] {
                               return "runnable=" + std::to_string(tr.runnable_time) +
                                      " obtained=" + std::to_string(tr.cpu_obtained) +
                                      " gaps=" + std::to_string(gap_ticks);
                             });
        }
        auditor->CheckLazy(obtained == busy_core_ticks * config.tick,
                           "host.core_conservation", now, seed,
                           [] { return "host"; },
                           [&] {
                             return "tenant_cpu=" + std::to_string(obtained) +
                                    " busy_core_time=" +
                                    std::to_string(busy_core_ticks * config.tick);
                           });
      }
    }
    // Demand phase flips.
    for (size_t i = 0; i < n; ++i) {
      if (now >= state[i].next_flip && tenants[i].demand_fraction < 1.0) {
        state[i].on_phase = !state[i].on_phase;
        state[i].next_flip = now + phase_length(tenants[i], state[i].on_phase);
      }
    }

    // Collect runnable (wants CPU, quota left) tenants.
    runnable.clear();
    for (size_t i = 0; i < n; ++i) {
      if (state[i].on_phase && state[i].pool > 0) {
        runnable.push_back(i);
      }
    }
    // Fair-share dispatch: the `cores` lowest weighted vruntimes run.
    std::sort(runnable.begin(), runnable.end(), [&](size_t a, size_t b) {
      return state[a].vruntime < state[b].vruntime;
    });
    const size_t running = std::min<size_t>(runnable.size(),
                                            static_cast<size_t>(config.cores));
    busy_core_ticks += static_cast<int64_t>(running);
    if (auditor != nullptr && auditor->basic()) {
      auditor->CheckLazy(running <= static_cast<size_t>(config.cores),
                         "host.dispatch_width", now, seed,
                         [] { return "host"; },
                         [&] {
                           return std::to_string(running) + " tasks on " +
                                  std::to_string(config.cores) + " cores";
                         });
    }

    std::vector<bool> ran(n, false);
    for (size_t k = 0; k < running; ++k) {
      const size_t i = runnable[k];
      ran[i] = true;
      result.tenants[i].cpu_obtained += config.tick;
      state[i].vruntime +=
          static_cast<double>(config.tick) / std::max(tenants[i].weight, 1e-6);
      state[i].pool -= config.tick;
    }

    // Gap bookkeeping from the tenant's (user-space) point of view.
    for (size_t i = 0; i < n; ++i) {
      TenantResult& tr = result.tenants[i];
      if (state[i].on_phase) {
        tr.runnable_time += config.tick;
      }
      const bool wanted = state[i].on_phase;
      if (wanted && !ran[i]) {
        if (state[i].gap_start < 0) {
          state[i].gap_start = now;
          state[i].gap_throttled = false;
        }
        if (state[i].pool <= 0) {
          state[i].gap_throttled = true;
          ++tr.throttled_ticks;
        } else {
          ++tr.preempted_ticks;
        }
      } else if (state[i].gap_start >= 0 && ran[i]) {
        const MicroSecs dur = now - state[i].gap_start;
        if (dur > kThrottleDetectThreshold) {
          tr.gaps.push_back({state[i].gap_start, dur});
          if (config.trace != nullptr) {
            Span sp;
            sp.kind = state[i].gap_throttled ? SpanKind::kThrottle : SpanKind::kPreempt;
            sp.group = kTrackGroupTenant;
            sp.track = static_cast<int64_t>(i);
            sp.start = state[i].gap_start;
            sp.duration = dur;
            config.trace->Record(sp);
          }
        }
        state[i].gap_start = -1;
      } else if (!wanted) {
        state[i].gap_start = -1;  // Voluntary sleep: not an observed gap.
      }
    }
  }

  for (auto& tr : result.tenants) {
    tr.cpu_share =
        static_cast<double>(tr.cpu_obtained) / static_cast<double>(config.duration);
  }
  result.host_utilization =
      static_cast<double>(busy_core_ticks) * static_cast<double>(config.tick) /
      (static_cast<double>(config.cores) * static_cast<double>(config.duration));
  return result;
}

}  // namespace faascost
