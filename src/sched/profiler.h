// User-space scheduler profiler, the paper's Algorithm 1: a CPU-bound probe
// runs for a fixed wall-clock duration and records every jump larger than
// 500 us in its monotonic-clock readings. Such jumps indicate throttles (the
// kernel's default minimal preemption granularity is 750 us, so anything
// above the threshold is an involuntary suspension).
//
// Here the probe runs inside the bandwidth-control simulator; the recorded
// jumps are exactly the simulator's suspension gaps above the threshold,
// which is what the real algorithm observes from user space.

#ifndef FAASCOST_SCHED_PROFILER_H_
#define FAASCOST_SCHED_PROFILER_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/sched/bandwidth_sim.h"

namespace faascost {

// One profiled invocation: the gap log of Algorithm 1.
struct ThrottleProfile {
  // Time of each detected throttle (gap start) and its duration.
  std::vector<SuspensionEvent> throttle_log;
  MicroSecs exec_duration = 0;  // Wall-clock duration of the probe run.
  MicroSecs cpu_obtained = 0;
};

// Aggregated per-event statistics across many invocations (Fig. 12):
// intervals between consecutive throttles, throttle durations, and the CPU
// time obtained between consecutive throttles.
struct ThrottleStats {
  std::vector<double> intervals_ms;   // Gap-start to next gap-start.
  std::vector<double> durations_ms;   // Gap lengths.
  std::vector<double> runtimes_ms;    // Run time between consecutive gaps.
};

inline constexpr MicroSecs kThrottleDetectThreshold = 500;  // Algorithm 1: >500 us.

// Runs Algorithm 1 once: a probe that needs CPU continuously, running for
// `exec_duration` wall-clock time under `sim` with randomized phases.
ThrottleProfile ProfileOnce(const CpuBandwidthSim& sim, MicroSecs exec_duration, Rng& rng);

// Runs `invocations` probes and aggregates the event statistics, mirroring
// the paper's methodology (300 invocations x 10 s per configuration).
ThrottleStats ProfileMany(const CpuBandwidthSim& sim, MicroSecs exec_duration,
                          int invocations, Rng& rng);

// Appends the interval/duration/runtime triples of one profile to `stats`.
void AccumulateProfile(const ThrottleProfile& profile, ThrottleStats& stats);

}  // namespace faascost

#endif  // FAASCOST_SCHED_PROFILER_H_
