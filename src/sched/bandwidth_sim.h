// Discrete-event simulator of Linux CPU bandwidth control for a task group
// in a cgroup (paper §4.2).
//
// The model reproduces the kernel mechanism at tick resolution:
//   - The cgroup's global runtime pool is refilled to the quota (plus any
//     accumulated burst allowance) by the hrtimer callback once per period.
//   - The per-CPU local pools acquire min(slice, remaining-global) when they
//     run dry at an accounting point.
//   - Runtime accounting happens lazily, at scheduler ticks (1/CONFIG_HZ),
//     at suspension (voluntary context switch), and -- under EEVDF -- at one
//     extra deadline check per tick interval. Between accounting points the
//     task runs unchecked, so the local pool can go negative (overrun debt).
//   - When both pools are exhausted the task group is throttled until a
//     refill covers the debt plus one microsecond (the kernel unthrottles
//     once runtime_remaining becomes positive).
//
// Supported workload shapes:
//   - CPU-bound (Run / RunWithRandomPhase): burns CPU continuously.
//   - I/O-bound (RunIoBound): alternates CPU bursts with blocking waits that
//     consume no quota; the paper notes such tasks trigger fewer throttles.
//   - Parallel (SchedConfig::num_threads > 1): symmetric threads on
//     dedicated cores sharing the group quota (multi-vCPU allocations).
//
// The worked example in the paper (quota 1.45 ms, period 20 ms, 250 Hz tick:
// the task runs 4 ms, is throttled 36 ms, runs 4 ms, is throttled 56 ms, ...)
// is reproduced exactly by this simulator and pinned in tests.

#ifndef FAASCOST_SCHED_BANDWIDTH_SIM_H_
#define FAASCOST_SCHED_BANDWIDTH_SIM_H_

#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/obs/span.h"
#include "src/sched/config.h"

namespace faascost {

// A contiguous interval during which the task did not run involuntarily
// (bandwidth throttle or co-tenant preemption; voluntary I/O waits are
// reported separately).
struct SuspensionEvent {
  MicroSecs start = 0;
  MicroSecs duration = 0;
};

struct TaskRunResult {
  MicroSecs wall_duration = 0;  // Time from start until completion/cutoff.
  MicroSecs cpu_obtained = 0;   // CPU time actually consumed (all threads).
  bool completed = false;       // True if the demand was fully served.
  std::vector<SuspensionEvent> throttles;  // Bandwidth throttles only.
  std::vector<SuspensionEvent> gaps;       // Throttles + co-tenant preemptions
                                           // (what Algorithm 1 observes).
  MicroSecs io_blocked = 0;     // Total voluntary blocking time (I/O waits).
};

// Run/block alternation of an I/O-bound task: `cpu_burst` of CPU work
// followed by `io_wait` of blocking, repeated until the demand is served.
struct IoPattern {
  MicroSecs cpu_burst = 0;  // 0 disables the pattern (pure CPU-bound).
  MicroSecs io_wait = 0;
};

inline constexpr MicroSecs kUnlimitedDemand = std::numeric_limits<MicroSecs>::max() / 4;

class CpuBandwidthSim {
 public:
  explicit CpuBandwidthSim(SchedConfig config);

  // Runs a CPU-bound task that needs `cpu_demand` microseconds of CPU time,
  // stopping early once `wall_limit` elapses. `tick_phase` and `refill_phase`
  // offset the first tick/refill relative to the task start (randomize them
  // across invocations to model unaligned arrivals). `rng` is required only
  // when co-tenant noise is enabled.
  TaskRunResult Run(MicroSecs cpu_demand, MicroSecs wall_limit, MicroSecs tick_phase = 0,
                    MicroSecs refill_phase = 0, Rng* rng = nullptr) const;

  // Same, for an I/O-bound task alternating CPU bursts and blocking waits.
  TaskRunResult RunIoBound(const IoPattern& io, MicroSecs cpu_demand, MicroSecs wall_limit,
                           MicroSecs tick_phase = 0, MicroSecs refill_phase = 0,
                           Rng* rng = nullptr) const;

  // Convenience: run with randomized phases drawn from `rng`. Refills stay
  // aligned with the tick grid (both timers share the clock base).
  TaskRunResult RunWithRandomPhase(MicroSecs cpu_demand, MicroSecs wall_limit,
                                   Rng& rng) const;

  const SchedConfig& config() const { return config_; }

 private:
  TaskRunResult RunImpl(const IoPattern& io, MicroSecs cpu_demand, MicroSecs wall_limit,
                        MicroSecs tick_phase, MicroSecs refill_phase, Rng* rng) const;

  SchedConfig config_;
};

// Converts a finished task run into spans on kTrackGroupTenant, tid `track`:
// one kExec span covering the wall duration (status "ok"/"cutoff") plus one
// kThrottle span per bandwidth throttle and one kPreempt span per remaining
// gap (a gap that is not also a throttle). `start_time` anchors the run on
// the trace clock. No-op when `sink` is null.
void EmitTaskRunSpans(const TaskRunResult& result, MicroSecs start_time, int64_t track,
                      TraceSink* sink);

}  // namespace faascost

#endif  // FAASCOST_SCHED_BANDWIDTH_SIM_H_
