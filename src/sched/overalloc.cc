#include "src/sched/overalloc.h"

#include <algorithm>
#include <cassert>

#include "src/common/stats.h"

namespace faascost {

std::vector<OverallocPoint> SweepOverallocation(const OverallocSweepConfig& config,
                                                const std::vector<double>& fractions,
                                                uint64_t seed) {
  assert(!fractions.empty());
  std::vector<double> sorted = fractions;
  std::sort(sorted.begin(), sorted.end());

  Rng rng(seed);
  std::vector<OverallocPoint> out;
  out.reserve(sorted.size());
  for (double frac : sorted) {
    const SchedConfig sc =
        MakeSchedConfig(config.period, frac, config.config_hz, config.scheduler);
    const CpuBandwidthSim sim(sc);
    std::vector<double> durations_ms;
    durations_ms.reserve(static_cast<size_t>(config.samples_per_point));
    for (int i = 0; i < config.samples_per_point; ++i) {
      MicroSecs demand = config.cpu_demand;
      if (config.demand_jitter > 0.0) {
        const double jitter = rng.Uniform(-config.demand_jitter, config.demand_jitter);
        demand = std::max<MicroSecs>(
            1, static_cast<MicroSecs>(static_cast<double>(demand) * (1.0 + jitter)));
      }
      const TaskRunResult r = sim.RunWithRandomPhase(demand, config.wall_limit, rng);
      durations_ms.push_back(MicrosToMillis(r.wall_duration));
    }
    const Summary s = Summarize(durations_ms);
    OverallocPoint pt;
    pt.vcpu_fraction = frac;
    pt.mean_ms = s.mean;
    pt.p5_ms = s.p5;
    out.push_back(pt);
  }

  // Expected curves: reciprocal scaling of the largest-allocation point.
  const OverallocPoint& ref = out.back();
  const double ref_frac = ref.vcpu_fraction;
  for (auto& pt : out) {
    const double scale = ref_frac / pt.vcpu_fraction;
    pt.expected_mean_ms = ref.mean_ms * scale;
    pt.expected_p5_ms = ref.p5_ms * scale;
    pt.overalloc_ratio = pt.mean_ms > 0.0 ? pt.expected_mean_ms / pt.mean_ms : 0.0;
  }
  return out;
}

}  // namespace faascost
