// Configuration of the CPU bandwidth-control simulator (paper §4.2-4.3).
//
// The simulator models the Linux CFS/EEVDF bandwidth-control machinery for a
// single CPU-bound task inside a cgroup:
//   - a quota Q refilled into the cgroup's global runtime pool once per
//     period P by an hrtimer callback,
//   - a per-CPU local pool that acquires runtime from the global pool in
//     slices of min(sched_cfs_bandwidth_slice, remaining),
//   - runtime accounting that happens only at scheduler ticks (CONFIG_HZ)
//     and other accounting events, so a task can overrun its quota between
//     accounting points and accumulate debt (negative local runtime),
//   - throttling onto a throttled queue until a refill covers the debt.

#ifndef FAASCOST_SCHED_CONFIG_H_
#define FAASCOST_SCHED_CONFIG_H_

#include <string>

#include "src/common/units.h"

namespace faascost {

enum class SchedulerKind {
  kCfs,
  // EEVDF performs additional update_curr accounting when checking virtual
  // deadlines, which empirically halves the effective accounting lag (the
  // paper observes "slightly less overrun" under EEVDF at the same HZ). We
  // model this as one extra accounting event per tick interval.
  kEevdf,
};

struct SchedConfig {
  std::string name = "local";
  MicroSecs period = 100 * kMicrosPerMilli;  // cpu.cfs_period_us.
  MicroSecs quota = 100 * kMicrosPerMilli;   // cpu.cfs_quota_us.
  MicroSecs tick = 4 * kMicrosPerMilli;      // 1e6 / CONFIG_HZ.
  MicroSecs slice = 5 * kMicrosPerMilli;     // sched_cfs_bandwidth_slice_us.
  SchedulerKind scheduler = SchedulerKind::kCfs;
  // CFS burst (cpu.cfs_burst_us, Linux 5.14+): unused quota accumulates up
  // to this allowance and can be spent in spikes. 0 disables bursting.
  MicroSecs burst = 0;
  // Symmetric runnable threads on dedicated cores sharing the group quota
  // (multi-vCPU allocations map to quota/period > 1 with several threads).
  int num_threads = 1;

  // External preemption noise from co-tenants: exponentially distributed
  // inter-arrival gaps (mean `noise_mean_gap`) during which the task is
  // suspended for Uniform(noise_min, noise_max) without consuming quota.
  // Disabled when noise_mean_gap == 0.
  MicroSecs noise_mean_gap = 0;
  MicroSecs noise_min = 500;
  MicroSecs noise_max = 2 * kMicrosPerMilli;

  double QuotaFraction() const {
    return period > 0 ? static_cast<double>(quota) / static_cast<double>(period) : 0.0;
  }
};

// Convenience constructors.
SchedConfig MakeSchedConfig(MicroSecs period, double vcpu_fraction, int config_hz,
                            SchedulerKind kind = SchedulerKind::kCfs);

// Platform presets matching the parameters the paper infers empirically
// (Table 3): AWS Lambda P=20 ms / 250 Hz, GCP P=100 ms / 1000 Hz,
// IBM P=10 ms / 250 Hz. GCP additionally shows frequent sub-2 ms preemption
// gaps, modeled as co-tenant noise.
SchedConfig AwsLambdaSched(double vcpu_fraction);
SchedConfig GcpSched(double vcpu_fraction);
SchedConfig IbmSched(double vcpu_fraction);

// In-house VM presets used in §4.3 for local matching runs.
SchedConfig LocalVmSched(MicroSecs period, double vcpu_fraction, int config_hz,
                         SchedulerKind kind);

// AWS Lambda's memory-proportional vCPU fraction (1769 MB per vCPU).
double AwsVcpuFractionForMemory(MegaBytes mem_mb);

}  // namespace faascost

#endif  // FAASCOST_SCHED_CONFIG_H_
