// Scheduling-parameter inference: recovers the CPU bandwidth-control period
// and the scheduler tick frequency from user-space throttle profiles, the
// analysis behind the paper's Table 3 (AWS P=20 ms/250 Hz, GCP P=100 ms/
// 1000 Hz, IBM P=10 ms/250 Hz).
//
// Intervals between throttles are multiples of the enforcement period
// (unthrottling happens only at quota refills), and the CPU bursts obtained
// between throttles are quantized by the accounting tick. The inference
// searches candidate values and picks the coarsest one consistent with the
// observations; sub-2 ms gaps are discarded first as co-tenant preemption
// noise (the paper observes 6.4-14.8% such gaps on GCP).

#ifndef FAASCOST_SCHED_INFERENCE_H_
#define FAASCOST_SCHED_INFERENCE_H_

#include <vector>

#include "src/sched/profiler.h"

namespace faascost {

struct InferredSchedParams {
  double period_ms = 0.0;   // Bandwidth-control period.
  int config_hz = 0;        // Scheduler tick frequency.
  double quota_fraction = 0.0;  // Long-run CPU share = quota / period.
  double match_period = 0.0;    // Fraction of intervals fitting the period.
  double match_tick = 0.0;      // Fraction of runtimes fitting the tick.
};

InferredSchedParams InferSchedParams(const std::vector<ThrottleProfile>& profiles);

// Fraction of samples lying within `tol_ms` of a positive multiple of
// `base_ms` (helper, exposed for testing).
double MultipleMatchFraction(const std::vector<double>& samples_ms, double base_ms,
                             double tol_ms);

}  // namespace faascost

#endif  // FAASCOST_SCHED_INFERENCE_H_
