#include "src/sched/profiler.h"

namespace faascost {

ThrottleProfile ProfileOnce(const CpuBandwidthSim& sim, MicroSecs exec_duration, Rng& rng) {
  ThrottleProfile out;
  const TaskRunResult run = sim.RunWithRandomPhase(kUnlimitedDemand, exec_duration, rng);
  out.exec_duration = run.wall_duration;
  out.cpu_obtained = run.cpu_obtained;
  for (const auto& gap : run.gaps) {
    if (gap.duration > kThrottleDetectThreshold) {
      out.throttle_log.push_back(gap);
    }
  }
  return out;
}

void AccumulateProfile(const ThrottleProfile& profile, ThrottleStats& stats) {
  const auto& log = profile.throttle_log;
  for (size_t i = 0; i < log.size(); ++i) {
    stats.durations_ms.push_back(MicrosToMillis(log[i].duration));
    if (i + 1 < log.size()) {
      const MicroSecs interval = log[i + 1].start - log[i].start;
      stats.intervals_ms.push_back(MicrosToMillis(interval));
      const MicroSecs runtime = log[i + 1].start - (log[i].start + log[i].duration);
      stats.runtimes_ms.push_back(MicrosToMillis(runtime));
    }
  }
}

ThrottleStats ProfileMany(const CpuBandwidthSim& sim, MicroSecs exec_duration,
                          int invocations, Rng& rng) {
  ThrottleStats stats;
  for (int i = 0; i < invocations; ++i) {
    const ThrottleProfile profile = ProfileOnce(sim, exec_duration, rng);
    AccumulateProfile(profile, stats);
  }
  return stats;
}

}  // namespace faascost
