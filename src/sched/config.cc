#include "src/sched/config.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace faascost {

SchedConfig MakeSchedConfig(MicroSecs period, double vcpu_fraction, int config_hz,
                            SchedulerKind kind) {
  // Explicit checks rather than assert: these parameters arrive from CLI
  // flags and experiment configs, and must be rejected in release builds too.
  if (period <= 0) {
    throw std::invalid_argument("MakeSchedConfig: period must be > 0 us, got " +
                                std::to_string(period));
  }
  if (!(vcpu_fraction > 0.0)) {
    throw std::invalid_argument(
        "MakeSchedConfig: vcpu_fraction must be > 0, got " +
        std::to_string(vcpu_fraction));
  }
  if (config_hz <= 0) {
    throw std::invalid_argument("MakeSchedConfig: config_hz must be > 0, got " +
                                std::to_string(config_hz));
  }
  SchedConfig c;
  c.period = period;
  c.quota = std::max<MicroSecs>(
      1, static_cast<MicroSecs>(vcpu_fraction * static_cast<double>(period)));
  c.tick = kMicrosPerSec / config_hz;
  c.scheduler = kind;
  return c;
}

SchedConfig AwsLambdaSched(double vcpu_fraction) {
  SchedConfig c = MakeSchedConfig(20 * kMicrosPerMilli, vcpu_fraction, 250);
  c.name = "AWS Lambda (P=20ms, 250Hz, CFS)";
  return c;
}

SchedConfig GcpSched(double vcpu_fraction) {
  SchedConfig c = MakeSchedConfig(100 * kMicrosPerMilli, vcpu_fraction, 1000);
  c.name = "GCP (P=100ms, 1000Hz, CFS)";
  // GCP shows 6.42-14.83% of gaps shorter than 2 ms -- co-tenant context
  // switches and preemptions within the quota (paper §4.3) -- modeled as
  // noise arriving about every 500 ms of runtime (roughly one short gap per
  // ten 100 ms enforcement cycles).
  c.noise_mean_gap = 500 * kMicrosPerMilli;
  return c;
}

SchedConfig IbmSched(double vcpu_fraction) {
  SchedConfig c = MakeSchedConfig(10 * kMicrosPerMilli, vcpu_fraction, 250);
  c.name = "IBM Code Engine (P=10ms, 250Hz, CFS)";
  return c;
}

SchedConfig LocalVmSched(MicroSecs period, double vcpu_fraction, int config_hz,
                         SchedulerKind kind) {
  SchedConfig c = MakeSchedConfig(period, vcpu_fraction, config_hz, kind);
  c.name = "local VM";
  return c;
}

double AwsVcpuFractionForMemory(MegaBytes mem_mb) {
  return std::min(mem_mb / kAwsLambdaMbPerVcpu, 6.0);
}

}  // namespace faascost
