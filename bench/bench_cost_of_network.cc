// Cost of the network: what data transfer adds to a serverless bill, and
// how topology decisions move money that compute rightsizing cannot touch.
//
// Compute catalogs price the sandbox; the invoice also prices every byte
// that leaves it. Four effects, each measured end-to-end through the
// zone/region topology and the monthly-cumulative transfer meter
// (src/net + src/billing/tiered.h):
//
//   1. The volume ladder — the marginal price of the *same* GB of internet
//      egress at different cumulative monthly positions, across providers.
//      Free allowances and tier cliffs make "what does a GB cost" a
//      stateful question.
//   2. Payload sweep — network share of total fleet spend vs response
//      payload size. At media-sized responses egress dwarfs compute.
//   3. Shuffle placement — the same map-reduce workflow with mappers
//      co-located vs spread across zones: the cross-zone shuffle tax.
//   4. Zonal outage — egress detoured over a backup uplink pays cross-zone
//      charges the healthy route never sees (the chaos consequence).
//
// Pass --json for machine-readable output (one object with per-section
// arrays) instead of the human tables.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/billing/catalog.h"
#include "src/billing/model.h"
#include "src/billing/tiered.h"
#include "src/cluster/fleet_sim.h"
#include "src/common/json_writer.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/net/model.h"
#include "src/trace/generator.h"
#include "src/workflow/dag.h"
#include "src/workflow/workflow_sim.h"

namespace faascost {
namespace {

constexpr uint64_t kSeed = 43;
constexpr int64_t kMb = 1'048'576;
constexpr MicroSecs kSec = kMicrosPerSec;

// --- 1. The volume ladder ---------------------------------------------------

struct LadderRow {
  std::string platform;
  std::vector<double> usd_per_gb;  // Marginal $/GB at each probe position.
};

const std::vector<int64_t>& LadderProbesGb() {
  static const std::vector<int64_t> probes = {0, 50, 150, 1024, 20 * 1024,
                                              200 * 1024};
  return probes;
}

std::vector<LadderRow> LadderTable(bool json) {
  const std::pair<const char*, Platform> providers[] = {
      {"aws", Platform::kAwsLambda},
      {"gcp", Platform::kGcpCloudRunFunctions},
      {"azure", Platform::kAzureConsumption},
      {"oracle", Platform::kOracleFunctions},
  };
  std::vector<LadderRow> rows;
  for (const auto& [name, p] : providers) {
    const NetworkPricing pricing = MakeNetworkPricing(p);
    const TieredSchedule& egress =
        pricing.transfer[static_cast<size_t>(TransferClass::kInternetEgress)];
    LadderRow row;
    row.platform = name;
    for (const int64_t gb : LadderProbesGb()) {
      // Marginal price of one more GB when `gb` GB already shipped this month.
      row.usd_per_gb.push_back(TieredCost(egress, gb * kBytesPerGb, kBytesPerGb));
    }
    rows.push_back(std::move(row));
  }
  if (!json) {
    PrintHeader("Marginal internet-egress $/GB vs cumulative monthly volume");
    std::vector<std::string> head = {"platform"};
    for (const int64_t gb : LadderProbesGb()) {
      char cell[32];
      std::snprintf(cell, sizeof(cell), "@%lld GB", static_cast<long long>(gb));
      head.push_back(cell);
    }
    TextTable t(head);
    for (const LadderRow& r : rows) {
      std::vector<std::string> cells = {r.platform};
      for (const double usd : r.usd_per_gb) {
        cells.push_back(FormatDouble(usd, 4));
      }
      t.AddRow(cells);
    }
    std::printf("%s", t.Render().c_str());
    std::printf("  The same GB is free, $0.09, or $0.05 on AWS depending on\n"
                "  position; Oracle's 10 TB allowance zeroes typical tenants.\n");
  }
  return rows;
}

// --- 2. Payload sweep -------------------------------------------------------

struct PayloadRow {
  double resp_kb = 0.0;
  Usd compute_usd = 0.0;
  Usd network_usd = 0.0;
  double network_share = 0.0;
};

std::vector<PayloadRow> PayloadSweep(bool json) {
  std::vector<PayloadRow> rows;
  for (const double resp_kb : {16.0, 64.0, 256.0, 1024.0}) {
    TraceGenConfig tcfg;
    tcfg.num_requests = 5'000;
    tcfg.num_functions = 50;
    tcfg.window = 120 * kSec;
    tcfg.payload_request_mean_kb = 8.0;
    tcfg.payload_response_mean_kb = resp_kb;
    const auto trace = TraceGenerator(tcfg, kSeed).Generate();

    NetworkModelConfig ncfg;
    ncfg.topology.zones = 3;
    ncfg.topology.zones_per_region = 3;
    NetworkModel net(ncfg, MakeNetworkPricing(Platform::kAwsLambda), kSeed);
    FleetSimConfig fcfg;
    fcfg.network = &net;
    const BillingModel billing = MakeBillingModel(Platform::kAwsLambda);
    const FleetResult r = SimulateFleet(trace, billing, fcfg);

    PayloadRow row;
    row.resp_kb = resp_kb;
    row.compute_usd = r.revenue;
    row.network_usd = net.bill().TotalUsd();
    const Usd total = row.compute_usd + row.network_usd;
    row.network_share = total > 0.0 ? row.network_usd / total : 0.0;
    rows.push_back(row);
  }
  if (!json) {
    PrintHeader("Network share of fleet spend vs response payload (AWS)");
    TextTable t({"resp KB", "compute+fees $", "network $", "network share"});
    for (const PayloadRow& r : rows) {
      t.AddRow({FormatDouble(r.resp_kb, 0), FormatSci(r.compute_usd, 3),
                FormatSci(r.network_usd, 3), FormatPercent(r.network_share, 1)});
    }
    std::printf("%s", t.Render().c_str());
  }
  return rows;
}

// --- 3. Shuffle placement ---------------------------------------------------

struct PlacementRow {
  std::string placement;
  Usd usd_network = 0.0;
  Usd usd_total = 0.0;
  MicroSecs mean_end = 0;
};

WorkflowSimConfig ShuffleConfig(bool spread) {
  HopSpec proto;
  WorkflowDag dag = MakeMapReduceDag("mr", 6, proto);
  if (!spread) {
    for (HopSpec& hop : dag.hops) {
      hop.zone = 0;  // Co-locate the whole shuffle in one zone.
    }
  }
  ApplyUniformPayloads(dag, /*input=*/2 * kMb, /*edge=*/32 * kMb, /*output=*/kMb);
  WorkflowSimConfig cfg;
  cfg.dags.push_back(std::move(dag));
  cfg.workflows = 100;
  cfg.wps = 4.0;
  cfg.zones = 3;
  cfg.pricing = MakeWorkflowPricing(Platform::kAwsLambda);
  return cfg;
}

PlacementRow RunShuffle(const char* label, bool spread,
                        std::vector<NetOutage> outages = {}) {
  NetworkModelConfig ncfg;
  ncfg.topology.zones = 3;
  ncfg.topology.zones_per_region = 3;
  ncfg.outages = std::move(outages);
  NetworkModel net(ncfg, MakeNetworkPricing(Platform::kAwsLambda), kSeed);
  WorkflowSimConfig cfg = ShuffleConfig(spread);
  cfg.network = &net;
  const BillingModel billing = MakeBillingModel(Platform::kAwsLambda);
  const WorkflowSimResult r = SimulateWorkflows(cfg, billing, kSeed);
  PlacementRow row;
  row.placement = label;
  row.usd_network = r.usd_network;
  row.usd_total = r.usd_total;
  int64_t sum_end = 0;
  for (const WorkflowRow& w : r.workflows) {
    sum_end += w.end - w.arrival;
  }
  row.mean_end = r.workflows.empty()
                     ? 0
                     : sum_end / static_cast<int64_t>(r.workflows.size());
  return row;
}

std::vector<PlacementRow> PlacementTable(bool json) {
  std::vector<PlacementRow> rows;
  rows.push_back(RunShuffle("co-located", /*spread=*/false));
  rows.push_back(RunShuffle("zone-spread", /*spread=*/true));
  if (!json) {
    PrintHeader("Map-reduce shuffle: co-located vs zone-spread mappers (AWS)");
    TextTable t({"placement", "network $", "total $", "mean wf ms"});
    for (const PlacementRow& r : rows) {
      t.AddRow({r.placement, FormatSci(r.usd_network, 4), FormatSci(r.usd_total, 4),
                FormatDouble(MicrosToMillis(r.mean_end), 1)});
    }
    std::printf("%s", t.Render().c_str());
    if (rows[0].usd_network > 0.0) {
      std::printf("  Shuffle tax: %.1fx network spend for crossing zones.\n",
                  rows[1].usd_network / rows[0].usd_network);
    }
  }
  return rows;
}

// --- 4. Zonal outage --------------------------------------------------------

struct OutageRow {
  std::string scenario;
  Usd usd_network = 0.0;
  Usd detour_usd = 0.0;
  int64_t rerouted = 0;
  MicroSecs mean_end = 0;
};

std::vector<OutageRow> OutageTable(bool json) {
  std::vector<OutageRow> rows;
  const auto run = [&](const char* label, std::vector<NetOutage> outages) {
    NetworkModelConfig ncfg;
    ncfg.topology.zones = 3;
    ncfg.topology.zones_per_region = 3;
    ncfg.outages = std::move(outages);
    NetworkModel net(ncfg, MakeNetworkPricing(Platform::kAwsLambda), kSeed);
    WorkflowSimConfig cfg = ShuffleConfig(/*spread=*/true);
    cfg.network = &net;
    const BillingModel billing = MakeBillingModel(Platform::kAwsLambda);
    const WorkflowSimResult r = SimulateWorkflows(cfg, billing, kSeed);
    OutageRow row;
    row.scenario = label;
    row.usd_network = r.usd_network;
    row.detour_usd = r.usd_network_detour;
    row.rerouted = net.bill().rerouted_transfers;
    int64_t sum_end = 0;
    for (const WorkflowRow& w : r.workflows) {
      sum_end += w.end - w.arrival;
    }
    row.mean_end = r.workflows.empty()
                       ? 0
                       : sum_end / static_cast<int64_t>(r.workflows.size());
    rows.push_back(row);
  };
  run("healthy", {});
  // Zone 0 hosts the region's internet uplink; a whole-run outage forces
  // every egress byte over the backup and onto the cross-zone meter.
  run("zone-0 outage", {{/*zone=*/0, /*start=*/0, /*duration=*/100'000 * kSec}});
  if (!json) {
    PrintHeader("Zonal network outage: the egress-cost consequence (AWS)");
    TextTable t({"scenario", "network $", "detour $", "rerouted", "mean wf ms"});
    for (const OutageRow& r : rows) {
      t.AddRow({r.scenario, FormatSci(r.usd_network, 4), FormatSci(r.detour_usd, 4),
                std::to_string(r.rerouted),
                FormatDouble(MicrosToMillis(r.mean_end), 1)});
    }
    std::printf("%s", t.Render().c_str());
    std::printf("  Chaos bills twice: capacity kills re-run compute, and the\n"
                "  surviving traffic detours onto priced cross-zone links.\n");
  }
  return rows;
}

}  // namespace
}  // namespace faascost

int main(int argc, char** argv) {
  using namespace faascost;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    }
  }
  const auto ladder = LadderTable(json);
  const auto payload = PayloadSweep(json);
  const auto placement = PlacementTable(json);
  const auto outage = OutageTable(json);
  if (json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("egress_ladder");
    w.BeginArray();
    for (const LadderRow& r : ladder) {
      w.BeginObject();
      w.KV("platform", r.platform);
      w.Key("usd_per_gb");
      w.BeginArray();
      for (const double usd : r.usd_per_gb) {
        w.Value(usd);
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.Key("payload_sweep");
    w.BeginArray();
    for (const PayloadRow& r : payload) {
      w.BeginObject();
      w.KV("resp_kb", r.resp_kb);
      w.KV("compute_usd", r.compute_usd);
      w.KV("network_usd", r.network_usd);
      w.KV("network_share", r.network_share);
      w.EndObject();
    }
    w.EndArray();
    w.Key("placement");
    w.BeginArray();
    for (const PlacementRow& r : placement) {
      w.BeginObject();
      w.KV("placement", r.placement);
      w.KV("network_usd", r.usd_network);
      w.KV("total_usd", r.usd_total);
      w.KV("mean_wf_ms", MicrosToMillis(r.mean_end));
      w.EndObject();
    }
    w.EndArray();
    w.Key("outage");
    w.BeginArray();
    for (const OutageRow& r : outage) {
      w.BeginObject();
      w.KV("scenario", r.scenario);
      w.KV("network_usd", r.usd_network);
      w.KV("detour_usd", r.detour_usd);
      w.KV("rerouted_transfers", r.rerouted);
      w.KV("mean_wf_ms", MicrosToMillis(r.mean_end));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  }
  return 0;
}
