// Cost of workflows: what DAG orchestration adds on top of single-call
// billing, and what each resilience policy costs or saves.
//
// A workflow multiplies every single-call pathology by its depth and then
// adds failure modes of its own: a mid-chain failure bills every upstream
// hop, a retry at hop k re-pays hops 1..k-1's sunk cost, the orchestrator
// charges per state transition (AWS Step Functions: $25 per million —
// dwarfing the invocation fee), hedged requests double-bill when the
// cancellation loses the race, quorum joins leave straggler branches
// running on the meter, and dead-lettered async hops pay for every redrive
// plus the DLQ storage ops. This bench measures four of those effects:
//
//   1. Depth compounding — cost per successful workflow vs chain length,
//      against N independent un-orchestrated calls.
//   2. Failure x retry sweep on a 5-hop chain — billed waste share.
//   3. Deadline budgets vs naive per-hop timeouts at the same total budget —
//      propagated budgets fail fast (unbilled) instead of billing a timeout
//      at every hop boundary.
//   4. Hedging — tail-latency reduction bought with hedge-loser dollars.
//
// Pass --json for machine-readable output (one object with per-section
// arrays) instead of the human tables.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/billing/catalog.h"
#include "src/billing/model.h"
#include "src/common/json_writer.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/workflow/dag.h"
#include "src/workflow/policy.h"
#include "src/workflow/workflow_sim.h"

namespace faascost {
namespace {

constexpr int64_t kWorkflows = 400;
constexpr uint64_t kSeed = 31;

struct WfStats {
  double cost_per_success = 0.0;
  Usd total = 0.0;
  Usd wasted = 0.0;
  Usd hedge_losers_usd = 0.0;
  int64_t successes = 0;
  int64_t failed = 0;
  int64_t attempts = 0;
  int64_t fail_fast = 0;
  int64_t hedge_wins = 0;
  int64_t hedge_losers = 0;
  MicroSecs p50 = 0;
  MicroSecs p99 = 0;
};

WfStats Summarize(const WorkflowSimResult& res) {
  WfStats out;
  out.total = res.usd_total;
  out.wasted = res.usd_wasted;
  out.hedge_losers_usd = res.usd_hedge_losers;
  out.successes = res.counters.workflows_succeeded;
  out.failed = res.counters.workflows_failed;
  out.attempts = static_cast<int64_t>(res.attempts.size());
  out.fail_fast = res.counters.fail_fast;
  out.hedge_wins = res.counters.hedge_wins;
  out.hedge_losers = res.counters.hedge_losers;
  if (out.successes > 0) {
    out.cost_per_success = res.usd_total / static_cast<double>(out.successes);
  }
  std::vector<MicroSecs> lat;
  lat.reserve(res.workflows.size());
  for (const WorkflowRow& row : res.workflows) {
    if (row.outcome == Outcome::kOk) {
      lat.push_back(row.end - row.arrival);
    }
  }
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    out.p50 = lat[lat.size() / 2];
    out.p99 = lat[(lat.size() * 99) / 100];
  }
  return out;
}

// A `length`-hop chain run. `priced` toggles orchestration fees: with it off
// the run models N direct invocations glued client-side (the single-call
// baseline); with it on, the orchestrator bills every state transition.
WfStats RunChain(int length, double rate, int max_attempts, bool priced,
                 const WorkflowPolicy& extra, uint64_t seed) {
  WorkflowSimConfig cfg;
  HopSpec proto;
  cfg.dags.push_back(MakeChainDag("chain", length, proto));
  cfg.workflows = kWorkflows;
  cfg.wps = 4.0;
  cfg.failure_rate = rate;
  cfg.init_failure_rate = rate / 4.0;
  cfg.policy = extra;
  cfg.policy.retry.max_attempts = max_attempts;
  if (priced) {
    cfg.pricing = MakeWorkflowPricing(Platform::kAwsLambda);
  }
  const BillingModel billing = MakeBillingModel(Platform::kAwsLambda);
  return Summarize(SimulateWorkflows(cfg, billing, seed));
}

struct DepthRow {
  int length = 1;
  WfStats stats;
  double vs_single = 0.0;      // cost/success over one bare call.
  double amplification = 0.0;  // cost/success over `length` bare calls.
};

// Section 1: chain depth. The baseline is one un-orchestrated invocation
// (same function, same retry policy, no transition fees); an L-hop
// orchestrated chain should cost more than L of those because transition
// fees and upstream re-billing compound with depth.
std::vector<DepthRow> DepthTable(bool json) {
  const double rate = 0.05;
  const int max_attempts = 3;
  const WfStats single =
      RunChain(1, rate, max_attempts, /*priced=*/false, WorkflowPolicy(), kSeed);
  std::vector<DepthRow> rows;
  TextTable table({"hops", "attempts", "ok", "billed $", "wasted share",
                   "$/success", "x single call", "x (hops * single)"});
  for (const int length : {1, 2, 3, 5, 8}) {
    DepthRow row;
    row.length = length;
    row.stats = RunChain(length, rate, max_attempts, /*priced=*/true,
                         WorkflowPolicy(), kSeed);
    if (single.cost_per_success > 0.0 && row.stats.cost_per_success > 0.0) {
      row.vs_single = row.stats.cost_per_success / single.cost_per_success;
      row.amplification = row.vs_single / static_cast<double>(length);
    }
    rows.push_back(row);
    const WfStats& s = row.stats;
    table.AddRow({FormatDouble(length, 0), FormatDouble(s.attempts, 0),
                  FormatDouble(static_cast<double>(s.successes), 0),
                  FormatDouble(s.total, 6),
                  FormatPercent(s.total > 0 ? s.wasted / s.total : 0.0, 1),
                  FormatSci(s.cost_per_success, 3), FormatDouble(row.vs_single, 2) + "x",
                  FormatDouble(row.amplification, 3) + "x"});
  }
  if (!json) {
    PrintHeader("Depth compounding: chain length vs one bare invocation "
                "(AWS, 5% failures, 3 attempts)");
    std::printf("single bare call: $%.3g per success (no orchestration fees)\n",
                single.cost_per_success);
    std::printf("%s", table.Render().c_str());
  }
  return rows;
}

struct SweepRow {
  double rate = 0.0;
  int max_attempts = 1;
  WfStats stats;
  double inflation = 0.0;
};

// Section 2: failure rate x retry budget on a fixed 5-hop chain. Inflation is
// cost per successful workflow over the zero-failure run with the same retry
// policy — isolating how much retries at hop k re-pay the upstream hops.
std::vector<SweepRow> FailureSweep(bool json) {
  std::vector<SweepRow> rows;
  for (const int max_attempts : {1, 3}) {
    TextTable table({"failure rate", "attempts", "ok", "billed $", "wasted share",
                     "$/success", "inflation"});
    double baseline = 0.0;
    bool have_baseline = false;
    for (const double rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
      SweepRow row;
      row.rate = rate;
      row.max_attempts = max_attempts;
      row.stats =
          RunChain(5, rate, max_attempts, /*priced=*/true, WorkflowPolicy(), kSeed);
      if (!have_baseline) {
        baseline = row.stats.cost_per_success;  // First point is fault-free.
        have_baseline = true;
      }
      row.inflation = baseline > 0.0 && row.stats.cost_per_success > 0.0
                          ? row.stats.cost_per_success / baseline
                          : 0.0;
      rows.push_back(row);
      const WfStats& s = row.stats;
      table.AddRow({FormatPercent(rate, 0), FormatDouble(s.attempts, 0),
                    FormatDouble(static_cast<double>(s.successes), 0),
                    FormatDouble(s.total, 6),
                    FormatPercent(s.total > 0 ? s.wasted / s.total : 0.0, 1),
                    s.successes > 0 ? FormatSci(s.cost_per_success, 3)
                                    : std::string("n/a"),
                    s.successes > 0 ? FormatDouble(row.inflation, 3) + "x"
                                    : std::string("n/a")});
    }
    if (!json) {
      std::printf("\nRetry policy: %d attempt(s) per hop\n", max_attempts);
      std::printf("%s", table.Render().c_str());
    }
  }
  return rows;
}

struct DeadlineRow {
  std::string variant;
  MicroSecs budget = 0;
  WfStats stats;
};

// Section 3: the same total latency budget spent two ways on a 5-hop chain
// with heavy-tailed executions (cv = 1.0). "naive" slices it into per-hop
// timeouts (budget/5 each): a tail-case hop runs to its slice and bills the
// full cut, the retry re-bills it, and unspent slack from fast hops is
// thrown away. "budget" propagates the remaining end-to-end deadline: a
// slow hop may spend slack the fast hops left behind, and once the budget
// is exhausted the remaining hops fail fast without ever reaching the
// platform (unbilled by policy design).
std::vector<DeadlineRow> DeadlineTable(bool json) {
  const double rate = 0.02;
  const int hops = 5;
  std::vector<DeadlineRow> rows;
  TextTable table({"variant", "budget ms", "ok", "fail-fast", "billed $",
                   "wasted $", "wasted share", "$/success"});
  for (const MicroSecs budget_ms : {1000, 1500, 2500}) {
    for (const bool propagated : {false, true}) {
      DeadlineRow row;
      row.variant = propagated ? "budget" : "naive";
      row.budget = budget_ms * kMicrosPerMilli;
      WorkflowSimConfig cfg;
      HopSpec proto;
      proto.exec_cv = 1.0;
      if (!propagated) {
        proto.timeout = row.budget / hops;
      }
      cfg.dags.push_back(MakeChainDag("chain", hops, proto));
      cfg.workflows = kWorkflows;
      cfg.wps = 4.0;
      cfg.failure_rate = rate;
      cfg.init_failure_rate = rate / 4.0;
      cfg.policy.retry.max_attempts = 3;
      if (propagated) {
        cfg.policy.deadline.deadline = row.budget;
        cfg.policy.deadline.propagate = true;
      }
      cfg.pricing = MakeWorkflowPricing(Platform::kAwsLambda);
      row.stats =
          Summarize(SimulateWorkflows(cfg, MakeBillingModel(Platform::kAwsLambda), kSeed));
      rows.push_back(row);
      const WfStats& s = row.stats;
      table.AddRow({row.variant, FormatDouble(static_cast<double>(budget_ms), 0),
                    FormatDouble(static_cast<double>(s.successes), 0),
                    FormatDouble(static_cast<double>(s.fail_fast), 0),
                    FormatDouble(s.total, 6), FormatDouble(s.wasted, 6),
                    FormatPercent(s.total > 0 ? s.wasted / s.total : 0.0, 1),
                    s.successes > 0 ? FormatSci(s.cost_per_success, 3)
                                    : std::string("n/a")});
    }
  }
  if (!json) {
    PrintHeader("Deadline budgets vs naive per-hop timeouts (5-hop chain, "
                "cv=1.0, 2% failures)");
    std::printf("%s", table.Render().c_str());
  }
  return rows;
}

struct HedgeRow {
  MicroSecs init_mean = 0;
  MicroSecs hedge_after = 0;
  WfStats stats;
  int64_t cold_starts = 0;
};

// Section 4: hedged requests on a high-variance 3-hop chain, in two
// cold-start regimes. With cheap inits, hedging buys tail latency with
// hedge-loser dollars — the classic trade. With 400 ms cold inits the same
// policy backfires: a cold start alone exceeds the hedge threshold, so the
// engine hedges cold starts, the hedges themselves cold-start, and each
// cancellation destroys a warm sandbox — inflating the tail it was meant to
// cut along with the bill.
std::vector<HedgeRow> HedgeTable(bool json) {
  std::vector<HedgeRow> rows;
  for (const MicroSecs init_ms : {50, 400}) {
    TextTable table({"hedge after ms", "cold starts", "p50 ms", "p99 ms",
                     "hedge wins", "losers", "loser $", "billed $"});
    for (const MicroSecs hedge_ms : {0, 200, 400}) {
      HedgeRow row;
      row.init_mean = init_ms * kMicrosPerMilli;
      row.hedge_after = hedge_ms * kMicrosPerMilli;
      WorkflowSimConfig cfg;
      HopSpec proto;
      proto.exec_cv = 1.0;  // Heavy tail: hedging has something to cut.
      cfg.dags.push_back(MakeChainDag("chain", 3, proto));
      cfg.workflows = kWorkflows;
      cfg.wps = 4.0;
      cfg.failure_rate = 0.02;
      cfg.init_failure_rate = 0.005;
      cfg.init_mean = row.init_mean;
      cfg.policy.retry.max_attempts = 3;
      cfg.policy.hedge.hedge_after = row.hedge_after;
      cfg.pricing = MakeWorkflowPricing(Platform::kAwsLambda);
      WorkflowSimResult res =
          SimulateWorkflows(cfg, MakeBillingModel(Platform::kAwsLambda), kSeed);
      row.stats = Summarize(res);
      row.cold_starts = res.counters.cold_starts;
      rows.push_back(row);
      const WfStats& s = row.stats;
      table.AddRow({FormatDouble(static_cast<double>(hedge_ms), 0),
                    FormatDouble(static_cast<double>(row.cold_starts), 0),
                    FormatDouble(static_cast<double>(s.p50) / kMicrosPerMilli, 0),
                    FormatDouble(static_cast<double>(s.p99) / kMicrosPerMilli, 0),
                    FormatDouble(static_cast<double>(s.hedge_wins), 0),
                    FormatDouble(static_cast<double>(s.hedge_losers), 0),
                    FormatDouble(s.hedge_losers_usd, 6), FormatDouble(s.total, 6)});
    }
    if (!json) {
      if (init_ms == 50) {
        PrintHeader("Hedged requests: tail latency bought with hedge-loser "
                    "dollars (3-hop chain, cv=1.0)");
      }
      std::printf("\nCold init: %lld ms %s\n", static_cast<long long>(init_ms),
                  init_ms >= 400 ? "(cold start alone crosses the hedge threshold)"
                                 : "");
      std::printf("%s", table.Render().c_str());
    }
  }
  return rows;
}

void WriteStatsJson(const WfStats& s, JsonWriter* w) {
  w->KV("attempts", s.attempts);
  w->KV("successes", s.successes);
  w->KV("failed", s.failed);
  w->KV("billed_usd", s.total);
  w->KV("wasted_usd", s.wasted);
  w->KV("cost_per_success", s.cost_per_success);
}

}  // namespace
}  // namespace faascost

int main(int argc, char** argv) {
  using namespace faascost;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    }
  }
  const auto depth = DepthTable(json);
  if (!json) {
    PrintHeader("Failure x retry budget on a 5-hop chain (AWS)");
  }
  const auto sweep = FailureSweep(json);
  const auto deadline = DeadlineTable(json);
  const auto hedge = HedgeTable(json);
  if (json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("depth");
    w.BeginArray();
    for (const DepthRow& r : depth) {
      w.BeginObject();
      w.KV("hops", r.length);
      w.KV("vs_single_call", r.vs_single);
      w.KV("amplification", r.amplification);
      WriteStatsJson(r.stats, &w);
      w.EndObject();
    }
    w.EndArray();
    w.Key("failure_sweep");
    w.BeginArray();
    for (const SweepRow& r : sweep) {
      w.BeginObject();
      w.KV("failure_rate", r.rate);
      w.KV("max_attempts", r.max_attempts);
      w.KV("inflation", r.inflation);
      WriteStatsJson(r.stats, &w);
      w.EndObject();
    }
    w.EndArray();
    w.Key("deadline");
    w.BeginArray();
    for (const DeadlineRow& r : deadline) {
      w.BeginObject();
      w.KV("variant", r.variant);
      w.KV("budget_ms", r.budget / kMicrosPerMilli);
      w.KV("fail_fast", r.stats.fail_fast);
      WriteStatsJson(r.stats, &w);
      w.EndObject();
    }
    w.EndArray();
    w.Key("hedge");
    w.BeginArray();
    for (const HedgeRow& r : hedge) {
      w.BeginObject();
      w.KV("init_ms", r.init_mean / kMicrosPerMilli);
      w.KV("cold_starts", r.cold_starts);
      w.KV("hedge_after_ms", r.hedge_after / kMicrosPerMilli);
      w.KV("p50_ms", r.stats.p50 / kMicrosPerMilli);
      w.KV("p99_ms", r.stats.p99 / kMicrosPerMilli);
      w.KV("hedge_wins", r.stats.hedge_wins);
      w.KV("hedge_losers", r.stats.hedge_losers);
      w.KV("hedge_loser_usd", r.stats.hedge_losers_usd);
      WriteStatsJson(r.stats, &w);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf(
      "\nReading: orchestration multiplies single-call costs by depth and then\n"
      "some — transition fees dominate short invocations, and a retry at hop k\n"
      "re-pays every upstream hop. Propagated deadline budgets convert billed\n"
      "per-hop timeouts into unbilled fail-fasts; hedging trades hedge-loser\n"
      "dollars for tail latency — unless cold starts cross the hedge threshold,\n"
      "in which case the hedges cold-start too and the policy inflates both.\n");
  return 0;
}
