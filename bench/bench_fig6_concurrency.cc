// Reproduces Fig. 6: the cost implications of the concurrency model.
// Left: mean reported execution duration of a PyAES-like function (160 ms of
// CPU, 1 vCPU) under 120 s bursts at increasing request rates, on a
// single-concurrency platform (AWS-like) vs a multi-concurrency platform
// (GCP-like, concurrency limit 80, 60% CPU target).
// Right: the first five minutes of a steady 15 RPS run on the
// multi-concurrency platform -- execution duration and instance count over
// time, showing the ~40 s metric-window scaling delay.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/platform/presets.h"

namespace faascost {
namespace {

double MeanReportedMs(const PlatformSimResult& r, MicroSecs from = 0) {
  RunningStats s;
  for (const auto& o : r.requests) {
    if (o.arrival >= from) {
      s.Add(MicrosToMillis(o.reported_duration));
    }
  }
  return s.mean();
}

}  // namespace
}  // namespace faascost

int main() {
  using namespace faascost;
  const WorkloadSpec wl = PyAesWorkload();
  constexpr MicroSecs kSec = kMicrosPerSec;

  PrintHeader("Fig. 6-left: Execution duration vs request rate (120 s bursts)");
  TextTable table({"RPS", "AWS-like (single-conc) mean ms", "GCP-like (multi-conc) mean ms",
                   "GCP slowdown vs 1 RPS"});
  double gcp_base = 0.0;
  bool have_gcp_base = false;
  double max_slowdown = 0.0;
  for (double rps : {1.0, 2.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0}) {
    Rng arrivals_rng(static_cast<uint64_t>(rps * 100));
    const auto arrivals = PoissonArrivals(rps, 120 * kSec, arrivals_rng);

    PlatformSim aws(AwsLambdaPlatform(1.0, 1'769.0), 1);
    const double aws_ms = MeanReportedMs(aws.Run(arrivals, wl));

    PlatformSim gcp(GcpPlatform(1.0, 1'024.0), 2);
    const double gcp_ms = MeanReportedMs(gcp.Run(arrivals, wl));
    if (!have_gcp_base) {
      gcp_base = gcp_ms;  // First sweep point (1 RPS) is the baseline.
      have_gcp_base = true;
    }
    const double slowdown = gcp_ms / gcp_base;
    max_slowdown = std::max(max_slowdown, slowdown);
    table.AddRow({FormatDouble(rps, 0), FormatDouble(aws_ms, 1), FormatDouble(gcp_ms, 1),
                  FormatDouble(slowdown, 2) + "x"});
  }
  std::printf("%s", table.Render().c_str());
  PrintPaperVsMeasured("Max GCP slowdown under burst (paper: up to 9.65x)", 9.65,
                       max_slowdown, "x");
  std::printf(
      "\nPaper: AWS stays flat at all rates (dedicated sandboxes); GCP's\n"
      "duration rises up to 9.65x above 6 RPS (the single-instance capacity\n"
      "for a 160 ms function) because instance scaling lags the burst. Our\n"
      "processor-sharing model lets requests pile deeper than the real\n"
      "platform before scaling, so the slowdown overshoots at the highest\n"
      "rates; the capacity knee at ~6 RPS matches.\n");

  PrintHeader("Fig. 6-right: Steady 15 RPS on the multi-concurrency platform");
  Rng steady_rng(15);
  const auto steady = PoissonArrivals(15.0, 300 * kSec, steady_rng);
  PlatformSim gcp(GcpPlatform(1.0, 1'024.0), 3);
  const auto result = gcp.Run(steady, wl);

  // Mean duration per 10 s bucket plus the sampled instance count.
  TextTable timeline({"t (s)", "mean exec duration (ms)", "instances"});
  std::vector<RunningStats> buckets(30);
  for (const auto& o : result.requests) {
    const size_t b = static_cast<size_t>(o.arrival / (10 * kSec));
    if (b < buckets.size()) {
      buckets[b].Add(MicrosToMillis(o.reported_duration));
    }
  }
  std::vector<int> instances(30, 0);
  for (const auto& s : result.timeline) {
    const size_t b = static_cast<size_t>(s.time / (10 * kSec));
    if (b < instances.size()) {
      instances[b] = std::max(instances[b], s.instances);
    }
  }
  MicroSecs first_scale = -1;
  for (const auto& s : result.timeline) {
    if (s.instances > 1) {
      first_scale = s.time;
      break;
    }
  }
  for (size_t b = 0; b < buckets.size(); ++b) {
    timeline.AddRow({std::to_string(b * 10), FormatDouble(buckets[b].mean(), 1),
                     std::to_string(instances[b])});
  }
  std::printf("%s", timeline.Render().c_str());

  PlatformSim base_sim(GcpPlatform(1.0, 1'024.0), 4);
  Rng base_rng(99);
  const double base_ms =
      MeanReportedMs(base_sim.Run(PoissonArrivals(1.0, 120 * kSec, base_rng), wl));
  const double steady_ms = MeanReportedMs(result, 200 * kSec);
  PrintPaperVsMeasured("Scaling starts at (paper: ~40 s)", 40.0,
                       first_scale > 0 ? MicrosToSecs(first_scale) : -1.0, "s");
  PrintPaperVsMeasured("Steady-state duration vs 1 RPS (paper: 1.43x)", 1.43,
                       steady_ms / base_ms, "x");
  PrintPaperVsMeasured("Paper steady duration 239.29 ms vs 166.78 ms baseline; ours",
                       239.29, steady_ms, "ms");
  return 0;
}
