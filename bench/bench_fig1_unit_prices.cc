// Reproduces Fig. 1 (per-unit vCPU and memory prices across platforms) and
// the §1 Lambda-vs-EC2-vs-Fargate price comparison, plus the §2.2
// CPU-to-memory price-ratio analysis.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/billing/catalog.h"
#include "src/common/table.h"

int main() {
  using namespace faascost;

  PrintHeader("Fig. 1: Effective per-unit vCPU and memory prices");
  TextTable table({"Platform", "$ per vCPU-s", "$ per GB-s", "CPU pricing"});
  for (Platform p : AllPlatforms()) {
    const UnitPrices up = EffectiveUnitPrices(p);
    table.AddRow({PlatformName(p), FormatSci(up.per_vcpu_second, 2),
                  up.per_gb_second > 0.0 ? FormatSci(up.per_gb_second, 2)
                                         : std::string("not billed"),
                  up.cpu_embedded ? "embedded in memory price" : "separate line item"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nPaper observation: per-unit resource prices are similar across\n"
              "platforms; the high price of serverless is not one provider's\n"
              "billing strategy.\n");

  PrintHeader("Section 1: Lambda vs EC2 vs Fargate (identical ARM hardware)");
  const auto cmp = MakeSection1Comparison();
  TextTable c({"Service", "$ per second", "% of Lambda", "Invocation fee"});
  const double lambda = cmp[0].per_second;
  for (const auto& row : cmp) {
    c.AddRow({row.service, FormatSci(row.per_second, 4),
              FormatPercent(row.per_second / lambda, 1),
              row.invocation_fee > 0.0 ? FormatSci(row.invocation_fee, 1)
                                       : std::string("none")});
  }
  std::printf("%s", c.Render().c_str());
  PrintPaperVsMeasured("EC2 price as % of Lambda", 41.1,
                       cmp[1].per_second / lambda * 100.0, "%");
  PrintPaperVsMeasured("Fargate price as % of Lambda", 47.8,
                       cmp[2].per_second / lambda * 100.0, "%");

  PrintHeader("Section 2.2: CPU:memory unit-price ratio (paper: 9 to 9.64)");
  TextTable r({"Platform", "vCPU-s price / GB-s price"});
  for (Platform p :
       {Platform::kGcpCloudRunFunctions, Platform::kIbmCodeEngine,
        Platform::kAlibabaFunctionCompute}) {
    const auto ratio = CpuMemPriceRatio(p);
    if (ratio.has_value()) {
      r.AddRow({PlatformName(p), FormatDouble(*ratio, 2)});
    }
  }
  const UnitPrices fargate = FargateUnitPrices();
  r.AddRow({"AWS Fargate (container hosting)",
            FormatDouble(fargate.per_vcpu_second / fargate.per_gb_second, 2)});
  std::printf("%s", r.Render().c_str());
  return 0;
}
