// Reproduces Fig. 5: (left) invocation fees converted to equivalent billable
// wall-clock time per platform; (right) mean rounded-up billable time and
// memory under the studied billing granularities, over trace requests with
// execution time >= 1 ms.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/billing/analysis.h"
#include "src/billing/catalog.h"
#include "src/common/table.h"
#include "src/trace/generator.h"

int main() {
  using namespace faascost;

  PrintHeader("Fig. 5-left: Invocation fee as equivalent billable wall-clock time");
  TextTable fees({"Platform", "Config", "Fee (USD)", "Equivalent billable time"});
  struct FeeCase {
    Platform platform;
    double vcpus;
    MegaBytes mem;
    const char* label;
  };
  const FeeCase cases[] = {
      {Platform::kAwsLambda, 0.0, 128.0, "128 MB (default)"},
      {Platform::kAwsLambda, 0.0, 1'769.0, "1769 MB (1 vCPU)"},
      {Platform::kGcpCloudRunFunctions, 0.5, 512.0, "0.5 vCPU / 512 MB"},
      {Platform::kGcpCloudRunFunctions, 1.0, 1'024.0, "1 vCPU / 1 GB"},
      {Platform::kAzureConsumption, 1.0, 1'536.0, "fixed 1 vCPU / 1.5 GB"},
      {Platform::kAlibabaFunctionCompute, 0.5, 512.0, "0.5 vCPU / 512 MB"},
      {Platform::kVercelFunctions, 0.0, 1'024.0, "1 GB"},
      {Platform::kCloudflareWorkers, 1.0, 128.0, "per-request isolate"},
  };
  for (const auto& c : cases) {
    const BillingModel m = MakeBillingModel(c.platform);
    const SnappedAllocation alloc = SnapAllocation(m, c.vcpus, c.mem);
    fees.AddRow({m.platform, c.label, FormatSci(m.invocation_fee, 1),
                 FormatDouble(FeeEquivalentMillis(m, alloc), 2) + " ms"});
  }
  std::printf("%s", fees.Render().c_str());
  {
    const BillingModel aws = MakeBillingModel(Platform::kAwsLambda);
    const SnappedAllocation a128 = SnapAllocation(aws, 0.0, 128.0);
    PrintPaperVsMeasured("AWS fee equivalent at 128 MB", 96.0,
                         FeeEquivalentMillis(aws, a128), "ms");
    const BillingModel gcp = MakeBillingModel(Platform::kGcpCloudRunFunctions);
    SnappedAllocation ghalf;
    ghalf.vcpus = 0.5;
    ghalf.mem_mb = 512.0;
    PrintPaperVsMeasured("GCP fee equivalent at 0.5 vCPU/512 MB", 30.19,
                         FeeEquivalentMillis(gcp, ghalf), "ms");
  }
  std::printf("\nPaper: the AWS fee equals 96 ms of billable time at the default\n"
              "128 MB -- more than the 58.19 ms average execution duration.\n");

  PrintHeader("Fig. 5-right: Rounding-up overhead (requests with exec >= 1 ms)");
  TraceGenConfig cfg;
  cfg.num_requests = 2'000'000;
  cfg.num_functions = 5'000;
  std::printf("Generating %lld synthetic requests...\n",
              static_cast<long long>(cfg.num_requests));
  const auto trace = TraceGenerator(cfg, 527).Generate();

  const RoundingResult g100 = AnalyzeRounding(trace, 100 * kMicrosPerMilli, 0, 0.0);
  const RoundingResult cutoff =
      AnalyzeRounding(trace, kMicrosPerMilli, 100 * kMicrosPerMilli, 0.0);
  const RoundingResult mem128 = AnalyzeRounding(trace, kMicrosPerMilli, 0, 128.0);

  TextTable rounding({"Granularity scheme (example platforms)", "Mean added billable"});
  rounding.AddRow({"100 ms wall-clock granularity (GCP, IBM)",
                   FormatDouble(g100.mean_rounded_up_time_ms, 2) + " ms"});
  rounding.AddRow({"1 ms granularity + 100 ms min cutoff (Azure)",
                   FormatDouble(cutoff.mean_rounded_up_time_ms, 2) + " ms"});
  rounding.AddRow({"128 MB memory granularity (Azure)",
                   FormatSci(mem128.mean_rounded_up_gb_seconds, 2) + " GB-s"});
  std::printf("%s", rounding.Render().c_str());
  PrintPaperVsMeasured("Mean round-up at 100 ms granularity", 77.12,
                       g100.mean_rounded_up_time_ms, "ms");
  PrintPaperVsMeasured("Mean round-up at 1 ms + 100 ms cutoff", 61.35,
                       cutoff.mean_rounded_up_time_ms, "ms");
  PrintPaperVsMeasured("Mean memory round-up at 128 MB granularity", 2.67e-2,
                       mem128.mean_rounded_up_gb_seconds, "GB-s");
  std::printf("\nPaper: these overheads are on the same order as the average\n"
              "execution duration (58.19 ms) and billable memory (2.75e-2 GB-s):\n"
              "fees plus rounding cause disproportionate costs for short, small\n"
              "invocations.\n");
  return 0;
}
