// Ablation over the autoscaler metric window (DESIGN.md §4.3): the 60 s
// stable window is what delays scale-out and produces the Fig. 6 timeline.
// Sweeping the window length shows the trade-off between reaction time and
// the burst-phase latency inflation users pay for.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/platform/presets.h"

int main() {
  using namespace faascost;
  constexpr MicroSecs kSec = kMicrosPerSec;
  const WorkloadSpec wl = PyAesWorkload();

  PrintHeader("Ablation: autoscaler metric window vs scale-out delay and latency");
  TextTable table({"Window (s)", "first scale-out (s)", "mean exec 0-120s (ms)",
                   "mean exec 200s+ (ms)", "peak instances"});
  for (int window_s : {10, 30, 60, 120}) {
    PlatformSimConfig cfg = GcpPlatform(1.0, 1'024.0);
    cfg.autoscaler.metric_window = window_s * kSec;
    PlatformSim sim(cfg, static_cast<uint64_t>(window_s));
    Rng rng(static_cast<uint64_t>(window_s) * 7);
    const auto result = sim.Run(PoissonArrivals(15.0, 360 * kSec, rng), wl);

    MicroSecs first_scale = -1;
    int peak = 0;
    for (const auto& s : result.timeline) {
      peak = std::max(peak, s.instances);
      if (first_scale < 0 && s.instances > 1) {
        first_scale = s.time;
      }
    }
    RunningStats burst_ms;
    RunningStats steady_ms;
    for (const auto& o : result.requests) {
      if (o.arrival < 120 * kSec) {
        burst_ms.Add(MicrosToMillis(o.reported_duration));
      } else if (o.arrival > 200 * kSec) {
        steady_ms.Add(MicrosToMillis(o.reported_duration));
      }
    }
    table.AddRow({std::to_string(window_s),
                  first_scale > 0 ? FormatDouble(MicrosToSecs(first_scale), 0)
                                  : std::string("never"),
                  FormatDouble(burst_ms.mean(), 1), FormatDouble(steady_ms.mean(), 1),
                  std::to_string(peak)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nShorter windows scale sooner and cut the burst-phase latency (and\n"
      "billable wall time) users pay; longer windows smooth oscillation at\n"
      "the cost of prolonged contention -- the §3.1 'key caveat of\n"
      "multi-concurrency models'.\n");
  return 0;
}
