// §4 extension: co-tenant interference on a shared host. The paper's GCP
// profiles show 6.42-14.83% of observed gaps shorter than 2 ms -- "frequent
// context switches and preemption events even within the CPU bandwidth
// control quota". Here those short gaps emerge endogenously from fair-share
// scheduling of co-tenants rather than from an injected noise process.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/sched/host_sim.h"

int main() {
  using namespace faascost;
  constexpr MicroSecs kSec = kMicrosPerSec;

  PrintHeader("Victim gap profile vs co-tenant count (4 cores, GCP-like host)");
  // Victim: 0.5 vCPU quota, always runnable (the Algorithm-1 probe).
  // Co-tenants: unquoted, 40% duty cycle (bursty neighbour functions).
  TextTable table({"co-tenants", "victim CPU share", "gaps/s", "frac gaps < 2 ms",
                   "host util", "p95 gap (ms)"});
  for (int neighbours : {0, 2, 4, 8, 16}) {
    HostSimConfig cfg;
    cfg.cores = 4;
    cfg.period = 100 * kMicrosPerMilli;
    cfg.tick = 1 * kMicrosPerMilli;
    cfg.duration = 60 * kSec;
    std::vector<TenantSpec> tenants;
    tenants.push_back({0.5, 1.0, 1.0});  // The victim.
    for (int i = 0; i < neighbours; ++i) {
      tenants.push_back({1.0, 1.0, 0.4});
    }
    const HostSimResult r = SimulateHost(cfg, tenants, 40 + neighbours);
    const auto& victim = r.tenants[0];
    size_t short_gaps = 0;
    std::vector<double> gap_ms;
    for (const auto& g : victim.gaps) {
      gap_ms.push_back(MicrosToMillis(g.duration));
      if (gap_ms.back() < 2.0) {
        ++short_gaps;
      }
    }
    const Summary s = Summarize(gap_ms);
    table.AddRow(
        {std::to_string(neighbours), FormatDouble(victim.cpu_share, 3),
         FormatDouble(static_cast<double>(victim.gaps.size()) /
                          MicrosToSecs(cfg.duration),
                      1),
         victim.gaps.empty()
             ? std::string("-")
             : FormatPercent(static_cast<double>(short_gaps) / victim.gaps.size(), 1),
         FormatPercent(r.host_utilization, 1), FormatDouble(s.p95, 1)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nPaper §4.3: GCP functions show 6.42-14.83%% of gap durations under\n"
      "2 ms. With a handful of bursty neighbours the victim's profile\n"
      "develops exactly this mixture: long bandwidth throttles (multiples of\n"
      "the period) plus short waiting-for-a-core preemptions.\n");

  PrintHeader("Isolation under oversubscription (1 core, equal tenants)");
  TextTable fair({"tenants", "per-tenant share", "expected", "max |error|"});
  for (int n : {1, 2, 4, 8}) {
    HostSimConfig cfg;
    cfg.cores = 1;
    cfg.duration = 30 * kSec;
    std::vector<TenantSpec> tenants(static_cast<size_t>(n), {1.0, 1.0, 1.0});
    const HostSimResult r = SimulateHost(cfg, tenants, 100 + n);
    double max_err = 0.0;
    double mean_share = 0.0;
    for (const auto& t : r.tenants) {
      mean_share += t.cpu_share;
      max_err = std::max(max_err, std::abs(t.cpu_share - 1.0 / n));
    }
    mean_share /= n;
    fair.AddRow({std::to_string(n), FormatDouble(mean_share, 3),
                 FormatDouble(1.0 / n, 3), FormatDouble(max_err, 4)});
  }
  std::printf("%s", fair.Render().c_str());
  std::printf("  Fair-share dispatch keeps co-tenants within a tick of their\n"
              "  entitlement -- the isolation foundation §4 builds on.\n");
  return 0;
}
