// §2.4 extension: cold-start composition per language runtime and what it
// does to a turnaround-billed invoice. Turnaround billing exists because
// initialization cost "varies across functions with different language
// runtimes and dependency requirements"; this bench quantifies that
// variation and its billing impact.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/billing/catalog.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/platform/coldstart.h"

int main() {
  using namespace faascost;

  PrintHeader("Cold-start phase decomposition per language runtime (medians, ms)");
  TextTable phases({"Runtime", "sandbox", "runtime boot", "code fetch", "deps/JIT",
                    "user init", "total"});
  const ColdStartModel models[] = {WasmIsolateColdStart(), NodeColdStart(),
                                   PythonColdStart(), JavaColdStart()};
  for (const auto& m : models) {
    phases.AddRow({m.runtime_name, FormatDouble(MicrosToMillis(m.sandbox_provision.median), 0),
                   FormatDouble(MicrosToMillis(m.runtime_boot.median), 0),
                   FormatDouble(MicrosToMillis(m.code_fetch.median), 0),
                   FormatDouble(MicrosToMillis(m.dependency_import.median), 0),
                   FormatDouble(MicrosToMillis(m.user_init.median), 0),
                   FormatDouble(MicrosToMillis(m.MedianTotal()), 0)});
  }
  std::printf("%s", phases.Render().c_str());

  PrintHeader("Billing impact under turnaround billing (AWS, 1769 MB, 58 ms exec)");
  // A cold invocation of the trace-average function: how much of the bill is
  // initialization, per runtime?
  TextTable bills({"Runtime", "mean init ms", "cold invoice $", "warm invoice $",
                   "cold/warm", "init share of cold bill"});
  const BillingModel aws = MakeBillingModel(Platform::kAwsLambda);
  Rng rng(7);
  for (const auto& m : models) {
    RunningStats cold_total;
    RunningStats init_ms;
    for (int i = 0; i < 500; ++i) {
      RequestRecord r;
      r.exec_duration = 58 * kMicrosPerMilli;
      r.cpu_time = 33 * kMicrosPerMilli;
      r.alloc_vcpus = 1.0;
      r.alloc_mem_mb = 1'769.0;
      r.used_mem_mb = 300.0;
      r.cold_start = true;
      r.init_duration = m.Sample(rng).total;
      init_ms.Add(MicrosToMillis(r.init_duration));
      cold_total.Add(ComputeInvoice(aws, r).total);
    }
    RequestRecord warm;
    warm.exec_duration = 58 * kMicrosPerMilli;
    warm.cpu_time = 33 * kMicrosPerMilli;
    warm.alloc_vcpus = 1.0;
    warm.alloc_mem_mb = 1'769.0;
    warm.used_mem_mb = 300.0;
    const Usd warm_total = ComputeInvoice(aws, warm).total;
    const double init_share = 1.0 - warm_total / cold_total.mean();
    bills.AddRow({m.runtime_name, FormatDouble(init_ms.mean(), 0),
                  FormatSci(cold_total.mean(), 3), FormatSci(warm_total, 3),
                  FormatDouble(cold_total.mean() / warm_total, 1) + "x",
                  FormatPercent(init_share, 1)});
  }
  std::printf("%s", bills.Render().c_str());
  std::printf(
      "\nUnder turnaround billing (GCP, IBM, and AWS since August 2025), a\n"
      "Java cold start multiplies the bill of a short invocation by an order\n"
      "of magnitude -- and Fig. 4 showed ~42%% of sandboxes never serve enough\n"
      "requests to outweigh their own initialization.\n");
  return 0;
}
