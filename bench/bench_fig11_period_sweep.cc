// Reproduces Fig. 11: execution durations from the closed-form model
// (Equation 2) for a CPU-bound workload of 33.1 ms (the trace-average CPU
// time) under bandwidth-control periods from 5 ms to 80 ms across fractional
// vCPU allocations. Shorter periods converge to ideal reciprocal scaling.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/chart.h"
#include "src/common/table.h"
#include "src/sched/closed_form.h"

int main() {
  using namespace faascost;

  constexpr MicroSecs kDemand = 33'100;  // 33.1 ms (Huawei trace average).
  const std::vector<MicroSecs> periods = {5'000, 10'000, 20'000, 40'000, 80'000};

  PrintHeader("Fig. 11: Eq. (2) durations for a 33.1 ms CPU-bound task");
  TextTable table({"vCPU frac", "ideal ms", "P=5ms", "P=10ms", "P=20ms", "P=40ms",
                   "P=80ms"});
  AsciiChart chart(66, 18);
  chart.SetXLabel("vCPU allocation fraction");
  chart.SetYLabel("execution duration (ms)");
  const char markers[] = {'5', '1', '2', '4', '8'};

  std::vector<ChartSeries> series(periods.size());
  for (size_t i = 0; i < periods.size(); ++i) {
    series[i].label = "P=" + std::to_string(periods[i] / 1'000) + " ms";
    series[i].marker = markers[i];
  }
  ChartSeries ideal_s;
  ideal_s.label = "ideal reciprocal scaling";
  ideal_s.marker = '.';

  for (double f = 0.05; f <= 1.0 + 1e-9; f += 0.025) {
    std::vector<std::string> row;
    row.push_back(FormatDouble(f, 3));
    const double ideal_ms = IdealDuration(kDemand, f) / 1'000.0;
    row.push_back(FormatDouble(ideal_ms, 1));
    ideal_s.points.emplace_back(f, ideal_ms);
    for (size_t i = 0; i < periods.size(); ++i) {
      const MicroSecs quota = std::max<MicroSecs>(
          1, static_cast<MicroSecs>(f * static_cast<double>(periods[i])));
      const double d_ms = MicrosToMillis(ClosedFormDuration(kDemand, periods[i], quota));
      row.push_back(FormatDouble(d_ms, 1));
      series[i].points.emplace_back(f, d_ms);
    }
    if (static_cast<int>(f * 1'000) % 100 < 25) {  // Thin out printed rows.
      table.AddRow(row);
    }
  }
  std::printf("%s", table.Render().c_str());
  chart.AddSeries(std::move(ideal_s));
  for (auto& s : series) {
    chart.AddSeries(std::move(s));
  }
  std::printf("%s", chart.Render().c_str());

  // Convergence metric: mean absolute deviation from ideal across fractions.
  PrintHeader("Convergence to ideal reciprocal scaling");
  TextTable conv({"Period", "Mean |duration - ideal| (ms)"});
  for (MicroSecs period : periods) {
    double err = 0.0;
    int n = 0;
    for (double f = 0.05; f <= 1.0 + 1e-9; f += 0.01) {
      const MicroSecs quota = std::max<MicroSecs>(
          1, static_cast<MicroSecs>(f * static_cast<double>(period)));
      const double d = MicrosToMillis(ClosedFormDuration(kDemand, period, quota));
      err += std::abs(d - IdealDuration(kDemand, f) / 1'000.0);
      ++n;
    }
    conv.AddRow({std::to_string(period / 1'000) + " ms", FormatDouble(err / n, 2)});
  }
  std::printf("%s", conv.Render().c_str());
  std::printf("\nPaper: with longer periods the quantization effect becomes more\n"
              "pronounced; as periods decrease the execution duration converges\n"
              "to ideal reciprocal scaling.\n");
  return 0;
}
