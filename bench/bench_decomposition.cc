// The paper's headline exercise, end to end: a top-down decomposition of
// what a serverless dollar pays for -- useful work, the utilization gap of
// allocation-based billing, initialization (turnaround billing), serving-
// architecture overhead, multi-concurrency contention, rounding, and
// invocation fees -- for the same workload deployed on different platforms.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/billing/catalog.h"
#include "src/common/table.h"
#include "src/core/cost_decomposition.h"
#include "src/platform/presets.h"

namespace faascost {
namespace {

void Decompose(const char* label, const BillingModel& billing, PlatformSimConfig cfg,
               const WorkloadSpec& wl, double rps, uint64_t seed, TextTable& table) {
  PlatformSim sim(std::move(cfg), seed);
  Rng rng(seed * 31);
  const auto arrivals = PoissonArrivals(rps, 600LL * kMicrosPerSec, rng);
  const auto result = sim.Run(arrivals, wl);
  const CostBreakdown b =
      DecomposeCosts(billing, sim.config(), wl, result.requests);
  auto pct = [&](Usd v) { return FormatPercent(b.total > 0 ? v / b.total : 0, 1); };
  table.AddRow({label, FormatSci(b.total / static_cast<double>(b.num_requests), 2),
                pct(b.useful_work), pct(b.utilization_gap), pct(b.initialization),
                pct(b.serving_overhead), pct(b.contention), pct(b.rounding),
                pct(b.invocation_fees)});
}

}  // namespace
}  // namespace faascost

int main() {
  using namespace faascost;

  PrintHeader("Top-down cost decomposition: where each serverless dollar goes");
  TextTable table({"Deployment", "$/request", "useful", "util gap", "init", "serving",
                   "contention", "rounding", "fees"});

  const WorkloadSpec pyaes = PyAesWorkload();
  const WorkloadSpec minimal = MinimalWorkload();

  Decompose("PyAES on AWS Lambda (1 vCPU)", MakeBillingModel(Platform::kAwsLambda),
            AwsLambdaPlatform(1.0, 1'769.0), pyaes, 5.0, 11, table);
  Decompose("PyAES on GCP (1 vCPU, multi-conc, 5 RPS)",
            MakeBillingModel(Platform::kGcpCloudRunFunctions), GcpPlatform(1.0, 1'024.0),
            pyaes, 5.0, 12, table);
  Decompose("PyAES on Azure Consumption", MakeBillingModel(Platform::kAzureConsumption),
            AzurePlatform(), pyaes, 5.0, 13, table);
  Decompose("PyAES on Cloudflare Workers", MakeBillingModel(Platform::kCloudflareWorkers),
            CloudflarePlatform(), pyaes, 5.0, 14, table);
  Decompose("Minimal fn on AWS Lambda", MakeBillingModel(Platform::kAwsLambda),
            AwsLambdaPlatform(1.0, 1'769.0), minimal, 5.0, 15, table);
  Decompose("Minimal fn on GCP", MakeBillingModel(Platform::kGcpCloudRunFunctions),
            GcpPlatform(1.0, 512.0), minimal, 5.0, 16, table);
  Decompose("Minimal fn on Cloudflare", MakeBillingModel(Platform::kCloudflareWorkers),
            CloudflarePlatform(), minimal, 5.0, 17, table);

  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nReading: compute-bound functions on wall-clock allocation billing pay\n"
      "mostly for useful work plus the utilization gap; short functions on\n"
      "coarse-granularity platforms pay mostly rounding and invocation fees\n"
      "(paper §2.5); consumption billing (Cloudflare) tracks useful work most\n"
      "closely (paper §2.3); multi-concurrency contention appears as billable\n"
      "wall time (paper §3.1).\n");
  return 0;
}
