// Shared helpers for the bench binaries.

#ifndef FAASCOST_BENCH_BENCH_UTIL_H_
#define FAASCOST_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace faascost {

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void PrintPaperVsMeasured(const char* what, double paper, double measured,
                                 const char* unit) {
  std::printf("  %-52s paper: %10.4g %-8s measured: %10.4g %s\n", what, paper, unit,
              measured, unit);
}

}  // namespace faascost

#endif  // FAASCOST_BENCH_BENCH_UTIL_H_
