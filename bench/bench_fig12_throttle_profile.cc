// Reproduces Fig. 12: Algorithm-1 scheduler profiling of cloud-like and
// local configurations -- distributions of throttle intervals, throttle
// durations, and the CPU time obtained between throttles, plus the EEVDF vs
// CFS and 250 Hz vs 1000 Hz comparisons (Fig. 12(d)).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/sched/profiler.h"

namespace faascost {
namespace {

struct ProfiledConfig {
  const char* label;
  SchedConfig config;
};

void ProfileAndPrint(const std::vector<ProfiledConfig>& cases, int invocations,
                     MicroSecs exec_duration) {
  TextTable table({"Configuration", "intervals: p50/p95 ms", "durations: p50/p95 ms",
                   "runtime: p50/p95 ms", "CPU share", "frac dur < 2 ms"});
  for (const auto& c : cases) {
    const CpuBandwidthSim sim(c.config);
    Rng rng(7);
    ThrottleStats stats;
    MicroSecs wall = 0;
    MicroSecs cpu = 0;
    for (int i = 0; i < invocations; ++i) {
      const ThrottleProfile p = ProfileOnce(sim, exec_duration, rng);
      AccumulateProfile(p, stats);
      wall += p.exec_duration;
      cpu += p.cpu_obtained;
    }
    const Summary iv = Summarize(stats.intervals_ms);
    const Summary du = Summarize(stats.durations_ms);
    const Summary rt = Summarize(stats.runtimes_ms);
    size_t short_gaps = 0;
    for (double d : stats.durations_ms) {
      if (d < 2.0) {
        ++short_gaps;
      }
    }
    const double short_frac =
        stats.durations_ms.empty()
            ? 0.0
            : static_cast<double>(short_gaps) / static_cast<double>(stats.durations_ms.size());
    table.AddRow({c.label, FormatDouble(iv.p50, 1) + " / " + FormatDouble(iv.p95, 1),
                  FormatDouble(du.p50, 1) + " / " + FormatDouble(du.p95, 1),
                  FormatDouble(rt.p50, 2) + " / " + FormatDouble(rt.p95, 2),
                  FormatDouble(static_cast<double>(cpu) / static_cast<double>(wall), 3),
                  FormatPercent(short_frac, 1)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace faascost

int main() {
  using namespace faascost;
  const int kInvocations = 300;                      // Paper: 300 invocations.
  const MicroSecs kExec = 10LL * kMicrosPerSec;      // Paper: 10 s each.

  PrintHeader("Fig. 12(a-c): Cloud profiles and matching local configurations");
  std::vector<ProfiledConfig> cloud;
  cloud.push_back({"AWS Lambda 128MB (0.072 vCPU)", AwsLambdaSched(0.072)});
  cloud.push_back({"AWS Lambda 512MB (0.29 vCPU)", AwsLambdaSched(0.29)});
  cloud.push_back({"GCP 0.3 vCPU", GcpSched(0.3)});
  cloud.push_back({"GCP 0.5 vCPU", GcpSched(0.5)});
  cloud.push_back({"IBM 0.25 vCPU", IbmSched(0.25)});
  cloud.push_back(
      {"local match: P20/Q1.45 CFS 250Hz",
       LocalVmSched(20 * kMicrosPerMilli, 0.0725, 250, SchedulerKind::kCfs)});
  cloud.push_back(
      {"local match: P10/Q2.5 CFS 250Hz",
       LocalVmSched(10 * kMicrosPerMilli, 0.25, 250, SchedulerKind::kCfs)});
  cloud.push_back(
      {"local match: P100/Q30 CFS 1000Hz",
       LocalVmSched(100 * kMicrosPerMilli, 0.3, 1000, SchedulerKind::kCfs)});
  ProfileAndPrint(cloud, kInvocations, kExec);
  std::printf(
      "\nPaper: AWS throttle intervals are multiples of 20 ms, IBM of 10 ms,\n"
      "GCP of 100 ms; GCP additionally shows 6.42-14.83%% of gaps < 2 ms\n"
      "(co-tenant preemptions) and a smoother runtime curve (finer 1000 Hz\n"
      "tick); AWS runtime is quantized at the coarse 250 Hz tick.\n");

  PrintHeader("Fig. 12(d): EEVDF vs CFS and timer frequency (P=20 ms, 0.072 vCPU)");
  std::vector<ProfiledConfig> schedulers;
  schedulers.push_back(
      {"CFS, 250 Hz", LocalVmSched(20 * kMicrosPerMilli, 0.072, 250, SchedulerKind::kCfs)});
  schedulers.push_back({"EEVDF, 250 Hz", LocalVmSched(20 * kMicrosPerMilli, 0.072, 250,
                                                      SchedulerKind::kEevdf)});
  schedulers.push_back({"CFS, 1000 Hz", LocalVmSched(20 * kMicrosPerMilli, 0.072, 1000,
                                                     SchedulerKind::kCfs)});
  schedulers.push_back({"EEVDF, 1000 Hz", LocalVmSched(20 * kMicrosPerMilli, 0.072, 1000,
                                                       SchedulerKind::kEevdf)});
  ProfileAndPrint(schedulers, kInvocations, kExec);

  // Overrun: obtained CPU per enforcement cycle vs the 1.44 ms quota.
  PrintHeader("Overrun per cycle vs configured quota (1.44 ms)");
  TextTable overrun({"Scheduler/HZ", "median runtime burst (ms)", "overrun vs quota"});
  for (const auto& c : schedulers) {
    const CpuBandwidthSim sim(c.config);
    Rng rng(8);
    const ThrottleStats stats = ProfileMany(sim, kExec, 50, rng);
    const double med = Summarize(stats.runtimes_ms).p50;
    const double quota_ms = MicrosToMillis(c.config.quota);
    overrun.AddRow({c.label, FormatDouble(med, 2),
                    FormatDouble(med / quota_ms, 2) + "x"});
  }
  std::printf("%s", overrun.Render().c_str());
  std::printf(
      "\nPaper: EEVDF at 250 Hz still overruns (slightly less than CFS);\n"
      "raising the timer to 1000 Hz significantly mitigates overrun, but\n"
      "overallocation below the quota cannot be eliminated by any scheduler\n"
      "or timer setting.\n");
  return 0;
}
