// Fleet-wide synthesis: a full trace day across thousands of functions,
// connecting billing (§2), keep-alive and cold starts (§3.3), placement
// (§2.2) and provider economics. Demonstrates the paper's central
// demystification: the billing practices that look gratuitous per request
// (turnaround billing, invocation fees) are what make the long tail of
// sparse functions economically servable.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/billing/catalog.h"
#include "src/cluster/fleet_sim.h"
#include "src/common/table.h"
#include "src/trace/generator.h"

int main() {
  using namespace faascost;
  constexpr MicroSecs kSec = kMicrosPerSec;

  TraceGenConfig gen_cfg;
  gen_cfg.num_requests = 500'000;
  gen_cfg.num_functions = 5'000;
  std::printf("Simulating one day: %lld requests across %lld functions...\n",
              static_cast<long long>(gen_cfg.num_requests),
              static_cast<long long>(gen_cfg.num_functions));
  const auto trace = TraceGenerator(gen_cfg, 20260706).Generate();
  const BillingModel aws = MakeBillingModel(Platform::kAwsLambda);

  PrintHeader("Keep-alive duration: fleet-wide cold starts vs held resources");
  TextTable ka_sweep({"KA (s)", "cold-start rate", "sandboxes", "idle hours",
                      "peak servers", "hw cost $ (frozen KA)", "margin"});
  for (MicroSecs ka : {30 * kSec, 120 * kSec, 300 * kSec, 900 * kSec}) {
    FleetSimConfig cfg;
    cfg.keepalive = ka;
    cfg.ka_cost_share = 0.03;  // AWS-style freeze.
    const FleetResult r = SimulateFleet(trace, aws, cfg);
    ka_sweep.AddRow(
        {FormatDouble(MicrosToSecs(ka), 0),
         FormatDouble(static_cast<double>(r.cold_starts) / r.requests, 3),
         std::to_string(r.sandboxes), FormatDouble(r.idle_seconds / 3'600.0, 0),
         std::to_string(r.peak_servers), FormatDouble(r.hardware_cost, 2),
         FormatPercent(r.margin, 1)});
  }
  std::printf("%s", ka_sweep.Render().c_str());

  PrintHeader("Table-2 KA behaviours, fleet-wide (300 s keep-alive)");
  TextTable behaviours({"KA-phase behaviour", "hw cost $", "margin"});
  const std::pair<const char*, double> shares[] = {
      {"run as usual (Azure)", 1.0},
      {"scale down CPU (GCP-like)", 0.20},
      {"freeze/deallocate (AWS)", 0.03},
  };
  for (const auto& [label, share] : shares) {
    FleetSimConfig cfg;
    cfg.ka_cost_share = share;
    const FleetResult r = SimulateFleet(trace, aws, cfg);
    behaviours.AddRow(
        {label, FormatDouble(r.hardware_cost, 2), FormatPercent(r.margin, 1)});
  }
  std::printf("%s", behaviours.Render().c_str());

  PrintHeader("Function-popularity deciles: who pays, who costs (frozen KA)");
  FleetSimConfig cfg;
  cfg.ka_cost_share = 0.03;
  const FleetResult r = SimulateFleet(trace, aws, cfg);
  const auto buckets = BucketEconomics(r, trace, aws, cfg, 10);
  TextTable deciles({"decile (1=most popular)", "functions", "requests", "revenue $",
                     "hw cost $", "revenue/cost", "cold-start rate"});
  for (size_t i = 0; i < buckets.size(); ++i) {
    const auto& b = buckets[i];
    deciles.AddRow({std::to_string(i + 1), std::to_string(b.functions),
                    std::to_string(b.requests), FormatDouble(b.revenue, 3),
                    FormatDouble(b.hardware_cost, 3),
                    FormatDouble(b.hardware_cost > 0 ? b.revenue / b.hardware_cost : 0, 2),
                    FormatDouble(b.cold_start_rate, 3)});
  }
  std::printf("%s", deciles.Render().c_str());

  PrintHeader("Execution-time vs turnaround billing, fleet revenue");
  BillingModel exec_model = aws;
  exec_model.billable_time = BillableTime::kExecution;
  const FleetResult r_exec = SimulateFleet(trace, exec_model, cfg);
  std::printf("  execution-time billing revenue:  $%.2f (margin %.1f%%)\n",
              r_exec.revenue, r_exec.margin * 100.0);
  std::printf("  turnaround billing revenue:      $%.2f (margin %.1f%%)\n", r.revenue,
              r.margin * 100.0);
  std::printf("  fee revenue (both):              $%.2f\n", r.fee_revenue);
  std::printf(
      "\nReading: this trace's long tail (mean ~100 requests/function/day)\n"
      "is loss-making under a no-overcommit hardware proxy -- every decile\n"
      "pays for far more held capacity than it buys back. The Table-2 KA\n"
      "behaviours differ by ~30x in held-capacity cost (freeze vs run-as-\n"
      "usual), and turnaround billing triples the revenue recovered from\n"
      "cold-start-heavy functions. The remaining gap is what co-tenancy\n"
      "overcommit, high per-unit prices, and invocation fees exist to close\n"
      "(paper §1, §2.4-2.5, §3.3) -- serverless pricing is the shape of\n"
      "these serving costs.\n");
  return 0;
}
