// Reproduces Table 3: scheduling parameters recovered from user-space
// profiling. Each "cloud" is profiled with Algorithm 1 under several vCPU
// configurations (as in the paper), and the inference recovers the
// bandwidth-control period and the scheduler tick frequency.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/sched/inference.h"

int main() {
  using namespace faascost;

  struct Cloud {
    const char* label;
    double expected_period_ms;
    int expected_hz;
    std::vector<SchedConfig> configs;
  };
  std::vector<Cloud> clouds;
  clouds.push_back({"AWS Lambda", 20.0, 250,
                    {AwsLambdaSched(0.072), AwsLambdaSched(0.145), AwsLambdaSched(0.29),
                     AwsLambdaSched(0.58)}});
  clouds.push_back({"Google Cloud Run functions", 100.0, 1000,
                    {GcpSched(0.17), GcpSched(0.33), GcpSched(0.5), GcpSched(0.72)}});
  clouds.push_back({"IBM Cloud Code Engine", 10.0, 250,
                    {IbmSched(0.125), IbmSched(0.25), IbmSched(0.5), IbmSched(0.62)}});

  PrintHeader("Table 3: Scheduling parameters recovered by empirical profiling");
  TextTable table({"Platform", "Period (paper)", "Period (inferred)", "CONFIG_HZ (paper)",
                   "CONFIG_HZ (inferred)", "period match", "tick match"});
  Rng rng(2025);
  for (const auto& cloud : clouds) {
    std::vector<ThrottleProfile> profiles;
    for (const auto& cfg : cloud.configs) {
      const CpuBandwidthSim sim(cfg);
      for (int i = 0; i < 75; ++i) {  // 300 invocations total per platform.
        profiles.push_back(ProfileOnce(sim, 10LL * kMicrosPerSec, rng));
      }
    }
    const InferredSchedParams inferred = InferSchedParams(profiles);
    table.AddRow({cloud.label, FormatDouble(cloud.expected_period_ms, 0) + " ms",
                  FormatDouble(inferred.period_ms, 0) + " ms",
                  std::to_string(cloud.expected_hz), std::to_string(inferred.config_hz),
                  FormatPercent(inferred.match_period, 1),
                  FormatPercent(inferred.match_tick, 1)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nPaper Table 3: AWS 20 ms / 250 Hz, GCP 100 ms / 1000 Hz, IBM\n"
              "10 ms / 250 Hz -- providers do not share a unanimous scheduling\n"
              "configuration.\n");
  return 0;
}
