// Reproduces Fig. 2: distributions of billable vCPU time and billable memory
// versus actual consumption under the representative billing models, driven
// by the calibrated synthetic trace (the paper uses 66.1M requests from the
// first day of the Huawei traces; we use a 2M-request synthetic trace with
// the same published aggregate statistics).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/billing/analysis.h"
#include "src/billing/catalog.h"
#include "src/common/chart.h"
#include "src/common/histogram.h"
#include "src/common/table.h"
#include "src/trace/generator.h"

int main() {
  using namespace faascost;

  TraceGenConfig cfg;
  cfg.num_requests = 2'000'000;
  cfg.num_functions = 5'000;
  std::printf("Generating %lld synthetic requests...\n",
              static_cast<long long>(cfg.num_requests));
  const auto trace = TraceGenerator(cfg, 20240515).Generate();
  const ActualConsumption actual = ComputeActualConsumption(trace);

  const std::vector<Platform> platforms = {
      Platform::kAwsLambda, Platform::kGcpCloudRunFunctions, Platform::kAzureConsumption,
      Platform::kHuaweiFunctionGraph, Platform::kCloudflareWorkers};

  PrintHeader("Fig. 2: Billable vs actual resources (ratio of totals)");
  TextTable table({"Billing model", "Billable/actual vCPU time", "Billable/actual memory"});
  std::vector<InflationResult> results;
  for (Platform p : platforms) {
    results.push_back(AnalyzeInflation(MakeBillingModel(p), trace, /*keep_samples=*/true));
    const auto& r = results.back();
    table.AddRow({r.platform, FormatDouble(r.cpu_inflation, 2) + "x",
                  r.mem_inflation > 0.0 ? FormatDouble(r.mem_inflation, 2) + "x"
                                        : std::string("memory not billed")});
  }
  std::printf("%s", table.Render().c_str());

  std::printf("\nPaper: billable vCPU time exceeds actual CPU usage by 1.02x\n"
              "(Cloudflare) up to 3.99x (GCP); billable memory by 1.95x (Azure)\n"
              "up to 5.49x (GCP); AWS at 2.62x / 3.67x. Usage-based billing has\n"
              "the lowest inflation.\n\n");
  PrintPaperVsMeasured("Cloudflare billable CPU inflation", 1.02,
                       results[4].cpu_inflation, "x");
  PrintPaperVsMeasured("AWS billable CPU inflation", 2.62, results[0].cpu_inflation, "x");
  PrintPaperVsMeasured("GCP billable CPU inflation", 3.99, results[1].cpu_inflation, "x");
  PrintPaperVsMeasured("Azure billable memory inflation", 1.95, results[2].mem_inflation,
                       "x");
  PrintPaperVsMeasured("AWS billable memory inflation", 3.67, results[0].mem_inflation,
                       "x");
  PrintPaperVsMeasured("GCP billable memory inflation", 5.49, results[1].mem_inflation,
                       "x");

  // CDF overlay of billable vCPU-seconds per request.
  PrintHeader("Fig. 2 (left panel): CDF of billable vCPU-seconds per request");
  AsciiChart chart(64, 18);
  chart.SetXLabel("billable vCPU-seconds (per request)");
  chart.SetYLabel("CDF");
  const char markers[] = {'a', 'g', 'z', 'h', 'c', '.'};
  for (size_t i = 0; i < results.size(); ++i) {
    EmpiricalCdf cdf(results[i].billable_vcpu_seconds);
    ChartSeries s;
    s.label = results[i].platform;
    s.marker = markers[i];
    for (const auto& [x, y] : cdf.Curve(60)) {
      if (x < 0.5) {  // Clip the heavy tail for readability.
        s.points.emplace_back(x, y);
      }
    }
    chart.AddSeries(std::move(s));
  }
  {
    EmpiricalCdf cdf(actual.vcpu_seconds);
    ChartSeries s;
    s.label = "actual consumption";
    s.marker = markers[5];
    for (const auto& [x, y] : cdf.Curve(60)) {
      if (x < 0.5) {
        s.points.emplace_back(x, y);
      }
    }
    chart.AddSeries(std::move(s));
  }
  std::printf("%s", chart.Render().c_str());
  return 0;
}
