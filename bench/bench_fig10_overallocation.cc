// Reproduces Fig. 10: CPU over-allocation on public platforms. A PyAES-like
// CPU-bound task (160 ms of CPU) runs under decreasing fractional vCPU
// allocations through the bandwidth-control simulator with each platform's
// inferred scheduling parameters (AWS: P=20 ms/250 Hz via the memory knob;
// GCP 1st gen: P=100 ms/1000 Hz via the CPU knob). The empirical mean falls
// at or below the expected reciprocal-scaling line, with step-like jumps.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/chart.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/sched/overalloc.h"

namespace faascost {
namespace {

void RunSweep(const char* title, const OverallocSweepConfig& cfg,
              const std::vector<double>& fractions, const char* knob_name,
              double knob_scale) {
  PrintHeader(title);
  const auto pts = SweepOverallocation(cfg, fractions, 20250515);

  TextTable table({knob_name, "vCPU frac", "mean ms", "p5 ms", "expected ms",
                   "overalloc ratio"});
  // Print a readable subset (every 4th point) but chart everything.
  for (size_t i = 0; i < pts.size(); i += 4) {
    const auto& p = pts[i];
    table.AddRow({FormatDouble(p.vcpu_fraction * knob_scale, 0),
                  FormatDouble(p.vcpu_fraction, 3), FormatDouble(p.mean_ms, 1),
                  FormatDouble(p.p5_ms, 1), FormatDouble(p.expected_mean_ms, 1),
                  FormatDouble(p.overalloc_ratio, 3)});
  }
  std::printf("%s", table.Render().c_str());

  AsciiChart chart(66, 18);
  chart.SetXLabel(knob_name);
  chart.SetYLabel("execution duration (ms)");
  ChartSeries mean_s;
  mean_s.label = "empirical mean";
  mean_s.marker = 'o';
  ChartSeries exp_s;
  exp_s.label = "expected (reciprocal scaling)";
  exp_s.marker = '-';
  for (const auto& p : pts) {
    mean_s.points.emplace_back(p.vcpu_fraction * knob_scale, p.mean_ms);
    exp_s.points.emplace_back(p.vcpu_fraction * knob_scale, p.expected_mean_ms);
  }
  chart.AddSeries(std::move(exp_s));
  chart.AddSeries(std::move(mean_s));
  std::printf("%s", chart.Render().c_str());

  // Jump detection: steps in the mean-duration curve far above the local
  // average step (the paper's harmonic ~1400*{1, 1/2, 1/3, ...} sequence).
  double max_step = 0.0;
  double step_sum = 0.0;
  size_t big_jumps = 0;
  std::vector<double> jump_knobs;
  std::vector<double> steps;
  for (size_t i = 1; i < pts.size(); ++i) {
    steps.push_back(std::max(0.0, pts[i - 1].mean_ms - pts[i].mean_ms));
  }
  for (double s : steps) {
    step_sum += s;
    max_step = std::max(max_step, s);
  }
  const double avg_step = step_sum / static_cast<double>(steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i] > 3.0 * avg_step && steps[i] > 2.0) {
      ++big_jumps;
      jump_knobs.push_back(pts[i + 1].vcpu_fraction * knob_scale);
    }
  }
  std::printf("  Distinct jumps (step > 3x average): %zu at %s = ", big_jumps, knob_name);
  for (double k : jump_knobs) {
    std::printf("%.0f ", k);
  }
  std::printf("\n  Max overallocation ratio (expected/empirical): %.3f\n",
              [&] {
                double best = 0.0;
                for (const auto& p : pts) {
                  best = std::max(best, p.overalloc_ratio);
                }
                return best;
              }());
}

}  // namespace
}  // namespace faascost

int main() {
  using namespace faascost;

  // AWS Lambda: memory knob 128..1769 MB; vCPU fraction = mem / 1769.
  {
    OverallocSweepConfig cfg;
    cfg.period = 20 * kMicrosPerMilli;
    cfg.config_hz = 250;
    cfg.cpu_demand = 160 * kMicrosPerMilli;
    cfg.samples_per_point = 150;
    std::vector<double> fractions;
    for (MegaBytes mem = 128.0; mem <= 1'769.0; mem += 16.0) {
      fractions.push_back(mem / 1'769.0);
    }
    RunSweep("Fig. 10-top: AWS Lambda (P=20 ms, 250 Hz), memory 128..1769 MB", cfg,
             fractions, "memory (MB)", 1'769.0);
  }

  // GCP 1st gen: CPU knob 0.08..1.00 vCPUs in 0.01 steps.
  {
    OverallocSweepConfig cfg;
    cfg.period = 100 * kMicrosPerMilli;
    cfg.config_hz = 1000;
    cfg.cpu_demand = 160 * kMicrosPerMilli;
    cfg.samples_per_point = 150;
    std::vector<double> fractions;
    for (double f = 0.08; f <= 1.0 + 1e-9; f += 0.01) {
      fractions.push_back(f);
    }
    RunSweep("Fig. 10-bottom: GCP 1st gen (P=100 ms, 1000 Hz), 0.08..1.00 vCPUs", cfg,
             fractions, "vCPUs x100", 100.0);
  }

  // GCP's logs show TWO families of quantization jumps; the paper attributes
  // the second to CPU being scaled down to ~0.01 vCPUs during keep-alive and
  // ramped back up when a request arrives (§3.3). Model: requests that land
  // on a KA-throttled instance spend the scale-up latency at 0.01 vCPUs
  // before the configured allocation is restored.
  {
    PrintHeader("Fig. 10 extension: GCP requests arriving during the KA CPU ramp");
    Rng rng(99);
    TextTable table({"vCPUs", "steady mean ms", "via-KA-ramp mean ms", "extra ms"});
    for (double f : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      const CpuBandwidthSim steady(MakeSchedConfig(100 * kMicrosPerMilli, f, 1000));
      const CpuBandwidthSim ka_throttled(
          MakeSchedConfig(100 * kMicrosPerMilli, 0.01, 1000));
      RunningStats steady_ms;
      RunningStats ramp_ms;
      for (int i = 0; i < 100; ++i) {
        const MicroSecs demand = 160 * kMicrosPerMilli;
        steady_ms.Add(MicrosToMillis(
            steady.RunWithRandomPhase(demand, 3'600LL * kMicrosPerSec, rng)
                .wall_duration));
        // Ramp: the first ~2 ms of CPU executes at the KA allocation while
        // the control plane restores the configured CPU.
        const TaskRunResult pre = ka_throttled.RunWithRandomPhase(
            2 * kMicrosPerMilli, 3'600LL * kMicrosPerSec, rng);
        const TaskRunResult rest = steady.RunWithRandomPhase(
            demand - 2 * kMicrosPerMilli, 3'600LL * kMicrosPerSec, rng);
        ramp_ms.Add(MicrosToMillis(pre.wall_duration + rest.wall_duration));
      }
      table.AddRow({FormatDouble(f, 2), FormatDouble(steady_ms.mean(), 1),
                    FormatDouble(ramp_ms.mean(), 1),
                    FormatDouble(ramp_ms.mean() - steady_ms.mean(), 1)});
    }
    std::printf("%s", table.Render().c_str());
    std::printf("  The KA-entry path shifts the whole curve by a near-constant\n"
                "  offset, creating the second family of jumps in GCP's logs.\n");
  }

  std::printf(
      "\nPaper: the empirical average is consistently below the expected\n"
      "reciprocal-scaling line (functions receive more CPU than allocated);\n"
      "the curve falls with sudden drops -- a discrete 1/n quantization\n"
      "sequence rather than continuous proportional allocation. GCP shows\n"
      "two sets of quantization jumps (KA-phase CPU rescaling).\n");
  return 0;
}
