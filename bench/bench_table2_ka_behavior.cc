// Reproduces Table 2: resource allocation behaviour during keep-alive and
// graceful-shutdown support, plus an empirical measurement of the CPU share
// available to a sandbox during its KA phase (the paper runs Algorithm 1
// inside the KA window).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/platform/keepalive.h"
#include "src/sched/bandwidth_sim.h"

namespace faascost {
namespace {

// CPU share measured by a profiling probe running during the KA phase: the
// sandbox's bandwidth-control quota is set to the KA-phase CPU allocation.
double MeasureKaCpuShare(const KeepAlivePolicy& policy, double alloc_vcpus) {
  const double ka_share = policy.KaCpuShare(alloc_vcpus) * alloc_vcpus;
  if (ka_share <= 0.0) {
    return 0.0;  // Frozen or cache-only: the probe cannot run at all.
  }
  SchedConfig sc = MakeSchedConfig(100 * kMicrosPerMilli, std::min(ka_share, 1.0), 1000);
  const CpuBandwidthSim sim(sc);
  const TaskRunResult r = sim.Run(kUnlimitedDemand, 10LL * kMicrosPerSec);
  return static_cast<double>(r.cpu_obtained) / static_cast<double>(r.wall_duration);
}

}  // namespace
}  // namespace faascost

int main() {
  using namespace faascost;

  PrintHeader("Table 2: Resource allocation behaviour during keep-alive");
  TextTable table({"Platform", "KA-phase behaviour", "Measured KA CPU (vCPUs)",
                   "Graceful shutdown"});

  struct Case {
    const char* platform;
    std::unique_ptr<KeepAlivePolicy> policy;
    double alloc_vcpus;
    const char* shutdown_note;
  };
  Case cases[] = {
      {"AWS Lambda", MakeAwsKeepAlive(), 1.0,
       "supported with Lambda Extensions (waits for SIGTERM handling)"},
      {"GCP Function (request-based)", MakeGcpKeepAlive(), 1.0,
       "N/A (killed without SIGTERM)"},
      {"Azure Function (Consumption)", MakeAzureKeepAlive(), 1.0,
       "N/A (killed right after SIGTERM)"},
      {"Cloudflare Workers", MakeCloudflareKeepAlive(), 1.0, "N/A"},
  };
  for (auto& c : cases) {
    const double measured = MeasureKaCpuShare(*c.policy, c.alloc_vcpus);
    table.AddRow({c.platform, KaResourceBehaviorName(c.policy->resource_behavior()),
                  FormatDouble(measured, 3), c.shutdown_note});
  }
  std::printf("%s", table.Render().c_str());

  PrintPaperVsMeasured("GCP CPU during KA (paper: ~0.01 vCPUs)", 0.01,
                       MeasureKaCpuShare(*MakeGcpKeepAlive(), 1.0), "vCPU");
  PrintPaperVsMeasured("Azure CPU during KA (full allocation)", 1.0,
                       MeasureKaCpuShare(*MakeAzureKeepAlive(), 1.0), "vCPU");
  PrintPaperVsMeasured("AWS CPU during KA (frozen)", 0.0,
                       MeasureKaCpuShare(*MakeAwsKeepAlive(), 1.0), "vCPU");

  std::printf(
      "\nImplications (paper §3.3): deallocating resources during KA (AWS,\n"
      "Cloudflare) saves provider cost but drops long-lived connections;\n"
      "keeping resources live (Azure, GCP) enables background activity --\n"
      "including the Azure unbilled-background-work pattern evaluated by\n"
      "bench_exploit_ka_background.\n");
  return 0;
}
