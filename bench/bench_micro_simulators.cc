// Simulator-throughput micro-benchmarks (google-benchmark): how fast the
// substrates run, for sizing larger experiments.

#include <benchmark/benchmark.h>

#include "src/billing/analysis.h"
#include "src/billing/catalog.h"
#include "src/cluster/fleet_sim.h"
#include "src/integrity/integrity.h"
#include "src/obs/engine_profiler.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/timeseries.h"
#include "src/platform/presets.h"
#include "src/sched/bandwidth_sim.h"
#include "src/sched/host_sim.h"
#include "src/trace/generator.h"
#include "src/workflow/dag.h"
#include "src/workflow/workflow_sim.h"

namespace faascost {
namespace {

void BM_TraceGeneration(benchmark::State& state) {
  TraceGenConfig cfg;
  cfg.num_requests = state.range(0);
  cfg.num_functions = 500;
  for (auto _ : state) {
    TraceGenerator gen(cfg, 1);
    auto trace = gen.Generate();
    benchmark::DoNotOptimize(trace.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(10'000)->Arg(100'000);

void BM_InvoiceComputation(benchmark::State& state) {
  TraceGenConfig cfg;
  cfg.num_requests = 10'000;
  cfg.num_functions = 200;
  const auto trace = TraceGenerator(cfg, 2).Generate();
  const BillingModel aws = MakeBillingModel(Platform::kAwsLambda);
  size_t i = 0;
  for (auto _ : state) {
    const Invoice inv = ComputeInvoice(aws, trace[i++ % trace.size()]);
    benchmark::DoNotOptimize(inv.total);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InvoiceComputation);

void BM_BandwidthSimRun(benchmark::State& state) {
  const SchedConfig cfg = MakeSchedConfig(20 * kMicrosPerMilli, 0.25, 250);
  const CpuBandwidthSim sim(cfg);
  Rng rng(3);
  for (auto _ : state) {
    const TaskRunResult r =
        sim.RunWithRandomPhase(160 * kMicrosPerMilli, 60LL * kMicrosPerSec, rng);
    benchmark::DoNotOptimize(r.wall_duration);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BandwidthSimRun);

void BM_ProfilerTenSeconds(benchmark::State& state) {
  const SchedConfig cfg = MakeSchedConfig(20 * kMicrosPerMilli, 0.072, 250);
  const CpuBandwidthSim sim(cfg);
  Rng rng(4);
  for (auto _ : state) {
    const TaskRunResult r =
        sim.RunWithRandomPhase(kUnlimitedDemand, 10LL * kMicrosPerSec, rng);
    benchmark::DoNotOptimize(r.throttles.size());
  }
}
BENCHMARK(BM_ProfilerTenSeconds);

// The platform trio below times sim construction + Run together, with the
// arrival vector hoisted out of the loop. No PauseTiming/ResumeTiming: the
// pause syscalls cost more than sim construction and made the audited-vs-
// detached overhead ratio flap around CI's 10% budget. Construction cost is
// identical across the three variants, so the ratio stays honest.
std::vector<MicroSecs> PlatformArrivals() {
  Rng rng(6);
  return PoissonArrivals(10.0, 100LL * kMicrosPerSec, rng);
}

void BM_PlatformSimThousandRequests(benchmark::State& state) {
  const WorkloadSpec wl = PyAesWorkload();
  const auto arrivals = PlatformArrivals();
  for (auto _ : state) {
    PlatformSim sim(GcpPlatform(1.0, 1'024.0), 5);
    const auto result = sim.Run(arrivals, wl);
    benchmark::DoNotOptimize(result.requests.size());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_PlatformSimThousandRequests);

// Same run with the span sink and metrics registry attached: the delta
// against the untraced variant is the observability overhead (the PR's
// budget for it is <10%).
void BM_PlatformSimThousandRequestsTraced(benchmark::State& state) {
  const WorkloadSpec wl = PyAesWorkload();
  // The sinks live across iterations, as they do in a real `observe` run:
  // what is measured is the steady-state emission cost, not allocator warmup.
  const auto arrivals = PlatformArrivals();
  SpanCollector spans;
  MetricsRegistry metrics;
  for (auto _ : state) {
    spans.Clear();
    metrics.Reset();
    PlatformSimConfig cfg = GcpPlatform(1.0, 1'024.0);
    cfg.trace = &spans;
    cfg.metrics = &metrics;
    PlatformSim sim(cfg, 5);
    const auto result = sim.Run(arrivals, wl);
    benchmark::DoNotOptimize(result.requests.size());
    benchmark::DoNotOptimize(spans.spans().size());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_PlatformSimThousandRequestsTraced);

// Audited counterpart: full-level runtime invariant auditor at the default
// scan cadence. The delta against the detached variant is the integrity
// overhead (budgeted <10% in CI, see tools/ci.sh).
void BM_PlatformSimThousandRequestsAudited(benchmark::State& state) {
  const WorkloadSpec wl = PyAesWorkload();
  const auto arrivals = PlatformArrivals();
  for (auto _ : state) {
    Auditor auditor(AuditLevel::kFull);
    PlatformSimConfig cfg = GcpPlatform(1.0, 1'024.0);
    cfg.auditor = &auditor;
    PlatformSim sim(cfg, 5);
    const auto result = sim.Run(arrivals, wl);
    benchmark::DoNotOptimize(result.requests.size());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_PlatformSimThousandRequestsAudited);

// Monitored counterpart: windowed TimeSeries plus the engine flight recorder
// attached, as `faascost monitor` runs them. The delta against the detached
// variant is the telemetry overhead, gated under the same <10% budget as the
// traced and audited pairs (tools/make_bench_micro.py). The series and
// profiler are rebuilt per iteration, like the Auditor above: both are a
// handful of small vectors, and a fresh instance is what a monitor run sees.
void BM_PlatformSimThousandRequestsMonitored(benchmark::State& state) {
  const WorkloadSpec wl = PyAesWorkload();
  const auto arrivals = PlatformArrivals();
  for (auto _ : state) {
    TimeSeries series(60 * kMicrosPerSec);
    EngineProfiler profiler;
    PlatformSimConfig cfg = GcpPlatform(1.0, 1'024.0);
    cfg.timeseries = &series;
    cfg.profiler = &profiler;
    PlatformSim sim(cfg, 5);
    const auto result = sim.Run(arrivals, wl);
    benchmark::DoNotOptimize(result.requests.size());
    benchmark::DoNotOptimize(series.window_count());
  }
  state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_PlatformSimThousandRequestsMonitored);

void BM_HostSimSecond(benchmark::State& state) {
  HostSimConfig cfg;
  cfg.cores = 4;
  cfg.duration = 1LL * kMicrosPerSec;
  std::vector<TenantSpec> tenants(static_cast<size_t>(state.range(0)), {0.5, 1.0, 0.5});
  uint64_t seed = 1;
  for (auto _ : state) {
    const HostSimResult r = SimulateHost(cfg, tenants, seed++);
    benchmark::DoNotOptimize(r.host_utilization);
  }
}
BENCHMARK(BM_HostSimSecond)->Arg(4)->Arg(16)->Arg(64);

void BM_FleetSimDay(benchmark::State& state) {
  TraceGenConfig cfg;
  cfg.num_requests = state.range(0);
  cfg.num_functions = 500;
  const auto trace = TraceGenerator(cfg, 7).Generate();
  const BillingModel aws = MakeBillingModel(Platform::kAwsLambda);
  for (auto _ : state) {
    const FleetResult r = SimulateFleet(trace, aws, FleetSimConfig{});
    benchmark::DoNotOptimize(r.revenue);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetSimDay)->Arg(50'000);

// Traced counterpart of BM_FleetSimDay (USD-tagged spans plus metrics
// sampling), for the same overhead comparison. The sinks live across
// iterations as in a real `observe` run, and the metrics cadence is 1 minute
// — the standard resolution for day-scale monitoring; sampling a simulated
// day at 1 Hz would produce 86 400 rows and measure the sampler, not the
// instrumentation.
void BM_FleetSimDayTraced(benchmark::State& state) {
  TraceGenConfig cfg;
  cfg.num_requests = state.range(0);
  cfg.num_functions = 500;
  const auto trace = TraceGenerator(cfg, 7).Generate();
  const BillingModel aws = MakeBillingModel(Platform::kAwsLambda);
  SpanCollector spans;
  MetricsRegistry metrics;
  for (auto _ : state) {
    spans.Clear();
    metrics.Reset();
    FleetSimConfig fleet_cfg;
    fleet_cfg.trace_sink = &spans;
    fleet_cfg.metrics = &metrics;
    fleet_cfg.metrics_interval = 60 * kMicrosPerSec;
    const FleetResult r = SimulateFleet(trace, aws, fleet_cfg);
    benchmark::DoNotOptimize(r.revenue);
    benchmark::DoNotOptimize(spans.spans().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetSimDayTraced)->Arg(50'000);

// Audited counterpart of BM_FleetSimDay, for the integrity-overhead budget.
void BM_FleetSimDayAudited(benchmark::State& state) {
  TraceGenConfig cfg;
  cfg.num_requests = state.range(0);
  cfg.num_functions = 500;
  const auto trace = TraceGenerator(cfg, 7).Generate();
  const BillingModel aws = MakeBillingModel(Platform::kAwsLambda);
  for (auto _ : state) {
    Auditor auditor(AuditLevel::kFull);
    FleetSimConfig fleet_cfg;
    fleet_cfg.auditor = &auditor;
    const FleetResult r = SimulateFleet(trace, aws, fleet_cfg);
    benchmark::DoNotOptimize(r.revenue);
    benchmark::DoNotOptimize(auditor.checks_run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetSimDayAudited)->Arg(50'000);

// Monitored counterpart of BM_FleetSimDay, for the telemetry-overhead budget.
void BM_FleetSimDayMonitored(benchmark::State& state) {
  TraceGenConfig cfg;
  cfg.num_requests = state.range(0);
  cfg.num_functions = 500;
  const auto trace = TraceGenerator(cfg, 7).Generate();
  const BillingModel aws = MakeBillingModel(Platform::kAwsLambda);
  for (auto _ : state) {
    TimeSeries series(60 * kMicrosPerSec);
    EngineProfiler profiler;
    FleetSimConfig fleet_cfg;
    fleet_cfg.timeseries = &series;
    fleet_cfg.profiler = &profiler;
    const FleetResult r = SimulateFleet(trace, aws, fleet_cfg);
    benchmark::DoNotOptimize(r.revenue);
    benchmark::DoNotOptimize(series.window_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FleetSimDayMonitored)->Arg(50'000);

// Workflow-engine throughput: 200 five-hop chains with retries and 5%
// faults, the bench_cost_of_workflows working set. Items are hop executions.
void BM_WorkflowSimChains(benchmark::State& state) {
  WorkflowSimConfig cfg;
  HopSpec proto;
  cfg.dags.push_back(MakeChainDag("bench", 5, proto));
  cfg.workflows = 200;
  cfg.wps = 4.0;
  cfg.failure_rate = 0.05;
  cfg.init_failure_rate = 0.0125;
  cfg.policy.retry.max_attempts = 3;
  cfg.pricing = MakeWorkflowPricing(Platform::kAwsLambda);
  const BillingModel aws = MakeBillingModel(Platform::kAwsLambda);
  for (auto _ : state) {
    const WorkflowSimResult r = SimulateWorkflows(cfg, aws, 9);
    benchmark::DoNotOptimize(r.usd_total);
  }
  state.SetItemsProcessed(state.iterations() * 200 * 5);
}
BENCHMARK(BM_WorkflowSimChains);

}  // namespace
}  // namespace faascost

BENCHMARK_MAIN();
