// Reproduces Fig. 8: per-request overhead of the three serving architectures
// measured with a minimal function (returns an empty string) across platform
// configurations.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/platform/presets.h"

namespace faascost {
namespace {

Summary MeasureMinimal(PlatformSimConfig cfg, uint64_t seed) {
  // Steady warm traffic: one request every 2 s for 500 requests; drop the
  // cold start.
  PlatformSim sim(std::move(cfg), seed);
  const auto arrivals = UniformArrivals(0.5, 1'000LL * kMicrosPerSec);
  const auto result = sim.Run(arrivals, MinimalWorkload());
  std::vector<double> ms;
  for (const auto& o : result.requests) {
    if (!o.cold_start) {
      ms.push_back(MicrosToMillis(o.reported_duration));
    }
  }
  return Summarize(ms);
}

}  // namespace
}  // namespace faascost

int main() {
  using namespace faascost;

  PrintHeader("Fig. 8: Serving-architecture overhead of a minimal function");
  TextTable table({"Platform (config)", "Architecture", "mean ms", "p50 ms", "p95 ms"});

  struct Case {
    const char* label;
    PlatformSimConfig cfg;
  };
  std::vector<Case> cases;
  cases.push_back({"AWS Lambda (1 vCPU)", AwsLambdaPlatform(1.0, 1'769.0)});
  cases.push_back({"GCP (1 vCPU)", GcpPlatform(1.0, 1'024.0)});
  cases.push_back({"GCP (0.08 vCPU)", GcpPlatform(0.08, 128.0)});
  cases.push_back({"Azure Consumption (1 vCPU)", AzurePlatform()});
  cases.push_back({"Cloudflare Workers", CloudflarePlatform()});

  double aws_mean = 0.0;
  double gcp_low_mean = 0.0;
  double cf_mean = 0.0;
  uint64_t seed = 1;
  for (auto& c : cases) {
    const char* arch = ServingArchitectureName(c.cfg.serving.arch);
    const Summary s = MeasureMinimal(std::move(c.cfg), seed++);
    table.AddRow({c.label, arch, FormatDouble(s.mean, 3), FormatDouble(s.p50, 3),
                  FormatDouble(s.p95, 3)});
    if (std::string(c.label).find("AWS") == 0) {
      aws_mean = s.mean;
    }
    if (std::string(c.label) == "GCP (0.08 vCPU)") {
      gcp_low_mean = s.mean;
    }
    if (std::string(c.label).find("Cloudflare") == 0) {
      cf_mean = s.mean;
    }
  }
  std::printf("%s", table.Render().c_str());

  PrintPaperVsMeasured("AWS long-polling overhead", 1.17, aws_mean, "ms");
  PrintPaperVsMeasured("GCP HTTP server at 0.08 vCPU (paper: up to 5.93)", 5.93,
                       gcp_low_mean, "ms");
  PrintPaperVsMeasured("Cloudflare code-exec (paper: <0.01)", 0.01, cf_mean, "ms");
  std::printf("\nPaper: HTTP-server platforms have the highest overhead (worse at\n"
              "low CPU allocations since parsing/serialization is CPU-bound);\n"
              "long polling is stable ~1.17 ms; code/binary execution is near\n"
              "zero (below Cloudflare's 0.01 ms reporting precision).\n");
  return 0;
}
