// Reproduces Fig. 4: the difference between billable resources consumed
// during request executions and those consumed during initialization, across
// sandbox lifecycles (the paper analyzes 388,955 traceable cold starts; we
// generate the same number of synthetic lifecycles).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/billing/analysis.h"
#include "src/common/chart.h"
#include "src/common/histogram.h"
#include "src/trace/generator.h"

int main() {
  using namespace faascost;

  TraceGenConfig cfg;
  cfg.num_functions = 5'000;
  TraceGenerator gen(cfg, 388'955);
  const int64_t kLifecycles = 388'955;  // Same count as the paper.
  std::printf("Generating %lld sandbox lifecycles...\n",
              static_cast<long long>(kLifecycles));
  const auto lifecycles = gen.GenerateLifecycles(kLifecycles);
  const ColdStartStudy study = AnalyzeColdStarts(lifecycles);

  PrintHeader("Fig. 4: Execution-phase minus initialization-phase billable resources");
  PrintPaperVsMeasured("Cold starts with zero/negative difference (CPU)", 42.1,
                       study.frac_zero_or_negative_cpu * 100.0, "%");
  PrintPaperVsMeasured("Cold starts with zero/negative difference (memory)", 42.1,
                       study.frac_zero_or_negative_mem * 100.0, "%");
  std::printf(
      "\nPaper: in ~42.1%% of cold starts, initialization alone consumed at\n"
      "least as many billable resources as every request the sandbox later\n"
      "served -- billing execution time only would under-recover costs, which\n"
      "is why providers moved to turnaround-time billing (GCP, IBM, and AWS\n"
      "since August 2025).\n");

  PrintHeader("CDF of the billable-resource difference (vCPU-seconds)");
  std::vector<double> cpu_diffs;
  cpu_diffs.reserve(study.diffs.size());
  for (const auto& d : study.diffs) {
    cpu_diffs.push_back(d.cpu_diff_vcpu_seconds);
  }
  EmpiricalCdf cdf(std::move(cpu_diffs));
  AsciiChart chart(64, 16);
  chart.SetXLabel("exec billable - init billable (vCPU-s)");
  chart.SetYLabel("CDF");
  ChartSeries s;
  s.label = "lifecycles";
  s.marker = '*';
  for (const auto& [x, y] : cdf.Curve(80)) {
    if (x > -5.0 && x < 25.0) {  // Clip tails for readability.
      s.points.emplace_back(x, y);
    }
  }
  chart.AddSeries(std::move(s));
  std::printf("%s", chart.Render().c_str());
  std::printf("  P(diff <= 0) = %.3f; long negative tail = functions whose cold\n"
              "  start dominates (turnaround billing raises their cost most).\n",
              cdf.At(0.0));
  return 0;
}
