// Ablations over the scheduling simulator's design choices (DESIGN.md §4):
//  1. Tick-lagged runtime accounting vs near-exact accounting: lagged
//     accounting is what produces overrun debt.
//  2. Slice size: local pools acquire min(slice, remaining); the slice
//     quantizes throttle timing.
//  3. Dispatch/accounting granularity across schedulers and timer
//     frequencies.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/sched/closed_form.h"
#include "src/sched/profiler.h"

namespace faascost {
namespace {

struct RunStats {
  double mean_wall_ms = 0.0;
  double cpu_share = 0.0;
  double median_burst_ms = 0.0;
};

RunStats Measure(const SchedConfig& cfg, MicroSecs demand, int samples, uint64_t seed) {
  const CpuBandwidthSim sim(cfg);
  Rng rng(seed);
  RunningStats wall;
  MicroSecs total_cpu = 0;
  MicroSecs total_wall = 0;
  ThrottleStats stats;
  for (int i = 0; i < samples; ++i) {
    const TaskRunResult r = sim.RunWithRandomPhase(demand, 3'600LL * kMicrosPerSec, rng);
    wall.Add(MicrosToMillis(r.wall_duration));
    total_cpu += r.cpu_obtained;
    total_wall += r.wall_duration;
    ThrottleProfile p;
    p.throttle_log = r.gaps;
    AccumulateProfile(p, stats);
  }
  RunStats out;
  out.mean_wall_ms = wall.mean();
  out.cpu_share = total_wall > 0
                      ? static_cast<double>(total_cpu) / static_cast<double>(total_wall)
                      : 0.0;
  out.median_burst_ms = stats.runtimes_ms.empty() ? 0.0 : Summarize(stats.runtimes_ms).p50;
  return out;
}

}  // namespace
}  // namespace faascost

int main() {
  using namespace faascost;
  const MicroSecs kDemand = 160 * kMicrosPerMilli;
  const double kFraction = 0.072;
  const MicroSecs kPeriod = 20 * kMicrosPerMilli;

  PrintHeader("Ablation 1: Accounting granularity (tick interval)");
  std::printf("Expected duration under exact accounting (Eq. 2): %.1f ms; ideal\n"
              "reciprocal scaling: %.1f ms.\n\n",
              MicrosToMillis(ClosedFormDuration(
                  kDemand, kPeriod,
                  static_cast<MicroSecs>(kFraction * static_cast<double>(kPeriod)))),
              IdealDuration(kDemand, kFraction) / 1'000.0);
  TextTable t1({"CONFIG_HZ (tick)", "mean wall (ms)", "long-run CPU share",
                "median burst (ms)"});
  for (int hz : {100, 250, 1000, 10'000}) {
    const SchedConfig cfg = MakeSchedConfig(kPeriod, kFraction, hz);
    const RunStats s = Measure(cfg, kDemand, 100, 100 + hz);
    t1.AddRow({std::to_string(hz) + (hz == 10'000 ? " (near-exact)" : ""),
               FormatDouble(s.mean_wall_ms, 1), FormatDouble(s.cpu_share, 4),
               FormatDouble(s.median_burst_ms, 2)});
  }
  std::printf("%s", t1.Render().c_str());
  std::printf("  Coarser ticks -> larger overrun bursts; the 10 kHz row approaches\n"
              "  exact accounting and Eq. (2).\n");

  PrintHeader("Ablation 2: Bandwidth slice size (sched_cfs_bandwidth_slice)");
  TextTable t2({"slice (ms)", "mean wall (ms)", "CPU share", "median burst (ms)"});
  for (MicroSecs slice_ms : {1, 5, 20}) {
    SchedConfig cfg = MakeSchedConfig(kPeriod, 0.5, 250);
    cfg.slice = slice_ms * kMicrosPerMilli;
    const RunStats s = Measure(cfg, kDemand, 100, 200 + slice_ms);
    t2.AddRow({std::to_string(slice_ms), FormatDouble(s.mean_wall_ms, 1),
               FormatDouble(s.cpu_share, 4), FormatDouble(s.median_burst_ms, 2)});
  }
  std::printf("%s", t2.Render().c_str());

  PrintHeader("Ablation 3: Scheduler kind x timer frequency (0.072 vCPU)");
  TextTable t3({"Scheduler", "HZ", "CPU share", "median burst (ms)",
                "overrun vs quota (1.44 ms)"});
  for (SchedulerKind kind : {SchedulerKind::kCfs, SchedulerKind::kEevdf}) {
    for (int hz : {250, 1000}) {
      const SchedConfig cfg = MakeSchedConfig(kPeriod, kFraction, hz, kind);
      const RunStats s = Measure(cfg, kUnlimitedDemand / 1'000'000, 20, 300 + hz);
      t3.AddRow({kind == SchedulerKind::kCfs ? "CFS" : "EEVDF", std::to_string(hz),
                 FormatDouble(s.cpu_share, 4), FormatDouble(s.median_burst_ms, 2),
                 FormatDouble(s.median_burst_ms / 1.44, 2) + "x"});
    }
  }
  std::printf("%s", t3.Render().c_str());
  std::printf("  Paper §4.3: EEVDF overruns slightly less than CFS at the same HZ;\n"
              "  1000 Hz mitigates overrun but sub-quota overallocation remains.\n");

  PrintHeader("Ablation 4: CFS burst allowance (cpu.cfs_burst_us) on an I/O task");
  // An I/O-bound task (spiky CPU after idle) benefits from burst capacity:
  // quota accumulated during waits absorbs the next spike.
  TextTable t4({"burst (ms)", "mean wall (ms)", "throttle events"});
  for (MicroSecs burst_ms : {0, 4, 8, 16}) {
    SchedConfig cfg = MakeSchedConfig(kPeriod, 0.4, 250);
    cfg.burst = burst_ms * kMicrosPerMilli;
    const CpuBandwidthSim sim(cfg);
    Rng rng(400 + burst_ms);
    RunningStats wall;
    size_t throttle_events = 0;
    IoPattern io;
    io.cpu_burst = 12 * kMicrosPerMilli;
    io.io_wait = 25 * kMicrosPerMilli;
    for (int i = 0; i < 100; ++i) {
      const MicroSecs tick_phase = rng.UniformInt(0, cfg.tick - 1);
      const TaskRunResult r = sim.RunIoBound(io, 96 * kMicrosPerMilli,
                                             60LL * kMicrosPerSec, tick_phase,
                                             cfg.period, &rng);
      wall.Add(MicrosToMillis(r.wall_duration));
      throttle_events += r.throttles.size();
    }
    t4.AddRow({std::to_string(burst_ms), FormatDouble(wall.mean(), 1),
               std::to_string(throttle_events)});
  }
  std::printf("%s", t4.Render().c_str());
  std::printf("  Quota saved during I/O waits absorbs subsequent spikes -- another\n"
              "  source of 'more CPU than allocated' on top of tick quantization.\n");
  return 0;
}
