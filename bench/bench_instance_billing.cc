// §2.4 extension: request-based vs instance-time billing across traffic
// shapes. "Instance time billing can further increase billable resources
// under bursty traffic patterns since scale-down-to-zero is delayed or
// disabled, and instance idle time is billed."

#include <cstdio>

#include "bench/bench_util.h"
#include "src/billing/catalog.h"
#include "src/billing/instance_time.h"
#include "src/common/table.h"
#include "src/platform/presets.h"

namespace faascost {
namespace {

struct ModeCosts {
  Usd request_based = 0.0;
  Usd instance_time = 0.0;
  double busy_fraction = 0.0;
};

ModeCosts CompareModes(const std::vector<MicroSecs>& arrivals, uint64_t seed) {
  PlatformSimConfig cfg = GcpPlatform(1.0, 1'024.0);
  // Instance-billing deployments configure a scale-down delay; keep the
  // request-based run on the same keep-alive for a like-for-like instance
  // lifetime.
  cfg.keepalive = MakeFixedKeepAlive(300LL * kMicrosPerSec,
                                     KaResourceBehavior::kScaleDownCpu);
  PlatformSim sim(cfg, seed);
  const WorkloadSpec wl = PyAesWorkload();
  const auto result = sim.Run(arrivals, wl);

  ModeCosts out;
  const BillingModel request_model = MakeBillingModel(Platform::kGcpCloudRunFunctions);
  for (const auto& o : result.requests) {
    RequestRecord r;
    r.exec_duration = o.reported_duration;
    r.cpu_time = wl.cpu_time;
    r.alloc_vcpus = cfg.vcpus;
    r.alloc_mem_mb = cfg.mem_mb;
    r.used_mem_mb = wl.memory_footprint;
    r.init_duration = o.init_duration;
    out.request_based += ComputeInvoice(request_model, r).total;
  }
  std::vector<InstanceSpan> spans;
  double busy = 0.0;
  double lifespan = 0.0;
  for (const auto& sb : result.sandboxes) {
    spans.push_back({sb.created_at, sb.destroyed_at});
    busy += MicrosToSecs(sb.busy_time);
    lifespan += MicrosToSecs(sb.destroyed_at - sb.created_at);
  }
  out.instance_time = BillInstanceTime(InstanceTimeBillingModel{}, spans, cfg.vcpus,
                                       cfg.mem_mb, result.requests.size())
                          .total;
  out.busy_fraction = lifespan > 0.0 ? busy / lifespan : 0.0;
  return out;
}

}  // namespace
}  // namespace faascost

int main() {
  using namespace faascost;
  constexpr MicroSecs kSec = kMicrosPerSec;

  PrintHeader("Section 2.4: request-based vs instance-time billing (GCP rates)");
  TextTable table({"Traffic shape", "busy fraction", "request-based $", "instance-time $",
                   "instance/request"});

  struct Shape {
    const char* label;
    std::vector<MicroSecs> arrivals;
  };
  std::vector<Shape> shapes;
  {
    Rng rng(1);
    shapes.push_back({"dense: 5 RPS for 20 min",
                      PoissonArrivals(5.0, 1'200 * kSec, rng)});
  }
  {
    Rng rng(2);
    shapes.push_back({"moderate: 1 RPS for 20 min",
                      PoissonArrivals(1.0, 1'200 * kSec, rng)});
  }
  {
    // Bursty: 30 s bursts of 5 RPS every 5 minutes.
    std::vector<MicroSecs> arrivals;
    Rng rng(3);
    for (int burst = 0; burst < 4; ++burst) {
      const MicroSecs base = static_cast<MicroSecs>(burst) * 300 * kSec;
      for (MicroSecs t : PoissonArrivals(5.0, 30 * kSec, rng)) {
        arrivals.push_back(base + t);
      }
    }
    shapes.push_back({"bursty: 30 s of 5 RPS every 5 min", std::move(arrivals)});
  }
  {
    // Sparse: one request every 4 minutes.
    std::vector<MicroSecs> arrivals;
    for (int i = 0; i < 5; ++i) {
      arrivals.push_back(static_cast<MicroSecs>(i) * 240 * kSec);
    }
    shapes.push_back({"sparse: 1 request every 4 min", std::move(arrivals)});
  }

  uint64_t seed = 10;
  for (const auto& s : shapes) {
    const ModeCosts costs = CompareModes(s.arrivals, seed++);
    table.AddRow({s.label, FormatPercent(costs.busy_fraction, 1),
                  FormatSci(costs.request_based, 3), FormatSci(costs.instance_time, 3),
                  FormatDouble(costs.instance_time / costs.request_based, 2) + "x"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nPaper §2.4: instance-time billing charges the whole instance\n"
      "lifespan. Dense traffic amortizes it (cheaper per-unit rates, no\n"
      "rounding, no fees); bursty or sparse traffic pays for billed idle time\n"
      "many times over.\n");
  return 0;
}
