// Reproduces Fig. 3: CPU and memory utilization of allocated resources in
// the (synthetic) production trace -- CDFs, the fraction of requests below
// 50% utilization, and the CPU-memory utilization correlation.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/chart.h"
#include "src/common/histogram.h"
#include "src/common/table.h"
#include "src/trace/generator.h"
#include "src/trace/summary.h"

int main() {
  using namespace faascost;

  TraceGenConfig cfg;
  cfg.num_requests = 1'000'000;
  cfg.num_functions = 5'000;
  std::printf("Generating %lld synthetic requests...\n",
              static_cast<long long>(cfg.num_requests));
  const auto trace = TraceGenerator(cfg, 42).Generate();
  const TraceStats stats = ComputeTraceStats(trace);

  PrintHeader("Fig. 3: Utilization of allocated resources");
  PrintPaperVsMeasured("Mean execution duration", 58.19, stats.mean_exec_ms, "ms");
  PrintPaperVsMeasured("Mean consumed CPU time", 33.1, stats.mean_cpu_time_ms, "ms");
  PrintPaperVsMeasured("Requests with CPU util < 50% (paper: >42%)", 42.0,
                       stats.frac_cpu_util_below_half * 100.0, "%");
  PrintPaperVsMeasured("Requests with memory util < 50%", 88.0,
                       stats.frac_mem_util_below_half * 100.0, "%");
  PrintPaperVsMeasured("Pearson corr. of CPU vs memory utilization", 0.397,
                       stats.util_pearson, "");
  std::printf("\n  (Paper notes the 2023 Huawei private-cloud correlation was 0.6;\n"
              "   the weaker public-cloud coupling argues for decoupled CPU and\n"
              "   memory knobs.)\n");

  const UtilizationSamples util = ExtractUtilization(trace);

  PrintHeader("Utilization CDFs");
  AsciiChart cdf_chart(64, 16);
  cdf_chart.SetXLabel("utilization of allocation");
  cdf_chart.SetYLabel("CDF");
  {
    ChartSeries s;
    s.label = "CPU utilization";
    s.marker = 'c';
    EmpiricalCdf cdf(util.cpu);
    for (const auto& pt : cdf.Curve(60)) {
      s.points.push_back(pt);
    }
    cdf_chart.AddSeries(std::move(s));
  }
  {
    ChartSeries s;
    s.label = "memory utilization";
    s.marker = 'm';
    EmpiricalCdf cdf(util.mem);
    for (const auto& pt : cdf.Curve(60)) {
      s.points.push_back(pt);
    }
    cdf_chart.AddSeries(std::move(s));
  }
  std::printf("%s", cdf_chart.Render().c_str());

  PrintHeader("CPU vs memory utilization scatter (subsample)");
  AsciiChart scatter(64, 18);
  scatter.SetXLabel("CPU utilization");
  scatter.SetYLabel("memory utilization");
  ChartSeries pts;
  pts.label = "requests";
  pts.marker = '.';
  for (size_t i = 0; i < util.cpu.size(); i += util.cpu.size() / 1'500 + 1) {
    pts.points.emplace_back(util.cpu[i], util.mem[i]);
  }
  scatter.AddSeries(std::move(pts));
  std::printf("%s", scatter.Render().c_str());

  PrintHeader("Distribution summaries");
  TextTable t({"Metric", "mean", "p5", "p25", "p50", "p75", "p95"});
  auto row = [&](const char* name, const Summary& s) {
    t.AddRow({name, FormatDouble(s.mean, 3), FormatDouble(s.p5, 3), FormatDouble(s.p25, 3),
              FormatDouble(s.p50, 3), FormatDouble(s.p75, 3), FormatDouble(s.p95, 3)});
  };
  row("CPU utilization", stats.cpu_util);
  row("Memory utilization", stats.mem_util);
  std::printf("%s", t.Render().c_str());
  return 0;
}
