// §2.2 extension: the function-placement rationale behind constrained
// resource knobs. "Highly unbalanced CPU-to-memory combinations can fragment
// the resource capacity on host servers, potentially leading to higher
// deployment costs, e.g. through decreased deployment density."

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/placement.h"
#include "src/common/rng.h"
#include "src/common/table.h"

namespace faascost {
namespace {

void Report(TextTable& table, const char* label, const DensityReport& r) {
  table.AddRow({label, std::to_string(r.servers), FormatDouble(r.density, 1),
                FormatPercent(r.cpu_util, 1), FormatPercent(r.mem_util, 1),
                FormatPercent(r.stranded_cpu, 1), FormatPercent(r.stranded_mem, 1),
                FormatDouble(r.allocated_cpu, 0)});
}

}  // namespace
}  // namespace faascost

int main() {
  using namespace faascost;

  PrintHeader("Packing raw user demands onto 64-vCPU/256-GB hosts");
  // Raw demands: what users would request with perfectly free knobs --
  // weakly correlated CPU and memory needs (the paper's Fig. 3 correlation
  // of 0.397 motivates decoupled knobs).
  Rng demand_rng(22);
  std::vector<SandboxDemand> demands;
  for (int i = 0; i < 20'000; ++i) {
    const auto [zc, zm] = demand_rng.CorrelatedNormals(0.4);
    const double cpu = std::clamp(std::exp(-0.9 + 0.8 * zc), 0.05, 4.0);
    const double mem = std::clamp(1'024.0 * std::exp(0.9 * zm), 128.0, 16'384.0);
    demands.push_back({cpu, mem});
  }

  TextTable table({"Knob policy", "servers", "density", "cpu util", "mem util",
                   "stranded cpu", "stranded mem", "allocated vCPUs"});
  for (KnobPolicy knob : {KnobPolicy::kUnconstrained, KnobPolicy::kRatioBounded,
                          KnobPolicy::kProportional, KnobPolicy::kFixedCombos}) {
    Report(table, KnobPolicyName(knob),
           PackAndMeasure(demands, knob, PlacementPolicy::kBestFit));
  }
  std::printf("%s", table.Render().c_str());

  PrintHeader("Unbalanced demand mixes fragment hosts (free knobs, best-fit)");
  Rng rng(23);
  TextTable mixes({"Population", "servers", "cpu util", "mem util", "stranded cpu",
                   "stranded mem"});
  std::vector<SandboxDemand> balanced;
  std::vector<SandboxDemand> mem_heavy;
  std::vector<SandboxDemand> cpu_heavy;
  for (int i = 0; i < 10'000; ++i) {
    const double cpu = rng.Uniform(0.25, 1.0);
    balanced.push_back({cpu, cpu * 4'096.0});  // The host's own shape.
    mem_heavy.push_back({cpu, cpu * 14'000.0});
    cpu_heavy.push_back({cpu, cpu * 700.0});
  }
  auto add = [&](const char* label, const std::vector<SandboxDemand>& d) {
    const DensityReport r =
        PackAndMeasure(d, KnobPolicy::kUnconstrained, PlacementPolicy::kBestFit);
    mixes.AddRow({label, std::to_string(r.servers), FormatPercent(r.cpu_util, 1),
                  FormatPercent(r.mem_util, 1), FormatPercent(r.stranded_cpu, 1),
                  FormatPercent(r.stranded_mem, 1)});
  };
  add("balanced (matches host 1:4)", balanced);
  add("memory-heavy (1:14 GB/vCPU)", mem_heavy);
  add("CPU-heavy (1:0.7 GB/vCPU)", cpu_heavy);
  std::printf("%s", mixes.Render().c_str());

  PrintHeader("Placement policy sensitivity (trace population, free knobs)");
  TextTable policies({"Placement policy", "servers", "density"});
  for (PlacementPolicy p : {PlacementPolicy::kFirstFit, PlacementPolicy::kBestFit,
                            PlacementPolicy::kWorstFit}) {
    const DensityReport r = PackAndMeasure(demands, KnobPolicy::kUnconstrained, p);
    policies.AddRow({PlacementPolicyName(p), std::to_string(r.servers),
                     FormatDouble(r.density, 1)});
  }
  std::printf("%s", policies.Render().c_str());

  std::printf(
      "\nReading (paper §2.2-2.3): one-sided populations strand one host\n"
      "dimension; ratio bands and fixed combos lift user allocations toward\n"
      "the host shape, turning stranded capacity into billed capacity -- the\n"
      "placement-side rationale for constrained knobs, paid for by users as\n"
      "overprovisioned (low-utilization) allocations.\n");
  return 0;
}
