// Cost of chaos: what fleet-level failures and overload protection do to
// availability, tail latency, and the bill.
//
// Section A runs the fleet simulator over the same synthetic trace with host
// fault injection at decreasing MTBFs. A host loss crashes every resident
// attempt and destroys every resident sandbox, so the survivors' retries
// stampede into cold starts — availability, p99 end-to-end latency and cost
// per successful request are reported as deltas against the healthy run,
// with and without the client-side circuit breaker.
//
// Section B overloads the event-driven platform simulator (AWS preset capped
// at a few instances) and compares bounded-admission-queue shed policies
// (reject-newest vs reject-oldest), again with the breaker on and off. This
// is the quantified version of "graceful degradation": queues trade latency
// for availability, shedding trades availability for latency, and the
// breaker trades both for a smaller bill.
//
// Everything is seeded; two runs of this binary print identical bytes.
// Pass --json for machine-readable output.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/billing/catalog.h"
#include "src/cluster/fleet_sim.h"
#include "src/common/json_writer.h"
#include "src/common/table.h"
#include "src/platform/platform_sim.h"
#include "src/platform/presets.h"
#include "src/platform/workload.h"
#include "src/trace/generator.h"

namespace faascost {
namespace {

double P99Ms(std::vector<MicroSecs> latencies) {
  if (latencies.empty()) {
    return 0.0;
  }
  std::sort(latencies.begin(), latencies.end());
  const size_t idx = (latencies.size() * 99 + 99) / 100 - 1;
  return static_cast<double>(latencies[std::min(idx, latencies.size() - 1)]) /
         static_cast<double>(kMicrosPerMilli);
}

// ---------------------------------------------------------------------------
// Section A: host failures in the fleet simulator.
// ---------------------------------------------------------------------------

struct FleetChaosRow {
  std::string label;
  double mtbf_seconds = 0.0;
  bool breaker = false;
  double availability = 0.0;
  double p99_ms = 0.0;
  double cost_per_success = 0.0;
  int64_t cold_starts = 0;
  int64_t attempt_kills = 0;
  int64_t sandbox_kills = 0;
  int64_t drain_survivals = 0;
  int64_t breaker_trips = 0;
};

FleetChaosRow RunFleet(const std::vector<RequestRecord>& trace, const BillingModel& billing,
                       const std::string& label, double mtbf_seconds, bool breaker) {
  FleetSimConfig cfg;
  cfg.retry.max_attempts = 3;
  cfg.fault_seed = 4242;
  if (mtbf_seconds > 0.0) {
    cfg.host_faults.hosts = 16;
    cfg.host_faults.mtbf_seconds = mtbf_seconds;
    cfg.host_faults.mttr_seconds = 120.0;
    cfg.host_faults.graceful_fraction = 0.3;
  }
  if (breaker) {
    cfg.retry.breaker_threshold = 5;
    cfg.retry.breaker_cooldown = 5 * kMicrosPerSec;
  }
  const FleetResult res = SimulateFleet(trace, billing, cfg);
  FleetChaosRow row;
  row.label = label;
  row.mtbf_seconds = mtbf_seconds;
  row.breaker = breaker;
  row.availability = res.requests > 0
                         ? static_cast<double>(res.successes) / static_cast<double>(res.requests)
                         : 0.0;
  row.p99_ms = P99Ms(res.e2e_latency);
  row.cost_per_success =
      res.successes > 0 ? res.revenue / static_cast<double>(res.successes) : 0.0;
  row.cold_starts = res.cold_starts;
  row.attempt_kills = res.host_fault_attempt_kills;
  row.sandbox_kills = res.host_fault_sandbox_kills;
  row.drain_survivals = res.drain_survivals;
  row.breaker_trips = res.breaker_trips;
  return row;
}

std::vector<FleetChaosRow> FleetHostFaultSection(bool json) {
  TraceGenConfig tcfg;
  tcfg.num_requests = 20'000;
  tcfg.num_functions = 200;
  tcfg.window = 3'600LL * kMicrosPerSec;
  const std::vector<RequestRecord> trace = TraceGenerator(tcfg, 7).Generate();
  const BillingModel billing = MakeBillingModel(Platform::kAwsLambda);

  std::vector<FleetChaosRow> rows;
  rows.push_back(RunFleet(trace, billing, "healthy", 0.0, false));
  for (const bool breaker : {false, true}) {
    for (const double mtbf : {14'400.0, 3'600.0, 900.0}) {
      char label[64];
      std::snprintf(label, sizeof(label), "MTBF %.0fm%s", mtbf / 60.0,
                    breaker ? " +breaker" : "");
      rows.push_back(RunFleet(trace, billing, label, mtbf, breaker));
    }
  }

  const FleetChaosRow& healthy = rows.front();
  if (!json) {
    PrintHeader("Host failures across a 16-host fleet (20k reqs / 200 fns / 1h, "
                "AWS billing, 3 attempts, MTTR 120s, 30% graceful)");
    TextTable table({"scenario", "availability", "p99 e2e ms", "$/success",
                     "d$/success", "cold starts", "attempt kills", "sandbox kills",
                     "drain ok", "trips"});
    for (const FleetChaosRow& r : rows) {
      const double delta = healthy.cost_per_success > 0.0
                               ? r.cost_per_success / healthy.cost_per_success - 1.0
                               : 0.0;
      table.AddRow({r.label, FormatPercent(r.availability, 3), FormatDouble(r.p99_ms, 1),
                    FormatSci(r.cost_per_success, 3),
                    FormatSignedPercent(delta, 2),
                    FormatDouble(static_cast<double>(r.cold_starts), 0),
                    FormatDouble(static_cast<double>(r.attempt_kills), 0),
                    FormatDouble(static_cast<double>(r.sandbox_kills), 0),
                    FormatDouble(static_cast<double>(r.drain_survivals), 0),
                    FormatDouble(static_cast<double>(r.breaker_trips), 0)});
    }
    std::printf("%s", table.Render().c_str());
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Section B: overload admission control in the platform simulator.
// ---------------------------------------------------------------------------

struct OverloadRow {
  std::string label;
  std::string policy;  // "none", "reject_newest", "reject_oldest".
  bool breaker = false;
  double availability = 0.0;
  double p99_ms = 0.0;
  double cost_per_success = 0.0;
  int64_t shed = 0;
  int64_t queue_timeouts = 0;
  int64_t circuit_open = 0;
  int64_t breaker_trips = 0;
};

OverloadRow RunOverload(const std::string& label, bool overloaded, ShedPolicy policy,
                        bool breaker) {
  PlatformSimConfig cfg = AwsLambdaPlatform(1.0, 1'769.0);
  cfg.retry.max_attempts = 3;
  if (overloaded) {
    cfg.max_instances = 4;  // Capacity ~25 rps of PyAES vs 40 rps offered.
    cfg.admission.enabled = true;
    // A 32-deep queue drains in ~1.3 s at this capacity, so the 1 s wait
    // budget sheds from the head too: both loss mechanisms show up.
    cfg.admission.queue_depth = 32;
    cfg.admission.queue_timeout = 1 * kMicrosPerSec;
    cfg.admission.shed = policy;
  }
  if (breaker) {
    cfg.retry.breaker_threshold = 5;
    cfg.retry.breaker_cooldown = 5 * kMicrosPerSec;
  }
  PlatformSim sim(cfg, /*seed=*/31);
  const PlatformSimResult res =
      sim.Run(UniformArrivals(40.0, 60 * kMicrosPerSec), PyAesWorkload());

  const BillingModel billing = MakeBillingModel(Platform::kAwsLambda);
  Usd total = 0.0;
  for (const auto& att : res.attempts) {
    total += ComputeInvoice(billing, BillableRecord(att, cfg.vcpus, cfg.mem_mb)).total;
  }
  OverloadRow row;
  row.label = label;
  row.policy = overloaded ? ShedPolicyName(policy) : "none";
  row.breaker = breaker;
  row.availability = res.requests.empty()
                         ? 0.0
                         : static_cast<double>(res.successes) /
                               static_cast<double>(res.requests.size());
  std::vector<MicroSecs> latencies;
  latencies.reserve(res.requests.size());
  for (const auto& req : res.requests) {
    latencies.push_back(req.e2e_latency);
  }
  row.p99_ms = P99Ms(std::move(latencies));
  row.cost_per_success =
      res.successes > 0 ? total / static_cast<double>(res.successes) : 0.0;
  row.shed = res.shed_attempts;
  row.queue_timeouts = res.queue_timeout_attempts;
  row.circuit_open = res.circuit_open_attempts;
  row.breaker_trips = res.breaker_trips;
  return row;
}

std::vector<OverloadRow> OverloadSection(bool json) {
  std::vector<OverloadRow> rows;
  rows.push_back(RunOverload("healthy (uncapped)", false, ShedPolicy::kRejectNewest, false));
  for (const bool breaker : {false, true}) {
    for (const ShedPolicy policy : {ShedPolicy::kRejectNewest, ShedPolicy::kRejectOldest}) {
      std::string label = std::string(ShedPolicyName(policy));
      if (breaker) {
        label += " +breaker";
      }
      rows.push_back(RunOverload(label, true, policy, breaker));
    }
  }

  const OverloadRow& healthy = rows.front();
  if (!json) {
    PrintHeader("Overload admission control (AWS preset, 4 instances, 40 rps "
                "offered, queue depth 32 / timeout 1s, 3 attempts)");
    TextTable table({"scenario", "availability", "p99 e2e ms", "$/success", "d$/success",
                     "shed", "queue timeouts", "circuit open", "trips"});
    for (const OverloadRow& r : rows) {
      const double delta = healthy.cost_per_success > 0.0
                               ? r.cost_per_success / healthy.cost_per_success - 1.0
                               : 0.0;
      table.AddRow({r.label, FormatPercent(r.availability, 3), FormatDouble(r.p99_ms, 1),
                    FormatSci(r.cost_per_success, 3),
                    FormatSignedPercent(delta, 2),
                    FormatDouble(static_cast<double>(r.shed), 0),
                    FormatDouble(static_cast<double>(r.queue_timeouts), 0),
                    FormatDouble(static_cast<double>(r.circuit_open), 0),
                    FormatDouble(static_cast<double>(r.breaker_trips), 0)});
    }
    std::printf("%s", table.Render().c_str());
  }
  return rows;
}

}  // namespace
}  // namespace faascost

int main(int argc, char** argv) {
  using namespace faascost;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    }
  }
  const auto fleet = FleetHostFaultSection(json);
  const auto overload = OverloadSection(json);
  if (json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("fleet_host_faults");
    w.BeginArray();
    for (const FleetChaosRow& r : fleet) {
      w.BeginObject();
      w.KV("scenario", r.label);
      w.KV("mtbf_seconds", r.mtbf_seconds);
      w.KV("breaker", r.breaker);
      w.KV("availability", r.availability);
      w.KV("p99_e2e_ms", r.p99_ms);
      w.KV("cost_per_success", r.cost_per_success);
      w.KV("cold_starts", r.cold_starts);
      w.KV("attempt_kills", r.attempt_kills);
      w.KV("sandbox_kills", r.sandbox_kills);
      w.KV("drain_survivals", r.drain_survivals);
      w.KV("breaker_trips", r.breaker_trips);
      w.EndObject();
    }
    w.EndArray();
    w.Key("platform_overload");
    w.BeginArray();
    for (const OverloadRow& r : overload) {
      w.BeginObject();
      w.KV("scenario", r.label);
      w.KV("shed_policy", r.policy);
      w.KV("breaker", r.breaker);
      w.KV("availability", r.availability);
      w.KV("p99_e2e_ms", r.p99_ms);
      w.KV("cost_per_success", r.cost_per_success);
      w.KV("shed", r.shed);
      w.KV("queue_timeouts", r.queue_timeouts);
      w.KV("circuit_open", r.circuit_open);
      w.KV("breaker_trips", r.breaker_trips);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf(
      "\nReading: host failures cost twice — killed attempts are billed to the\n"
      "abort point, and the cold-start stampede after each host loss re-bills\n"
      "initialization. Under overload, reject-oldest favors fresh requests'\n"
      "latency while reject-newest preserves FIFO fairness; the breaker stops\n"
      "paying for retries that were going to fail anyway, trading availability\n"
      "during the brownout for a smaller bill.\n");
  return 0;
}
