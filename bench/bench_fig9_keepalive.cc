// Reproduces Fig. 9: cold-start probability as a function of the sandbox
// idle time, per platform keep-alive policy (100 probes per idle interval,
// as in the paper).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/chart.h"
#include "src/common/table.h"
#include "src/platform/presets.h"

int main() {
  using namespace faascost;
  constexpr MicroSecs kSec = kMicrosPerSec;
  const WorkloadSpec wl = MinimalWorkload();
  const int kSamples = 100;

  struct Case {
    const char* label;
    char marker;
    PlatformSimConfig cfg;
  };
  std::vector<Case> cases;
  cases.push_back({"AWS Lambda", 'a', AwsLambdaPlatform(1.0, 1'769.0)});
  cases.push_back({"Azure Consumption", 'z', AzurePlatform()});
  cases.push_back({"GCP", 'g', GcpPlatform(1.0, 1'024.0)});
  cases.push_back({"Cloudflare Workers", 'c', CloudflarePlatform()});

  const std::vector<int> idle_seconds = {30,  60,  120, 180, 240, 300, 330,
                                         360, 420, 540, 660, 780, 870, 900, 960};

  PrintHeader("Fig. 9: Cold-start probability vs sandbox idle time");
  TextTable table({"Idle (s)", "AWS", "Azure", "GCP", "Cloudflare"});
  AsciiChart chart(64, 16);
  chart.SetXLabel("idle time (s)");
  chart.SetYLabel("P(cold start)");

  std::vector<std::vector<double>> probs(cases.size());
  for (size_t c = 0; c < cases.size(); ++c) {
    ChartSeries s;
    s.label = cases[c].label;
    s.marker = cases[c].marker;
    for (int idle : idle_seconds) {
      const double p = ColdStartProbability(cases[c].cfg, wl,
                                            static_cast<MicroSecs>(idle) * kSec, kSamples,
                                            1000 + static_cast<uint64_t>(idle));
      probs[c].push_back(p);
      s.points.emplace_back(idle, p);
    }
    chart.AddSeries(std::move(s));
  }
  for (size_t i = 0; i < idle_seconds.size(); ++i) {
    table.AddRow({std::to_string(idle_seconds[i]), FormatDouble(probs[0][i], 2),
                  FormatDouble(probs[1][i], 2), FormatDouble(probs[2][i], 2),
                  FormatDouble(probs[3][i], 2)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("%s", chart.Render().c_str());

  std::printf(
      "\nPaper: AWS keeps sandboxes alive 300-360 s; Azure is opportunistic\n"
      "(120-360 s, extended to ~740 s when scaled to 3+ instances); GCP keeps\n"
      "instances ~900 s (the longest); Cloudflare's code cache plus TLS\n"
      "pre-warm masks cold starts entirely. KA durations have become shorter\n"
      "than 2018 measurements (AWS was ~27 min).\n");

  PrintHeader("Extension: Azure idle-time-histogram pre-warming (paper §3.3)");
  // The paper expected Azure to pre-warm functions with regular cold-start
  // intervals but saw none, attributing it to a test period too short for
  // the platform to learn. With the histogram policy, the cold-start
  // probability at a 430 s idle interval (beyond the 120-360 s fallback)
  // drops to zero once enough intervals have been observed.
  TextTable prewarm({"regular requests sent", "P(cold) on the next request"});
  for (int training : {2, 5, 10, 15, 30}) {
    int cold = 0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
      PlatformSimConfig cfg = AzurePlatform();
      cfg.keepalive = MakeHistogramPrewarm();
      cfg.autoscaler_enabled = false;
      PlatformSim sim(cfg, 9'000 + static_cast<uint64_t>(t));
      std::vector<MicroSecs> arrivals;
      for (int i = 0; i <= training; ++i) {
        arrivals.push_back(static_cast<MicroSecs>(i) * 430 * kSec);
      }
      const auto result = sim.Run(arrivals, wl);
      cold += result.requests.back().cold_start ? 1 : 0;
    }
    prewarm.AddRow({std::to_string(training),
                    FormatDouble(static_cast<double>(cold) / trials, 2)});
  }
  std::printf("%s", prewarm.Render().c_str());
  std::printf("  The paper's runs (100 probes per interval, back to back) sit in\n"
              "  the untrained regime -- consistent cold starts at high idle times\n"
              "  despite perfectly regular traffic, exactly as they report.\n");
  return 0;
}
