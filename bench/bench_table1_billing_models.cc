// Reproduces Table 1: the billing models of the ten studied serverless
// platforms -- billable time, billable resources, billing granularity and
// cutoffs, and resource control knobs.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/billing/catalog.h"
#include "src/common/table.h"

namespace faascost {
namespace {

std::string BillableTimeName(const BillingModel& m) {
  switch (m.billable_time) {
    case BillableTime::kExecution:
      return "Wall-clock execution time";
    case BillableTime::kTurnaround:
      return "Wall-clock turnaround time";
    case BillableTime::kConsumedCpuTime:
      return "Consumed CPU time";
  }
  return "?";
}

std::string BillableResources(const BillingModel& m) {
  std::string out;
  if (m.bills_cpu_separately || m.cpu_basis == ResourceBasis::kConsumed) {
    out += m.cpu_basis == ResourceBasis::kConsumed ? "Consumed CPU" : "Allocated CPU";
  }
  if (m.bills_memory) {
    if (!out.empty()) {
      out += " + ";
    }
    out += m.mem_basis == ResourceBasis::kConsumed ? "Consumed memory" : "Allocated memory";
  }
  return out;
}

std::string Granularity(const BillingModel& m) {
  std::string out = FormatDouble(MicrosToMillis(m.time_granularity), 0) + " ms";
  if (m.min_billable_time > 0) {
    out += " (min cutoff " + FormatDouble(MicrosToMillis(m.min_billable_time), 0) + " ms)";
  }
  if (m.mem_granularity_mb > 0.0) {
    out += ", " + FormatDouble(m.mem_granularity_mb, 0) + " MB";
  }
  return out;
}

std::string Knobs(const BillingModel& m) {
  switch (m.cpu_knob) {
    case CpuKnob::kProportionalToMemory:
      return "Memory " + FormatDouble(m.memory_step_mb, 0) +
             " MB steps (CPU proportional, " + FormatDouble(m.mb_per_vcpu, 0) +
             " MB/vCPU)";
    case CpuKnob::kFixed:
      return "Fixed size: " + FormatDouble(m.fixed_vcpus, 0) + " vCPU / " +
             FormatDouble(m.fixed_mem_mb, 0) + " MB";
    case CpuKnob::kIndependent: {
      if (!m.fixed_memory_sizes.empty()) {
        return "Fixed CPU-memory combos (" +
               std::to_string(m.fixed_memory_sizes.size()) + " sizes)";
      }
      std::string out = "Memory " + FormatDouble(m.memory_step_mb, 0) + " MB steps";
      if (m.cpu_granularity_vcpus > 0.0) {
        out += ", CPU " + FormatDouble(m.cpu_granularity_vcpus, 2) + " vCPU steps";
      }
      return out;
    }
  }
  return "?";
}

}  // namespace
}  // namespace faascost

int main() {
  using namespace faascost;
  PrintHeader("Table 1: Billing models on major serverless platforms");
  TextTable table({"Platform", "Billable Time", "Billable Resources",
                   "Granularity/Cutoffs", "Control Knobs"});
  for (const auto& m : MakeCatalog()) {
    table.AddRow({m.platform, BillableTimeName(m), BillableResources(m), Granularity(m),
                  Knobs(m)});
  }
  std::printf("%s", table.Render().c_str());

  PrintHeader("Invocation fees (paper: typically $1.5e-7 to $6e-7 per request)");
  TextTable fees({"Platform", "Fee per invocation (USD)"});
  for (const auto& m : MakeCatalog()) {
    fees.AddRow({m.platform, m.invocation_fee > 0.0 ? FormatSci(m.invocation_fee, 2)
                                                    : std::string("none")});
  }
  std::printf("%s", fees.Render().c_str());
  return 0;
}
