// Cost of failure: how much of a serverless bill is spent on invocations
// that never succeed, and how client retries amplify it.
//
// Platforms bill failed attempts too — AWS bills crashed executions up to
// the abort point and timed-out ones through the full limit, and the
// per-invocation fee is charged regardless of outcome. On top of that, a
// crash takes its sandbox down, so the retry pays a fresh cold start
// (billed turnaround time on AWS). This bench sweeps the per-attempt
// failure rate under fixed retry policies on both serving models and
// reports the billable inflation: cost per *successful* request,
// normalized to the zero-failure run.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/billing/catalog.h"
#include "src/common/table.h"
#include "src/platform/platform_sim.h"
#include "src/platform/presets.h"
#include "src/platform/workload.h"

namespace faascost {
namespace {

struct RunStats {
  double cost_per_success = 0.0;
  Usd total = 0.0;
  Usd failed_cost = 0.0;
  int64_t successes = 0;
  int64_t attempts = 0;
  int cold_starts = 0;
};

RunStats RunOnce(PlatformSimConfig config, const BillingModel& billing, double rate,
                 int max_attempts, uint64_t seed) {
  config.faults.crash_prob = rate;
  config.faults.init_failure_prob = rate / 4.0;
  config.retry.max_attempts = max_attempts;
  PlatformSim sim(config, seed);
  const PlatformSimResult res =
      sim.Run(UniformArrivals(4.0, 180 * kMicrosPerSec), PyAesWorkload());
  RunStats out;
  for (const auto& att : res.attempts) {
    const Invoice inv =
        ComputeInvoice(billing, BillableRecord(att, config.vcpus, config.mem_mb));
    out.total += inv.total;
    if (att.outcome != Outcome::kOk) {
      out.failed_cost += inv.total;
    }
  }
  out.successes = res.successes;
  out.attempts = static_cast<int64_t>(res.attempts.size());
  out.cold_starts = res.cold_starts;
  if (out.successes > 0) {
    out.cost_per_success = out.total / static_cast<double>(out.successes);
  }
  return out;
}

void SweepModel(const char* title, const PlatformSimConfig& base,
                const BillingModel& billing, uint64_t seed) {
  PrintHeader(title);
  for (const int max_attempts : {1, 3}) {
    std::printf("\nRetry policy: %d attempt(s)%s\n", max_attempts,
                max_attempts > 1 ? " with exponential backoff + full jitter" : "");
    TextTable table({"failure rate", "attempts", "ok", "cold starts", "billed $",
                     "failed-$ share", "$/success", "inflation"});
    double baseline = 0.0;
    for (const double rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
      const RunStats s = RunOnce(base, billing, rate, max_attempts, seed);
      if (rate == 0.0) {
        baseline = s.cost_per_success;
      }
      const double inflation =
          baseline > 0.0 && s.cost_per_success > 0.0 ? s.cost_per_success / baseline : 0.0;
      table.AddRow({FormatPercent(rate, 0), FormatDouble(s.attempts, 0),
                    FormatDouble(static_cast<double>(s.successes), 0),
                    FormatDouble(s.cold_starts, 0), FormatDouble(s.total, 6),
                    FormatPercent(s.total > 0 ? s.failed_cost / s.total : 0.0, 1),
                    FormatSci(s.cost_per_success, 3),
                    s.successes > 0 ? FormatDouble(inflation, 3) + "x"
                                    : std::string("n/a")});
    }
    std::printf("%s", table.Render().c_str());
  }
}

// Process death on a shared sandbox: when a crash kills every co-resident
// request, retried batches die together and retries turn a moderate failure
// rate into a storm of billed-but-failed attempts.
void ProcessDeathTable() {
  PrintHeader("Process death amplification (GCP multi-concurrency, crash kills sandbox)");
  const BillingModel billing = MakeBillingModel(Platform::kGcpCloudRunFunctions);
  TextTable table({"crash isolation", "retries", "attempts", "ok", "cold starts",
                   "billed $", "failed-$ share"});
  for (const bool kills : {false, true}) {
    for (const int max_attempts : {1, 3}) {
      PlatformSimConfig cfg = GcpPlatform(1.0, 1'024.0);
      cfg.faults.crash_kills_sandbox = kills;
      const RunStats s = RunOnce(cfg, billing, /*rate=*/0.05, max_attempts, /*seed=*/22);
      table.AddRow({kills ? "process death" : "request only",
                    FormatDouble(max_attempts, 0), FormatDouble(s.attempts, 0),
                    FormatDouble(static_cast<double>(s.successes), 0),
                    FormatDouble(s.cold_starts, 0), FormatDouble(s.total, 6),
                    FormatPercent(s.total > 0 ? s.failed_cost / s.total : 0.0, 1)});
    }
  }
  std::printf("%s", table.Render().c_str());
}

// What a single failed invocation is billed across the catalog: a crash at
// 40% of a 200 ms execution, a timeout cut at a 1 s limit, and a 429.
void FailureBillingTable() {
  PrintHeader("What one failed invocation costs (1 vCPU / 1769 MB class)");
  TextTable table({"Platform", "ok 200ms $", "crash@80ms $", "timeout@1s $", "429 $"});
  for (Platform p : AllPlatforms()) {
    const BillingModel m = MakeBillingModel(p);
    RequestRecord ok;
    ok.exec_duration = 200 * kMicrosPerMilli;
    ok.cpu_time = 160 * kMicrosPerMilli;
    ok.alloc_vcpus = 1.0;
    ok.alloc_mem_mb = 1'769.0;
    ok.used_mem_mb = 512.0;

    RequestRecord crash = ok;
    crash.outcome = Outcome::kCrash;
    crash.exec_duration = 80 * kMicrosPerMilli;  // Crashed at 40%.
    crash.cpu_time = 64 * kMicrosPerMilli;

    RequestRecord timeout = ok;
    timeout.outcome = Outcome::kTimeout;
    timeout.exec_duration = 1'000 * kMicrosPerMilli;  // Ran through the limit.
    timeout.cpu_time = 800 * kMicrosPerMilli;

    RequestRecord rejected = ok;
    rejected.outcome = Outcome::kRejected;
    rejected.exec_duration = 0;
    rejected.cpu_time = 0;

    table.AddRow({m.platform, FormatSci(ComputeInvoice(m, ok).total, 3),
                  FormatSci(ComputeInvoice(m, crash).total, 3),
                  FormatSci(ComputeInvoice(m, timeout).total, 3),
                  FormatSci(ComputeInvoice(m, rejected).total, 3)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace faascost

int main() {
  using namespace faascost;
  SweepModel("Cost of failure: AWS Lambda (single-concurrency, turnaround billing)",
             AwsLambdaPlatform(1.0, 1'769.0), MakeBillingModel(Platform::kAwsLambda),
             /*seed=*/21);
  // For the multi-concurrency sweep, crashes abort only their own request;
  // process death (a crash killing every co-resident request) is studied
  // separately below, because with retries it compounds into a retry storm
  // rather than a smooth per-rate trend.
  PlatformSimConfig gcp = GcpPlatform(1.0, 1'024.0);
  gcp.faults.crash_kills_sandbox = false;
  SweepModel("Cost of failure: GCP Cloud Run functions (multi-concurrency)", gcp,
             MakeBillingModel(Platform::kGcpCloudRunFunctions),
             /*seed=*/22);
  ProcessDeathTable();
  FailureBillingTable();
  std::printf(
      "\nReading: 'inflation' is billed cost per successful request relative to\n"
      "the zero-failure run. Retries recover availability but multiply billed\n"
      "attempts; crashes also destroy sandboxes, so retried work re-pays cold\n"
      "starts (billed as turnaround time on AWS/GCP/IBM).\n");
  return 0;
}
