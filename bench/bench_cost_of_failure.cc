// Cost of failure: how much of a serverless bill is spent on invocations
// that never succeed, and how client retries amplify it.
//
// Platforms bill failed attempts too — AWS bills crashed executions up to
// the abort point and timed-out ones through the full limit, and the
// per-invocation fee is charged regardless of outcome. On top of that, a
// crash takes its sandbox down, so the retry pays a fresh cold start
// (billed turnaround time on AWS). This bench sweeps the per-attempt
// failure rate under fixed retry policies on both serving models and
// reports the billable inflation: cost per *successful* request,
// normalized to the zero-failure run.
//
// Pass --json for machine-readable output (one object with per-section
// arrays) instead of the human tables.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/billing/catalog.h"
#include "src/common/json_writer.h"
#include "src/common/table.h"
#include "src/platform/platform_sim.h"
#include "src/platform/presets.h"
#include "src/platform/workload.h"

namespace faascost {
namespace {

struct RunStats {
  double cost_per_success = 0.0;
  Usd total = 0.0;
  Usd failed_cost = 0.0;
  int64_t successes = 0;
  int64_t attempts = 0;
  int cold_starts = 0;
};

RunStats RunOnce(PlatformSimConfig config, const BillingModel& billing, double rate,
                 int max_attempts, uint64_t seed) {
  config.faults.crash_prob = rate;
  config.faults.init_failure_prob = rate / 4.0;
  config.retry.max_attempts = max_attempts;
  PlatformSim sim(config, seed);
  const PlatformSimResult res =
      sim.Run(UniformArrivals(4.0, 180 * kMicrosPerSec), PyAesWorkload());
  RunStats out;
  for (const auto& att : res.attempts) {
    const Invoice inv =
        ComputeInvoice(billing, BillableRecord(att, config.vcpus, config.mem_mb));
    out.total += inv.total;
    if (att.outcome != Outcome::kOk) {
      out.failed_cost += inv.total;
    }
  }
  out.successes = res.successes;
  out.attempts = static_cast<int64_t>(res.attempts.size());
  out.cold_starts = res.cold_starts;
  if (out.successes > 0) {
    out.cost_per_success = out.total / static_cast<double>(out.successes);
  }
  return out;
}

struct SweepRow {
  std::string model;
  int max_attempts = 1;
  double rate = 0.0;
  RunStats stats;
  double inflation = 0.0;
};

std::vector<SweepRow> SweepModel(const char* title, const char* key,
                                 const PlatformSimConfig& base, const BillingModel& billing,
                                 uint64_t seed, bool json) {
  std::vector<SweepRow> rows;
  if (!json) {
    PrintHeader(title);
  }
  for (const int max_attempts : {1, 3}) {
    TextTable table({"failure rate", "attempts", "ok", "cold starts", "billed $",
                     "failed-$ share", "$/success", "inflation"});
    double baseline = 0.0;
    bool have_baseline = false;
    for (const double rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
      SweepRow row;
      row.model = key;
      row.max_attempts = max_attempts;
      row.rate = rate;
      row.stats = RunOnce(base, billing, rate, max_attempts, seed);
      const RunStats& s = row.stats;
      if (!have_baseline) {
        baseline = s.cost_per_success;  // First sweep point is fault-free.
        have_baseline = true;
      }
      row.inflation =
          baseline > 0.0 && s.cost_per_success > 0.0 ? s.cost_per_success / baseline : 0.0;
      rows.push_back(row);
      table.AddRow({FormatPercent(rate, 0), FormatDouble(s.attempts, 0),
                    FormatDouble(static_cast<double>(s.successes), 0),
                    FormatDouble(s.cold_starts, 0), FormatDouble(s.total, 6),
                    FormatPercent(s.total > 0 ? s.failed_cost / s.total : 0.0, 1),
                    FormatSci(s.cost_per_success, 3),
                    s.successes > 0 ? FormatDouble(row.inflation, 3) + "x"
                                    : std::string("n/a")});
    }
    if (!json) {
      std::printf("\nRetry policy: %d attempt(s)%s\n", max_attempts,
                  max_attempts > 1 ? " with exponential backoff + full jitter" : "");
      std::printf("%s", table.Render().c_str());
    }
  }
  return rows;
}

void WriteSweepJson(const std::vector<SweepRow>& rows, JsonWriter* w) {
  for (const SweepRow& r : rows) {
    w->BeginObject();
    w->KV("model", r.model);
    w->KV("max_attempts", r.max_attempts);
    w->KV("failure_rate", r.rate);
    w->KV("attempts", r.stats.attempts);
    w->KV("successes", r.stats.successes);
    w->KV("cold_starts", r.stats.cold_starts);
    w->KV("billed_usd", r.stats.total);
    w->KV("failed_usd", r.stats.failed_cost);
    w->KV("cost_per_success", r.stats.cost_per_success);
    w->KV("inflation", r.inflation);
    w->EndObject();
  }
}

// Process death on a shared sandbox: when a crash kills every co-resident
// request, retried batches die together and retries turn a moderate failure
// rate into a storm of billed-but-failed attempts. With `w` set, appends the
// rows to the open "process_death" array instead of printing a table.
void ProcessDeathTable(JsonWriter* w) {
  const BillingModel billing = MakeBillingModel(Platform::kGcpCloudRunFunctions);
  TextTable table({"crash isolation", "retries", "attempts", "ok", "cold starts",
                   "billed $", "failed-$ share"});
  for (const bool kills : {false, true}) {
    for (const int max_attempts : {1, 3}) {
      PlatformSimConfig cfg = GcpPlatform(1.0, 1'024.0);
      cfg.faults.crash_kills_sandbox = kills;
      const RunStats s = RunOnce(cfg, billing, /*rate=*/0.05, max_attempts, /*seed=*/22);
      if (w != nullptr) {
        w->BeginObject();
        w->KV("crash_kills_sandbox", kills);
        w->KV("max_attempts", max_attempts);
        w->KV("attempts", s.attempts);
        w->KV("successes", s.successes);
        w->KV("cold_starts", s.cold_starts);
        w->KV("billed_usd", s.total);
        w->KV("failed_usd", s.failed_cost);
        w->EndObject();
        continue;
      }
      table.AddRow({kills ? "process death" : "request only",
                    FormatDouble(max_attempts, 0), FormatDouble(s.attempts, 0),
                    FormatDouble(static_cast<double>(s.successes), 0),
                    FormatDouble(s.cold_starts, 0), FormatDouble(s.total, 6),
                    FormatPercent(s.total > 0 ? s.failed_cost / s.total : 0.0, 1)});
    }
  }
  if (w != nullptr) {
    return;
  }
  PrintHeader("Process death amplification (GCP multi-concurrency, crash kills sandbox)");
  std::printf("%s", table.Render().c_str());
}

// What a single failed invocation is billed across the catalog: a crash at
// 40% of a 200 ms execution, a timeout cut at a 1 s limit, and a 429.
// With `w` set, appends to the open "failure_billing" array instead.
void FailureBillingTable(JsonWriter* w) {
  TextTable table({"Platform", "ok 200ms $", "crash@80ms $", "timeout@1s $", "429 $"});
  for (Platform p : AllPlatforms()) {
    const BillingModel m = MakeBillingModel(p);
    RequestRecord ok;
    ok.exec_duration = 200 * kMicrosPerMilli;
    ok.cpu_time = 160 * kMicrosPerMilli;
    ok.alloc_vcpus = 1.0;
    ok.alloc_mem_mb = 1'769.0;
    ok.used_mem_mb = 512.0;

    RequestRecord crash = ok;
    crash.outcome = Outcome::kCrash;
    crash.exec_duration = 80 * kMicrosPerMilli;  // Crashed at 40%.
    crash.cpu_time = 64 * kMicrosPerMilli;

    RequestRecord timeout = ok;
    timeout.outcome = Outcome::kTimeout;
    timeout.exec_duration = 1'000 * kMicrosPerMilli;  // Ran through the limit.
    timeout.cpu_time = 800 * kMicrosPerMilli;

    RequestRecord rejected = ok;
    rejected.outcome = Outcome::kRejected;
    rejected.exec_duration = 0;
    rejected.cpu_time = 0;

    if (w != nullptr) {
      w->BeginObject();
      w->KV("platform", m.platform);
      w->KV("ok_usd", ComputeInvoice(m, ok).total);
      w->KV("crash_usd", ComputeInvoice(m, crash).total);
      w->KV("timeout_usd", ComputeInvoice(m, timeout).total);
      w->KV("rejected_usd", ComputeInvoice(m, rejected).total);
      w->EndObject();
      continue;
    }
    table.AddRow({m.platform, FormatSci(ComputeInvoice(m, ok).total, 3),
                  FormatSci(ComputeInvoice(m, crash).total, 3),
                  FormatSci(ComputeInvoice(m, timeout).total, 3),
                  FormatSci(ComputeInvoice(m, rejected).total, 3)});
  }
  if (w != nullptr) {
    return;
  }
  PrintHeader("What one failed invocation costs (1 vCPU / 1769 MB class)");
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace faascost

int main(int argc, char** argv) {
  using namespace faascost;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    }
  }
  const auto aws = SweepModel(
      "Cost of failure: AWS Lambda (single-concurrency, turnaround billing)", "aws",
      AwsLambdaPlatform(1.0, 1'769.0), MakeBillingModel(Platform::kAwsLambda),
      /*seed=*/21, json);
  // For the multi-concurrency sweep, crashes abort only their own request;
  // process death (a crash killing every co-resident request) is studied
  // separately below, because with retries it compounds into a retry storm
  // rather than a smooth per-rate trend.
  PlatformSimConfig gcp = GcpPlatform(1.0, 1'024.0);
  gcp.faults.crash_kills_sandbox = false;
  const auto gcp_rows = SweepModel("Cost of failure: GCP Cloud Run functions "
                                   "(multi-concurrency)",
                                   "gcp", gcp,
                                   MakeBillingModel(Platform::kGcpCloudRunFunctions),
                                   /*seed=*/22, json);
  if (json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("sweeps");
    w.BeginArray();
    WriteSweepJson(aws, &w);
    WriteSweepJson(gcp_rows, &w);
    w.EndArray();
    w.Key("process_death");
    w.BeginArray();
    ProcessDeathTable(&w);
    w.EndArray();
    w.Key("failure_billing");
    w.BeginArray();
    FailureBillingTable(&w);
    w.EndArray();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  ProcessDeathTable(nullptr);
  FailureBillingTable(nullptr);
  std::printf(
      "\nReading: 'inflation' is billed cost per successful request relative to\n"
      "the zero-failure run. Retries recover availability but multiply billed\n"
      "attempts; crashes also destroy sandboxes, so retried work re-pays cold\n"
      "starts (billed as turnaround time on AWS/GCP/IBM).\n");
  return 0;
}
