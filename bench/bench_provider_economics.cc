// §3.3 extension: the provider-side cost of keep-alive. "Function keep-alive
// has a direct impact on provider cost, as idle functions can hold active
// resources ... These costs are ultimately passed on to users through
// per-unit resource pricing or invocation fees." This bench quantifies the
// KA-duration vs cold-start trade-off and compares the Table-2 KA resource
// behaviours on identical traffic.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/billing/catalog.h"
#include "src/common/table.h"
#include "src/core/provider_economics.h"
#include "src/platform/presets.h"

namespace faascost {
namespace {

constexpr MicroSecs kSec = kMicrosPerSec;

PlatformSimResult RunTraffic(const PlatformSimConfig& cfg, uint64_t seed) {
  PlatformSim sim(cfg, seed);
  Rng rng(seed * 13);
  // Moderately sparse production traffic: Poisson at 1 request / 50 s for
  // 2 hours -- the regime where keep-alive dominates provider cost.
  return sim.Run(PoissonArrivals(0.02, 7'200 * kSec, rng), PyAesWorkload());
}

}  // namespace
}  // namespace faascost

int main() {
  using namespace faascost;

  PrintHeader("Keep-alive duration vs provider cost and cold starts (AWS-style)");
  TextTable sweep({"KA duration (s)", "cold-start rate", "idle instance-s",
                   "provider cost $", "margin"});
  const auto aws_billing = MakeBillingModel(Platform::kAwsLambda);
  for (MicroSecs ka : {10 * kSec, 60 * kSec, 300 * kSec, 900 * kSec, 1'800 * kSec}) {
    PlatformSimConfig cfg = AwsLambdaPlatform(1.0, 1'769.0);
    cfg.keepalive = MakeFixedKeepAlive(ka, KaResourceBehavior::kRunAsUsual);
    const auto result = RunTraffic(cfg, 21);
    const auto econ =
        AnalyzeProviderEconomics(aws_billing, cfg, PyAesWorkload(), result);
    sweep.AddRow({FormatDouble(MicrosToSecs(ka), 0), FormatDouble(econ.cold_start_rate, 2),
                  FormatDouble(econ.idle_seconds, 0), FormatSci(econ.provider_cost, 3),
                  FormatPercent(econ.margin, 1)});
  }
  std::printf("%s", sweep.Render().c_str());
  std::printf("\nLonger keep-alive buys fewer cold starts with ever more billed-to-\n"
              "nobody idle time -- the provider either absorbs it (higher unit\n"
              "prices) or deallocates resources during KA:\n");

  PrintHeader("Table-2 KA behaviours on identical traffic (300 s keep-alive)");
  TextTable behaviours({"KA-phase behaviour", "provider cost $", "margin",
                        "cold-start rate"});
  struct Case {
    const char* label;
    KaResourceBehavior behavior;
  };
  const Case cases[] = {
      {"run as usual (Azure)", KaResourceBehavior::kRunAsUsual},
      {"scale down CPU (GCP)", KaResourceBehavior::kScaleDownCpu},
      {"freeze/deallocate (AWS)", KaResourceBehavior::kFreezeDeallocate},
      {"code cache only (Cloudflare)", KaResourceBehavior::kCodeCache},
  };
  for (const auto& c : cases) {
    PlatformSimConfig cfg = AwsLambdaPlatform(1.0, 1'769.0);
    cfg.keepalive = MakeFixedKeepAlive(300 * kSec, c.behavior);
    const auto result = RunTraffic(cfg, 22);
    const auto econ =
        AnalyzeProviderEconomics(aws_billing, cfg, PyAesWorkload(), result);
    behaviours.AddRow({c.label, FormatSci(econ.provider_cost, 3),
                       FormatPercent(econ.margin, 1),
                       FormatDouble(econ.cold_start_rate, 2)});
  }
  std::printf("%s", behaviours.Render().c_str());
  std::printf(
      "\nFreezing (AWS) and caching (Cloudflare) cut the KA cost by an order\n"
      "of magnitude at the same cold-start rate -- the rationale behind the\n"
      "Table-2 design choices, and behind Azure's shorter opportunistic KA\n"
      "window (it pays full price for idle sandboxes).\n");
  return 0;
}
