// Billing audit: estimate what the same production workload would cost per
// month on each of the ten platforms, and how much of it is inflation over
// actual consumption -- the paper's §2 analysis as a user-facing tool.
//
// The workload is a synthetic day of traffic calibrated to the Huawei-trace
// statistics; monthly cost extrapolates the daily bill.

#include <cstdio>
#include <vector>

#include "src/billing/analysis.h"
#include "src/billing/catalog.h"
#include "src/common/table.h"
#include "src/trace/generator.h"

int main() {
  using namespace faascost;

  TraceGenConfig cfg;
  cfg.num_requests = 500'000;  // One day of traffic for a mid-size tenant.
  cfg.num_functions = 200;
  std::printf("Generating one day of traffic (%lld requests, %lld functions)...\n",
              static_cast<long long>(cfg.num_requests),
              static_cast<long long>(cfg.num_functions));
  const auto day = TraceGenerator(cfg, 20260706).Generate();
  const ActualConsumption actual = ComputeActualConsumption(day);

  std::printf("Actual daily consumption: %.1f vCPU-hours, %.1f GB-hours\n\n",
              actual.total_vcpu_seconds / 3'600.0, actual.total_gb_seconds / 3'600.0);

  TextTable table({"Platform", "$/day", "$/month", "fees share", "CPU inflation",
                   "memory inflation"});
  struct Row {
    std::string platform;
    double per_day;
  };
  std::vector<Row> rows;
  for (Platform p : AllPlatforms()) {
    const BillingModel m = MakeBillingModel(p);
    Usd resource = 0.0;
    Usd fees = 0.0;
    for (const auto& r : day) {
      const Invoice inv = ComputeInvoice(m, r);
      resource += inv.resource_cost;
      fees += inv.invocation_cost;
    }
    const InflationResult infl = AnalyzeInflation(m, day);
    const Usd total = resource + fees;
    rows.push_back({m.platform, total});
    table.AddRow({m.platform, FormatDouble(total, 2), FormatDouble(total * 30.0, 2),
                  FormatPercent(total > 0 ? fees / total : 0, 1),
                  FormatDouble(infl.cpu_inflation, 2) + "x",
                  infl.mem_inflation > 0 ? FormatDouble(infl.mem_inflation, 2) + "x"
                                         : std::string("-")});
  }
  std::printf("%s", table.Render().c_str());

  const Row* cheapest = &rows.front();
  const Row* priciest = &rows.front();
  for (const auto& r : rows) {
    if (r.per_day < cheapest->per_day) {
      cheapest = &r;
    }
    if (r.per_day > priciest->per_day) {
      priciest = &r;
    }
  }
  std::printf("\nCheapest for this workload: %s ($%.2f/day)\n", cheapest->platform.c_str(),
              cheapest->per_day);
  std::printf("Most expensive:             %s ($%.2f/day, %.1fx the cheapest)\n",
              priciest->platform.c_str(), priciest->per_day,
              priciest->per_day / cheapest->per_day);
  std::printf(
      "\nNote (paper §2): rankings depend on the workload shape -- short\n"
      "requests are dominated by fees and rounding, long low-utilization\n"
      "requests by the allocation-based wall-clock inflation.\n");
  return 0;
}
