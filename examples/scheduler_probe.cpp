// Scheduler probe: point Algorithm 1 at an "unknown" cloud and recover its
// OS scheduling parameters from user space (the paper's §4.3 methodology
// behind Table 3). Here the unknown cloud is a simulator configuration the
// probe is not told about.

#include <cstdio>

#include "src/common/table.h"
#include "src/sched/inference.h"

int main() {
  using namespace faascost;

  // The "unknown" platform under test (pretend we cannot see this): IBM-like
  // bandwidth control.
  struct Hidden {
    const char* truth;
    std::vector<SchedConfig> configs;
  };
  const Hidden cloud = {"P=10 ms, CONFIG_HZ=250",
                        {IbmSched(0.125), IbmSched(0.25), IbmSched(0.5)}};

  std::printf("Profiling the target platform with Algorithm 1:\n"
              "  3 vCPU configurations x 100 invocations x 10 s each...\n\n");

  Rng rng(101);
  std::vector<ThrottleProfile> profiles;
  size_t events = 0;
  for (const auto& cfg : cloud.configs) {
    const CpuBandwidthSim sim(cfg);
    for (int i = 0; i < 100; ++i) {
      profiles.push_back(ProfileOnce(sim, 10LL * kMicrosPerSec, rng));
      events += profiles.back().throttle_log.size();
    }
  }
  std::printf("Collected %zu throttle events across %zu invocations.\n\n", events,
              profiles.size());

  const InferredSchedParams p = InferSchedParams(profiles);
  TextTable table({"Parameter", "Inferred", "Evidence"});
  table.AddRow({"CPU bandwidth-control period", FormatDouble(p.period_ms, 0) + " ms",
                FormatPercent(p.match_period, 1) + " of unthrottle intervals fit"});
  table.AddRow({"Scheduler tick (CONFIG_HZ)", std::to_string(p.config_hz) + " Hz",
                FormatPercent(p.match_tick, 1) + " of runtime bursts fit"});
  table.AddRow({"Long-run CPU share (quota/period)", FormatDouble(p.quota_fraction, 3),
                "obtained CPU / wall time"});
  std::printf("%s", table.Render().c_str());
  std::printf("\nGround truth was: %s\n", cloud.truth);
  std::printf(
      "\nWhy it matters (paper §4.3): with the period and tick known, a user\n"
      "can size bursts to fit inside one quota window and run at full core\n"
      "speed regardless of the configured fractional allocation -- see\n"
      "bench_exploit_intermittent -- and rightsizing tools can anticipate the\n"
      "quantization jumps in the duration curve.\n");
  return 0;
}
