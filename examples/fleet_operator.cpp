// Fleet operator: the provider's view of a day of traffic. Simulates every
// function's sandbox lifecycle, packs sandboxes onto servers, compares
// keep-alive strategies, and solves for the break-even per-unit price -- the
// paper's bottom line that billing practices are the shape of serving costs.

#include <cstdio>

#include "src/billing/catalog.h"
#include "src/cluster/fleet_sim.h"
#include "src/trace/generator.h"

int main() {
  using namespace faascost;
  constexpr MicroSecs kSec = kMicrosPerSec;

  TraceGenConfig gen_cfg;
  gen_cfg.num_requests = 300'000;
  gen_cfg.num_functions = 2'000;
  std::printf("Operating a day of traffic: %lld requests, %lld functions.\n\n",
              static_cast<long long>(gen_cfg.num_requests),
              static_cast<long long>(gen_cfg.num_functions));
  const auto trace = TraceGenerator(gen_cfg, 99).Generate();
  const BillingModel aws = MakeBillingModel(Platform::kAwsLambda);

  // 1. Choose the keep-alive strategy.
  std::printf("Keep-alive strategy comparison (AWS billing, 300 s window):\n");
  struct Strategy {
    const char* name;
    double ka_share;
  };
  const Strategy strategies[] = {
      {"run-as-usual", 1.0}, {"cpu-scale-down", 0.2}, {"freeze", 0.03}};
  for (const auto& s : strategies) {
    FleetSimConfig cfg;
    cfg.keepalive = 300 * kSec;
    cfg.ka_cost_share = s.ka_share;
    const FleetResult r = SimulateFleet(trace, aws, cfg);
    std::printf("  %-14s hw cost $%7.2f  revenue $%5.2f  cold-rate %.3f  peak %d servers\n",
                s.name, r.hardware_cost, r.revenue,
                static_cast<double>(r.cold_starts) / r.requests, r.peak_servers);
  }

  // 2. Solve for the break-even resource price: the multiplier m on the
  //    resource component such that m * resource_revenue + fees = hw cost.
  FleetSimConfig cfg;
  cfg.keepalive = 300 * kSec;
  cfg.ka_cost_share = 0.03;  // Freeze, the cheapest realistic strategy.
  const FleetResult r = SimulateFleet(trace, aws, cfg);
  const Usd resource_revenue = r.revenue - r.fee_revenue;
  const double multiplier =
      resource_revenue > 0.0 ? (r.hardware_cost - r.fee_revenue) / resource_revenue : 0.0;
  std::printf("\nBreak-even analysis (freeze strategy):\n");
  std::printf("  hardware cost:        $%.2f\n", r.hardware_cost);
  std::printf("  resource revenue:     $%.2f at AWS list prices\n", resource_revenue);
  std::printf("  fee revenue:          $%.2f\n", r.fee_revenue);
  std::printf("  break-even multiple:  %.1fx the AWS list price\n", multiplier);
  std::printf("  implied $/GB-s:       %.3g (list: 1.67e-5)\n",
              multiplier * 1.66667e-5);
  std::printf(
      "\n  This trace is dominated by sparse functions whose sandboxes sit\n"
      "  idle; serving them from dedicated (non-overcommitted) capacity\n"
      "  would require prices far above list. Real providers close the gap\n"
      "  with co-tenant overcommit, keep-alive deallocations (Table 2),\n"
      "  turnaround billing, and invocation fees -- the paper's explanation\n"
      "  of why serverless bills look the way they do.\n");

  // 3. What would a denser tenant look like?
  TraceGenConfig dense_cfg = gen_cfg;
  dense_cfg.num_functions = 50;  // Same traffic over 40x fewer functions.
  const auto dense = TraceGenerator(dense_cfg, 100).Generate();
  const FleetResult rd = SimulateFleet(dense, aws, cfg);
  const Usd dense_resource = rd.revenue - rd.fee_revenue;
  const double dense_multiplier =
      dense_resource > 0.0 ? (rd.hardware_cost - rd.fee_revenue) / dense_resource : 0.0;
  std::printf("\nSame request volume across only 50 functions (dense tenant):\n");
  std::printf("  cold-rate %.4f, hw cost $%.2f, break-even multiple %.2fx\n",
              static_cast<double>(rd.cold_starts) / rd.requests, rd.hardware_cost,
              dense_multiplier);
  std::printf(
      "  Density halves the break-even multiple (cold starts all but vanish\n"
      "  and sandboxes amortize), but even here break-even sits above list\n"
      "  price under dedicated reservations: day-long warm sandboxes at sub-\n"
      "  percent utilization only pay off once hosts overcommit them -- the\n"
      "  co-tenancy §4 studies, and the reason KA-phase deallocation\n"
      "  (Table 2) is worth provider engineering effort.\n");
  return 0;
}
